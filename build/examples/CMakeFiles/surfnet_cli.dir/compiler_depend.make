# Empty compiler generated dependencies file for surfnet_cli.
# This may be replaced when dependencies are built.
