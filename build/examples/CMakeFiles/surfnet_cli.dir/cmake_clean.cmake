file(REMOVE_RECURSE
  "CMakeFiles/surfnet_cli.dir/surfnet_cli.cpp.o"
  "CMakeFiles/surfnet_cli.dir/surfnet_cli.cpp.o.d"
  "surfnet_cli"
  "surfnet_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/surfnet_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
