file(REMOVE_RECURSE
  "CMakeFiles/decoder_comparison.dir/decoder_comparison.cpp.o"
  "CMakeFiles/decoder_comparison.dir/decoder_comparison.cpp.o.d"
  "decoder_comparison"
  "decoder_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decoder_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
