# Empty dependencies file for decoder_comparison.
# This may be replaced when dependencies are built.
