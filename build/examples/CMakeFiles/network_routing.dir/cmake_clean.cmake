file(REMOVE_RECURSE
  "CMakeFiles/network_routing.dir/network_routing.cpp.o"
  "CMakeFiles/network_routing.dir/network_routing.cpp.o.d"
  "network_routing"
  "network_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
