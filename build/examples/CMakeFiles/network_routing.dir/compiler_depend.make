# Empty compiler generated dependencies file for network_routing.
# This may be replaced when dependencies are built.
