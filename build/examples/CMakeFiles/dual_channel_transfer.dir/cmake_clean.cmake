file(REMOVE_RECURSE
  "CMakeFiles/dual_channel_transfer.dir/dual_channel_transfer.cpp.o"
  "CMakeFiles/dual_channel_transfer.dir/dual_channel_transfer.cpp.o.d"
  "dual_channel_transfer"
  "dual_channel_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dual_channel_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
