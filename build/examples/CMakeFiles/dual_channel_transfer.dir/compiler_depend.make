# Empty compiler generated dependencies file for dual_channel_transfer.
# This may be replaced when dependencies are built.
