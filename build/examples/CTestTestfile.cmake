# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "3" "0.02" "0.05")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_decoder_comparison "/root/repo/build/examples/decoder_comparison" "5" "100")
set_tests_properties(example_decoder_comparison PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_network_routing "/root/repo/build/examples/network_routing" "7" "3")
set_tests_properties(example_network_routing PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_dual_channel "/root/repo/build/examples/dual_channel_transfer")
set_tests_properties(example_dual_channel PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cli_decode "/root/repo/build/examples/surfnet_cli" "decode" "--distance" "3" "--trials" "100")
set_tests_properties(example_cli_decode PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cli_trial "/root/repo/build/examples/surfnet_cli" "trial" "--trials" "100")
set_tests_properties(example_cli_trial PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cli_topology "/root/repo/build/examples/surfnet_cli" "topology" "--routes")
set_tests_properties(example_cli_topology PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
