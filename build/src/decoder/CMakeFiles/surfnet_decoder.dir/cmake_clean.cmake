file(REMOVE_RECURSE
  "CMakeFiles/surfnet_decoder.dir/blossom.cpp.o"
  "CMakeFiles/surfnet_decoder.dir/blossom.cpp.o.d"
  "CMakeFiles/surfnet_decoder.dir/cluster_growth.cpp.o"
  "CMakeFiles/surfnet_decoder.dir/cluster_growth.cpp.o.d"
  "CMakeFiles/surfnet_decoder.dir/code_trial.cpp.o"
  "CMakeFiles/surfnet_decoder.dir/code_trial.cpp.o.d"
  "CMakeFiles/surfnet_decoder.dir/decoder.cpp.o"
  "CMakeFiles/surfnet_decoder.dir/decoder.cpp.o.d"
  "CMakeFiles/surfnet_decoder.dir/erasure_decoder.cpp.o"
  "CMakeFiles/surfnet_decoder.dir/erasure_decoder.cpp.o.d"
  "CMakeFiles/surfnet_decoder.dir/mwpm.cpp.o"
  "CMakeFiles/surfnet_decoder.dir/mwpm.cpp.o.d"
  "CMakeFiles/surfnet_decoder.dir/peeling.cpp.o"
  "CMakeFiles/surfnet_decoder.dir/peeling.cpp.o.d"
  "CMakeFiles/surfnet_decoder.dir/surfnet_decoder.cpp.o"
  "CMakeFiles/surfnet_decoder.dir/surfnet_decoder.cpp.o.d"
  "CMakeFiles/surfnet_decoder.dir/union_find.cpp.o"
  "CMakeFiles/surfnet_decoder.dir/union_find.cpp.o.d"
  "libsurfnet_decoder.a"
  "libsurfnet_decoder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/surfnet_decoder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
