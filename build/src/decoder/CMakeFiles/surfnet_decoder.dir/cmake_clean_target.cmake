file(REMOVE_RECURSE
  "libsurfnet_decoder.a"
)
