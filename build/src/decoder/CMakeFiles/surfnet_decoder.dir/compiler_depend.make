# Empty compiler generated dependencies file for surfnet_decoder.
# This may be replaced when dependencies are built.
