
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/decoder/blossom.cpp" "src/decoder/CMakeFiles/surfnet_decoder.dir/blossom.cpp.o" "gcc" "src/decoder/CMakeFiles/surfnet_decoder.dir/blossom.cpp.o.d"
  "/root/repo/src/decoder/cluster_growth.cpp" "src/decoder/CMakeFiles/surfnet_decoder.dir/cluster_growth.cpp.o" "gcc" "src/decoder/CMakeFiles/surfnet_decoder.dir/cluster_growth.cpp.o.d"
  "/root/repo/src/decoder/code_trial.cpp" "src/decoder/CMakeFiles/surfnet_decoder.dir/code_trial.cpp.o" "gcc" "src/decoder/CMakeFiles/surfnet_decoder.dir/code_trial.cpp.o.d"
  "/root/repo/src/decoder/decoder.cpp" "src/decoder/CMakeFiles/surfnet_decoder.dir/decoder.cpp.o" "gcc" "src/decoder/CMakeFiles/surfnet_decoder.dir/decoder.cpp.o.d"
  "/root/repo/src/decoder/erasure_decoder.cpp" "src/decoder/CMakeFiles/surfnet_decoder.dir/erasure_decoder.cpp.o" "gcc" "src/decoder/CMakeFiles/surfnet_decoder.dir/erasure_decoder.cpp.o.d"
  "/root/repo/src/decoder/mwpm.cpp" "src/decoder/CMakeFiles/surfnet_decoder.dir/mwpm.cpp.o" "gcc" "src/decoder/CMakeFiles/surfnet_decoder.dir/mwpm.cpp.o.d"
  "/root/repo/src/decoder/peeling.cpp" "src/decoder/CMakeFiles/surfnet_decoder.dir/peeling.cpp.o" "gcc" "src/decoder/CMakeFiles/surfnet_decoder.dir/peeling.cpp.o.d"
  "/root/repo/src/decoder/surfnet_decoder.cpp" "src/decoder/CMakeFiles/surfnet_decoder.dir/surfnet_decoder.cpp.o" "gcc" "src/decoder/CMakeFiles/surfnet_decoder.dir/surfnet_decoder.cpp.o.d"
  "/root/repo/src/decoder/union_find.cpp" "src/decoder/CMakeFiles/surfnet_decoder.dir/union_find.cpp.o" "gcc" "src/decoder/CMakeFiles/surfnet_decoder.dir/union_find.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/qec/CMakeFiles/surfnet_qec.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/surfnet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
