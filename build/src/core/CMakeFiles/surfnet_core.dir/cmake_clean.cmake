file(REMOVE_RECURSE
  "CMakeFiles/surfnet_core.dir/surfnet.cpp.o"
  "CMakeFiles/surfnet_core.dir/surfnet.cpp.o.d"
  "libsurfnet_core.a"
  "libsurfnet_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/surfnet_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
