file(REMOVE_RECURSE
  "libsurfnet_core.a"
)
