# Empty dependencies file for surfnet_core.
# This may be replaced when dependencies are built.
