# Empty dependencies file for surfnet_netsim.
# This may be replaced when dependencies are built.
