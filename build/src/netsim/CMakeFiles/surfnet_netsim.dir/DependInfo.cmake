
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netsim/channel.cpp" "src/netsim/CMakeFiles/surfnet_netsim.dir/channel.cpp.o" "gcc" "src/netsim/CMakeFiles/surfnet_netsim.dir/channel.cpp.o.d"
  "/root/repo/src/netsim/dot.cpp" "src/netsim/CMakeFiles/surfnet_netsim.dir/dot.cpp.o" "gcc" "src/netsim/CMakeFiles/surfnet_netsim.dir/dot.cpp.o.d"
  "/root/repo/src/netsim/entanglement.cpp" "src/netsim/CMakeFiles/surfnet_netsim.dir/entanglement.cpp.o" "gcc" "src/netsim/CMakeFiles/surfnet_netsim.dir/entanglement.cpp.o.d"
  "/root/repo/src/netsim/io.cpp" "src/netsim/CMakeFiles/surfnet_netsim.dir/io.cpp.o" "gcc" "src/netsim/CMakeFiles/surfnet_netsim.dir/io.cpp.o.d"
  "/root/repo/src/netsim/schedule.cpp" "src/netsim/CMakeFiles/surfnet_netsim.dir/schedule.cpp.o" "gcc" "src/netsim/CMakeFiles/surfnet_netsim.dir/schedule.cpp.o.d"
  "/root/repo/src/netsim/simulator.cpp" "src/netsim/CMakeFiles/surfnet_netsim.dir/simulator.cpp.o" "gcc" "src/netsim/CMakeFiles/surfnet_netsim.dir/simulator.cpp.o.d"
  "/root/repo/src/netsim/topology.cpp" "src/netsim/CMakeFiles/surfnet_netsim.dir/topology.cpp.o" "gcc" "src/netsim/CMakeFiles/surfnet_netsim.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/decoder/CMakeFiles/surfnet_decoder.dir/DependInfo.cmake"
  "/root/repo/build/src/qec/CMakeFiles/surfnet_qec.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/surfnet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
