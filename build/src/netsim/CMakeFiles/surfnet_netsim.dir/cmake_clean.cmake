file(REMOVE_RECURSE
  "CMakeFiles/surfnet_netsim.dir/channel.cpp.o"
  "CMakeFiles/surfnet_netsim.dir/channel.cpp.o.d"
  "CMakeFiles/surfnet_netsim.dir/dot.cpp.o"
  "CMakeFiles/surfnet_netsim.dir/dot.cpp.o.d"
  "CMakeFiles/surfnet_netsim.dir/entanglement.cpp.o"
  "CMakeFiles/surfnet_netsim.dir/entanglement.cpp.o.d"
  "CMakeFiles/surfnet_netsim.dir/io.cpp.o"
  "CMakeFiles/surfnet_netsim.dir/io.cpp.o.d"
  "CMakeFiles/surfnet_netsim.dir/schedule.cpp.o"
  "CMakeFiles/surfnet_netsim.dir/schedule.cpp.o.d"
  "CMakeFiles/surfnet_netsim.dir/simulator.cpp.o"
  "CMakeFiles/surfnet_netsim.dir/simulator.cpp.o.d"
  "CMakeFiles/surfnet_netsim.dir/topology.cpp.o"
  "CMakeFiles/surfnet_netsim.dir/topology.cpp.o.d"
  "libsurfnet_netsim.a"
  "libsurfnet_netsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/surfnet_netsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
