file(REMOVE_RECURSE
  "libsurfnet_netsim.a"
)
