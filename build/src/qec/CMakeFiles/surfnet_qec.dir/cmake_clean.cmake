file(REMOVE_RECURSE
  "CMakeFiles/surfnet_qec.dir/core_support.cpp.o"
  "CMakeFiles/surfnet_qec.dir/core_support.cpp.o.d"
  "CMakeFiles/surfnet_qec.dir/error_model.cpp.o"
  "CMakeFiles/surfnet_qec.dir/error_model.cpp.o.d"
  "CMakeFiles/surfnet_qec.dir/graph.cpp.o"
  "CMakeFiles/surfnet_qec.dir/graph.cpp.o.d"
  "CMakeFiles/surfnet_qec.dir/lattice.cpp.o"
  "CMakeFiles/surfnet_qec.dir/lattice.cpp.o.d"
  "CMakeFiles/surfnet_qec.dir/logical.cpp.o"
  "CMakeFiles/surfnet_qec.dir/logical.cpp.o.d"
  "CMakeFiles/surfnet_qec.dir/render.cpp.o"
  "CMakeFiles/surfnet_qec.dir/render.cpp.o.d"
  "CMakeFiles/surfnet_qec.dir/rotated_lattice.cpp.o"
  "CMakeFiles/surfnet_qec.dir/rotated_lattice.cpp.o.d"
  "CMakeFiles/surfnet_qec.dir/spacetime.cpp.o"
  "CMakeFiles/surfnet_qec.dir/spacetime.cpp.o.d"
  "CMakeFiles/surfnet_qec.dir/syndrome.cpp.o"
  "CMakeFiles/surfnet_qec.dir/syndrome.cpp.o.d"
  "libsurfnet_qec.a"
  "libsurfnet_qec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/surfnet_qec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
