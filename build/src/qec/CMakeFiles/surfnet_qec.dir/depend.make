# Empty dependencies file for surfnet_qec.
# This may be replaced when dependencies are built.
