file(REMOVE_RECURSE
  "libsurfnet_qec.a"
)
