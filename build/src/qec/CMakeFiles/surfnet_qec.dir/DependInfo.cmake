
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qec/core_support.cpp" "src/qec/CMakeFiles/surfnet_qec.dir/core_support.cpp.o" "gcc" "src/qec/CMakeFiles/surfnet_qec.dir/core_support.cpp.o.d"
  "/root/repo/src/qec/error_model.cpp" "src/qec/CMakeFiles/surfnet_qec.dir/error_model.cpp.o" "gcc" "src/qec/CMakeFiles/surfnet_qec.dir/error_model.cpp.o.d"
  "/root/repo/src/qec/graph.cpp" "src/qec/CMakeFiles/surfnet_qec.dir/graph.cpp.o" "gcc" "src/qec/CMakeFiles/surfnet_qec.dir/graph.cpp.o.d"
  "/root/repo/src/qec/lattice.cpp" "src/qec/CMakeFiles/surfnet_qec.dir/lattice.cpp.o" "gcc" "src/qec/CMakeFiles/surfnet_qec.dir/lattice.cpp.o.d"
  "/root/repo/src/qec/logical.cpp" "src/qec/CMakeFiles/surfnet_qec.dir/logical.cpp.o" "gcc" "src/qec/CMakeFiles/surfnet_qec.dir/logical.cpp.o.d"
  "/root/repo/src/qec/render.cpp" "src/qec/CMakeFiles/surfnet_qec.dir/render.cpp.o" "gcc" "src/qec/CMakeFiles/surfnet_qec.dir/render.cpp.o.d"
  "/root/repo/src/qec/rotated_lattice.cpp" "src/qec/CMakeFiles/surfnet_qec.dir/rotated_lattice.cpp.o" "gcc" "src/qec/CMakeFiles/surfnet_qec.dir/rotated_lattice.cpp.o.d"
  "/root/repo/src/qec/spacetime.cpp" "src/qec/CMakeFiles/surfnet_qec.dir/spacetime.cpp.o" "gcc" "src/qec/CMakeFiles/surfnet_qec.dir/spacetime.cpp.o.d"
  "/root/repo/src/qec/syndrome.cpp" "src/qec/CMakeFiles/surfnet_qec.dir/syndrome.cpp.o" "gcc" "src/qec/CMakeFiles/surfnet_qec.dir/syndrome.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/surfnet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
