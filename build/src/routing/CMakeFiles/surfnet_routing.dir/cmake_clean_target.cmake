file(REMOVE_RECURSE
  "libsurfnet_routing.a"
)
