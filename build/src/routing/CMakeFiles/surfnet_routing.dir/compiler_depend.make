# Empty compiler generated dependencies file for surfnet_routing.
# This may be replaced when dependencies are built.
