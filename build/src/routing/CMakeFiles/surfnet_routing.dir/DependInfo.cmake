
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/routing/formulation.cpp" "src/routing/CMakeFiles/surfnet_routing.dir/formulation.cpp.o" "gcc" "src/routing/CMakeFiles/surfnet_routing.dir/formulation.cpp.o.d"
  "/root/repo/src/routing/greedy.cpp" "src/routing/CMakeFiles/surfnet_routing.dir/greedy.cpp.o" "gcc" "src/routing/CMakeFiles/surfnet_routing.dir/greedy.cpp.o.d"
  "/root/repo/src/routing/lp_router.cpp" "src/routing/CMakeFiles/surfnet_routing.dir/lp_router.cpp.o" "gcc" "src/routing/CMakeFiles/surfnet_routing.dir/lp_router.cpp.o.d"
  "/root/repo/src/routing/purification.cpp" "src/routing/CMakeFiles/surfnet_routing.dir/purification.cpp.o" "gcc" "src/routing/CMakeFiles/surfnet_routing.dir/purification.cpp.o.d"
  "/root/repo/src/routing/simplex.cpp" "src/routing/CMakeFiles/surfnet_routing.dir/simplex.cpp.o" "gcc" "src/routing/CMakeFiles/surfnet_routing.dir/simplex.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netsim/CMakeFiles/surfnet_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/surfnet_util.dir/DependInfo.cmake"
  "/root/repo/build/src/decoder/CMakeFiles/surfnet_decoder.dir/DependInfo.cmake"
  "/root/repo/build/src/qec/CMakeFiles/surfnet_qec.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
