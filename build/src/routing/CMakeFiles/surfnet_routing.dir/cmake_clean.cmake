file(REMOVE_RECURSE
  "CMakeFiles/surfnet_routing.dir/formulation.cpp.o"
  "CMakeFiles/surfnet_routing.dir/formulation.cpp.o.d"
  "CMakeFiles/surfnet_routing.dir/greedy.cpp.o"
  "CMakeFiles/surfnet_routing.dir/greedy.cpp.o.d"
  "CMakeFiles/surfnet_routing.dir/lp_router.cpp.o"
  "CMakeFiles/surfnet_routing.dir/lp_router.cpp.o.d"
  "CMakeFiles/surfnet_routing.dir/purification.cpp.o"
  "CMakeFiles/surfnet_routing.dir/purification.cpp.o.d"
  "CMakeFiles/surfnet_routing.dir/simplex.cpp.o"
  "CMakeFiles/surfnet_routing.dir/simplex.cpp.o.d"
  "libsurfnet_routing.a"
  "libsurfnet_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/surfnet_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
