# Empty dependencies file for surfnet_util.
# This may be replaced when dependencies are built.
