file(REMOVE_RECURSE
  "CMakeFiles/surfnet_util.dir/stats.cpp.o"
  "CMakeFiles/surfnet_util.dir/stats.cpp.o.d"
  "CMakeFiles/surfnet_util.dir/table.cpp.o"
  "CMakeFiles/surfnet_util.dir/table.cpp.o.d"
  "libsurfnet_util.a"
  "libsurfnet_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/surfnet_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
