file(REMOVE_RECURSE
  "libsurfnet_util.a"
)
