file(REMOVE_RECURSE
  "CMakeFiles/bench_decoder_speed.dir/bench_decoder_speed.cpp.o"
  "CMakeFiles/bench_decoder_speed.dir/bench_decoder_speed.cpp.o.d"
  "bench_decoder_speed"
  "bench_decoder_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_decoder_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
