# Empty dependencies file for bench_decoder_speed.
# This may be replaced when dependencies are built.
