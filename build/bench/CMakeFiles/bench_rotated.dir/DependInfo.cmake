
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_rotated.cpp" "bench/CMakeFiles/bench_rotated.dir/bench_rotated.cpp.o" "gcc" "bench/CMakeFiles/bench_rotated.dir/bench_rotated.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/surfnet_core.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/surfnet_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/surfnet_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/decoder/CMakeFiles/surfnet_decoder.dir/DependInfo.cmake"
  "/root/repo/build/src/qec/CMakeFiles/surfnet_qec.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/surfnet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
