file(REMOVE_RECURSE
  "CMakeFiles/bench_spacetime.dir/bench_spacetime.cpp.o"
  "CMakeFiles/bench_spacetime.dir/bench_spacetime.cpp.o.d"
  "bench_spacetime"
  "bench_spacetime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_spacetime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
