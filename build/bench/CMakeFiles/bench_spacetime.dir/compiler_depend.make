# Empty compiler generated dependencies file for bench_spacetime.
# This may be replaced when dependencies are built.
