file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_core.dir/bench_ablation_core.cpp.o"
  "CMakeFiles/bench_ablation_core.dir/bench_ablation_core.cpp.o.d"
  "bench_ablation_core"
  "bench_ablation_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
