# Empty compiler generated dependencies file for bench_ablation_core.
# This may be replaced when dependencies are built.
