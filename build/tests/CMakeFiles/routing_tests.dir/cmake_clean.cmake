file(REMOVE_RECURSE
  "CMakeFiles/routing_tests.dir/routing/routers_test.cpp.o"
  "CMakeFiles/routing_tests.dir/routing/routers_test.cpp.o.d"
  "CMakeFiles/routing_tests.dir/routing/simplex_test.cpp.o"
  "CMakeFiles/routing_tests.dir/routing/simplex_test.cpp.o.d"
  "routing_tests"
  "routing_tests.pdb"
  "routing_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/routing_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
