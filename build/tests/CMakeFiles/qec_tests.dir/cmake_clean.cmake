file(REMOVE_RECURSE
  "CMakeFiles/qec_tests.dir/qec/error_model_test.cpp.o"
  "CMakeFiles/qec_tests.dir/qec/error_model_test.cpp.o.d"
  "CMakeFiles/qec_tests.dir/qec/graph_test.cpp.o"
  "CMakeFiles/qec_tests.dir/qec/graph_test.cpp.o.d"
  "CMakeFiles/qec_tests.dir/qec/lattice_test.cpp.o"
  "CMakeFiles/qec_tests.dir/qec/lattice_test.cpp.o.d"
  "CMakeFiles/qec_tests.dir/qec/pauli_test.cpp.o"
  "CMakeFiles/qec_tests.dir/qec/pauli_test.cpp.o.d"
  "CMakeFiles/qec_tests.dir/qec/render_test.cpp.o"
  "CMakeFiles/qec_tests.dir/qec/render_test.cpp.o.d"
  "CMakeFiles/qec_tests.dir/qec/rotated_lattice_test.cpp.o"
  "CMakeFiles/qec_tests.dir/qec/rotated_lattice_test.cpp.o.d"
  "CMakeFiles/qec_tests.dir/qec/spacetime_test.cpp.o"
  "CMakeFiles/qec_tests.dir/qec/spacetime_test.cpp.o.d"
  "CMakeFiles/qec_tests.dir/qec/syndrome_test.cpp.o"
  "CMakeFiles/qec_tests.dir/qec/syndrome_test.cpp.o.d"
  "qec_tests"
  "qec_tests.pdb"
  "qec_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qec_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
