# Empty compiler generated dependencies file for qec_tests.
# This may be replaced when dependencies are built.
