file(REMOVE_RECURSE
  "CMakeFiles/netsim_tests.dir/netsim/dot_test.cpp.o"
  "CMakeFiles/netsim_tests.dir/netsim/dot_test.cpp.o.d"
  "CMakeFiles/netsim_tests.dir/netsim/entanglement_test.cpp.o"
  "CMakeFiles/netsim_tests.dir/netsim/entanglement_test.cpp.o.d"
  "CMakeFiles/netsim_tests.dir/netsim/failure_test.cpp.o"
  "CMakeFiles/netsim_tests.dir/netsim/failure_test.cpp.o.d"
  "CMakeFiles/netsim_tests.dir/netsim/io_test.cpp.o"
  "CMakeFiles/netsim_tests.dir/netsim/io_test.cpp.o.d"
  "CMakeFiles/netsim_tests.dir/netsim/simulator_test.cpp.o"
  "CMakeFiles/netsim_tests.dir/netsim/simulator_test.cpp.o.d"
  "CMakeFiles/netsim_tests.dir/netsim/topology_test.cpp.o"
  "CMakeFiles/netsim_tests.dir/netsim/topology_test.cpp.o.d"
  "netsim_tests"
  "netsim_tests.pdb"
  "netsim_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netsim_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
