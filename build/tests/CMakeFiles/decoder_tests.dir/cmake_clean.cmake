file(REMOVE_RECURSE
  "CMakeFiles/decoder_tests.dir/decoder/blossom_test.cpp.o"
  "CMakeFiles/decoder_tests.dir/decoder/blossom_test.cpp.o.d"
  "CMakeFiles/decoder_tests.dir/decoder/cluster_growth_test.cpp.o"
  "CMakeFiles/decoder_tests.dir/decoder/cluster_growth_test.cpp.o.d"
  "CMakeFiles/decoder_tests.dir/decoder/decoders_test.cpp.o"
  "CMakeFiles/decoder_tests.dir/decoder/decoders_test.cpp.o.d"
  "CMakeFiles/decoder_tests.dir/decoder/peeling_test.cpp.o"
  "CMakeFiles/decoder_tests.dir/decoder/peeling_test.cpp.o.d"
  "decoder_tests"
  "decoder_tests.pdb"
  "decoder_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decoder_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
