# Empty compiler generated dependencies file for decoder_tests.
# This may be replaced when dependencies are built.
