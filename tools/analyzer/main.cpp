// surfnet-analyze: semantic lint for the surfnet tree. Builds a declaration
// model per file and runs cross-file rules (module layering, RNG stream
// ownership, unordered-container iteration, trace-schema conformance,
// contract coverage); see rules.h for the rule list and DESIGN.md §9 for
// the policy. Exit codes: 0 clean, 1 non-baselined findings, 2 usage or
// configuration error.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "baseline.h"
#include "json.h"
#include "model.h"
#include "rules.h"

namespace fs = std::filesystem;
using namespace surfnet::analyze;

namespace {

struct Options {
  std::string repo_root = ".";
  std::vector<std::string> paths;  ///< trees/files relative to repo root
  std::string layers_path = "tools/analyzer/layers.json";
  std::string schema_path = "bench/trace_schema.json";
  std::string baseline_path = "tools/analyzer/analyzer-baseline.json";
  std::string trace_impl = "src/obs/trace.cpp";
  std::string changed_base;  ///< --changed BASE: report only changed files
  std::vector<std::string> excludes;  ///< repo-relative prefixes to skip
  bool use_baseline = true;
  bool json_output = false;
};

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [paths...] [options]\n"
      "  paths                 trees or files relative to the repo root\n"
      "                        (default: src bench tests examples)\n"
      "  --repo-root DIR       repository root (default: .)\n"
      "  --changed BASE        analyze everything, report only findings in\n"
      "                        files changed vs git ref BASE\n"
      "  --exclude PREFIX      skip files under this repo-relative prefix\n"
      "                        (repeatable; e.g. deliberately-broken test\n"
      "                        fixtures)\n"
      "  --json                machine-readable findings envelope\n"
      "  --layers FILE         layer DAG (default: tools/analyzer/layers.json)\n"
      "  --trace-schema FILE   pinned trace schema (default:\n"
      "                        bench/trace_schema.json)\n"
      "  --trace-impl FILE     trace serializer to check (default:\n"
      "                        src/obs/trace.cpp)\n"
      "  --baseline FILE       suppression baseline (default:\n"
      "                        tools/analyzer/analyzer-baseline.json)\n"
      "  --no-baseline         ignore the baseline (report everything)\n",
      argv0);
  return 2;
}

bool parse_args(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](std::string& into) {
      if (i + 1 >= argc) return false;
      into = argv[++i];
      return true;
    };
    if (arg == "--repo-root") {
      if (!value(opt.repo_root)) return false;
    } else if (arg == "--changed") {
      if (!value(opt.changed_base)) return false;
    } else if (arg == "--exclude") {
      std::string prefix;
      if (!value(prefix)) return false;
      opt.excludes.push_back(std::move(prefix));
    } else if (arg == "--layers") {
      if (!value(opt.layers_path)) return false;
    } else if (arg == "--trace-schema") {
      if (!value(opt.schema_path)) return false;
    } else if (arg == "--trace-impl") {
      if (!value(opt.trace_impl)) return false;
    } else if (arg == "--baseline") {
      if (!value(opt.baseline_path)) return false;
    } else if (arg == "--no-baseline") {
      opt.use_baseline = false;
    } else if (arg == "--json") {
      opt.json_output = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return false;
    } else {
      opt.paths.push_back(arg);
    }
  }
  if (opt.paths.empty()) opt.paths = {"src", "bench", "tests", "examples"};
  return true;
}

bool cpp_source(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc" ||
         ext == ".cxx";
}

bool read_file(const fs::path& p, std::string& out) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  out = buf.str();
  return true;
}

/// Repo-relative '/'-separated path.
std::string rel_of(const fs::path& p, const fs::path& root) {
  return fs::relative(p, root).generic_string();
}

/// `git diff --name-only` against the base ref, for --changed mode.
bool changed_files(const Options& opt, std::set<std::string>& out,
                   std::string& error) {
  const std::string cmd = "git -C '" + opt.repo_root +
                          "' diff --name-only --diff-filter=d '" +
                          opt.changed_base + "' -- 2>/dev/null";
  FILE* pipe = popen(cmd.c_str(), "r");
  if (!pipe) {
    error = "cannot run git diff";
    return false;
  }
  char buf[4096];
  std::string text;
  while (std::fgets(buf, sizeof buf, pipe)) text += buf;
  const int status = pclose(pipe);
  if (status != 0) {
    error = "git diff --name-only " + opt.changed_base + " failed";
    return false;
  }
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line))
    if (!line.empty()) out.insert(line);
  return true;
}

int config_error(const std::string& what) {
  std::fprintf(stderr, "surfnet-analyze: %s\n", what.c_str());
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) return usage(argv[0]);
  const fs::path root = fs::path(opt.repo_root);
  if (!fs::is_directory(root))
    return config_error("repo root '" + opt.repo_root +
                        "' is not a directory");

  // -- Configuration -------------------------------------------------------
  AnalyzerContext ctx;
  ctx.trace_impl = opt.trace_impl;

  std::string text, error;
  if (read_file(root / opt.layers_path, text)) {
    JsonPtr doc = json_parse(text, error);
    if (!doc || doc->type != JsonValue::Type::Object)
      return config_error(opt.layers_path + ": " +
                          (error.empty() ? "not an object" : error));
    auto layer_root = doc->object.find("root");
    if (layer_root != doc->object.end())
      ctx.layers.root = layer_root->second->string;
    auto layers = doc->object.find("layers");
    if (layers == doc->object.end() ||
        layers->second->type != JsonValue::Type::Array)
      return config_error(opt.layers_path + ": missing \"layers\" array");
    for (const JsonPtr& layer : layers->second->array) {
      if (layer->type != JsonValue::Type::String)
        return config_error(opt.layers_path + ": layers must be strings");
      ctx.layers.rank[layer->string] =
          static_cast<int>(ctx.layers.layers.size());
      ctx.layers.layers.push_back(layer->string);
    }
  }  // no layers file: the layering rule is off (fixture trees)

  if (read_file(root / opt.schema_path, text)) {
    JsonPtr doc = json_parse(text, error);
    if (!doc || doc->type != JsonValue::Type::Object)
      return config_error(opt.schema_path + ": " +
                          (error.empty() ? "not an object" : error));
    auto kinds = doc->object.find("kinds");
    if (kinds == doc->object.end() ||
        kinds->second->type != JsonValue::Type::Object)
      return config_error(opt.schema_path + ": missing \"kinds\" object");
    for (const auto& [kind, keys] : kinds->second->object) {
      if (keys->type != JsonValue::Type::Array)
        return config_error(opt.schema_path + ": kind '" + kind +
                            "' must map to an array of keys");
      for (const JsonPtr& key : keys->array)
        ctx.trace_schema[kind].insert(key->string);
    }
  }  // no schema file: the trace rule is off

  std::vector<BaselineEntry> baseline;
  if (opt.use_baseline && read_file(root / opt.baseline_path, text)) {
    if (!load_baseline(text, baseline, error))
      return config_error(opt.baseline_path + ": " + error);
  }

  // -- File collection (sorted for deterministic findings) -----------------
  auto excluded = [&](const std::string& rel) {
    for (const std::string& prefix : opt.excludes)
      if (rel.size() >= prefix.size() &&
          rel.compare(0, prefix.size(), prefix) == 0 &&
          (rel.size() == prefix.size() || rel[prefix.size()] == '/' ||
           prefix.back() == '/'))
        return true;
    return false;
  };
  std::set<std::string> rels;
  for (const std::string& given : opt.paths) {
    const fs::path p = root / given;
    if (fs::is_regular_file(p)) {
      if (const std::string rel = rel_of(p, root); !excluded(rel))
        rels.insert(rel);
    } else if (fs::is_directory(p)) {
      for (const auto& entry : fs::recursive_directory_iterator(p))
        if (entry.is_regular_file() && cpp_source(entry.path()))
          if (const std::string rel = rel_of(entry.path(), root);
              !excluded(rel))
            rels.insert(rel);
    } else {
      return config_error("path '" + given + "' not found under repo root");
    }
  }

  for (const std::string& rel : rels) {
    if (!read_file(root / rel, text))
      return config_error("cannot read '" + rel + "'");
    ctx.files.push_back(build_model(rel, text));
  }

  // -- Rules + baseline ----------------------------------------------------
  std::vector<Finding> findings = run_rules(ctx);

  if (!opt.changed_base.empty()) {
    std::set<std::string> changed;
    if (!changed_files(opt, changed, error)) return config_error(error);
    findings.erase(std::remove_if(findings.begin(), findings.end(),
                                  [&](const Finding& f) {
                                    return !changed.count(f.file);
                                  }),
                   findings.end());
  }

  BaselineResult result = apply_baseline(findings, baseline);

  // -- Report --------------------------------------------------------------
  if (opt.json_output) {
    std::string out = "{\"bench\":\"surfnet-analyze\",\"schema_version\":1,";
    out += "\"suppressed\":" + std::to_string(result.suppressed.size());
    out += ",\"results\":[";
    for (std::size_t i = 0; i < result.active.size(); ++i) {
      const Finding& f = result.active[i];
      if (i) out += ',';
      out += "{\"file\":\"" + json_escape(f.file) + "\"";
      out += ",\"line\":" + std::to_string(f.line);
      out += ",\"rule\":\"" + json_escape(f.rule) + "\"";
      out += ",\"key\":\"" + json_escape(f.key) + "\"";
      out += ",\"message\":\"" + json_escape(f.message) + "\"}";
    }
    out += "]}";
    std::puts(out.c_str());
  } else {
    for (const Finding& f : result.active)
      std::printf("%s:%d: [%s] %s\n", f.file.c_str(), f.line, f.rule.c_str(),
                  f.message.c_str());
    if (!result.active.empty())
      std::printf("surfnet-analyze: %zu finding(s), %zu baselined\n",
                  result.active.size(), result.suppressed.size());
  }

  // Stale entries keep the debt ledger honest, but staleness is only
  // decidable when the entry's file was actually analyzed (--changed runs
  // and path-restricted runs see a slice of the findings).
  if (opt.changed_base.empty()) {
    result.unused.erase(
        std::remove_if(result.unused.begin(), result.unused.end(),
                       [&](const BaselineEntry& e) {
                         return !rels.count(e.file);
                       }),
        result.unused.end());
    for (const BaselineEntry& e : result.unused)
      std::fprintf(stderr,
                   "surfnet-analyze: stale baseline entry (%s, %s, %s): "
                   "finding no longer fires; remove it\n",
                   e.rule.c_str(), e.file.c_str(), e.key.c_str());
    if (!result.unused.empty() && result.active.empty()) return 1;
  }

  return result.active.empty() ? 0 : 1;
}
