#include <algorithm>

#include "rules.h"

namespace surfnet::analyze {

namespace {

bool is_punct(const Token& t, const char* s) {
  return t.kind == TokKind::Punct && t.text == s;
}
bool is_ident(const Token& t, const char* s) {
  return t.kind == TokKind::Ident && t.text == s;
}

const std::set<std::string>& engine_names() {
  static const std::set<std::string> names = {
      "Rng",          "mt19937",      "mt19937_64",
      "minstd_rand",  "minstd_rand0", "default_random_engine",
      "ranlux24",     "ranlux48",     "knuth_b"};
  return names;
}

const std::set<std::string>& draw_methods() {
  static const std::set<std::string> names = {"uniform", "bernoulli", "below",
                                              "between"};
  return names;
}

/// Does this function borrow a caller-owned RNG stream?
std::set<std::string> rng_params(const Function& fn) {
  std::set<std::string> names;
  for (const Param& p : fn.params) {
    if (p.name.empty()) continue;
    const bool rng_type = p.type.find("Rng") != std::string::npos &&
                          p.type.find('&') != std::string::npos;
    if (rng_type || p.name == "rng") names.insert(p.name);
  }
  return names;
}

/// Token indexes (of the rng identifier) of every draw in [begin, end).
std::vector<std::size_t> find_draws(const std::vector<Token>& toks,
                                    std::size_t begin, std::size_t end,
                                    const std::set<std::string>& rngs) {
  std::vector<std::size_t> draws;
  for (std::size_t i = begin; i < end; ++i) {
    if (toks[i].kind != TokKind::Ident || !rngs.count(toks[i].text)) continue;
    // rng.uniform(... / rng.bernoulli(... / rng(...)
    if (i + 3 < end && is_punct(toks[i + 1], ".") &&
        draw_methods().count(toks[i + 2].text) &&
        is_punct(toks[i + 3], "(")) {
      draws.push_back(i);
      continue;
    }
    if (i + 1 < end && is_punct(toks[i + 1], "(")) draws.push_back(i);
  }
  return draws;
}

struct IfStmt {
  std::size_t then_begin = 0, then_end = 0;
  std::size_t else_begin = 0, else_end = 0;  ///< 0,0 when absent
};

/// [start, end) of the statement beginning at `s`; handles blocks, nested
/// if-chains, and simple `...;` statements.
std::size_t statement_end(const std::vector<Token>& toks, std::size_t s,
                          std::size_t limit);

std::size_t if_statement_end(const std::vector<Token>& toks, std::size_t i,
                             std::size_t limit) {
  // i points at "if". Skip "constexpr", the condition, then the branches.
  std::size_t j = i + 1;
  if (j < limit && is_ident(toks[j], "constexpr")) ++j;
  if (j >= limit || !is_punct(toks[j], "(")) return i + 1;
  j = match_forward(toks, j);
  j = statement_end(toks, j, limit);
  if (j < limit && is_ident(toks[j], "else"))
    j = statement_end(toks, j + 1, limit);
  return j;
}

std::size_t statement_end(const std::vector<Token>& toks, std::size_t s,
                          std::size_t limit) {
  if (s >= limit) return limit;
  if (is_punct(toks[s], "{")) return std::min(match_forward(toks, s), limit);
  if (is_ident(toks[s], "if")) return if_statement_end(toks, s, limit);
  int depth = 0;
  for (std::size_t j = s; j < limit; ++j) {
    if (toks[j].kind != TokKind::Punct) continue;
    const std::string& p = toks[j].text;
    if (p == "(" || p == "[" || p == "{") ++depth;
    else if (p == ")" || p == "]" || p == "}") --depth;
    else if (p == ";" && depth == 0) return j + 1;
  }
  return limit;
}

/// Every if-statement inside [begin, end) with its branch ranges.
std::vector<IfStmt> collect_ifs(const std::vector<Token>& toks,
                                std::size_t begin, std::size_t end) {
  std::vector<IfStmt> ifs;
  for (std::size_t i = begin; i < end; ++i) {
    if (!is_ident(toks[i], "if")) continue;
    std::size_t j = i + 1;
    if (j < end && is_ident(toks[j], "constexpr")) ++j;
    if (j >= end || !is_punct(toks[j], "(")) continue;
    const std::size_t cond_end = match_forward(toks, j);
    IfStmt stmt;
    stmt.then_begin = cond_end;
    stmt.then_end = statement_end(toks, cond_end, end);
    if (stmt.then_end < end && is_ident(toks[stmt.then_end], "else")) {
      stmt.else_begin = stmt.then_end + 1;
      stmt.else_end = statement_end(toks, stmt.else_begin, end);
    }
    ifs.push_back(stmt);
  }
  return ifs;
}

/// Backward scan from the draw to its statement boundary: a && / || / ?:
/// on the evaluation path means the draw only happens on some executions.
bool short_circuit_guarded(const std::vector<Token>& toks, std::size_t draw,
                           std::size_t body_begin) {
  int depth = 0;
  bool pending_colon = false;
  for (std::size_t j = draw; j > body_begin; --j) {
    const Token& t = toks[j - 1];
    if (t.kind != TokKind::Punct && t.kind != TokKind::Ident) continue;
    const std::string& p = t.text;
    if (t.kind == TokKind::Punct) {
      if (p == ")" || p == "]") ++depth;
      else if (p == "(" || p == "[") --depth;
      else if (depth <= 0) {
        if (p == ";" || p == "{" || p == "}") return false;
        if (p == "&&" || p == "||") return true;
        if (p == "?") return true;  // first or second ternary arm
        if (p == ":") pending_colon = true;
      }
    } else if (depth <= 0 && (p == "case" || p == "default") &&
               pending_colon) {
      return false;  // the colon was a switch label, not a ternary
    }
  }
  return false;
}

bool event_core_file(const std::string& rel) {
  return rel.rfind("src/netsim/event", 0) == 0 ||
         rel.rfind("src/netsim/workload", 0) == 0;
}

}  // namespace

void rule_rng(const AnalyzerContext& ctx, std::vector<Finding>& out) {
  for (const FileModel& f : ctx.files) {
    if (f.rel_path.rfind("src/", 0) != 0) continue;
    const std::vector<Token>& toks = f.tokens;
    for (const Function& fn : f.functions) {
      const std::set<std::string> rngs = rng_params(fn);
      if (rngs.empty()) continue;
      const std::size_t begin = fn.body_begin;
      const std::size_t end = std::min(fn.body_end, toks.size());

      // (a) A borrowed stream means no second engine: constructing a local
      // generator inside the function splits the stream and silently
      // breaks (seed, plan) bitwise replay.
      for (std::size_t i = begin; i < end; ++i) {
        if (toks[i].kind != TokKind::Ident ||
            !engine_names().count(toks[i].text))
          continue;
        if (i > 0 && (is_punct(toks[i - 1], ".") ||
                      is_punct(toks[i - 1], "->")))
          continue;  // member access, not a type
        if (i + 1 >= end) continue;
        const Token& next = toks[i + 1];
        const bool declares_named =
            next.kind == TokKind::Ident &&
            (i + 2 >= end || !is_punct(toks[i + 2], ":"));
        const bool constructs_temp =
            is_punct(next, "(") || is_punct(next, "{");
        if (is_punct(next, "::") || is_punct(next, "&") ||
            is_punct(next, "*") || is_punct(next, ">"))
          continue;  // nested-type use, reference alias, or template arg
        if (declares_named || constructs_temp) {
          out.push_back(
              {f.rel_path, toks[i].line, "rng-ownership",
               fn.name + ":" + toks[i].text,
               "'" + fn.qualified + "' borrows an Rng& but constructs a "
               "local '" + toks[i].text + "' engine; all draws must come "
               "from the single caller-owned stream (util/rng.h)"});
        }
      }

      // (b) fork() inside a borrowing function starts a second stream.
      for (std::size_t i = begin; i + 2 < end; ++i) {
        if (toks[i].kind == TokKind::Ident && rngs.count(toks[i].text) &&
            is_punct(toks[i + 1], ".") && is_ident(toks[i + 2], "fork")) {
          out.push_back(
              {f.rel_path, toks[i].line, "rng-ownership",
               fn.name + ":fork",
               "'" + fn.qualified + "' forks the borrowed Rng&; deriving a "
               "second stream inside a borrowing function hides a "
               "draw-order dependency from the caller"});
        }
      }

      // (c) Draw-order hazards in the event/workload engines: a draw that
      // executes only on some control paths shifts the shared RNG stream
      // between engine implementations.
      if (!event_core_file(f.rel_path)) continue;
      const std::vector<std::size_t> draws = find_draws(toks, begin, end, rngs);
      if (draws.empty()) continue;
      const std::vector<IfStmt> ifs = collect_ifs(toks, begin, end);
      for (const std::size_t d : draws) {
        bool hazard = short_circuit_guarded(toks, d, begin);
        const char* how = "behind a short-circuit or ternary";
        if (!hazard) {
          // Innermost if-branch containing the draw, with no draw in the
          // matching branch.
          std::size_t best_span = static_cast<std::size_t>(-1);
          for (const IfStmt& s : ifs) {
            const bool in_then = d >= s.then_begin && d < s.then_end;
            const bool in_else =
                s.else_end && d >= s.else_begin && d < s.else_end;
            if (!in_then && !in_else) continue;
            const std::size_t span = in_then ? s.then_end - s.then_begin
                                             : s.else_end - s.else_begin;
            if (span >= best_span) continue;
            best_span = span;
            const std::size_t ob = in_then ? s.else_begin : s.then_begin;
            const std::size_t oe = in_then ? s.else_end : s.then_end;
            hazard = oe == ob ||
                     find_draws(toks, ob, oe, rngs).empty();
            how = in_then && !s.else_end
                      ? "inside an if with no matching else-draw"
                      : "in one branch of an if whose other branch does "
                        "not draw";
          }
        }
        if (hazard) {
          out.push_back(
              {f.rel_path, toks[d].line, "rng-ownership",
               fn.name + ":draw@" +
                   (toks[d + 1].kind == TokKind::Punct &&
                            toks[d + 1].text == "."
                        ? toks[d + 2].text
                        : "call"),
               "conditional draw " + std::string(how) + " in '" +
                   fn.qualified + "': the event/workload engines must keep "
                   "the RNG stream identical across engines and thread "
                   "counts; hoist the draw or draw in both branches "
                   "(DESIGN.md §9)"});
        }
      }
    }
  }
}

}  // namespace surfnet::analyze
