#!/usr/bin/env python3
"""Golden-fixture driver for surfnet-analyze.

Each subdirectory of --fixtures is a miniature repo root: a `src/` tree,
optional config files (`layers.json`, `trace_schema.json`, `baseline.json`),
an `expected.txt` with the exact finding lines the analyzer must print
(missing or empty = the fixture must be clean), and an optional
`expect_exit` overriding the derived exit code (used by the config-error
fixtures).

Run with --update to regenerate every expected.txt from current analyzer
output (then diff-review the result like any golden change).
"""

import argparse
import re
import subprocess
import sys
from pathlib import Path

FINDING_RE = re.compile(r"^\S+:\d+: \[[a-z-]+\] ")


def run_fixture(analyzer: str, fixture: Path):
    cmd = [
        analyzer, "src",
        "--repo-root", str(fixture),
        "--layers", "layers.json",
        "--trace-schema", "trace_schema.json",
        "--trace-impl", "src/obs/trace.cpp",
        "--baseline", "baseline.json",
    ]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    findings = [ln for ln in proc.stdout.splitlines() if FINDING_RE.match(ln)]
    return proc, findings


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--analyzer", required=True)
    parser.add_argument("--fixtures", required=True)
    parser.add_argument("--update", action="store_true",
                        help="rewrite expected.txt files from current output")
    args = parser.parse_args()

    fixtures = sorted(p for p in Path(args.fixtures).iterdir() if p.is_dir())
    if not fixtures:
        sys.exit("fixture_test: no fixtures found")

    failures = []
    for fixture in fixtures:
        proc, findings = run_fixture(args.analyzer, fixture)
        expected_file = fixture / "expected.txt"

        if args.update:
            if findings:
                expected_file.write_text("\n".join(findings) + "\n")
            elif expected_file.exists():
                expected_file.unlink()
            print(f"updated {fixture.name}: {len(findings)} finding(s)")
            continue

        expected = []
        if expected_file.exists():
            expected = [ln for ln in expected_file.read_text().splitlines()
                        if ln.strip()]
        exit_file = fixture / "expect_exit"
        want_exit = (int(exit_file.read_text().strip()) if exit_file.exists()
                     else (1 if expected else 0))

        problems = []
        if proc.returncode != want_exit:
            problems.append(
                f"exit {proc.returncode} != expected {want_exit}"
                + (f"; stderr: {proc.stderr.strip()}" if proc.stderr else ""))
        if want_exit != 2 and findings != expected:
            missing = [ln for ln in expected if ln not in findings]
            extra = [ln for ln in findings if ln not in expected]
            for ln in missing:
                problems.append(f"missing: {ln}")
            for ln in extra:
                problems.append(f"unexpected: {ln}")
        if problems:
            failures.append((fixture.name, problems))
            print(f"FAIL {fixture.name}")
            for p in problems:
                print(f"  {p}")
        else:
            print(f"ok   {fixture.name} ({len(findings)} finding(s))")

    if failures:
        sys.exit(f"fixture_test: {len(failures)}/{len(fixtures)} "
                 "fixture(s) failed")
    print(f"fixture_test: all {len(fixtures)} fixtures passed")


if __name__ == "__main__":
    main()
