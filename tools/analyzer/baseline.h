#pragma once

// Suppression baseline: the committed debt ledger. Each entry pins one
// finding by (rule, file, key) — never by line, so entries survive
// unrelated edits — and must say WHY the finding is acceptable. A baseline
// match suppresses the finding; an entry that matches nothing is reported
// so the ledger shrinks as debt is paid. Prefer fixing over baselining;
// prefer a baseline entry (reviewed, central, justified) over a
// `lint: allow` comment (file-wide, easy to forget).

#include <string>
#include <vector>

#include "rules.h"

namespace surfnet::analyze {

struct BaselineEntry {
  std::string rule;
  std::string file;
  std::string key;
  std::string why;
};

/// Parse a baseline file. On malformed input (bad JSON, missing fields, an
/// entry without a non-empty "why") returns false and sets `error`.
bool load_baseline(const std::string& text, std::vector<BaselineEntry>& out,
                   std::string& error);

struct BaselineResult {
  std::vector<Finding> active;      ///< not covered by the baseline
  std::vector<Finding> suppressed;  ///< matched an entry
  std::vector<BaselineEntry> unused;  ///< entries that matched nothing
};

BaselineResult apply_baseline(const std::vector<Finding>& findings,
                              const std::vector<BaselineEntry>& entries);

}  // namespace surfnet::analyze
