#include <algorithm>

#include "rules.h"

namespace surfnet::analyze {

namespace {

bool in_tree(const std::string& rel, const char* tree) {
  const std::string prefix = std::string(tree) + "/";
  return rel.rfind(prefix, 0) == 0;
}

bool is_punct(const Token& t, const char* s) {
  return t.kind == TokKind::Punct && t.text == s;
}

}  // namespace

void rule_lexer(const AnalyzerContext& ctx, std::vector<Finding>& out) {
  for (const FileModel& f : ctx.files)
    for (const LexError& err : f.lex_errors)
      out.push_back({f.rel_path, err.line, "lexer", err.message,
                     err.message + "; the file cannot be analyzed reliably "
                     "past this point"});
}

void rule_unordered(const AnalyzerContext& ctx, std::vector<Finding>& out) {
  for (const FileModel& f : ctx.files) {
    // Determinism-relevant trees only: library results and bench records.
    if (!in_tree(f.rel_path, "src") && !in_tree(f.rel_path, "bench"))
      continue;
    if (f.unordered.empty()) continue;
    std::map<std::string, int> declared;
    for (const UnorderedDecl& d : f.unordered) declared[d.name] = d.line;

    const std::vector<Token>& toks = f.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      // Range-for over a declared container: for ( decl : expr ).
      if (toks[i].kind == TokKind::Ident && toks[i].text == "for" &&
          i + 1 < toks.size() && is_punct(toks[i + 1], "(")) {
        const std::size_t close = match_forward(toks, i + 1);
        std::size_t colon = 0;
        for (std::size_t j = i + 2; j + 1 < close; ++j)
          if (is_punct(toks[j], ":")) {
            colon = j;
            break;
          }
        if (!colon) continue;
        for (std::size_t j = colon + 1; j + 1 < close; ++j) {
          auto it = toks[j].kind == TokKind::Ident
                        ? declared.find(toks[j].text)
                        : declared.end();
          if (it == declared.end()) continue;
          out.push_back(
              {f.rel_path, toks[j].line, "unordered-state", it->first,
               "iterating '" + it->first + "' (std::unordered_* declared "
               "line " + std::to_string(it->second) + "): order is "
               "implementation-defined and leaks into results/traces/"
               "metrics; copy into a sorted vector first"});
          break;
        }
        continue;
      }
      // Iterator-based walk or order-sensitive accumulation:
      // name.begin()/cbegin()/rbegin().
      if (toks[i].kind == TokKind::Ident && i + 2 < toks.size() &&
          is_punct(toks[i + 1], ".") &&
          (toks[i + 2].text == "begin" || toks[i + 2].text == "cbegin" ||
           toks[i + 2].text == "rbegin")) {
        auto it = declared.find(toks[i].text);
        if (it == declared.end()) continue;
        out.push_back(
            {f.rel_path, toks[i].line, "unordered-state", it->first,
             "taking '" + it->first + ".begin()' (std::unordered_* declared "
             "line " + std::to_string(it->second) + "): iteration order is "
             "implementation-defined; copy into a sorted vector first"});
      }
    }
  }
}

std::vector<Finding> run_rules(const AnalyzerContext& ctx) {
  std::vector<Finding> findings;
  rule_lexer(ctx, findings);
  rule_layering(ctx, findings);
  rule_rng(ctx, findings);
  rule_unordered(ctx, findings);
  rule_trace_schema(ctx, findings);
  rule_contracts(ctx, findings);

  // File-level `lint: allow(<rule>)` suppression, same contract as
  // scripts/lint_surfnet.py.
  std::map<std::string, const FileModel*> by_rel;
  for (const FileModel& f : ctx.files) by_rel[f.rel_path] = &f;
  std::vector<Finding> kept;
  for (Finding& finding : findings) {
    auto it = by_rel.find(finding.file);
    if (it != by_rel.end() && it->second->allowed_rules.count(finding.rule))
      continue;
    kept.push_back(std::move(finding));
  }
  std::sort(kept.begin(), kept.end());
  kept.erase(std::unique(kept.begin(), kept.end(),
                         [](const Finding& a, const Finding& b) {
                           return a.file == b.file && a.line == b.line &&
                                  a.rule == b.rule && a.key == b.key;
                         }),
             kept.end());
  return kept;
}

}  // namespace surfnet::analyze
