#include "json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace surfnet::analyze {

namespace {

class Parser {
 public:
  Parser(const std::string& text, std::string& error)
      : text_(text), error_(error) {}

  JsonPtr run() {
    JsonPtr value = parse_value();
    if (!value) return nullptr;
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing characters after document");
      return nullptr;
    }
    return value;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  void fail(const std::string& what) {
    if (error_.empty()) {
      char where[32];
      std::snprintf(where, sizeof where, " (offset %zu)", pos_);
      error_ = what + where;
    }
  }

  JsonPtr parse_value() {
    skip_ws();
    if (pos_ >= text_.size()) {
      fail("unexpected end of document");
      return nullptr;
    }
    const char c = text_[pos_];
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return parse_string();
    if (c == 't' || c == 'f') return parse_bool();
    if (c == 'n') return parse_null();
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c)))
      return parse_number();
    fail("unexpected character");
    return nullptr;
  }

  JsonPtr parse_object() {
    auto value = std::make_shared<JsonValue>();
    value->type = JsonValue::Type::Object;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return value;
    }
    while (true) {
      skip_ws();
      JsonPtr key = parse_string();
      if (!key) return nullptr;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        fail("expected ':' in object");
        return nullptr;
      }
      ++pos_;
      JsonPtr member = parse_value();
      if (!member) return nullptr;
      value->object[key->string] = member;
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (pos_ < text_.size() && text_[pos_] == '}') {
        ++pos_;
        return value;
      }
      fail("expected ',' or '}' in object");
      return nullptr;
    }
  }

  JsonPtr parse_array() {
    auto value = std::make_shared<JsonValue>();
    value->type = JsonValue::Type::Array;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return value;
    }
    while (true) {
      JsonPtr element = parse_value();
      if (!element) return nullptr;
      value->array.push_back(element);
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (pos_ < text_.size() && text_[pos_] == ']') {
        ++pos_;
        return value;
      }
      fail("expected ',' or ']' in array");
      return nullptr;
    }
  }

  JsonPtr parse_string() {
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      fail("expected string");
      return nullptr;
    }
    ++pos_;
    auto value = std::make_shared<JsonValue>();
    value->type = JsonValue::Type::String;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return value;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_++];
        switch (esc) {
          case 'n': value->string += '\n'; break;
          case 't': value->string += '\t'; break;
          case 'r': value->string += '\r'; break;
          case 'b': value->string += '\b'; break;
          case 'f': value->string += '\f'; break;
          case 'u':
            // Keep the raw sequence; config files are plain ASCII.
            value->string += "\\u";
            break;
          default: value->string += esc; break;
        }
        continue;
      }
      value->string += c;
      ++pos_;
    }
    fail("unterminated string");
    return nullptr;
  }

  JsonPtr parse_bool() {
    auto value = std::make_shared<JsonValue>();
    value->type = JsonValue::Type::Bool;
    if (text_.compare(pos_, 4, "true") == 0) {
      value->boolean = true;
      pos_ += 4;
      return value;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      value->boolean = false;
      pos_ += 5;
      return value;
    }
    fail("invalid literal");
    return nullptr;
  }

  JsonPtr parse_null() {
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return std::make_shared<JsonValue>();
    }
    fail("invalid literal");
    return nullptr;
  }

  JsonPtr parse_number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E'))
      ++pos_;
    auto value = std::make_shared<JsonValue>();
    value->type = JsonValue::Type::Number;
    value->number = std::strtod(text_.substr(start, pos_ - start).c_str(),
                                nullptr);
    return value;
  }

  const std::string& text_;
  std::string& error_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonPtr json_parse(const std::string& text, std::string& error) {
  return Parser(text, error).run();
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace surfnet::analyze
