#include "model.h"

#include <array>

namespace surfnet::analyze {

namespace {

bool is_punct(const Token& t, const char* s) {
  return t.kind == TokKind::Punct && t.text == s;
}
bool is_ident(const Token& t, const char* s) {
  return t.kind == TokKind::Ident && t.text == s;
}

const std::set<std::string>& control_keywords() {
  static const std::set<std::string> kw = {
      "if",    "for",   "while",  "switch", "catch", "do",
      "return", "sizeof", "alignof", "decltype", "static_assert"};
  return kw;
}

const std::set<std::string>& type_keywords() {
  static const std::set<std::string> kw = {
      "int",   "char", "bool",   "float",    "double", "long",  "short",
      "signed", "unsigned", "void", "auto",  "const",  "size_t"};
  return kw;
}

bool is_unordered_name(const std::string& s) {
  return s == "unordered_map" || s == "unordered_set" ||
         s == "unordered_multimap" || s == "unordered_multiset";
}

struct Scope {
  enum Kind { TopLevel, Namespace, Class, Function, Enum, Other } kind;
  bool access_public = true;  ///< current access when kind == Class
};

class ModelBuilder {
 public:
  ModelBuilder(FileModel& model) : m_(model), toks_(model.tokens) {}

  void run() {
    scopes_.push_back({Scope::TopLevel, true});
    for (std::size_t i = 0; i < toks_.size(); ++i) {
      const Token& t = toks_[i];
      if (t.kind == TokKind::PpInclude) {
        record_include(t);
        continue;
      }
      if (t.kind == TokKind::Ident && is_unordered_name(t.text)) {
        record_unordered(i);
        continue;
      }
      if (t.kind == TokKind::Ident && at_decl_scope() && m_.is_header &&
          i + 1 < toks_.size() && is_punct(toks_[i + 1], "(") &&
          !control_keywords().count(t.text)) {
        m_.header_decl_names.insert(t.text);
      }
      if (is_punct(t, "{")) {
        open_brace(i);
        continue;
      }
      if (is_punct(t, "}")) {
        if (scopes_.size() > 1) scopes_.pop_back();
        continue;
      }
      // Access specifier inside a class body: "public :" etc.
      if (t.kind == TokKind::Ident && scopes_.back().kind == Scope::Class &&
          i + 1 < toks_.size() && is_punct(toks_[i + 1], ":")) {
        if (t.text == "public") scopes_.back().access_public = true;
        if (t.text == "private" || t.text == "protected")
          scopes_.back().access_public = false;
      }
    }
  }

 private:
  bool at_decl_scope() const {
    const Scope::Kind k = scopes_.back().kind;
    return k == Scope::TopLevel || k == Scope::Namespace || k == Scope::Class;
  }

  void record_include(const Token& t) {
    if (t.text.empty()) return;
    Include inc;
    inc.quoted = t.text[0] == '"';
    inc.target = t.text.substr(1);
    inc.line = t.line;
    m_.includes.push_back(inc);
  }

  /// `unordered_xxx < ... > name` at token index i (the container ident).
  void record_unordered(std::size_t i) {
    if (i + 1 >= toks_.size() || !is_punct(toks_[i + 1], "<")) return;
    std::size_t after = match_forward(toks_, i + 1);
    if (after >= toks_.size()) return;
    // Nested type access (Foo::iterator) is not a declaration.
    if (is_punct(toks_[after], "::")) return;
    while (after < toks_.size() &&
           (is_punct(toks_[after], "&") || is_punct(toks_[after], "*") ||
            is_ident(toks_[after], "const")))
      ++after;
    if (after >= toks_.size() || toks_[after].kind != TokKind::Ident) return;
    if (after + 1 < toks_.size() && is_punct(toks_[after + 1], "(") &&
        control_keywords().count(toks_[after].text))
      return;
    UnorderedDecl decl;
    decl.name = toks_[after].text;
    decl.line = toks_[after].line;
    decl.member = scopes_.back().kind == Scope::Class;
    m_.unordered.push_back(decl);
  }

  void open_brace(std::size_t i) {
    // Inside a function every nested brace (lambda, init-list, control
    // block) is part of that function's body: just track depth.
    for (const Scope& s : scopes_)
      if (s.kind == Scope::Function) {
        scopes_.push_back({Scope::Other, true});
        return;
      }
    if (try_function(i)) {
      scopes_.push_back({Scope::Function, true});
      return;
    }
    scopes_.push_back({classify_non_function(i), true});
  }

  /// Scan back from `end` (exclusive) to the nearest ; { } at depth 0
  /// looking for a scope keyword.
  Scope::Kind classify_non_function(std::size_t open) {
    std::size_t j = open;
    while (j > 0) {
      const Token& t = toks_[--j];
      if (is_punct(t, ";") || is_punct(t, "{") || is_punct(t, "}")) break;
      if (t.kind == TokKind::Ident) {
        if (t.text == "namespace" || t.text == "extern")
          return Scope::Namespace;
        if (t.text == "class" || t.text == "struct" || t.text == "union")
          return j > 0 && is_ident(toks_[j - 1], "enum") ? Scope::Enum
                                                         : Scope::Class;
        if (t.text == "enum") return Scope::Enum;
      }
    }
    return Scope::Other;
  }

  /// Recognize a function definition whose body opens at token `open`.
  bool try_function(std::size_t open) {
    std::size_t j = open;
    // Skip qualifiers between ')' and '{': const noexcept override final,
    // and a trailing return "-> Type" (idents / :: / < > / & / *).
    while (j > 0) {
      const Token& t = toks_[j - 1];
      if (is_ident(t, "const") || is_ident(t, "noexcept") ||
          is_ident(t, "override") || is_ident(t, "final") ||
          t.kind == TokKind::Ident || is_punct(t, "::") || is_punct(t, "<") ||
          is_punct(t, ">") || is_punct(t, "&") || is_punct(t, "*") ||
          is_punct(t, "->")) {
        // Only skip identifier runs if a "->"/qualifier path leads to ')'.
        if (t.kind == TokKind::Ident && !is_ident(t, "const") &&
            !is_ident(t, "noexcept") && !is_ident(t, "override") &&
            !is_ident(t, "final") && !has_arrow_before(j - 1))
          break;
        --j;
        continue;
      }
      break;
    }
    if (j == 0 || !is_punct(toks_[j - 1], ")")) return false;
    std::size_t close = j - 1;
    std::size_t paren = match_backward(close);
    if (paren == close) return false;

    // Constructor initializer list: the ')' we found may belong to the last
    // initializer. Walk back over ", name(...)" entries to a ':' that is
    // preceded by the real parameter list's ')'.
    std::size_t name_end = paren;  // exclusive
    std::size_t guard = 0;
    while (guard++ < 64) {
      std::size_t q = name_end;
      while (q > 0 && (toks_[q - 1].kind == TokKind::Ident ||
                       is_punct(toks_[q - 1], "::") ||
                       is_punct(toks_[q - 1], "~")))
        --q;
      if (q == name_end) return false;  // no name before '('
      const bool prev_comma = q > 0 && is_punct(toks_[q - 1], ",");
      const bool prev_colon = q > 0 && is_punct(toks_[q - 1], ":");
      if (prev_comma || prev_colon) {
        // Initializer-list entry; find the previous ")..." group.
        std::size_t k = q - 1;
        if (is_punct(toks_[k], ",")) {
          // Skip back over the previous "name(...)" entries until ':'.
          while (k > 0 && !(is_punct(toks_[k], ":") &&
                            !is_punct(toks_[k], "::"))) {
            if (is_punct(toks_[k], ")") || is_punct(toks_[k], "}")) {
              std::size_t m = match_backward(k);
              if (m == k) return false;
              k = m;
            }
            --k;
          }
        }
        // toks_[k] == ':'. That colon opens a constructor initializer list
        // only if the real parameter list closes right before it —
        // otherwise it is an access specifier or label directly before the
        // function name, and the name we already collected is the one.
        if (k == 0 || !is_punct(toks_[k - 1], ")")) {
          if (prev_comma) return false;
          break;
        }
        close = k - 1;
        paren = match_backward(close);
        if (paren == close) return false;
        name_end = paren;
        continue;
      }
      break;
    }

    // Collect the name chain ending at name_end.
    std::string name, qualified;
    std::size_t q = name_end;
    if (q > 0 && toks_[q - 1].kind == TokKind::Punct &&
        !is_punct(toks_[q - 1], "::") && !is_punct(toks_[q - 1], "&") &&
        !is_punct(toks_[q - 1], "*") && !is_punct(toks_[q - 1], ">")) {
      // Possible operator: walk back over punctuation to "operator".
      std::size_t k = q;
      std::string op;
      while (k > 0 && toks_[k - 1].kind == TokKind::Punct && op.size() < 4) {
        op = toks_[k - 1].text + op;
        --k;
      }
      if (k > 0 && is_ident(toks_[k - 1], "operator")) {
        name = qualified = "operator" + op;
      } else {
        return false;
      }
    } else {
      std::vector<std::string> parts;
      bool expecting_ident = true;
      while (q > 0) {
        const Token& t = toks_[q - 1];
        if (expecting_ident &&
            (t.kind == TokKind::Ident || is_punct(t, "~"))) {
          parts.insert(parts.begin(), t.text);
          expecting_ident = false;
          --q;
          continue;
        }
        if (!expecting_ident && is_punct(t, "::")) {
          parts.insert(parts.begin(), "::");
          expecting_ident = true;
          --q;
          continue;
        }
        break;
      }
      if (parts.empty()) return false;
      for (const std::string& p : parts) qualified += p;
      name = parts.back();
      if (name == "~" && parts.size() >= 2) name = "~" + parts.back();
    }
    if (control_keywords().count(name)) return false;

    Function fn;
    fn.name = name;
    fn.qualified = qualified;
    fn.line = toks_[open].line;
    fn.body_begin = open;
    fn.body_end = match_forward(toks_, open);
    fn.in_class = scopes_.back().kind == Scope::Class;
    fn.is_public = !fn.in_class || scopes_.back().access_public;
    parse_params(paren, close, fn.params);
    m_.functions.push_back(std::move(fn));
    return true;
  }

  bool has_arrow_before(std::size_t i) const {
    // An identifier between ')' and '{' is only legitimate as part of a
    // trailing return type; require a "->" somewhere shortly before it.
    std::size_t k = i;
    for (int steps = 0; k > 0 && steps < 8; ++steps) {
      const Token& t = toks_[--k];
      if (is_punct(t, "->")) return true;
      if (is_punct(t, ")") || is_punct(t, ";") || is_punct(t, "{")) return false;
    }
    return false;
  }

  std::size_t match_backward(std::size_t close) const {
    const std::string& c = toks_[close].text;
    std::string open = c == ")" ? "(" : (c == "]" ? "[" : "{");
    int depth = 0;
    std::size_t j = close;
    while (j > 0) {
      --j;
      if (toks_[j].kind != TokKind::Punct) continue;
      if (toks_[j].text == c) ++depth;
      else if (toks_[j].text == open) {
        if (depth == 0) return j;
        --depth;
      }
    }
    return close;
  }

  void parse_params(std::size_t paren, std::size_t close,
                    std::vector<Param>& out) {
    std::vector<std::vector<const Token*>> pieces(1);
    int depth = 0;
    for (std::size_t i = paren + 1; i < close; ++i) {
      const Token& t = toks_[i];
      if (t.kind == TokKind::Punct) {
        if (t.text == "(" || t.text == "[" || t.text == "{" || t.text == "<")
          ++depth;
        else if (t.text == ")" || t.text == "]" || t.text == "}" ||
                 t.text == ">")
          --depth;
        else if (t.text == "," && depth == 0) {
          pieces.emplace_back();
          continue;
        }
      }
      pieces.back().push_back(&t);
    }
    for (auto& piece : pieces) {
      // Drop default arguments and trailing array extents.
      std::size_t end = piece.size();
      int d = 0;
      for (std::size_t i = 0; i < piece.size(); ++i) {
        const Token& t = *piece[i];
        if (t.kind != TokKind::Punct) continue;
        if (t.text == "(" || t.text == "[" || t.text == "{" || t.text == "<")
          ++d;
        else if (t.text == ")" || t.text == "]" || t.text == "}" ||
                 t.text == ">")
          --d;
        else if (t.text == "=" && d == 0) {
          end = i;
          break;
        }
      }
      while (end > 0 && piece[end - 1]->kind == TokKind::Punct &&
             (piece[end - 1]->text == "]" || piece[end - 1]->text == "["))
        --end;
      if (end == 0) continue;
      if (end == 1 && is_ident(*piece[0], "void")) continue;

      Param param;
      std::size_t name_at = end;  // index of the name token, or == end
      const Token& last = *piece[end - 1];
      if (last.kind == TokKind::Ident && end >= 2 &&
          !type_keywords().count(last.text) &&
          !is_punct(*piece[end - 2], "::")) {
        name_at = end - 1;
        param.name = last.text;
      }
      for (std::size_t i = 0; i < end; ++i) {
        if (i == name_at) continue;
        if (!param.type.empty()) param.type += ' ';
        param.type += piece[i]->text;
      }
      out.push_back(std::move(param));
    }
  }

  FileModel& m_;
  const std::vector<Token>& toks_;
  std::vector<Scope> scopes_;
};

void scan_allow_markers(const std::string& text, std::set<std::string>& out) {
  const std::string needle = "lint: allow(";
  std::size_t pos = 0;
  while ((pos = text.find(needle, pos)) != std::string::npos) {
    pos += needle.size();
    std::size_t end = text.find(')', pos);
    if (end == std::string::npos) break;
    out.insert(text.substr(pos, end - pos));
    pos = end;
  }
}

}  // namespace

std::size_t match_forward(const std::vector<Token>& toks, std::size_t open) {
  const std::string& o = toks[open].text;
  const std::string close = o == "(" ? ")" : o == "[" ? "]"
                            : o == "{" ? "}" : ">";
  int depth = 0;
  for (std::size_t i = open + 1; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::Punct) continue;
    // A template-argument scan that runs into a ';' is a mis-parse (the
    // '<' was a comparison); bail out rather than swallowing the file.
    if (o == "<" && (toks[i].text == ";" || toks[i].text == "{"))
      return open + 1;
    if (toks[i].text == o) ++depth;
    else if (toks[i].text == close) {
      if (depth == 0) return i + 1;
      --depth;
    }
  }
  return open + 1;
}

FileModel build_model(const std::string& rel_path, const std::string& text) {
  FileModel model;
  model.rel_path = rel_path;
  model.is_header = rel_path.size() >= 2 &&
                    (rel_path.rfind(".h") == rel_path.size() - 2 ||
                     (rel_path.size() >= 4 &&
                      rel_path.rfind(".hpp") == rel_path.size() - 4));
  LexResult lexed = lex(text);
  model.tokens = std::move(lexed.tokens);
  model.lex_errors = std::move(lexed.errors);
  scan_allow_markers(text, model.allowed_rules);
  ModelBuilder(model).run();
  return model;
}

}  // namespace surfnet::analyze
