#include <algorithm>

#include "rules.h"

namespace surfnet::analyze {

namespace {

bool is_punct(const Token& t, const char* s) {
  return t.kind == TokKind::Punct && t.text == s;
}
bool is_ident(const Token& t, const char* s) {
  return t.kind == TokKind::Ident && t.text == s;
}

/// Factory names on obs::Event are exactly the JSONL kind strings, so an
/// emission site looks like `Event::delivered(...)`.
bool lowercase_name(const std::string& s) {
  return !s.empty() && s[0] >= 'a' && s[0] <= 'z';
}

struct CaseBlock {
  std::string enumerator;        ///< "Delivered"
  int line = 0;                  ///< line of the `case`
  std::size_t begin = 0, end = 0;  ///< token range of the case body
};

/// All `case EventKind::X:` blocks in [begin, end); each body runs to the
/// next case/default label or the end of the range.
std::vector<CaseBlock> case_blocks(const std::vector<Token>& toks,
                                   std::size_t begin, std::size_t end) {
  std::vector<CaseBlock> blocks;
  for (std::size_t i = begin; i + 4 < end; ++i) {
    if (!is_ident(toks[i], "case") || !is_ident(toks[i + 1], "EventKind") ||
        !is_punct(toks[i + 2], "::") || toks[i + 3].kind != TokKind::Ident ||
        !is_punct(toks[i + 4], ":"))
      continue;
    if (!blocks.empty() && !blocks.back().end) blocks.back().end = i;
    blocks.push_back({toks[i + 3].text, toks[i].line, i + 5, 0});
  }
  if (!blocks.empty() && !blocks.back().end) blocks.back().end = end;
  for (CaseBlock& b : blocks)
    for (std::size_t i = b.begin; i < b.end; ++i)
      if (is_ident(toks[i], "default")) {
        b.end = i;
        break;
      }
  return blocks;
}

/// Body range of the named free function, or (0, 0).
std::pair<std::size_t, std::size_t> body_of(const FileModel& f,
                                            const char* name) {
  for (const Function& fn : f.functions)
    if (fn.name == name)
      return {fn.body_begin, std::min(fn.body_end, f.tokens.size())};
  return {0, 0};
}

}  // namespace

void rule_trace_schema(const AnalyzerContext& ctx,
                       std::vector<Finding>& out) {
  if (ctx.trace_schema.empty()) return;

  const FileModel* impl = nullptr;
  for (const FileModel& f : ctx.files)
    if (f.rel_path == ctx.trace_impl) impl = &f;

  // kind string -> set of JSONL keys the serializer writes for it.
  std::map<std::string, std::set<std::string>> emitted;
  std::map<std::string, int> emitted_line;

  if (impl) {
    const std::vector<Token>& toks = impl->tokens;

    // EventKind enumerator -> kind string, from the to_string switch.
    std::map<std::string, std::string> kind_of;
    const auto [ts_begin, ts_end] = body_of(*impl, "to_string");
    for (const CaseBlock& b : case_blocks(toks, ts_begin, ts_end)) {
      for (std::size_t i = b.begin; i + 1 < b.end; ++i)
        if (is_ident(toks[i], "return") &&
            toks[i + 1].kind == TokKind::String) {
          kind_of[b.enumerator] = toks[i + 1].text;
          break;
        }
    }

    // Keys per kind, from the to_jsonl switch: append_*(out, "key", ...).
    const auto [tj_begin, tj_end] = body_of(*impl, "to_jsonl");
    for (const CaseBlock& b : case_blocks(toks, tj_begin, tj_end)) {
      auto named = kind_of.find(b.enumerator);
      if (named == kind_of.end()) {
        out.push_back({impl->rel_path, b.line, "trace-schema",
                       "unnamed:" + b.enumerator,
                       "to_jsonl serializes EventKind::" + b.enumerator +
                       " but to_string gives it no kind name"});
        continue;
      }
      const std::string& kind = named->second;
      emitted_line[kind] = b.line;
      std::set<std::string>& keys = emitted[kind];
      for (std::size_t i = b.begin; i + 4 < b.end; ++i) {
        if (toks[i].kind != TokKind::Ident ||
            toks[i].text.rfind("append_", 0) != 0 ||
            !is_punct(toks[i + 1], "(") || !is_punct(toks[i + 3], ","))
          continue;
        if (toks[i + 4].kind == TokKind::String)
          keys.insert(toks[i + 4].text);
      }
    }

    // Serializer vs pinned schema. "slot" (like "ev"/"trial") lives in the
    // generic envelope emitted before the per-kind switch, so it is not
    // expected among the case's keys.
    for (const auto& [kind, keys] : emitted) {
      auto pinned = ctx.trace_schema.find(kind);
      if (pinned == ctx.trace_schema.end()) {
        out.push_back({impl->rel_path, emitted_line[kind], "trace-schema",
                       "unknown-kind:" + kind,
                       "to_jsonl emits kind '" + kind + "' which is not in "
                       "the pinned schema (bench/trace_schema.json); add it "
                       "there so downstream consumers can rely on it"});
        continue;
      }
      std::set<std::string> want = pinned->second;
      want.erase("slot");
      for (const std::string& key : want)
        if (!keys.count(key))
          out.push_back({impl->rel_path, emitted_line[kind], "trace-schema",
                         kind + ":missing:" + key,
                         "kind '" + kind + "' omits required key '" + key +
                         "' (bench/trace_schema.json)"});
      for (const std::string& key : keys)
        if (!want.count(key))
          out.push_back({impl->rel_path, emitted_line[kind], "trace-schema",
                         kind + ":extra:" + key,
                         "kind '" + kind + "' emits key '" + key + "' not "
                         "in the pinned schema (bench/trace_schema.json); "
                         "extend the schema, don't fork it"});
    }

    // Stale schema entries: pinned kinds nothing serializes anymore.
    for (const auto& [kind, keys_unused] : ctx.trace_schema) {
      (void)keys_unused;
      if (!emitted.count(kind))
        out.push_back({impl->rel_path, 1, "trace-schema", "stale:" + kind,
                       "pinned schema kind '" + kind + "' has no to_jsonl "
                       "case; remove it from bench/trace_schema.json or "
                       "restore the serializer"});
    }
  }

  // Emission sites anywhere in src/: Event::<factory>(...) must name a
  // pinned kind (the factories are named after the kind strings).
  for (const FileModel& f : ctx.files) {
    if (f.rel_path.rfind("src/", 0) != 0) continue;
    const std::vector<Token>& toks = f.tokens;
    for (std::size_t i = 0; i + 3 < toks.size(); ++i) {
      if (!is_ident(toks[i], "Event") || !is_punct(toks[i + 1], "::") ||
          toks[i + 2].kind != TokKind::Ident ||
          !is_punct(toks[i + 3], "(") || !lowercase_name(toks[i + 2].text))
        continue;
      // netsim::PendingEvent etc. never matches: the bare name `Event`
      // with a lowercase member call is the obs factory idiom.
      const std::string& kind = toks[i + 2].text;
      if (!ctx.trace_schema.count(kind))
        out.push_back({f.rel_path, toks[i].line, "trace-schema",
                       "emit:" + kind,
                       "emission site names unknown trace kind '" + kind +
                       "'; factories must match bench/trace_schema.json"});
    }
  }
}

}  // namespace surfnet::analyze
