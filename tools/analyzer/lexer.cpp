#include "lexer.h"

#include <cctype>

namespace surfnet::analyze {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  LexResult run() {
    while (pos_ < text_.size()) step();
    return {std::move(tokens_), std::move(errors_)};
  }

 private:
  char peek(std::size_t ahead = 0) const {
    return pos_ + ahead < text_.size() ? text_[pos_ + ahead] : '\0';
  }

  void advance() {
    if (text_[pos_] == '\n') {
      ++line_;
      at_line_start_ = true;
    }
    ++pos_;
  }

  void emit(TokKind kind, std::string text, int line) {
    tokens_.push_back({kind, std::move(text), line});
  }

  void step() {
    const char c = peek();
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\f' ||
        c == '\v') {
      advance();
      return;
    }
    if (c == '#' && at_line_start_) {
      lex_preprocessor();
      return;
    }
    at_line_start_ = false;
    if (c == '/' && peek(1) == '/') {
      lex_line_comment();
      return;
    }
    if (c == '/' && peek(1) == '*') {
      lex_block_comment();
      return;
    }
    if (ident_start(c)) {
      lex_identifier_or_prefixed_literal();
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
      lex_number();
      return;
    }
    if (c == '"') {
      lex_string('"');
      return;
    }
    if (c == '\'') {
      lex_string('\'');
      return;
    }
    lex_punct();
  }

  void lex_line_comment() {
    // A trailing backslash continues a // comment onto the next line.
    while (pos_ < text_.size()) {
      if (peek() == '\\' && (peek(1) == '\n' ||
                             (peek(1) == '\r' && peek(2) == '\n'))) {
        advance();  // backslash
        if (peek() == '\r') advance();
        advance();  // newline
        continue;
      }
      if (peek() == '\n') return;  // newline handled by step()
      advance();
    }
  }

  void lex_block_comment() {
    const int start_line = line_;
    advance();
    advance();
    while (pos_ < text_.size()) {
      if (peek() == '*' && peek(1) == '/') {
        advance();
        advance();
        return;
      }
      advance();
    }
    errors_.push_back({start_line, "unterminated block comment"});
  }

  void lex_preprocessor() {
    const int start_line = line_;
    std::string body;
    advance();  // '#'
    while (pos_ < text_.size()) {
      if (peek() == '\\' && (peek(1) == '\n' ||
                             (peek(1) == '\r' && peek(2) == '\n'))) {
        advance();
        if (peek() == '\r') advance();
        advance();
        body += ' ';
        continue;
      }
      if (peek() == '\n') break;
      // Comments may appear inside directives.
      if (peek() == '/' && peek(1) == '/') {
        lex_line_comment();
        break;
      }
      if (peek() == '/' && peek(1) == '*') {
        lex_block_comment();
        body += ' ';
        continue;
      }
      body += peek();
      advance();
    }
    // Split "include <...>" / "include \"...\"" from everything else.
    std::size_t i = 0;
    while (i < body.size() && std::isspace(static_cast<unsigned char>(body[i])))
      ++i;
    std::size_t j = i;
    while (j < body.size() && ident_char(body[j])) ++j;
    const std::string directive = body.substr(i, j - i);
    if (directive == "include") {
      while (j < body.size() &&
             std::isspace(static_cast<unsigned char>(body[j])))
        ++j;
      if (j < body.size() && (body[j] == '"' || body[j] == '<')) {
        const char open = body[j];
        const char close = open == '"' ? '"' : '>';
        std::size_t end = body.find(close, j + 1);
        if (end == std::string::npos) end = body.size();
        // Keep the opening delimiter so rules can tell "..." from <...>.
        emit(TokKind::PpInclude, body.substr(j, end - j), start_line);
        return;
      }
    }
    emit(TokKind::PpOther, directive, start_line);
  }

  void lex_identifier_or_prefixed_literal() {
    const int start_line = line_;
    std::string word;
    while (pos_ < text_.size() && ident_char(peek())) {
      word += peek();
      advance();
    }
    // Raw string literal: R"(...)", with optional encoding prefix.
    if (peek() == '"' && (word == "R" || word == "LR" || word == "uR" ||
                          word == "UR" || word == "u8R")) {
      lex_raw_string();
      return;
    }
    // Encoding-prefixed ordinary literal: L"...", u8'...' etc.
    if ((peek() == '"' || peek() == '\'') &&
        (word == "L" || word == "u" || word == "U" || word == "u8")) {
      lex_string(peek());
      return;
    }
    emit(TokKind::Ident, std::move(word), start_line);
  }

  void lex_raw_string() {
    const int start_line = line_;
    advance();  // opening '"'
    std::string delim;
    while (pos_ < text_.size() && peek() != '(' && peek() != '\n' &&
           delim.size() <= 16) {
      delim += peek();
      advance();
    }
    if (peek() != '(') {
      errors_.push_back({start_line, "malformed raw string delimiter"});
      return;
    }
    advance();  // '('
    const std::string closer = ")" + delim + "\"";
    std::string contents;
    while (pos_ < text_.size()) {
      if (peek() == closer[0] && text_.compare(pos_, closer.size(), closer) == 0) {
        for (std::size_t k = 0; k < closer.size(); ++k) advance();
        emit(TokKind::String, std::move(contents), start_line);
        return;
      }
      contents += peek();
      advance();
    }
    errors_.push_back({start_line, "unterminated raw string literal"});
  }

  void lex_string(char quote) {
    const int start_line = line_;
    advance();  // opening quote
    std::string contents;
    while (pos_ < text_.size()) {
      if (peek() == '\\') {
        // Keep escapes verbatim; they never terminate the literal.
        contents += peek();
        advance();
        if (pos_ < text_.size()) {
          contents += peek();
          advance();
        }
        continue;
      }
      if (peek() == quote) {
        advance();
        emit(quote == '"' ? TokKind::String : TokKind::CharLit,
             std::move(contents), start_line);
        return;
      }
      if (peek() == '\n') break;
      contents += peek();
      advance();
    }
    errors_.push_back(
        {start_line, quote == '"' ? "unterminated string literal"
                                  : "unterminated character literal"});
  }

  void lex_number() {
    const int start_line = line_;
    std::string num;
    while (pos_ < text_.size()) {
      const char c = peek();
      if (ident_char(c) || c == '.' || c == '\'') {
        // Exponent signs: 1e+9, 0x1.8p-3.
        if ((c == 'e' || c == 'E' || c == 'p' || c == 'P') && num.size() &&
            (peek(1) == '+' || peek(1) == '-')) {
          num += c;
          advance();
          num += peek();
          advance();
          continue;
        }
        num += c;
        advance();
        continue;
      }
      break;
    }
    emit(TokKind::Number, std::move(num), start_line);
  }

  void lex_punct() {
    const int start_line = line_;
    const char c = peek();
    const char n = peek(1);
    if ((c == ':' && n == ':') || (c == '&' && n == '&') ||
        (c == '|' && n == '|') || (c == '-' && n == '>')) {
      advance();
      advance();
      emit(TokKind::Punct, std::string{c, n}, start_line);
      return;
    }
    advance();
    emit(TokKind::Punct, std::string(1, c), start_line);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  int line_ = 1;
  bool at_line_start_ = true;
  std::vector<Token> tokens_;
  std::vector<LexError> errors_;
};

}  // namespace

LexResult lex(const std::string& text) { return Lexer(text).run(); }

}  // namespace surfnet::analyze
