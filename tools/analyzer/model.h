#pragma once

// Lightweight declaration/scope model built from the token stream: function
// definitions with parsed parameter lists and body ranges, class membership
// and access at the definition point, file-wide unordered-container
// declarations, includes, and `lint: allow(<rule>)` suppressions. This is
// deliberately not a C++ parser — it recognizes the project's idiomatic
// shapes (the same ones clang-format enforces) and degrades gracefully on
// anything exotic; the golden fixtures pin the shapes it must understand.

#include <set>
#include <string>
#include <vector>

#include "lexer.h"

namespace surfnet::analyze {

struct Param {
  std::string type;  ///< type tokens joined by spaces ("const std :: size_t")
  std::string name;  ///< "" when unnamed
};

struct Function {
  std::string name;  ///< last component ("find", "operator[]"); qualified
                     ///< names keep only the final identifier
  std::string qualified;         ///< as written, e.g. "Dsu::find"
  std::vector<Param> params;
  std::size_t body_begin = 0;    ///< token index of '{'
  std::size_t body_end = 0;      ///< token index one past matching '}'
  int line = 0;
  bool in_class = false;         ///< defined lexically inside a class body
  bool is_public = true;         ///< access at the definition point
};

struct UnorderedDecl {
  std::string name;
  int line = 0;
  bool member = false;  ///< declared in class scope (vs local/namespace)
};

struct Include {
  std::string target;  ///< path as written, without delimiters
  bool quoted = false; ///< "..." (first-party) vs <...>
  int line = 0;
};

struct FileModel {
  std::string rel_path;  ///< repo-relative, '/'-separated
  std::vector<Token> tokens;
  std::vector<LexError> lex_errors;
  std::vector<Include> includes;
  std::vector<Function> functions;
  std::vector<UnorderedDecl> unordered;
  std::set<std::string> allowed_rules;      ///< lint: allow(<rule>) markers
  std::set<std::string> header_decl_names;  ///< function names declared at
                                            ///< class/namespace scope
  bool is_header = false;
};

/// Build the model for one file's raw text.
FileModel build_model(const std::string& rel_path, const std::string& text);

/// Token index of the matching closer for the opener at `open` (one past it
/// when unmatched). Openers: ( [ { <. For '<' the match is best-effort.
std::size_t match_forward(const std::vector<Token>& toks, std::size_t open);

}  // namespace surfnet::analyze
