#pragma once

// The analyzer's rule set. Each rule sees the whole-repo collection of file
// models (rules like module-layering and trace-schema are inherently
// cross-file) and appends findings. A finding carries a rule-specific
// stable `key` — what the suppression baseline matches on, so baselined
// findings survive unrelated line drift.
//
// Rules (see DESIGN.md §9 for the full semantics):
//   lexer               the file failed to tokenize (unterminated raw
//                       string / string / block comment)
//   module-layering     include edge violates the declared layer DAG, the
//                       target module is unknown, or the include graph of
//                       the layer root has a cycle
//   rng-ownership       a function that borrows an Rng& also constructs a
//                       local engine or forks a second stream; in the
//                       event/workload engines, a draw whose execution is
//                       conditional (if/&&/||/?: with no matching
//                       else-draw) is a draw-order hazard
//   unordered-state     iteration over a std::unordered_* container
//                       declared anywhere in the file (member or local)
//   trace-schema        trace-event kinds/keys emitted by src/obs/trace.cpp
//                       disagree with bench/trace_schema.json, or an
//                       emission site names an unknown kind
//   contract-coverage   a public function in a qec/decoder/routing header
//                       subscripts with an integral parameter before any
//                       SURFNET_EXPECTS/SURFNET_ASSERT mentions it

#include <map>
#include <set>
#include <string>
#include <vector>

#include "model.h"

namespace surfnet::analyze {

struct Finding {
  std::string file;  ///< repo-relative path
  int line = 0;
  std::string rule;
  std::string key;  ///< stable identity for baseline matching
  std::string message;

  bool operator<(const Finding& other) const {
    if (file != other.file) return file < other.file;
    if (line != other.line) return line < other.line;
    if (rule != other.rule) return rule < other.rule;
    return key < other.key;
  }
};

struct LayerConfig {
  std::string root = "src";  ///< tree the layering rule applies to
  std::vector<std::string> layers;  ///< bottom-up module order
  std::map<std::string, int> rank;  ///< derived from `layers`
};

struct AnalyzerContext {
  std::vector<FileModel> files;
  LayerConfig layers;
  /// Trace schema: event kind -> required JSONL keys (sans ev/trial).
  std::map<std::string, std::set<std::string>> trace_schema;
  /// Repo-relative path of the trace serializer the schema is checked
  /// against (src/obs/trace.cpp).
  std::string trace_impl = "src/obs/trace.cpp";
};

void rule_lexer(const AnalyzerContext& ctx, std::vector<Finding>& out);
void rule_layering(const AnalyzerContext& ctx, std::vector<Finding>& out);
void rule_rng(const AnalyzerContext& ctx, std::vector<Finding>& out);
void rule_unordered(const AnalyzerContext& ctx, std::vector<Finding>& out);
void rule_trace_schema(const AnalyzerContext& ctx, std::vector<Finding>& out);
void rule_contracts(const AnalyzerContext& ctx, std::vector<Finding>& out);

/// Run every rule and return the findings sorted (file, line, rule, key),
/// with `lint: allow(<rule>)` file-level suppressions already applied.
std::vector<Finding> run_rules(const AnalyzerContext& ctx);

}  // namespace surfnet::analyze
