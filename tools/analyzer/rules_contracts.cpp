#include <algorithm>
#include <sstream>

#include "rules.h"

namespace surfnet::analyze {

namespace {

bool is_punct(const Token& t, const char* s) {
  return t.kind == TokKind::Punct && t.text == s;
}

/// Modules whose public entry points sit on the decode/route hot path and
/// take raw indexes; Debug/SURFNET_CHECKS builds must catch a bad index at
/// the boundary, not three frames deep in a std::vector.
bool hot_path_module(const std::string& mod) {
  return mod == "qec" || mod == "decoder" || mod == "routing";
}

std::string module_of(const std::string& rel) {
  if (rel.rfind("src/", 0) != 0) return "";
  const std::size_t slash = rel.find('/', 4);
  if (slash == std::string::npos) return "";
  return rel.substr(4, slash - 4);
}

/// An index-like parameter: a bare (possibly cv-qualified) integral value.
/// Containers, references, pointers, and templates never qualify.
bool integral_param(const Param& p) {
  static const std::set<std::string> integral = {
      "int",      "size_t",   "ptrdiff_t", "int8_t",  "int16_t",
      "int32_t",  "int64_t",  "uint8_t",   "uint16_t", "uint32_t",
      "uint64_t", "long",     "short",     "unsigned"};
  static const std::set<std::string> qualifier = {"const", "signed",
                                                  "unsigned", "long",
                                                  "short", "std", "::"};
  bool has_integral = false;
  std::istringstream words(p.type);
  std::string w;
  while (words >> w) {
    if (integral.count(w)) {
      has_integral = true;
      continue;
    }
    if (!qualifier.count(w)) return false;  // vector<...>, &, *, Foo, ...
  }
  return has_integral;
}

/// First token index inside any `[...]` in [begin, end) where `name`
/// appears, or npos.
std::size_t first_subscript_use(const std::vector<Token>& toks,
                                std::size_t begin, std::size_t end,
                                const std::string& name) {
  int bracket_depth = 0;
  for (std::size_t i = begin; i < end; ++i) {
    if (is_punct(toks[i], "[")) ++bracket_depth;
    else if (is_punct(toks[i], "]")) bracket_depth = std::max(0, bracket_depth - 1);
    else if (bracket_depth > 0 && toks[i].kind == TokKind::Ident &&
             toks[i].text == name)
      return i;
  }
  return static_cast<std::size_t>(-1);
}

/// Does a SURFNET_EXPECTS / SURFNET_ASSERT before `limit` mention `name`?
bool contracted_before(const std::vector<Token>& toks, std::size_t begin,
                       std::size_t limit, const std::string& name) {
  for (std::size_t i = begin; i < limit; ++i) {
    if (toks[i].kind != TokKind::Ident ||
        (toks[i].text != "SURFNET_EXPECTS" &&
         toks[i].text != "SURFNET_ASSERT"))
      continue;
    if (i + 1 >= toks.size() || !is_punct(toks[i + 1], "(")) continue;
    const std::size_t close = match_forward(toks, i + 1);
    for (std::size_t j = i + 2; j + 1 < close; ++j)
      if (toks[j].kind == TokKind::Ident && toks[j].text == name) return true;
  }
  return false;
}

}  // namespace

void rule_contracts(const AnalyzerContext& ctx, std::vector<Finding>& out) {
  // Public surface per module = names declared at class/namespace scope in
  // the module's headers; a cpp definition of such a name is as much an
  // entry point as a header-inline one.
  std::map<std::string, std::set<std::string>> public_names;
  for (const FileModel& f : ctx.files) {
    const std::string mod = module_of(f.rel_path);
    if (!f.is_header || !hot_path_module(mod)) continue;
    public_names[mod].insert(f.header_decl_names.begin(),
                             f.header_decl_names.end());
  }

  for (const FileModel& f : ctx.files) {
    const std::string mod = module_of(f.rel_path);
    if (!hot_path_module(mod)) continue;
    for (const Function& fn : f.functions) {
      if (fn.in_class && !fn.is_public) continue;
      if (!f.is_header &&
          (!public_names.count(mod) ||
           !public_names[mod].count(fn.name)))
        continue;  // cpp-internal helper, not an entry point
      const std::size_t begin = fn.body_begin;
      const std::size_t end = std::min(fn.body_end, f.tokens.size());
      for (const Param& p : fn.params) {
        if (p.name.empty() || !integral_param(p)) continue;
        const std::size_t use =
            first_subscript_use(f.tokens, begin, end, p.name);
        if (use == static_cast<std::size_t>(-1)) continue;
        if (contracted_before(f.tokens, begin, use, p.name)) continue;
        out.push_back(
            {f.rel_path, fn.line, "contract-coverage",
             fn.qualified + ":" + p.name,
             "public hot-path function '" + fn.qualified + "' subscripts "
             "with parameter '" + p.name + "' (line " +
                 std::to_string(f.tokens[use].line) + ") without a prior "
                 "SURFNET_EXPECTS/SURFNET_ASSERT naming it "
                 "(src/util/contracts.h, DESIGN.md §9)"});
      }
    }
  }
}

}  // namespace surfnet::analyze
