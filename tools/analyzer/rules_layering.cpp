#include <algorithm>

#include "rules.h"

namespace surfnet::analyze {

namespace {

/// "src/qec/graph.h" -> "qec" (under the configured root), "" otherwise.
std::string module_of(const std::string& rel, const std::string& root) {
  const std::string prefix = root + "/";
  if (rel.rfind(prefix, 0) != 0) return "";
  const std::size_t start = prefix.size();
  const std::size_t slash = rel.find('/', start);
  if (slash == std::string::npos) return "";
  return rel.substr(start, slash - start);
}

/// Quoted include targets are rooted at the layer root ("qec/graph.h").
std::string target_module(const std::string& target) {
  const std::size_t slash = target.find('/');
  if (slash == std::string::npos) return "";
  return target.substr(0, slash);
}

}  // namespace

void rule_layering(const AnalyzerContext& ctx, std::vector<Finding>& out) {
  const LayerConfig& cfg = ctx.layers;
  if (cfg.layers.empty()) return;

  // File-level include graph of the layer root, for cycle detection.
  std::map<std::string, const FileModel*> by_rel;
  for (const FileModel& f : ctx.files)
    if (!module_of(f.rel_path, cfg.root).empty()) by_rel[f.rel_path] = &f;

  for (const auto& [rel, file] : by_rel) {
    const std::string mod = module_of(rel, cfg.root);
    const auto mod_rank = cfg.rank.find(mod);
    for (const Include& inc : file->includes) {
      if (!inc.quoted) continue;
      const std::string dep = target_module(inc.target);
      if (dep.empty()) continue;  // same-directory include, no module cross
      // Only first-party targets participate (the include must resolve
      // inside the layer root).
      if (!by_rel.count(cfg.root + "/" + inc.target)) continue;
      const auto dep_rank = cfg.rank.find(dep);
      if (mod_rank == cfg.rank.end()) {
        out.push_back({rel, inc.line, "module-layering", mod,
                       "module '" + mod + "' is not in the declared layer "
                       "DAG (tools/analyzer/layers.json); add it at the "
                       "right rank before including other modules"});
        continue;
      }
      if (dep_rank == cfg.rank.end()) {
        out.push_back({rel, inc.line, "module-layering", mod + "->" + dep,
                       "include of unknown module '" + dep + "'; the layer "
                       "DAG (tools/analyzer/layers.json) does not declare "
                       "it"});
        continue;
      }
      if (mod != dep && mod_rank->second < dep_rank->second) {
        out.push_back(
            {rel, inc.line, "module-layering", mod + "->" + dep,
             "back-edge: '" + mod + "' (layer " +
                 std::to_string(mod_rank->second) + ") includes '" +
                 inc.target + "' from higher layer '" + dep + "' (layer " +
                 std::to_string(dep_rank->second) +
                 "); dependencies must point strictly down the DAG " +
                 "(see DESIGN.md §9)"});
      }
    }
  }

  // Cycle detection over the file-level graph (iterative coloring DFS).
  // A cycle is reported once, keyed by its lexicographically smallest
  // member, so the finding is stable under traversal-order changes.
  std::map<std::string, int> color;  // 0 white, 1 grey, 2 black
  std::set<std::string> reported;
  for (const auto& [start, file_unused] : by_rel) {
    (void)file_unused;
    if (color[start]) continue;
    std::vector<std::pair<std::string, std::size_t>> stack;
    std::vector<std::string> path;
    stack.push_back({start, 0});
    while (!stack.empty()) {
      const std::string rel = stack.back().first;
      if (stack.back().second == 0) {
        color[rel] = 1;
        path.push_back(rel);
      }
      const FileModel* file = by_rel[rel];
      bool descended = false;
      while (stack.back().second < file->includes.size()) {
        const Include& inc = file->includes[stack.back().second++];
        if (!inc.quoted) continue;
        const std::string dep_rel = cfg.root + "/" + inc.target;
        auto it = by_rel.find(dep_rel);
        if (it == by_rel.end()) continue;
        if (color[dep_rel] == 1) {
          // Grey target: found a cycle along the current path.
          auto cycle_start = std::find(path.begin(), path.end(), dep_rel);
          std::vector<std::string> cycle(cycle_start, path.end());
          const std::string anchor =
              *std::min_element(cycle.begin(), cycle.end());
          if (!reported.count(anchor)) {
            reported.insert(anchor);
            std::string chain;
            for (const std::string& member : cycle)
              chain += member + " -> ";
            chain += dep_rel;
            out.push_back({rel, inc.line, "module-layering",
                           "cycle:" + anchor,
                           "include cycle: " + chain});
          }
          continue;
        }
        if (color[dep_rel] == 0) {
          stack.push_back({dep_rel, 0});
          descended = true;
          break;
        }
      }
      if (!descended && stack.back().second >= file->includes.size()) {
        color[rel] = 2;
        path.pop_back();
        stack.pop_back();
      }
    }
  }
}

}  // namespace surfnet::analyze
