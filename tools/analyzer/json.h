#pragma once

// Minimal JSON reader/writer for the analyzer's config inputs
// (layers.json, bench/trace_schema.json, analyzer-baseline.json) and its
// --json findings envelope. Objects use std::map so every traversal is
// deterministic — the analyzer holds itself to the same ordering rules it
// enforces. No external dependencies.

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace surfnet::analyze {

class JsonValue;
using JsonPtr = std::shared_ptr<JsonValue>;

class JsonValue {
 public:
  enum class Type { Null, Bool, Number, String, Array, Object };

  Type type = Type::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonPtr> array;
  std::map<std::string, JsonPtr> object;

  bool is_object() const { return type == Type::Object; }
  bool is_array() const { return type == Type::Array; }
  bool is_string() const { return type == Type::String; }

  /// Object member or nullptr.
  const JsonValue* get(const std::string& key) const {
    auto it = object.find(key);
    return it == object.end() ? nullptr : it->second.get();
  }
};

/// Parse a JSON document. Returns nullptr and fills `error` on failure.
JsonPtr json_parse(const std::string& text, std::string& error);

/// Escape a string for embedding in a JSON document (no quotes added).
std::string json_escape(const std::string& s);

}  // namespace surfnet::analyze
