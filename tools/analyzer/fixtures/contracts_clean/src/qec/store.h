#pragma once
#include <vector>
#define SURFNET_EXPECTS(cond) ((void)0)
namespace fx {
class Store {
 public:
  double value(int i) const {
    SURFNET_EXPECTS(i >= 0 && static_cast<unsigned>(i) < values_.size());
    return values_[static_cast<unsigned>(i)];
  }
  double sum(const std::vector<int>& idx) const {
    double s = 0;
    for (int i : idx) s += values_[static_cast<unsigned>(i)];
    return s;
  }
 private:
  double raw(int i) const { return values_[static_cast<unsigned>(i)]; }
  std::vector<double> values_;
};
}  // namespace fx
