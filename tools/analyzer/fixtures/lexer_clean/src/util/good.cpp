namespace fx {
const char* a = R"(quote " and // comment and /* block */)";
const char* b = R"delim(inner )" not the end)delim";
const char* c = "plain \" escaped";
const char  d = '\'';
}  // namespace fx
