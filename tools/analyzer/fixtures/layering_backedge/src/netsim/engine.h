#pragma once
#include "core/experiment.h"
#include "util/rng.h"
namespace fx { struct Engine { Experiment e; }; }
