#pragma once
namespace fx { struct Rng {}; }
