#pragma once
#include "util/rng.h"
namespace fx { struct Experiment {}; }
