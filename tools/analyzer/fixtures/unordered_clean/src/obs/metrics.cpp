#include <algorithm>
#include <unordered_map>
#include <vector>
namespace fx {
struct Metrics {
  std::unordered_map<int, double> by_node_;
  double at(int node) const {
    auto it = by_node_.find(node);
    return it == by_node_.end() ? 0.0 : it->second;
  }
  std::vector<int> sorted_nodes() const {
    std::vector<int> nodes;
    nodes.reserve(by_node_.size());
    for (std::size_t i = 0; i < nodes.capacity(); ++i) nodes.push_back(0);
    std::sort(nodes.begin(), nodes.end());
    return nodes;
  }
};
}  // namespace fx
