#include <string>
namespace fx {
enum class EventKind { Ping };
const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::Ping: return "ping";
  }
  return "?";
}
void append_int(std::string& out, const char* key, long v);
std::string to_jsonl(EventKind kind, long b) {
  std::string out;
  switch (kind) {
    case EventKind::Ping:
      append_int(out, "b", b);   // extra key; required "a" missing
      break;
  }
  return out;
}
}  // namespace fx
