namespace fx {
struct Event { static Event ping(int a); static Event pong(int a); };
void emit() {
  Event::ping(1);  // known kind: ok
  Event::pong(2);  // unknown kind: flagged
}
}  // namespace fx
