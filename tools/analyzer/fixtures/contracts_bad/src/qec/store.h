#pragma once
#include <vector>
namespace fx {
class Store {
 public:
  double value(int i) const { return values_[static_cast<unsigned>(i)]; }
 private:
  std::vector<double> values_;
};
}  // namespace fx
