#include <unordered_map>
#include <vector>
namespace fx {
struct Metrics {
  std::unordered_map<int, double> by_node_;
  double total() const {
    double sum = 0;
    for (const auto& [node, value] : by_node_) sum += value * node;  // flagged
    return sum;
  }
  auto first() const { return by_node_.begin(); }  // flagged
};
}  // namespace fx
