namespace fx {
struct Rng {
  double uniform();
  bool bernoulli(double p);
  unsigned long below(unsigned long n);
};
int step(Rng& rng, bool degraded, int base) {
  int jitter = degraded ? static_cast<int>(rng.below(4)) : 0;  // ternary arm
  if (degraded) jitter += static_cast<int>(rng.below(2));      // if, no else
  const bool lucky = degraded && rng.bernoulli(0.5);           // short-circuit
  return base + jitter + (lucky ? 1 : 0);
}
}  // namespace fx
