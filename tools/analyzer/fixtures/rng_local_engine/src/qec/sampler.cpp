#include <random>
namespace fx {
struct Rng { double uniform(); };
double sample(Rng& rng) {
  Rng local;                    // second stream: flagged
  std::mt19937 gen(42);         // third stream: flagged
  return rng.uniform() + gen() + local.uniform();
}
}  // namespace fx
