namespace fx {
struct Rng {
  double uniform();
  bool bernoulli(double p);
  unsigned long below(unsigned long n);
};
int step(Rng& rng, bool degraded, int base) {
  const double draw = rng.uniform();       // unconditional
  int jitter;
  if (degraded) {
    jitter = static_cast<int>(rng.below(4));   // both branches draw
  } else {
    jitter = static_cast<int>(rng.below(2));
  }
  for (int i = 0; i < base; ++i) jitter += rng.bernoulli(0.5) ? 1 : 0;
  switch (base) {
    case 0: return jitter;
    default: return jitter + static_cast<int>(draw);
  }
}
}  // namespace fx
