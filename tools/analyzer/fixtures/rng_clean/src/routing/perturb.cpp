namespace fx {
struct Rng { double uniform(); };
double perturb(Rng& rng, bool jitter) {
  return jitter ? rng.uniform() : 0.0;  // not an event/workload file: ok
}
}  // namespace fx
