#pragma once
#include "util/rng.h"
#include <vector>
namespace fx { struct Graph {}; }
