#pragma once
#include "qec/graph.h"
#include "util/rng.h"
namespace fx { struct Decoder {}; }
