namespace fx {
const char* s = R"(never closed
int x = 1;
}
