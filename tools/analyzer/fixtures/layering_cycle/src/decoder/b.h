#pragma once
#include "qec/a.h"
namespace fx { struct B {}; }
