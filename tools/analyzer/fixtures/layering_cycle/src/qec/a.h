#pragma once
#include "decoder/b.h"
namespace fx { struct A {}; }
