namespace fx {
struct Rng { double uniform(); };
double sample(Rng& rng) {
  Rng local;
  return rng.uniform() + local.uniform();
}
}  // namespace fx
