#include "baseline.h"

#include <map>

#include "json.h"

namespace surfnet::analyze {

bool load_baseline(const std::string& text, std::vector<BaselineEntry>& out,
                   std::string& error) {
  JsonPtr doc = json_parse(text, error);
  if (!doc) return false;
  if (doc->type != JsonValue::Type::Object) {
    error = "baseline: document is not an object";
    return false;
  }
  auto entries = doc->object.find("entries");
  if (entries == doc->object.end() ||
      entries->second->type != JsonValue::Type::Array) {
    error = "baseline: missing \"entries\" array";
    return false;
  }
  for (std::size_t i = 0; i < entries->second->array.size(); ++i) {
    const JsonPtr& e = entries->second->array[i];
    if (e->type != JsonValue::Type::Object) {
      error = "baseline: entry " + std::to_string(i) + " is not an object";
      return false;
    }
    BaselineEntry entry;
    for (const char* field : {"rule", "file", "key", "why"}) {
      auto it = e->object.find(field);
      if (it == e->object.end() ||
          it->second->type != JsonValue::Type::String ||
          it->second->string.empty()) {
        error = "baseline: entry " + std::to_string(i) + " needs a "
                "non-empty string \"" + field + "\" (every suppression "
                "must say why)";
        return false;
      }
      if (field[0] == 'r') entry.rule = it->second->string;
      else if (field[0] == 'f') entry.file = it->second->string;
      else if (field[0] == 'k') entry.key = it->second->string;
      else entry.why = it->second->string;
    }
    out.push_back(std::move(entry));
  }
  return true;
}

BaselineResult apply_baseline(const std::vector<Finding>& findings,
                              const std::vector<BaselineEntry>& entries) {
  BaselineResult result;
  std::map<std::string, std::size_t> index;  // identity -> entry
  std::vector<bool> used(entries.size(), false);
  for (std::size_t i = 0; i < entries.size(); ++i)
    index[entries[i].rule + "\x1f" + entries[i].file + "\x1f" +
          entries[i].key] = i;
  for (const Finding& f : findings) {
    auto it = index.find(f.rule + "\x1f" + f.file + "\x1f" + f.key);
    if (it == index.end()) {
      result.active.push_back(f);
    } else {
      used[it->second] = true;
      result.suppressed.push_back(f);
    }
  }
  for (std::size_t i = 0; i < entries.size(); ++i)
    if (!used[i]) result.unused.push_back(entries[i]);
  return result;
}

}  // namespace surfnet::analyze
