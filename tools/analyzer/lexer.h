#pragma once

// Tokenizer for surfnet-analyze. This is not a full C++ lexer: it produces
// exactly the token classes the semantic rules need, while getting the hard
// parts right that the old per-line regex lint could not — block comments,
// string/char literals (including raw strings R"delim(...)delim" spanning
// lines), digit separators, and preprocessor logical lines with backslash
// continuations. Preprocessor directives are swallowed whole (one token),
// so macro *definitions* never leak code-like tokens into the declaration
// model; macro *invocations* in ordinary code lex as plain identifiers.

#include <string>
#include <vector>

namespace surfnet::analyze {

enum class TokKind {
  Ident,      ///< identifier or keyword
  Number,     ///< numeric literal (handles 1'000'000 and 0x1.8p-3)
  String,     ///< string literal; text is the *contents* (no quotes)
  CharLit,    ///< character literal; text is the contents
  Punct,      ///< one operator/punctuator; "::", "&&", "||", "->" combined
  PpInclude,  ///< #include; text keeps the delimiter: "qec/graph.h or <vector
  PpOther,    ///< any other preprocessor logical line; text is the directive
};

struct Token {
  TokKind kind;
  std::string text;
  int line;  ///< 1-based line of the token's first character
};

struct LexError {
  int line;
  std::string message;
};

struct LexResult {
  std::vector<Token> tokens;
  std::vector<LexError> errors;
};

/// Tokenize a whole translation unit (or header).
LexResult lex(const std::string& text);

}  // namespace surfnet::analyze
