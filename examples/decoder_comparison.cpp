// Compare the three decoders in this library — Union-Find (baseline),
// SurfNet Decoder (weighted growth), and exact MWPM (blossom) — on the
// paper's network noise setup: Pauli + erasure errors, rates halved on the
// Core cross.
//
//   ./decoder_comparison [distance] [trials]

#include <cstdio>
#include <cstdlib>

#include "decoder/code_trial.h"
#include "decoder/mwpm.h"
#include "decoder/surfnet_decoder.h"
#include "decoder/union_find.h"
#include "qec/core_support.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  using namespace surfnet;

  const int distance = argc > 1 ? std::atoi(argv[1]) : 9;
  const int trials = argc > 2 ? std::atoi(argv[2]) : 4000;

  const qec::SurfaceCodeLattice lattice(distance);
  const auto partition = qec::make_core_support(lattice);

  const decoder::UnionFindDecoder union_find;
  const decoder::SurfNetDecoder surfnet;
  const decoder::MwpmDecoder mwpm;
  const decoder::Decoder* decoders[] = {&union_find, &surfnet, &mwpm};

  std::printf("distance-%d surface code, erasure 15%% (7.5%% on Core), "
              "%d trials per point\n\n", distance, trials);
  std::printf("%-8s", "pauli");
  for (const auto* d : decoders) std::printf("%-16s", d->name().data());
  std::printf("\n");

  for (const double pauli : {0.03, 0.05, 0.06, 0.07, 0.08}) {
    const auto profile =
        qec::NoiseProfile::core_support(partition, pauli, 0.15);
    std::printf("%-8.3f", pauli);
    for (const auto* d : decoders) {
      util::Rng rng(7777);  // same error stream for every decoder
      const double ler = decoder::logical_error_rate(
          lattice, profile, qec::PauliChannel::IndependentXZ, *d, trials,
          rng);
      std::printf("%-16.4f", ler);
    }
    std::printf("\n");
  }
  std::printf("\nLower is better. MWPM is the most accurate and slowest; "
              "the SurfNet Decoder exploits the Core/Support fidelity gap "
              "that the Union-Find baseline ignores.\n");
  return 0;
}
