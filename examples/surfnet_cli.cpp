// Command-line driver for the SurfNet library.
//
//   surfnet_cli decode   [--distance D] [--rotated] [--pauli P]
//                        [--erasure E] [--decoder uf|surfnet|mwpm]
//                        [--trials N] [--seed S] [--threads T] [--draw]
//   surfnet_cli trial    [--facilities abundant|sufficient|insufficient]
//                        [--fibers good|poor]
//                        [--design surfnet|raw|p1|p2|p9]
//                        [--trials N] [--seed S] [--threads T]
//   surfnet_cli topology [--facilities ...] [--fibers ...] [--seed S]
//                        [--routes]         (emits Graphviz DOT on stdout)
//
// Observability (decode and trial): --metrics-out FILE writes the metrics
// JSON document, --trace-out FILE streams the JSONL event trace ("-" =
// stdout for either). The trial trace carries the simulator's per-slot
// events (pool levels, segment jumps, decodes, deliveries); decode runs
// report engine counters and timers into the metrics document.

#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>

#include "core/surfnet.h"
#include "decoder/code_trial.h"
#include "decoder/mwpm.h"
#include "decoder/trial_runner.h"
#include "decoder/surfnet_decoder.h"
#include "decoder/union_find.h"
#include "netsim/dot.h"
#include "obs/session.h"
#include "qec/core_support.h"
#include "qec/lattice.h"
#include "qec/render.h"
#include "qec/rotated_lattice.h"
#include "routing/router.h"
#include "util/rng.h"

namespace {

using namespace surfnet;

struct Args {
  std::string command;
  int distance = 5;
  bool rotated = false;
  double pauli = 0.05;
  double erasure = 0.15;
  std::string decoder = "surfnet";
  std::string facilities = "sufficient";
  std::string fibers = "good";
  std::string design = "surfnet";
  int trials = 2000;
  std::uint64_t seed = 42;
  int threads = 1;
  bool draw = false;
  bool routes = false;
  std::string metrics_out;
  std::string trace_out;
};

Args parse(int argc, char** argv) {
  Args args;
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s decode|trial|topology [options]\n",
                 argv[0]);
    std::exit(2);
  }
  args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    auto value = [&](const char* flag) -> const char* {
      if (std::strcmp(argv[i], flag) == 0 && i + 1 < argc) return argv[++i];
      return nullptr;
    };
    if (const char* v = value("--distance")) args.distance = std::atoi(v);
    else if (const char* v2 = value("--pauli")) args.pauli = std::atof(v2);
    else if (const char* v3 = value("--erasure")) args.erasure = std::atof(v3);
    else if (const char* v4 = value("--decoder")) args.decoder = v4;
    else if (const char* v5 = value("--facilities")) args.facilities = v5;
    else if (const char* v6 = value("--fibers")) args.fibers = v6;
    else if (const char* v7 = value("--design")) args.design = v7;
    else if (const char* v8 = value("--trials")) args.trials = std::atoi(v8);
    else if (const char* v9 = value("--seed"))
      args.seed = std::strtoull(v9, nullptr, 10);
    else if (const char* v10 = value("--threads"))
      args.threads = std::atoi(v10);
    else if (const char* v11 = value("--metrics-out")) args.metrics_out = v11;
    else if (const char* v12 = value("--trace-out")) args.trace_out = v12;
    else if (std::strcmp(argv[i], "--rotated") == 0) args.rotated = true;
    else if (std::strcmp(argv[i], "--draw") == 0) args.draw = true;
    else if (std::strcmp(argv[i], "--routes") == 0) args.routes = true;
    else {
      std::fprintf(stderr, "unknown option %s\n", argv[i]);
      std::exit(2);
    }
  }
  return args;
}

int run_decode(const Args& args) {
  std::unique_ptr<qec::CodeLattice> lattice;
  if (args.rotated)
    lattice = std::make_unique<qec::RotatedSurfaceCodeLattice>(args.distance);
  else
    lattice = std::make_unique<qec::SurfaceCodeLattice>(args.distance);

  std::unique_ptr<decoder::Decoder> dec;
  if (args.decoder == "uf") dec = std::make_unique<decoder::UnionFindDecoder>();
  else if (args.decoder == "mwpm") dec = std::make_unique<decoder::MwpmDecoder>();
  else dec = std::make_unique<decoder::SurfNetDecoder>();

  const auto partition = qec::make_core_support(*lattice);
  const auto profile =
      qec::NoiseProfile::core_support(partition, args.pauli, args.erasure);
  util::Rng rng(args.seed);

  if (args.draw) {
    std::printf("%s lattice, distance %d (%d data qubits, %d Core):\n\n%s\n",
                args.rotated ? "rotated" : "planar", args.distance,
                lattice->num_data_qubits(), partition.num_core,
                qec::render_core(*lattice).c_str());
    const auto sample =
        qec::sample_errors(profile, qec::PauliChannel::IndependentXZ, rng);
    std::printf("sampled errors + Z-graph syndromes (*):\n\n%s\n",
                qec::render_errors(*lattice, qec::GraphKind::Z, sample)
                    .c_str());
  }

  obs::FileSession session(args.metrics_out, args.trace_out);
  decoder::TrialRunnerOptions options;
  options.threads = args.threads;
  options.seed = args.seed;
  options.sink = session.sink();
  const auto report = decoder::run_logical_error_trials(
      *lattice, profile, qec::PauliChannel::IndependentXZ, *dec, args.trials,
      options);
  session.finish();
  std::printf("%s decoder, d=%d, pauli=%.3f, erasure=%.3f: logical error "
              "rate %.4f +- %.4f (%lld trials, %d thread(s))\n",
              dec->name().data(), args.distance, args.pauli, args.erasure,
              report.error_rate(), report.error_rate_ci95(),
              static_cast<long long>(report.trials), report.threads);
  return 0;
}

core::FacilityLevel facilities_of(const std::string& name) {
  if (name == "abundant") return core::FacilityLevel::Abundant;
  if (name == "insufficient") return core::FacilityLevel::Insufficient;
  return core::FacilityLevel::Sufficient;
}

core::NetworkDesign design_of(const std::string& name) {
  if (name == "raw") return core::NetworkDesign::Raw;
  if (name == "p1") return core::NetworkDesign::Purification1;
  if (name == "p2") return core::NetworkDesign::Purification2;
  if (name == "p9") return core::NetworkDesign::Purification9;
  return core::NetworkDesign::SurfNet;
}

int run_trial(const Args& args) {
  const auto params = core::make_scenario(
      facilities_of(args.facilities),
      args.fibers == "poor" ? core::ConnectionQuality::Poor
                            : core::ConnectionQuality::Good);
  const int trials = std::max(1, args.trials / 100);
  obs::FileSession session(args.metrics_out, args.trace_out);
  core::RunOptions options;
  options.seed = args.seed;
  options.threads = args.threads;
  options.sink = session.sink();
  const auto agg =
      core::run_trials(params, design_of(args.design), trials, options);
  session.finish();
  std::printf("%s on %s/%s (%d trials): fidelity %.3f +- %.3f, latency "
              "%.1f slots, throughput %.3f\n",
              core::to_string(design_of(args.design)).data(),
              args.facilities.c_str(), args.fibers.c_str(), trials,
              agg.fidelity.mean(), agg.fidelity.ci95(), agg.latency.mean(),
              agg.throughput.mean());
  return 0;
}

int run_topology(const Args& args) {
  const auto params = core::make_scenario(
      facilities_of(args.facilities),
      args.fibers == "poor" ? core::ConnectionQuality::Poor
                            : core::ConnectionQuality::Good);
  util::Rng rng(args.seed);
  const auto topology = netsim::make_random_topology(params.topology, rng);
  if (!args.routes) {
    std::cout << netsim::to_dot(topology);
    return 0;
  }
  const auto requests = netsim::random_requests(
      topology, params.num_requests, params.max_codes_per_request, rng);
  const auto routed = routing::route(
      topology, requests, params.routing, rng,
      routing::RouteOptions{routing::RouteStrategy::Lp, nullptr});
  std::cout << netsim::to_dot(topology, routed.schedule);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse(argc, argv);
  if (args.command == "decode") return run_decode(args);
  if (args.command == "trial") return run_trial(args);
  if (args.command == "topology") return run_topology(args);
  std::fprintf(stderr, "unknown command %s\n", args.command.c_str());
  return 2;
}
