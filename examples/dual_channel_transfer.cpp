// A narrated walk through the paper's Fig. 4: one-way communication of a
// surface code from user A to user B over a hand-built line network,
// comparing the dual-channel SurfNet transfer against sending everything
// through the plain channel (Raw).
//
//   user A --- switch --- SERVER --- switch --- user B
//
// The Core part rides the entanglement-based channel (teleported in
// opportunistic two-fiber jumps over purified pairs); the Support part
// rides the plain channel as photons. The server reassembles the complete
// code and runs the SurfNet Decoder; missing photons are erasures.

#include <cstdio>

#include "decoder/surfnet_decoder.h"
#include "netsim/simulator.h"
#include "qec/core_support.h"
#include "qec/lattice.h"
#include "util/rng.h"

int main() {
  using namespace surfnet;

  // Build the Fig. 4-style line: A(0) - switch(1) - server(2) - switch(3)
  // - B(4), with mediocre fibers.
  std::vector<netsim::Node> nodes(5);
  nodes[1] = {netsim::NodeRole::Switch, 200};
  nodes[2] = {netsim::NodeRole::Server, 200};
  nodes[3] = {netsim::NodeRole::Switch, 200};
  std::vector<netsim::Fiber> fibers;
  const double gamma[4] = {0.92, 0.88, 0.90, 0.86};
  for (int i = 0; i < 4; ++i) fibers.push_back({i, i + 1, gamma[i], 60});
  const netsim::Topology topology(std::move(nodes), std::move(fibers));

  const qec::SurfaceCodeLattice lattice(4);
  const auto partition = qec::make_core_support(lattice);
  std::printf("transferring distance-4 surface codes: %d qubits, "
              "%d in the Core cross\n\n",
              lattice.num_data_qubits(), partition.num_core);

  netsim::Schedule schedule;
  schedule.requested_codes = 500;
  netsim::ScheduledRequest s;
  s.request_index = 0;
  s.codes = 500;
  s.support_path = {0, 1, 2, 3, 4};
  s.core_path = {0, 1, 2, 3, 4};
  s.ec_servers = {2};  // error correction at the server, as in Fig. 4
  schedule.scheduled.push_back(s);

  netsim::SimulationParams params;
  params.noise_scale = 0.35;  // deliberately harsh to make the gap visible
  params.loss_per_hop = 0.06;
  params.teleport_op_noise = 0.01;

  const decoder::SurfNetDecoder decoder;

  util::Rng rng_dual(11);
  const auto dual =
      netsim::simulate_surfnet(topology, schedule, params, decoder,
                               rng_dual);
  std::printf("dual-channel SurfNet : fidelity %.3f, latency %.1f slots\n",
              dual.fidelity(), dual.avg_latency());

  // Raw: the same codes, every qubit through the plain channel.
  netsim::Schedule raw_schedule = schedule;
  raw_schedule.scheduled[0].core_path.clear();
  util::Rng rng_raw(11);
  const auto raw = netsim::simulate_surfnet(topology, raw_schedule, params,
                                            decoder, rng_raw);
  std::printf("Raw (plain channel)  : fidelity %.3f, latency %.1f slots\n",
              raw.fidelity(), raw.avg_latency());

  // And without the mid-path correction, to show what the server buys.
  netsim::Schedule no_ec = schedule;
  no_ec.scheduled[0].ec_servers.clear();
  util::Rng rng_noec(11);
  const auto noec =
      netsim::simulate_surfnet(topology, no_ec, params, decoder, rng_noec);
  std::printf("SurfNet, no server EC: fidelity %.3f, latency %.1f slots\n",
              noec.fidelity(), noec.avg_latency());

  std::printf("\nThe dual channel keeps the Core cross clean (purified "
              "teleportation, no photon loss), so the decoder survives "
              "noise that corrupts the Raw transfer; the server's "
              "correction halves the noise each segment accumulates.\n");
  return 0;
}
