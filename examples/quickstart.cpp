// Quickstart: build a surface code, subject it to Pauli + erasure noise,
// decode with the SurfNet Decoder, and check the logical outcome.
//
//   ./quickstart [distance] [pauli_rate] [erasure_rate]

#include <cstdio>
#include <cstdlib>

#include "decoder/code_trial.h"
#include "decoder/surfnet_decoder.h"
#include "qec/core_support.h"
#include "qec/error_model.h"
#include "qec/lattice.h"
#include "qec/render.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  using namespace surfnet;

  const int distance = argc > 1 ? std::atoi(argv[1]) : 5;
  const double pauli = argc > 2 ? std::atof(argv[2]) : 0.04;
  const double erasure = argc > 3 ? std::atof(argv[3]) : 0.10;

  // 1. The lattice: a planar surface code of the requested distance.
  const qec::SurfaceCodeLattice lattice(distance);
  const auto partition = qec::make_core_support(lattice);
  std::printf("distance-%d surface code: %d data qubits "
              "(%d Core + %d Support), %d measure-Z, %d measure-X\n",
              distance, lattice.num_data_qubits(), partition.num_core,
              partition.num_support, lattice.num_measure_z(),
              lattice.num_measure_x());

  // 2. The SurfNet noise setup: Support qubits at full rates, Core halved.
  const auto profile =
      qec::NoiseProfile::core_support(partition, pauli, erasure);

  // 3. Sample one error configuration and decode it on both graphs.
  util::Rng rng(2024);
  const decoder::SurfNetDecoder decoder;
  const auto sample =
      qec::sample_errors(profile, qec::PauliChannel::IndependentXZ, rng);
  int pauli_errors = 0, erasures = 0;
  for (std::size_t q = 0; q < sample.error.size(); ++q) {
    if (sample.erased[q]) ++erasures;
    else if (sample.error[q] != qec::Pauli::I) ++pauli_errors;
  }
  std::printf("sampled %d Pauli errors and %d erasures\n\n", pauli_errors,
              erasures);
  std::printf("lattice (C = Core cross):\n%s\n",
              qec::render_core(lattice).c_str());
  std::printf("errors (#=erased, letters=Pauli) and Z-syndromes (*):\n%s\n",
              qec::render_errors(lattice, qec::GraphKind::Z, sample).c_str());

  const auto prior =
      profile.component_error_prob(qec::PauliChannel::IndependentXZ);
  const auto outcome =
      decoder::decode_sample(lattice, sample, prior, decoder);
  std::printf("Z-graph (X-type errors): %s\n",
              outcome.z_graph.success() ? "corrected" : "LOGICAL ERROR");
  std::printf("X-graph (Z-type errors): %s\n",
              outcome.x_graph.success() ? "corrected" : "LOGICAL ERROR");

  // 4. Monte-Carlo logical error rate at these settings.
  const double ler = decoder::logical_error_rate(
      lattice, profile, qec::PauliChannel::IndependentXZ, decoder, 2000, rng);
  std::printf("logical error rate over 2000 trials: %.4f\n", ler);
  return 0;
}
