// End-to-end SurfNet experiment: generate a random Barabasi-Albert quantum
// network, schedule a batch of communication requests with the LP routing
// protocol (paper Eqs. 1-6 + rounding), execute the schedule on the
// round-based simulator, and print the resulting routes and metrics.
//
//   ./network_routing [seed] [num_requests]

#include <cstdio>
#include <cstdlib>

#include "core/surfnet.h"
#include "decoder/surfnet_decoder.h"
#include "netsim/simulator.h"
#include "routing/router.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  using namespace surfnet;

  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                      : 2024;
  const int num_requests = argc > 2 ? std::atoi(argv[2]) : 6;

  auto params = core::make_scenario(core::FacilityLevel::Sufficient,
                                    core::ConnectionQuality::Good);
  params.num_requests = num_requests;

  util::Rng rng(seed);
  const auto topology = netsim::make_random_topology(params.topology, rng);
  std::printf("network: %d nodes (%zu servers, %zu switches, %zu users), "
              "%d fibers\n",
              topology.num_nodes(), topology.servers().size(),
              topology.switches_and_servers().size() -
                  topology.servers().size(),
              topology.users().size(), topology.num_fibers());

  const auto requests = netsim::random_requests(
      topology, params.num_requests, params.max_codes_per_request, rng);
  for (std::size_t k = 0; k < requests.size(); ++k)
    std::printf("request %zu: user %d -> user %d, %d surface code(s)\n", k,
                requests[k].src, requests[k].dst, requests[k].codes);

  const auto routed = routing::route(
      topology, requests, params.routing, rng,
      routing::RouteOptions{routing::RouteStrategy::Lp, nullptr});
  std::printf("\nLP relaxation objective (upper bound on executed codes): "
              "%.2f\n", routed.lp_objective);
  std::printf("scheduled %d of %d requested codes (throughput %.2f)\n\n",
              routed.schedule.scheduled_codes(),
              routed.schedule.requested_codes,
              routed.schedule.throughput());

  for (const auto& s : routed.schedule.scheduled) {
    std::printf("request %d x%d  support path:", s.request_index, s.codes);
    for (int v : s.support_path) std::printf(" %d", v);
    if (!s.core_path.empty()) {
      std::printf("   core path:");
      for (int v : s.core_path) std::printf(" %d", v);
    }
    std::printf("   EC at:");
    if (s.ec_servers.empty()) std::printf(" (none)");
    for (int v : s.ec_servers) std::printf(" %d", v);
    std::printf("\n");
  }

  const decoder::SurfNetDecoder decoder;
  const auto result = netsim::simulate_surfnet(
      topology, routed.schedule, params.simulation, decoder, rng);
  std::printf("\nexecution: %d/%d codes delivered, fidelity %.3f, "
              "average latency %.1f slots\n",
              result.codes_delivered, result.codes_scheduled,
              result.fidelity(), result.avg_latency());
  return 0;
}
