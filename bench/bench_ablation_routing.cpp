// Routing ablation + LP scaling (paper Sec. V).
//
// Default mode prints two tables:
//  1. Ablation: centralized LP scheduling vs the hierarchical greedy
//     scheduler (paper Sec. V-B), swept over the offered load. Expected
//     shape: matched fidelity at every load; the LP's aggregate noise
//     accounting schedules more codes, the per-code hierarchical scheduler
//     is slightly more selective.
//  2. LP scaling: the sparse revised simplex vs the dense tableau
//     reference on grid topologies, swept over grid size x request count.
//     The dense path gets a wall-clock budget per point (it would run for
//     hours on the large points); when it hits the budget the reported
//     speedup is a lower bound. Warm re-solves of a tightened residual
//     problem are compared against cold re-solves of the same problem.
//
// --json emits one record per scaling sweep point in the shared bench
// envelope — the record schema is stable across commits:
//   {"grid", "requests", "lp_rows", "lp_cols", "lp_nonzeros",
//    "sparse_ms", "sparse_iterations", "warm_ms", "warm_iterations",
//    "cold_resolve_iterations", "dense_ms", "dense_timed_out",
//    "speedup", "objective"}
// so saved outputs can be diffed (scripts/bench_compare.py) to track the
// perf trajectory.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/surfnet.h"
#include "decoder/surfnet_decoder.h"
#include "netsim/simulator.h"
#include "routing/dense_simplex.h"
#include "routing/greedy.h"
#include "routing/lp_router.h"
#include "util/table.h"

namespace {

using namespace surfnet;

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct ScalingRow {
  int grid = 0;
  int requests = 0;
  int lp_rows = 0;
  int lp_cols = 0;
  int lp_nonzeros = 0;
  double sparse_ms = 0.0;
  int sparse_iterations = 0;
  double warm_ms = 0.0;
  int warm_iterations = 0;
  int cold_resolve_iterations = 0;
  double dense_ms = 0.0;
  bool dense_timed_out = false;
  double speedup = 0.0;
  double objective = 0.0;
};

ScalingRow run_scaling_point(int grid, int num_requests, std::uint64_t seed,
                             double dense_budget_ms) {
  netsim::GridSpec gspec;
  gspec.width = grid;
  gspec.height = grid;
  util::Rng rng(seed + static_cast<std::uint64_t>(grid * 1000 +
                                                  num_requests));
  const auto topology = netsim::make_grid_topology(gspec, rng);
  const auto requests = netsim::random_requests(topology, num_requests,
                                                /*max_codes=*/3, rng);
  routing::RoutingParams params;
  params.core_noise_threshold = 0.6;
  params.total_noise_threshold = 0.7;
  params.ec_reduction = 0.15;
  routing::RoutingFormulation formulation(topology, requests, params);

  ScalingRow row;
  row.grid = grid;
  row.requests = num_requests;
  row.lp_rows = formulation.problem().num_rows();
  row.lp_cols = formulation.problem().num_vars();
  row.lp_nonzeros = static_cast<int>(formulation.problem().num_nonzeros());

  // Sparse cold solve (saves the basis for the warm re-solve below).
  routing::SimplexState state;
  double t0 = now_ms();
  const auto sparse = routing::solve_lp(formulation.problem(), state);
  row.sparse_ms = now_ms() - t0;
  row.sparse_iterations = sparse.iterations;
  row.objective = sparse.objective;

  // Residual problem: the shape of the re-solve route_lp performs after
  // rounding — request limits and capacities tightened, structure intact.
  for (int k = 0; k < formulation.num_requests(); ++k)
    formulation.set_request_limit(
        k, 0.5 * static_cast<double>(
                     requests[static_cast<std::size_t>(k)].codes));
  for (int v = 0; v < topology.num_nodes(); ++v)
    formulation.set_storage_capacity(
        v, 0.7 * topology.node(v).storage_capacity);
  for (int e = 0; e < topology.num_fibers(); ++e)
    formulation.set_entanglement_capacity(
        e, 0.7 * topology.fiber(e).entanglement_capacity);

  t0 = now_ms();
  const auto warm = routing::solve_lp(formulation.problem(), state);
  row.warm_ms = now_ms() - t0;
  row.warm_iterations = warm.iterations;
  const auto cold_again = routing::solve_lp(formulation.problem());
  row.cold_resolve_iterations = cold_again.iterations;

  // Dense reference on the residual problem's pristine twin: rebuild so
  // the dense solver sees the exact problem the sparse cold solve saw.
  // The budget scales with the sparse time so a budget-capped dense run
  // can still certify a >= 6x speedup lower bound.
  const routing::RoutingFormulation fresh(topology, requests, params);
  routing::DenseSolveOptions dense_opts;
  dense_opts.max_millis = std::max(dense_budget_ms, 6.5 * row.sparse_ms);
  t0 = now_ms();
  const auto dense = routing::solve_lp_dense(fresh.problem(), dense_opts);
  row.dense_ms = now_ms() - t0;
  row.dense_timed_out = dense.status == routing::LpStatus::IterationLimit;
  row.speedup = row.sparse_ms > 0.0 ? row.dense_ms / row.sparse_ms : 0.0;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  bench::ArgParser args("ablation_routing", argc, argv);

  // --- LP scaling sweep (always computed: it is the --json payload). ---
  // Dense budget per point: enough to finish the small points exactly and
  // to certify a >= 5x lower bound on the large ones without taking hours.
  const double dense_budget_ms = args.full() ? 120000.0 : 4000.0;
  std::vector<ScalingRow> scaling;
  for (const int grid : {4, 6, 8})
    for (const int num_requests : {8, 16, 32, 64})
      scaling.push_back(run_scaling_point(grid, num_requests, args.seed(),
                                          dense_budget_ms));

  if (args.json()) {
    std::vector<std::string> records;
    records.reserve(scaling.size());
    for (const auto& r : scaling) {
      char record[512];
      std::snprintf(
          record, sizeof(record),
          "{\"grid\": %d, \"requests\": %d, \"lp_rows\": %d, "
          "\"lp_cols\": %d, \"lp_nonzeros\": %d, \"sparse_ms\": %.2f, "
          "\"sparse_iterations\": %d, \"warm_ms\": %.2f, "
          "\"warm_iterations\": %d, \"cold_resolve_iterations\": %d, "
          "\"dense_ms\": %.2f, \"dense_timed_out\": %s, \"speedup\": %.1f, "
          "\"objective\": %.4f}",
          r.grid, r.requests, r.lp_rows, r.lp_cols, r.lp_nonzeros,
          r.sparse_ms, r.sparse_iterations, r.warm_ms, r.warm_iterations,
          r.cold_resolve_iterations, r.dense_ms,
          r.dense_timed_out ? "true" : "false", r.speedup, r.objective);
      records.emplace_back(record);
    }
    args.finish_observability();
    args.print_json_envelope(records);
    return 0;
  }

  // --- Ablation: LP vs greedy on the paper's random scenarios. ---
  using namespace surfnet;
  const int trials = args.resolve_trials(150, 1080);
  std::printf("Ablation: centralized LP vs hierarchical greedy routing — "
              "%d trials per point, seed %llu\n\n",
              trials, static_cast<unsigned long long>(args.seed()));

  auto base = core::make_scenario(core::FacilityLevel::Sufficient,
                                  core::ConnectionQuality::Good);
  base.routing.sink = args.sink();
  base.simulation.sink = args.sink();
  util::Table table({"requests", "router", "throughput", "fidelity"});

  for (const int num_requests : {2, 4, 8, 12, 16}) {
    for (const bool centralized : {true, false}) {
      util::RunningStat throughput, fidelity;
      util::Rng seeder(args.seed());
      for (int t = 0; t < trials; ++t) {
        util::Rng rng(seeder());
        const auto topology =
            netsim::make_random_topology(base.topology, rng);
        const auto requests = netsim::random_requests(
            topology, num_requests, base.max_codes_per_request, rng);
        const auto schedule =
            centralized
                ? routing::route_lp(topology, requests, base.routing, rng)
                      .schedule
                : routing::route_greedy(topology, requests, base.routing,
                                        rng);
        const decoder::SurfNetDecoder dec;
        const auto sim = netsim::simulate_surfnet(
            topology, schedule, base.simulation, dec, rng);
        throughput.add(schedule.throughput());
        if (sim.codes_delivered > 0) fidelity.add(sim.fidelity());
      }
      table.add_row({std::to_string(num_requests),
                     centralized ? "LP (centralized)" : "greedy (hier.)",
                     util::Table::fmt(throughput.mean(), 3),
                     util::Table::fmt(fidelity.mean(), 3)});
    }
  }
  table.print(std::cout);
  std::printf("\nExpected shape: matched fidelity at every load; the LP's "
              "aggregate noise accounting and global view schedule more "
              "codes, the per-code hierarchical scheduler is more "
              "selective (slightly higher fidelity, lower throughput).\n");

  // --- LP scaling table. ---
  std::printf("\nLP scaling: sparse revised simplex vs dense tableau on "
              "grid topologies (dense budget %.0f ms/point)\n\n",
              dense_budget_ms);
  util::Table scale_table({"grid", "requests", "rows", "cols", "nnz",
                           "sparse ms", "iters", "warm iters", "cold iters",
                           "dense ms", "speedup"});
  for (const auto& r : scaling)
    scale_table.add_row(
        {std::to_string(r.grid) + "x" + std::to_string(r.grid),
         std::to_string(r.requests), std::to_string(r.lp_rows),
         std::to_string(r.lp_cols), std::to_string(r.lp_nonzeros),
         util::Table::fmt(r.sparse_ms, 1),
         std::to_string(r.sparse_iterations),
         std::to_string(r.warm_iterations),
         std::to_string(r.cold_resolve_iterations),
         util::Table::fmt(r.dense_ms, 1) + (r.dense_timed_out ? "+" : ""),
         util::Table::fmt(r.speedup, 1) + (r.dense_timed_out ? "+" : "")});
  scale_table.print(std::cout);
  std::printf("\n\"+\" marks points where the dense reference hit its "
              "wall-clock budget: its time (and the speedup) is a lower "
              "bound. Warm re-solves restart from the previous basis and "
              "need far fewer iterations than cold re-solves of the same "
              "residual problem.\n");
  return 0;
}
