// Ablation: centralized LP scheduling vs the hierarchical greedy scheduler
// (paper Sec. V-B discusses operating without the centralized protocol).
// Swept over the offered load (number of requests).
//
// Expected shape: both deliver essentially the same fidelity at every
// load. The LP schedules more codes throughout because Eq. (6) bounds the
// *aggregate* per-request noise — it may admit a noisier route by
// averaging it against clean ones — while the hierarchical scheduler
// enforces the thresholds per code, trading throughput for slightly
// higher fidelity.

#include <iostream>

#include "bench_common.h"
#include "core/surfnet.h"
#include "decoder/surfnet_decoder.h"
#include "netsim/simulator.h"
#include "routing/greedy.h"
#include "routing/lp_router.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace surfnet;

  const auto args = bench::parse_args(argc, argv);
  const int trials = bench::resolve_trials(args, 150, 1080);
  std::printf("Ablation: centralized LP vs hierarchical greedy routing — "
              "%d trials per point, seed %llu\n\n",
              trials, static_cast<unsigned long long>(args.seed));

  const auto base = core::make_scenario(core::FacilityLevel::Sufficient,
                                        core::ConnectionQuality::Good);
  util::Table table({"requests", "router", "throughput", "fidelity"});

  for (const int num_requests : {2, 4, 8, 12, 16}) {
    for (const bool centralized : {true, false}) {
      util::RunningStat throughput, fidelity;
      util::Rng seeder(args.seed);
      for (int t = 0; t < trials; ++t) {
        util::Rng rng(seeder());
        const auto topology =
            netsim::make_random_topology(base.topology, rng);
        const auto requests = netsim::random_requests(
            topology, num_requests, base.max_codes_per_request, rng);
        const auto schedule =
            centralized
                ? routing::route_lp(topology, requests, base.routing, rng)
                      .schedule
                : routing::route_greedy(topology, requests, base.routing,
                                        rng);
        const decoder::SurfNetDecoder dec;
        const auto sim = netsim::simulate_surfnet(
            topology, schedule, base.simulation, dec, rng);
        throughput.add(schedule.throughput());
        if (sim.codes_delivered > 0) fidelity.add(sim.fidelity());
      }
      table.add_row({std::to_string(num_requests),
                     centralized ? "LP (centralized)" : "greedy (hier.)",
                     util::Table::fmt(throughput.mean(), 3),
                     util::Table::fmt(fidelity.mean(), 3)});
    }
  }
  table.print(std::cout);
  std::printf("\nExpected shape: matched fidelity at every load; the LP's "
              "aggregate noise accounting and global view schedule more "
              "codes, the per-code hierarchical scheduler is more "
              "selective (slightly higher fidelity, lower throughput).\n");
  return 0;
}
