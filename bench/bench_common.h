#pragma once

// Shared helpers for the reproduction benches. Every bench binary prints
// the rows/series of one paper table or figure; pass --trials N to change
// the Monte-Carlo budget and --seed S to change the base seed. Paper-scale
// budgets (e.g. the 1080 trials of Fig. 6/7) are available via --full.
//
// --threads T fans Monte-Carlo trials out over T worker threads; results
// are bitwise-identical for every T (per-trial counter-based seeding).
// --threads 0 resolves to the machine's hardware concurrency.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

namespace surfnet::bench {

struct BenchArgs {
  int trials = 0;  ///< 0 = use the bench's default
  std::uint64_t seed = 20240607;
  bool full = false;
  bool csv = false;
  bool json = false;  ///< machine-readable output (benches that support it)
  int threads = 1;    ///< worker threads for trial fan-out (resolved)
};

inline BenchArgs parse_args(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trials") == 0 && i + 1 < argc) {
      args.trials = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      args.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      args.threads = std::atoi(argv[++i]);
      if (args.threads <= 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        args.threads = hw > 0 ? static_cast<int>(hw) : 1;
      }
    } else if (std::strcmp(argv[i], "--full") == 0) {
      args.full = true;
    } else if (std::strcmp(argv[i], "--csv") == 0) {
      args.csv = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      args.json = true;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf(
          "usage: %s [--trials N] [--seed S] [--threads T] [--full] [--csv] "
          "[--json]\n"
          "  --trials N   Monte-Carlo trials per point (0 = bench default)\n"
          "  --seed S     base seed; results are thread-count invariant\n"
          "  --threads T  worker threads for trial fan-out; 0 = all hardware\n"
          "               threads (std::thread::hardware_concurrency)\n"
          "  --full       paper-scale trial budget\n"
          "  --csv        CSV tables (benches that support it)\n"
          "  --json       machine-readable output (benches that support it)\n",
          argv[0]);
      std::exit(0);
    }
  }
  return args;
}

inline int resolve_trials(const BenchArgs& args, int default_trials,
                          int full_trials) {
  if (args.trials > 0) return args.trials;
  return args.full ? full_trials : default_trials;
}

}  // namespace surfnet::bench
