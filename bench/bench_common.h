#pragma once

// Shared helpers for the reproduction benches. Every bench binary prints
// the rows/series of one paper table or figure; pass --trials N to change
// the Monte-Carlo budget and --seed S to change the base seed. Paper-scale
// budgets (e.g. the 1080 trials of Fig. 6/7) are available via --full.
//
// --threads T fans Monte-Carlo trials out over T worker threads; results
// are bitwise-identical for every T (per-trial counter-based seeding).
// --threads 0 resolves to the machine's hardware concurrency.
//
// --metrics-out FILE / --trace-out FILE attach the observability layer:
// the bench's sink() then carries a live metrics registry and/or JSONL
// trace writer (see src/obs/) that the engines under test report into.
//
// Machine-readable output (--json) uses one shared envelope across all
// benches, so saved outputs can be compared generically
// (scripts/bench_compare.py) and validated (--validate):
//   {"bench": "<name>", "schema_version": 1, "results": [<records>...]}
// where each record is a flat JSON object whose keys are stable per bench.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "netsim/event_simulator.h"
#include "obs/session.h"
#include "obs/sink.h"

namespace surfnet::bench {

/// Version of the shared --json envelope (bumped on breaking changes).
inline constexpr int kJsonSchemaVersion = 1;

/// Command-line front end shared by every bench binary: parses the common
/// flag set, owns the observability session, and prints the shared JSON
/// envelope. Construction parses (and exits on --help or a bad flag).
class ArgParser {
 public:
  ArgParser(std::string bench_name, int argc, char** argv)
      : bench_(std::move(bench_name)) {
    std::string metrics_out;
    std::string trace_out;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--trials") == 0 && i + 1 < argc) {
        trials_ = std::atoi(argv[++i]);
      } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
        seed_ = std::strtoull(argv[++i], nullptr, 10);
      } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
        threads_ = std::atoi(argv[++i]);
        if (threads_ <= 0) {
          const unsigned hw = std::thread::hardware_concurrency();
          threads_ = hw > 0 ? static_cast<int>(hw) : 1;
        }
      } else if (std::strcmp(argv[i], "--engine") == 0 && i + 1 < argc) {
        set_engine(argv[++i]);
      } else if (std::strncmp(argv[i], "--engine=", 9) == 0) {
        set_engine(argv[i] + 9);
      } else if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
        metrics_out = argv[++i];
      } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
        trace_out = argv[++i];
      } else if (std::strcmp(argv[i], "--full") == 0) {
        full_ = true;
      } else if (std::strcmp(argv[i], "--csv") == 0) {
        csv_ = true;
      } else if (std::strcmp(argv[i], "--json") == 0) {
        json_ = true;
      } else if (std::strcmp(argv[i], "--help") == 0) {
        print_usage(argv[0]);
        std::exit(0);
      } else {
        std::fprintf(stderr, "%s: unknown argument '%s' (try --help)\n",
                     bench_.c_str(), argv[i]);
        std::exit(2);
      }
    }
    session_ = std::make_unique<obs::FileSession>(metrics_out, trace_out);
  }

  const std::string& bench() const { return bench_; }
  int trials() const { return trials_; }
  std::uint64_t seed() const { return seed_; }
  int threads() const { return threads_; }
  bool full() const { return full_; }
  bool csv() const { return csv_; }
  bool json() const { return json_; }

  /// Raw --engine value: "slot", "event", "both", or "" when unset.
  const std::string& engine_name() const { return engine_; }

  /// True when --engine allows running/timing `engine`. Unset and "both"
  /// allow every engine; comparison benches use this to restrict which
  /// engines they time.
  bool engine_enabled(netsim::SimEngine engine) const {
    if (engine_.empty() || engine_ == "both") return true;
    return engine_ ==
           (engine == netsim::SimEngine::Slot ? "slot" : "event");
  }

  /// The single engine picked by --engine, or `fallback` when unset or
  /// "both". Benches that execute one engine per run pass this into
  /// core::RunOptions::engine / netsim::make_simulator.
  netsim::SimEngine selected_engine(
      netsim::SimEngine fallback = netsim::SimEngine::Event) const {
    if (engine_ == "slot") return netsim::SimEngine::Slot;
    if (engine_ == "event") return netsim::SimEngine::Event;
    return fallback;
  }

  /// --trials wins; otherwise the bench default or the --full budget.
  int resolve_trials(int default_trials, int full_trials) const {
    if (trials_ > 0) return trials_;
    return full_ ? full_trials : default_trials;
  }

  /// The observability handle built from --metrics-out / --trace-out
  /// (null when neither flag was given).
  obs::Sink sink() { return session_->sink(); }

  /// Flush the observability outputs (also runs at destruction).
  void finish_observability() { session_->finish(); }

  /// Print the shared JSON envelope around pre-rendered flat records.
  void print_json_envelope(const std::vector<std::string>& records,
                           std::FILE* out = stdout) const {
    std::fprintf(out, "{\"bench\": \"%s\", \"schema_version\": %d, "
                 "\"results\": [",
                 bench_.c_str(), kJsonSchemaVersion);
    for (std::size_t i = 0; i < records.size(); ++i)
      std::fprintf(out, "\n  %s%s", records[i].c_str(),
                   i + 1 < records.size() ? "," : "");
    std::fprintf(out, "\n]}\n");
  }

 private:
  void print_usage(const char* argv0) const {
    std::printf(
        "usage: %s [--trials N] [--seed S] [--threads T] [--full] [--csv] "
        "[--json] [--engine E] [--metrics-out FILE] [--trace-out FILE]\n"
        "  --trials N         Monte-Carlo trials per point (0 = bench "
        "default)\n"
        "  --seed S           base seed; results are thread-count invariant\n"
        "  --threads T        worker threads for trial fan-out; 0 = all\n"
        "                     hardware threads\n"
        "  --full             paper-scale trial budget\n"
        "  --csv              CSV tables (benches that support it)\n"
        "  --json             machine-readable envelope output\n"
        "  --engine E         simulation engine: slot, event, or both\n"
        "                     (both engines are bitwise-identical; this\n"
        "                     picks which are executed/timed)\n"
        "  --metrics-out FILE write the metrics JSON document ('-' = "
        "stdout)\n"
        "  --trace-out FILE   stream the JSONL event trace ('-' = stdout)\n",
        argv0);
  }

  void set_engine(const char* value) {
    if (std::strcmp(value, "slot") != 0 && std::strcmp(value, "event") != 0 &&
        std::strcmp(value, "both") != 0) {
      std::fprintf(stderr,
                   "%s: --engine expects slot, event, or both (got '%s')\n",
                   bench_.c_str(), value);
      std::exit(2);
    }
    engine_ = value;
  }

  std::string bench_;
  int trials_ = 0;  ///< 0 = use the bench's default
  std::uint64_t seed_ = 20240607;
  bool full_ = false;
  bool csv_ = false;
  bool json_ = false;
  std::string engine_;  ///< "", "slot", "event", or "both"
  int threads_ = 1;  ///< worker threads for trial fan-out (resolved)
  std::unique_ptr<obs::FileSession> session_;
};

}  // namespace surfnet::bench
