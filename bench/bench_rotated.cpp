// Extension study: the rotated surface-code layout (paper Sec. III-B
// mentions layout variants). At equal distance the rotated code uses
// d^2 data qubits instead of d^2 + (d-1)^2 — nearly halving SurfNet's
// network traffic — at the cost of a somewhat higher logical error rate
// per distance. This bench quantifies that trade under the paper's
// network noise (erasure 15%, Core rates halved) for both cluster
// decoders.

#include <iostream>
#include <memory>
#include <string>

#include "bench_common.h"
#include "decoder/surfnet_decoder.h"
#include "decoder/trial_runner.h"
#include "decoder/union_find.h"
#include "qec/core_support.h"
#include "qec/lattice.h"
#include "qec/rotated_lattice.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace surfnet;

  bench::ArgParser args("rotated", argc, argv);
  const int trials = args.resolve_trials(6000, 40000);
  std::printf("Extension: rotated vs unrotated layout — erasure 15%%, "
              "%d trials per point, seed %llu, %d thread(s)\n\n",
              trials, static_cast<unsigned long long>(args.seed()),
              args.threads());

  const decoder::UnionFindDecoder union_find;
  const decoder::SurfNetDecoder surfnet;

  util::Table table({"layout", "d", "qubits", "pauli", "UnionFind",
                     "SurfNetDecoder"});
  for (const int d : {5, 9, 13}) {
    for (const bool rotated : {false, true}) {
      std::unique_ptr<qec::CodeLattice> lattice;
      if (rotated)
        lattice = std::make_unique<qec::RotatedSurfaceCodeLattice>(d);
      else
        lattice = std::make_unique<qec::SurfaceCodeLattice>(d);
      const auto partition = qec::make_core_support(*lattice);
      for (const double pauli : {0.04, 0.06}) {
        const auto profile =
            qec::NoiseProfile::core_support(partition, pauli, 0.15);
        double ler[2];
        int i = 0;
        for (const decoder::Decoder* dec :
             {static_cast<const decoder::Decoder*>(&union_find),
              static_cast<const decoder::Decoder*>(&surfnet)}) {
          decoder::TrialRunnerOptions opts;
          opts.threads = args.threads();
          opts.sink = args.sink();
          opts.seed = args.seed() + static_cast<std::uint64_t>(d);
          ler[i++] = decoder::run_logical_error_trials(
                         *lattice, profile,
                         qec::PauliChannel::IndependentXZ, *dec, trials,
                         opts)
                         .error_rate();
        }
        table.add_row({rotated ? "rotated" : "unrotated",
                       std::to_string(d),
                       std::to_string(lattice->num_data_qubits()),
                       util::Table::pct(pauli, 1),
                       util::Table::fmt(ler[0], 4),
                       util::Table::fmt(ler[1], 4)});
      }
    }
  }
  table.print(std::cout);
  std::printf("\nExpected shape: at equal distance the rotated layout "
              "needs ~half the qubits and suffers a moderately higher "
              "logical error rate; per *qubit budget* it is the better "
              "deal, and the SurfNet Decoder beats Union-Find on both "
              "layouts.\n");
  return 0;
}
