// Ablation: what the Core/Support split buys (paper Sec. IV / Fig. 8
// discussion: the decoder's advantage "can be further enhanced if the Core
// part ... is configured to be larger").
//
// Three axes, at distance 13, pauli 7%, erasure 15%:
//   1. Physical split: Core rates halved vs uniform rates (does the
//      dual-channel noise profile itself help?).
//   2. Decoder awareness: SurfNet Decoder with true per-qubit priors vs
//      the same decoder fed flat priors (does *knowing* the split help?).
//   3. Larger Core: rates halved on a 3-wide cross instead of 1-wide.

#include <iostream>

#include "bench_common.h"
#include "decoder/surfnet_decoder.h"
#include "decoder/trial_runner.h"
#include "decoder/union_find.h"
#include "qec/core_support.h"
#include "qec/syndrome.h"
#include "util/table.h"

namespace {

using namespace surfnet;

/// A widened cross: every site data qubit within `halfwidth` columns/rows
/// of the central cross.
qec::CoreSupportPartition wide_core(const qec::SurfaceCodeLattice& lattice,
                                    int halfwidth) {
  const int d = lattice.distance();
  const int center = (d % 2 == 1) ? d - 1 : d;
  qec::CoreSupportPartition part;
  part.is_core.assign(static_cast<std::size_t>(lattice.num_data_qubits()), 0);
  for (int q = 0; q < lattice.num_data_qubits(); ++q) {
    const auto rc = lattice.data_coord(q);
    if (rc.r % 2 != 0) continue;  // site qubits only
    if (std::abs(rc.c - center) <= 2 * halfwidth ||
        std::abs(rc.r - center) <= 2 * halfwidth) {
      part.is_core[static_cast<std::size_t>(q)] = 1;
      ++part.num_core;
    }
  }
  part.num_support = lattice.num_data_qubits() - part.num_core;
  return part;
}

/// Decode with priors replaced by their average (split-blind decoder).
double blind_error_rate(const qec::SurfaceCodeLattice& lattice,
                        const qec::NoiseProfile& profile,
                        const decoder::Decoder& decoder, int trials,
                        const decoder::TrialRunnerOptions& opts) {
  const auto prior =
      profile.component_error_prob(qec::PauliChannel::IndependentXZ);
  double mean = 0.0;
  for (double p : prior) mean += p;
  mean /= static_cast<double>(prior.size());
  const std::vector<double> flat(prior.size(), mean);
  return decoder::run_logical_error_trials(
             lattice, profile, qec::PauliChannel::IndependentXZ, flat,
             decoder, trials, opts)
      .error_rate();
}

}  // namespace

int main(int argc, char** argv) {
  bench::ArgParser args("ablation_core", argc, argv);
  const int trials = args.resolve_trials(6000, 40000);
  const int distance = 13;
  const double pauli = 0.07, erasure = 0.15;
  std::printf("Ablation: the Core/Support split — distance %d, pauli %.0f%%, "
              "erasure %.0f%%, %d trials, seed %llu, %d thread(s)\n\n",
              distance, pauli * 100, erasure * 100, trials,
              static_cast<unsigned long long>(args.seed()), args.threads());

  const qec::SurfaceCodeLattice lattice(distance);
  const auto cross = qec::make_core_support(lattice);
  const auto wide = wide_core(lattice, 1);
  const decoder::SurfNetDecoder surfnet;
  const decoder::UnionFindDecoder union_find;

  const auto uniform =
      qec::NoiseProfile::uniform(lattice.num_data_qubits(), pauli, erasure);
  const auto split = qec::NoiseProfile::core_support(cross, pauli, erasure);
  const auto wide_split =
      qec::NoiseProfile::core_support(wide, pauli, erasure);

  decoder::TrialRunnerOptions opts;
  opts.threads = args.threads();
  opts.sink = args.sink();
  opts.seed = args.seed();
  const auto ler = [&](const qec::NoiseProfile& profile,
                       const decoder::Decoder& dec) {
    return decoder::run_logical_error_trials(
               lattice, profile, qec::PauliChannel::IndependentXZ, dec,
               trials, opts)
        .error_rate();
  };

  util::Table table({"configuration", "core", "logical error rate"});
  table.add_row({"uniform noise, SurfNet decoder", "0",
                 util::Table::fmt(ler(uniform, surfnet), 4)});
  table.add_row({"cross Core (paper), SurfNet decoder",
                 std::to_string(cross.num_core),
                 util::Table::fmt(ler(split, surfnet), 4)});
  table.add_row({"cross Core, decoder BLIND to split",
                 std::to_string(cross.num_core),
                 util::Table::fmt(
                     blind_error_rate(lattice, split, surfnet, trials, opts),
                     4)});
  table.add_row({"cross Core, Union-Find decoder",
                 std::to_string(cross.num_core),
                 util::Table::fmt(ler(split, union_find), 4)});
  table.add_row({"3-wide cross Core, SurfNet decoder",
                 std::to_string(wide.num_core),
                 util::Table::fmt(ler(wide_split, surfnet), 4)});

  table.print(std::cout);
  std::printf("\nExpected shape: the physical split beats uniform noise; "
              "the prior-aware SurfNet Decoder beats both the split-blind "
              "variant and Union-Find; widening the Core lowers the error "
              "rate further (the paper's suggested future direction).\n");
  return 0;
}
