// Extension study: adaptive code sizes based on quality of service (paper
// Sec. VI-C: "incorporating adaptive code sizes based on quality of
// service" is named as the improvement for limited-facility/poor-
// connection scenarios). The greedy scheduler picks distance 3/4/5 per
// route by residual noise; compared against the fixed distance-4 code.
//
// Expected shape: on poor connections the adaptive scheduler executes more
// requests (long routes become feasible on distance-5 codes) at comparable
// or better fidelity; on good connections it saves resources with the
// compact distance-3 code.

#include <iostream>

#include "bench_common.h"
#include "core/surfnet.h"
#include "decoder/surfnet_decoder.h"
#include "netsim/simulator.h"
#include "routing/greedy.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace surfnet;

  bench::ArgParser args("ablation_adaptive", argc, argv);
  const int trials = args.resolve_trials(150, 1080);
  std::printf("Extension: adaptive code sizes (QoS) vs fixed distance 4 — "
              "%d trials per point, seed %llu\n\n",
              trials, static_cast<unsigned long long>(args.seed()));

  util::Table table({"scenario", "codes", "throughput", "fidelity"});
  for (const auto quality :
       {core::ConnectionQuality::Good, core::ConnectionQuality::Poor}) {
    for (const bool adaptive : {false, true}) {
      auto params =
          core::make_scenario(core::FacilityLevel::Insufficient, quality);
      params.routing.adaptive_code_distance = adaptive;
      params.routing.sink = args.sink();
      params.simulation.sink = args.sink();

      util::RunningStat throughput, fidelity;
      util::Rng seeder(args.seed());
      for (int t = 0; t < trials; ++t) {
        util::Rng rng(seeder());
        const auto topology =
            netsim::make_random_topology(params.topology, rng);
        const auto requests = netsim::random_requests(
            topology, params.num_requests, params.max_codes_per_request,
            rng);
        const auto schedule =
            routing::route_greedy(topology, requests, params.routing, rng);
        const decoder::SurfNetDecoder dec;
        const auto sim = netsim::simulate_surfnet(
            topology, schedule, params.simulation, dec, rng);
        throughput.add(schedule.throughput());
        if (sim.codes_delivered > 0) fidelity.add(sim.fidelity());
      }
      table.add_row({std::string(core::to_string(quality)),
                     adaptive ? "adaptive 3/4/5" : "fixed d=4",
                     util::Table::fmt(throughput.mean(), 3),
                     util::Table::fmt(fidelity.mean(), 3)});
    }
  }
  table.print(std::cout);
  std::printf("\nExpected shape: adaptive code sizes raise throughput on "
              "poor connections (distance-5 codes make long routes "
              "feasible) without giving up fidelity.\n");
  return 0;
}
