// Extension study: adaptive code sizes based on quality of service (paper
// Sec. VI-C: "incorporating adaptive code sizes based on quality of
// service" is named as the improvement for limited-facility/poor-
// connection scenarios). Two tiers:
//
//  1. Batch-greedy study (text mode): the greedy scheduler picks distance
//     3/4/5 per route by residual noise on random topologies; compared
//     against the fixed distance-4 code.
//
//  2. Dynamic-traffic study (text + --json): an open-loop traffic stream
//     on the ring topology drives an IncrementalRouter, with a
//     deterministic fidelity-degradation window in the "degrading"
//     scenario. The adaptive policy (per-request distance from measured
//     noise) runs against fixed d in {3, 4, 5}. Delivered quality is
//     grounded in the decoder layer: each admitted request's noise maps
//     to a per-(distance, noise-bucket) logical error rate measured by
//     Monte Carlo with the SurfNet decoder, and the headline metric is
//       delivered_good_per_slot = sum(codes * (1 - p_logical)) / horizon,
//     i.e. logically-intact delivered codes per slot. Every quantity in
//     the --json records is a deterministic function of (params, seed) —
//     no wall-clock metrics — so CI gates them against a committed
//     baseline (bench/baselines/ablation_adaptive_release.json) with a
//     tight tolerance via scripts/check_overhead.py.
//
// Expected shape: adaptive beats every fixed distance on delivered good
// codes per slot in both scenarios — fixed d=3 goes dark inside the
// degradation window (no noise-feasible route), larger fixed codes pay
// their capacity footprint outside it. The bench exits nonzero if
// adaptive fails to win on at least one scenario, so the claim is
// enforced in-process, not just plotted.

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/surfnet.h"
#include "decoder/code_trial.h"
#include "decoder/surfnet_decoder.h"
#include "netsim/simulator.h"
#include "netsim/workload.h"
#include "qec/error_model.h"
#include "qec/lattice.h"
#include "routing/greedy.h"
#include "routing/incremental.h"
#include "util/table.h"

namespace {

using namespace surfnet;

/// Ring: user(0) - sw(1) - server(2) - sw(3) - user(4), plus bypass sw(5)
/// connecting 1 and 3 (same shape as the netsim golden-trace fixtures).
netsim::Topology ring_topology(double fidelity) {
  std::vector<netsim::Node> nodes(6);
  nodes[1] = {netsim::NodeRole::Switch, 1000};
  nodes[2] = {netsim::NodeRole::Server, 1000};
  nodes[3] = {netsim::NodeRole::Switch, 1000};
  nodes[5] = {netsim::NodeRole::Switch, 1000};
  std::vector<netsim::Fiber> fibers{{0, 1, fidelity, 50}, {1, 2, fidelity, 50},
                                    {2, 3, fidelity, 50}, {3, 4, fidelity, 50},
                                    {1, 5, fidelity, 50}, {5, 3, fidelity, 50}};
  return netsim::Topology(std::move(nodes), std::move(fibers));
}

/// RoutingParams pinned to one fixed code distance: the code-size fields
/// and the Eq. (6) thresholds take the same values the adaptive planner
/// would use for that distance, but adaptation itself stays off.
routing::RoutingParams params_for_distance(int distance) {
  routing::RoutingParams params;
  const double scale = (distance - 2.0) / 2.0;
  params.core_qubits = routing::RoutingParams::core_qubits_for(distance);
  params.support_qubits =
      routing::RoutingParams::total_qubits_for(distance) - params.core_qubits;
  params.core_noise_threshold *= scale;
  params.total_noise_threshold *= scale;
  params.adaptive_code_distance = false;
  return params;
}

/// RouteProvider shim that records every admit's (noise, distance, codes)
/// for the delivered-quality accounting. Fixed-distance policies report
/// distance 0 (configuration default) from the router, so the recorder
/// substitutes the policy's distance.
class RecordingProvider final : public netsim::RouteProvider {
 public:
  struct Admit {
    double noise = 0.0;
    int distance = 0;
    int codes = 0;
  };

  RecordingProvider(netsim::RouteProvider& inner, int fallback_distance)
      : inner_(&inner), fallback_distance_(fallback_distance) {}

  std::optional<netsim::AdmittedRoute> admit(int src, int dst,
                                             int codes) override {
    auto route = inner_->admit(src, dst, codes);
    if (route)
      admits_.push_back({route->noise,
                         route->distance > 0 ? route->distance
                                             : fallback_distance_,
                         route->codes});
    return route;
  }
  void release(const netsim::AdmittedRoute& route) override {
    inner_->release(route);
  }
  double reoptimize() override { return inner_->reoptimize(); }
  void set_noise_scale(double scale) override {
    inner_->set_noise_scale(scale);
  }

  const std::vector<Admit>& admits() const { return admits_; }

 private:
  netsim::RouteProvider* inner_;
  int fallback_distance_;
  std::vector<Admit> admits_;
};

/// Memoized per-(distance, noise-bucket) logical error rate: a bucket's
/// center noise mu maps to the per-qubit Pauli rate p = (1 - e^-mu) / 2
/// (the depolarizing-accumulation calibration used across the sim layer)
/// and is measured by Monte Carlo with the SurfNet decoder. Trial count
/// and seed are fixed — independent of --trials — so the table, and with
/// it every gated record, is bitwise stable across bench invocations.
class LogicalErrorTable {
 public:
  static constexpr int kBuckets = 10;
  static constexpr double kBucketWidth = 0.05;

  static int bucket_of(double noise) {
    const int b = static_cast<int>(noise / kBucketWidth);
    return std::min(std::max(b, 0), kBuckets - 1);
  }

  double rate(int distance, int bucket) {
    const auto key = std::make_pair(distance, bucket);
    const auto it = table_.find(key);
    if (it != table_.end()) return it->second;
    const qec::SurfaceCodeLattice lattice(distance);
    const double mu = (bucket + 0.5) * kBucketWidth;
    const double p = 0.5 * (1.0 - std::exp(-mu));
    const auto profile =
        qec::NoiseProfile::uniform(lattice.num_data_qubits(), p, 0.0);
    const decoder::SurfNetDecoder dec;
    util::Rng rng(0x9B5EEDULL + 131 * distance + bucket);
    const double rate = decoder::logical_error_rate(
        lattice, profile, qec::PauliChannel::IndependentXZ, dec, 400, rng);
    table_.emplace(key, rate);
    return rate;
  }

 private:
  std::map<std::pair<int, int>, double> table_;
};

struct TrafficRow {
  std::string scenario;
  std::string policy;
  long long admitted = 0;
  long long blocked = 0;
  double admitted_per_slot = 0.0;
  double blocking_probability = 0.0;
  double mean_distance = 0.0;
  double delivered_fidelity = 0.0;     ///< mean 1 - p_logical over codes
  double delivered_good_per_slot = 0.0;
};

struct Scenario {
  const char* name;
  bool degrade;
};

struct Policy {
  const char* name;
  int fixed_distance;  ///< 0 = adaptive
};

TrafficRow run_traffic_cell(const Scenario& scenario, const Policy& policy,
                            std::uint64_t seed, LogicalErrorTable& table) {
  const auto topology = ring_topology(0.97);

  routing::RoutingParams routing_params =
      policy.fixed_distance == 0 ? routing::RoutingParams{}
                                 : params_for_distance(policy.fixed_distance);
  routing_params.adaptive_code_distance = policy.fixed_distance == 0;

  netsim::WorkloadParams workload;
  workload.arrival_rate = 2.0;
  workload.horizon_slots = 300;
  workload.warmup_slots = 20;
  if (scenario.degrade) {
    workload.degrade_from_slot = 80;
    workload.degrade_until_slot = 160;
    workload.degrade_noise_scale = 2.0;
  }

  routing::IncrementalRouter router(topology, routing_params);
  RecordingProvider provider(router, policy.fixed_distance);
  util::Rng rng(seed);
  const auto result = netsim::run_traffic(topology, provider, workload, rng);

  TrafficRow row;
  row.scenario = scenario.name;
  row.policy = policy.name;
  row.admitted = result.admitted;
  row.blocked = result.blocked;
  row.admitted_per_slot = result.admitted_per_slot();
  row.blocking_probability = result.blocking_probability();

  double good = 0.0;
  double codes = 0.0;
  double distance_sum = 0.0;
  for (const auto& admit : provider.admits()) {
    const double p_logical =
        table.rate(admit.distance, LogicalErrorTable::bucket_of(admit.noise));
    good += admit.codes * (1.0 - p_logical);
    codes += admit.codes;
    distance_sum += admit.codes * admit.distance;
  }
  row.mean_distance = codes > 0 ? distance_sum / codes : 0.0;
  row.delivered_fidelity = codes > 0 ? good / codes : 0.0;
  row.delivered_good_per_slot = good / workload.horizon_slots;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  bench::ArgParser args("ablation_adaptive", argc, argv);
  const int trials = args.resolve_trials(150, 1080);

  // Tier 1: batch-greedy study on random topologies (text mode only — its
  // throughput/fidelity means are Monte-Carlo aggregates, not gate-worthy
  // point metrics).
  if (!args.json()) {
    std::printf("Extension: adaptive code sizes (QoS) vs fixed distance 4 — "
                "%d trials per point, seed %llu\n\n",
                trials, static_cast<unsigned long long>(args.seed()));
    util::Table table({"scenario", "codes", "throughput", "fidelity"});
    for (const auto quality :
         {core::ConnectionQuality::Good, core::ConnectionQuality::Poor}) {
      for (const bool adaptive : {false, true}) {
        auto params =
            core::make_scenario(core::FacilityLevel::Insufficient, quality);
        params.routing.adaptive_code_distance = adaptive;
        params.routing.sink = args.sink();
        params.simulation.sink = args.sink();

        util::RunningStat throughput, fidelity;
        util::Rng seeder(args.seed());
        for (int t = 0; t < trials; ++t) {
          util::Rng rng(seeder());
          const auto topology =
              netsim::make_random_topology(params.topology, rng);
          const auto requests = netsim::random_requests(
              topology, params.num_requests, params.max_codes_per_request,
              rng);
          const auto schedule =
              routing::route_greedy(topology, requests, params.routing, rng);
          const decoder::SurfNetDecoder dec;
          const auto sim = netsim::simulate_surfnet(
              topology, schedule, params.simulation, dec, rng);
          throughput.add(schedule.throughput());
          if (sim.codes_delivered > 0) fidelity.add(sim.fidelity());
        }
        table.add_row({std::string(core::to_string(quality)),
                       adaptive ? "adaptive 3/4/5" : "fixed d=4",
                       util::Table::fmt(throughput.mean(), 3),
                       util::Table::fmt(fidelity.mean(), 3)});
      }
    }
    table.print(std::cout);
    std::printf("\n");
  }

  // Tier 2: dynamic traffic on the ring, adaptive vs every fixed distance.
  const Scenario scenarios[] = {{"stable", false}, {"degrading", true}};
  const Policy policies[] = {
      {"adaptive", 0}, {"fixed_d3", 3}, {"fixed_d4", 4}, {"fixed_d5", 5}};

  LogicalErrorTable table;
  std::vector<TrafficRow> rows;
  for (const auto& scenario : scenarios)
    for (const auto& policy : policies)
      rows.push_back(run_traffic_cell(scenario, policy, args.seed(), table));

  // In-process acceptance: adaptive must beat every fixed distance on
  // delivered good codes per slot on at least one scenario.
  int winning_scenarios = 0;
  for (const auto& scenario : scenarios) {
    double adaptive_good = 0.0;
    double best_fixed = 0.0;
    for (const auto& row : rows) {
      if (row.scenario != scenario.name) continue;
      if (row.policy == "adaptive")
        adaptive_good = row.delivered_good_per_slot;
      else
        best_fixed = std::max(best_fixed, row.delivered_good_per_slot);
    }
    if (adaptive_good > best_fixed) ++winning_scenarios;
  }
  if (winning_scenarios == 0) {
    std::fprintf(stderr,
                 "FAIL: adaptive code selection does not beat every fixed "
                 "distance on delivered_good_per_slot in any scenario\n");
    return 1;
  }

  args.finish_observability();
  if (args.json()) {
    std::vector<std::string> records;
    records.reserve(rows.size());
    for (const auto& r : rows) {
      char record[320];
      std::snprintf(
          record, sizeof(record),
          "{\"scenario\": \"%s\", \"policy\": \"%s\", \"admitted\": %lld, "
          "\"blocked\": %lld, \"admitted_per_slot\": %.4f, "
          "\"blocking_probability\": %.4f, \"mean_distance\": %.3f, "
          "\"delivered_fidelity\": %.4f, \"delivered_good_per_slot\": %.4f}",
          r.scenario.c_str(), r.policy.c_str(), r.admitted, r.blocked,
          r.admitted_per_slot, r.blocking_probability, r.mean_distance,
          r.delivered_fidelity, r.delivered_good_per_slot);
      records.emplace_back(record);
    }
    args.print_json_envelope(records);
    return 0;
  }

  std::printf("Dynamic traffic (ring, rate 2.0, horizon 300, degradation "
              "window [80, 160) at scale 2.0) — seed %llu\n\n",
              static_cast<unsigned long long>(args.seed()));
  util::Table traffic({"scenario", "policy", "admit/slot", "block-p",
                       "mean d", "fidelity", "good/slot"});
  for (const auto& r : rows)
    traffic.add_row({r.scenario, r.policy,
                     util::Table::fmt(r.admitted_per_slot, 3),
                     util::Table::fmt(r.blocking_probability, 3),
                     util::Table::fmt(r.mean_distance, 2),
                     util::Table::fmt(r.delivered_fidelity, 3),
                     util::Table::fmt(r.delivered_good_per_slot, 3)});
  traffic.print(std::cout);
  std::printf("\nExpected shape: adaptive wins delivered good codes per "
              "slot — fixed d=3 admits nothing inside the degradation "
              "window, larger fixed codes pay their capacity footprint "
              "outside it (adaptive won on %d of 2 scenarios).\n",
              winning_scenarios);
  return 0;
}
