// Reproduces paper Fig. 7: averaged communication fidelity of the five
// network designs — SurfNet, Raw, and Purification N = 1, 2, 9 — in four
// scenarios (abundant/insufficient facilities x good/poor fibers), with
// the routing protocols configured to comparable throughput.
//
// Expected shape: SurfNet highest in every scenario; purification designs
// ordered N=1 < N=2 < N=9; SurfNet's advantage largest with abundant
// facilities and narrowest with limited facilities and poor connections.

#include <iostream>

#include "bench_common.h"
#include "core/surfnet.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace surfnet;
  using core::ConnectionQuality;
  using core::FacilityLevel;
  using core::NetworkDesign;

  bench::ArgParser args("fig7", argc, argv);
  const int trials = args.resolve_trials(120, 1080);
  std::printf("Fig. 7: averaged communication fidelity of five designs — "
              "%d trials per cell, seed %llu\n\n",
              trials, static_cast<unsigned long long>(args.seed()));

  core::RunOptions options;
  options.seed = args.seed();
  options.threads = args.threads();
  options.sink = args.sink();

  const NetworkDesign designs[] = {
      NetworkDesign::SurfNet, NetworkDesign::Raw,
      NetworkDesign::Purification1, NetworkDesign::Purification2,
      NetworkDesign::Purification9};

  util::Table table({"scenario", "SurfNet", "Raw", "Purif N=1", "Purif N=2",
                     "Purif N=9"});
  for (const auto level :
       {FacilityLevel::Abundant, FacilityLevel::Insufficient}) {
    for (const auto quality :
         {ConnectionQuality::Good, ConnectionQuality::Poor}) {
      const auto params = core::make_scenario(level, quality);
      std::vector<std::string> row{std::string(core::to_string(level)) +
                                   "/" +
                                   std::string(core::to_string(quality))};
      for (const auto design : designs) {
        const auto agg = core::run_trials(params, design, trials, options);
        row.push_back(util::Table::fmt(agg.fidelity.mean(), 3));
      }
      table.add_row(std::move(row));
    }
  }
  if (args.csv()) table.print_csv(std::cout);
  else table.print(std::cout);

  std::printf("\nPaper shape check: SurfNet achieves the highest fidelity "
              "in all four scenarios; Purification improves with N; the "
              "SurfNet margin shrinks with limited facilities and poor "
              "connections.\n");
  return 0;
}
