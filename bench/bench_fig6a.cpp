// Reproduces paper Fig. 6(a): Raw vs SurfNet in the three facility
// scenarios (abundant / sufficient / insufficient), over the paper's three
// metrics. The (a.1) tables report throughput and latency (similar for
// both designs); the (a.2) plots report communication fidelity (SurfNet
// clearly higher). Both fiber-quality settings are shown.
//
// Expected shape: throughput and latency comparable between the two
// designs in each scenario, fidelity consistently higher for SurfNet.
//
// --json records: {"scenario", "fibers", "design", "throughput",
// "latency", "fidelity", "fid_ci95"} inside the shared bench envelope.

#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/surfnet.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace surfnet;
  using core::ConnectionQuality;
  using core::FacilityLevel;
  using core::NetworkDesign;

  bench::ArgParser args("fig6a", argc, argv);
  const int trials = args.resolve_trials(120, 1080);
  if (!args.json())
    std::printf(
        "Fig. 6(a): Raw vs SurfNet — %d trials per cell, seed %llu\n\n",
        trials, static_cast<unsigned long long>(args.seed()));

  core::RunOptions options;
  options.seed = args.seed();
  options.threads = args.threads();
  options.engine = args.selected_engine();
  options.sink = args.sink();

  util::Table table({"scenario", "fibers", "design", "throughput", "latency",
                     "fidelity", "fid_ci95"});
  std::vector<std::string> records;
  for (const auto level :
       {FacilityLevel::Abundant, FacilityLevel::Sufficient,
        FacilityLevel::Insufficient}) {
    for (const auto quality :
         {ConnectionQuality::Good, ConnectionQuality::Poor}) {
      const auto params = core::make_scenario(level, quality);
      for (const auto design :
           {NetworkDesign::SurfNet, NetworkDesign::Raw}) {
        const auto agg = core::run_trials(params, design, trials, options);
        table.add_row({std::string(core::to_string(level)),
                       std::string(core::to_string(quality)),
                       std::string(core::to_string(design)),
                       util::Table::fmt(agg.throughput.mean(), 3),
                       util::Table::fmt(agg.latency.mean(), 1),
                       util::Table::fmt(agg.fidelity.mean(), 3),
                       util::Table::fmt(agg.fidelity.ci95(), 3)});
        char record[256];
        std::snprintf(
            record, sizeof(record),
            "{\"scenario\": \"%s\", \"fibers\": \"%s\", \"design\": \"%s\", "
            "\"throughput\": %.4f, \"latency\": %.2f, \"fidelity\": %.4f, "
            "\"fid_ci95\": %.4f}",
            std::string(core::to_string(level)).c_str(),
            std::string(core::to_string(quality)).c_str(),
            std::string(core::to_string(design)).c_str(),
            agg.throughput.mean(), agg.latency.mean(), agg.fidelity.mean(),
            agg.fidelity.ci95());
        records.emplace_back(record);
      }
    }
  }
  args.finish_observability();
  if (args.json()) {
    args.print_json_envelope(records);
    return 0;
  }
  if (args.csv()) table.print_csv(std::cout);
  else table.print(std::cout);

  std::printf("\nPaper shape check: within each scenario, SurfNet and Raw "
              "should have similar throughput and latency, with SurfNet's "
              "fidelity clearly higher (Fig. 6(a.1)/(a.2)).\n");
  return 0;
}
