// Chaos campaigns: online execution under the deterministic fault-injection
// subsystem (netsim/faults.h) with the recovery policy (netsim/recovery.h)
// off versus fully on. Three fault regimes beyond the paper's Sec. V-B
// independent fiber crashes:
//
//   correlated_cuts  a conduit cut takes out a bundle of fibers sharing an
//                    endpoint (correlated multi-link failures);
//   degradation      entanglement sources degrade to a fraction of their
//                    pair rate for long windows (pool starvation);
//   node_outages     switches/servers drop out and heal.
//
// Expected shape: with recovery disabled, broken routes hold in place until
// the fault heals and starved codes pin their requests, so the fraction of
// scheduled codes that arrive intact collapses; the aggressive policy
// (local detours, bounded retries with backoff, escalation, per-code
// budgets) keeps delivery and success strictly higher under every regime —
// most visibly under correlated cuts, where a single conduit event severs
// the planned route outright.

#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/surfnet.h"
#include "netsim/faults.h"
#include "netsim/recovery.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

struct Campaign {
  const char* name;
  surfnet::netsim::StochasticFaults faults;
};

std::vector<Campaign> campaigns() {
  using surfnet::netsim::StochasticFaults;
  StochasticFaults cuts;
  cuts.correlated_cut_rate = 0.10;
  cuts.correlated_group_size = 4;
  cuts.correlated_cut_duration = 250;

  StochasticFaults starve;
  starve.degradation_rate = 0.10;
  starve.degradation_factor = 0.05;
  starve.degradation_duration = 150;

  StochasticFaults outages;
  outages.node_outage_rate = 0.02;
  outages.node_outage_duration = 120;

  return {{"correlated_cuts", cuts},
          {"degradation", starve},
          {"node_outages", outages}};
}

struct ChaosRow {
  std::string campaign;
  bool recovery = false;
  /// succeeded / delivered. Survivorship-biased across policies: a policy
  /// that times starved codes out censors exactly its hardest cases.
  double fidelity = 0.0;
  double delivered = 0.0;  ///< delivered / scheduled
  /// succeeded / scheduled — the headline "delivered-code fidelity": the
  /// fraction of scheduled codes that arrived with no logical error. Free
  /// of the censoring bias above, so policies compare apples to apples.
  double delivered_code_fidelity = 0.0;
  double latency = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace surfnet;

  bench::ArgParser args("chaos", argc, argv);
  const int trials = args.resolve_trials(60, 500);
  if (!args.json())
    std::printf("Chaos campaigns: correlated cuts, source degradation, node "
                "outages — recovery off vs aggressive, %d trials per cell, "
                "seed %llu\n\n",
                trials, static_cast<unsigned long long>(args.seed()));

  std::vector<ChaosRow> rows;
  for (const auto& campaign : campaigns()) {
    for (const bool recovery : {false, true}) {
      auto params = core::make_scenario(core::FacilityLevel::Sufficient,
                                        core::ConnectionQuality::Good);
      params.simulation.faults.stochastic = campaign.faults;
      // Bound the run so a code holding against a long fault window times
      // out instead of waiting it out: delivery becomes part of the signal.
      params.simulation.max_slots = 2000;
      params.simulation.recovery = recovery
                                       ? netsim::RecoveryPolicy::aggressive()
                                       : netsim::RecoveryPolicy::disabled();

      long long scheduled = 0, delivered = 0, succeeded = 0;
      util::RunningStat latency;
      util::Rng seeder(args.seed());
      for (int t = 0; t < trials; ++t) {
        const auto metrics =
            core::run_trial(params, core::NetworkDesign::SurfNet, seeder(),
                            args.sink(), args.selected_engine());
        scheduled += metrics.codes_scheduled;
        delivered += metrics.codes_delivered;
        succeeded += static_cast<long long>(
            metrics.fidelity * metrics.codes_delivered + 0.5);
        if (metrics.codes_delivered > 0) latency.add(metrics.latency);
      }

      ChaosRow row;
      row.campaign = campaign.name;
      row.recovery = recovery;
      row.fidelity = delivered > 0
                         ? static_cast<double>(succeeded) / delivered
                         : 0.0;
      row.delivered = scheduled > 0
                          ? static_cast<double>(delivered) / scheduled
                          : 0.0;
      row.delivered_code_fidelity =
          scheduled > 0 ? static_cast<double>(succeeded) / scheduled : 0.0;
      row.latency = latency.mean();
      rows.push_back(row);
    }
  }

  args.finish_observability();
  if (args.json()) {
    std::vector<std::string> records;
    records.reserve(rows.size());
    for (const auto& r : rows) {
      char record[256];
      std::snprintf(record, sizeof(record),
                    "{\"campaign\": \"%s\", \"recovery\": \"%s\", "
                    "\"fidelity\": %.4f, \"delivered_ratio\": %.4f, "
                    "\"delivered_code_fidelity\": %.4f, "
                    "\"latency\": %.2f, \"trials\": %d}",
                    r.campaign.c_str(),
                    r.recovery ? "aggressive" : "disabled", r.fidelity,
                    r.delivered, r.delivered_code_fidelity, r.latency,
                    trials);
      records.emplace_back(record);
    }
    args.print_json_envelope(records);
    return 0;
  }

  util::Table table({"campaign", "recovery", "fidelity", "delivered",
                     "delivered-code fid", "latency"});
  for (const auto& r : rows)
    table.add_row({r.campaign, r.recovery ? "aggressive" : "disabled",
                   util::Table::fmt(r.fidelity, 3),
                   util::Table::fmt(r.delivered, 3),
                   util::Table::fmt(r.delivered_code_fidelity, 3),
                   util::Table::fmt(r.latency, 1)});
  table.print(std::cout);
  std::printf("\nExpected shape: recovery keeps delivery and the "
              "delivered-code fidelity (intact arrivals over scheduled "
              "codes) strictly higher under correlated cuts, and cuts "
              "recovery latency everywhere.\n");
  return 0;
}
