// Engine comparison: dense slot oracle vs activity-proportional event
// engine on the same workloads. Sweeps network size (grid side), activity
// density (busy = a long stream of codes in constant motion; sparse = a
// single code pinned behind a scripted fiber cut until its request times
// out) and timeout length (short/long). Every cell runs both engines from
// the same seed and asserts the SimulationResults are identical before
// trusting the timings, so the speedup column can never come from
// divergent work.
//
// Expected shape: busy cells stay near 1x (both engines visit every slot;
// the event engine trades queue upkeep against lazy per-fiber pools) while
// sparse cells grow with timeout length x fiber count — the slot engine
// pays O(fibers) per waited slot, the event engine jumps straight to the
// fault expiry/timeout. The sparse long-timeout row is the headline: the
// event engine must clear 5x there (scripts/check_overhead.py gates the
// committed baseline).
//
// The engines run unobserved here on purpose: an attached sink forces the
// event engine into dense mode, so a sink would measure observability
// overhead, not engine overhead (bench_obs_overhead covers that).
//
// --engine slot|event restricts which engine is executed and timed (the
// cross-engine equality assertion then has nothing to compare and is
// skipped); the default runs and checks both.

#include <chrono>
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "decoder/surfnet_decoder.h"
#include "netsim/event_simulator.h"
#include "netsim/simulator.h"
#include "netsim/topology.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

using namespace surfnet;

struct Scenario {
  std::string name;    ///< "<density>_<timeout>" e.g. "sparse_long"
  int grid = 8;        ///< grid side (width = height)
  int codes = 1;       ///< codes on the single scheduled request
  bool blocked = false;  ///< scripted cut pins the code for the whole run
  int timeout_slots = 0;
  int max_slots = 0;
};

std::vector<Scenario> scenarios() {
  std::vector<Scenario> out;
  for (const int grid : {8, 16, 24}) {
    for (const bool blocked : {false, true}) {
      for (const int timeout : {2000, 50000}) {
        Scenario s;
        s.name = std::string(blocked ? "sparse" : "busy") +
                 (timeout > 2000 ? "_long" : "_short");
        s.grid = grid;
        s.codes = blocked ? 1 : 32;
        s.blocked = blocked;
        s.timeout_slots = timeout;
        s.max_slots = timeout + 1000;
        out.push_back(std::move(s));
      }
    }
  }
  return out;
}

/// Vertical column x = 1: endpoints are boundary users, interior nodes
/// switches/servers, consecutive nodes 4-neighbors.
std::vector<int> column_path(int width, int height) {
  std::vector<int> path;
  path.reserve(static_cast<std::size_t>(height));
  for (int y = 0; y < height; ++y) path.push_back(1 + y * width);
  return path;
}

netsim::Schedule make_schedule(const std::vector<int>& path, int codes) {
  netsim::ScheduledRequest request;
  request.request_index = 0;
  request.codes = codes;
  request.support_path = path;
  request.core_path = path;
  netsim::Schedule schedule;
  schedule.requested_codes = codes;
  schedule.scheduled.push_back(std::move(request));
  return schedule;
}

netsim::SimulationParams make_params(const netsim::Topology& topology,
                                     const std::vector<int>& path,
                                     const Scenario& s) {
  netsim::SimulationParams params;
  params.max_slots = s.max_slots;
  params.entanglement_rate = 2.0;  // integral: no per-fiber draws
  params.recovery.code_timeout_slots = s.timeout_slots;
  if (s.blocked) {
    // Permanent cut on the first fiber of the path: the code holds at the
    // source until its timeout fires. Recovery stays off so the hold is
    // not rerouted around.
    netsim::FaultEvent cut;
    cut.kind = netsim::FaultKind::FiberCut;
    cut.slot = 0;
    cut.duration = s.max_slots;
    cut.target = topology.fiber_between(path[0], path[1]);
    params.faults.scripted.push_back(cut);
    params.recovery.local_reroute = false;
  }
  return params;
}

/// Result fingerprint for the cross-engine equality assertion.
std::string dump(const netsim::SimulationResult& r) {
  std::ostringstream out;
  out << r.codes_scheduled << '/' << r.codes_delivered << '/'
      << r.codes_succeeded << '/' << r.total_latency << '\n';
  for (const auto& c : r.codes)
    out << c.request << ' ' << c.slots << ' ' << c.corrections << ' '
        << static_cast<int>(c.outcome) << '\n';
  return out.str();
}

struct Row {
  Scenario scenario;
  int nodes = 0;
  int fibers = 0;
  int trials = 0;
  double slot_ms = 0.0;
  double event_ms = 0.0;
  double speedup = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  bench::ArgParser args("event_core", argc, argv);
  const int trials = args.resolve_trials(3, 10);
  const bool run_slot = args.engine_enabled(netsim::SimEngine::Slot);
  const bool run_event = args.engine_enabled(netsim::SimEngine::Event);
  const decoder::SurfNetDecoder dec;

  if (!args.json())
    std::printf("Engine comparison: slot oracle vs event engine, %d "
                "trial(s) per cell, seed %llu\n\n",
                trials, static_cast<unsigned long long>(args.seed()));

  std::vector<Row> rows;
  for (const auto& scenario : scenarios()) {
    netsim::GridSpec spec;
    spec.width = scenario.grid;
    spec.height = scenario.grid;
    util::Rng topo_rng(args.seed());
    const auto topology = netsim::make_grid_topology(spec, topo_rng);
    const auto path = column_path(scenario.grid, scenario.grid);
    const auto schedule = make_schedule(path, scenario.codes);
    const auto params = make_params(topology, path, scenario);

    Row row;
    row.scenario = scenario;
    row.nodes = topology.num_nodes();
    row.fibers = topology.num_fibers();
    row.trials = trials;

    std::int64_t slot_ns = 0, event_ns = 0;
    util::Rng seeder(args.seed());
    for (int t = 0; t < trials; ++t) {
      const std::uint64_t seed = seeder();
      std::string slot_dump, event_dump;
      if (run_slot) {
        util::Rng rng(seed);
        const auto begin = std::chrono::steady_clock::now();
        const auto result =
            netsim::simulate_surfnet(topology, schedule, params, dec, rng);
        slot_ns += std::chrono::duration_cast<std::chrono::nanoseconds>(
                       std::chrono::steady_clock::now() - begin)
                       .count();
        slot_dump = dump(result);
      }
      if (run_event) {
        util::Rng rng(seed);
        const auto begin = std::chrono::steady_clock::now();
        const auto result = netsim::simulate_surfnet_event(
            topology, schedule, params, dec, rng);
        event_ns += std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - begin)
                        .count();
        event_dump = dump(result);
      }
      if (run_slot && run_event && slot_dump != event_dump) {
        std::fprintf(stderr,
                     "FATAL: engines diverged on %s grid=%d seed=%llu\n"
                     "slot:\n%s\nevent:\n%s\n",
                     scenario.name.c_str(), scenario.grid,
                     static_cast<unsigned long long>(seed),
                     slot_dump.c_str(), event_dump.c_str());
        return 1;
      }
    }
    row.slot_ms = static_cast<double>(slot_ns) / 1e6;
    row.event_ms = static_cast<double>(event_ns) / 1e6;
    if (run_slot && run_event && event_ns > 0)
      row.speedup = static_cast<double>(slot_ns) /
                    static_cast<double>(event_ns);
    rows.push_back(std::move(row));
  }

  args.finish_observability();
  if (args.json()) {
    std::vector<std::string> records;
    records.reserve(rows.size());
    for (const auto& r : rows) {
      char record[320];
      std::snprintf(
          record, sizeof(record),
          "{\"scenario\": \"%s\", \"grid\": %d, \"nodes\": %d, "
          "\"fibers\": %d, \"codes\": %d, \"timeout_slots\": %d, "
          "\"max_slots\": %d, \"trials\": %d, \"slot_ms\": %.3f, "
          "\"event_ms\": %.3f, \"speedup\": %.2f}",
          r.scenario.name.c_str(), r.scenario.grid, r.nodes, r.fibers,
          r.scenario.codes, r.scenario.timeout_slots, r.scenario.max_slots,
          r.trials, r.slot_ms, r.event_ms, r.speedup);
      records.emplace_back(record);
    }
    args.print_json_envelope(records);
    return 0;
  }

  util::Table table({"scenario", "grid", "fibers", "codes", "timeout",
                     "slot ms", "event ms", "speedup"});
  for (const auto& r : rows)
    table.add_row({r.scenario.name, std::to_string(r.scenario.grid),
                   std::to_string(r.fibers),
                   std::to_string(r.scenario.codes),
                   std::to_string(r.scenario.timeout_slots),
                   util::Table::fmt(r.slot_ms, 2),
                   util::Table::fmt(r.event_ms, 2),
                   util::Table::fmt(r.speedup, 1)});
  table.print(std::cout);
  std::printf("\nExpected shape: busy cells near 1x (every slot is active "
              "under both engines); sparse cells scale with timeout x "
              "fibers, far past the 5x acceptance floor on the long rows.\n");
  return 0;
}
