// Ablation: the SurfNet Decoder's step size r (paper Sec. IV-C: "can be
// further adjusted to optimize between the decoding speed and accuracy,
// with the default 2/3 generally achieving a good balance").
//
// For each r we report the logical error rate and the mean decode time.
// Expected shape: smaller r is more accurate but slower (more growth
// rounds); the default 2/3 sits near the knee.

#include <iostream>

#include "bench_common.h"
#include "decoder/surfnet_decoder.h"
#include "decoder/trial_runner.h"
#include "qec/core_support.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace surfnet;

  bench::ArgParser args("ablation_step", argc, argv);
  const int trials = args.resolve_trials(6000, 40000);
  const int distance = 13;
  std::printf("Ablation: SurfNet Decoder step size r — distance %d, "
              "pauli 7%%, erasure 15%%, %d trials, seed %llu, "
              "%d thread(s)\n\n",
              distance, trials, static_cast<unsigned long long>(args.seed()),
              args.threads());

  const qec::SurfaceCodeLattice lattice(distance);
  const auto partition = qec::make_core_support(lattice);
  const auto profile = qec::NoiseProfile::core_support(partition, 0.07,
                                                       0.15);

  util::Table table({"step r", "logical error rate", "us/decode"});
  for (const double r : {2.0, 1.0, 2.0 / 3.0, 0.5, 1.0 / 3.0, 0.2, 0.1}) {
    const decoder::SurfNetDecoder decoder(r);
    decoder::TrialRunnerOptions opts;
    opts.threads = args.threads();
    opts.sink = args.sink();
    opts.seed = args.seed();
    const auto report = decoder::run_logical_error_trials(
        lattice, profile, qec::PauliChannel::IndependentXZ, decoder, trials,
        opts);
    // Per-decode latency from summed worker busy time; each trial decodes
    // both graphs.
    table.add_row({util::Table::fmt(r, 3),
                   util::Table::fmt(report.error_rate(), 4),
                   util::Table::fmt(report.ns_per_trial() / 2000.0, 1)});
  }
  table.print(std::cout);
  std::printf("\n(us/decode counts one graph decode; each trial decodes "
              "both graphs.)\nExpected shape: accuracy improves and decode "
              "time grows as r shrinks; r = 2/3 balances the two.\n");
  return 0;
}
