// Extension study: online execution under fiber failures (paper Sec. V-B:
// "if abundant resources are available in the local neighborhood, a node
// can locally replace a failed route with a recovery path leading to the
// next designated node"). SurfNet on the abundant/good scenario with
// increasing per-slot fiber failure rates, with and without local
// recovery.
//
// Expected shape: latency grows with the failure rate; enabling recovery
// paths recovers most of the lost latency at equal fidelity.

#include <iostream>

#include "bench_common.h"
#include "core/surfnet.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace surfnet;

  bench::ArgParser args("failure_recovery", argc, argv);
  const int trials = args.resolve_trials(150, 1080);
  std::printf("Failure injection: fiber crashes and local recovery paths — "
              "%d trials per point, seed %llu\n\n",
              trials, static_cast<unsigned long long>(args.seed()));

  util::Table table({"failure rate", "recovery", "fidelity", "latency",
                     "delivered"});
  for (const double rate : {0.0, 0.01, 0.03, 0.06}) {
    for (const bool recovery : {true, false}) {
      if (rate == 0.0 && !recovery) continue;  // identical to the on case
      auto params = core::make_scenario(core::FacilityLevel::Abundant,
                                        core::ConnectionQuality::Good);
      params.simulation.faults =
          netsim::FaultPlanBuilder().fiber_noise(rate, 30).build();
      params.simulation.recovery.local_reroute = recovery;

      util::RunningStat fidelity, latency, delivered;
      util::Rng seeder(args.seed());
      for (int t = 0; t < trials; ++t) {
        const auto metrics = core::run_trial(
            params, core::NetworkDesign::SurfNet, seeder(), args.sink());
        if (metrics.codes_delivered > 0) {
          fidelity.add(metrics.fidelity);
          latency.add(metrics.latency);
        }
        delivered.add(metrics.codes_scheduled > 0
                          ? static_cast<double>(metrics.codes_delivered) /
                                metrics.codes_scheduled
                          : 0.0);
      }
      table.add_row({util::Table::pct(rate, 1), recovery ? "on" : "off",
                     util::Table::fmt(fidelity.mean(), 3),
                     util::Table::fmt(latency.mean(), 1),
                     util::Table::fmt(delivered.mean(), 3)});
    }
  }
  table.print(std::cout);
  std::printf("\nExpected shape: failures inflate latency; local recovery "
              "paths claw most of it back and keep delivery near 1.\n");
  return 0;
}
