// Reproduces paper Fig. 6(b): SurfNet fidelity and throughput as functions
// of the network and routing parameters, on the "sufficient" scenario with
// good fibers:
//   (b.1) facility capacity            — both metrics rise with resources
//   (b.2) entanglement generation rate — both metrics rise with resources
//   (b.3) messages per request         — throughput falls, fidelity flat
//   (b.4) fidelity threshold 1/2^Wc    — fidelity rises, throughput falls

#include <cmath>
#include <iostream>

#include "bench_common.h"
#include "core/surfnet.h"
#include "util/table.h"

namespace {

using namespace surfnet;

void run_series(const char* title, util::Table& table,
                const std::vector<std::pair<std::string,
                                            core::ScenarioParams>>& points,
                int trials, const core::RunOptions& options) {
  for (const auto& [label, params] : points) {
    const auto agg = core::run_trials(params, core::NetworkDesign::SurfNet,
                                      trials, options);
    table.add_row({title, label, util::Table::fmt(agg.fidelity.mean(), 3),
                   util::Table::fmt(agg.throughput.mean(), 3)});
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::ArgParser args("fig6b", argc, argv);
  const int trials = args.resolve_trials(120, 1080);
  std::printf("Fig. 6(b): SurfNet parameter sensitivity — %d trials per "
              "point, seed %llu\n\n",
              trials, static_cast<unsigned long long>(args.seed()));

  core::RunOptions options;
  options.seed = args.seed();
  options.threads = args.threads();
  options.sink = args.sink();

  const auto base = core::make_scenario(core::FacilityLevel::Sufficient,
                                        core::ConnectionQuality::Good);
  util::Table table({"sweep", "value", "fidelity", "throughput"});

  // (b.1) facility capacity: scale switch/server storage.
  {
    std::vector<std::pair<std::string, core::ScenarioParams>> points;
    for (const int capacity : {25, 50, 75, 100, 150, 200}) {
      auto params = base;
      params.topology.storage_capacity = capacity;
      points.emplace_back(std::to_string(capacity), params);
    }
    run_series("b.1 capacity", table, points, trials, options);
  }

  // (b.2) entanglement generation rate (expected pairs per slot; the
  // prepared-pair budget per round scales with it).
  {
    std::vector<std::pair<std::string, core::ScenarioParams>> points;
    for (const double rate : {0.5, 1.0, 2.0, 4.0, 6.0, 8.0}) {
      auto params = base;
      params.simulation.entanglement_rate = rate;
      params.topology.entanglement_capacity =
          std::max(7, static_cast<int>(rate * 7));
      points.emplace_back(util::Table::fmt(rate, 1), params);
    }
    run_series("b.2 ent-rate", table, points, trials, options);
  }

  // (b.3) messages per request.
  {
    std::vector<std::pair<std::string, core::ScenarioParams>> points;
    for (const int messages : {1, 2, 3, 4, 6, 8}) {
      auto params = base;
      params.max_codes_per_request = messages;
      points.emplace_back(std::to_string(messages), params);
    }
    run_series("b.3 msgs/req", table, points, trials, options);
  }

  // (b.4) routing fidelity threshold, reported as 1/2^Wc like the paper.
  {
    std::vector<std::pair<std::string, core::ScenarioParams>> points;
    for (const double wc : {0.8, 0.5, 0.35, 0.22, 0.12, 0.06}) {
      auto params = base;
      params.routing.core_noise_threshold = wc;
      params.routing.total_noise_threshold = wc * 1.4;
      const double threshold = std::pow(2.0, -wc);
      points.emplace_back(util::Table::fmt(threshold, 3), params);
    }
    run_series("b.4 fid-thresh", table, points, trials, options);
  }

  if (args.csv()) table.print_csv(std::cout);
  else table.print(std::cout);

  std::printf("\nPaper shape check: fidelity and throughput rise with "
              "capacity (b.1) and entanglement rate (b.2); messages per "
              "request depresses throughput but not fidelity (b.3); a "
              "higher fidelity threshold trades throughput for fidelity "
              "(b.4).\n");
  return 0;
}
