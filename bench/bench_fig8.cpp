// Reproduces paper Fig. 8: Pauli error threshold of surface codes under
// the Union-Find decoder (left) and the SurfNet Decoder (right).
//
// Setup (paper Sec. VI-B): distances 9, 11, 13, 15; erasure rate fixed at
// 15%; Pauli rate swept over 5.0-8.5%; both rates halved on the Core part.
// The threshold is where the logical-error-rate curves of different
// distances cross. The paper reports ~7.1% for Union-Find and ~7.25% for
// the SurfNet Decoder; the reproduction should place the SurfNet Decoder's
// crossing at or above Union-Find's, with uniformly lower error rates.

#include <cmath>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "decoder/surfnet_decoder.h"
#include "decoder/trial_runner.h"
#include "decoder/union_find.h"
#include "qec/core_support.h"
#include "util/stats.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace surfnet;

  bench::ArgParser args("fig8", argc, argv);
  const int trials = args.resolve_trials(4000, 40000);
  std::printf("Fig. 8: decoder thresholds — %d trials per point, seed "
              "%llu, %d thread(s)\n\n",
              trials, static_cast<unsigned long long>(args.seed()),
              args.threads());

  const std::vector<int> distances{9, 11, 13, 15};
  const std::vector<double> pauli_rates{0.050, 0.055, 0.060, 0.065,
                                        0.070, 0.0725, 0.075, 0.080, 0.085};
  const double erasure = 0.15;

  const decoder::UnionFindDecoder union_find;
  const decoder::SurfNetDecoder surfnet;
  const decoder::Decoder* decoders[] = {&union_find, &surfnet};

  // rates[decoder][distance][point]
  std::vector<std::vector<std::vector<double>>> rates(
      2, std::vector<std::vector<double>>(
             distances.size(), std::vector<double>(pauli_rates.size(), 0)));

  for (std::size_t di = 0; di < distances.size(); ++di) {
    const qec::SurfaceCodeLattice lattice(distances[di]);
    const auto partition = qec::make_core_support(lattice);
    for (std::size_t pi = 0; pi < pauli_rates.size(); ++pi) {
      const auto profile = qec::NoiseProfile::core_support(
          partition, pauli_rates[pi], erasure);
      for (int dec = 0; dec < 2; ++dec) {
        decoder::TrialRunnerOptions opts;
        opts.threads = args.threads();
        opts.sink = args.sink();
        opts.seed = args.seed() + 1000 * di + pi;
        const auto report = decoder::run_logical_error_trials(
            lattice, profile, qec::PauliChannel::IndependentXZ,
            *decoders[dec], trials, opts);
        rates[static_cast<std::size_t>(dec)][di][pi] = report.error_rate();
      }
    }
  }

  for (int dec = 0; dec < 2; ++dec) {
    std::printf("--- %s ---\n", decoders[dec]->name().data());
    std::vector<std::string> header{"pauli"};
    for (int d : distances) header.push_back("d=" + std::to_string(d));
    util::Table table(header);
    for (std::size_t pi = 0; pi < pauli_rates.size(); ++pi) {
      std::vector<std::string> row{util::Table::pct(pauli_rates[pi], 2)};
      for (std::size_t di = 0; di < distances.size(); ++di)
        row.push_back(util::Table::fmt(
            rates[static_cast<std::size_t>(dec)][di][pi], 4));
      table.add_row(std::move(row));
    }
    if (args.csv()) table.print_csv(std::cout);
    else table.print(std::cout);
    std::printf("\n");
  }

  // Threshold estimate: crossing point of every small-d/large-d curve
  // pair, averaged. The curves are nearly parallel around the crossing,
  // so individual pair estimates carry substantial Monte-Carlo spread —
  // the min/max across pairs is reported as the uncertainty.
  std::printf("threshold estimates (mean over distance-pair crossings, "
              "[min, max]):\n");
  double thresholds[2] = {0.0, 0.0};
  for (int dec = 0; dec < 2; ++dec) {
    const auto& r = rates[static_cast<std::size_t>(dec)];
    double sum = 0.0, lo_est = 1.0, hi_est = 0.0;
    int count = 0;
    for (std::size_t a = 0; a < distances.size(); ++a)
      for (std::size_t b = a + 1; b < distances.size(); ++b) {
        const double x = util::crossing_point(
            pauli_rates.data(), r[b].data(), r[a].data(),
            pauli_rates.size());
        if (std::isnan(x)) continue;
        sum += x;
        lo_est = std::min(lo_est, x);
        hi_est = std::max(hi_est, x);
        ++count;
      }
    thresholds[dec] = count > 0 ? sum / count
                                : std::numeric_limits<double>::quiet_NaN();
    if (count > 0) {
      std::printf("  %-16s %s  [%s, %s]  (paper: %s)\n",
                  decoders[dec]->name().data(),
                  util::Table::pct(thresholds[dec], 2).c_str(),
                  util::Table::pct(lo_est, 2).c_str(),
                  util::Table::pct(hi_est, 2).c_str(),
                  dec == 0 ? "7.10%" : "7.25%");
    } else {
      std::printf("  %-16s no crossing in range (paper: %s)\n",
                  decoders[dec]->name().data(),
                  dec == 0 ? "7.10%" : "7.25%");
    }
  }
  std::printf(
      "\nPaper shape check: the SurfNet Decoder's logical error rate is "
      "uniformly below Union-Find's at every (d, p) point, and its "
      "threshold estimate should sit at or slightly above Union-Find's "
      "(the two are ~0.15pp apart in the paper; at this trial budget the "
      "crossing estimates overlap within Monte-Carlo spread).\n");
  return 0;
}
