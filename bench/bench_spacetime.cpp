// Extension study: decoding with NOISY syndrome measurements. The paper
// assumes error-free measurements (Sec. I); this bench quantifies what
// changes when each of d measurement rounds can also fail, using the
// standard phenomenological model (data flip rate p per window,
// measurement flip rate q = p per round, d rounds + one perfect round).
//
// Expected shape: the threshold drops from the ~7% code-capacity value to
// the ~3% phenomenological regime; below it, larger codes still win. The
// SurfNet Decoder (weighted growth) and Union-Find baseline track each
// other closely because all edges here share one prior.

#include <iostream>

#include "bench_common.h"
#include "decoder/surfnet_decoder.h"
#include "decoder/trial_runner.h"
#include "decoder/union_find.h"
#include "decoder/spacetime.h"
#include "qec/lattice.h"
#include "util/stats.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace surfnet;

  bench::ArgParser args("spacetime", argc, argv);
  const int trials = args.resolve_trials(1500, 10000);
  std::printf("Extension: noisy-measurement (phenomenological) decoding — "
              "%d trials per point, seed %llu, %d thread(s)\n\n",
              trials, static_cast<unsigned long long>(args.seed()),
              args.threads());

  const std::vector<int> distances{3, 5, 7};
  const std::vector<double> rates{0.01, 0.02, 0.025, 0.03, 0.035, 0.04};

  const decoder::UnionFindDecoder union_find;
  const decoder::SurfNetDecoder surfnet;

  for (const decoder::Decoder* dec :
       {static_cast<const decoder::Decoder*>(&union_find),
        static_cast<const decoder::Decoder*>(&surfnet)}) {
    std::printf("--- %s ---\n", dec->name().data());
    std::vector<std::string> header{"p=q"};
    for (int d : distances) header.push_back("d=" + std::to_string(d));
    util::Table table(header);
    for (const double p : rates) {
      std::vector<std::string> row{util::Table::pct(p, 1)};
      for (const int d : distances) {
        const qec::SurfaceCodeLattice lattice(d);
        const decoder::SpaceTimeGraph z_graph(lattice, qec::GraphKind::Z, d);
        const decoder::SpaceTimeGraph x_graph(lattice, qec::GraphKind::X, d);
        decoder::TrialRunnerOptions opts;
        opts.threads = args.threads();
        opts.sink = args.sink();
        opts.seed = args.seed() + static_cast<std::uint64_t>(d);
        const auto report = decoder::run_trials(
            trials, opts, [&]() -> decoder::TrialFn {
              return [&](std::int64_t, util::Rng& rng) {
                decoder::TrialOutcome outcome;
                outcome.failure = !decoder::spacetime_trial(
                    lattice, z_graph, x_graph, p, p, *dec, rng);
                return outcome;
              };
            });
        row.push_back(util::Table::fmt(report.error_rate(), 4));
      }
      table.add_row(std::move(row));
    }
    table.print(std::cout);
    std::printf("\n");
  }
  std::printf("Expected shape: curves cross near the ~3%% phenomenological "
              "threshold — far below the ~7%% error-free-measurement "
              "threshold of Fig. 8 — quantifying how much the paper's "
              "perfect-measurement assumption is worth.\n");
  return 0;
}
