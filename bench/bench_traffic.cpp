// Dynamic-traffic throughput: open-loop arrival/departure streams driving
// the incremental warm-started router (netsim/workload.h +
// routing/incremental.h), swept over arrival rate x network size, plus a
// sustained-load cell that pushes one million requests through a single
// stream. Every traffic row reports steady-state metrics (blocking
// probability, p50/p99 delivery latency, admitted codes per slot) next to
// the engine throughput in simulated requests per wall-clock second.
//
// The second section isolates the warm-start claim: for each delta size
// (requests per incremental re-solve) it solves the identical routing LP
// cold (fresh basis every call) and warm (basis carried across calls, the
// incremental router's steady state) and asserts the warm solve needs
// strictly fewer simplex iterations at EVERY delta size — the bench
// exits nonzero otherwise, and CI gates the committed Release baseline
// (bench/baselines/traffic_release.json) with scripts/check_overhead.py
// on the shared requests_per_sec metric.
//
// All rows are single-stream by construction (an open-loop stream is one
// causal chain); --trials scales the warm/cold timing repetitions, and
// --engine slot|event picks the workload engine (bitwise-identical
// results; event is the default).

#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/surfnet.h"
#include "netsim/schedule.h"
#include "netsim/topology.h"
#include "netsim/workload.h"
#include "routing/router.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

using namespace surfnet;

double ms_since(std::chrono::steady_clock::time_point begin) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - begin)
             .count() /
         1e6;
}

// ---------------------------------------------------------------------------
// Traffic sweep.

struct TrafficCell {
  std::string name;
  int nodes = 24;
  double rate = 0.5;          ///< arrivals per slot
  long long requests = 20000;  ///< stream length (max_requests)
  int max_active_codes = 0;    ///< admission cap (0 = unlimited)
};

std::vector<TrafficCell> traffic_cells() {
  std::vector<TrafficCell> cells;
  for (const int nodes : {24, 48})
    for (const double rate : {0.5, 2.0}) {
      TrafficCell cell;
      cell.name = "rate" + std::string(rate < 1.0 ? "0.5" : "2.0") + "_n" +
                  std::to_string(nodes);
      cell.nodes = nodes;
      cell.rate = rate;
      cells.push_back(std::move(cell));
    }
  // The sustained-load headline: one million requests through one stream,
  // overload shed by a realistic admission cap (the load gate is O(1), so
  // the stream's cost tracks admissions, not offered load).
  TrafficCell big;
  big.name = "sustained_1m";
  big.nodes = 24;
  big.rate = 4.0;
  big.requests = 1000000;
  big.max_active_codes = 60;
  cells.push_back(std::move(big));
  return cells;
}

struct TrafficRow {
  TrafficCell cell;
  netsim::TrafficResult result;
  double wall_ms = 0.0;
  double requests_per_sec = 0.0;
};

TrafficRow run_cell(const TrafficCell& cell, std::uint64_t seed,
                    core::SimEngine engine, const obs::Sink& sink) {
  core::TrafficScenario scenario = core::make_traffic_scenario(
      core::FacilityLevel::Sufficient, core::ConnectionQuality::Good);
  scenario.topology.num_nodes = cell.nodes;
  scenario.workload.arrival_rate = cell.rate;
  scenario.workload.max_requests = cell.requests;
  // The stream is request-bounded; the horizon only needs to be beyond
  // the expected stream length with heavy margin.
  scenario.workload.horizon_slots =
      static_cast<int>(cell.requests / cell.rate) * 4 + 100000;
  scenario.workload.warmup_slots = 500;
  scenario.workload.admission.max_active_codes = cell.max_active_codes;
  // The capped cell measures raw stream throughput; periodic LP headroom
  // probes belong to the shedding policy it does not use.
  if (cell.max_active_codes > 0) scenario.workload.reoptimize_every = 0;

  TrafficRow row;
  row.cell = cell;
  const auto begin = std::chrono::steady_clock::now();
  row.result = core::run_traffic_trial(scenario, seed, sink, engine);
  row.wall_ms = ms_since(begin);
  if (row.wall_ms > 0.0)
    row.requests_per_sec =
        static_cast<double>(row.result.arrivals) / (row.wall_ms / 1e3);
  return row;
}

// ---------------------------------------------------------------------------
// Warm-started vs cold incremental re-solve.

struct WarmRow {
  int delta = 1;  ///< requests per re-solve
  long cold_iterations = 0;
  long warm_iterations = 0;
  double cold_ms = 0.0;  ///< per solve
  double warm_ms = 0.0;  ///< per solve
  double requests_per_sec = 0.0;  ///< warm-path requests routed per second
};

/// One incremental step at delta size d: toggle one request's admitted
/// limit (the shape-stable bound mutation the incremental router issues
/// per delta) and re-solve the d-commodity formulation. The cold pass
/// solves every step from a fresh basis, the warm pass carries the basis
/// across steps — both see the identical mutation sequence.
WarmRow run_delta(int delta, std::uint64_t seed, int reps) {
  util::Rng setup(seed);
  netsim::TopologySpec spec;
  spec.storage_capacity = 120;
  spec.entanglement_capacity = 40;
  const auto topology = netsim::make_random_topology(spec, setup);
  const auto requests = netsim::random_requests(topology, delta, 1, setup);
  const routing::RoutingParams params;

  WarmRow row;
  row.delta = delta;

  const auto mutate = [&](routing::RoutingFormulation& f, int step) {
    f.set_request_limit(step % delta, step % 2 == 0 ? 0.0 : 1.0);
  };

  // Cold: every re-solve starts from scratch, the pre-incremental cost
  // of a delta-sized re-route.
  {
    routing::RoutingFormulation formulation(topology, requests, params);
    const auto begin = std::chrono::steady_clock::now();
    for (int step = 0; step < reps; ++step) {
      mutate(formulation, step);
      routing::SimplexState fresh;
      const auto solution =
          routing::solve_lp(formulation.problem(), fresh, {});
      row.cold_iterations += solution.iterations;
    }
    row.cold_ms = ms_since(begin) / reps;
  }

  // Warm: the basis carries across re-solves — the incremental router's
  // steady state for a shape-stable commodity set.
  {
    routing::RoutingFormulation formulation(topology, requests, params);
    routing::SimplexState state;
    routing::solve_lp(formulation.problem(), state, {});  // prime
    const auto begin = std::chrono::steady_clock::now();
    for (int step = 0; step < reps; ++step) {
      mutate(formulation, step);
      const auto solution =
          routing::solve_lp(formulation.problem(), state, {});
      row.warm_iterations += solution.iterations;
    }
    row.warm_ms = ms_since(begin) / reps;
  }

  if (row.warm_ms > 0.0)
    row.requests_per_sec = delta / (row.warm_ms / 1e3);
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  bench::ArgParser args("traffic", argc, argv);
  const int reps = args.resolve_trials(5, 20);
  const auto engine = args.selected_engine();

  if (!args.json())
    std::printf("Dynamic-traffic engine: open-loop streams over the "
                "incremental router, seed %llu\n\n",
                static_cast<unsigned long long>(args.seed()));

  // --metrics-out/--trace-out attach a live sink; note a trace sink
  // records every arrival/admit/blocked/depart, so prefer small
  // --trials runs when tracing the sustained cell.
  std::vector<TrafficRow> traffic;
  for (const auto& cell : traffic_cells())
    traffic.push_back(run_cell(cell, args.seed(), engine, args.sink()));

  std::vector<WarmRow> warm;
  for (const int delta : {1, 2, 4, 8, 16, 32})
    warm.push_back(run_delta(delta, args.seed(), reps));

  // Acceptance assertions — the bench is its own gate.
  bool failed = false;
  const auto& big = traffic.back();
  if (big.result.arrivals < 1000000) {
    std::fprintf(stderr,
                 "FATAL: sustained cell processed %lld requests "
                 "(needs >= 1000000)\n",
                 big.result.arrivals);
    failed = true;
  }
  for (const auto& row : warm) {
    if (row.warm_iterations >= row.cold_iterations) {
      std::fprintf(stderr,
                   "FATAL: delta=%d warm solve took %ld iterations, cold "
                   "%ld — warm start must strictly beat cold at every "
                   "delta size\n",
                   row.delta, row.warm_iterations, row.cold_iterations);
      failed = true;
    }
  }
  if (failed) return 1;

  args.finish_observability();
  if (args.json()) {
    std::vector<std::string> records;
    for (const auto& r : traffic) {
      char record[512];
      std::snprintf(
          record, sizeof(record),
          "{\"cell\": \"%s\", \"nodes\": %d, \"arrival_rate\": %.2f, "
          "\"requests\": %lld, \"admitted\": %lld, \"blocked\": %lld, "
          "\"blocking_probability\": %.4f, \"p50_latency\": %.1f, "
          "\"p99_latency\": %.1f, \"admitted_per_slot\": %.4f, "
          "\"wall_ms\": %.1f, \"requests_per_sec\": %.1f}",
          r.cell.name.c_str(), r.cell.nodes, r.cell.rate, r.result.arrivals,
          r.result.admitted, r.result.blocked,
          r.result.blocking_probability(), r.result.latency_percentile(0.5),
          r.result.latency_percentile(0.99), r.result.admitted_per_slot(),
          r.wall_ms, r.requests_per_sec);
      records.emplace_back(record);
    }
    for (const auto& r : warm) {
      char record[384];
      std::snprintf(
          record, sizeof(record),
          "{\"cell\": \"delta_%d\", \"delta\": %d, "
          "\"cold_iterations\": %ld, \"warm_iterations\": %ld, "
          "\"cold_ms\": %.3f, \"warm_ms\": %.3f, "
          "\"iteration_ratio\": %.2f, \"requests_per_sec\": %.1f}",
          r.delta, r.delta, r.cold_iterations, r.warm_iterations, r.cold_ms,
          r.warm_ms,
          r.warm_iterations > 0 ? static_cast<double>(r.cold_iterations) /
                                      static_cast<double>(r.warm_iterations)
                                : static_cast<double>(r.cold_iterations),
          r.requests_per_sec);
      records.emplace_back(record);
    }
    args.print_json_envelope(records);
    return 0;
  }

  util::Table sweep({"cell", "nodes", "rate", "requests", "blocked %",
                     "p50", "p99", "adm/slot", "wall ms", "req/s"});
  for (const auto& r : traffic)
    sweep.add_row({r.cell.name, std::to_string(r.cell.nodes),
                   util::Table::fmt(r.cell.rate, 1),
                   std::to_string(r.result.arrivals),
                   util::Table::fmt(100.0 * r.result.blocking_probability(),
                                    1),
                   util::Table::fmt(r.result.latency_percentile(0.5), 0),
                   util::Table::fmt(r.result.latency_percentile(0.99), 0),
                   util::Table::fmt(r.result.admitted_per_slot(), 2),
                   util::Table::fmt(r.wall_ms, 0),
                   util::Table::fmt(r.requests_per_sec, 0)});
  sweep.print(std::cout);

  std::printf("\nWarm-started vs cold incremental re-solve (%d reps):\n",
              reps);
  util::Table resolve({"delta", "cold iters", "warm iters", "cold ms",
                       "warm ms", "iter ratio"});
  for (const auto& r : warm)
    resolve.add_row(
        {std::to_string(r.delta), std::to_string(r.cold_iterations),
         std::to_string(r.warm_iterations), util::Table::fmt(r.cold_ms, 3),
         util::Table::fmt(r.warm_ms, 3),
         util::Table::fmt(r.warm_iterations > 0
                              ? static_cast<double>(r.cold_iterations) /
                                    static_cast<double>(r.warm_iterations)
                              : static_cast<double>(r.cold_iterations),
                          1)});
  resolve.print(std::cout);
  std::printf("\nWarm start strictly beats cold at every delta size "
              "(asserted above); the sustained cell pushed %lld requests "
              "through one stream.\n",
              big.result.arrivals);
  return 0;
}
