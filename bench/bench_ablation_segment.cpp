// Ablation: the opportunistic-movement segment length (paper Sec. V-B:
// "Based on simulation experiments, we fix the minimum distance for the
// movement to be two consecutive optical fibers"). This bench reproduces
// that design study: SurfNet on the sufficient/good scenario with the
// segment length swept from 1 (teleport every hop) to 4.
//
// Expected shape: segment 1 teleports at every fiber and pays the most
// operation noise (lower fidelity); very long segments wait for pairs on
// many fibers at once (higher latency); 2 balances the two — the paper's
// choice.

#include <iostream>

#include "bench_common.h"
#include "core/surfnet.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace surfnet;

  bench::ArgParser args("ablation_segment", argc, argv);
  const int trials = args.resolve_trials(150, 1080);
  std::printf("Ablation: opportunistic segment length — %d trials per "
              "point, seed %llu\n\n",
              trials, static_cast<unsigned long long>(args.seed()));

  core::RunOptions options;
  options.seed = args.seed();
  options.threads = args.threads();
  options.sink = args.sink();

  util::Table table({"segment", "fidelity", "latency", "throughput"});
  for (const int segment : {1, 2, 3, 4}) {
    auto params = core::make_scenario(core::FacilityLevel::Sufficient,
                                      core::ConnectionQuality::Good);
    params.simulation.opportunistic_segment = segment;
    // Pairs must be scarce for the segment length to matter: a long
    // segment has to find pairs on all of its fibers at the same time.
    params.simulation.entanglement_rate = 0.4;
    params.simulation.swap_success = 0.85;
    const auto agg = core::run_trials(params, core::NetworkDesign::SurfNet,
                                      trials, options);
    table.add_row({std::to_string(segment),
                   util::Table::fmt(agg.fidelity.mean(), 3),
                   util::Table::fmt(agg.latency.mean(), 1),
                   util::Table::fmt(agg.throughput.mean(), 3)});
  }
  table.print(std::cout);
  std::printf("\nExpected shape: one-fiber segments teleport most often "
              "(most operation noise); long segments stall waiting for "
              "pairs on every fiber at once; two fibers — the paper's "
              "fixed choice — balances fidelity and latency.\n");
  return 0;
}
