// Decoder runtime scaling (paper Sec. IV-C, Theorem 2 / Corollary 1.1):
// per-decode latency and throughput of the three decoders across code
// distances, on the paper's network noise (pauli 6%, erasure 15%, Core
// rates halved). Expected shape: near-linear scaling for Union-Find and
// the SurfNet Decoder (O(n alpha(n)) growth plus peeling), polynomially
// steeper growth for MWPM (Dijkstra all-pairs + O(n^3) blossom).
//
// Decodes run through the parallel trial runner with per-thread reusable
// workspaces, so the cluster decoders are measured on their allocation-free
// steady-state path. --json emits one record per (decoder, distance) in
// the shared bench envelope — the record schema is stable across commits:
//   {"decoder", "distance", "qubits", "trials", "threads",
//    "trials_per_sec", "ns_per_decode"}
// so saved outputs can be diffed/ratioed to track the perf trajectory
// (scripts/bench_compare.py).
//
// A second tier measures the pure-erasure decoders — peeling ("Erasure")
// and the linear-time exact-ML "ErasureML" — on erasure-only syndromes
// (25% erasure, no Pauli noise), where both are defined at any distance.
// Expected shape: ErasureML tracks peeling within a small constant factor
// (same forest construction plus the cut-parity labelling and the
// degeneracy scan), both near-linear in qubit count.

#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "decoder/code_trial.h"
#include "decoder/erasure_decoder.h"
#include "decoder/erasure_ml.h"
#include "decoder/mwpm.h"
#include "decoder/surfnet_decoder.h"
#include "decoder/trial_runner.h"
#include "decoder/union_find.h"
#include "qec/core_support.h"
#include "qec/error_model.h"
#include "qec/lattice.h"
#include "util/table.h"

namespace {

using namespace surfnet;

/// Keep the compiler from discarding a decode result.
inline void escape(const void* p) { asm volatile("" : : "g"(p) : "memory"); }

/// A pool of pregenerated decode inputs for one distance, cycled through by
/// every worker so the measurement covers varied syndromes, not one cached
/// instance.
std::vector<decoder::DecodeInput> make_inputs(
    const qec::SurfaceCodeLattice& lattice, int count, std::uint64_t seed) {
  const auto partition = qec::make_core_support(lattice);
  const auto profile = qec::NoiseProfile::core_support(partition, 0.06, 0.15);
  const auto prior =
      profile.component_error_prob(qec::PauliChannel::IndependentXZ);
  util::Rng rng(seed);
  std::vector<decoder::DecodeInput> inputs;
  inputs.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    const auto sample =
        qec::sample_errors(profile, qec::PauliChannel::IndependentXZ, rng);
    inputs.push_back(decoder::make_decode_input(lattice, qec::GraphKind::Z,
                                                sample, prior));
  }
  return inputs;
}

/// Input pool for the pure-erasure tier. Both erasure decoders require the
/// syndrome to be explainable by the erased region alone (they throw on
/// residual Pauli defects), so this pool carries zero Pauli noise.
std::vector<decoder::DecodeInput> make_erasure_inputs(
    const qec::SurfaceCodeLattice& lattice, int count, std::uint64_t seed) {
  const auto profile =
      qec::NoiseProfile::uniform(lattice.num_data_qubits(), 0.0, 0.25);
  const auto prior =
      profile.component_error_prob(qec::PauliChannel::IndependentXZ);
  util::Rng rng(seed);
  std::vector<decoder::DecodeInput> inputs;
  inputs.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    const auto sample =
        qec::sample_errors(profile, qec::PauliChannel::IndependentXZ, rng);
    inputs.push_back(decoder::make_decode_input(lattice, qec::GraphKind::Z,
                                                sample, prior));
  }
  return inputs;
}

struct SpeedRow {
  std::string decoder;
  int distance = 0;
  int qubits = 0;
  std::int64_t trials = 0;
  int threads = 1;
  double trials_per_sec = 0.0;
  double ns_per_decode = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  bench::ArgParser args("decoder_speed", argc, argv);
  const int trials = args.resolve_trials(2000, 20000);
  if (!args.json())
    std::printf("Decoder speed — %d decodes per point, seed %llu, "
                "%d thread(s)\n\n",
                trials, static_cast<unsigned long long>(args.seed()),
                args.threads());

  const decoder::UnionFindDecoder union_find;
  const decoder::SurfNetDecoder surfnet;
  const decoder::MwpmDecoder mwpm;
  struct Case {
    const decoder::Decoder* decoder;
    std::vector<int> distances;
  };
  // MWPM's O(n^3) blossom makes d > 21 impractical at this trial budget.
  const std::vector<Case> cases{
      {&union_find, {5, 9, 13, 17, 21, 25}},
      {&surfnet, {5, 9, 13, 17, 21, 25}},
      {&mwpm, {5, 9, 13, 17, 21}},
  };

  std::vector<SpeedRow> rows;
  const auto measure = [&](const decoder::Decoder& dec, int d,
                           const qec::SurfaceCodeLattice& lattice,
                           const std::vector<decoder::DecodeInput>& inputs) {
    decoder::TrialRunnerOptions opts;
    opts.threads = args.threads();
    opts.sink = args.sink();
    opts.seed = args.seed();
    const auto report = decoder::run_trials(
        trials, opts, [&]() -> decoder::TrialFn {
          auto ws = std::make_shared<decoder::DecodeWorkspace>();
          return [&, ws](std::int64_t t, util::Rng&) {
            const auto& correction = dec.decode(
                inputs[static_cast<std::size_t>(t) % inputs.size()], *ws);
            escape(correction.data());
            return decoder::TrialOutcome{};
          };
        });
    SpeedRow row;
    row.decoder = std::string(dec.name());
    row.distance = d;
    row.qubits = lattice.num_data_qubits();
    row.trials = report.trials;
    row.threads = report.threads;
    row.trials_per_sec = report.trials_per_sec();
    row.ns_per_decode = report.ns_per_trial();
    rows.push_back(row);
  };

  for (const auto& c : cases) {
    for (const int d : c.distances) {
      const qec::SurfaceCodeLattice lattice(d);
      const auto inputs = make_inputs(lattice, 64, args.seed());
      measure(*c.decoder, d, lattice, inputs);
    }
  }

  // Pure-erasure tier. ErasureML is constructed per distance (it borrows
  // the lattice for graph resolution and logical cuts); peeling shares the
  // same erasure-only input pool so the two rows are directly comparable.
  const decoder::ErasureDecoder peeling;
  for (const int d : {5, 9, 13, 17, 21, 25}) {
    const qec::SurfaceCodeLattice lattice(d);
    const decoder::ErasureMlDecoder erasure_ml(lattice);
    const auto inputs = make_erasure_inputs(lattice, 64, args.seed());
    measure(peeling, d, lattice, inputs);
    measure(erasure_ml, d, lattice, inputs);
  }

  args.finish_observability();
  if (args.json()) {
    std::vector<std::string> records;
    records.reserve(rows.size());
    for (const auto& r : rows) {
      char record[256];
      std::snprintf(record, sizeof(record),
                    "{\"decoder\": \"%s\", \"distance\": %d, \"qubits\": %d, "
                    "\"trials\": %lld, \"threads\": %d, "
                    "\"trials_per_sec\": %.1f, \"ns_per_decode\": %.1f}",
                    r.decoder.c_str(), r.distance, r.qubits,
                    static_cast<long long>(r.trials), r.threads,
                    r.trials_per_sec, r.ns_per_decode);
      records.emplace_back(record);
    }
    args.print_json_envelope(records);
    return 0;
  }

  util::Table table({"decoder", "d", "qubits", "trials/sec", "ns/decode"});
  for (const auto& r : rows)
    table.add_row({r.decoder, std::to_string(r.distance),
                   std::to_string(r.qubits),
                   util::Table::fmt(r.trials_per_sec, 0),
                   util::Table::fmt(r.ns_per_decode, 0)});
  table.print(std::cout);
  std::printf("\nExpected shape: near-linear ns/decode growth in qubit "
              "count for the cluster decoders, polynomially steeper for "
              "MWPM; ErasureML within a small constant factor of Erasure "
              "(peeling) on the erasure-only tier.\n");
  return 0;
}
