// Decoder runtime scaling (paper Sec. IV-C, Theorem 2 / Corollary 1.1):
// google-benchmark microbenchmarks of the three decoders across code
// distances. Expected shape: near-linear scaling for Union-Find and the
// SurfNet Decoder (O(n alpha(n)) growth plus peeling), polynomially
// steeper growth for MWPM (Dijkstra all-pairs + O(n^3) blossom).

#include <benchmark/benchmark.h>

#include <map>

#include "decoder/code_trial.h"
#include "decoder/mwpm.h"
#include "decoder/surfnet_decoder.h"
#include "decoder/union_find.h"
#include "qec/core_support.h"
#include "qec/syndrome.h"
#include "util/rng.h"

namespace {

using namespace surfnet;

// The lattice must outlive the inputs (they hold graph pointers), so keep
// one per distance alive for the whole run.
const qec::SurfaceCodeLattice& lattice_for(int distance) {
  static std::map<int, qec::SurfaceCodeLattice> cache;
  auto it = cache.find(distance);
  if (it == cache.end())
    it = cache.emplace(distance, qec::SurfaceCodeLattice(distance)).first;
  return it->second;
}

std::vector<decoder::DecodeInput> make_inputs_cached(int distance,
                                                     int count,
                                                     std::uint64_t seed) {
  const auto& lattice = lattice_for(distance);
  const auto partition = qec::make_core_support(lattice);
  const auto profile =
      qec::NoiseProfile::core_support(partition, 0.06, 0.15);
  const auto prior =
      profile.component_error_prob(qec::PauliChannel::IndependentXZ);
  util::Rng rng(seed);
  std::vector<decoder::DecodeInput> inputs;
  inputs.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    const auto sample =
        qec::sample_errors(profile, qec::PauliChannel::IndependentXZ, rng);
    inputs.push_back(decoder::make_decode_input(lattice, qec::GraphKind::Z,
                                                sample, prior));
  }
  return inputs;
}

template <typename DecoderT>
void bench_decoder(benchmark::State& state) {
  const int distance = static_cast<int>(state.range(0));
  const DecoderT decoder;
  const auto inputs = make_inputs_cached(distance, 64, 42);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(decoder.decode(inputs[i]));
    i = (i + 1) % inputs.size();
  }
  state.counters["qubits"] = static_cast<double>(
      lattice_for(distance).num_data_qubits());
}

}  // namespace

BENCHMARK_TEMPLATE(bench_decoder, decoder::UnionFindDecoder)
    ->Name("UnionFind")
    ->Arg(5)
    ->Arg(9)
    ->Arg(13)
    ->Arg(17)
    ->Arg(21)
    ->Arg(25);
BENCHMARK_TEMPLATE(bench_decoder, decoder::SurfNetDecoder)
    ->Name("SurfNetDecoder")
    ->Arg(5)
    ->Arg(9)
    ->Arg(13)
    ->Arg(17)
    ->Arg(21)
    ->Arg(25);
BENCHMARK_TEMPLATE(bench_decoder, decoder::MwpmDecoder)
    ->Name("MWPM")
    ->Arg(5)
    ->Arg(9)
    ->Arg(13)
    ->Arg(17)
    ->Arg(21);

BENCHMARK_MAIN();
