#!/usr/bin/env python3
"""Project-specific lint rules the compiler cannot enforce.

Rules (scoped per tree; see RULES below):

  wallclock-seeding   No std::rand / srand / std::random_device /
                      system_clock / time(...) anywhere outside
                      bench/bench_common.h (the ArgParser owns the only
                      wall-clock entropy escape hatch, and nothing uses it
                      today). Monotonic timing (steady_clock) is fine;
                      nondeterministic *seeding* is what breaks the
                      bitwise-reproducibility contract of the trial runner
                      and the traced simulator.

  stdio-in-src        No std::cout / std::cerr / <iostream> / printf /
                      puts in src/: library code reports through the obs
                      layer (metrics + trace sinks), never directly to the
                      process streams. snprintf into buffers and fprintf
                      to explicit FILE* handles are fine.

  header-hygiene      Every header starts with #pragma once as its first
                      non-comment line, and no #ifndef-style include
                      guards (the pragma is the project idiom).

  event-core-purity   The event engine (src/netsim/event*) and the
                      traffic engine built on it (src/netsim/workload*)
                      admit no wall-clock of any kind — not even the
                      monotonic steady_clock allowed elsewhere — and no
                      std::unordered_* containers at all (not just
                      iteration). Virtual time must come only from the
                      event queue and handler order must be fully
                      deterministic; both leaks would silently break the
                      bitwise slot-engine equivalence the differential
                      tests pin down.

The unordered-iteration rule that used to live here moved to the C++
analyzer (`surfnet-analyze`, rule `unordered-state`), which sees real
declarations instead of regex guesses; this script keeps only the rules
that are cheap line patterns.

Suppression: a line containing `lint: allow(<rule>)` in a comment
suppresses that rule for the whole file (use sparingly, state why).

Usage:
  scripts/lint_surfnet.py                 # lint the default trees
  scripts/lint_surfnet.py FILE...         # lint specific files
  scripts/lint_surfnet.py --changed BASE  # lint files changed since BASE

Exits nonzero when any finding is reported.
"""

import argparse
import re
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
DEFAULT_TREES = ("src", "bench", "tests", "examples")
CXX_SUFFIXES = {".h", ".hpp", ".cpp", ".cc"}

WALLCLOCK_PATTERNS = [
    (re.compile(r"\bstd::rand\b"), "std::rand"),
    (re.compile(r"\bsrand\s*\("), "srand"),
    (re.compile(r"\brandom_device\b"), "std::random_device"),
    (re.compile(r"\bsystem_clock\b"), "system_clock"),
    (re.compile(r"\bstd::time\s*\("), "std::time"),
    (re.compile(r"(?<![\w:])time\s*\(\s*(?:NULL|nullptr|0)?\s*\)"), "time()"),
    (re.compile(r"\bgettimeofday\b"), "gettimeofday"),
]

STDIO_PATTERNS = [
    (re.compile(r"\bstd::cout\b"), "std::cout"),
    (re.compile(r"\bstd::cerr\b"), "std::cerr"),
    (re.compile(r"#\s*include\s*<iostream>"), "<iostream>"),
    (re.compile(r"(?<![\w:])printf\s*\("), "printf"),
    (re.compile(r"\bfprintf\s*\(\s*stdout\b"), "fprintf(stdout)"),
    (re.compile(r"(?<![\w:])puts\s*\("), "puts"),
]

EVENT_CORE_PATTERNS = [
    (re.compile(r"#\s*include\s*<chrono>|\bstd::chrono\b"), "std::chrono"),
    (re.compile(r"\b(?:steady|system|high_resolution)_clock\b"),
     "wall clock"),
    (re.compile(r"(?<![\w:])clock\s*\("), "clock()"),
    (re.compile(r"(?<![\w:])time\s*\("), "time()"),
    (re.compile(r"\bunordered_(?:map|set|multimap|multiset)\b"),
     "std::unordered_* container"),
]

ALLOW = re.compile(r"lint:\s*allow\(([\w-]+)\)")


def strip_strings(text):
    """Blank out comments and literal contents so patterns never match there.

    Takes the whole file text (not a single line): block comments and raw
    strings span lines, and an unterminated ordinary literal must not leak
    quote state into the next line. Newlines are preserved so line numbers
    survive; blanked characters become spaces so columns do too. The
    delimiters themselves (quotes, raw-string intro/close) are kept.
    Encoding-prefixed raw strings (u8R"...", LR"...") are not recognized;
    the tree does not use them.
    """
    out = []
    i, n = 0, len(text)
    blank = lambda c: "\n" if c == "\n" else " "
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if ch == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                out.append(" ")
                i += 1
            continue
        if ch == "/" and nxt == "*":
            out.append("  ")
            i += 2
            while i + 1 < n and not (text[i] == "*" and text[i + 1] == "/"):
                out.append(blank(text[i]))
                i += 1
            if i + 1 < n:
                out.append("  ")
                i += 2
            else:  # unterminated block comment: blank to EOF
                while i < n:
                    out.append(blank(text[i]))
                    i += 1
            continue
        if (ch == "R" and nxt == '"'
                and (i == 0 or not (text[i - 1].isalnum()
                                    or text[i - 1] == "_"))):
            j = i + 2
            while j < n and text[j] not in '()\\"\t\n ':
                j += 1
            if j < n and text[j] == "(":
                delim = text[i + 2:j]
                close = ")" + delim + '"'
                out.append('R"' + delim + "(")
                end = text.find(close, j + 1)
                stop = n if end < 0 else end
                for k in range(j + 1, stop):
                    out.append(blank(text[k]))
                if end < 0:
                    i = n
                else:
                    out.append(close)
                    i = end + len(close)
                continue
            # malformed raw-string intro: fall through, 'R' is an identifier
        if ch == "'" and i > 0 and text[i - 1].isalnum() and nxt.isalnum():
            out.append(ch)  # digit separator (1'000'000), not a char literal
            i += 1
            continue
        if ch in "\"'":
            out.append(ch)
            i += 1
            while i < n:
                c = text[i]
                if c == "\\" and i + 1 < n:
                    out.append("  ")
                    i += 2
                    continue
                if c == ch:
                    out.append(c)
                    i += 1
                    break
                if c == "\n":  # unterminated: state must not cross lines
                    out.append("\n")
                    i += 1
                    break
                out.append(" ")
                i += 1
            continue
        out.append(ch)
        i += 1
    return "".join(out)


class FileLinter:
    def __init__(self, path, repo_rel):
        self.path = path
        self.rel = repo_rel
        self.text = path.read_text(encoding="utf-8", errors="replace")
        self.allowed = set(ALLOW.findall(self.text))
        self.findings = []

    def report(self, rule, line_no, message):
        if rule in self.allowed:
            return
        self.findings.append(f"{self.rel}:{line_no}: [{rule}] {message}")

    def code_lines(self):
        """(line_no, code) with comments and string literals blanked."""
        for no, line in enumerate(strip_strings(self.text).splitlines(), 1):
            if line.strip():
                yield no, line

    def lint_wallclock(self):
        if self.rel.as_posix() == "bench/bench_common.h":
            return  # the ArgParser owns the only wall-clock escape hatch
        for no, line in self.code_lines():
            for pattern, name in WALLCLOCK_PATTERNS:
                if pattern.search(line):
                    self.report(
                        "wallclock-seeding", no,
                        f"{name} breaks deterministic seeding; derive "
                        "randomness from an explicit seed (util/rng.h)")

    def lint_stdio(self):
        if self.rel.parts[0] != "src":
            return
        for no, line in self.code_lines():
            for pattern, name in STDIO_PATTERNS:
                if pattern.search(line):
                    self.report(
                        "stdio-in-src", no,
                        f"{name} in library code; report through the obs "
                        "layer (src/obs) instead")

    def lint_event_core(self):
        rel = self.rel.as_posix()
        if not (rel.startswith("src/netsim/event")
                or rel.startswith("src/netsim/workload")):
            return
        for no, line in self.code_lines():
            for pattern, name in EVENT_CORE_PATTERNS:
                if pattern.search(line):
                    self.report(
                        "event-core-purity", no,
                        f"{name} in the event engine; virtual time comes "
                        "from the event queue only and handler state must "
                        "iterate deterministically (vectors/sorted), or "
                        "the slot-engine bitwise equivalence breaks")

    def lint_header(self):
        if self.path.suffix not in (".h", ".hpp"):
            return
        first = None
        for no, line in self.code_lines():
            first = (no, line.strip())
            break
        if first is None or first[1] != "#pragma once":
            self.report("header-hygiene", first[0] if first else 1,
                        "first non-comment line must be '#pragma once'")
        for no, line in self.code_lines():
            if re.match(r"#\s*ifndef\s+\w+_H\b", line.strip()):
                self.report("header-hygiene", no,
                            "#ifndef include guard; use #pragma once")

    def run(self):
        self.lint_wallclock()
        self.lint_stdio()
        self.lint_event_core()
        self.lint_header()
        return self.findings


def gather_files(args):
    if args.files:
        return [Path(f).resolve() for f in args.files]
    if args.changed:
        out = subprocess.run(
            ["git", "diff", "--name-only", "--diff-filter=d", args.changed],
            cwd=REPO, capture_output=True, text=True, check=True).stdout
        return [REPO / f for f in out.splitlines()
                if f.split("/")[0] in DEFAULT_TREES]
    files = []
    for tree in DEFAULT_TREES:
        files.extend(sorted((REPO / tree).rglob("*")))
    return files


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="*", help="files to lint")
    parser.add_argument("--changed", metavar="BASE",
                        help="lint files changed since this git ref")
    args = parser.parse_args()

    findings = []
    checked = 0
    for path in gather_files(args):
        if path.suffix not in CXX_SUFFIXES or not path.is_file():
            continue
        checked += 1
        findings.extend(FileLinter(path, path.relative_to(REPO)).run())

    for finding in findings:
        print(finding)
    print(f"lint_surfnet: {checked} files, {len(findings)} finding(s)",
          file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
