#!/usr/bin/env python3
"""Gate the zero-overhead-when-disabled guarantee of the contract layer.

Compares a bench_decoder_speed --json run against a baseline (by default
the committed seed baseline from a Release build with SURFNET_CHECKS=OFF)
and fails if any (decoder, distance) row's throughput dropped by more than
the tolerance. Rows are matched by (decoder, distance, threads); rows
missing from either side fail the check, so the bench cannot silently
shrink its coverage.

Passing several candidate files compares the per-row BEST across them:
shared machines show large bimodal run-to-run swings (frequency scaling,
noisy neighbors), and the best of a few runs is the stable estimator of
what the binary can do. Tolerance guidance: best-of-3 on the machine that
produced the baseline, 10% covers residual noise; across CI runner
generations use something much looser (the CI job passes 50% — it exists
to catch "contracts accidentally compiled into Release", a >2x cliff on
the hot decode loop, not single-digit regressions).

Usage:
  scripts/check_overhead.py RUN.json [RUN2.json ...] [--baseline FILE]
                            [--tolerance F]
"""

import argparse
import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = REPO / "bench" / "baselines" / "decoder_speed_release.json"


def rows_by_key(report):
    rows = {}
    for row in report["results"]:
        rows[(row["decoder"], row["distance"], row["threads"])] = row
    return rows


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("candidates", nargs="+", metavar="RUN.json",
                        help="bench_decoder_speed --json outputs; several "
                             "runs are merged row-wise by best throughput")
    parser.add_argument("--baseline", default=str(DEFAULT_BASELINE))
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="allowed fractional throughput drop (0.10=10%%)")
    args = parser.parse_args()

    baseline = rows_by_key(json.loads(Path(args.baseline).read_text()))
    candidate = {}
    for path in args.candidates:
        for key, row in rows_by_key(json.loads(Path(path).read_text())).items():
            if (key not in candidate or
                    row["trials_per_sec"] > candidate[key]["trials_per_sec"]):
                candidate[key] = row

    failures = []
    if set(baseline) != set(candidate):
        failures.append(f"row sets differ: baseline-only "
                        f"{sorted(set(baseline) - set(candidate))}, "
                        f"candidate-only {sorted(set(candidate) - set(baseline))}")
    worst = 0.0
    for key in sorted(set(baseline) & set(candidate)):
        base = baseline[key]["trials_per_sec"]
        cand = candidate[key]["trials_per_sec"]
        drop = (base - cand) / base
        worst = max(worst, drop)
        status = "FAIL" if drop > args.tolerance else "ok"
        print(f"{status}  {key[0]:>16} d={key[1]:<3} threads={key[2]:<3} "
              f"{base:>12.1f} -> {cand:>12.1f} trials/s ({drop:+.1%})")
        if drop > args.tolerance:
            failures.append(f"{key}: throughput dropped {drop:.1%} "
                            f"(tolerance {args.tolerance:.0%})")

    print(f"check_overhead: worst drop {worst:+.1%}, "
          f"tolerance {args.tolerance:.0%}", file=sys.stderr)
    for failure in failures:
        print(f"error: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
