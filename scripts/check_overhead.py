#!/usr/bin/env python3
"""Gate a bench --json run against a committed per-row baseline.

Compares one or more bench --json runs against a baseline and fails if any
row's metric dropped by more than the tolerance. The defaults gate the
contract layer's zero-overhead-when-disabled guarantee: bench_decoder_speed
rows matched by (decoder, distance, threads) on trials_per_sec against the
committed Release/SURFNET_CHECKS=OFF baseline. --key and --metric retarget
the same machinery at any bench with the shared envelope — e.g. the event
engine's speedup baseline:

  scripts/check_overhead.py event.json \\
      --baseline bench/baselines/event_core_release.json \\
      --key scenario,grid --metric speedup --tolerance 0.6

The metric must be higher-is-better. Rows missing from either side fail
the check, so a bench cannot silently shrink its coverage.

Passing several candidate files compares the per-row BEST across them:
shared machines show large bimodal run-to-run swings (frequency scaling,
noisy neighbors), and the best of a few runs is the stable estimator of
what the binary can do. Tolerance guidance: best-of-3 on the machine that
produced the baseline, 10% covers residual noise; across CI runner
generations use something much looser (the CI job passes 50% — it exists
to catch "contracts accidentally compiled into Release", a >2x cliff on
the hot decode loop, not single-digit regressions). Ratio metrics like
speedup partly self-normalize across machines but still deserve a loose
tolerance; their hard floors live in bench_compare.py --speedup-min.

Usage:
  scripts/check_overhead.py RUN.json [RUN2.json ...] [--baseline FILE]
                            [--tolerance F] [--key F1,F2,..] [--metric M]
"""

import argparse
import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = REPO / "bench" / "baselines" / "decoder_speed_release.json"


def rows_by_key(report, key_fields, metric, path):
    rows = {}
    for row in report["results"]:
        missing = [f for f in key_fields + [metric] if f not in row]
        if missing:
            sys.exit(f"check_overhead: {path}: record lacks field(s) "
                     f"{missing} (have: {sorted(row)})")
        rows[tuple(row[f] for f in key_fields)] = row
    return rows


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("candidates", nargs="+", metavar="RUN.json",
                        help="bench --json outputs; several runs are merged "
                             "row-wise by best metric")
    parser.add_argument("--baseline", default=str(DEFAULT_BASELINE))
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="allowed fractional metric drop (0.10=10%%)")
    parser.add_argument("--key", default="decoder,distance,threads",
                        help="comma-separated record fields that identify a "
                             "row (default: decoder,distance,threads)")
    parser.add_argument("--metric", default="trials_per_sec",
                        help="higher-is-better record field to gate "
                             "(default: trials_per_sec)")
    args = parser.parse_args()
    key_fields = [f for f in args.key.split(",") if f]
    metric = args.metric

    baseline = rows_by_key(json.loads(Path(args.baseline).read_text()),
                           key_fields, metric, args.baseline)
    candidate = {}
    for path in args.candidates:
        report = json.loads(Path(path).read_text())
        for key, row in rows_by_key(report, key_fields, metric, path).items():
            if (key not in candidate or
                    row[metric] > candidate[key][metric]):
                candidate[key] = row

    failures = []
    if set(baseline) != set(candidate):
        failures.append(f"row sets differ: baseline-only "
                        f"{sorted(set(baseline) - set(candidate))}, "
                        f"candidate-only {sorted(set(candidate) - set(baseline))}")
    worst = 0.0
    for key in sorted(set(baseline) & set(candidate)):
        base = baseline[key][metric]
        cand = candidate[key][metric]
        if base <= 0:
            continue  # unmeasured row (e.g. single-engine run): no gate
        drop = (base - cand) / base
        worst = max(worst, drop)
        status = "FAIL" if drop > args.tolerance else "ok"
        label = " ".join(f"{f}={v}" for f, v in zip(key_fields, key))
        print(f"{status}  {label:<40} {base:>12.1f} -> {cand:>12.1f} "
              f"{metric} ({drop:+.1%})")
        if drop > args.tolerance:
            failures.append(f"{key}: {metric} dropped {drop:.1%} "
                            f"(tolerance {args.tolerance:.0%})")

    print(f"check_overhead: worst drop {worst:+.1%}, "
          f"tolerance {args.tolerance:.0%}", file=sys.stderr)
    for failure in failures:
        print(f"error: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
