#!/usr/bin/env python3
"""Run clang-tidy over the project's compilation database.

Reads compile_commands.json (written by CMake; configure with
-DCMAKE_EXPORT_COMPILE_COMMANDS=ON, which the top-level CMakeLists.txt
already forces), filters to first-party translation units, and runs
clang-tidy on each in parallel. The check set lives in .clang-tidy.

Headers are not translation units, so `--changed BASE` maps a changed
header to every first-party TU that directly #includes it (by the
project's include spellings: repo-root-relative and src-relative) and
lints those. Transitive includes are not chased; a header-only change
that matters two hops away still surfaces in the full run.

If no clang-tidy binary is available (the local toolchain only ships
g++), this exits 0 with a SKIPPED note so pre-commit use never blocks;
CI installs the tool and runs the real thing.

Usage:
  scripts/run_clang_tidy.py [-p BUILD_DIR] [--changed BASE] [-j N] [FILE...]
"""

import argparse
import concurrent.futures
import json
import re
import shutil
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
FIRST_PARTY = ("src", "bench", "tests", "examples", "tools")
HEADER_SUFFIXES = (".h", ".hpp")
TOOL_CANDIDATES = ("clang-tidy", "clang-tidy-18", "clang-tidy-17",
                   "clang-tidy-16", "clang-tidy-15", "clang-tidy-14")


def find_tool():
    for name in TOOL_CANDIDATES:
        path = shutil.which(name)
        if path:
            return path
    return None


def changed_files(base):
    out = subprocess.run(
        ["git", "diff", "--name-only", "--diff-filter=d", base],
        cwd=REPO, capture_output=True, text=True, check=True).stdout
    return {str(REPO / f) for f in out.splitlines()}


def first_party_units(build_dir):
    db_path = build_dir / "compile_commands.json"
    if not db_path.is_file():
        sys.exit(f"error: {db_path} not found; configure the build first "
                 "(cmake -B build -S .)")
    units = []
    for entry in json.loads(db_path.read_text()):
        source = str((Path(entry["directory"]) / entry["file"]).resolve())
        try:
            rel = Path(source).relative_to(REPO)
        except ValueError:
            continue
        if rel.parts[0] in FIRST_PARTY:
            units.append(source)
    return sorted(set(units))


def include_spellings(header):
    """How the tree may spell an #include of this repo-relative header."""
    try:
        rel = Path(header).relative_to(REPO)
    except ValueError:
        return set()
    spellings = {rel.as_posix()}
    if rel.parts[0] == "src":  # src/ is the include root for library code
        spellings.add(Path(*rel.parts[1:]).as_posix())
    return spellings


def expand_headers(selected, units):
    """Replace headers in `selected` with the TUs that include them.

    Headers never appear in the compilation database, so a changed-header
    run would otherwise lint nothing. Scans each first-party TU for a
    direct `#include "..."` of the header under its project spellings.
    """
    headers = {f for f in selected if f.endswith(HEADER_SUFFIXES)}
    out = {f for f in selected if f not in headers}
    if not headers:
        return out
    include_re = re.compile(r'^\s*#\s*include\s*"([^"]+)"', re.MULTILINE)
    wanted = {}
    for header in headers:
        for spelling in include_spellings(header):
            wanted.setdefault(spelling, set()).add(header)
    for unit in units:
        try:
            text = Path(unit).read_text(encoding="utf-8", errors="replace")
        except OSError:
            continue
        if any(inc in wanted for inc in include_re.findall(text)):
            out.add(unit)
    return out


def run_one(tool, build_dir, source):
    proc = subprocess.run(
        [tool, "-p", str(build_dir), "--quiet", source],
        capture_output=True, text=True)
    return source, proc.returncode, proc.stdout + proc.stderr


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="*", help="restrict to these sources")
    parser.add_argument("-p", "--build-dir", default="build",
                        help="build dir holding compile_commands.json")
    parser.add_argument("--changed", metavar="BASE",
                        help="only lint sources changed since this git ref")
    parser.add_argument("-j", "--jobs", type=int, default=4)
    args = parser.parse_args()

    tool = find_tool()
    if tool is None:
        print("run_clang_tidy: SKIPPED (no clang-tidy binary on PATH)")
        return 0

    build_dir = (REPO / args.build_dir).resolve()
    all_units = first_party_units(build_dir)

    only = None
    if args.files:
        only = {str(Path(f).resolve()) for f in args.files}
    elif args.changed:
        only = changed_files(args.changed)
    if only is not None:
        only = expand_headers(only, all_units)
        units = sorted(u for u in all_units if u in only)
    else:
        units = all_units
    if not units:
        print("run_clang_tidy: no matching translation units")
        return 0

    failures = 0
    with concurrent.futures.ThreadPoolExecutor(args.jobs) as pool:
        futures = [pool.submit(run_one, tool, build_dir, u) for u in units]
        for future in concurrent.futures.as_completed(futures):
            source, code, output = future.result()
            rel = Path(source).relative_to(REPO)
            if code != 0 or "warning:" in output or "error:" in output:
                failures += 1
                print(f"--- {rel}")
                print(output.rstrip())
            else:
                print(f"ok  {rel}")
    print(f"run_clang_tidy: {len(units)} units, {failures} with findings",
          file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
