#!/usr/bin/env python3
"""Compare two --json bench outputs and flag >10% regressions.

Usage:
    bench_compare.py baseline.json candidate.json [--threshold 0.10]
    bench_compare.py --validate FILE [FILE ...]
    bench_compare.py run.json --speedup-min 5 [--speedup-filter sparse_long]

Each input is either the shared bench envelope
``{"bench": ..., "schema_version": 1, "results": [...]}`` (emitted by every
bench's --json mode) or, for backward compatibility, a bare JSON array of
flat records. Records are joined on their string/identity fields (e.g.
decoder + distance, or grid + requests); numeric fields are then compared
pairwise.

``--speedup-min`` asserts an absolute floor instead of comparing: every
record in the single given file that carries a ``speedup`` field (e.g.
bench_event_core's slot-vs-event rows) must meet the floor, optionally
restricted with ``--speedup-filter`` to records whose string fields
contain the given substring. This is the acceptance gate for the event
engine: ``--speedup-filter sparse_long --speedup-min 5``.

``--validate`` checks files structurally instead of comparing: bench
envelopes, observability metrics documents (``{"schema_version": ...,
"counters": ...}`` from --metrics-out), and JSONL event traces (one
``{"ev": ...}`` object per line from --trace-out) are each recognized by
shape and validated against their schema. Exit 0 = all valid.

Whether a change is a regression depends on the field: for time-like
fields (``*_ms``, ``ns_per_decode``, ``*_iterations``, ``iters``) an
*increase* beyond the threshold is a regression; for rate-like fields
(``trials_per_sec``, ``speedup``, ``objective``, ``throughput``) a
*decrease* is. Fields matching neither family are reported informationally
but never fail the run.

Exit status: 0 = no regressions, 1 = at least one flagged, 2 = usage or
join error.
"""

import argparse
import json
import sys
from pathlib import Path

# Field-name fragments that decide comparison direction.
LOWER_IS_BETTER = ("_ms", "ns_per_decode", "iterations", "iters", "latency")
HIGHER_IS_BETTER = ("trials_per_sec", "speedup", "objective", "throughput",
                    "fidelity")


def direction(field):
    """-1 if lower is better, +1 if higher is better, 0 if neutral."""
    for frag in LOWER_IS_BETTER:
        if frag in field:
            return -1
    for frag in HIGHER_IS_BETTER:
        if frag in field:
            return 1
    return 0


def record_key(record):
    """Identity of a record: strings, plus ints that are sweep coordinates
    rather than metrics (judged by field name — an int named like a
    time/rate field is a measurement and must not break the join)."""
    parts = []
    for name in sorted(record):
        value = record[name]
        if isinstance(value, str):
            parts.append((name, value))
        elif isinstance(value, int) and not isinstance(value, bool) \
                and direction(name) == 0:
            parts.append((name, value))
    return tuple(parts)


def unwrap_envelope(data, path):
    """Accept the shared bench envelope or a bare legacy record array."""
    if isinstance(data, dict) and "results" in data:
        results = data["results"]
        if not isinstance(results, list):
            sys.exit(f"bench_compare: {path}: envelope 'results' is not "
                     "an array")
        return results
    return data


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        sys.exit(f"bench_compare: cannot read {path}: {err}")
    data = unwrap_envelope(data, path)
    if not isinstance(data, list) or not all(
            isinstance(r, dict) for r in data):
        sys.exit(f"bench_compare: {path} is not a JSON array of records")
    return data


# ---------------------------------------------------------------------------
# --validate: structural checks for the three machine-readable outputs.

def load_trace_schema():
    """JSONL keys required per trace event kind.

    bench/trace_schema.json is the single source of truth, shared with
    surfnet-analyze's trace-schema rule (which holds src/obs/trace.cpp to
    the same pin); keep additions there, not here.
    """
    path = Path(__file__).resolve().parent.parent / "bench" / \
        "trace_schema.json"
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        sys.exit(f"bench_compare: cannot read {path}: {err}")
    kinds = doc.get("kinds")
    if not isinstance(kinds, dict) or not all(
            isinstance(keys, list) for keys in kinds.values()):
        sys.exit(f"bench_compare: {path}: 'kinds' must map event kinds "
                 "to key arrays")
    return {kind: set(keys) for kind, keys in kinds.items()}


TRACE_SCHEMA = load_trace_schema()


def validate_envelope(data, path, errors):
    if not isinstance(data.get("bench"), str):
        errors.append(f"{path}: envelope 'bench' missing or not a string")
    if not isinstance(data.get("schema_version"), int):
        errors.append(f"{path}: envelope 'schema_version' missing")
    results = data.get("results")
    if not isinstance(results, list) or not all(
            isinstance(r, dict) for r in results):
        errors.append(f"{path}: envelope 'results' is not an array of "
                      "records")
        return
    for i, record in enumerate(results):
        for name, value in record.items():
            if not isinstance(value, (str, int, float, bool)):
                errors.append(f"{path}: results[{i}].{name} is not a flat "
                              "scalar")


def validate_metrics(data, path, errors):
    if not isinstance(data.get("schema_version"), int):
        errors.append(f"{path}: metrics 'schema_version' missing")
    for section in ("counters", "gauges", "timers", "histograms"):
        if section not in data:
            errors.append(f"{path}: metrics '{section}' section missing")
        elif not isinstance(data[section], dict):
            errors.append(f"{path}: metrics '{section}' is not an object")
    for name, value in data.get("counters", {}).items():
        if not isinstance(value, int):
            errors.append(f"{path}: counter '{name}' is not an integer")
    for name, hist in data.get("histograms", {}).items():
        if not isinstance(hist, dict):
            errors.append(f"{path}: histogram '{name}' is not an object")
            continue
        bounds = hist.get("bounds")
        counts = hist.get("counts")
        if not isinstance(bounds, list) or not isinstance(counts, list):
            errors.append(f"{path}: histogram '{name}' lacks bounds/counts")
        elif len(counts) != len(bounds) + 1:
            errors.append(f"{path}: histogram '{name}' needs "
                          "len(counts) == len(bounds) + 1")
        elif "total" in hist and sum(counts) != hist["total"]:
            errors.append(f"{path}: histogram '{name}' counts do not sum "
                          "to total")


def validate_trace_line(obj, where, errors):
    kind = obj.get("ev")
    if kind not in TRACE_SCHEMA:
        errors.append(f"{where}: unknown event kind {kind!r}")
        return
    required = TRACE_SCHEMA[kind]
    keys = set(obj) - {"ev", "trial"}
    missing = required - keys
    extra = keys - required
    if missing:
        errors.append(f"{where}: '{kind}' event missing keys "
                      f"{sorted(missing)}")
    if extra:
        errors.append(f"{where}: '{kind}' event has unexpected keys "
                      f"{sorted(extra)}")


def validate_file(path, errors):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            text = fh.read()
    except OSError as err:
        errors.append(f"{path}: cannot read: {err}")
        return
    stripped = text.lstrip()
    first_line = stripped.splitlines()[0] if stripped else ""
    # A JSONL trace has one self-contained object per line.
    is_jsonl = False
    if first_line.startswith("{"):
        try:
            json.loads(first_line)
            is_jsonl = "\n" in stripped.rstrip("\n") or \
                '"ev"' in first_line
        except json.JSONDecodeError:
            is_jsonl = False
    if is_jsonl and '"ev"' in first_line:
        for lineno, line in enumerate(text.splitlines(), 1):
            if not line.strip():
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as err:
                errors.append(f"{path}:{lineno}: invalid JSON: {err}")
                continue
            validate_trace_line(obj, f"{path}:{lineno}", errors)
        return
    try:
        data = json.loads(text)
    except json.JSONDecodeError as err:
        errors.append(f"{path}: invalid JSON: {err}")
        return
    if isinstance(data, dict) and "results" in data:
        validate_envelope(data, path, errors)
    elif isinstance(data, dict) and "counters" in data:
        validate_metrics(data, path, errors)
    elif isinstance(data, list):
        if not all(isinstance(r, dict) for r in data):
            errors.append(f"{path}: not a JSON array of records")
    else:
        errors.append(f"{path}: unrecognized document shape (expected a "
                      "bench envelope, a metrics document, a record array, "
                      "or a JSONL trace)")


def run_validate(paths):
    errors = []
    for path in paths:
        before = len(errors)
        validate_file(path, errors)
        print(f"{path}: {'OK' if len(errors) == before else 'INVALID'}")
    for line in errors:
        print(f"  {line}", file=sys.stderr)
    return 1 if errors else 0


def run_speedup_floor(path, floor, substring):
    """Assert every (filtered) record's speedup meets the floor."""
    records = load(path)
    selected = []
    for record in records:
        if "speedup" not in record:
            continue
        if substring and not any(
                substring in value for value in record.values()
                if isinstance(value, str)):
            continue
        selected.append(record)
    if not selected:
        print(f"bench_compare: no record with a 'speedup' field matches "
              f"filter {substring!r} in {path}", file=sys.stderr)
        return 2
    failures = 0
    for record in selected:
        label = " ".join(f"{n}={v}" for n, v in sorted(record.items())
                         if isinstance(v, str))
        ok = record["speedup"] >= floor
        print(f"{'ok' if ok else 'FAIL'}  {label}: speedup "
              f"{record['speedup']:g} (floor {floor:g})")
        failures += not ok
    if failures:
        print(f"bench_compare: {failures}/{len(selected)} record(s) below "
              f"the {floor:g}x speedup floor", file=sys.stderr)
        return 1
    print(f"all {len(selected)} record(s) meet the {floor:g}x speedup floor")
    return 0


def main():
    parser = argparse.ArgumentParser(
        description="Diff two --json bench outputs, flag regressions; or "
                    "--validate observability outputs structurally.")
    parser.add_argument("baseline", nargs="?")
    parser.add_argument("candidate", nargs="?")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="relative change that counts as a regression "
                             "(default 0.10 = 10%%)")
    parser.add_argument("--validate", nargs="+", metavar="FILE",
                        help="validate files (bench envelopes, metrics "
                             "documents, JSONL traces) instead of comparing")
    parser.add_argument("--speedup-min", type=float, metavar="F",
                        help="assert every matching record's 'speedup' in "
                             "the single given file is >= F")
    parser.add_argument("--speedup-filter", metavar="SUBSTR",
                        help="with --speedup-min: only check records whose "
                             "string fields contain SUBSTR")
    args = parser.parse_args()

    if args.validate:
        if args.baseline or args.candidate:
            parser.error("--validate takes its own file list; do not also "
                         "pass baseline/candidate")
        return run_validate(args.validate)
    if args.speedup_min is not None:
        if not args.baseline or args.candidate:
            parser.error("--speedup-min takes exactly one file")
        return run_speedup_floor(args.baseline, args.speedup_min,
                                 args.speedup_filter)
    if args.speedup_filter:
        parser.error("--speedup-filter requires --speedup-min")
    if not args.baseline or not args.candidate:
        parser.error("baseline and candidate are required unless --validate "
                     "is given")

    base = {record_key(r): r for r in load(args.baseline)}
    cand = {record_key(r): r for r in load(args.candidate)}

    shared = [k for k in base if k in cand]
    if not shared:
        print("bench_compare: no records join between the two files "
              "(schemas or sweep points differ)", file=sys.stderr)
        return 2
    missing = len(base) - len(shared)
    extra = len(cand) - len(shared)
    if missing:
        print(f"note: {missing} baseline record(s) have no candidate match")
    if extra:
        print(f"note: {extra} candidate record(s) have no baseline match")

    regressions = []
    improvements = []
    for key in shared:
        b, c = base[key], cand[key]
        label = " ".join(f"{n}={v}" for n, v in key)
        key_fields = {n for n, _ in key}
        for field in sorted(set(b) & set(c)):
            if field in key_fields:
                continue
            old, new = b[field], c[field]
            if isinstance(old, bool) or isinstance(new, bool):
                continue
            if not (isinstance(old, (int, float))
                    and isinstance(new, (int, float))):
                continue
            if abs(old) < 1e-12:
                continue
            change = (new - old) / abs(old)
            sign = direction(field)
            if sign == 0:
                continue
            worse = change > args.threshold if sign < 0 \
                else change < -args.threshold
            better = change < -args.threshold if sign < 0 \
                else change > args.threshold
            line = (f"  {label}: {field} {old:g} -> {new:g} "
                    f"({change:+.1%})")
            if worse:
                regressions.append(line)
            elif better:
                improvements.append(line)

    if improvements:
        print(f"improvements (> {args.threshold:.0%}):")
        for line in improvements:
            print(line)
    if regressions:
        print(f"REGRESSIONS (> {args.threshold:.0%}):")
        for line in regressions:
            print(line)
        return 1
    print(f"no regressions beyond {args.threshold:.0%} across "
          f"{len(shared)} joined record(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
