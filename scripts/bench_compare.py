#!/usr/bin/env python3
"""Compare two --json bench outputs and flag >10% regressions.

Usage:
    bench_compare.py baseline.json candidate.json [--threshold 0.10]

Both files must hold a JSON array of flat records, as emitted by
`bench_decoder_speed --json` or `bench_ablation_routing --json`. Records
are joined on their string/identity fields (e.g. decoder + distance, or
grid + requests); numeric fields are then compared pairwise.

Whether a change is a regression depends on the field: for time-like
fields (``*_ms``, ``ns_per_decode``, ``*_iterations``, ``iters``) an
*increase* beyond the threshold is a regression; for rate-like fields
(``trials_per_sec``, ``speedup``, ``objective``, ``throughput``) a
*decrease* is. Fields matching neither family are reported informationally
but never fail the run.

Exit status: 0 = no regressions, 1 = at least one flagged, 2 = usage or
join error.
"""

import argparse
import json
import sys

# Field-name fragments that decide comparison direction.
LOWER_IS_BETTER = ("_ms", "ns_per_decode", "iterations", "iters", "latency")
HIGHER_IS_BETTER = ("trials_per_sec", "speedup", "objective", "throughput",
                    "fidelity")


def direction(field):
    """-1 if lower is better, +1 if higher is better, 0 if neutral."""
    for frag in LOWER_IS_BETTER:
        if frag in field:
            return -1
    for frag in HIGHER_IS_BETTER:
        if frag in field:
            return 1
    return 0


def record_key(record):
    """Identity of a record: strings, plus ints that are sweep coordinates
    rather than metrics (judged by field name — an int named like a
    time/rate field is a measurement and must not break the join)."""
    parts = []
    for name in sorted(record):
        value = record[name]
        if isinstance(value, str):
            parts.append((name, value))
        elif isinstance(value, int) and not isinstance(value, bool) \
                and direction(name) == 0:
            parts.append((name, value))
    return tuple(parts)


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        sys.exit(f"bench_compare: cannot read {path}: {err}")
    if not isinstance(data, list) or not all(
            isinstance(r, dict) for r in data):
        sys.exit(f"bench_compare: {path} is not a JSON array of records")
    return data


def main():
    parser = argparse.ArgumentParser(
        description="Diff two --json bench outputs, flag regressions.")
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="relative change that counts as a regression "
                             "(default 0.10 = 10%%)")
    args = parser.parse_args()

    base = {record_key(r): r for r in load(args.baseline)}
    cand = {record_key(r): r for r in load(args.candidate)}

    shared = [k for k in base if k in cand]
    if not shared:
        print("bench_compare: no records join between the two files "
              "(schemas or sweep points differ)", file=sys.stderr)
        return 2
    missing = len(base) - len(shared)
    extra = len(cand) - len(shared)
    if missing:
        print(f"note: {missing} baseline record(s) have no candidate match")
    if extra:
        print(f"note: {extra} candidate record(s) have no baseline match")

    regressions = []
    improvements = []
    for key in shared:
        b, c = base[key], cand[key]
        label = " ".join(f"{n}={v}" for n, v in key)
        key_fields = {n for n, _ in key}
        for field in sorted(set(b) & set(c)):
            if field in key_fields:
                continue
            old, new = b[field], c[field]
            if isinstance(old, bool) or isinstance(new, bool):
                continue
            if not (isinstance(old, (int, float))
                    and isinstance(new, (int, float))):
                continue
            if abs(old) < 1e-12:
                continue
            change = (new - old) / abs(old)
            sign = direction(field)
            if sign == 0:
                continue
            worse = change > args.threshold if sign < 0 \
                else change < -args.threshold
            better = change < -args.threshold if sign < 0 \
                else change > args.threshold
            line = (f"  {label}: {field} {old:g} -> {new:g} "
                    f"({change:+.1%})")
            if worse:
                regressions.append(line)
            elif better:
                improvements.append(line)

    if improvements:
        print(f"improvements (> {args.threshold:.0%}):")
        for line in improvements:
            print(line)
    if regressions:
        print(f"REGRESSIONS (> {args.threshold:.0%}):")
        for line in regressions:
            print(line)
        return 1
    print(f"no regressions beyond {args.threshold:.0%} across "
          f"{len(shared)} joined record(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
