#!/usr/bin/env python3
"""Regression tests for scripts/lint_surfnet.py string/comment stripping.

The original strip_strings() worked line-by-line with a dead
`if quote is None` fallback: an unterminated quote silently behaved like
a terminated one, raw strings opened ordinary quote state, and comment
stripping ran in a second pass that could disagree with string state
(`// don't` opened a char literal). These tests pin the whole-file
scanner that replaced it, plus the linter behaviors that depend on it.
"""

import sys
import tempfile
import unittest
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from lint_surfnet import FileLinter, strip_strings  # noqa: E402


class StripStringsTest(unittest.TestCase):
    def test_blanks_ordinary_string_contents(self):
        out = strip_strings('call("std::rand()");')
        self.assertNotIn("std::rand", out)
        self.assertIn('call("', out)

    def test_preserves_line_structure_and_length(self):
        text = 'a("x");\nint y = 0;\n/* b\nc */ z();\n'
        out = strip_strings(text)
        self.assertEqual(out.count("\n"), text.count("\n"))
        for got, want in zip(out.splitlines(), text.splitlines()):
            self.assertEqual(len(got), len(want))

    def test_unterminated_string_does_not_swallow_next_line(self):
        # The dead-conditional bug: quote state must reset at the newline
        # for ordinary literals, so line 2 is still scanned as code.
        out = strip_strings('auto s = "oops;\nstd::rand();\n')
        self.assertIn("std::rand();", out.splitlines()[1])

    def test_escaped_quote_stays_inside_string(self):
        out = strip_strings(r'f("a\"b"); srand(0);')
        self.assertEqual(out.split(";")[0], 'f("    ")')
        self.assertIn("srand(0);", out)

    def test_raw_string_spans_lines(self):
        text = 'auto q = R"(\nstd::rand()\n)"; srand(0);\n'
        out = strip_strings(text)
        self.assertNotIn("std::rand", out)
        self.assertIn("srand(0);", out)

    def test_raw_string_delimiter_guards_inner_close(self):
        # The plain )" inside must not close an R"x( literal.
        text = 'auto q = R"x( a )" b )x"; srand(0);'
        out = strip_strings(text)
        self.assertNotIn(" a ", out)
        self.assertNotIn(" b ", out)
        self.assertIn("srand(0);", out)

    def test_unterminated_raw_string_blanks_to_eof(self):
        out = strip_strings('auto q = R"(\nstd::rand()\n')
        self.assertNotIn("std::rand", out)
        self.assertEqual(out.count("\n"), 2)

    def test_raw_prefix_requires_token_boundary(self):
        # An identifier ending in R followed by a string is not a raw
        # string: the literal still terminates at its plain closing quote.
        out = strip_strings('FOOR"(x)"; srand(0);')
        self.assertIn("srand(0);", out)

    def test_line_comment_removed_even_with_apostrophe(self):
        # "don't" must not open a char literal that leaks past the comment.
        out = strip_strings("int a;  // don't do this\nsrand(0);\n")
        self.assertNotIn("don", out)
        self.assertIn("srand(0);", out)

    def test_block_comment_spans_lines(self):
        out = strip_strings("/* one\nstd::rand()\n*/ srand(0);\n")
        self.assertNotIn("std::rand", out)
        self.assertIn("srand(0);", out)

    def test_comment_markers_inside_strings_are_inert(self):
        out = strip_strings('auto u = "//"; srand(0); auto v = "/*";\nf();\n')
        self.assertIn("srand(0);", out)
        self.assertIn("f();", out)

    def test_digit_separator_is_not_a_char_literal(self):
        out = strip_strings("int n = 1'000'000; srand(0);")
        self.assertIn("srand(0);", out)


class FileLinterTest(unittest.TestCase):
    def lint(self, rel, text):
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / Path(rel).name
            path.write_text(text)
            return FileLinter(path, Path(rel)).run()

    def test_wallclock_in_raw_string_not_flagged(self):
        text = 'constexpr const char* kDoc = R"(\nstd::rand() here\n)";\n'
        self.assertEqual(self.lint("src/util/doc.cpp", text), [])

    def test_wallclock_in_code_flagged(self):
        findings = self.lint("src/util/bad.cpp", "int x = std::rand();\n")
        self.assertEqual(len(findings), 1)
        self.assertIn("[wallclock-seeding]", findings[0])

    def test_code_after_unterminated_string_still_linted(self):
        text = 'const char* s = "oops;\nint x = std::rand();\n'
        findings = self.lint("src/util/bad.cpp", text)
        self.assertTrue(any(":2:" in f for f in findings), findings)

    def test_unordered_iteration_rule_retired(self):
        # Superseded by surfnet-analyze's unordered-state rule.
        text = ("#include <unordered_map>\n"
                "std::unordered_map<int, int> m;\n"
                "void f() { for (auto& kv : m) (void)kv; }\n")
        self.assertEqual(self.lint("src/util/m.cpp", text), [])
        self.assertFalse(hasattr(FileLinter, "lint_unordered"))


if __name__ == "__main__":
    unittest.main()
