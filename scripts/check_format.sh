#!/usr/bin/env bash
# Check (or with --fix, apply) clang-format over all first-party C++ files.
# Exits 0 with a SKIPPED note when no clang-format binary is available so
# local use on the g++-only toolchain never blocks; CI installs the tool.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${repo_root}"

tool=""
for candidate in clang-format clang-format-18 clang-format-17 \
                 clang-format-16 clang-format-15 clang-format-14; do
  if command -v "${candidate}" >/dev/null 2>&1; then
    tool="${candidate}"
    break
  fi
done
if [[ -z "${tool}" ]]; then
  echo "check_format: SKIPPED (no clang-format binary on PATH)"
  exit 0
fi

mode="--dry-run --Werror"
if [[ "${1:-}" == "--fix" ]]; then
  mode="-i"
fi

mapfile -t files < <(git ls-files 'src/**/*.h' 'src/**/*.cpp' \
  'bench/*.h' 'bench/*.cpp' 'tests/**/*.cpp' 'tests/*.cpp' \
  'examples/*.cpp')

# shellcheck disable=SC2086
"${tool}" ${mode} --style=file "${files[@]}"
echo "check_format: ${#files[@]} files checked with ${tool}"
