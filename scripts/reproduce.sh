#!/usr/bin/env bash
# Reproduce every paper artifact end to end.
#
#   scripts/reproduce.sh            # default Monte-Carlo budgets (~15 min)
#   scripts/reproduce.sh --full     # paper-scale budgets (hours)
#
# Output lands in reproduction/: one text file per bench, plus the ctest
# log. Compare against EXPERIMENTS.md.

set -euo pipefail
cd "$(dirname "$0")/.."

EXTRA=("$@")
OUT=reproduction
mkdir -p "$OUT"

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build 2>&1 | tee "$OUT/ctest.txt"

for bench in build/bench/*; do
  name=$(basename "$bench")
  echo "== $name =="
  if [[ "$name" == "bench_decoder_speed" ]]; then
    "$bench" 2>&1 | tee "$OUT/$name.txt"
  else
    "$bench" "${EXTRA[@]}" 2>&1 | tee "$OUT/$name.txt"
  fi
done

echo "done; results in $OUT/"
