// Tests for the contract layer itself: failure formatting, handler
// installation and scoping, macro semantics (single evaluation, throwing
// handler, default abort). The disabled-macro guarantees live in
// contracts_off_test.cpp, which compiles against SURFNET_CHECKS=0.

#include "util/contracts.h"

#include <gtest/gtest.h>

#include <string>

namespace surfnet::util {
namespace {

TEST(ContractFormat, RendersFileLineKindExpressionAndMessage) {
  ContractFailure failure;
  failure.kind = "assertion";
  failure.expression = "x > 0";
  failure.file = "foo.cpp";
  failure.line = 42;
  failure.message = "x = -3";
  EXPECT_EQ(format_contract_failure(failure),
            "foo.cpp:42: assertion failed: x > 0 (x = -3)");
}

TEST(ContractFormat, OmitsParenthesesWithoutMessage) {
  ContractFailure failure;
  failure.kind = "precondition";
  failure.expression = "ptr != nullptr";
  failure.file = "bar.h";
  failure.line = 7;
  EXPECT_EQ(format_contract_failure(failure),
            "bar.h:7: precondition failed: ptr != nullptr");
}

TEST(ContractViolationException, CarriesFormattedReport) {
  ContractFailure failure;
  failure.kind = "postcondition";
  failure.expression = "done";
  failure.file = "baz.cpp";
  failure.line = 3;
  const ContractViolation violation(failure);
  EXPECT_STREQ(violation.what(), "baz.cpp:3: postcondition failed: done");
}

TEST(ContractHandler, SetReturnsPreviousAndScopedRestores) {
  const ContractHandler original = set_contract_handler(nullptr);
  EXPECT_EQ(set_contract_handler(throw_contract_violation), nullptr);
  {
    ScopedContractHandler scoped(nullptr);
    // Inside the scope the handler is nullptr (default abort). We cannot
    // observe it without dying, but the destructor must restore the
    // throwing handler, which the next block proves.
  }
  EXPECT_EQ(set_contract_handler(original), throw_contract_violation);
}

#if SURFNET_CHECKS

TEST(ContractMacros, TrueConditionHasNoEffect) {
  ScopedContractHandler scoped(throw_contract_violation);
  EXPECT_NO_THROW(SURFNET_ASSERT(1 + 1 == 2));
  EXPECT_NO_THROW(SURFNET_EXPECTS(true, "context %d", 5));
  EXPECT_NO_THROW(SURFNET_ENSURES(2 > 1));
}

TEST(ContractMacros, ConditionEvaluatedExactlyOnce) {
  ScopedContractHandler scoped(throw_contract_violation);
  int calls = 0;
  SURFNET_ASSERT(++calls > 0);
  EXPECT_EQ(calls, 1);
}

TEST(ContractMacros, FailureThrowsUnderThrowingHandler) {
  ScopedContractHandler scoped(throw_contract_violation);
  EXPECT_THROW(SURFNET_ASSERT(false), ContractViolation);
  EXPECT_THROW(SURFNET_EXPECTS(1 == 2), ContractViolation);
  EXPECT_THROW(SURFNET_ENSURES(false, "unformatted"), ContractViolation);
}

TEST(ContractMacros, FailureReportNamesKindExpressionAndContext) {
  ScopedContractHandler scoped(throw_contract_violation);
  try {
    const int index = 9, size = 4;
    SURFNET_EXPECTS(index < size, "index %d of %d", index, size);
    FAIL() << "contract did not fire";
  } catch (const ContractViolation& violation) {
    const std::string what = violation.what();
    EXPECT_NE(what.find("precondition failed"), std::string::npos) << what;
    EXPECT_NE(what.find("index < size"), std::string::npos) << what;
    EXPECT_NE(what.find("index 9 of 4"), std::string::npos) << what;
    EXPECT_NE(what.find("contracts_test.cpp"), std::string::npos) << what;
  }
}

using ContractDeathTest = ::testing::Test;

TEST(ContractDeathTest, DefaultHandlerPrintsAndAborts) {
  EXPECT_DEATH(SURFNET_ASSERT(false, "fatal %s", "context"),
               "assertion failed: false \\(fatal context\\)");
}

TEST(ContractDeathTest, ReturningHandlerStillAborts) {
  // A handler that returns must not let execution continue past the
  // violation: dispatch falls through to the default abort.
  EXPECT_DEATH(
      {
        ScopedContractHandler scoped(+[](const ContractFailure&) {});
        SURFNET_ASSERT(false);
      },
      "assertion failed");
}

#endif  // SURFNET_CHECKS

}  // namespace
}  // namespace surfnet::util
