// Proves the zero-overhead guarantee of disabled contracts. This TU forces
// SURFNET_CHECKS to 0 before including the header — regardless of how the
// rest of the build is configured — and then shows that the macros never
// evaluate their operands (conditions or message arguments), yet still
// compile against them (the operands are type-checked inside an unevaluated
// sizeof, so a disabled build cannot hide a malformed contract).

#undef SURFNET_CHECKS
#define SURFNET_CHECKS 0
#include "util/contracts.h"

#include <gtest/gtest.h>

namespace surfnet::util {
namespace {

int g_condition_calls = 0;
int g_message_calls = 0;

bool count_condition(bool result) {
  ++g_condition_calls;
  return result;
}

int count_message_arg() {
  ++g_message_calls;
  return 0;
}

TEST(ContractsDisabled, ConditionNeverEvaluated) {
  g_condition_calls = 0;
  SURFNET_ASSERT(count_condition(true));
  SURFNET_ASSERT(count_condition(false));  // would abort if checks were on
  SURFNET_EXPECTS(count_condition(false));
  SURFNET_ENSURES(count_condition(false));
  EXPECT_EQ(g_condition_calls, 0);
}

TEST(ContractsDisabled, MessageArgumentsNeverEvaluated) {
  g_message_calls = 0;
  SURFNET_ASSERT(false, "value %d", count_message_arg());
  SURFNET_EXPECTS(false, "values %d %d", count_message_arg(),
                  count_message_arg());
  EXPECT_EQ(g_message_calls, 0);
}

TEST(ContractsDisabled, UsableInExpressionStatementsAndBranches) {
  // The disabled expansion must still be a complete void expression:
  // legal as a bare statement and as an unbraced if/else body.
  if (true)
    SURFNET_ASSERT(false);
  else
    SURFNET_ASSERT(false);
  for (int i = 0; i < 2; ++i) SURFNET_ENSURES(i < 0, "i = %d", i);
  SUCCEED();
}

TEST(ContractsDisabled, HandlerMachineryStillLinks) {
  // The runtime half of the contract layer (handlers, formatting) is
  // compiled unconditionally so mixed-configuration links always resolve.
  ContractFailure failure;
  failure.kind = "assertion";
  failure.expression = "x";
  failure.file = "f.cpp";
  failure.line = 1;
  EXPECT_EQ(format_contract_failure(failure), "f.cpp:1: assertion failed: x");
  const ContractHandler previous = set_contract_handler(nullptr);
  set_contract_handler(previous);
}

}  // namespace
}  // namespace surfnet::util
