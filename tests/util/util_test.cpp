#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

namespace surfnet::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BelowIsUnbiasedEnough) {
  Rng rng(11);
  int counts[5] = {0};
  for (int i = 0; i < 50000; ++i) ++counts[rng.below(5)];
  for (int c : counts) EXPECT_NEAR(c / 50000.0, 0.2, 0.01);
}

TEST(Rng, BetweenIsInclusive) {
  Rng rng(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto x = rng.between(3, 6);
    ASSERT_GE(x, 3);
    ASSERT_LE(x, 6);
    saw_lo |= (x == 3);
    saw_hi |= (x == 6);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliRate) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.01);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng rng(19);
  Rng child = rng.fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (rng() == child()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(RunningStat, MeanAndVariance) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStat, EmptyIsSafe) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.ci95(), 0.0);
}

TEST(Proportion, ValueAndInterval) {
  Proportion p;
  p.add_many(30, 100);
  EXPECT_DOUBLE_EQ(p.value(), 0.3);
  EXPECT_GT(p.ci95(), 0.0);
  EXPECT_LT(p.ci95(), 0.15);
}

TEST(CrossingPoint, FindsLinearCrossing) {
  const double xs[] = {0.0, 1.0, 2.0, 3.0};
  const double ya[] = {0.0, 1.0, 2.0, 3.0};
  const double yb[] = {3.0, 2.0, 1.0, 0.0};
  EXPECT_NEAR(crossing_point(xs, ya, yb, 4), 1.5, 1e-12);
}

TEST(CrossingPoint, NanWhenNoCrossing) {
  const double xs[] = {0.0, 1.0};
  const double ya[] = {0.0, 1.0};
  const double yb[] = {2.0, 3.0};
  EXPECT_TRUE(std::isnan(crossing_point(xs, ya, yb, 2)));
}

TEST(Table, AlignedOutput) {
  Table t({"a", "bb"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  std::ostringstream os;
  t.print(os);
  const auto text = os.str();
  EXPECT_NE(text.find("a"), std::string::npos);
  EXPECT_NE(text.find("333"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, CsvOutput) {
  Table t({"x", "y"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "x,y\n1,2\n");
}

TEST(Table, RowArityEnforced) {
  Table t({"x", "y"});
  EXPECT_THROW(t.add_row({"1"}), std::invalid_argument);
}

TEST(Table, Formatting) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::pct(0.0725, 2), "7.25%");
}

}  // namespace
}  // namespace surfnet::util
