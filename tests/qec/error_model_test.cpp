#include "qec/error_model.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace surfnet::qec {
namespace {

TEST(ErrorModel, UniformProfileRates) {
  const auto profile = NoiseProfile::uniform(10, 0.07, 0.15);
  ASSERT_EQ(profile.num_qubits(), 10);
  for (int q = 0; q < 10; ++q) {
    EXPECT_DOUBLE_EQ(profile.qubit(q).pauli, 0.07);
    EXPECT_DOUBLE_EQ(profile.qubit(q).erasure, 0.15);
  }
}

TEST(ErrorModel, CoreSupportHalvesCoreRates) {
  const SurfaceCodeLattice lattice(5);
  const auto part = make_core_support(lattice);
  const auto profile = NoiseProfile::core_support(part, 0.08, 0.16);
  for (int q = 0; q < lattice.num_data_qubits(); ++q) {
    const double scale = part.is_core[static_cast<std::size_t>(q)] ? 0.5 : 1.0;
    EXPECT_DOUBLE_EQ(profile.qubit(q).pauli, 0.08 * scale);
    EXPECT_DOUBLE_EQ(profile.qubit(q).erasure, 0.16 * scale);
  }
}

TEST(ErrorModel, ComponentPriorIndependentXZ) {
  const auto profile = NoiseProfile::uniform(4, 0.05, 0.0);
  const auto prior = profile.component_error_prob(PauliChannel::IndependentXZ);
  for (double p : prior) EXPECT_DOUBLE_EQ(p, 0.05);
}

TEST(ErrorModel, ComponentPriorDepolarizing) {
  const auto profile = NoiseProfile::uniform(4, 0.09, 0.0);
  const auto prior = profile.component_error_prob(PauliChannel::Depolarizing);
  for (double p : prior) EXPECT_DOUBLE_EQ(p, 0.06);
}

TEST(ErrorModel, SampledRatesMatchConfiguredRates) {
  const auto profile = NoiseProfile::uniform(1000, 0.10, 0.20);
  util::Rng rng(7);
  int pauli_flips = 0, erasures = 0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    const auto sample = sample_errors(profile, PauliChannel::IndependentXZ,
                                      rng);
    for (std::size_t q = 0; q < sample.error.size(); ++q) {
      if (sample.erased[q]) {
        ++erasures;
      } else if (has_x(sample.error[q])) {
        ++pauli_flips;
      }
    }
  }
  const double total = 1000.0 * trials;
  EXPECT_NEAR(erasures / total, 0.20, 0.01);
  // X-component rate among non-erased qubits is p = 0.10 of 0.8 of qubits.
  EXPECT_NEAR(pauli_flips / total, 0.10 * 0.80, 0.01);
}

TEST(ErrorModel, ErasedQubitsAreMaximallyMixed) {
  // Among erased qubits, the four Paulis should be roughly uniform.
  const auto profile = NoiseProfile::uniform(2000, 0.0, 1.0);
  util::Rng rng(9);
  const auto sample = sample_errors(profile, PauliChannel::IndependentXZ, rng);
  int counts[4] = {0, 0, 0, 0};
  for (std::size_t q = 0; q < sample.error.size(); ++q) {
    ASSERT_TRUE(sample.erased[q]);
    ++counts[static_cast<int>(sample.error[q])];
  }
  for (int c : counts) EXPECT_NEAR(c / 2000.0, 0.25, 0.05);
}

TEST(ErrorModel, DepolarizingNeverEmitsIdentityAsError) {
  const auto profile = NoiseProfile::uniform(500, 1.0, 0.0);
  util::Rng rng(11);
  const auto sample = sample_errors(profile, PauliChannel::Depolarizing, rng);
  int counts[4] = {0, 0, 0, 0};
  for (auto p : sample.error) ++counts[static_cast<int>(p)];
  EXPECT_EQ(counts[0], 0);  // Pauli rate 1.0 always applies X, Y, or Z
  for (int i = 1; i < 4; ++i) EXPECT_NEAR(counts[i] / 500.0, 1.0 / 3.0, 0.08);
}

TEST(ErrorModel, DeterministicUnderSameSeed) {
  const auto profile = NoiseProfile::uniform(50, 0.1, 0.1);
  util::Rng rng1(123), rng2(123);
  const auto s1 = sample_errors(profile, PauliChannel::IndependentXZ, rng1);
  const auto s2 = sample_errors(profile, PauliChannel::IndependentXZ, rng2);
  EXPECT_EQ(s1.error, s2.error);
  EXPECT_EQ(s1.erased, s2.erased);
}

}  // namespace
}  // namespace surfnet::qec
