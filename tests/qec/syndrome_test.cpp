#include "qec/syndrome.h"

#include <gtest/gtest.h>

#include "qec/error_model.h"
#include "qec/logical.h"
#include "util/rng.h"

namespace surfnet::qec {
namespace {

TEST(Syndrome, NoErrorNoSyndrome) {
  const SurfaceCodeLattice lattice(5);
  const std::vector<Pauli> error(
      static_cast<std::size_t>(lattice.num_data_qubits()), Pauli::I);
  for (auto kind : {GraphKind::Z, GraphKind::X}) {
    const auto flips = edge_flips(lattice, kind, error);
    EXPECT_TRUE(syndrome_vertices(lattice.graph(kind), flips).empty());
  }
}

TEST(Syndrome, SingleBulkXErrorLightsTwoZSyndromes) {
  const SurfaceCodeLattice lattice(5);
  // Pick an interior data qubit: an (odd, odd) one is never on a Z-graph
  // boundary edge.
  const int q = lattice.data_index({1, 1});
  ASSERT_GE(q, 0);
  std::vector<Pauli> error(
      static_cast<std::size_t>(lattice.num_data_qubits()), Pauli::I);
  error[static_cast<std::size_t>(q)] = Pauli::X;
  const auto flips = edge_flips(lattice, GraphKind::Z, error);
  EXPECT_EQ(syndrome_vertices(lattice.graph(GraphKind::Z), flips).size(), 2u);
  // An X error is invisible to the X-graph.
  const auto xflips = edge_flips(lattice, GraphKind::X, error);
  EXPECT_TRUE(syndrome_vertices(lattice.graph(GraphKind::X), xflips).empty());
}

TEST(Syndrome, BoundaryErrorLightsOneSyndrome) {
  const SurfaceCodeLattice lattice(5);
  const int q = lattice.data_index({0, 0});  // west boundary for Z-graph
  ASSERT_GE(q, 0);
  std::vector<Pauli> error(
      static_cast<std::size_t>(lattice.num_data_qubits()), Pauli::I);
  error[static_cast<std::size_t>(q)] = Pauli::X;
  const auto flips = edge_flips(lattice, GraphKind::Z, error);
  EXPECT_EQ(syndrome_vertices(lattice.graph(GraphKind::Z), flips).size(), 1u);
}

TEST(Syndrome, YErrorVisibleOnBothGraphs) {
  const SurfaceCodeLattice lattice(5);
  const int q = lattice.data_index({2, 2});
  ASSERT_GE(q, 0);
  std::vector<Pauli> error(
      static_cast<std::size_t>(lattice.num_data_qubits()), Pauli::I);
  error[static_cast<std::size_t>(q)] = Pauli::Y;
  for (auto kind : {GraphKind::Z, GraphKind::X}) {
    const auto flips = edge_flips(lattice, kind, error);
    EXPECT_FALSE(syndrome_vertices(lattice.graph(kind), flips).empty());
  }
}

TEST(Syndrome, LogicalOperatorHasEmptySyndrome) {
  for (int d : {3, 5, 7}) {
    const SurfaceCodeLattice lattice(d);
    for (auto kind : {GraphKind::Z, GraphKind::X}) {
      std::vector<Pauli> error(
          static_cast<std::size_t>(lattice.num_data_qubits()), Pauli::I);
      const Pauli op = (kind == GraphKind::Z) ? Pauli::X : Pauli::Z;
      for (int q : lattice.logical_operator(kind))
        error[static_cast<std::size_t>(q)] = op;
      const auto flips = edge_flips(lattice, kind, error);
      EXPECT_TRUE(syndrome_vertices(lattice.graph(kind), flips).empty())
          << "d=" << d;
      // ... and it registers as a logical flip on the cut.
      EXPECT_TRUE(logical_flip(lattice, kind, flips)) << "d=" << d;
    }
  }
}

TEST(Syndrome, SyndromeIsLinearInErrors) {
  // syndrome(e1 XOR e2) == syndrome(e1) XOR syndrome(e2), per graph.
  const SurfaceCodeLattice lattice(5);
  util::Rng rng(42);
  const auto profile = NoiseProfile::uniform(lattice.num_data_qubits(), 0.2,
                                             0.0);
  for (int trial = 0; trial < 20; ++trial) {
    const auto s1 = sample_errors(profile, PauliChannel::IndependentXZ, rng);
    const auto s2 = sample_errors(profile, PauliChannel::IndependentXZ, rng);
    std::vector<Pauli> combined(s1.error.size());
    for (std::size_t q = 0; q < combined.size(); ++q)
      combined[q] = s1.error[q] * s2.error[q];
    for (auto kind : {GraphKind::Z, GraphKind::X}) {
      const auto& graph = lattice.graph(kind);
      const auto b1 = syndrome_bitmap(graph, edge_flips(lattice, kind,
                                                        s1.error));
      const auto b2 = syndrome_bitmap(graph, edge_flips(lattice, kind,
                                                        s2.error));
      const auto bc = syndrome_bitmap(graph, edge_flips(lattice, kind,
                                                        combined));
      for (std::size_t v = 0; v < bc.size(); ++v)
        EXPECT_EQ(bc[v], (b1[v] ^ b2[v]) & 1);
    }
  }
}

TEST(Syndrome, StabilizerHasEmptySyndromeAndNoLogicalFlip) {
  // The four data qubits around one measure-X qubit form an X-stabilizer:
  // applying X to all of them commutes with every Z measurement (they form
  // a closed plaquette cycle in the Z-graph) and is homologically trivial.
  const SurfaceCodeLattice lattice(5);
  // Measure-X at (1, 2): neighbors (0,2), (2,2), (1,1), (1,3).
  std::vector<Pauli> error(
      static_cast<std::size_t>(lattice.num_data_qubits()), Pauli::I);
  for (Coord rc : {Coord{0, 2}, Coord{2, 2}, Coord{1, 1}, Coord{1, 3}}) {
    const int q = lattice.data_index(rc);
    ASSERT_GE(q, 0);
    error[static_cast<std::size_t>(q)] = Pauli::X;
  }
  const auto flips = edge_flips(lattice, GraphKind::Z, error);
  EXPECT_TRUE(syndrome_vertices(lattice.graph(GraphKind::Z), flips).empty());
  EXPECT_FALSE(logical_flip(lattice, GraphKind::Z, flips));
}

TEST(Residual, XorSemantics) {
  const std::vector<char> a{1, 0, 1, 0};
  const std::vector<char> b{1, 1, 0, 0};
  const auto r = residual(a, b);
  EXPECT_EQ(r, (std::vector<char>{0, 1, 1, 0}));
  EXPECT_THROW(residual(a, {1, 0}), std::invalid_argument);
}

TEST(EvaluateCorrection, PerfectCorrectionSucceeds) {
  const SurfaceCodeLattice lattice(3);
  const int q = lattice.data_index({1, 1});
  std::vector<Pauli> error(
      static_cast<std::size_t>(lattice.num_data_qubits()), Pauli::I);
  error[static_cast<std::size_t>(q)] = Pauli::X;
  const auto flips = edge_flips(lattice, GraphKind::Z, error);
  const auto outcome = evaluate_correction(lattice, GraphKind::Z, flips,
                                           flips);
  EXPECT_TRUE(outcome.valid);
  EXPECT_FALSE(outcome.logical);
  EXPECT_TRUE(outcome.success());
}

TEST(EvaluateCorrection, EmptyCorrectionOfRealErrorIsInvalid) {
  const SurfaceCodeLattice lattice(3);
  const int q = lattice.data_index({1, 1});
  std::vector<Pauli> error(
      static_cast<std::size_t>(lattice.num_data_qubits()), Pauli::I);
  error[static_cast<std::size_t>(q)] = Pauli::X;
  const auto flips = edge_flips(lattice, GraphKind::Z, error);
  const std::vector<char> empty(flips.size(), 0);
  EXPECT_FALSE(evaluate_correction(lattice, GraphKind::Z, flips, empty).valid);
}

}  // namespace
}  // namespace surfnet::qec
