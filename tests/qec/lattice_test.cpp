#include "qec/lattice.h"

#include <gtest/gtest.h>

#include <set>

#include "qec/core_support.h"

namespace surfnet::qec {
namespace {

class LatticeTest : public ::testing::TestWithParam<int> {};

TEST_P(LatticeTest, QubitCounts) {
  const int d = GetParam();
  const SurfaceCodeLattice lattice(d);
  EXPECT_EQ(lattice.num_data_qubits(), d * d + (d - 1) * (d - 1));
  EXPECT_EQ(lattice.num_measure_z(), d * (d - 1));
  EXPECT_EQ(lattice.num_measure_x(), (d - 1) * d);
}

TEST_P(LatticeTest, EveryDataQubitIsOneEdgeInEachGraph) {
  const SurfaceCodeLattice lattice(GetParam());
  for (auto kind : {GraphKind::Z, GraphKind::X}) {
    const auto& graph = lattice.graph(kind);
    ASSERT_EQ(static_cast<int>(graph.num_edges()), lattice.num_data_qubits());
    std::set<int> seen;
    for (std::size_t e = 0; e < graph.num_edges(); ++e)
      seen.insert(graph.edge(e).data_qubit);
    EXPECT_EQ(static_cast<int>(seen.size()), lattice.num_data_qubits());
    // Edge index equals data-qubit index (relied upon by logical_flip).
    for (std::size_t e = 0; e < graph.num_edges(); ++e)
      EXPECT_EQ(graph.edge(e).data_qubit, static_cast<int>(e));
  }
}

TEST_P(LatticeTest, BoundaryEdgeCounts) {
  const int d = GetParam();
  const SurfaceCodeLattice lattice(d);
  for (auto kind : {GraphKind::Z, GraphKind::X}) {
    const auto& graph = lattice.graph(kind);
    int boundary_edges = 0;
    for (std::size_t e = 0; e < graph.num_edges(); ++e) {
      const auto& edge = graph.edge(e);
      EXPECT_FALSE(graph.is_boundary(edge.u) && graph.is_boundary(edge.v));
      if (graph.is_boundary(edge.u) || graph.is_boundary(edge.v))
        ++boundary_edges;
    }
    // d boundary edges on each of the two boundaries.
    EXPECT_EQ(boundary_edges, 2 * d);
  }
}

TEST_P(LatticeTest, VertexDegreesAreTwoThreeOrFour) {
  const SurfaceCodeLattice lattice(GetParam());
  for (auto kind : {GraphKind::Z, GraphKind::X}) {
    const auto& graph = lattice.graph(kind);
    for (int v = 0; v < graph.num_real_vertices(); ++v) {
      const auto deg = graph.incident(v).size();
      EXPECT_GE(deg, 2u);
      EXPECT_LE(deg, 4u);
    }
  }
}

TEST_P(LatticeTest, LogicalOperatorConnectsBoundaries) {
  const int d = GetParam();
  const SurfaceCodeLattice lattice(d);
  for (auto kind : {GraphKind::Z, GraphKind::X}) {
    const auto chain = lattice.logical_operator(kind);
    EXPECT_EQ(static_cast<int>(chain.size()), d);
    const auto& graph = lattice.graph(kind);
    int boundary_touches = 0;
    for (int q : chain) {
      const auto& edge = graph.edge(static_cast<std::size_t>(q));
      if (graph.is_boundary(edge.u) || graph.is_boundary(edge.v))
        ++boundary_touches;
    }
    EXPECT_EQ(boundary_touches, 2);  // first and last qubit of the chain
  }
}

TEST_P(LatticeTest, LogicalCutHasDistanceManyQubits) {
  const int d = GetParam();
  const SurfaceCodeLattice lattice(d);
  EXPECT_EQ(static_cast<int>(lattice.logical_cut(GraphKind::Z).size()), d);
  EXPECT_EQ(static_cast<int>(lattice.logical_cut(GraphKind::X).size()), d);
}

TEST_P(LatticeTest, CoreCrossSize) {
  const int d = GetParam();
  const SurfaceCodeLattice lattice(d);
  const auto part = make_core_support(lattice);
  EXPECT_EQ(part.num_core, 2 * d - 1);
  EXPECT_EQ(part.num_core + part.num_support, lattice.num_data_qubits());
}

TEST_P(LatticeTest, CoreBlocksEveryLogicalCut) {
  // The Core must intersect every straight logical chain: remove Core
  // qubits and check each graph's boundary-to-boundary straight chains all
  // contain at least one Core qubit. (Stronger connectivity statements are
  // covered by the decoder tests.)
  const SurfaceCodeLattice lattice(GetParam());
  const auto part = make_core_support(lattice);
  for (auto kind : {GraphKind::Z, GraphKind::X}) {
    const auto chain = lattice.logical_operator(kind);
    int core_hits = 0;
    for (int q : chain) core_hits += part.is_core[static_cast<std::size_t>(q)];
    EXPECT_GE(core_hits, 1);
  }
}

TEST_P(LatticeTest, DataIndexRoundTrip) {
  const SurfaceCodeLattice lattice(GetParam());
  for (int q = 0; q < lattice.num_data_qubits(); ++q)
    EXPECT_EQ(lattice.data_index(lattice.data_coord(q)), q);
  EXPECT_EQ(lattice.data_index({0, 1}), -1);  // measurement site
  EXPECT_EQ(lattice.data_index({-1, 0}), -1);
}

INSTANTIATE_TEST_SUITE_P(Distances, LatticeTest,
                         ::testing::Values(2, 3, 4, 5, 7, 9, 11));

TEST(Lattice, RejectsTooSmallDistance) {
  EXPECT_THROW(SurfaceCodeLattice(1), std::invalid_argument);
  EXPECT_THROW(SurfaceCodeLattice(0), std::invalid_argument);
}

TEST(Lattice, PaperExampleDistance4) {
  // Paper Sec. V-A example: 25 data qubits, 7 of them in the Core.
  const SurfaceCodeLattice lattice(4);
  EXPECT_EQ(lattice.num_data_qubits(), 25);
  EXPECT_EQ(make_core_support(lattice).num_core, 7);
}

TEST(Lattice, PaperFig2Distance3) {
  // Fig. 2(a): 13 data qubits, 6 measure-Z, 6 measure-X.
  const SurfaceCodeLattice lattice(3);
  EXPECT_EQ(lattice.num_data_qubits(), 13);
  EXPECT_EQ(lattice.num_measure_z(), 6);
  EXPECT_EQ(lattice.num_measure_x(), 6);
}

}  // namespace
}  // namespace surfnet::qec
