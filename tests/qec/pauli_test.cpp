#include "qec/pauli.h"

#include <gtest/gtest.h>

namespace surfnet::qec {
namespace {

TEST(Pauli, IdentityIsNeutral) {
  for (auto p : {Pauli::I, Pauli::X, Pauli::Y, Pauli::Z}) {
    EXPECT_EQ(p * Pauli::I, p);
    EXPECT_EQ(Pauli::I * p, p);
  }
}

TEST(Pauli, SelfInverse) {
  for (auto p : {Pauli::I, Pauli::X, Pauli::Y, Pauli::Z})
    EXPECT_EQ(p * p, Pauli::I);
}

TEST(Pauli, GroupTable) {
  EXPECT_EQ(Pauli::X * Pauli::Z, Pauli::Y);
  EXPECT_EQ(Pauli::Z * Pauli::X, Pauli::Y);
  EXPECT_EQ(Pauli::X * Pauli::Y, Pauli::Z);
  EXPECT_EQ(Pauli::Y * Pauli::Z, Pauli::X);
}

TEST(Pauli, Components) {
  EXPECT_FALSE(has_x(Pauli::I));
  EXPECT_FALSE(has_z(Pauli::I));
  EXPECT_TRUE(has_x(Pauli::X));
  EXPECT_FALSE(has_z(Pauli::X));
  EXPECT_FALSE(has_x(Pauli::Z));
  EXPECT_TRUE(has_z(Pauli::Z));
  EXPECT_TRUE(has_x(Pauli::Y));
  EXPECT_TRUE(has_z(Pauli::Y));
}

TEST(Pauli, MakePauliRoundTrip) {
  for (bool x : {false, true})
    for (bool z : {false, true}) {
      const Pauli p = make_pauli(x, z);
      EXPECT_EQ(has_x(p), x);
      EXPECT_EQ(has_z(p), z);
    }
}

TEST(Pauli, ToString) {
  EXPECT_EQ(to_string(Pauli::I), "I");
  EXPECT_EQ(to_string(Pauli::X), "X");
  EXPECT_EQ(to_string(Pauli::Y), "Y");
  EXPECT_EQ(to_string(Pauli::Z), "Z");
}

}  // namespace
}  // namespace surfnet::qec
