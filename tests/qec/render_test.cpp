#include "qec/render.h"

#include <gtest/gtest.h>

#include "qec/lattice.h"
#include "qec/rotated_lattice.h"

namespace surfnet::qec {
namespace {

int count_char(const std::string& s, char ch) {
  int n = 0;
  for (char c : s)
    if (c == ch) ++n;
  return n;
}

TEST(Render, LatticeShowsAllQubitsAndStabilizers) {
  const SurfaceCodeLattice lattice(3);
  const auto art = render_lattice(lattice);
  EXPECT_EQ(count_char(art, 'o'), lattice.num_data_qubits());
  EXPECT_EQ(count_char(art, 'Z'), lattice.num_measure_z());
  EXPECT_EQ(count_char(art, 'X'), lattice.num_measure_x());
}

TEST(Render, CoreCrossIsMarked) {
  const SurfaceCodeLattice lattice(4);
  const auto art = render_core(lattice);
  EXPECT_EQ(count_char(art, 'C'), 7);  // the paper's 7-qubit Core
  EXPECT_EQ(count_char(art, 'o'), 18);
}

TEST(Render, ErrorsAndSyndromesAppear) {
  const SurfaceCodeLattice lattice(3);
  ErrorSample sample;
  sample.error.assign(static_cast<std::size_t>(lattice.num_data_qubits()),
                      Pauli::I);
  sample.erased.assign(static_cast<std::size_t>(lattice.num_data_qubits()),
                       0);
  const int q = lattice.data_index({1, 1});  // bulk: two Z-syndromes
  sample.error[static_cast<std::size_t>(q)] = Pauli::X;
  sample.erased[0] = 1;
  const auto art = render_errors(lattice, GraphKind::Z, sample);
  EXPECT_EQ(count_char(art, 'X'), 1);
  EXPECT_EQ(count_char(art, '#'), 1);
  EXPECT_EQ(count_char(art, '*'), 2);
}

TEST(Render, CorrectionMarksAppear) {
  const SurfaceCodeLattice lattice(3);
  ErrorSample sample;
  sample.error.assign(static_cast<std::size_t>(lattice.num_data_qubits()),
                      Pauli::I);
  sample.erased.assign(static_cast<std::size_t>(lattice.num_data_qubits()),
                       0);
  std::vector<char> correction(
      static_cast<std::size_t>(lattice.num_data_qubits()), 0);
  correction[3] = 1;
  const auto art =
      render_errors(lattice, GraphKind::Z, sample, &correction);
  EXPECT_EQ(count_char(art, '+'), 1);
}

TEST(Render, RotatedLatticeFallsBackToSyndromeList) {
  const RotatedSurfaceCodeLattice lattice(3);
  ErrorSample sample;
  sample.error.assign(static_cast<std::size_t>(lattice.num_data_qubits()),
                      Pauli::I);
  sample.erased.assign(static_cast<std::size_t>(lattice.num_data_qubits()),
                       0);
  sample.error[4] = Pauli::X;  // central qubit
  const auto art = render_errors(lattice, GraphKind::Z, sample);
  EXPECT_NE(art.find("syndromes:"), std::string::npos);
  EXPECT_EQ(count_char(art, 'X'), 1);
}

}  // namespace
}  // namespace surfnet::qec
