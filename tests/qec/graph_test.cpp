#include "qec/graph.h"

#include <gtest/gtest.h>

namespace surfnet::qec {
namespace {

DecodingGraph triangle_with_boundary() {
  // Vertices 0,1,2 real; 3,4 boundaries. Edges: 0-1, 1-2, 0-3, 2-4.
  return DecodingGraph(3, {3, 4},
                       {{0, 1, 0}, {1, 2, 1}, {0, 3, 2}, {2, 4, 3}});
}

TEST(DecodingGraph, BasicAccessors) {
  const auto g = triangle_with_boundary();
  EXPECT_EQ(g.num_real_vertices(), 3);
  EXPECT_EQ(g.num_vertices(), 5);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_FALSE(g.is_boundary(2));
  EXPECT_TRUE(g.is_boundary(3));
  EXPECT_TRUE(g.is_boundary(4));
  EXPECT_EQ(g.boundary().first, 3);
  EXPECT_EQ(g.boundary().second, 4);
}

TEST(DecodingGraph, IncidenceIsComplete) {
  const auto g = triangle_with_boundary();
  EXPECT_EQ(g.incident(0).size(), 2u);  // edges 0 and 2
  EXPECT_EQ(g.incident(1).size(), 2u);
  EXPECT_EQ(g.incident(3).size(), 1u);
  std::size_t total = 0;
  for (int v = 0; v < g.num_vertices(); ++v) total += g.incident(v).size();
  EXPECT_EQ(total, 2 * g.num_edges());
}

TEST(DecodingGraph, OtherEnd) {
  const auto g = triangle_with_boundary();
  EXPECT_EQ(g.other_end(0, 0), 1);
  EXPECT_EQ(g.other_end(0, 1), 0);
  EXPECT_THROW(g.other_end(0, 2), std::logic_error);
}

TEST(DecodingGraph, RejectsMalformedInput) {
  EXPECT_THROW(DecodingGraph(2, {2, 3}, {{0, 9, 0}}),
               std::invalid_argument);  // endpoint out of range
  EXPECT_THROW(DecodingGraph(2, {2, 3}, {{1, 1, 0}}),
               std::invalid_argument);  // self loop
  EXPECT_THROW(DecodingGraph(-1, {0, 1}, {}), std::invalid_argument);
}

TEST(DecodingGraph, EmptyGraphIsValid) {
  const DecodingGraph g(0, {0, 1}, {});
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.num_vertices(), 2);
}

}  // namespace
}  // namespace surfnet::qec
