// Corruption tests for the lattice/graph validators: build a healthy
// structure, break one invariant at a time through a delegating fake, and
// confirm the matching check fires (ContractViolation under the throwing
// handler). Skipped when the build compiles contracts out.

#include "qec/validate.h"

#include <gtest/gtest.h>

#include <optional>
#include <utility>
#include <vector>

#include "qec/lattice.h"
#include "util/contracts.h"

namespace surfnet::qec {
namespace {

using util::ContractViolation;
using util::ScopedContractHandler;
using util::throw_contract_violation;

#if SURFNET_CHECKS

/// Wraps a healthy lattice and lets one accessor at a time lie.
class CorruptibleLattice final : public CodeLattice {
 public:
  explicit CorruptibleLattice(int distance) : inner_(distance) {}

  int distance() const override { return inner_.distance(); }
  int num_data_qubits() const override { return inner_.num_data_qubits(); }
  const DecodingGraph& graph(GraphKind kind) const override {
    if (graph_override && kind == GraphKind::Z) return *graph_override;
    return inner_.graph(kind);
  }
  const std::vector<int>& logical_cut(GraphKind kind) const override {
    if (cut_override) return *cut_override;
    return inner_.logical_cut(kind);
  }
  std::vector<int> logical_operator(GraphKind kind) const override {
    return inner_.logical_operator(kind);
  }
  Coord data_coord(int q) const override {
    if (duplicate_coords && q == 1) return inner_.data_coord(0);
    return inner_.data_coord(q);
  }
  CoreSupportPartition core_partition() const override {
    if (partition_override) return *partition_override;
    return inner_.core_partition();
  }

  std::optional<DecodingGraph> graph_override;
  std::optional<std::vector<int>> cut_override;
  std::optional<CoreSupportPartition> partition_override;
  bool duplicate_coords = false;

 private:
  SurfaceCodeLattice inner_;
};

TEST(GraphValidator, AcceptsHealthyGraphs) {
  const SurfaceCodeLattice lattice(5);
  ScopedContractHandler scoped(throw_contract_violation);
  EXPECT_NO_THROW(check_graph_invariants(lattice.graph(GraphKind::Z)));
  EXPECT_NO_THROW(check_graph_invariants(lattice.graph(GraphKind::X)));
}

TEST(GraphValidator, RejectsBoundaryToBoundaryEdge) {
  // Constructible (the ctor only range-checks) but invalid for decoding:
  // an edge between the two virtual boundary vertices.
  const DecodingGraph graph(2, BoundaryIds{2, 3},
                            {{0, 2, 0}, {0, 1, 1}, {2, 3, 2}});
  ScopedContractHandler scoped(throw_contract_violation);
  EXPECT_THROW(check_graph_invariants(graph), ContractViolation);
}

TEST(LatticeValidator, AcceptsHealthyLattices) {
  ScopedContractHandler scoped(throw_contract_violation);
  EXPECT_NO_THROW(check_lattice_invariants(SurfaceCodeLattice(3)));
  EXPECT_NO_THROW(check_lattice_invariants(SurfaceCodeLattice(5)));
  EXPECT_NO_THROW(check_lattice_invariants(CorruptibleLattice(5)));
}

TEST(LatticeValidator, RejectsWrongEdgeCount) {
  CorruptibleLattice lattice(3);
  // A structurally fine graph whose edge count disagrees with the
  // lattice's data-qubit count.
  lattice.graph_override.emplace(2, BoundaryIds{2, 3},
                                 std::vector<GraphEdge>{{0, 1, 0}, {1, 2, 1}});
  ScopedContractHandler scoped(throw_contract_violation);
  EXPECT_THROW(check_lattice_invariants(lattice), ContractViolation);
}

TEST(LatticeValidator, RejectsEmptyLogicalCut) {
  CorruptibleLattice lattice(3);
  lattice.cut_override.emplace();
  ScopedContractHandler scoped(throw_contract_violation);
  EXPECT_THROW(check_lattice_invariants(lattice), ContractViolation);
}

TEST(LatticeValidator, RejectsEvenCutCrossing) {
  CorruptibleLattice lattice(3);
  // A cut the representative logical operator never crosses: crossing
  // parity 0 is even, violating the odd-crossing contract.
  std::vector<char> on_operator(
      static_cast<std::size_t>(lattice.num_data_qubits()), 0);
  for (const int q : lattice.logical_operator(GraphKind::Z))
    on_operator[static_cast<std::size_t>(q)] = 1;
  std::vector<int> cut;
  for (int q = 0; q < lattice.num_data_qubits(); ++q)
    if (!on_operator[static_cast<std::size_t>(q)]) {
      cut.push_back(q);
      break;
    }
  ASSERT_FALSE(cut.empty());
  lattice.cut_override = std::move(cut);
  ScopedContractHandler scoped(throw_contract_violation);
  EXPECT_THROW(check_lattice_invariants(lattice), ContractViolation);
}

TEST(LatticeValidator, RejectsDuplicateCoordinates) {
  CorruptibleLattice lattice(3);
  lattice.duplicate_coords = true;
  ScopedContractHandler scoped(throw_contract_violation);
  EXPECT_THROW(check_lattice_invariants(lattice), ContractViolation);
}

TEST(LatticeValidator, RejectsInconsistentCorePartition) {
  CorruptibleLattice lattice(3);
  CoreSupportPartition part = lattice.core_partition();
  part.num_core += 1;  // mask no longer matches the claimed count
  lattice.partition_override = std::move(part);
  ScopedContractHandler scoped(throw_contract_violation);
  EXPECT_THROW(check_lattice_invariants(lattice), ContractViolation);
}

#else  // !SURFNET_CHECKS

TEST(LatticeValidator, SkippedWithoutChecks) {
  GTEST_SKIP() << "SURFNET_CHECKS is off; validators compile to no-ops";
}

#endif  // SURFNET_CHECKS

}  // namespace
}  // namespace surfnet::qec
