#include "qec/rotated_lattice.h"

#include <gtest/gtest.h>

#include <set>

#include "decoder/code_trial.h"
#include "decoder/surfnet_decoder.h"
#include "decoder/union_find.h"
#include "qec/core_support.h"
#include "qec/error_model.h"
#include "qec/logical.h"
#include "qec/syndrome.h"
#include "util/rng.h"

namespace surfnet::qec {
namespace {

class RotatedLatticeTest : public ::testing::TestWithParam<int> {};

TEST_P(RotatedLatticeTest, QubitAndStabilizerCounts) {
  const int d = GetParam();
  const RotatedSurfaceCodeLattice lattice(d);
  EXPECT_EQ(lattice.num_data_qubits(), d * d);
  // (d^2 - 1) / 2 stabilizers of each type.
  EXPECT_EQ(lattice.num_stabilizers(GraphKind::Z), (d * d - 1) / 2);
  EXPECT_EQ(lattice.num_stabilizers(GraphKind::X), (d * d - 1) / 2);
}

TEST_P(RotatedLatticeTest, EveryDataQubitIsOneEdgeInEachGraph) {
  const RotatedSurfaceCodeLattice lattice(GetParam());
  for (auto kind : {GraphKind::Z, GraphKind::X}) {
    const auto& graph = lattice.graph(kind);
    ASSERT_EQ(static_cast<int>(graph.num_edges()), lattice.num_data_qubits());
    for (std::size_t e = 0; e < graph.num_edges(); ++e)
      EXPECT_EQ(graph.edge(e).data_qubit, static_cast<int>(e));
  }
}

TEST_P(RotatedLatticeTest, StabilizerWeightsAreTwoToFour) {
  const RotatedSurfaceCodeLattice lattice(GetParam());
  for (auto kind : {GraphKind::Z, GraphKind::X}) {
    const auto& graph = lattice.graph(kind);
    for (int v = 0; v < graph.num_real_vertices(); ++v) {
      const auto weight = graph.incident(v).size();
      EXPECT_GE(weight, 2u);
      EXPECT_LE(weight, 4u);
    }
  }
}

TEST_P(RotatedLatticeTest, LogicalOperatorHasEmptySyndromeAndFlipsCut) {
  const int d = GetParam();
  const RotatedSurfaceCodeLattice lattice(d);
  for (auto kind : {GraphKind::Z, GraphKind::X}) {
    std::vector<Pauli> error(
        static_cast<std::size_t>(lattice.num_data_qubits()), Pauli::I);
    const Pauli op = (kind == GraphKind::Z) ? Pauli::X : Pauli::Z;
    const auto chain = lattice.logical_operator(kind);
    EXPECT_EQ(static_cast<int>(chain.size()), d);
    for (int q : chain) error[static_cast<std::size_t>(q)] = op;
    const auto flips = edge_flips(lattice, kind, error);
    EXPECT_TRUE(syndrome_vertices(lattice.graph(kind), flips).empty())
        << "d=" << d;
    EXPECT_TRUE(logical_flip(lattice, kind, flips)) << "d=" << d;
  }
}

TEST_P(RotatedLatticeTest, SingleErrorsAreCorrectable) {
  const RotatedSurfaceCodeLattice lattice(GetParam());
  const decoder::SurfNetDecoder decoder;
  const auto prior = std::vector<double>(
      static_cast<std::size_t>(lattice.num_data_qubits()), 0.01);
  for (int q = 0; q < lattice.num_data_qubits(); ++q) {
    ErrorSample sample;
    sample.error.assign(static_cast<std::size_t>(lattice.num_data_qubits()),
                        Pauli::I);
    sample.erased.assign(static_cast<std::size_t>(lattice.num_data_qubits()),
                         0);
    sample.error[static_cast<std::size_t>(q)] = Pauli::Y;
    const auto outcome =
        decoder::decode_sample(lattice, sample, prior, decoder);
    EXPECT_TRUE(outcome.success()) << "qubit " << q;
  }
}

TEST_P(RotatedLatticeTest, CoreCrossSize) {
  const int d = GetParam();
  const RotatedSurfaceCodeLattice lattice(d);
  const auto part = make_core_support(lattice);
  EXPECT_EQ(part.num_core, 2 * d - 1);
  EXPECT_EQ(part.num_support, d * d - (2 * d - 1));
}

TEST_P(RotatedLatticeTest, DecodersAreValidOnRandomNoise) {
  const RotatedSurfaceCodeLattice lattice(GetParam());
  const auto profile =
      NoiseProfile::uniform(lattice.num_data_qubits(), 0.08, 0.15);
  const decoder::SurfNetDecoder surfnet;
  const decoder::UnionFindDecoder union_find;
  util::Rng rng(31 + static_cast<unsigned>(GetParam()));
  for (int t = 0; t < 150; ++t) {
    for (const decoder::Decoder* dec :
         {static_cast<const decoder::Decoder*>(&surfnet),
          static_cast<const decoder::Decoder*>(&union_find)}) {
      const auto result = decoder::run_code_trial(
          lattice, profile, PauliChannel::IndependentXZ, *dec, rng);
      EXPECT_TRUE(result.z_graph.valid);
      EXPECT_TRUE(result.x_graph.valid);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Distances, RotatedLatticeTest,
                         ::testing::Values(3, 5, 7, 9));

TEST(RotatedLattice, RejectsEvenOrTinyDistance) {
  EXPECT_THROW(RotatedSurfaceCodeLattice(2), std::invalid_argument);
  EXPECT_THROW(RotatedSurfaceCodeLattice(4), std::invalid_argument);
  EXPECT_THROW(RotatedSurfaceCodeLattice(1), std::invalid_argument);
}

TEST(RotatedLattice, FewerQubitsThanUnrotatedAtSameDistance) {
  // The headline of the rotated layout: d^2 vs d^2 + (d-1)^2.
  const RotatedSurfaceCodeLattice rotated(5);
  EXPECT_EQ(rotated.num_data_qubits(), 25);  // vs 41 unrotated
}

TEST(RotatedLattice, DistanceScalingSuppressesErrors) {
  const decoder::SurfNetDecoder decoder;
  double rates[2];
  int i = 0;
  for (int d : {3, 7}) {
    const RotatedSurfaceCodeLattice lattice(d);
    const auto profile =
        NoiseProfile::uniform(lattice.num_data_qubits(), 0.03, 0.05);
    util::Rng rng(77);
    rates[i++] = decoder::logical_error_rate(
        lattice, profile, PauliChannel::IndependentXZ, decoder, 1500, rng);
  }
  EXPECT_LT(rates[1], rates[0] + 0.01);
}

}  // namespace
}  // namespace surfnet::qec
