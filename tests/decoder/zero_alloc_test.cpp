// Verifies the headline perf property: once a trial workspace is warm, the
// sample → decode → evaluate pipeline performs ZERO heap allocations per
// trial. Global operator new/delete are overridden with a counting shim;
// the counter is armed only after a warm-up pass over the SAME
// counter-seeded trial sequence, so the replayed trials place identical
// demands on every buffer.
//
// This test lives in its own binary: the replacement operators are global
// and would skew allocation behaviour of unrelated tests.

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include <gtest/gtest.h>

#include "decoder/code_trial.h"
#include "decoder/surfnet_decoder.h"
#include "decoder/trial_runner.h"
#include "decoder/union_find.h"
#include "qec/core_support.h"
#include "qec/lattice.h"

namespace {

std::atomic<bool> g_armed{false};
std::atomic<std::int64_t> g_allocations{0};

void count_allocation() {
  if (g_armed.load(std::memory_order_relaxed))
    g_allocations.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

// GCC pairs the replaced operator delete's std::free with the standard
// operator new and reports -Wmismatched-new-delete; the pairing is in fact
// consistent (both operators are replaced malloc/free shims).
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t size) {
  count_allocation();
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  count_allocation();
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace surfnet::decoder {
namespace {

/// Run trials [0, n) of the counter-seeded stream through one workspace.
void run_stream(const qec::CodeLattice& lattice,
                const qec::NoiseProfile& profile,
                const std::vector<double>& prior, const Decoder& decoder,
                std::uint64_t base_seed, int n, CodeTrialWorkspace& ws,
                std::int64_t* failures) {
  for (int t = 0; t < n; ++t) {
    util::Rng rng(trial_seed(base_seed, static_cast<std::uint64_t>(t)));
    qec::sample_errors(profile, qec::PauliChannel::IndependentXZ, rng,
                       ws.sample);
    const auto result = decode_sample(lattice, ws.sample, prior, decoder, ws);
    if (failures && !result.success()) ++*failures;
  }
}

void expect_zero_steady_state_allocations(const Decoder& decoder) {
  const qec::SurfaceCodeLattice lattice(9);
  const auto partition = qec::make_core_support(lattice);
  const auto profile = qec::NoiseProfile::core_support(partition, 0.07, 0.15);
  const auto prior =
      profile.component_error_prob(qec::PauliChannel::IndependentXZ);
  const std::uint64_t seed = 20240607;
  const int trials = 200;

  CodeTrialWorkspace ws;
  // Warm-up: grow every buffer to the demands of the exact trial sequence.
  run_stream(lattice, profile, prior, decoder, seed, trials, ws, nullptr);

  // Replay the identical sequence with the counter armed.
  std::int64_t failures = 0;
  g_allocations.store(0);
  g_armed.store(true);
  run_stream(lattice, profile, prior, decoder, seed, trials, ws, &failures);
  g_armed.store(false);

  EXPECT_EQ(g_allocations.load(), 0)
      << decoder.name() << ": steady-state trials allocated";
  // Sanity: the replay did real decoding work at these noise rates.
  EXPECT_GT(failures, 0);
  EXPECT_LT(failures, trials);
}

TEST(ZeroAlloc, UnionFindSteadyState) {
  expect_zero_steady_state_allocations(UnionFindDecoder());
}

TEST(ZeroAlloc, SurfNetDecoderSteadyState) {
  expect_zero_steady_state_allocations(SurfNetDecoder());
}

TEST(ZeroAlloc, CountingShimIsLive) {
  // Guard against the shim silently not being linked in: an armed heap
  // allocation must be observed.
  g_allocations.store(0);
  g_armed.store(true);
  auto* p = new std::vector<int>(1024);
  g_armed.store(false);
  delete p;
  EXPECT_GT(g_allocations.load(), 0);
}

}  // namespace
}  // namespace surfnet::decoder
