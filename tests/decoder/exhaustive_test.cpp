// Differential tests against the exact maximum-likelihood decoder
// (decoder/exhaustive.h). On codes small enough to enumerate (d <= 3) the
// ML decoder is the accuracy ceiling: no approximate decoder may beat it
// on matched error streams, and on pure erasure noise the peeling decoder
// must match it exactly (Delfosse-Zemor). These sweeps run 1000 seeded
// trials each and are labeled `extended` in CTest.

#include "decoder/exhaustive.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "decoder/code_trial.h"
#include "decoder/erasure_decoder.h"
#include "decoder/mwpm.h"
#include "decoder/surfnet_decoder.h"
#include "decoder/union_find.h"
#include "qec/code_lattice.h"
#include "qec/error_model.h"
#include "qec/logical.h"
#include "qec/syndrome.h"
#include "util/contracts.h"
#include "util/rng.h"

namespace surfnet::decoder {
namespace {

using qec::GraphKind;
using qec::SurfaceCodeLattice;

TEST(ExhaustiveMl, ConstructionRejectsUnenumerableCodes) {
  // Oversized codes are a contract FATAL, not a catchable domain error:
  // silently mis-decoding (or quietly truncating the enumeration) would
  // corrupt every study built on top. The test handler turns the
  // violation into an exception carrying the diagnostic.
  util::ScopedContractHandler handler(util::throw_contract_violation);
  const SurfaceCodeLattice d4(4);  // 25 edges per graph: 2^25 is too much
  EXPECT_THROW(ExhaustiveMLDecoder{d4}, util::ContractViolation);
  try {
    const ExhaustiveMLDecoder ml(d4);
    FAIL() << "d=4 construction must trip the enumeration cap";
  } catch (const util::ContractViolation& violation) {
    // The diagnostic must steer callers to the linear-time exact
    // alternative instead of leaving them at a bare assertion.
    EXPECT_NE(std::string(violation.what()).find("erasure_ml"),
              std::string::npos)
        << violation.what();
  }
  const SurfaceCodeLattice d3(3);  // 13 edges: enumerable
  EXPECT_NO_THROW(ExhaustiveMLDecoder{d3});
}

TEST(ExhaustiveMl, RejectsForeignGraphs) {
  const SurfaceCodeLattice lattice(3);
  const SurfaceCodeLattice other(3);
  DecodeInput input;
  input.graph = &other.graph(GraphKind::Z);
  input.syndrome.assign(
      static_cast<std::size_t>(input.graph->num_real_vertices()), 0);
  input.erased.assign(input.graph->num_edges(), 0);
  input.error_prob.assign(input.graph->num_edges(), 0.05);
  EXPECT_THROW(decode_ml(lattice, GraphKind::Z, input),
               std::invalid_argument);
}

TEST(ExhaustiveMl, EmptySyndromeDecodesToIdentity) {
  const SurfaceCodeLattice lattice(3);
  const auto& graph = lattice.graph(GraphKind::Z);
  DecodeInput input;
  input.graph = &graph;
  input.syndrome.assign(static_cast<std::size_t>(graph.num_real_vertices()),
                        0);
  input.erased.assign(graph.num_edges(), 0);
  input.error_prob.assign(graph.num_edges(), 0.05);
  const auto decision = decode_ml(lattice, GraphKind::Z, input);
  EXPECT_EQ(decision.chosen_class, 0);
  for (char c : decision.correction) EXPECT_EQ(c, 0);
  // The trivial class carries almost all probability at 5% noise.
  EXPECT_GT(decision.class_prob[0], decision.class_prob[1]);
}

TEST(ExhaustiveMl, DecisionInvariantsOnRandomNoise) {
  // Structural checks of every decision: the representative correction
  // reproduces the syndrome, lies in the chosen class, and the chosen
  // class carries at least half the total probability mass.
  const SurfaceCodeLattice lattice(3);
  const auto profile =
      qec::NoiseProfile::uniform(lattice.num_data_qubits(), 0.10, 0.15);
  const auto prior =
      profile.component_error_prob(qec::PauliChannel::IndependentXZ);
  util::Rng rng(4242);
  for (int t = 0; t < 300; ++t) {
    const auto sample =
        qec::sample_errors(profile, qec::PauliChannel::IndependentXZ, rng);
    for (const auto kind : {GraphKind::Z, GraphKind::X}) {
      const auto input = make_decode_input(lattice, kind, sample, prior);
      const auto decision = decode_ml(lattice, kind, input);
      const auto flips = qec::edge_flips(lattice, kind, sample.error);
      EXPECT_TRUE(qec::correction_valid(lattice.graph(kind), flips,
                                        decision.correction))
          << "trial " << t;
      EXPECT_EQ(qec::logical_flip(lattice, kind, decision.correction),
                decision.chosen_class == 1)
          << "trial " << t;
      const double total =
          decision.class_prob[0] + decision.class_prob[1];
      ASSERT_GT(total, 0.0);
      EXPECT_GE(decision.class_prob[decision.chosen_class], total / 2.0)
          << "trial " << t;
    }
  }
}

TEST(ExhaustiveMl, ApproximateDecodersNeverBeatMl) {
  // 1000 matched error streams at d = 3: the exact class-ML decoder's
  // success count is an upper bound for SurfNet, Union-Find, and MWPM.
  const SurfaceCodeLattice lattice(3);
  const ExhaustiveMLDecoder ml(lattice);
  const SurfNetDecoder surfnet;
  const UnionFindDecoder union_find;
  const MwpmDecoder mwpm;
  const std::vector<std::pair<std::string, const Decoder*>> rivals{
      {"SurfNetDecoder", &surfnet},
      {"UnionFind", &union_find},
      {"MWPM", &mwpm}};

  const auto profile =
      qec::NoiseProfile::uniform(lattice.num_data_qubits(), 0.08, 0.10);
  const auto prior =
      profile.component_error_prob(qec::PauliChannel::IndependentXZ);

  const int trials = 1000;
  util::Rng rng(12021);
  int ml_successes = 0;
  std::vector<int> rival_successes(rivals.size(), 0);
  for (int t = 0; t < trials; ++t) {
    const auto sample =
        qec::sample_errors(profile, qec::PauliChannel::IndependentXZ, rng);
    const auto ml_result = decode_sample(lattice, sample, prior, ml);
    ASSERT_TRUE(ml_result.z_graph.valid && ml_result.x_graph.valid)
        << "trial " << t;
    if (ml_result.success()) ++ml_successes;
    for (std::size_t r = 0; r < rivals.size(); ++r)
      if (decode_sample(lattice, sample, prior, *rivals[r].second).success())
        ++rival_successes[r];
  }
  for (std::size_t r = 0; r < rivals.size(); ++r)
    EXPECT_GE(ml_successes, rival_successes[r])
        << rivals[r].first << " beat exact ML over " << trials
        << " matched trials";
}

TEST(ExhaustiveMl, PeelingMatchesMlOnPureErasure) {
  // Delfosse-Zemor: on the erasure channel, peeling is maximum-likelihood.
  // Over 1000 seeded erasure-only samples, the class peeling picks must
  // carry at least as much probability as the other class (ties allowed:
  // when the erasure supports a logical operator both classes are
  // equiprobable and any choice is ML).
  const SurfaceCodeLattice lattice(3);
  const ErasureDecoder peeling;
  const auto profile =
      qec::NoiseProfile::uniform(lattice.num_data_qubits(), 0.0, 0.30);
  const auto prior =
      profile.component_error_prob(qec::PauliChannel::IndependentXZ);

  util::Rng rng(777);
  int ties = 0;
  for (int t = 0; t < 1000; ++t) {
    const auto sample =
        qec::sample_errors(profile, qec::PauliChannel::IndependentXZ, rng);
    for (const auto kind : {GraphKind::Z, GraphKind::X}) {
      const auto input = make_decode_input(lattice, kind, sample, prior);
      const auto peel = peeling.decode(input);
      const auto flips = qec::edge_flips(lattice, kind, sample.error);
      ASSERT_TRUE(
          qec::correction_valid(lattice.graph(kind), flips, peel))
          << "trial " << t;

      const auto decision = decode_ml(lattice, kind, input);
      const int peel_class =
          qec::logical_flip(lattice, kind, peel) ? 1 : 0;
      EXPECT_GE(decision.class_prob[peel_class],
                decision.class_prob[1 - peel_class])
          << "trial " << t << ": peeling picked the less likely class";
      if (decision.class_prob[peel_class] >
          decision.class_prob[1 - peel_class])
        EXPECT_EQ(decision.chosen_class, peel_class) << "trial " << t;
      else
        ++ties;
    }
  }
  // The 30% erasure rate must actually exercise the tie branch, or the
  // "ties allowed" clause above tests nothing.
  EXPECT_GT(ties, 0);
}

TEST(ExhaustiveMl, AdapterResolvesBothGraphs) {
  // The Decoder-interface adapter must route each graph of a code trial to
  // the right enumeration (wrong-graph resolution would throw or produce
  // invalid corrections).
  const SurfaceCodeLattice lattice(2);
  const ExhaustiveMLDecoder ml(lattice);
  EXPECT_EQ(ml.name(), "ExhaustiveML");
  const auto profile =
      qec::NoiseProfile::uniform(lattice.num_data_qubits(), 0.12, 0.20);
  util::Rng rng(99);
  for (int t = 0; t < 200; ++t) {
    const auto result = run_code_trial(
        lattice, profile, qec::PauliChannel::IndependentXZ, ml, rng);
    EXPECT_TRUE(result.z_graph.valid) << "trial " << t;
    EXPECT_TRUE(result.x_graph.valid) << "trial " << t;
  }
}

}  // namespace
}  // namespace surfnet::decoder
