// Tests of the parallel trial runner: thread-count invariance of the
// counter-based trial streams, agreement with a hand-rolled serial loop,
// and bitwise equivalence of the workspace decode path against the
// allocating one under dirty, reused workspaces.

#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "decoder/code_trial.h"
#include "decoder/erasure_decoder.h"
#include "decoder/mwpm.h"
#include "decoder/surfnet_decoder.h"
#include "decoder/trial_runner.h"
#include "decoder/union_find.h"
#include "decoder/workspace.h"
#include "qec/core_support.h"
#include "qec/lattice.h"
#include "qec/rotated_lattice.h"
#include "util/stats.h"

namespace surfnet::decoder {
namespace {

TEST(ResolveThreads, ZeroAndNegativeMeanHardwareConcurrency) {
  EXPECT_GE(resolve_threads(0), 1);
  EXPECT_GE(resolve_threads(-3), 1);
  EXPECT_EQ(resolve_threads(1), 1);
  EXPECT_EQ(resolve_threads(6), 6);
}

TEST(TrialSeed, DependsOnBaseAndCounter) {
  EXPECT_NE(trial_seed(1, 0), trial_seed(1, 1));
  EXPECT_NE(trial_seed(1, 0), trial_seed(2, 0));
  // Counter-based: the mapping is a pure function of (base, trial).
  EXPECT_EQ(trial_seed(99, 12345), trial_seed(99, 12345));
}

TEST(RunTrials, CountsExactlyAndInvariantToThreadCount) {
  // A synthetic trial function with a deterministic outcome per index:
  // counts must match the closed form for every thread count.
  const std::int64_t trials = 1000;
  const auto make_worker = []() -> TrialFn {
    return [](std::int64_t t, util::Rng&) {
      TrialOutcome outcome;
      outcome.failure = (t % 3 == 0);
      outcome.invalid = (t % 10 == 0);
      outcome.valid_but_wrong = outcome.failure && !outcome.invalid;
      return outcome;
    };
  };
  for (int threads : {1, 2, 3, 8}) {
    TrialRunnerOptions opts;
    opts.threads = threads;
    const auto report = run_trials(trials, opts, make_worker);
    EXPECT_EQ(report.trials, trials);
    EXPECT_EQ(report.failures, 334) << "threads=" << threads;
    EXPECT_EQ(report.invalid, 100) << "threads=" << threads;
    EXPECT_EQ(report.valid_but_wrong, 300) << "threads=" << threads;
    EXPECT_EQ(report.threads, threads);
  }
}

TEST(RunTrials, PerTrialRngIsCounterSeeded) {
  // Every worker must receive an rng seeded with trial_seed(base, t),
  // regardless of which thread picks the trial up.
  const std::uint64_t base = 777;
  const std::int64_t trials = 257;  // not a multiple of the chunk size
  for (int threads : {1, 4}) {
    TrialRunnerOptions opts;
    opts.threads = threads;
    opts.seed = base;
    const auto report = run_trials(trials, opts, [&]() -> TrialFn {
      return [&](std::int64_t t, util::Rng& rng) {
        util::Rng expect(trial_seed(base, static_cast<std::uint64_t>(t)));
        TrialOutcome outcome;
        outcome.failure = (rng() != expect());
        return outcome;
      };
    });
    EXPECT_EQ(report.failures, 0) << "threads=" << threads;
  }
}

TEST(LogicalErrorTrials, ThreadCountInvariant) {
  // The acceptance property: identical failure counts for 1, 2, and 8
  // threads on a real Fig. 8 style workload.
  const qec::SurfaceCodeLattice lattice(7);
  const auto partition = qec::make_core_support(lattice);
  const auto profile = qec::NoiseProfile::core_support(partition, 0.07, 0.15);
  const SurfNetDecoder decoder;

  TrialRunnerOptions opts;
  opts.seed = 2024;
  opts.threads = 1;
  const auto ref = run_logical_error_trials(
      lattice, profile, qec::PauliChannel::IndependentXZ, decoder, 600, opts);
  EXPECT_EQ(ref.trials, 600);
  for (int threads : {2, 8}) {
    opts.threads = threads;
    const auto report = run_logical_error_trials(
        lattice, profile, qec::PauliChannel::IndependentXZ, decoder, 600,
        opts);
    EXPECT_EQ(report.failures, ref.failures) << "threads=" << threads;
    EXPECT_EQ(report.invalid, ref.invalid) << "threads=" << threads;
    EXPECT_EQ(report.valid_but_wrong, ref.valid_but_wrong)
        << "threads=" << threads;
  }
}

TEST(LogicalErrorTrials, MatchesHandRolledSerialLoop) {
  // The runner is sugar over: for each trial, seed an rng from the counter
  // stream and run one code trial. A hand-rolled loop must reproduce the
  // failure count exactly.
  const qec::SurfaceCodeLattice lattice(5);
  const auto profile =
      qec::NoiseProfile::uniform(lattice.num_data_qubits(), 0.06, 0.15);
  const UnionFindDecoder decoder;
  const std::int64_t trials = 400;

  TrialRunnerOptions opts;
  opts.seed = 4242;
  opts.threads = 2;
  const auto report = run_logical_error_trials(
      lattice, profile, qec::PauliChannel::IndependentXZ, decoder, trials,
      opts);

  std::int64_t failures = 0;
  for (std::int64_t t = 0; t < trials; ++t) {
    util::Rng rng(trial_seed(opts.seed, static_cast<std::uint64_t>(t)));
    const auto result = run_code_trial(
        lattice, profile, qec::PauliChannel::IndependentXZ, decoder, rng);
    if (!result.success()) ++failures;
  }
  EXPECT_EQ(report.failures, failures);
}

TEST(TrialReport, WilsonIntervalMatchesStatsHelper) {
  TrialReport report;
  report.trials = 1000;
  report.failures = 87;
  EXPECT_DOUBLE_EQ(report.error_rate(), 0.087);
  util::Proportion p;
  p.add_many(87, 1000);
  EXPECT_DOUBLE_EQ(report.error_rate_ci95(), p.ci95());
  EXPECT_GT(report.error_rate_ci95(), 0.0);
}

// ---------------------------------------------------------------------------
// Workspace equivalence: decode(input) vs decode(input, ws) with a dirty,
// reused workspace must agree bitwise on every decoder and both graphs.

void expect_workspace_equivalence(const qec::CodeLattice& lattice,
                                  const Decoder& decoder,
                                  const qec::NoiseProfile& profile,
                                  std::uint64_t seed) {
  const auto prior =
      profile.component_error_prob(qec::PauliChannel::IndependentXZ);
  util::Rng rng(seed);
  DecodeWorkspace ws;  // deliberately reused (dirty) across all iterations
  for (int t = 0; t < 100; ++t) {
    const auto sample =
        qec::sample_errors(profile, qec::PauliChannel::IndependentXZ, rng);
    for (const auto kind : {qec::GraphKind::Z, qec::GraphKind::X}) {
      const auto input = make_decode_input(lattice, kind, sample, prior);
      const auto fresh = decoder.decode(input);
      const auto& reused = decoder.decode(input, ws);
      ASSERT_EQ(fresh, reused)
          << decoder.name() << " trial " << t << " kind "
          << (kind == qec::GraphKind::Z ? "Z" : "X");
    }
  }
}

TEST(WorkspaceEquivalence, UnionFindPlanarAndRotated) {
  const UnionFindDecoder decoder;
  const qec::SurfaceCodeLattice planar(7);
  const qec::RotatedSurfaceCodeLattice rotated(7);
  const auto noise = [](const qec::CodeLattice& lattice) {
    return qec::NoiseProfile::uniform(lattice.num_data_qubits(), 0.08, 0.15);
  };
  expect_workspace_equivalence(planar, decoder, noise(planar), 11);
  expect_workspace_equivalence(rotated, decoder, noise(rotated), 12);
}

TEST(WorkspaceEquivalence, SurfNetDecoderPlanarAndRotated) {
  const SurfNetDecoder decoder;
  const qec::SurfaceCodeLattice planar(7);
  const qec::RotatedSurfaceCodeLattice rotated(7);
  const auto split = qec::make_core_support(planar);
  expect_workspace_equivalence(
      planar, decoder, qec::NoiseProfile::core_support(split, 0.08, 0.15),
      21);
  expect_workspace_equivalence(
      rotated, decoder,
      qec::NoiseProfile::uniform(rotated.num_data_qubits(), 0.08, 0.15), 22);
}

TEST(WorkspaceEquivalence, ErasureDecoderOnErasureOnlyNoise) {
  const ErasureDecoder decoder;
  const qec::SurfaceCodeLattice lattice(7);
  expect_workspace_equivalence(
      lattice, decoder,
      qec::NoiseProfile::uniform(lattice.num_data_qubits(), 0.0, 0.3), 31);
}

TEST(WorkspaceEquivalence, DirtyWorkspaceSharedAcrossDecoders) {
  // One workspace alternating between decoders and graph sizes: leftover
  // state from a previous decode must never leak into the next.
  const qec::SurfaceCodeLattice small(5);
  const qec::SurfaceCodeLattice large(9);
  const UnionFindDecoder union_find;
  const SurfNetDecoder surfnet;
  util::Rng rng(41);
  DecodeWorkspace ws;
  for (int t = 0; t < 50; ++t) {
    const auto& lattice = (t % 2 == 0) ? large : small;
    const Decoder& decoder =
        (t % 3 == 0) ? static_cast<const Decoder&>(union_find)
                     : static_cast<const Decoder&>(surfnet);
    const auto profile =
        qec::NoiseProfile::uniform(lattice.num_data_qubits(), 0.08, 0.15);
    const auto prior =
        profile.component_error_prob(qec::PauliChannel::IndependentXZ);
    const auto sample =
        qec::sample_errors(profile, qec::PauliChannel::IndependentXZ, rng);
    const auto input =
        make_decode_input(lattice, qec::GraphKind::Z, sample, prior);
    ASSERT_EQ(decoder.decode(input), decoder.decode(input, ws))
        << decoder.name() << " trial " << t;
  }
}

TEST(WorkspaceEquivalence, MwpmDefaultOverloadForwards) {
  // MwpmDecoder does not override the workspace overload; the base-class
  // default must still produce the allocating result.
  const MwpmDecoder decoder;
  const qec::SurfaceCodeLattice lattice(5);
  const auto profile =
      qec::NoiseProfile::uniform(lattice.num_data_qubits(), 0.06, 0.1);
  expect_workspace_equivalence(lattice, decoder, profile, 51);
}

TEST(DecodeSampleWorkspace, MatchesAllocatingDecodeSample) {
  // The full per-trial pipeline (edge flips, syndromes, decode, evaluate)
  // through a dirty CodeTrialWorkspace must reproduce the allocating path.
  const qec::SurfaceCodeLattice lattice(7);
  const auto partition = qec::make_core_support(lattice);
  const auto profile = qec::NoiseProfile::core_support(partition, 0.07, 0.15);
  const auto prior =
      profile.component_error_prob(qec::PauliChannel::IndependentXZ);
  const SurfNetDecoder decoder;
  util::Rng rng(61);
  CodeTrialWorkspace ws;
  for (int t = 0; t < 100; ++t) {
    const auto sample =
        qec::sample_errors(profile, qec::PauliChannel::IndependentXZ, rng);
    const auto fresh = decode_sample(lattice, sample, prior, decoder);
    const auto reused = decode_sample(lattice, sample, prior, decoder, ws);
    ASSERT_EQ(fresh.z_graph.valid, reused.z_graph.valid) << t;
    ASSERT_EQ(fresh.z_graph.logical, reused.z_graph.logical) << t;
    ASSERT_EQ(fresh.x_graph.valid, reused.x_graph.valid) << t;
    ASSERT_EQ(fresh.x_graph.logical, reused.x_graph.logical) << t;
  }
}

}  // namespace
}  // namespace surfnet::decoder
