// Cross-decoder property tests: every decoder must always emit a correction
// whose syndrome matches the input exactly (validity), for every distance,
// channel, and noise level; at low noise, logical failures must be rare;
// and the MWPM decoder must achieve minimum weight on instances small
// enough to verify by hand.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <tuple>

#include "decoder/code_trial.h"
#include "decoder/erasure_decoder.h"
#include "decoder/mwpm.h"
#include "decoder/surfnet_decoder.h"
#include "decoder/union_find.h"
#include "qec/core_support.h"
#include "qec/syndrome.h"
#include "util/rng.h"

namespace surfnet::decoder {
namespace {

using qec::GraphKind;
using qec::SurfaceCodeLattice;

std::unique_ptr<Decoder> make_decoder(const std::string& name) {
  if (name == "UnionFind") return std::make_unique<UnionFindDecoder>();
  if (name == "SurfNetDecoder") return std::make_unique<SurfNetDecoder>();
  if (name == "MWPM") return std::make_unique<MwpmDecoder>();
  throw std::invalid_argument("unknown decoder " + name);
}

using ValidityParam = std::tuple<std::string, int, double, double>;

class DecoderValidityTest : public ::testing::TestWithParam<ValidityParam> {};

TEST_P(DecoderValidityTest, CorrectionAlwaysReproducesSyndrome) {
  const auto& [name, d, pauli, erasure] = GetParam();
  const auto decoder = make_decoder(name);
  const SurfaceCodeLattice lattice(d);
  const auto profile =
      qec::NoiseProfile::uniform(lattice.num_data_qubits(), pauli, erasure);
  util::Rng rng(static_cast<unsigned>(d * 1000) +
                static_cast<unsigned>(pauli * 100));
  const int trials = 120;
  for (int t = 0; t < trials; ++t) {
    const auto result = run_code_trial(
        lattice, profile, qec::PauliChannel::IndependentXZ, *decoder, rng);
    EXPECT_TRUE(result.z_graph.valid) << name << " d=" << d << " t=" << t;
    EXPECT_TRUE(result.x_graph.valid) << name << " d=" << d << " t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DecoderValidityTest,
    ::testing::Combine(::testing::Values("UnionFind", "SurfNetDecoder",
                                         "MWPM"),
                       ::testing::Values(2, 3, 5, 7),
                       ::testing::Values(0.01, 0.08, 0.20),
                       ::testing::Values(0.0, 0.15, 0.40)));

using LowNoiseParam = std::tuple<std::string, int>;

class DecoderLowNoiseTest : public ::testing::TestWithParam<LowNoiseParam> {};

TEST_P(DecoderLowNoiseTest, LowNoiseMostlySucceeds) {
  const auto& [name, d] = GetParam();
  const auto decoder = make_decoder(name);
  const SurfaceCodeLattice lattice(d);
  const auto profile =
      qec::NoiseProfile::uniform(lattice.num_data_qubits(), 0.01, 0.02);
  util::Rng rng(77);
  const double ler = logical_error_rate(
      lattice, profile, qec::PauliChannel::IndependentXZ, *decoder, 400, rng);
  EXPECT_LT(ler, 0.05) << name << " d=" << d;
}

INSTANTIATE_TEST_SUITE_P(Sweep, DecoderLowNoiseTest,
                         ::testing::Combine(::testing::Values("UnionFind",
                                                              "SurfNetDecoder",
                                                              "MWPM"),
                                            ::testing::Values(3, 5, 7)));

TEST(DecoderScaling, LargerDistanceSuppressesLogicalErrors) {
  // Below threshold, distance 7 must beat distance 3 for every decoder.
  for (const char* name : {"UnionFind", "SurfNetDecoder", "MWPM"}) {
    const auto decoder = make_decoder(name);
    double rates[2];
    int i = 0;
    for (int d : {3, 7}) {
      const SurfaceCodeLattice lattice(d);
      const auto profile =
          qec::NoiseProfile::uniform(lattice.num_data_qubits(), 0.03, 0.05);
      util::Rng rng(5150);
      rates[i++] = logical_error_rate(lattice, profile,
                                      qec::PauliChannel::IndependentXZ,
                                      *decoder, 1500, rng);
    }
    EXPECT_LT(rates[1], rates[0] + 0.01) << name;
  }
}

TEST(Mwpm, CorrectsSingleErrorExactly) {
  const SurfaceCodeLattice lattice(5);
  const MwpmDecoder decoder;
  for (int q = 0; q < lattice.num_data_qubits(); ++q) {
    std::vector<qec::Pauli> error(
        static_cast<std::size_t>(lattice.num_data_qubits()), qec::Pauli::I);
    error[static_cast<std::size_t>(q)] = qec::Pauli::X;
    const auto& graph = lattice.graph(GraphKind::Z);
    DecodeInput input;
    input.graph = &graph;
    const auto flips = qec::edge_flips(lattice, GraphKind::Z, error);
    input.syndrome = qec::syndrome_bitmap(graph, flips);
    input.erased.assign(graph.num_edges(), 0);
    input.error_prob.assign(graph.num_edges(), 0.05);
    const auto correction = decoder.decode(input);
    // With uniform weights a single error is its own unique minimum-weight
    // explanation.
    EXPECT_EQ(correction, flips) << "qubit " << q;
  }
}

TEST(Mwpm, WeightsSteerThePathThroughUnreliableQubits) {
  // Two syndromes two steps apart; one connecting path is made very
  // unreliable (error-prone), so MWPM must route the correction through it.
  const SurfaceCodeLattice lattice(5);
  const auto& graph = lattice.graph(GraphKind::Z);
  // Error on two vertically adjacent qubits sharing measure-Z (2,3):
  // (1,3) and (3,3).
  const int q1 = lattice.data_index({1, 3});
  const int q2 = lattice.data_index({3, 3});
  ASSERT_GE(q1, 0);
  ASSERT_GE(q2, 0);
  std::vector<char> flips(graph.num_edges(), 0);
  flips[static_cast<std::size_t>(q1)] = 1;
  flips[static_cast<std::size_t>(q2)] = 1;

  DecodeInput input;
  input.graph = &graph;
  input.syndrome = qec::syndrome_bitmap(graph, flips);
  input.erased.assign(graph.num_edges(), 0);
  // Reliable everywhere except exactly the true error path.
  input.error_prob.assign(graph.num_edges(), 0.001);
  input.error_prob[static_cast<std::size_t>(q1)] = 0.45;
  input.error_prob[static_cast<std::size_t>(q2)] = 0.45;

  const MwpmDecoder decoder;
  const auto correction = decoder.decode(input);
  EXPECT_EQ(correction, flips);
}

TEST(Mwpm, ErasedPathPreferred) {
  // Same two syndromes, but now steer via erasure flags instead of priors.
  const SurfaceCodeLattice lattice(5);
  const auto& graph = lattice.graph(GraphKind::Z);
  const int q1 = lattice.data_index({1, 3});
  const int q2 = lattice.data_index({3, 3});
  std::vector<char> flips(graph.num_edges(), 0);
  flips[static_cast<std::size_t>(q1)] = 1;
  flips[static_cast<std::size_t>(q2)] = 1;

  DecodeInput input;
  input.graph = &graph;
  input.syndrome = qec::syndrome_bitmap(graph, flips);
  input.erased.assign(graph.num_edges(), 0);
  input.erased[static_cast<std::size_t>(q1)] = 1;
  input.erased[static_cast<std::size_t>(q2)] = 1;
  input.error_prob.assign(graph.num_edges(), 0.01);

  const MwpmDecoder decoder;
  const auto correction = decoder.decode(input);
  EXPECT_EQ(correction, flips);
}

TEST(Mwpm, EmptySyndromeGivesEmptyCorrection) {
  const SurfaceCodeLattice lattice(3);
  const auto& graph = lattice.graph(GraphKind::Z);
  DecodeInput input;
  input.graph = &graph;
  input.syndrome.assign(static_cast<std::size_t>(graph.num_real_vertices()),
                        0);
  input.erased.assign(graph.num_edges(), 0);
  input.error_prob.assign(graph.num_edges(), 0.05);
  const MwpmDecoder decoder;
  for (char c : decoder.decode(input)) EXPECT_EQ(c, 0);
}

TEST(SurfNetDecoder, RejectsNonPositiveStepSize) {
  EXPECT_THROW(SurfNetDecoder(0.0), std::invalid_argument);
  EXPECT_THROW(SurfNetDecoder(-1.0), std::invalid_argument);
}

TEST(SurfNetDecoder, StepSizeDefaultsToTwoThirds) {
  const SurfNetDecoder decoder;
  EXPECT_NEAR(decoder.step_size(), 2.0 / 3.0, 1e-12);
}

TEST(EdgeWeight, MonotoneDecreasingInErrorProbability) {
  EXPECT_GT(edge_weight(0.01), edge_weight(0.1));
  EXPECT_GT(edge_weight(0.1), edge_weight(0.5));
  EXPECT_NEAR(edge_weight(0.5), std::log(2.0), 1e-12);
}

TEST(CodeTrial, SuccessRequiresBothGraphs) {
  CodeTrialResult r;
  r.z_graph = {true, false};
  r.x_graph = {true, true};  // logical error on X-graph
  EXPECT_FALSE(r.success());
  r.x_graph = {true, false};
  EXPECT_TRUE(r.success());
}


TEST(ErasureDecoder, OptimalOnPureErasureNoise) {
  // Erasure-only noise is always decoded validly, and for the erasure
  // channel peeling is maximum-likelihood: below 50% erasure the logical
  // error rate must fall with distance.
  const ErasureDecoder decoder;
  double rates[2];
  int i = 0;
  for (int d : {3, 7}) {
    const SurfaceCodeLattice lattice(d);
    const auto profile =
        qec::NoiseProfile::uniform(lattice.num_data_qubits(), 0.0, 0.25);
    util::Rng rng(313);
    rates[i++] = logical_error_rate(
        lattice, profile, qec::PauliChannel::IndependentXZ, decoder, 2000,
        rng);
  }
  EXPECT_LT(rates[1], rates[0]);
}

TEST(ErasureDecoder, ValidityOnErasureOnlyNoise) {
  const ErasureDecoder decoder;
  const SurfaceCodeLattice lattice(5);
  const auto profile =
      qec::NoiseProfile::uniform(lattice.num_data_qubits(), 0.0, 0.35);
  util::Rng rng(314);
  for (int t = 0; t < 200; ++t) {
    const auto result = run_code_trial(
        lattice, profile, qec::PauliChannel::IndependentXZ, decoder, rng);
    EXPECT_TRUE(result.z_graph.valid);
    EXPECT_TRUE(result.x_graph.valid);
  }
}

TEST(ErasureDecoder, ThrowsOnPauliNoiseOutsideErasures) {
  const ErasureDecoder decoder;
  const SurfaceCodeLattice lattice(5);
  const auto& graph = lattice.graph(qec::GraphKind::Z);
  DecodeInput input;
  input.graph = &graph;
  // A syndrome with no erasures cannot be peeled.
  std::vector<char> flips(graph.num_edges(), 0);
  flips[graph.num_edges() / 2] = 1;
  input.syndrome = qec::syndrome_bitmap(graph, flips);
  input.erased.assign(graph.num_edges(), 0);
  input.error_prob.assign(graph.num_edges(), 0.01);
  EXPECT_THROW(decoder.decode(input), std::logic_error);
}


TEST(DecoderAccuracy, MwpmNeverMuchWorseThanUnionFind) {
  // Exact minimum-weight matching is the accuracy gold standard among the
  // implemented decoders: on matched error streams its logical error rate
  // must not exceed Union-Find's beyond Monte-Carlo noise.
  const SurfaceCodeLattice lattice(7);
  const auto profile =
      qec::NoiseProfile::uniform(lattice.num_data_qubits(), 0.06, 0.10);
  const MwpmDecoder mwpm;
  const UnionFindDecoder union_find;
  util::Rng rng_a(909), rng_b(909);  // identical error streams
  const double ler_mwpm = logical_error_rate(
      lattice, profile, qec::PauliChannel::IndependentXZ, mwpm, 1200, rng_a);
  const double ler_uf = logical_error_rate(
      lattice, profile, qec::PauliChannel::IndependentXZ, union_find, 1200,
      rng_b);
  EXPECT_LE(ler_mwpm, ler_uf + 0.02);
}

TEST(DecoderAccuracy, SurfNetBeatsUnionFindOnSplitNoise) {
  // The headline of Fig. 8: with the Core/Support fidelity split, the
  // prior-aware SurfNet Decoder outperforms the split-blind Union-Find.
  const SurfaceCodeLattice lattice(11);
  const auto partition = qec::make_core_support(lattice);
  const auto profile =
      qec::NoiseProfile::core_support(partition, 0.07, 0.15);
  const SurfNetDecoder surfnet;
  const UnionFindDecoder union_find;
  util::Rng rng_a(911), rng_b(911);
  const double ler_sn = logical_error_rate(
      lattice, profile, qec::PauliChannel::IndependentXZ, surfnet, 4000,
      rng_a);
  const double ler_uf = logical_error_rate(
      lattice, profile, qec::PauliChannel::IndependentXZ, union_find, 4000,
      rng_b);
  EXPECT_LT(ler_sn, ler_uf);
}

TEST(DecoderDeterminism, SameSeedSameOutcome) {
  const SurfaceCodeLattice lattice(5);
  const auto profile =
      qec::NoiseProfile::uniform(lattice.num_data_qubits(), 0.08, 0.12);
  for (const char* name : {"UnionFind", "SurfNetDecoder", "MWPM"}) {
    const auto decoder = make_decoder(name);
    util::Rng rng_a(31337), rng_b(31337);
    const double a = logical_error_rate(
        lattice, profile, qec::PauliChannel::IndependentXZ, *decoder, 300,
        rng_a);
    const double b = logical_error_rate(
        lattice, profile, qec::PauliChannel::IndependentXZ, *decoder, 300,
        rng_b);
    EXPECT_DOUBLE_EQ(a, b) << name;
  }
}


TEST(SurfNetDecoder, DegeneratesToUnionFindOnUniformPriors) {
  // With identical priors on every edge the weighted growth is a uniform
  // time-rescaling of Union-Find's half-edge growth: the same edges cross
  // in the same order, so the grown regions — and the peeled corrections —
  // coincide exactly.
  const SurfaceCodeLattice lattice(7);
  const auto profile =
      qec::NoiseProfile::uniform(lattice.num_data_qubits(), 0.08, 0.12);
  const auto prior =
      profile.component_error_prob(qec::PauliChannel::IndependentXZ);
  const SurfNetDecoder surfnet;
  const UnionFindDecoder union_find;
  util::Rng rng(1234);
  for (int t = 0; t < 60; ++t) {
    const auto sample =
        qec::sample_errors(profile, qec::PauliChannel::IndependentXZ, rng);
    for (auto kind : {GraphKind::Z, GraphKind::X}) {
      const auto input = make_decode_input(lattice, kind, sample, prior);
      EXPECT_EQ(surfnet.decode(input), union_find.decode(input))
          << "trial " << t;
    }
  }
}

}  // namespace
}  // namespace surfnet::decoder
