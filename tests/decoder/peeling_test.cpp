#include "decoder/peeling.h"

#include <gtest/gtest.h>

#include "qec/error_model.h"
#include "qec/logical.h"
#include "qec/syndrome.h"
#include "util/rng.h"

namespace surfnet::decoder {
namespace {

using qec::GraphKind;
using qec::SurfaceCodeLattice;

TEST(Peeling, EmptySyndromeEmptyCorrection) {
  const SurfaceCodeLattice lattice(5);
  const auto& graph = lattice.graph(GraphKind::Z);
  const std::vector<char> region(graph.num_edges(), 1);
  const std::vector<char> syndrome(
      static_cast<std::size_t>(graph.num_real_vertices()), 0);
  const auto correction = peel_correction(graph, region, syndrome);
  for (char c : correction) EXPECT_EQ(c, 0);
}

TEST(Peeling, ThrowsOnSyndromeOutsideRegion) {
  const SurfaceCodeLattice lattice(3);
  const auto& graph = lattice.graph(GraphKind::Z);
  const std::vector<char> region(graph.num_edges(), 0);  // empty region
  std::vector<char> syndrome(
      static_cast<std::size_t>(graph.num_real_vertices()), 0);
  syndrome[0] = 1;
  EXPECT_THROW(peel_correction(graph, region, syndrome), std::logic_error);
}

TEST(Peeling, CorrectsSingleErasedError) {
  const SurfaceCodeLattice lattice(5);
  const auto& graph = lattice.graph(GraphKind::Z);
  // Erase one interior edge and put the error exactly there.
  std::vector<char> flips(graph.num_edges(), 0);
  std::vector<char> region(graph.num_edges(), 0);
  const std::size_t target = graph.num_edges() / 2;
  flips[target] = 1;
  region[target] = 1;
  const auto syndrome = qec::syndrome_bitmap(graph, flips);
  const auto correction = peel_correction(graph, region, syndrome);
  EXPECT_EQ(correction, flips);
}

class PeelingPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(PeelingPropertyTest, ErasureOnlyDecodingIsAlwaysValid) {
  // Property (Delfosse-Zemor): for erasure-only noise, peeling over the
  // erased region yields a correction with the exact syndrome, and the
  // residual is confined to the erased region.
  const int d = GetParam();
  const SurfaceCodeLattice lattice(d);
  util::Rng rng(40 + static_cast<unsigned>(d));
  const auto profile =
      qec::NoiseProfile::uniform(lattice.num_data_qubits(), 0.0, 0.3);
  for (int trial = 0; trial < 200; ++trial) {
    const auto sample =
        qec::sample_errors(profile, qec::PauliChannel::IndependentXZ, rng);
    for (auto kind : {GraphKind::Z, GraphKind::X}) {
      const auto& graph = lattice.graph(kind);
      const auto flips = qec::edge_flips(lattice, kind, sample.error);
      const auto region = qec::erased_edges(lattice, kind, sample.erased);
      const auto syndrome = qec::syndrome_bitmap(graph, flips);
      const auto correction = peel_correction(graph, region, syndrome);
      EXPECT_TRUE(qec::correction_valid(graph, flips, correction))
          << "d=" << d << " trial=" << trial;
      // Correction must stay inside the erased region.
      for (std::size_t e = 0; e < correction.size(); ++e) {
        if (correction[e]) {
          EXPECT_TRUE(region[e]);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Distances, PeelingPropertyTest,
                         ::testing::Values(2, 3, 5, 7));

TEST(Peeling, BoundaryComponentAbsorbsOddParity) {
  // A single syndrome whose region connects to the boundary must be matched
  // into the boundary.
  const SurfaceCodeLattice lattice(3);
  const auto& graph = lattice.graph(GraphKind::Z);
  // Data qubit (0,0) is a west boundary edge; erase it and flip it.
  const int q = lattice.data_index({0, 0});
  ASSERT_GE(q, 0);
  std::vector<char> flips(graph.num_edges(), 0);
  flips[static_cast<std::size_t>(q)] = 1;
  std::vector<char> region = flips;
  const auto syndrome = qec::syndrome_bitmap(graph, flips);
  const auto correction = peel_correction(graph, region, syndrome);
  EXPECT_EQ(correction, flips);
}

}  // namespace
}  // namespace surfnet::decoder
