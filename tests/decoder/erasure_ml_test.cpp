// Differential and property campaigns for the linear-time exact-ML
// erasure decoder (decoder/erasure_ml.h). Three named invariants anchor
// the suite:
//
//   * equivalence  — erasure_ml == exhaustive ML wherever both run
//     (d <= 3), exactly, including the pinned class-0 tie-break;
//   * dominance    — no approximate decoder ever beats erasure_ml on the
//     pure erasure channel at d up to 15: erasure_ml succeeds on every
//     non-degenerate trial, so a rival win over it can only happen on a
//     degenerate erasure where both classes are equiprobable;
//   * peeling      — on its known-optimal regime (non-degenerate pure
//     erasure) peeling is bitwise identical to erasure_ml; on degenerate
//     erasures erasure_ml additionally normalizes the class to 0.
//
// Every corpus is a pure function of (seed, distance, rate schedule):
// rerunning any sweep reproduces the same samples and the same
// corrections bit for bit. The property campaigns (proptest.h style)
// cover degeneracy monotonicity under nested erasures, failure-rate
// monotonicity in the erasure rate, workspace-reuse bitwise invariance,
// and thread-count invariance through the trial runner. All tests here
// carry the `extended` CTest label.

#include "decoder/erasure_ml.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "decoder/code_trial.h"
#include "decoder/erasure_decoder.h"
#include "decoder/exhaustive.h"
#include "decoder/mwpm.h"
#include "decoder/surfnet_decoder.h"
#include "decoder/trial_runner.h"
#include "decoder/union_find.h"
#include "decoder/workspace.h"
#include "qec/code_lattice.h"
#include "qec/error_model.h"
#include "qec/logical.h"
#include "qec/syndrome.h"
#include "../proptest.h"
#include "util/rng.h"

namespace surfnet::decoder {
namespace {

using qec::GraphKind;
using qec::SurfaceCodeLattice;

constexpr GraphKind kKinds[] = {GraphKind::Z, GraphKind::X};

/// Seeded pure-erasure corpus: trial t of a sweep erases qubits at a rate
/// cycling through a fixed schedule, with the RNG stream derived from
/// (base seed, t) exactly like the trial runner derives its streams. The
/// corpus is therefore bitwise reproducible from the base seed alone.
class ErasureCorpus {
 public:
  ErasureCorpus(const qec::CodeLattice& lattice, std::uint64_t seed)
      : lattice_(&lattice), seed_(seed) {}

  qec::ErrorSample sample(int trial) const {
    static constexpr double kRates[] = {0.05, 0.10, 0.15, 0.20,
                                        0.25, 0.30, 0.35, 0.40};
    const double rate = kRates[static_cast<std::size_t>(trial) % 8];
    const auto profile = qec::NoiseProfile::uniform(
        lattice_->num_data_qubits(), /*pauli=*/0.0, rate);
    util::Rng rng(trial_seed(seed_, static_cast<std::uint64_t>(trial)));
    return qec::sample_errors(profile, qec::PauliChannel::IndependentXZ,
                              rng);
  }

 private:
  const qec::CodeLattice* lattice_;
  std::uint64_t seed_;
};

std::vector<double> zero_prior(const qec::CodeLattice& lattice) {
  return std::vector<double>(
      static_cast<std::size_t>(lattice.num_data_qubits()), 0.0);
}

// ---------------------------------------------------------------------------
// Invariant 1: equivalence with the exhaustive enumerator where both run.

TEST(ErasureMl, MatchesExhaustiveMlAtEnumerableDistances) {
  // On pure erasure the priors are exactly zero, so every configuration
  // supported on the erased region carries exactly 2^-|R| mass: class
  // probabilities tie exactly in floating point whenever the erasure is
  // degenerate, and both decoders pin ties to class 0. The comparison is
  // therefore exact — same chosen class on every trial, and degeneracy
  // reported by erasure_ml iff the enumerator sees equal class masses.
  for (const int d : {2, 3}) {
    const SurfaceCodeLattice lattice(d);
    const ErasureMlDecoder ml(lattice);
    const ErasureCorpus corpus(lattice, 0xE5A5'0000ULL + d);
    const auto prior = zero_prior(lattice);
    int degenerate_trials = 0;
    for (int t = 0; t < 1000; ++t) {
      const auto sample = corpus.sample(t);
      for (const auto kind : kKinds) {
        const auto input = make_decode_input(lattice, kind, sample, prior);
        const auto fast = ml.decode_with_info(input);
        const auto exact = decode_ml(lattice, kind, input);

        const auto flips = qec::edge_flips(lattice, kind, sample.error);
        ASSERT_TRUE(qec::correction_valid(lattice.graph(kind), flips,
                                          fast.correction))
            << "d=" << d << " trial " << t;
        EXPECT_EQ(qec::logical_flip(lattice, kind, fast.correction),
                  fast.info.chosen_class == 1)
            << "d=" << d << " trial " << t;

        EXPECT_EQ(fast.info.chosen_class, exact.chosen_class)
            << "d=" << d << " trial " << t
            << ": erasure_ml disagrees with exhaustive ML";
        const bool exact_tie =
            exact.class_prob[0] == exact.class_prob[1] &&
            exact.class_prob[0] > 0.0;
        EXPECT_EQ(fast.info.degenerate, exact_tie)
            << "d=" << d << " trial " << t
            << ": degeneracy flag disagrees with the enumerated masses";
        if (fast.info.degenerate) {
          ++degenerate_trials;
          EXPECT_EQ(fast.info.chosen_class, 0)
              << "d=" << d << " trial " << t;
        }
      }
    }
    // The sweep must actually exercise the tie-break for the pinned
    // class-0 comparison above to test anything.
    EXPECT_GT(degenerate_trials, 0) << "d=" << d;
  }
}

// ---------------------------------------------------------------------------
// Invariant 2: dominance over every approximate decoder on pure erasure.

TEST(ErasureMl, NeverBeatenByApproximateDecodersOnPureErasure) {
  // Exact-ML dominance, stated per trial rather than as an aggregate
  // count: on a non-degenerate erasure every syndrome-consistent solution
  // lies in one class, so erasure_ml *must* succeed; on a degenerate one
  // both classes are equiprobable and no decoder can beat a coin toss. A
  // rival success paired with an erasure_ml failure is therefore only
  // legal on a degenerate trial — which is exactly what "never beaten on
  // pure erasure" means once ties are accounted for.
  const ErasureDecoder peeling;
  const UnionFindDecoder union_find;
  const SurfNetDecoder surfnet;
  const MwpmDecoder mwpm;

  long long degenerate_trials = 0;
  for (const int d : {5, 7, 9, 11, 13, 15}) {
    const SurfaceCodeLattice lattice(d);
    const ErasureMlDecoder ml(lattice);
    std::vector<std::pair<std::string, const Decoder*>> rivals{
        {"Erasure", &peeling},
        {"UnionFind", &union_find},
        {"SurfNetDecoder", &surfnet}};
    // Blossom matching is super-linear: keep the exact-cover claim but
    // cap its share of the sweep at the small distances.
    if (d <= 7) rivals.emplace_back("MWPM", &mwpm);

    const ErasureCorpus corpus(lattice, 0xD0A1'0000ULL + d);
    const auto prior = zero_prior(lattice);
    for (int t = 0; t < 1000; ++t) {
      const auto sample = corpus.sample(t);
      for (const auto kind : kKinds) {
        const auto input = make_decode_input(lattice, kind, sample, prior);
        const auto flips = qec::edge_flips(lattice, kind, sample.error);
        const bool truth = qec::logical_flip(lattice, kind, flips);

        const auto decision = ml.decode_with_info(input);
        ASSERT_TRUE(qec::correction_valid(lattice.graph(kind), flips,
                                          decision.correction))
            << "d=" << d << " trial " << t;
        const bool ml_success = (decision.info.chosen_class == 1) == truth;
        if (!decision.info.degenerate) {
          ASSERT_TRUE(ml_success)
              << "d=" << d << " trial " << t
              << ": erasure_ml failed a non-degenerate erasure";
        } else {
          ++degenerate_trials;
        }

        for (const auto& [rival_name, rival] : rivals) {
          const auto correction = rival->decode(input);
          ASSERT_TRUE(qec::correction_valid(lattice.graph(kind), flips,
                                            correction))
              << rival_name << " d=" << d << " trial " << t;
          const bool rival_success =
              qec::logical_flip(lattice, kind, correction) == truth;
          if (rival_success && !ml_success) {
            ASSERT_TRUE(decision.info.degenerate)
                << rival_name << " beat erasure_ml on a non-degenerate "
                << "erasure: d=" << d << " trial " << t;
          }
        }
      }
    }
  }
  EXPECT_GT(degenerate_trials, 0)
      << "the sweep never hit a degenerate erasure; the dominance "
      << "statement was only tested on its trivial half";
}

// ---------------------------------------------------------------------------
// Invariant 3: peeling == erasure_ml on its known-optimal regime.

TEST(ErasureMl, MatchesPeelingExactlyOnNonDegenerateErasures) {
  // Delfosse-Zemor peeling is exact ML precisely when the erasure is
  // non-degenerate. erasure_ml builds the same forest in the same
  // discovery order, so there the two corrections are bitwise identical;
  // on degenerate erasures erasure_ml may additionally XOR the witness
  // cycle, and the only allowed divergence is a class normalization:
  // same syndrome, chosen class pinned to 0.
  const ErasureDecoder peeling;
  long long ties = 0;
  for (const int d : {5, 9, 13, 15}) {
    const SurfaceCodeLattice lattice(d);
    const ErasureMlDecoder ml(lattice);
    const ErasureCorpus corpus(lattice, 0x9EE1'0000ULL + d);
    const auto prior = zero_prior(lattice);
    for (int t = 0; t < 1000; ++t) {
      const auto sample = corpus.sample(t);
      for (const auto kind : kKinds) {
        const auto input = make_decode_input(lattice, kind, sample, prior);
        const auto peel = peeling.decode(input);
        const auto decision = ml.decode_with_info(input);
        if (!decision.info.degenerate) {
          ASSERT_EQ(decision.correction, peel)
              << "d=" << d << " trial " << t
              << ": non-degenerate corrections must be bitwise equal";
        } else {
          ++ties;
          EXPECT_EQ(decision.info.chosen_class, 0)
              << "d=" << d << " trial " << t;
          // The two corrections still explain the same syndrome: their
          // difference is a closed chain.
          EXPECT_TRUE(qec::correction_valid(lattice.graph(kind), peel,
                                            decision.correction))
              << "d=" << d << " trial " << t;
        }
      }
    }
  }
  EXPECT_GT(ties, 0);
}

// ---------------------------------------------------------------------------
// Corpus determinism: the acceptance bar is bitwise reproducibility from
// (seed, params), so prove it for the generator and the decoder together.

TEST(ErasureMl, CorpusAndDecodesAreBitwiseReproducible) {
  const SurfaceCodeLattice lattice(7);
  const ErasureMlDecoder ml(lattice);
  const auto prior = zero_prior(lattice);
  const ErasureCorpus first(lattice, 0xC0FFEEULL);
  const ErasureCorpus second(lattice, 0xC0FFEEULL);
  for (int t = 0; t < 200; ++t) {
    const auto a = first.sample(t);
    const auto b = second.sample(t);
    ASSERT_EQ(a.error, b.error) << "trial " << t;
    ASSERT_EQ(a.erased, b.erased) << "trial " << t;
    for (const auto kind : kKinds) {
      const auto input = make_decode_input(lattice, kind, a, prior);
      const auto da = ml.decode_with_info(input);
      const auto db = ml.decode_with_info(input);
      ASSERT_EQ(da.correction, db.correction) << "trial " << t;
      ASSERT_EQ(da.info.degenerate, db.info.degenerate) << "trial " << t;
      ASSERT_EQ(da.info.chosen_class, db.info.chosen_class) << "trial " << t;
    }
  }
}

// ---------------------------------------------------------------------------
// Property campaign: degeneracy is monotone under nested erasures.

TEST(ErasureMlProperty, DegeneracyMonotoneUnderNestedErasures) {
  // Degeneracy is a structural property of the erased subgraph alone (it
  // supports a logical operator), so enlarging the erasure can never
  // clear it. Couple two rates through shared per-edge uniforms: erased
  // iff u < p, which makes the smaller erasure a pointwise subset of the
  // larger one — the monotonicity check is then deterministic, not
  // statistical.
  std::vector<std::unique_ptr<SurfaceCodeLattice>> lattices;
  for (const int d : {3, 5, 7})
    lattices.push_back(std::make_unique<SurfaceCodeLattice>(d));
  std::vector<std::unique_ptr<ErasureMlDecoder>> decoders;
  for (const auto& lattice : lattices)
    decoders.push_back(std::make_unique<ErasureMlDecoder>(*lattice));

  proptest::check(
      "degeneracy_monotone", {}, [&](util::Rng& rng) {
        const int which = proptest::int_in(rng, 0, 2);
        const auto& lattice = *lattices[static_cast<std::size_t>(which)];
        const auto& ml = *decoders[static_cast<std::size_t>(which)];
        const double lo = proptest::real_in(rng, 0.0, 0.5);
        const double hi = proptest::real_in(rng, lo, 0.6);
        for (const auto kind : kKinds) {
          const auto& graph = lattice.graph(kind);
          DecodeInput input;
          input.graph = &graph;
          input.syndrome.assign(
              static_cast<std::size_t>(graph.num_real_vertices()), 0);
          input.error_prob.assign(graph.num_edges(), 0.0);
          std::vector<char> small(graph.num_edges(), 0);
          std::vector<char> large(graph.num_edges(), 0);
          for (std::size_t e = 0; e < graph.num_edges(); ++e) {
            const double u = rng.uniform(0.0, 1.0);
            small[e] = u < lo ? 1 : 0;
            large[e] = u < hi ? 1 : 0;
          }

          input.erased = small;
          const auto before = ml.decode_with_info(input);
          input.erased = large;
          const auto after = ml.decode_with_info(input);
          if (before.info.degenerate) {
            EXPECT_TRUE(after.info.degenerate)
                << "enlarging an erasure cleared its degeneracy";
          }
          // A zero syndrome decodes to the identity in class 0.
          for (const char c : after.correction) {
            ASSERT_EQ(c, 0);
          }
          EXPECT_EQ(after.info.chosen_class, 0);
        }
      });
}

// ---------------------------------------------------------------------------
// Property campaign: failure rate is monotone in the erasure rate.

TEST(ErasureMlProperty, FailureRateMonotoneInErasureRate) {
  // Statistical monotonicity at fixed d: more erasure means more
  // degenerate configurations, hence a higher coin-toss share. Adjacent
  // rates are compared with their combined Wilson half-widths as slack,
  // so the check is robust at 4000 trials per point while still refusing
  // a genuinely non-monotone decoder.
  const SurfaceCodeLattice lattice(5);
  const ErasureMlDecoder ml(lattice);
  TrialRunnerOptions options;
  options.threads = 2;
  options.seed = 0xF00D5EEDULL;

  double previous_rate = -1.0;
  double previous_slack = 0.0;
  for (const double erasure : {0.10, 0.20, 0.30, 0.40}) {
    const auto profile = qec::NoiseProfile::uniform(
        lattice.num_data_qubits(), /*pauli=*/0.0, erasure);
    const auto report = run_logical_error_trials(
        lattice, profile, qec::PauliChannel::IndependentXZ, ml, 4000,
        options);
    EXPECT_EQ(report.invalid, 0) << "erasure rate " << erasure;
    const double rate = report.error_rate();
    const double slack = report.error_rate_ci95();
    if (previous_rate >= 0.0) {
      EXPECT_GE(rate + slack + previous_slack, previous_rate)
          << "failure rate dropped when the erasure rate rose to "
          << erasure;
    }
    previous_rate = rate;
    previous_slack = slack;
  }
  // The top of the sweep must see real failures, or the monotone chain
  // compared a string of zeros.
  EXPECT_GT(previous_rate, 0.0);
}

// ---------------------------------------------------------------------------
// Property campaign: decode results are bitwise invariant under workspace
// reuse (the DecodeWorkspace zero-allocation contract).

TEST(ErasureMlProperty, BitwiseInvariantUnderWorkspaceReuse) {
  std::vector<std::unique_ptr<SurfaceCodeLattice>> lattices;
  for (const int d : {3, 5, 7})
    lattices.push_back(std::make_unique<SurfaceCodeLattice>(d));
  std::vector<std::unique_ptr<ErasureMlDecoder>> decoders;
  for (const auto& lattice : lattices)
    decoders.push_back(std::make_unique<ErasureMlDecoder>(*lattice));
  // One workspace deliberately shared across every case and distance: a
  // decode must not depend on what the buffers held before.
  DecodeWorkspace ws;

  proptest::check(
      "workspace_reuse_bitwise", {}, [&](util::Rng& rng) {
        const int which = proptest::int_in(rng, 0, 2);
        const auto& lattice = *lattices[static_cast<std::size_t>(which)];
        const auto& ml = *decoders[static_cast<std::size_t>(which)];
        const double erasure = proptest::real_in(rng, 0.05, 0.45);
        const auto profile = qec::NoiseProfile::uniform(
            lattice.num_data_qubits(), /*pauli=*/0.0, erasure);
        const auto sample = qec::sample_errors(
            profile, qec::PauliChannel::IndependentXZ, rng);
        const auto prior = zero_prior(lattice);
        for (const auto kind : kKinds) {
          const auto input = make_decode_input(lattice, kind, sample, prior);
          const auto fresh = ml.decode(input);
          const auto reused = ml.decode(input, ws);
          ASSERT_EQ(fresh, reused)
              << "workspace decode diverged from the allocating decode";
          const auto again = ml.decode(input, ws);
          ASSERT_EQ(fresh, again)
              << "second decode into the same workspace diverged";
        }
      });
}

// ---------------------------------------------------------------------------
// Property campaign: thread-count invariance through the trial runner.

TEST(ErasureMlProperty, TrialRunnerIsThreadCountInvariant) {
  const SurfaceCodeLattice lattice(7);
  const ErasureMlDecoder ml(lattice);
  const auto profile = qec::NoiseProfile::uniform(
      lattice.num_data_qubits(), /*pauli=*/0.0, 0.30);

  TrialReport reports[2];
  const int thread_counts[2] = {1, 8};
  for (int i = 0; i < 2; ++i) {
    TrialRunnerOptions options;
    options.threads = thread_counts[i];
    options.seed = 20240607;
    reports[i] = run_logical_error_trials(
        lattice, profile, qec::PauliChannel::IndependentXZ, ml, 4000,
        options);
  }
  EXPECT_EQ(reports[0].trials, reports[1].trials);
  EXPECT_EQ(reports[0].failures, reports[1].failures);
  EXPECT_EQ(reports[0].invalid, reports[1].invalid);
  EXPECT_EQ(reports[0].valid_but_wrong, reports[1].valid_but_wrong);
  EXPECT_EQ(reports[0].invalid, 0);
}

}  // namespace
}  // namespace surfnet::decoder
