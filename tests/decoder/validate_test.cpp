// Corruption tests for the cluster-decoder validators: run a real growth +
// peeling pass, then flip one piece of workspace state at a time and
// confirm the matching invariant check fires. Skipped when the build
// compiles contracts out.

#include "decoder/validate.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "decoder/cluster_growth.h"
#include "decoder/peeling.h"
#include "qec/lattice.h"
#include "util/contracts.h"

namespace surfnet::decoder {
namespace {

using qec::GraphKind;
using qec::SurfaceCodeLattice;
using util::ContractViolation;
using util::ScopedContractHandler;
using util::throw_contract_violation;

#if SURFNET_CHECKS

struct GrownFixture {
  GrownFixture() : lattice(5), graph(lattice.graph(GraphKind::Z)) {
    config.speed.assign(graph.num_edges(), 0.5);
    syndrome.assign(static_cast<std::size_t>(graph.num_real_vertices()), 0);
    syndrome[2] = 1;
    syndrome[static_cast<std::size_t>(graph.num_real_vertices()) / 2] = 1;
    grow_clusters(graph, syndrome, config, ws);
  }

  SurfaceCodeLattice lattice;
  const qec::DecodingGraph& graph;
  GrowthConfig config;
  std::vector<char> syndrome;
  GrowthWorkspace ws;
};

TEST(GrowthValidator, AcceptsHealthyWorkspace) {
  GrownFixture fix;
  ScopedContractHandler scoped(throw_contract_violation);
  EXPECT_NO_THROW(
      check_growth_invariants(fix.graph, fix.syndrome, fix.config, fix.ws));
}

TEST(GrowthValidator, RejectsCorruptedClusterParity) {
  GrownFixture fix;
  // Flip the parity flag at the root owning the first syndrome vertex: it
  // no longer equals the XOR of the members' syndrome bits.
  const int root = fix.ws.dsu.find(2);
  fix.ws.parity[static_cast<std::size_t>(root)] ^= 1;
  ScopedContractHandler scoped(throw_contract_violation);
  EXPECT_THROW(
      check_growth_invariants(fix.graph, fix.syndrome, fix.config, fix.ws),
      ContractViolation);
}

TEST(GrowthValidator, RejectsRegionEdgeThatNeverGrew) {
  GrownFixture fix;
  std::size_t ungrown = fix.graph.num_edges();
  for (std::size_t e = 0; e < fix.graph.num_edges(); ++e)
    if (!fix.ws.region[e] && fix.ws.growth[e] < 0.5) ungrown = e;
  ASSERT_LT(ungrown, fix.graph.num_edges());
  fix.ws.region[ungrown] = 1;  // region claims an edge growth never filled
  ScopedContractHandler scoped(throw_contract_violation);
  EXPECT_THROW(
      check_growth_invariants(fix.graph, fix.syndrome, fix.config, fix.ws),
      ContractViolation);
}

TEST(GrowthValidator, RejectsDroppedRegionEdge) {
  GrownFixture fix;
  std::size_t grown = fix.graph.num_edges();
  for (std::size_t e = 0; e < fix.graph.num_edges(); ++e)
    if (fix.ws.region[e]) grown = e;
  ASSERT_LT(grown, fix.graph.num_edges());
  fix.ws.region[grown] = 0;  // fully grown edge missing from the region
  ScopedContractHandler scoped(throw_contract_violation);
  EXPECT_THROW(
      check_growth_invariants(fix.graph, fix.syndrome, fix.config, fix.ws),
      ContractViolation);
}

TEST(PeelValidator, AcceptsHealthyCorrection) {
  GrownFixture fix;
  const auto correction = peel_correction(fix.graph, fix.ws.region,
                                          fix.syndrome);
  ScopedContractHandler scoped(throw_contract_violation);
  EXPECT_NO_THROW(
      check_peel_invariants(fix.graph, fix.ws.region, fix.syndrome,
                            correction));
}

TEST(PeelValidator, RejectsCorrectionOutsideRegion) {
  GrownFixture fix;
  auto correction = peel_correction(fix.graph, fix.ws.region, fix.syndrome);
  std::size_t outside = fix.graph.num_edges();
  for (std::size_t e = 0; e < fix.graph.num_edges(); ++e)
    if (!fix.ws.region[e]) outside = e;
  ASSERT_LT(outside, fix.graph.num_edges());
  correction[outside] = 1;
  ScopedContractHandler scoped(throw_contract_violation);
  EXPECT_THROW(check_peel_invariants(fix.graph, fix.ws.region, fix.syndrome,
                                     correction),
               ContractViolation);
}

TEST(PeelValidator, RejectsCorrectionBreakingSyndromeParity) {
  GrownFixture fix;
  auto correction = peel_correction(fix.graph, fix.ws.region, fix.syndrome);
  // Flip one in-region real-real edge of the correction: the parity at its
  // endpoints no longer reproduces the syndrome.
  std::size_t flip = fix.graph.num_edges();
  for (std::size_t e = 0; e < fix.graph.num_edges(); ++e) {
    const auto& edge = fix.graph.edge(e);
    if (fix.ws.region[e] && !fix.graph.is_boundary(edge.u) &&
        !fix.graph.is_boundary(edge.v))
      flip = e;
  }
  ASSERT_LT(flip, fix.graph.num_edges());
  correction[flip] ^= 1;
  ScopedContractHandler scoped(throw_contract_violation);
  EXPECT_THROW(check_peel_invariants(fix.graph, fix.ws.region, fix.syndrome,
                                     correction),
               ContractViolation);
}

#else  // !SURFNET_CHECKS

TEST(GrowthValidator, SkippedWithoutChecks) {
  GTEST_SKIP() << "SURFNET_CHECKS is off; validators compile to no-ops";
}

#endif  // SURFNET_CHECKS

}  // namespace
}  // namespace surfnet::decoder
