#include "decoder/spacetime.h"

#include <gtest/gtest.h>

#include "decoder/surfnet_decoder.h"
#include "decoder/union_find.h"
#include "qec/lattice.h"
#include "qec/rotated_lattice.h"
#include "util/rng.h"

namespace surfnet::decoder {
namespace {

using qec::CodeLattice;
using qec::GraphKind;
using qec::RotatedSurfaceCodeLattice;
using qec::SurfaceCodeLattice;

SpaceTimeSample empty_sample(const CodeLattice& lattice, GraphKind kind,
                             int rounds) {
  const auto& base = lattice.graph(kind);
  SpaceTimeSample sample;
  sample.window_flips.assign(static_cast<std::size_t>(rounds),
                             std::vector<char>(base.num_edges(), 0));
  sample.measurement_flips.assign(
      static_cast<std::size_t>(rounds),
      std::vector<char>(static_cast<std::size_t>(base.num_real_vertices()),
                        0));
  return sample;
}

TEST(SpaceTime, GraphShape) {
  const SurfaceCodeLattice lattice(3);
  const int rounds = 4;
  const SpaceTimeGraph graph(lattice, GraphKind::Z, rounds);
  const auto& base = lattice.graph(GraphKind::Z);
  EXPECT_EQ(graph.graph().num_real_vertices(),
            (rounds + 1) * base.num_real_vertices());
  EXPECT_EQ(graph.graph().num_edges(),
            static_cast<std::size_t>(rounds) *
                (base.num_edges() +
                 static_cast<std::size_t>(base.num_real_vertices())));
  EXPECT_THROW(SpaceTimeGraph(lattice, GraphKind::Z, 0),
               std::invalid_argument);
}

TEST(SpaceTime, NoNoiseNoDetectors) {
  const SurfaceCodeLattice lattice(3);
  const SpaceTimeGraph graph(lattice, GraphKind::Z, 3);
  const auto sample = empty_sample(lattice, GraphKind::Z, 3);
  for (char d : spacetime_detectors(graph, sample)) EXPECT_EQ(d, 0);
}

TEST(SpaceTime, SingleMeasurementErrorLightsTwoLayers) {
  const SurfaceCodeLattice lattice(3);
  const SpaceTimeGraph graph(lattice, GraphKind::Z, 3);
  auto sample = empty_sample(lattice, GraphKind::Z, 3);
  sample.measurement_flips[1][2] = 1;  // round 1, stabilizer 2
  const auto detectors = spacetime_detectors(graph, sample);
  int lit = 0;
  for (char d : detectors) lit += d;
  EXPECT_EQ(lit, 2);
  const int base = lattice.graph(GraphKind::Z).num_real_vertices();
  EXPECT_TRUE(detectors[static_cast<std::size_t>(1 * base + 2)]);
  EXPECT_TRUE(detectors[static_cast<std::size_t>(2 * base + 2)]);
}

TEST(SpaceTime, MeasurementErrorAloneNeverCausesLogicalError) {
  // A decoded lone measurement error must not produce any data-space
  // residual that crosses the logical cut.
  const SurfaceCodeLattice lattice(3);
  const SpaceTimeGraph graph(lattice, GraphKind::Z, 4);
  const decoder::SurfNetDecoder decoder;
  const int base = lattice.graph(GraphKind::Z).num_real_vertices();
  for (int round = 0; round < 4; ++round) {
    for (int s = 0; s < base; ++s) {
      auto sample = empty_sample(lattice, GraphKind::Z, 4);
      sample.measurement_flips[static_cast<std::size_t>(round)]
                              [static_cast<std::size_t>(s)] = 1;
      const auto outcome =
          decode_spacetime(lattice, graph, sample, decoder, 0.01, 0.01);
      EXPECT_TRUE(outcome.success()) << "round " << round << " stab " << s;
    }
  }
}

TEST(SpaceTime, SingleDataErrorIsCorrected) {
  const SurfaceCodeLattice lattice(3);
  const SpaceTimeGraph graph(lattice, GraphKind::Z, 3);
  const decoder::SurfNetDecoder decoder;
  const auto& base = lattice.graph(GraphKind::Z);
  for (std::size_t e = 0; e < base.num_edges(); ++e) {
    auto sample = empty_sample(lattice, GraphKind::Z, 3);
    sample.window_flips[1][e] = 1;
    const auto outcome =
        decode_spacetime(lattice, graph, sample, decoder, 0.01, 0.01);
    EXPECT_TRUE(outcome.success()) << "edge " << e;
  }
}

class SpaceTimeValidityTest : public ::testing::TestWithParam<int> {};

TEST_P(SpaceTimeValidityTest, DecodersAreValidUnderNoisyMeasurements) {
  const SurfaceCodeLattice lattice(GetParam());
  const int rounds = GetParam();
  const decoder::SurfNetDecoder surfnet;
  const decoder::UnionFindDecoder union_find;
  util::Rng rng(41);
  for (int t = 0; t < 40; ++t) {
    for (auto kind : {GraphKind::Z, GraphKind::X}) {
      const SpaceTimeGraph graph(lattice, kind, rounds);
      const auto sample =
          sample_spacetime(lattice, kind, rounds, 0.04, 0.04, rng);
      for (const decoder::Decoder* dec :
           {static_cast<const decoder::Decoder*>(&surfnet),
            static_cast<const decoder::Decoder*>(&union_find)}) {
        const auto outcome =
            decode_spacetime(lattice, graph, sample, *dec, 0.04, 0.04);
        EXPECT_TRUE(outcome.valid);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Distances, SpaceTimeValidityTest,
                         ::testing::Values(3, 5));

TEST(SpaceTime, DistanceSuppressionBelowThreshold) {
  // Phenomenological noise at 1.5% (well below the ~3% threshold):
  // d=5 with 5 rounds must beat d=3 with 3 rounds.
  const decoder::SurfNetDecoder decoder;
  double rates[2];
  int i = 0;
  for (int d : {3, 5}) {
    const SurfaceCodeLattice lattice(d);
    util::Rng rng(43);
    rates[i++] = spacetime_logical_error_rate(lattice, d, 0.015, 0.015,
                                              decoder, 800, rng);
  }
  EXPECT_LT(rates[1], rates[0] + 0.01);
}

TEST(SpaceTime, WorksOnRotatedLattice) {
  const RotatedSurfaceCodeLattice lattice(3);
  const decoder::SurfNetDecoder decoder;
  util::Rng rng(44);
  const double ler = spacetime_logical_error_rate(lattice, 3, 0.02, 0.02,
                                                  decoder, 300, rng);
  EXPECT_GE(ler, 0.0);
  EXPECT_LT(ler, 0.5);
}


TEST(SpaceTime, EdgePriorsMatchEdgeKinds) {
  const SurfaceCodeLattice lattice(3);
  const SpaceTimeGraph graph(lattice, GraphKind::X, 2);
  const auto priors = graph.edge_priors(0.03, 0.07);
  ASSERT_EQ(priors.size(), graph.graph().num_edges());
  for (std::size_t e = 0; e < priors.size(); ++e)
    EXPECT_DOUBLE_EQ(priors[e], graph.is_horizontal(e) ? 0.03 : 0.07);
}

TEST(SpaceTime, DataErrorRepeatedEveryWindowIsInvisible) {
  // The same data edge flipped in two consecutive windows lights detectors
  // at both layers (each window flips its own layer), and decoding must
  // still succeed.
  const SurfaceCodeLattice lattice(3);
  const SpaceTimeGraph graph(lattice, GraphKind::Z, 3);
  const decoder::SurfNetDecoder decoder;
  auto sample = empty_sample(lattice, GraphKind::Z, 3);
  sample.window_flips[0][4] = 1;
  sample.window_flips[1][4] = 1;
  const auto outcome =
      decode_spacetime(lattice, graph, sample, decoder, 0.02, 0.02);
  EXPECT_TRUE(outcome.valid);
  EXPECT_TRUE(outcome.success());
}

}  // namespace
}  // namespace surfnet::decoder
