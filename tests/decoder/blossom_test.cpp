#include "decoder/blossom.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "util/rng.h"

namespace surfnet::decoder {
namespace {

/// Exhaustive minimum-weight perfect matching for small n (O(n!!)).
double brute_force(int n, const std::vector<std::vector<double>>& w) {
  std::vector<int> vertices(static_cast<std::size_t>(n));
  std::iota(vertices.begin(), vertices.end(), 0);
  double best = kNoEdge;
  // Recursive pairing of the first unpaired vertex.
  std::vector<char> used(static_cast<std::size_t>(n), 0);
  auto rec = [&](auto&& self, double acc, int paired) -> void {
    if (paired == n) {
      best = std::min(best, acc);
      return;
    }
    int u = 0;
    while (used[static_cast<std::size_t>(u)]) ++u;
    used[static_cast<std::size_t>(u)] = 1;
    for (int v = u + 1; v < n; ++v) {
      if (used[static_cast<std::size_t>(v)]) continue;
      const double wuv =
          w[static_cast<std::size_t>(u)][static_cast<std::size_t>(v)];
      if (wuv == kNoEdge) continue;
      used[static_cast<std::size_t>(v)] = 1;
      self(self, acc + wuv, paired + 2);
      used[static_cast<std::size_t>(v)] = 0;
    }
    used[static_cast<std::size_t>(u)] = 0;
  };
  rec(rec, 0.0, 0);
  return best;
}

std::vector<std::vector<double>> random_complete(int n, util::Rng& rng) {
  std::vector<std::vector<double>> w(
      static_cast<std::size_t>(n),
      std::vector<double>(static_cast<std::size_t>(n), kNoEdge));
  for (int i = 0; i < n; ++i)
    for (int j = i + 1; j < n; ++j) {
      const double x = rng.uniform(0.0, 10.0);
      w[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = x;
      w[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)] = x;
    }
  return w;
}

void check_is_perfect_matching(int n, const MatchingResult& result) {
  ASSERT_EQ(result.mate.size(), static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) {
    const int m = result.mate[static_cast<std::size_t>(v)];
    ASSERT_GE(m, 0);
    ASSERT_LT(m, n);
    ASSERT_NE(m, v);
    EXPECT_EQ(result.mate[static_cast<std::size_t>(m)], v);
  }
}

TEST(Blossom, TrivialPair) {
  std::vector<std::vector<double>> w{{kNoEdge, 3.5}, {3.5, kNoEdge}};
  const auto result = min_weight_perfect_matching(2, w);
  check_is_perfect_matching(2, result);
  EXPECT_NEAR(result.total_weight, 3.5, 1e-6);
}

TEST(Blossom, FourVerticesPicksCheapPairing) {
  // Pairings: (01)(23)=2, (02)(13)=20, (03)(12)=20.
  std::vector<std::vector<double>> w(4, std::vector<double>(4, 10.0));
  w[0][1] = w[1][0] = 1.0;
  w[2][3] = w[3][2] = 1.0;
  const auto result = min_weight_perfect_matching(4, w);
  check_is_perfect_matching(4, result);
  EXPECT_NEAR(result.total_weight, 2.0, 1e-6);
  EXPECT_EQ(result.mate[0], 1);
  EXPECT_EQ(result.mate[2], 3);
}

TEST(Blossom, GreedyIsNotOptimalHere) {
  // Greedy would take the 0-weight edge (1,2) and be forced into the two
  // expensive edges; optimal avoids it.
  std::vector<std::vector<double>> w(4, std::vector<double>(4, kNoEdge));
  auto set = [&](int i, int j, double x) {
    w[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = x;
    w[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)] = x;
  };
  set(1, 2, 0.0);
  set(0, 1, 1.0);
  set(2, 3, 1.0);
  set(0, 3, 100.0);
  const auto result = min_weight_perfect_matching(4, w);
  check_is_perfect_matching(4, result);
  EXPECT_NEAR(result.total_weight, 2.0, 1e-6);
}

TEST(Blossom, RejectsOddVertexCount) {
  std::vector<std::vector<double>> w(3, std::vector<double>(3, 1.0));
  EXPECT_THROW(min_weight_perfect_matching(3, w), std::invalid_argument);
}

TEST(Blossom, ThrowsWhenNoPerfectMatching) {
  // A path 0-1 2-3 with only edges (0,1) and (1,2): vertex 3 is isolated.
  std::vector<std::vector<double>> w(4, std::vector<double>(4, kNoEdge));
  w[0][1] = w[1][0] = 1.0;
  w[1][2] = w[2][1] = 1.0;
  EXPECT_THROW(min_weight_perfect_matching(4, w), std::runtime_error);
}

TEST(Blossom, EmptyGraph) {
  const auto result = min_weight_perfect_matching(0, {});
  EXPECT_TRUE(result.mate.empty());
  EXPECT_DOUBLE_EQ(result.total_weight, 0.0);
}

class BlossomRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(BlossomRandomTest, MatchesBruteForceOnCompleteGraphs) {
  const int n = GetParam();
  util::Rng rng(1000 + static_cast<unsigned>(n));
  for (int trial = 0; trial < 30; ++trial) {
    const auto w = random_complete(n, rng);
    const auto result = min_weight_perfect_matching(n, w);
    check_is_perfect_matching(n, result);
    const double expected = brute_force(n, w);
    EXPECT_NEAR(result.total_weight, expected, 1e-4)
        << "n=" << n << " trial=" << trial;
  }
}

TEST_P(BlossomRandomTest, MatchesBruteForceOnSparseGraphs) {
  const int n = GetParam();
  util::Rng rng(2000 + static_cast<unsigned>(n));
  for (int trial = 0; trial < 30; ++trial) {
    auto w = random_complete(n, rng);
    // Remove ~40% of edges but keep a guaranteed perfect matching
    // (consecutive pairs).
    for (int i = 0; i < n; ++i)
      for (int j = i + 1; j < n; ++j) {
        const bool protected_edge = (j == i + 1 && i % 2 == 0);
        if (!protected_edge && rng.bernoulli(0.4)) {
          w[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = kNoEdge;
          w[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)] = kNoEdge;
        }
      }
    const auto result = min_weight_perfect_matching(n, w);
    check_is_perfect_matching(n, result);
    EXPECT_NEAR(result.total_weight, brute_force(n, w), 1e-4)
        << "n=" << n << " trial=" << trial;
  }
}

TEST_P(BlossomRandomTest, IntegerWeightsExact) {
  const int n = GetParam();
  util::Rng rng(3000 + static_cast<unsigned>(n));
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::vector<double>> w(
        static_cast<std::size_t>(n),
        std::vector<double>(static_cast<std::size_t>(n), kNoEdge));
    for (int i = 0; i < n; ++i)
      for (int j = i + 1; j < n; ++j) {
        const double x = static_cast<double>(rng.below(100));
        w[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = x;
        w[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)] = x;
      }
    const auto result = min_weight_perfect_matching(n, w);
    check_is_perfect_matching(n, result);
    EXPECT_DOUBLE_EQ(result.total_weight, brute_force(n, w));
  }
}

INSTANTIATE_TEST_SUITE_P(SmallEvenSizes, BlossomRandomTest,
                         ::testing::Values(2, 4, 6, 8, 10));

TEST(Blossom, LargerInstanceRunsAndIsConsistent) {
  // No brute force at n=40; check perfect-matching structure and that the
  // total weight is not worse than a greedy pairing.
  const int n = 40;
  util::Rng rng(555);
  const auto w = random_complete(n, rng);
  const auto result = min_weight_perfect_matching(n, w);
  check_is_perfect_matching(n, result);
  // Greedy: repeatedly take globally lightest edge among unused vertices.
  std::vector<char> used(static_cast<std::size_t>(n), 0);
  double greedy = 0.0;
  for (int pair = 0; pair < n / 2; ++pair) {
    double best = kNoEdge;
    int bi = -1, bj = -1;
    for (int i = 0; i < n; ++i)
      for (int j = i + 1; j < n; ++j)
        if (!used[static_cast<std::size_t>(i)] &&
            !used[static_cast<std::size_t>(j)] &&
            w[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] <
                best) {
          best = w[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
          bi = i;
          bj = j;
        }
    used[static_cast<std::size_t>(bi)] = 1;
    used[static_cast<std::size_t>(bj)] = 1;
    greedy += best;
  }
  EXPECT_LE(result.total_weight, greedy + 1e-6);
}

}  // namespace
}  // namespace surfnet::decoder
