#include "decoder/cluster_growth.h"

#include <gtest/gtest.h>

#include "decoder/dsu.h"
#include "qec/error_model.h"
#include "qec/syndrome.h"
#include "util/rng.h"

namespace surfnet::decoder {
namespace {

using qec::GraphKind;
using qec::SurfaceCodeLattice;

TEST(Dsu, BasicUnionFind) {
  Dsu dsu(6);
  EXPECT_FALSE(dsu.same(0, 1));
  EXPECT_GE(dsu.unite(0, 1), 0);
  EXPECT_TRUE(dsu.same(0, 1));
  EXPECT_EQ(dsu.unite(0, 1), -1);  // already joined
  dsu.unite(2, 3);
  dsu.unite(1, 3);
  EXPECT_TRUE(dsu.same(0, 2));
  EXPECT_EQ(dsu.size_of(0), 4u);
  EXPECT_FALSE(dsu.same(0, 5));
}

TEST(Dsu, UnionBySizeKeepsLargerRoot) {
  Dsu dsu(5);
  dsu.unite(0, 1);
  dsu.unite(0, 2);
  const int root = dsu.find(0);
  EXPECT_EQ(dsu.unite(3, 0), root);  // singleton 3 joins the bigger set
}

TEST(ClusterGrowth, NoSyndromeNoGrowth) {
  const SurfaceCodeLattice lattice(5);
  const auto& graph = lattice.graph(GraphKind::Z);
  GrowthConfig config;
  config.speed.assign(graph.num_edges(), 0.5);
  const std::vector<char> syndrome(
      static_cast<std::size_t>(graph.num_real_vertices()), 0);
  const auto region = grow_clusters(graph, syndrome, config);
  for (char r : region) EXPECT_EQ(r, 0);
}

TEST(ClusterGrowth, PregrownEdgesStayInRegion) {
  const SurfaceCodeLattice lattice(5);
  const auto& graph = lattice.graph(GraphKind::Z);
  GrowthConfig config;
  config.speed.assign(graph.num_edges(), 0.5);
  config.pregrown.assign(graph.num_edges(), 0);
  config.pregrown[3] = 1;
  config.pregrown[10] = 1;
  const std::vector<char> syndrome(
      static_cast<std::size_t>(graph.num_real_vertices()), 0);
  const auto region = grow_clusters(graph, syndrome, config);
  EXPECT_TRUE(region[3]);
  EXPECT_TRUE(region[10]);
}

TEST(ClusterGrowth, SingleSyndromeReachesBoundaryOrPair) {
  // A single syndrome must grow until its cluster touches a boundary.
  const SurfaceCodeLattice lattice(5);
  const auto& graph = lattice.graph(GraphKind::Z);
  GrowthConfig config;
  config.speed.assign(graph.num_edges(), 0.5);
  std::vector<char> syndrome(
      static_cast<std::size_t>(graph.num_real_vertices()), 0);
  syndrome[static_cast<std::size_t>(graph.num_real_vertices() / 2)] = 1;
  const auto region = grow_clusters(graph, syndrome, config);
  bool touches_boundary = false;
  for (std::size_t e = 0; e < graph.num_edges(); ++e) {
    if (!region[e]) continue;
    const auto& edge = graph.edge(e);
    if (graph.is_boundary(edge.u) || graph.is_boundary(edge.v))
      touches_boundary = true;
  }
  EXPECT_TRUE(touches_boundary);
}

TEST(ClusterGrowth, TwoAdjacentSyndromesFuseQuickly) {
  // Two syndromes sharing an edge should fuse via that edge in one round
  // (0.5 + 0.5 growth) and stop — the region should stay very local.
  const SurfaceCodeLattice lattice(9);
  const auto& graph = lattice.graph(GraphKind::Z);
  // Find an interior edge between two real vertices.
  int chosen = -1;
  for (std::size_t e = 0; e < graph.num_edges(); ++e) {
    const auto& edge = graph.edge(e);
    if (!graph.is_boundary(edge.u) && !graph.is_boundary(edge.v)) {
      chosen = static_cast<int>(e);
      break;
    }
  }
  ASSERT_GE(chosen, 0);
  const auto& edge = graph.edge(static_cast<std::size_t>(chosen));
  std::vector<char> syndrome(
      static_cast<std::size_t>(graph.num_real_vertices()), 0);
  syndrome[static_cast<std::size_t>(edge.u)] = 1;
  syndrome[static_cast<std::size_t>(edge.v)] = 1;
  GrowthConfig config;
  config.speed.assign(graph.num_edges(), 0.5);
  const auto region = grow_clusters(graph, syndrome, config);
  EXPECT_TRUE(region[static_cast<std::size_t>(chosen)]);
  std::size_t region_size = 0;
  for (char r : region) region_size += static_cast<std::size_t>(r);
  // One round of half-edge growth touches only edges incident to the two
  // syndromes (at most 8), all of which may complete via double-sided
  // growth in the same round; the cluster is then even and stops.
  EXPECT_LE(region_size, 8u);
}

TEST(ClusterGrowth, RegionParityInvariant) {
  // Property: every connected component of the final region has even
  // syndrome parity or touches a boundary — the precondition for peeling.
  const SurfaceCodeLattice lattice(7);
  util::Rng rng(99);
  const auto profile =
      qec::NoiseProfile::uniform(lattice.num_data_qubits(), 0.10, 0.10);
  for (int trial = 0; trial < 100; ++trial) {
    const auto sample =
        qec::sample_errors(profile, qec::PauliChannel::IndependentXZ, rng);
    for (auto kind : {GraphKind::Z, GraphKind::X}) {
      const auto& graph = lattice.graph(kind);
      const auto flips = qec::edge_flips(lattice, kind, sample.error);
      const auto syndrome = qec::syndrome_bitmap(graph, flips);
      GrowthConfig config;
      config.speed.assign(graph.num_edges(), 0.5);
      config.pregrown = qec::erased_edges(lattice, kind, sample.erased);
      const auto region = grow_clusters(graph, syndrome, config);

      // Components over region edges (real vertices only).
      Dsu dsu(static_cast<std::size_t>(graph.num_real_vertices()));
      std::vector<char> touches(
          static_cast<std::size_t>(graph.num_real_vertices()), 0);
      for (std::size_t e = 0; e < graph.num_edges(); ++e) {
        if (!region[e]) continue;
        const auto& edge = graph.edge(e);
        if (graph.is_boundary(edge.u))
          touches[static_cast<std::size_t>(edge.v)] = 1;
        else if (graph.is_boundary(edge.v))
          touches[static_cast<std::size_t>(edge.u)] = 1;
        else
          dsu.unite(edge.u, edge.v);
      }
      std::vector<int> parity(
          static_cast<std::size_t>(graph.num_real_vertices()), 0);
      std::vector<int> boundary(
          static_cast<std::size_t>(graph.num_real_vertices()), 0);
      for (int v = 0; v < graph.num_real_vertices(); ++v) {
        const int root = dsu.find(v);
        parity[static_cast<std::size_t>(root)] +=
            syndrome[static_cast<std::size_t>(v)];
        boundary[static_cast<std::size_t>(root)] |=
            touches[static_cast<std::size_t>(v)];
      }
      for (int v = 0; v < graph.num_real_vertices(); ++v) {
        if (dsu.find(v) != v) continue;
        if (parity[static_cast<std::size_t>(v)] % 2 == 1) {
          EXPECT_TRUE(boundary[static_cast<std::size_t>(v)])
              << "odd component without boundary, trial " << trial;
        }
      }
    }
  }
}

TEST(ClusterGrowth, FasterEdgesGrowFirst) {
  // With one syndrome equidistant from two boundaries, asymmetric speeds
  // must steer the region toward the fast side.
  const SurfaceCodeLattice lattice(5);
  const auto& graph = lattice.graph(GraphKind::Z);
  // Syndrome at the central measure-Z vertex.
  std::vector<char> syndrome(
      static_cast<std::size_t>(graph.num_real_vertices()), 0);
  const int center = graph.num_real_vertices() / 2;
  syndrome[static_cast<std::size_t>(center)] = 1;

  GrowthConfig config;
  config.speed.assign(graph.num_edges(), 0.01);  // everything slow...
  // ...except edges on the west side of the lattice (columns < center).
  for (std::size_t e = 0; e < graph.num_edges(); ++e) {
    const auto rc = lattice.data_coord(graph.edge(e).data_qubit);
    if (rc.c <= 4) config.speed[e] = 0.6;
  }
  const auto region = grow_clusters(graph, syndrome, config);
  std::size_t west = 0, east = 0;
  for (std::size_t e = 0; e < graph.num_edges(); ++e) {
    if (!region[e]) continue;
    const auto rc = lattice.data_coord(graph.edge(e).data_qubit);
    (rc.c <= 4 ? west : east) += 1;
  }
  EXPECT_GT(west, east);
}

TEST(ClusterGrowth, RoundCapTriggers) {
  const SurfaceCodeLattice lattice(3);
  const auto& graph = lattice.graph(GraphKind::Z);
  std::vector<char> syndrome(
      static_cast<std::size_t>(graph.num_real_vertices()), 0);
  syndrome[0] = 1;
  GrowthConfig config;
  config.speed.assign(graph.num_edges(), 1e-9);
  config.max_rounds = 10;
  EXPECT_THROW(grow_clusters(graph, syndrome, config), std::logic_error);
}

}  // namespace
}  // namespace surfnet::decoder
