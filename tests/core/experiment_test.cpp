// Integration tests of the SurfNet facade: every (scenario, design) pair
// runs end to end, metrics are well-formed, and trials are reproducible.

#include "core/surfnet.h"

#include <gtest/gtest.h>

#include <tuple>

namespace surfnet::core {
namespace {

using DesignParam = std::tuple<FacilityLevel, ConnectionQuality,
                               NetworkDesign>;

class EndToEndTest : public ::testing::TestWithParam<DesignParam> {};

TEST_P(EndToEndTest, TrialProducesWellFormedMetrics) {
  const auto& [level, quality, design] = GetParam();
  const auto params = make_scenario(level, quality);
  const auto metrics = run_trial(params, design, 12345);
  EXPECT_GE(metrics.fidelity, 0.0);
  EXPECT_LE(metrics.fidelity, 1.0);
  EXPECT_GE(metrics.throughput, 0.0);
  EXPECT_LE(metrics.throughput, 1.0 + 1e-9);
  EXPECT_GE(metrics.latency, 0.0);
  EXPECT_GE(metrics.codes_scheduled, metrics.codes_delivered);
}

TEST_P(EndToEndTest, TrialsAreReproducible) {
  const auto& [level, quality, design] = GetParam();
  const auto params = make_scenario(level, quality);
  const auto a = run_trial(params, design, 777);
  const auto b = run_trial(params, design, 777);
  EXPECT_DOUBLE_EQ(a.fidelity, b.fidelity);
  EXPECT_DOUBLE_EQ(a.latency, b.latency);
  EXPECT_DOUBLE_EQ(a.throughput, b.throughput);
}

INSTANTIATE_TEST_SUITE_P(
    AllScenarios, EndToEndTest,
    ::testing::Combine(
        ::testing::Values(FacilityLevel::Abundant, FacilityLevel::Sufficient,
                          FacilityLevel::Insufficient),
        ::testing::Values(ConnectionQuality::Good, ConnectionQuality::Poor),
        ::testing::Values(NetworkDesign::SurfNet, NetworkDesign::Raw,
                          NetworkDesign::Purification1,
                          NetworkDesign::Purification2,
                          NetworkDesign::Purification9)));

TEST(Experiment, AggregateCountsTrials) {
  const auto params =
      make_scenario(FacilityLevel::Abundant, ConnectionQuality::Good);
  const auto agg = run_trials(params, NetworkDesign::SurfNet, 5, 99);
  EXPECT_EQ(agg.throughput.count(), 5u);
  EXPECT_LE(agg.fidelity.count(), 5u);
  EXPECT_GE(agg.fidelity.mean(), 0.0);
  EXPECT_LE(agg.fidelity.mean(), 1.0);
}

TEST(Experiment, SurfNetBeatsPurification1OnFidelity) {
  // The paper's headline (Fig. 7): SurfNet achieves higher average
  // communication fidelity than the single-round purification network.
  const auto params =
      make_scenario(FacilityLevel::Abundant, ConnectionQuality::Good);
  const auto surfnet = run_trials(params, NetworkDesign::SurfNet, 25, 4);
  const auto purif = run_trials(params, NetworkDesign::Purification1, 25, 4);
  EXPECT_GT(surfnet.fidelity.mean(), purif.fidelity.mean());
}

TEST(Experiment, ScenarioNamesRoundTrip) {
  EXPECT_EQ(to_string(FacilityLevel::Abundant), "abundant");
  EXPECT_EQ(to_string(ConnectionQuality::Poor), "poor");
  EXPECT_EQ(to_string(NetworkDesign::Purification9), "Purification N=9");
}

TEST(Experiment, ScenarioDefaultsMatchPaperExample) {
  const auto params =
      make_scenario(FacilityLevel::Sufficient, ConnectionQuality::Good);
  // 25-qubit distance-4 code with a 7-qubit Core (paper Sec. V-A).
  EXPECT_EQ(params.simulation.code_distance, 4);
  EXPECT_EQ(params.routing.core_qubits, 7);
  EXPECT_EQ(params.routing.support_qubits, 18);
  EXPECT_GT(params.topology.num_nodes, 20);  // paper: over 20 nodes
}


TEST(Experiment, ParallelMatchesSequential) {
  const auto params =
      make_scenario(FacilityLevel::Sufficient, ConnectionQuality::Good);
  const auto serial = run_trials(params, NetworkDesign::SurfNet, 8, 5);
  const auto parallel =
      run_trials_parallel(params, NetworkDesign::SurfNet, 8, 5, 4);
  EXPECT_DOUBLE_EQ(parallel.fidelity.mean(), serial.fidelity.mean());
  EXPECT_DOUBLE_EQ(parallel.latency.mean(), serial.latency.mean());
  EXPECT_DOUBLE_EQ(parallel.throughput.mean(), serial.throughput.mean());
  EXPECT_EQ(parallel.fidelity.count(), serial.fidelity.count());
}

}  // namespace
}  // namespace surfnet::core
