// Integration tests of the SurfNet facade: every (scenario, design) pair
// runs end to end, metrics are well-formed, trials are reproducible, and
// the observability plane (sinks through RunOptions) is deterministic
// under any thread count.

#include "core/surfnet.h"

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace surfnet::core {
namespace {

using DesignParam = std::tuple<FacilityLevel, ConnectionQuality,
                               NetworkDesign>;

class EndToEndTest : public ::testing::TestWithParam<DesignParam> {};

TEST_P(EndToEndTest, TrialProducesWellFormedMetrics) {
  const auto& [level, quality, design] = GetParam();
  const auto params = make_scenario(level, quality);
  const auto metrics = run_trial(params, design, 12345);
  EXPECT_GE(metrics.fidelity, 0.0);
  EXPECT_LE(metrics.fidelity, 1.0);
  EXPECT_GE(metrics.throughput, 0.0);
  EXPECT_LE(metrics.throughput, 1.0 + 1e-9);
  EXPECT_GE(metrics.latency, 0.0);
  EXPECT_GE(metrics.codes_scheduled, metrics.codes_delivered);
}

TEST_P(EndToEndTest, TrialsAreReproducible) {
  const auto& [level, quality, design] = GetParam();
  const auto params = make_scenario(level, quality);
  const auto a = run_trial(params, design, 777);
  const auto b = run_trial(params, design, 777);
  EXPECT_DOUBLE_EQ(a.fidelity, b.fidelity);
  EXPECT_DOUBLE_EQ(a.latency, b.latency);
  EXPECT_DOUBLE_EQ(a.throughput, b.throughput);
}

INSTANTIATE_TEST_SUITE_P(
    AllScenarios, EndToEndTest,
    ::testing::Combine(
        ::testing::Values(FacilityLevel::Abundant, FacilityLevel::Sufficient,
                          FacilityLevel::Insufficient),
        ::testing::Values(ConnectionQuality::Good, ConnectionQuality::Poor),
        ::testing::Values(NetworkDesign::SurfNet, NetworkDesign::Raw,
                          NetworkDesign::Purification1,
                          NetworkDesign::Purification2,
                          NetworkDesign::Purification9)));

TEST(Experiment, AggregateCountsTrials) {
  const auto params =
      make_scenario(FacilityLevel::Abundant, ConnectionQuality::Good);
  const auto agg = run_trials(params, NetworkDesign::SurfNet, 5,
                              RunOptions{.seed = 99});
  EXPECT_EQ(agg.throughput.count(), 5u);
  EXPECT_LE(agg.fidelity.count(), 5u);
  EXPECT_GE(agg.fidelity.mean(), 0.0);
  EXPECT_LE(agg.fidelity.mean(), 1.0);
}

TEST(Experiment, SurfNetBeatsPurification1OnFidelity) {
  // The paper's headline (Fig. 7): SurfNet achieves higher average
  // communication fidelity than the single-round purification network.
  const auto params =
      make_scenario(FacilityLevel::Abundant, ConnectionQuality::Good);
  const auto surfnet = run_trials(params, NetworkDesign::SurfNet, 25,
                                  RunOptions{.seed = 4});
  const auto purif = run_trials(params, NetworkDesign::Purification1, 25,
                                RunOptions{.seed = 4});
  EXPECT_GT(surfnet.fidelity.mean(), purif.fidelity.mean());
}

TEST(Experiment, ScenarioNamesRoundTrip) {
  EXPECT_EQ(to_string(FacilityLevel::Abundant), "abundant");
  EXPECT_EQ(to_string(ConnectionQuality::Poor), "poor");
  EXPECT_EQ(to_string(NetworkDesign::Purification9), "Purification N=9");
}

TEST(Experiment, ScenarioDefaultsMatchPaperExample) {
  const auto params =
      make_scenario(FacilityLevel::Sufficient, ConnectionQuality::Good);
  // 25-qubit distance-4 code with a 7-qubit Core (paper Sec. V-A).
  EXPECT_EQ(params.simulation.code_distance, 4);
  EXPECT_EQ(params.routing.core_qubits, 7);
  EXPECT_EQ(params.routing.support_qubits, 18);
  EXPECT_GT(params.topology.num_nodes, 20);  // paper: over 20 nodes
}


TEST(Experiment, ParallelMatchesSequential) {
  const auto params =
      make_scenario(FacilityLevel::Sufficient, ConnectionQuality::Good);
  const auto serial = run_trials(params, NetworkDesign::SurfNet, 8,
                                 RunOptions{.seed = 5, .threads = 1});
  const auto parallel = run_trials(params, NetworkDesign::SurfNet, 8,
                                   RunOptions{.seed = 5, .threads = 4});
  EXPECT_DOUBLE_EQ(parallel.fidelity.mean(), serial.fidelity.mean());
  EXPECT_DOUBLE_EQ(parallel.latency.mean(), serial.latency.mean());
  EXPECT_DOUBLE_EQ(parallel.throughput.mean(), serial.throughput.mean());
  EXPECT_EQ(parallel.fidelity.count(), serial.fidelity.count());
}

TEST(Experiment, RunOptionsSeedAndThreadsAreIndependentKnobs) {
  // The RunOptions API is the one entry point since the seed/threads
  // overloads were retired: the same seed gives the same aggregate at any
  // thread count, and designated initializers cover the old call shapes.
  const auto params =
      make_scenario(FacilityLevel::Sufficient, ConnectionQuality::Good);
  const auto current = run_trials(params, NetworkDesign::SurfNet, 6,
                                  RunOptions{.seed = 31});
  const auto threaded = run_trials(params, NetworkDesign::SurfNet, 6,
                                   RunOptions{.seed = 31, .threads = 3});
  EXPECT_DOUBLE_EQ(threaded.fidelity.mean(), current.fidelity.mean());
  EXPECT_DOUBLE_EQ(threaded.latency.mean(), current.latency.mean());
  EXPECT_DOUBLE_EQ(threaded.throughput.mean(), current.throughput.mean());
}

namespace {

/// Run `trials` with a capture buffer + registry attached and return the
/// concatenated JSONL trace and the metrics JSON document.
std::pair<std::string, std::string> traced_run(int trials, int threads) {
  const auto params =
      make_scenario(FacilityLevel::Sufficient, ConnectionQuality::Good);
  obs::TraceBuffer trace;
  obs::MetricsRegistry metrics;
  RunOptions options;
  options.seed = 2024;
  options.threads = threads;
  options.sink = {&metrics, &trace};
  run_trials(params, NetworkDesign::SurfNet, trials, options);
  std::string jsonl;
  for (const auto& event : trace.events()) {
    jsonl += obs::to_jsonl(event);
    jsonl += '\n';
  }
  return {std::move(jsonl), metrics.to_json()};
}

}  // namespace

namespace {

/// Blank the "timers" section of a metrics JSON document: timers hold
/// measured wall-clock seconds, the one legitimately run-varying part.
std::string without_timers(std::string json) {
  const auto begin = json.find("\"timers\": {");
  if (begin == std::string::npos) return json;
  const auto end = json.find('}', begin);
  return json.erase(begin, end - begin + 1);
}

}  // namespace

TEST(Experiment, TraceIsThreadCountInvariant) {
  const auto [trace1, metrics1] = traced_run(6, /*threads=*/1);
  const auto [trace8, metrics8] = traced_run(6, /*threads=*/8);
  EXPECT_FALSE(trace1.empty());
  EXPECT_EQ(trace1, trace8);
  // Counters and histograms are integer sums merged in trial order, so
  // everything except the measured wall-clock timers must match byte for
  // byte.
  EXPECT_EQ(without_timers(metrics1), without_timers(metrics8));
}

TEST(Experiment, SinkDoesNotPerturbResults) {
  const auto params =
      make_scenario(FacilityLevel::Sufficient, ConnectionQuality::Good);
  const auto bare = run_trials(params, NetworkDesign::SurfNet, 5,
                               RunOptions{.seed = 12});
  obs::TraceBuffer trace;
  obs::MetricsRegistry metrics;
  const auto traced =
      run_trials(params, NetworkDesign::SurfNet, 5,
                 RunOptions{.seed = 12, .sink = {&metrics, &trace}});
  EXPECT_DOUBLE_EQ(traced.fidelity.mean(), bare.fidelity.mean());
  EXPECT_DOUBLE_EQ(traced.latency.mean(), bare.latency.mean());
  EXPECT_DOUBLE_EQ(traced.throughput.mean(), bare.throughput.mean());
  EXPECT_GT(metrics.counter("sim.decodes"), 0);
  EXPECT_GT(metrics.counter("lp.solves"), 0);
}

TEST(Experiment, TrialEventTotalsReconcileWithMetrics) {
  // The acceptance check from the trace design: per-event totals in the
  // trace agree exactly with the aggregated counters.
  obs::TraceBuffer trace;
  obs::MetricsRegistry metrics;
  const auto params =
      make_scenario(FacilityLevel::Sufficient, ConnectionQuality::Good);
  run_trials(params, NetworkDesign::SurfNet, 4,
             RunOptions{.seed = 77, .sink = {&metrics, &trace}});
  std::int64_t decodes = 0, delivered = 0, jumps = 0, pool_samples = 0;
  for (const auto& event : trace.events()) {
    switch (event.kind) {
      case obs::EventKind::Decode: ++decodes; break;
      case obs::EventKind::Delivered: ++delivered; break;
      case obs::EventKind::SegmentJump: ++jumps; break;
      case obs::EventKind::PoolLevel: ++pool_samples; break;
      default: break;
    }
  }
  EXPECT_EQ(decodes, metrics.counter("sim.decodes"));
  EXPECT_EQ(delivered, metrics.counter("sim.delivered"));
  EXPECT_EQ(jumps, metrics.counter("sim.segment_jumps"));
  const auto* pool = metrics.histogram("sim.pool_total");
  ASSERT_NE(pool, nullptr);
  EXPECT_EQ(pool_samples, pool->total);
}

}  // namespace
}  // namespace surfnet::core
