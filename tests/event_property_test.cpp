// Extended differential campaign: the event engine must reproduce the
// slot oracle bitwise — SimulationResult, trace, and post-run RNG stream —
// across randomized fault plans, recovery policies, entanglement rates
// (integral and fractional), schedules, and observation modes. Each
// failing case prints a SURFNET_PROP_SEED that replays it in isolation.

#include "proptest.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "decoder/surfnet_decoder.h"
#include "netsim/event_simulator.h"
#include "netsim/simulator.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/rng.h"

namespace surfnet {
namespace {

using netsim::FaultEvent;
using netsim::FaultKind;
using netsim::FaultPlan;
using netsim::SimEngine;
using netsim::Topology;

/// Ring fixture shared with the netsim tests: user(0) - sw(1) - server(2)
/// - sw(3) - user(4), bypass sw(5) between 1 and 3.
Topology ring_topology() {
  std::vector<netsim::Node> nodes(6);
  nodes[1] = {netsim::NodeRole::Switch, 1000};
  nodes[2] = {netsim::NodeRole::Server, 1000};
  nodes[3] = {netsim::NodeRole::Switch, 1000};
  nodes[5] = {netsim::NodeRole::Switch, 1000};
  std::vector<netsim::Fiber> fibers{{0, 1, 0.95, 50}, {1, 2, 0.95, 50},
                                    {2, 3, 0.95, 50}, {3, 4, 0.95, 50},
                                    {1, 5, 0.95, 50}, {5, 3, 0.95, 50}};
  return Topology(std::move(nodes), std::move(fibers));
}

netsim::Schedule random_schedule(util::Rng& rng) {
  netsim::Schedule schedule;
  const int requests = proptest::chance(rng, 0.7) ? 1 : 2;
  for (int r = 0; r < requests; ++r) {
    netsim::ScheduledRequest s;
    s.request_index = r;
    s.codes = proptest::int_in(rng, 1, 6);
    s.support_path = {0, 1, 2, 3, 4};
    if (proptest::chance(rng, 0.75)) s.core_path = {0, 1, 2, 3, 4};
    if (proptest::chance(rng, 0.5)) s.ec_servers = {2};
    schedule.requested_codes += s.codes;
    schedule.scheduled.push_back(s);
  }
  return schedule;
}

FaultPlan random_fault_plan(util::Rng& rng, const Topology& topo) {
  FaultPlan plan;
  const int scripted = proptest::int_in(rng, 0, 6);
  for (int i = 0; i < scripted; ++i) {
    FaultEvent event;
    event.kind = static_cast<FaultKind>(proptest::int_in(rng, 0, 3));
    event.slot = proptest::int_in(rng, 0, 400);
    event.duration = proptest::int_in(rng, 1, 300);
    switch (event.kind) {
      case FaultKind::FiberCut:
      case FaultKind::EntanglementDegradation:
        event.target = proptest::int_in(rng, 0, topo.num_fibers() - 1);
        break;
      case FaultKind::NodeOutage:
        event.target = proptest::int_in(rng, 1, topo.num_nodes() - 1);
        break;
      case FaultKind::DecodeStall:
        event.target = -1;
        break;
    }
    // Mix factors that keep the degraded rate integral (0, 1) with ones
    // that make it fractional — the latter exercises the per-slot draw
    // preservation inside degradation windows.
    event.magnitude =
        event.kind == FaultKind::EntanglementDegradation
            ? proptest::pick(rng,
                             std::vector<double>{0.0, 0.25, 0.3, 0.5, 1.0})
            : 1.0;
    plan.scripted.push_back(event);
  }
  // Stochastic processes force the engine into dense mode; keep a healthy
  // share of scripted-only plans so skip mode is exercised as often.
  if (proptest::chance(rng, 0.35))
    plan.stochastic.fiber_cut_rate = proptest::real_in(rng, 0.0, 0.05);
  if (proptest::chance(rng, 0.2)) {
    plan.stochastic.correlated_cut_rate = proptest::real_in(rng, 0.0, 0.02);
    plan.stochastic.correlated_group_size = proptest::int_in(rng, 1, 4);
  }
  if (proptest::chance(rng, 0.2))
    plan.stochastic.node_outage_rate = proptest::real_in(rng, 0.0, 0.01);
  if (proptest::chance(rng, 0.25)) {
    plan.stochastic.degradation_rate = proptest::real_in(rng, 0.0, 0.05);
    plan.stochastic.degradation_factor = proptest::real_in(rng, 0.0, 1.0);
  }
  if (proptest::chance(rng, 0.2))
    plan.stochastic.decode_stall_rate = proptest::real_in(rng, 0.0, 0.02);
  return plan;
}

netsim::SimulationParams random_sim_params(util::Rng& rng,
                                           const Topology& topo) {
  netsim::SimulationParams params;
  params.max_slots = proptest::pick(rng, std::vector<int>{60, 400, 2500});
  params.entanglement_rate =
      proptest::pick(rng, std::vector<double>{0.0, 1.0, 2.5, 3.0, 6.0});
  params.faults = random_fault_plan(rng, topo);
  if (proptest::chance(rng, 0.5)) {
    params.recovery.max_swap_retries = proptest::int_in(rng, 0, 4);
    params.recovery.escalate_after_reroutes = proptest::int_in(rng, 0, 3);
    params.recovery.code_timeout_slots =
        proptest::chance(rng, 0.4) ? proptest::int_in(rng, 40, 600) : 0;
  }
  if (proptest::chance(rng, 0.25)) params.recovery.local_reroute = false;
  if (proptest::chance(rng, 0.4))
    params.swap_success = proptest::real_in(rng, 0.5, 1.0);
  return params;
}

std::string dump(const netsim::SimulationResult& r) {
  std::ostringstream out;
  out << r.codes_scheduled << '/' << r.codes_delivered << '/'
      << r.codes_succeeded << '/' << r.total_latency << '\n';
  for (const auto& c : r.codes)
    out << c.request << ' ' << c.slots << ' ' << c.corrections << ' '
        << static_cast<int>(c.outcome) << '\n';
  return out.str();
}

std::string jsonl_of(const obs::TraceBuffer& buffer) {
  std::string out;
  for (const auto& event : buffer.events()) out += obs::to_jsonl(event) + "\n";
  return out;
}

struct RunOutput {
  std::string result;
  std::string trace;
  std::vector<std::uint64_t> rng_tail;
};

RunOutput run_engine(SimEngine engine, const Topology& topo,
                     const netsim::Schedule& schedule,
                     netsim::SimulationParams params, std::uint64_t seed,
                     bool observed, obs::TraceBuffer& trace,
                     obs::MetricsRegistry& metrics) {
  const decoder::SurfNetDecoder dec;
  if (observed) params.sink = {&metrics, &trace};
  util::Rng rng(seed);
  const auto simulator =
      netsim::make_simulator(netsim::NetworkDesign::SurfNet, dec, engine);
  const auto result = simulator->run(topo, schedule, params, rng);
  RunOutput out;
  out.result = dump(result);
  out.trace = jsonl_of(trace);
  for (int i = 0; i < 4; ++i) out.rng_tail.push_back(rng());
  return out;
}

// P: for any (schedule, fault plan, policy, rate, seed, observation mode),
// both engines produce the same result, trace, and RNG stream.
TEST(EventEngineProperty, MatchesSlotOracleBitwise) {
  const auto topo = ring_topology();
  proptest::Config config;
  config.iterations = 300;
  proptest::check("event_engine_differential", config, [&](util::Rng& rng) {
    const auto schedule = random_schedule(rng);
    const auto params = random_sim_params(rng, topo);
    const bool observed = proptest::chance(rng, 0.35);
    const std::uint64_t seed = rng();

    obs::TraceBuffer trace_slot, trace_event;
    obs::MetricsRegistry metrics_slot, metrics_event;
    const auto slot = run_engine(SimEngine::Slot, topo, schedule, params,
                                 seed, observed, trace_slot, metrics_slot);
    const auto event = run_engine(SimEngine::Event, topo, schedule, params,
                                  seed, observed, trace_event, metrics_event);
    ASSERT_EQ(slot.result, event.result);
    ASSERT_EQ(slot.trace, event.trace);
    ASSERT_EQ(slot.rng_tail, event.rng_tail);
  });
}

}  // namespace
}  // namespace surfnet
