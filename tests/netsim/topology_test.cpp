#include "netsim/topology.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "util/rng.h"

namespace surfnet::netsim {
namespace {

TopologySpec default_spec() {
  TopologySpec spec;
  spec.num_nodes = 24;
  spec.attach_edges = 2;
  spec.num_servers = 3;
  spec.num_switches = 8;
  spec.storage_capacity = 50;
  spec.entanglement_capacity = 10;
  return spec;
}

TEST(Topology, HandBuiltGraphBasics) {
  std::vector<Node> nodes(3);
  nodes[1].role = NodeRole::Switch;
  nodes[1].storage_capacity = 5;
  std::vector<Fiber> fibers{{0, 1, 0.9, 4}, {1, 2, 0.8, 4}};
  const Topology topo(std::move(nodes), std::move(fibers));
  EXPECT_EQ(topo.num_nodes(), 3);
  EXPECT_EQ(topo.num_fibers(), 2);
  EXPECT_TRUE(topo.is_user(0));
  EXPECT_TRUE(topo.is_switch_or_server(1));
  EXPECT_FALSE(topo.is_server(1));
  EXPECT_EQ(topo.other_end(0, 0), 1);
  EXPECT_EQ(topo.other_end(0, 1), 0);
  EXPECT_EQ(topo.fiber_between(0, 1), 0);
  EXPECT_EQ(topo.fiber_between(0, 2), -1);
  EXPECT_TRUE(topo.connected());
  EXPECT_NEAR(topo.fiber_noise(0), std::log(1.0 / 0.9), 1e-12);
}

TEST(Topology, RejectsBadFibers) {
  std::vector<Node> nodes(2);
  EXPECT_THROW(Topology(nodes, {{0, 0, 0.9, 1}}), std::invalid_argument);
  EXPECT_THROW(Topology(nodes, {{0, 5, 0.9, 1}}), std::invalid_argument);
  EXPECT_THROW(Topology(nodes, {{0, 1, 1.5, 1}}), std::invalid_argument);
}

TEST(Topology, DisconnectedGraphDetected) {
  std::vector<Node> nodes(4);
  const Topology topo(std::move(nodes), {{0, 1, 0.9, 1}, {2, 3, 0.9, 1}});
  EXPECT_FALSE(topo.connected());
}

TEST(RandomTopology, GeneratesConnectedGraphWithRequestedCounts) {
  util::Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const auto spec = default_spec();
    const auto topo = make_random_topology(spec, rng);
    EXPECT_EQ(topo.num_nodes(), spec.num_nodes);
    EXPECT_TRUE(topo.connected());
    EXPECT_EQ(static_cast<int>(topo.servers().size()), spec.num_servers);
    EXPECT_EQ(static_cast<int>(topo.switches_and_servers().size()),
              spec.num_servers + spec.num_switches);
    EXPECT_EQ(static_cast<int>(topo.users().size()),
              spec.num_nodes - spec.num_servers - spec.num_switches);
  }
}

TEST(RandomTopology, FiberFidelitiesInRange) {
  util::Rng rng(6);
  auto spec = default_spec();
  spec.fidelity_lo = 0.5;
  const auto topo = make_random_topology(spec, rng);
  for (int e = 0; e < topo.num_fibers(); ++e) {
    EXPECT_GE(topo.fiber(e).fidelity, 0.5);
    EXPECT_LE(topo.fiber(e).fidelity, 1.0);
    EXPECT_EQ(topo.fiber(e).entanglement_capacity,
              spec.entanglement_capacity);
  }
}

TEST(RandomTopology, ServersAreHighestDegreeNodes) {
  util::Rng rng(7);
  const auto topo = make_random_topology(default_spec(), rng);
  auto degree = [&](int v) { return topo.incident(v).size(); };
  std::size_t min_server_degree = SIZE_MAX;
  for (int v : topo.servers())
    min_server_degree = std::min(min_server_degree, degree(v));
  std::size_t max_user_degree = 0;
  for (int v : topo.users())
    max_user_degree = std::max(max_user_degree, degree(v));
  EXPECT_GE(min_server_degree, max_user_degree);
}

TEST(RandomTopology, PreferentialAttachmentSkewsDegrees) {
  // BA graphs have hubs: the maximum degree should clearly exceed the
  // attachment parameter m.
  util::Rng rng(8);
  auto spec = default_spec();
  spec.num_nodes = 60;
  const auto topo = make_random_topology(spec, rng);
  std::size_t max_degree = 0;
  for (int v = 0; v < topo.num_nodes(); ++v)
    max_degree = std::max(max_degree, topo.incident(v).size());
  EXPECT_GE(max_degree, 8u);
}

TEST(RandomTopology, UsersHoldNoStorage) {
  util::Rng rng(9);
  const auto topo = make_random_topology(default_spec(), rng);
  for (int v : topo.users()) EXPECT_EQ(topo.node(v).storage_capacity, 0);
  for (int v : topo.switches_and_servers())
    EXPECT_EQ(topo.node(v).storage_capacity, 50);
}

TEST(RandomTopology, RejectsImpossibleSpecs) {
  util::Rng rng(10);
  TopologySpec spec;
  spec.num_nodes = 2;
  EXPECT_THROW(make_random_topology(spec, rng), std::invalid_argument);
  spec = TopologySpec{};
  spec.num_nodes = 10;
  spec.num_servers = 5;
  spec.num_switches = 5;
  EXPECT_THROW(make_random_topology(spec, rng), std::invalid_argument);
}

TEST(RandomTopology, DeterministicForSameSeed) {
  util::Rng rng1(42), rng2(42);
  const auto a = make_random_topology(default_spec(), rng1);
  const auto b = make_random_topology(default_spec(), rng2);
  ASSERT_EQ(a.num_fibers(), b.num_fibers());
  for (int e = 0; e < a.num_fibers(); ++e) {
    EXPECT_EQ(a.fiber(e).a, b.fiber(e).a);
    EXPECT_EQ(a.fiber(e).b, b.fiber(e).b);
    EXPECT_DOUBLE_EQ(a.fiber(e).fidelity, b.fiber(e).fidelity);
  }
}

TEST(GridTopology, ShapeRolesAndConnectivity) {
  GridSpec spec;
  spec.width = 5;
  spec.height = 4;
  spec.server_stride = 3;
  util::Rng rng(7);
  const auto topo = make_grid_topology(spec, rng);
  ASSERT_EQ(topo.num_nodes(), 20);
  // 4-neighbor grid: w*(h-1) vertical + (w-1)*h horizontal fibers.
  EXPECT_EQ(topo.num_fibers(), 5 * 3 + 4 * 4);
  EXPECT_TRUE(topo.connected());

  int users = 0, servers = 0, switches = 0;
  for (int v = 0; v < topo.num_nodes(); ++v) {
    const int r = v / spec.width, c = v % spec.width;
    const bool boundary =
        r == 0 || c == 0 || r == spec.height - 1 || c == spec.width - 1;
    EXPECT_EQ(topo.is_user(v), boundary) << "node " << v;
    if (topo.is_user(v)) {
      ++users;
      EXPECT_EQ(topo.node(v).storage_capacity, 0);
    } else {
      topo.is_server(v) ? ++servers : ++switches;
      EXPECT_EQ(topo.node(v).storage_capacity, spec.storage_capacity);
    }
  }
  EXPECT_EQ(users, 14);              // boundary of a 5x4 grid
  EXPECT_EQ(servers + switches, 6);  // 3x2 interior
  EXPECT_EQ(servers, 2);             // every 3rd interior node
}

TEST(GridTopology, RejectsDegenerateGrids) {
  util::Rng rng(1);
  GridSpec spec;
  spec.width = 2;
  EXPECT_THROW(make_grid_topology(spec, rng), std::invalid_argument);
  spec.width = 4;
  spec.server_stride = 0;
  EXPECT_THROW(make_grid_topology(spec, rng), std::invalid_argument);
}

}  // namespace
}  // namespace surfnet::netsim
