// Differential tests for the event-driven engine: simulate_surfnet_event
// must reproduce simulate_surfnet bitwise — SimulationResult, JSONL trace,
// metrics document (modulo the engine's own "sim.event_*" keys), and the
// RNG stream (verified by comparing draws *after* the runs) — plus unit
// tests for the deterministic event queue itself. The heavy randomized
// matrix lives in tests/event_property_test.cpp (extended label).

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/surfnet.h"
#include "decoder/surfnet_decoder.h"
#include "netsim/event_queue.h"
#include "netsim/event_simulator.h"
#include "netsim/simulator.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/rng.h"

namespace surfnet::netsim {
namespace {

// ---------------------------------------------------------------- queue --

TEST(EventQueue, PopsBySlotThenClassThenSequence) {
  EventQueue queue;
  queue.push(7, EventClass::CodeWake, 1);
  queue.push(3, EventClass::RetryTimer, 2);
  queue.push(3, EventClass::FaultOnset, 3);
  queue.push(7, EventClass::CodeWake, 4);   // same key as the first push
  queue.push(3, EventClass::FaultExpiry, 5);
  queue.push(1, EventClass::CodeWake, 6);

  std::vector<int> payloads;
  while (!queue.empty()) payloads.push_back(queue.pop().payload);
  // slot 1 first; slot 3 by class priority (onset < expiry < retry);
  // slot 7 ties broken by push order.
  EXPECT_EQ(payloads, (std::vector<int>{6, 3, 5, 2, 1, 4}));
}

TEST(EventQueue, SequenceIdsMakeEqualKeysFifo) {
  EventQueue queue;
  for (int i = 0; i < 100; ++i) queue.push(5, EventClass::CodeWake, i);
  for (int i = 0; i < 100; ++i) {
    const auto event = queue.pop();
    EXPECT_EQ(event.payload, i);
    EXPECT_EQ(event.seq, static_cast<std::uint64_t>(i));
  }
}

TEST(EventQueue, TracksPeakAndPushCount) {
  EventQueue queue;
  queue.push(1, EventClass::CodeWake);
  queue.push(2, EventClass::CodeWake);
  queue.pop();
  queue.push(3, EventClass::CodeWake);
  EXPECT_EQ(queue.peak_size(), 2u);
  EXPECT_EQ(queue.pushed(), 3u);
  EXPECT_EQ(queue.size(), 2u);
}

TEST(EventEngine, NamesAndFallbacks) {
  EXPECT_EQ(to_string(SimEngine::Slot), "slot");
  EXPECT_EQ(to_string(SimEngine::Event), "event");
  EXPECT_EQ(to_string(EventClass::FaultOnset), "fault_onset");
  EXPECT_EQ(to_string(EventClass::EntanglementReady), "entanglement_ready");
  const decoder::SurfNetDecoder dec;
  EXPECT_EQ(make_simulator(NetworkDesign::SurfNet, dec, SimEngine::Event)
                ->name(),
            "surfnet-event");
  EXPECT_EQ(make_simulator(NetworkDesign::Raw, dec, SimEngine::Slot)->name(),
            "surfnet");
  // Purification has no event engine: both selections run the slot loop.
  EXPECT_EQ(
      make_simulator(NetworkDesign::Purification2, dec, SimEngine::Event)
          ->name(),
      "purification");
}

// --------------------------------------------------- differential rigs --

/// Ring: user(0) - sw(1) - server(2) - sw(3) - user(4), plus bypass sw(5)
/// connecting 1 and 3 (the golden-trace fixture).
Topology ring_topology(double fidelity = 0.95) {
  std::vector<Node> nodes(6);
  nodes[1] = {NodeRole::Switch, 1000};
  nodes[2] = {NodeRole::Server, 1000};
  nodes[3] = {NodeRole::Switch, 1000};
  nodes[5] = {NodeRole::Switch, 1000};
  std::vector<Fiber> fibers{{0, 1, fidelity, 50}, {1, 2, fidelity, 50},
                            {2, 3, fidelity, 50}, {3, 4, fidelity, 50},
                            {1, 5, fidelity, 50}, {5, 3, fidelity, 50}};
  return Topology(std::move(nodes), std::move(fibers));
}

Schedule one_request(int codes, bool dual, std::vector<int> ec = {}) {
  Schedule schedule;
  schedule.requested_codes = codes;
  ScheduledRequest s;
  s.request_index = 0;
  s.codes = codes;
  s.support_path = {0, 1, 2, 3, 4};
  if (dual) s.core_path = {0, 1, 2, 3, 4};
  s.ec_servers = std::move(ec);
  schedule.scheduled.push_back(s);
  return schedule;
}

std::string dump(const SimulationResult& r) {
  std::ostringstream out;
  out << r.codes_scheduled << '/' << r.codes_delivered << '/'
      << r.codes_succeeded << '/' << r.total_latency << '\n';
  for (const auto& c : r.codes)
    out << c.request << ' ' << c.slots << ' ' << c.corrections << ' '
        << static_cast<int>(c.outcome) << '\n';
  return out.str();
}

std::string jsonl_of(const obs::TraceBuffer& buffer) {
  std::string out;
  for (const auto& event : buffer.events()) out += obs::to_jsonl(event) + "\n";
  return out;
}

/// Blank the "timers" section of a metrics document (measured wall-clock,
/// the one legitimately run-varying part).
std::string without_timers(std::string json) {
  const auto begin = json.find("\"timers\": {");
  if (begin == std::string::npos) return json;
  const auto end = json.find('}', begin);
  return json.erase(begin, end - begin + 1);
}

/// Drop the event engine's own observability keys ("sim.event_*": queue
/// peak and visit/skip counters) — the documented, deliberate metric
/// difference between the engines. Everything else must match bitwise.
std::string without_event_engine_keys(std::string json) {
  for (;;) {
    const auto pos = json.find("\"sim.event_");
    if (pos == std::string::npos) return json;
    auto end = json.find_first_of(",}", pos);  // values are plain numbers
    std::size_t begin = pos;
    if (end != std::string::npos && json[end] == ',') {
      ++end;
      while (end < json.size() && (json[end] == ' ' || json[end] == '\n'))
        ++end;
    } else {
      const auto prev = json.find_last_of(",{", pos);
      if (prev != std::string::npos && json[prev] == ',') begin = prev;
    }
    json.erase(begin, end - begin);
  }
}

struct RunOutput {
  std::string result;
  std::string trace;
  std::string metrics;
  std::vector<std::uint64_t> rng_tail;  ///< draws after the run
};

RunOutput run_engine(SimEngine engine, const Topology& topo,
                     const Schedule& schedule, SimulationParams params,
                     std::uint64_t seed, bool observed) {
  const decoder::SurfNetDecoder dec;
  obs::TraceBuffer trace;
  obs::MetricsRegistry metrics;
  if (observed) params.sink = {&metrics, &trace};
  util::Rng rng(seed);
  const auto simulator = make_simulator(NetworkDesign::SurfNet, dec, engine);
  const auto result = simulator->run(topo, schedule, params, rng);
  RunOutput out;
  out.result = dump(result);
  out.trace = jsonl_of(trace);
  out.metrics = without_event_engine_keys(without_timers(metrics.to_json()));
  for (int i = 0; i < 4; ++i) out.rng_tail.push_back(rng());
  return out;
}

void expect_bitwise(const Topology& topo, const Schedule& schedule,
                    const SimulationParams& params, std::uint64_t seed,
                    bool observed, const char* label) {
  const auto slot = run_engine(SimEngine::Slot, topo, schedule, params, seed,
                               observed);
  const auto event = run_engine(SimEngine::Event, topo, schedule, params,
                                seed, observed);
  EXPECT_EQ(slot.result, event.result) << label << ": SimulationResult";
  EXPECT_EQ(slot.trace, event.trace) << label << ": trace";
  EXPECT_EQ(slot.metrics, event.metrics) << label << ": metrics";
  EXPECT_EQ(slot.rng_tail, event.rng_tail) << label << ": RNG stream";
}

// ------------------------------------------------------- differentials --

TEST(EventEngineDifferential, GoldenFaultCampaignBitwise) {
  // The exact configuration pinned by golden/ring_faults.jsonl: scripted
  // events of every kind (including a fractional-rate degradation window:
  // 3.0 * 0.3) plus a stochastic fiber-cut process, fully observed.
  SimulationParams params;
  params.max_slots = 300;
  params.entanglement_rate = 3.0;
  params.faults.scripted.push_back(
      {FaultKind::EntanglementDegradation, 10, 0, 40, 0.3});
  params.faults.scripted.push_back({FaultKind::FiberCut, 25, 1, 30, 1.0});
  params.faults.scripted.push_back({FaultKind::DecodeStall, 40, -1, 10, 1.0});
  params.faults.scripted.push_back({FaultKind::NodeOutage, 60, 5, 20, 1.0});
  params.faults.stochastic.fiber_cut_rate = 0.02;
  params.faults.stochastic.fiber_cut_duration = 15;
  expect_bitwise(ring_topology(), one_request(6, true, {2}), params, 20240806,
                 /*observed=*/true, "fault campaign");
}

TEST(EventEngineDifferential, GoldenRecoveryCampaignBitwise) {
  // The golden/ring_recovery.jsonl configuration: permanent cut, flaky
  // swaps, aggressive recovery, per-code timeout budget.
  SimulationParams params;
  params.max_slots = 600;
  params.swap_success = 0.5;
  params.recovery = RecoveryPolicy::aggressive();
  params.recovery.code_timeout_slots = 120;
  params.faults.scripted.push_back({FaultKind::FiberCut, 5, 1, 5000, 1.0});
  expect_bitwise(ring_topology(), one_request(4, true, {2}), params, 424242,
                 /*observed=*/true, "recovery campaign");
}

TEST(EventEngineDifferential, SkipModeScriptedFaultsBitwise) {
  // Null sink + one request + scripted-only faults + integral base rate:
  // the configuration where the event engine actually skips slots. The
  // scripted set stresses every wake path — blocked support, broken core
  // segments, a fractional degradation window, a decode stall over the
  // barrier, and recovery escalation over a long gap.
  SimulationParams params;
  params.max_slots = 2000;
  params.entanglement_rate = 3.0;
  params.swap_success = 0.5;
  params.recovery = RecoveryPolicy::aggressive();
  params.recovery.code_timeout_slots = 300;
  params.faults.scripted.push_back({FaultKind::FiberCut, 5, 1, 80, 1.0});
  params.faults.scripted.push_back(
      {FaultKind::EntanglementDegradation, 30, 2, 60, 0.5});
  params.faults.scripted.push_back({FaultKind::NodeOutage, 100, 3, 40, 1.0});
  params.faults.scripted.push_back({FaultKind::DecodeStall, 150, -1, 25, 1.0});
  for (const bool dual : {true, false})
    for (const std::uint64_t seed : {7u, 99u, 20240808u})
      expect_bitwise(ring_topology(), one_request(5, dual, {2}), params, seed,
                     /*observed=*/false, "skip mode");
}

TEST(EventEngineDifferential, QuiescentStarvedRunCensorsAtCapBitwise) {
  // Zero generation rate and no faults: the core channel can never jump,
  // the event queue drains to empty, and the engine must censor the
  // in-flight code at max_slots - 1 exactly like the oracle's 20000-slot
  // sweep — without visiting the dead slots.
  SimulationParams params;
  params.entanglement_rate = 0.0;
  params.recovery.code_timeout_slots = 0;  // no budget: runs to the cap
  expect_bitwise(ring_topology(), one_request(2, true, {2}), params, 11,
                 /*observed=*/false, "starved run");
}

TEST(EventEngineDifferential, HeldWithoutRecoveryBitwise) {
  // local_reroute disabled: a blocked channel holds in place (inert) until
  // the window expires; wake-ups must come from the queued fault expiry.
  SimulationParams params;
  params.max_slots = 1500;
  params.entanglement_rate = 4.0;
  params.recovery.local_reroute = false;
  params.faults.scripted.push_back({FaultKind::FiberCut, 3, 0, 400, 1.0});
  params.faults.scripted.push_back({FaultKind::NodeOutage, 500, 2, 200, 1.0});
  expect_bitwise(ring_topology(), one_request(3, true, {2}), params, 5150,
                 /*observed=*/false, "held code");
}

TEST(EventEngineDifferential, EnginesAgreeThroughRunTrials) {
  // Facade-level check: core::run_trials with engine = Slot vs Event over
  // a chaotic multi-request scenario — merged trace, merged metrics
  // (modulo sim.event_*), identical RNG seeding per trial.
  auto params = core::make_scenario(core::FacilityLevel::Sufficient,
                                    core::ConnectionQuality::Poor);
  params.simulation.faults.stochastic.correlated_cut_rate = 0.01;
  params.simulation.faults.stochastic.node_outage_rate = 0.002;
  params.simulation.faults.stochastic.degradation_rate = 0.01;
  params.simulation.faults.stochastic.degradation_factor = 0.4;
  params.simulation.swap_success = 0.85;
  params.simulation.recovery = RecoveryPolicy::aggressive();

  auto run = [&](core::SimEngine engine) {
    obs::TraceBuffer trace;
    obs::MetricsRegistry metrics;
    core::RunOptions options;
    options.seed = 20240806;
    options.engine = engine;
    options.sink = {&metrics, &trace};
    const auto agg =
        core::run_trials(params, core::NetworkDesign::SurfNet, 4, options);
    std::ostringstream summary;
    summary << agg.fidelity.mean() << ' ' << agg.latency.mean() << ' '
            << agg.throughput.mean();
    return std::make_pair(
        jsonl_of(trace) + summary.str(),
        without_event_engine_keys(without_timers(metrics.to_json())));
  };
  const auto slot = run(core::SimEngine::Slot);
  const auto event = run(core::SimEngine::Event);
  EXPECT_EQ(slot.first, event.first);
  EXPECT_EQ(slot.second, event.second);
}

}  // namespace
}  // namespace surfnet::netsim
