// Tests of the deterministic fault-injection subsystem (netsim/faults.h):
// plan validation, scripted fault windows, stochastic processes, the
// FaultPlanBuilder (including the golden equivalence with the retired
// fiber_failure_rate knobs), and seed replayability.

#include "netsim/faults.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "decoder/surfnet_decoder.h"
#include "netsim/simulator.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/rng.h"

namespace surfnet::netsim {
namespace {

/// Ring: user(0) - sw(1) - server(2) - sw(3) - user(4), plus bypass sw(5)
/// connecting 1 and 3 (same shape as failure_test.cpp).
Topology ring_topology(double fidelity = 0.95) {
  std::vector<Node> nodes(6);
  nodes[1] = {NodeRole::Switch, 1000};
  nodes[2] = {NodeRole::Server, 1000};
  nodes[3] = {NodeRole::Switch, 1000};
  nodes[5] = {NodeRole::Switch, 1000};
  std::vector<Fiber> fibers{{0, 1, fidelity, 50}, {1, 2, fidelity, 50},
                            {2, 3, fidelity, 50}, {3, 4, fidelity, 50},
                            {1, 5, fidelity, 50}, {5, 3, fidelity, 50}};
  return Topology(std::move(nodes), std::move(fibers));
}

Schedule one_request(int codes, bool dual, std::vector<int> ec = {}) {
  Schedule schedule;
  schedule.requested_codes = codes;
  ScheduledRequest s;
  s.request_index = 0;
  s.codes = codes;
  s.support_path = {0, 1, 2, 3, 4};
  if (dual) s.core_path = {0, 1, 2, 3, 4};
  s.ec_servers = std::move(ec);
  schedule.scheduled.push_back(s);
  return schedule;
}

std::string jsonl_of(const obs::TraceBuffer& buffer) {
  std::string out;
  for (const auto& event : buffer.events()) out += obs::to_jsonl(event) + "\n";
  return out;
}

bool same_records(const SimulationResult& a, const SimulationResult& b) {
  if (a.codes_scheduled != b.codes_scheduled ||
      a.codes_delivered != b.codes_delivered ||
      a.codes_succeeded != b.codes_succeeded ||
      a.total_latency != b.total_latency ||
      a.codes.size() != b.codes.size())
    return false;
  for (std::size_t i = 0; i < a.codes.size(); ++i)
    if (a.codes[i].request != b.codes[i].request ||
        a.codes[i].slots != b.codes[i].slots ||
        a.codes[i].corrections != b.codes[i].corrections ||
        a.codes[i].outcome != b.codes[i].outcome)
      return false;
  return true;
}

TEST(FaultPlanValidation, RejectsMalformedPlans) {
  const auto topo = ring_topology();
  auto expect_rejected = [&](const FaultPlan& plan, const char* what) {
    EXPECT_THROW(FaultInjector(topo, plan), std::invalid_argument) << what;
  };

  FaultPlan rate;
  rate.stochastic.fiber_cut_rate = 1.5;
  expect_rejected(rate, "rate above 1");

  FaultPlan negative_rate;
  negative_rate.stochastic.node_outage_rate = -0.1;
  expect_rejected(negative_rate, "negative rate");

  FaultPlan duration;
  duration.stochastic.fiber_cut_rate = 0.1;
  duration.stochastic.fiber_cut_duration = 0;
  expect_rejected(duration, "non-positive duration");

  FaultPlan group;
  group.stochastic.correlated_cut_rate = 0.1;
  group.stochastic.correlated_group_size = 0;
  expect_rejected(group, "empty correlated group");

  FaultPlan factor;
  factor.stochastic.degradation_rate = 0.1;
  factor.stochastic.degradation_factor = 2.0;
  expect_rejected(factor, "degradation factor above 1");

  FaultPlan bad_fiber;
  bad_fiber.scripted.push_back({FaultKind::FiberCut, 0, 99, 5, 1.0});
  expect_rejected(bad_fiber, "fiber target out of range");

  FaultPlan bad_node;
  bad_node.scripted.push_back({FaultKind::NodeOutage, 0, -1, 5, 1.0});
  expect_rejected(bad_node, "node target out of range");

  FaultPlan bad_slot;
  bad_slot.scripted.push_back({FaultKind::FiberCut, -3, 0, 5, 1.0});
  expect_rejected(bad_slot, "negative slot");

  FaultPlan bad_magnitude;
  bad_magnitude.scripted.push_back(
      {FaultKind::EntanglementDegradation, 0, 0, 5, -0.5});
  expect_rejected(bad_magnitude, "magnitude out of range");
}

TEST(FaultPlanValidation, ErrorMessagesNameThePlan) {
  const auto topo = ring_topology();
  FaultPlan plan;
  plan.scripted.push_back({FaultKind::FiberCut, 0, 99, 5, 1.0});
  try {
    FaultInjector injector(topo, plan);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& err) {
    EXPECT_NE(std::string(err.what()).find("FaultPlan"), std::string::npos);
    EXPECT_NE(std::string(err.what()).find("99"), std::string::npos);
  }
}

TEST(FaultInjection, EmptyPlanIsInert) {
  const auto topo = ring_topology();
  FaultInjector injector(topo, FaultPlan{});
  EXPECT_TRUE(injector.inert());
  util::Rng probe(1);
  injector.begin_slot(0, probe, obs::Sink{});
  // An inert injector consumes no random variates.
  EXPECT_EQ(probe(), util::Rng(1)());
  EXPECT_FALSE(injector.fiber_down(0, 0));
  EXPECT_FALSE(injector.node_down(0, 0));
  EXPECT_DOUBLE_EQ(injector.entanglement_factor(0, 0), 1.0);
  EXPECT_FALSE(injector.decode_stalled(0));
}

TEST(FaultInjection, ScriptedWindowsAreHalfOpen) {
  const auto topo = ring_topology();
  FaultPlan plan;
  plan.scripted.push_back({FaultKind::FiberCut, 3, 1, 4, 1.0});
  plan.scripted.push_back({FaultKind::NodeOutage, 5, 2, 2, 1.0});
  plan.scripted.push_back({FaultKind::EntanglementDegradation, 2, 0, 3, 0.5});
  plan.scripted.push_back({FaultKind::DecodeStall, 4, -1, 2, 1.0});
  FaultInjector injector(topo, plan);
  EXPECT_FALSE(injector.inert());

  util::Rng rng(7);
  obs::MetricsRegistry metrics;
  obs::Sink sink;
  sink.metrics = &metrics;
  for (int slot = 0; slot < 10; ++slot) {
    injector.begin_slot(slot, rng, sink);
    EXPECT_EQ(injector.fiber_down(1, slot), slot >= 3 && slot < 7)
        << "slot " << slot;
    EXPECT_EQ(injector.node_down(2, slot), slot >= 5 && slot < 7)
        << "slot " << slot;
    EXPECT_DOUBLE_EQ(injector.entanglement_factor(0, slot),
                     slot >= 2 && slot < 5 ? 0.5 : 1.0)
        << "slot " << slot;
    EXPECT_EQ(injector.decode_stalled(slot), slot >= 4 && slot < 6)
        << "slot " << slot;
  }
  EXPECT_EQ(metrics.counter("sim.fiber_failures"), 1);
  EXPECT_EQ(metrics.counter("sim.node_outages"), 1);
  EXPECT_EQ(metrics.counter("sim.degradations"), 1);
  EXPECT_EQ(metrics.counter("sim.decode_stalls"), 1);
  // Scripted events consume no randomness.
  util::Rng fresh(7);
  EXPECT_EQ(rng(), fresh());
}

TEST(FaultInjection, CorrelatedCutTakesOutNeighboringFibers) {
  const auto topo = ring_topology();
  FaultPlan plan;
  plan.stochastic.correlated_cut_rate = 1.0;  // fire every slot
  plan.stochastic.correlated_group_size = 3;
  plan.stochastic.correlated_cut_duration = 10;
  FaultInjector injector(topo, plan);
  util::Rng rng(11);
  obs::MetricsRegistry metrics;
  obs::Sink sink;
  sink.metrics = &metrics;
  injector.begin_slot(0, rng, sink);
  int down = 0;
  for (int e = 0; e < topo.num_fibers(); ++e)
    down += injector.fiber_down(e, 0) ? 1 : 0;
  EXPECT_EQ(down, 3);
  EXPECT_EQ(metrics.counter("sim.fiber_failures"), 3);
}

TEST(FaultInjection, NodeOutagesNeverHitUsers) {
  const auto topo = ring_topology();
  FaultPlan plan;
  plan.stochastic.node_outage_rate = 1.0;
  FaultInjector injector(topo, plan);
  util::Rng rng(13);
  injector.begin_slot(0, rng, obs::Sink{});
  EXPECT_FALSE(injector.node_down(0, 0));
  EXPECT_FALSE(injector.node_down(4, 0));
  EXPECT_TRUE(injector.node_down(1, 0));
  EXPECT_TRUE(injector.node_down(2, 0));
}

TEST(FaultInjection, ReplayIsDeterministic) {
  const auto topo = ring_topology();
  FaultPlan plan;
  plan.stochastic.fiber_cut_rate = 0.2;
  plan.stochastic.node_outage_rate = 0.1;
  plan.stochastic.degradation_rate = 0.3;
  plan.stochastic.decode_stall_rate = 0.05;

  auto run = [&]() {
    FaultInjector injector(topo, plan);
    util::Rng rng(99);
    obs::TraceBuffer trace;
    obs::Sink sink;
    sink.trace = &trace;
    for (int slot = 0; slot < 200; ++slot)
      injector.begin_slot(slot, rng, sink);
    return jsonl_of(trace);
  };
  EXPECT_EQ(run(), run());
}

TEST(FaultPlanBuilderTest, BuilderAndFiberNoisePlanAreBitwiseIdentical) {
  // Golden equivalence: the builder's fiber_noise maps a retired
  // fiber_failure_rate/_duration configuration onto the same plan as
  // FaultPlan::fiber_noise, whose injector was in turn pinned bitwise
  // against the pre-plan simulator. Old configs therefore replay
  // bitwise-identically through the builder.
  const auto topo = ring_topology();
  const decoder::SurfNetDecoder dec;

  SimulationParams legacy;
  legacy.faults = FaultPlanBuilder().fiber_noise(0.05, 40).build();
  legacy.max_slots = 4000;

  SimulationParams planned;
  planned.faults = FaultPlan::fiber_noise(0.05, 40);
  planned.max_slots = 4000;

  obs::TraceBuffer trace_a, trace_b;
  obs::MetricsRegistry metrics_a, metrics_b;
  legacy.sink = obs::Sink{&metrics_a, &trace_a};
  planned.sink = obs::Sink{&metrics_b, &trace_b};

  util::Rng rng_a(21), rng_b(21);
  const auto a = simulate_surfnet(topo, one_request(10, true), legacy, dec,
                                  rng_a);
  const auto b = simulate_surfnet(topo, one_request(10, true), planned, dec,
                                  rng_b);
  EXPECT_TRUE(same_records(a, b));
  EXPECT_EQ(jsonl_of(trace_a), jsonl_of(trace_b));
  EXPECT_EQ(metrics_a.counter("sim.fiber_failures"),
            metrics_b.counter("sim.fiber_failures"));
  // The RNG streams stay in lockstep past the run.
  EXPECT_EQ(rng_a(), rng_b());
}

TEST(FaultPlanBuilderTest, FluentChainSetsEveryProcess) {
  FaultEvent scripted;
  scripted.kind = FaultKind::NodeOutage;
  scripted.slot = 7;
  scripted.target = 1;
  scripted.duration = 4;
  const FaultPlan plan = FaultPlanBuilder()
                             .fiber_noise(0.25, 12)
                             .correlated_cuts(0.01, 4, 30)
                             .node_outages(0.005, 15)
                             .degradation(0.02, 0.5, 25)
                             .decode_stalls(0.001, 8)
                             .scripted(scripted)
                             .build();
  EXPECT_DOUBLE_EQ(plan.stochastic.fiber_cut_rate, 0.25);
  EXPECT_EQ(plan.stochastic.fiber_cut_duration, 12);
  EXPECT_DOUBLE_EQ(plan.stochastic.correlated_cut_rate, 0.01);
  EXPECT_EQ(plan.stochastic.correlated_group_size, 4);
  EXPECT_EQ(plan.stochastic.correlated_cut_duration, 30);
  EXPECT_DOUBLE_EQ(plan.stochastic.node_outage_rate, 0.005);
  EXPECT_EQ(plan.stochastic.node_outage_duration, 15);
  EXPECT_DOUBLE_EQ(plan.stochastic.degradation_rate, 0.02);
  EXPECT_DOUBLE_EQ(plan.stochastic.degradation_factor, 0.5);
  EXPECT_EQ(plan.stochastic.degradation_duration, 25);
  EXPECT_DOUBLE_EQ(plan.stochastic.decode_stall_rate, 0.001);
  EXPECT_EQ(plan.stochastic.decode_stall_duration, 8);
  ASSERT_EQ(plan.scripted.size(), 1u);
  EXPECT_EQ(plan.scripted[0].kind, FaultKind::NodeOutage);
  EXPECT_EQ(plan.scripted[0].slot, 7);
}

TEST(FaultPlanBuilderTest, DefaultBuildIsEmpty) {
  EXPECT_TRUE(FaultPlanBuilder().build().empty());
}

TEST(FaultSimulation, ScriptedOutageBlocksAndHeals) {
  // Cut the only server's fibers forever on a path with no alternative:
  // nothing is delivered. Heal before the end: everything is delivered.
  std::vector<Node> nodes(3);
  nodes[1] = {NodeRole::Switch, 1000};
  std::vector<Fiber> fibers{{0, 1, 0.95, 50}, {1, 2, 0.95, 50}};
  const Topology topo(std::move(nodes), std::move(fibers));

  Schedule schedule;
  schedule.requested_codes = 1;
  ScheduledRequest s;
  s.request_index = 0;
  s.codes = 1;
  s.support_path = {0, 1, 2};
  s.core_path = {0, 1, 2};
  schedule.scheduled.push_back(s);

  const decoder::SurfNetDecoder dec;
  SimulationParams params;
  params.max_slots = 200;
  params.faults.scripted.push_back({FaultKind::NodeOutage, 0, 1, 50, 1.0});

  util::Rng rng(5);
  const auto result = simulate_surfnet(topo, schedule, params, dec, rng);
  EXPECT_EQ(result.codes_delivered, 1);
  // The outage of the only switch delays delivery past its window.
  ASSERT_EQ(result.codes.size(), 1u);
  EXPECT_GE(result.codes[0].slots, 50);
}

TEST(FaultSimulation, DecodeStallDelaysCorrections) {
  const auto topo = ring_topology();
  const decoder::SurfNetDecoder dec;

  SimulationParams stalled;
  stalled.max_slots = 500;
  stalled.faults.scripted.push_back({FaultKind::DecodeStall, 0, -1, 60, 1.0});
  SimulationParams clear;
  clear.max_slots = 500;

  util::Rng rng_a(31), rng_b(31);
  const auto slow =
      simulate_surfnet(topo, one_request(1, true), stalled, dec, rng_a);
  const auto fast =
      simulate_surfnet(topo, one_request(1, true), clear, dec, rng_b);
  ASSERT_EQ(slow.codes_delivered, 1);
  ASSERT_EQ(fast.codes_delivered, 1);
  // The readout at the destination cannot run before the stall clears.
  EXPECT_GE(slow.codes[0].slots, 60);
  EXPECT_LT(fast.codes[0].slots, 60);
}

TEST(FaultSimulation, DegradationStarvesTheCoreChannel) {
  const auto topo = ring_topology();
  const decoder::SurfNetDecoder dec;

  SimulationParams degraded;
  degraded.max_slots = 2000;
  degraded.entanglement_rate = 1.0;
  for (int e = 0; e < topo.num_fibers(); ++e)
    degraded.faults.scripted.push_back(
        {FaultKind::EntanglementDegradation, 0, e, 300, 0.0});
  SimulationParams healthy;
  healthy.max_slots = 2000;
  healthy.entanglement_rate = 1.0;

  util::Rng rng_a(41), rng_b(41);
  const auto starved =
      simulate_surfnet(topo, one_request(1, true), degraded, dec, rng_a);
  const auto normal =
      simulate_surfnet(topo, one_request(1, true), healthy, dec, rng_b);
  ASSERT_EQ(starved.codes_delivered, 1);
  ASSERT_EQ(normal.codes_delivered, 1);
  // Zero pair generation for 300 slots pins the Core part in place.
  EXPECT_GT(starved.codes[0].slots, normal.codes[0].slots + 200);
}

}  // namespace
}  // namespace surfnet::netsim
