// Tests of the online-execution extensions (paper Sec. V-B): fiber
// failures with local recovery paths, probabilistic entanglement swapping,
// and per-request adaptive code distances.

#include <gtest/gtest.h>

#include "decoder/surfnet_decoder.h"
#include "netsim/simulator.h"
#include "util/rng.h"

namespace surfnet::netsim {
namespace {

/// Ring of switches with one server, giving every route an alternative:
/// user(0) - sw(1) - server(2) - sw(3) - user(4), plus a bypass
/// sw(5) connecting 1 and 3 directly around the server.
Topology ring_topology(double fidelity = 0.95) {
  std::vector<Node> nodes(6);
  nodes[1] = {NodeRole::Switch, 1000};
  nodes[2] = {NodeRole::Server, 1000};
  nodes[3] = {NodeRole::Switch, 1000};
  nodes[5] = {NodeRole::Switch, 1000};
  std::vector<Fiber> fibers{{0, 1, fidelity, 50}, {1, 2, fidelity, 50},
                            {2, 3, fidelity, 50}, {3, 4, fidelity, 50},
                            {1, 5, fidelity, 50}, {5, 3, fidelity, 50}};
  return Topology(std::move(nodes), std::move(fibers));
}

Schedule one_request(int codes, bool dual, std::vector<int> ec = {}) {
  Schedule schedule;
  schedule.requested_codes = codes;
  ScheduledRequest s;
  s.request_index = 0;
  s.codes = codes;
  s.support_path = {0, 1, 2, 3, 4};
  if (dual) s.core_path = {0, 1, 2, 3, 4};
  s.ec_servers = std::move(ec);
  schedule.scheduled.push_back(s);
  return schedule;
}

TEST(Failures, RecoveryReroutesAroundDeadFiber) {
  // Heavy failure rate on a ring: with recovery, codes still arrive.
  const auto topo = ring_topology();
  const decoder::SurfNetDecoder dec;
  SimulationParams params;
  params.faults = FaultPlanBuilder().fiber_noise(0.05, 40).build();
  params.max_slots = 4000;
  util::Rng rng(21);
  const auto result =
      simulate_surfnet(topo, one_request(10, true), params, dec, rng);
  EXPECT_EQ(result.codes_delivered, 10);
}

TEST(Failures, WithoutRecoveryCodesWaitLonger) {
  const auto topo = ring_topology();
  const decoder::SurfNetDecoder dec;
  SimulationParams base;
  base.faults = FaultPlanBuilder().fiber_noise(0.04, 50).build();
  base.max_slots = 20000;

  SimulationParams with = base;
  SimulationParams without = base;
  without.recovery.local_reroute = false;

  util::Rng rng1(22), rng2(22);
  const auto fast =
      simulate_surfnet(topo, one_request(30, true), with, dec, rng1);
  const auto slow =
      simulate_surfnet(topo, one_request(30, true), without, dec, rng2);
  EXPECT_EQ(fast.codes_delivered, 30);
  EXPECT_EQ(slow.codes_delivered, 30);
  EXPECT_LT(fast.avg_latency(), slow.avg_latency());
}

TEST(Failures, NoAlternativeMeansWaiting) {
  // On a pure line there is no recovery path: failures only delay.
  std::vector<Node> nodes(3);
  nodes[1] = {NodeRole::Switch, 100};
  Topology topo(std::move(nodes), {{0, 1, 0.95, 50}, {1, 2, 0.95, 50}});
  Schedule schedule;
  schedule.requested_codes = 5;
  ScheduledRequest s;
  s.request_index = 0;
  s.codes = 5;
  s.support_path = {0, 1, 2};
  schedule.scheduled.push_back(s);

  const decoder::SurfNetDecoder dec;
  SimulationParams params;
  params.faults = FaultPlanBuilder().fiber_noise(0.10, 10).build();
  // Recovery stays on by default — there is just nothing to reroute onto.
  params.max_slots = 5000;
  util::Rng rng(23);
  const auto result = simulate_surfnet(topo, schedule, params, dec, rng);
  EXPECT_EQ(result.codes_delivered, 5);
  EXPECT_GT(result.avg_latency(), 2.0);
}

TEST(Swapping, ZeroSuccessStarvesTheCore) {
  const auto topo = ring_topology();
  const decoder::SurfNetDecoder dec;
  SimulationParams params;
  params.swap_success = 0.0;
  params.max_slots = 300;
  util::Rng rng(24);
  const auto result =
      simulate_surfnet(topo, one_request(2, true), params, dec, rng);
  EXPECT_EQ(result.codes_delivered, 0);
}

TEST(Swapping, LowerSuccessRaisesLatency) {
  const auto topo = ring_topology();
  const decoder::SurfNetDecoder dec;
  double latency[2] = {0, 0};
  int i = 0;
  for (const double p : {1.0, 0.5}) {
    SimulationParams params;
    params.swap_success = p;
    util::Rng rng(25);
    latency[i++] =
        simulate_surfnet(topo, one_request(40, true), params, dec, rng)
            .avg_latency();
  }
  EXPECT_GT(latency[1], latency[0]);
}

TEST(AdaptiveDistance, PerRequestDistanceIsHonored) {
  // A schedule that explicitly requests distance 5 must run distance-5
  // codes (9 Core qubits consume 9 pairs per fiber per jump).
  const auto topo = ring_topology(1.0);
  const decoder::SurfNetDecoder dec;
  SimulationParams params;
  params.loss_per_hop = 0.0;
  params.teleport_op_noise = 0.0;
  auto schedule = one_request(3, true);
  schedule.scheduled[0].code_distance = 5;
  util::Rng rng(26);
  const auto result = simulate_surfnet(topo, schedule, params, dec, rng);
  EXPECT_EQ(result.codes_delivered, 3);
  EXPECT_DOUBLE_EQ(result.fidelity(), 1.0);
}

TEST(AdaptiveDistance, MixedDistancesInOneSchedule) {
  const auto topo = ring_topology(0.95);
  const decoder::SurfNetDecoder dec;
  Schedule schedule;
  schedule.requested_codes = 4;
  for (const int d : {3, 5}) {
    ScheduledRequest s;
    s.request_index = 0;
    s.codes = 2;
    s.support_path = {0, 1, 2, 3, 4};
    s.core_path = {0, 1, 2, 3, 4};
    s.ec_servers = {2};
    s.code_distance = d;
    schedule.scheduled.push_back(s);
  }
  util::Rng rng(27);
  const auto result =
      simulate_surfnet(topo, schedule, SimulationParams{}, dec, rng);
  EXPECT_EQ(result.codes_delivered, 4);
}

}  // namespace
}  // namespace surfnet::netsim
