// Golden-trace regression tests: a fixed (seed, FaultPlan) pair must
// reproduce the committed JSONL event trace byte for byte. The traces under
// tests/netsim/golden/ pin the full observable behavior of the fault
// injector, the recovery policy, and the simulator around them — any
// unintentional change to event ordering, RNG consumption, or JSONL
// formatting fails here with a field-by-field diff. Regenerate after an
// *intentional* change with:
//
//   SURFNET_REGEN_GOLDEN=1 ctest -R GoldenTrace
//
// and review the golden-file diff like any other code change.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/surfnet.h"
#include "decoder/surfnet_decoder.h"
#include "netsim/simulator.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/rng.h"

namespace surfnet::netsim {
namespace {

/// Ring: user(0) - sw(1) - server(2) - sw(3) - user(4), plus bypass sw(5)
/// connecting 1 and 3 (same shape as failure_test.cpp).
Topology ring_topology(double fidelity = 0.95) {
  std::vector<Node> nodes(6);
  nodes[1] = {NodeRole::Switch, 1000};
  nodes[2] = {NodeRole::Server, 1000};
  nodes[3] = {NodeRole::Switch, 1000};
  nodes[5] = {NodeRole::Switch, 1000};
  std::vector<Fiber> fibers{{0, 1, fidelity, 50}, {1, 2, fidelity, 50},
                            {2, 3, fidelity, 50}, {3, 4, fidelity, 50},
                            {1, 5, fidelity, 50}, {5, 3, fidelity, 50}};
  return Topology(std::move(nodes), std::move(fibers));
}

Schedule one_request(int codes, bool dual, std::vector<int> ec = {}) {
  Schedule schedule;
  schedule.requested_codes = codes;
  ScheduledRequest s;
  s.request_index = 0;
  s.codes = codes;
  s.support_path = {0, 1, 2, 3, 4};
  if (dual) s.core_path = {0, 1, 2, 3, 4};
  s.ec_servers = std::move(ec);
  schedule.scheduled.push_back(s);
  return schedule;
}

std::string jsonl_of(const obs::TraceBuffer& buffer) {
  std::string out;
  for (const auto& event : buffer.events()) out += obs::to_jsonl(event) + "\n";
  return out;
}

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

/// Parse one flat JSONL event line ({"key":value,...}, no nesting, string
/// values without embedded commas) into key -> raw value text.
std::map<std::string, std::string> fields_of(const std::string& line) {
  std::map<std::string, std::string> fields;
  std::size_t i = 0;
  auto skip = [&](char c) {
    if (i < line.size() && line[i] == c) ++i;
  };
  skip('{');
  while (i < line.size() && line[i] != '}') {
    skip(',');
    if (line[i] != '"') break;
    const auto key_end = line.find('"', i + 1);
    if (key_end == std::string::npos) break;
    const std::string key = line.substr(i + 1, key_end - i - 1);
    i = key_end + 1;
    skip(':');
    const std::size_t start = i;
    if (i < line.size() && line[i] == '"') i = line.find('"', i + 1) + 1;
    while (i < line.size() && line[i] != ',' && line[i] != '}') ++i;
    fields[key] = line.substr(start, i - start);
  }
  return fields;
}

std::string golden_path(const char* name) {
  return std::string(SURFNET_TEST_DATA_DIR) + "/netsim/golden/" + name;
}

/// Compare `actual` against the committed golden trace. On mismatch the
/// failure names the first diverging lines and every differing field.
/// SURFNET_REGEN_GOLDEN=1 rewrites the file instead of comparing.
void expect_matches_golden(const std::string& actual, const char* name) {
  const auto path = golden_path(name);
  if (std::getenv("SURFNET_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    return;  // a freshly regenerated trace trivially matches
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden trace " << path
                         << " — regenerate with SURFNET_REGEN_GOLDEN=1";
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string golden = buffer.str();
  if (actual == golden) return;

  const auto actual_lines = lines_of(actual);
  const auto golden_lines = lines_of(golden);
  EXPECT_EQ(actual_lines.size(), golden_lines.size())
      << name << ": event count changed";
  const auto n = std::min(actual_lines.size(), golden_lines.size());
  int reported = 0;
  for (std::size_t i = 0; i < n && reported < 5; ++i) {
    if (actual_lines[i] == golden_lines[i]) continue;
    ++reported;
    const auto got = fields_of(actual_lines[i]);
    const auto want = fields_of(golden_lines[i]);
    for (const auto& [key, value] : want) {
      const auto it = got.find(key);
      if (it == got.end())
        ADD_FAILURE() << name << " line " << i + 1 << ": field \"" << key
                      << "\" missing (golden has " << value << ")";
      else if (it->second != value)
        ADD_FAILURE() << name << " line " << i + 1 << ": field \"" << key
                      << "\" is " << it->second << ", golden has " << value;
    }
    for (const auto& [key, value] : got)
      if (!want.count(key))
        ADD_FAILURE() << name << " line " << i + 1 << ": unexpected field \""
                      << key << "\" = " << value;
  }
}

bool has_event(const obs::TraceBuffer& trace, obs::EventKind kind) {
  for (const auto& event : trace.events())
    if (event.kind == kind) return true;
  return false;
}

TEST(GoldenTrace, FaultCampaignReplaysCommittedJsonl) {
  // One scripted event of every fault kind plus a stochastic per-fiber cut
  // process, on the ring fixture with a fixed seed.
  const auto topo = ring_topology();
  const decoder::SurfNetDecoder dec;
  SimulationParams params;
  params.max_slots = 300;
  params.entanglement_rate = 3.0;
  params.faults.scripted.push_back(
      {FaultKind::EntanglementDegradation, 10, 0, 40, 0.3});
  params.faults.scripted.push_back({FaultKind::FiberCut, 25, 1, 30, 1.0});
  params.faults.scripted.push_back({FaultKind::DecodeStall, 40, -1, 10, 1.0});
  params.faults.scripted.push_back({FaultKind::NodeOutage, 60, 5, 20, 1.0});
  params.faults.stochastic.fiber_cut_rate = 0.02;
  params.faults.stochastic.fiber_cut_duration = 15;

  obs::TraceBuffer trace;
  obs::MetricsRegistry metrics;
  params.sink = {&metrics, &trace};
  util::Rng rng(20240806);
  simulate_surfnet(topo, one_request(6, true, {2}), params, dec, rng);

  // The campaign must actually exercise every fault kind, or the golden
  // trace pins less than it claims to.
  EXPECT_TRUE(has_event(trace, obs::EventKind::FiberDown));
  EXPECT_TRUE(has_event(trace, obs::EventKind::NodeDown));
  EXPECT_TRUE(has_event(trace, obs::EventKind::Degraded));
  EXPECT_TRUE(has_event(trace, obs::EventKind::DecodeStall));
  expect_matches_golden(jsonl_of(trace), "ring_faults.jsonl");
}

TEST(GoldenTrace, RecoveryCampaignReplaysCommittedJsonl) {
  // A permanent cut on the direct server fiber with flaky swaps and the
  // aggressive policy: the trace pins local recoveries, bounded retries
  // with backoff, and the per-code timeout budget.
  const auto topo = ring_topology();
  const decoder::SurfNetDecoder dec;
  SimulationParams params;
  params.max_slots = 600;
  params.swap_success = 0.5;
  params.recovery = RecoveryPolicy::aggressive();
  params.recovery.code_timeout_slots = 120;
  params.faults.scripted.push_back({FaultKind::FiberCut, 5, 1, 5000, 1.0});

  obs::TraceBuffer trace;
  obs::MetricsRegistry metrics;
  params.sink = {&metrics, &trace};
  util::Rng rng(424242);
  simulate_surfnet(topo, one_request(4, true, {2}), params, dec, rng);

  EXPECT_TRUE(has_event(trace, obs::EventKind::FiberDown));
  EXPECT_TRUE(has_event(trace, obs::EventKind::Recovery));
  EXPECT_TRUE(has_event(trace, obs::EventKind::Retry));
  expect_matches_golden(jsonl_of(trace), "ring_recovery.jsonl");
}

/// Blank the "timers" section of a metrics JSON document: timers hold
/// measured wall-clock seconds, the one legitimately run-varying part.
std::string without_timers(std::string json) {
  const auto begin = json.find("\"timers\": {");
  if (begin == std::string::npos) return json;
  const auto end = json.find('}', begin);
  return json.erase(begin, end - begin + 1);
}

/// End-to-end chaos run through the core facade: stochastic correlated
/// cuts, node outages and degradations with the aggressive recovery
/// policy, traced and metered.
std::pair<std::string, std::string> chaos_run(int trials, int threads) {
  auto params = core::make_scenario(core::FacilityLevel::Sufficient,
                                    core::ConnectionQuality::Poor);
  params.simulation.faults.stochastic.correlated_cut_rate = 0.01;
  params.simulation.faults.stochastic.correlated_group_size = 3;
  params.simulation.faults.stochastic.correlated_cut_duration = 25;
  params.simulation.faults.stochastic.node_outage_rate = 0.002;
  params.simulation.faults.stochastic.node_outage_duration = 15;
  params.simulation.faults.stochastic.degradation_rate = 0.01;
  params.simulation.faults.stochastic.degradation_factor = 0.4;
  params.simulation.swap_success = 0.85;
  params.simulation.recovery = RecoveryPolicy::aggressive();

  obs::TraceBuffer trace;
  obs::MetricsRegistry metrics;
  core::RunOptions options;
  options.seed = 20240806;
  options.threads = threads;
  options.sink = {&metrics, &trace};
  core::run_trials(params, core::NetworkDesign::SurfNet, trials, options);
  return {jsonl_of(trace), metrics.to_json()};
}

TEST(GoldenTrace, FaultedRunsAreThreadCountInvariant) {
  // The ISSUE acceptance check: a fixed (seed, FaultPlan) pair replays
  // bitwise-identically at 1 and 8 threads — merged trace and merged
  // metrics both — with faults and recovery actually firing.
  const auto [trace1, metrics1] = chaos_run(8, /*threads=*/1);
  const auto [trace8, metrics8] = chaos_run(8, /*threads=*/8);
  EXPECT_FALSE(trace1.empty());
  EXPECT_EQ(trace1, trace8);
  EXPECT_EQ(without_timers(metrics1), without_timers(metrics8));
  // The chaos knobs must actually fire, or invariance is tested on the
  // fault-free path only (experiment_test already covers that).
  EXPECT_NE(trace1.find("\"ev\":\"fiber_down\""), std::string::npos);
}

}  // namespace
}  // namespace surfnet::netsim
