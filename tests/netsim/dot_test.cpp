#include "netsim/dot.h"

#include <gtest/gtest.h>

namespace surfnet::netsim {
namespace {

Topology small_topology() {
  std::vector<Node> nodes(4);
  nodes[1] = {NodeRole::Switch, 10};
  nodes[2] = {NodeRole::Server, 10};
  return Topology(std::move(nodes),
                  {{0, 1, 0.9, 4}, {1, 2, 0.8, 4}, {2, 3, 0.95, 4}});
}

TEST(Dot, EmitsAllNodesAndFibers) {
  const auto topo = small_topology();
  const auto dot = to_dot(topo);
  for (int v = 0; v < topo.num_nodes(); ++v)
    EXPECT_NE(dot.find("n" + std::to_string(v) + " ["), std::string::npos);
  EXPECT_NE(dot.find("n0 -- n1"), std::string::npos);
  EXPECT_NE(dot.find("n2 -- n3"), std::string::npos);
  EXPECT_NE(dot.find("peripheries=2"), std::string::npos);  // the server
  EXPECT_EQ(dot.find("color=red"), std::string::npos);      // no routes
}

TEST(Dot, HighlightsScheduledRoutes) {
  const auto topo = small_topology();
  Schedule schedule;
  ScheduledRequest s;
  s.request_index = 0;
  s.codes = 1;
  s.support_path = {0, 1, 2, 3};
  s.core_path = {0, 1, 2, 3};
  s.ec_servers = {2};
  schedule.scheduled.push_back(s);
  const auto dot = to_dot(topo, schedule);
  EXPECT_NE(dot.find("color=\"red:blue\""), std::string::npos);
  EXPECT_NE(dot.find("fillcolor=lightgrey"), std::string::npos);  // EC site
}

TEST(Dot, ValidGraphvizSkeleton) {
  const auto dot = to_dot(small_topology());
  EXPECT_EQ(dot.rfind("graph surfnet {", 0), 0u);
  EXPECT_EQ(dot.back(), '\n');
  EXPECT_NE(dot.find("}"), std::string::npos);
}

}  // namespace
}  // namespace surfnet::netsim
