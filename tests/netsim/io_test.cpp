#include "netsim/io.h"

#include <gtest/gtest.h>

#include "routing/lp_router.h"
#include "util/rng.h"

namespace surfnet::netsim {
namespace {

TEST(TopologyIo, RoundTripPreservesEverything) {
  util::Rng rng(101);
  TopologySpec spec;
  const auto original = make_random_topology(spec, rng);
  const auto restored =
      topology_from_string(topology_to_string(original));
  ASSERT_EQ(restored.num_nodes(), original.num_nodes());
  ASSERT_EQ(restored.num_fibers(), original.num_fibers());
  for (int v = 0; v < original.num_nodes(); ++v) {
    EXPECT_EQ(restored.node(v).role, original.node(v).role);
    EXPECT_EQ(restored.node(v).storage_capacity,
              original.node(v).storage_capacity);
  }
  for (int e = 0; e < original.num_fibers(); ++e) {
    EXPECT_EQ(restored.fiber(e).a, original.fiber(e).a);
    EXPECT_EQ(restored.fiber(e).b, original.fiber(e).b);
    EXPECT_DOUBLE_EQ(restored.fiber(e).fidelity,
                     original.fiber(e).fidelity);
    EXPECT_EQ(restored.fiber(e).entanglement_capacity,
              original.fiber(e).entanglement_capacity);
  }
}

TEST(TopologyIo, WriterIsDeterministic) {
  util::Rng rng(102);
  const auto topo = make_random_topology(TopologySpec{}, rng);
  EXPECT_EQ(topology_to_string(topo), topology_to_string(topo));
}

TEST(TopologyIo, RejectsMalformedInput) {
  EXPECT_THROW(topology_from_string("not a topology"),
               std::invalid_argument);
  EXPECT_THROW(topology_from_string("surfnet-topology v1\nnode 5 user 0\n"),
               std::invalid_argument);  // non-dense ids
  EXPECT_THROW(
      topology_from_string("surfnet-topology v1\nnode 0 wizard 0\n"),
      std::invalid_argument);  // unknown role
  EXPECT_THROW(
      topology_from_string("surfnet-topology v1\nfrobnicate 1 2\n"),
      std::invalid_argument);  // unknown record
}

TEST(ScheduleIo, RoundTripThroughRealRouter) {
  util::Rng rng(103);
  const auto topo = make_random_topology(TopologySpec{}, rng);
  const auto requests = random_requests(topo, 5, 3, rng);
  routing::RoutingParams params;
  params.core_noise_threshold = 0.5;
  params.total_noise_threshold = 0.6;
  const auto schedule =
      routing::route_lp(topo, requests, params, rng).schedule;

  const auto restored =
      schedule_from_string(schedule_to_string(schedule));
  EXPECT_EQ(restored.requested_codes, schedule.requested_codes);
  ASSERT_EQ(restored.scheduled.size(), schedule.scheduled.size());
  for (std::size_t i = 0; i < schedule.scheduled.size(); ++i) {
    const auto& a = schedule.scheduled[i];
    const auto& b = restored.scheduled[i];
    EXPECT_EQ(b.request_index, a.request_index);
    EXPECT_EQ(b.codes, a.codes);
    EXPECT_EQ(b.code_distance, a.code_distance);
    EXPECT_EQ(b.support_path, a.support_path);
    EXPECT_EQ(b.core_path, a.core_path);
    EXPECT_EQ(b.ec_servers, a.ec_servers);
  }
  EXPECT_DOUBLE_EQ(restored.throughput(), schedule.throughput());
}

TEST(ScheduleIo, EmptyScheduleRoundTrips) {
  Schedule empty;
  empty.requested_codes = 7;
  const auto restored = schedule_from_string(schedule_to_string(empty));
  EXPECT_EQ(restored.requested_codes, 7);
  EXPECT_TRUE(restored.scheduled.empty());
}

TEST(ScheduleIo, RejectsMalformedInput) {
  EXPECT_THROW(schedule_from_string("garbage"), std::invalid_argument);
  EXPECT_THROW(schedule_from_string(
                   "surfnet-schedule v1\nrequest 0 1 0 support 2 0\n"),
               std::invalid_argument);  // truncated node list
}

}  // namespace
}  // namespace surfnet::netsim
