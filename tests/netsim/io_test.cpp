#include "netsim/io.h"

#include <gtest/gtest.h>

#include "routing/lp_router.h"
#include "util/rng.h"

namespace surfnet::netsim {
namespace {

TEST(TopologyIo, RoundTripPreservesEverything) {
  util::Rng rng(101);
  TopologySpec spec;
  const auto original = make_random_topology(spec, rng);
  const auto restored =
      topology_from_string(topology_to_string(original));
  ASSERT_EQ(restored.num_nodes(), original.num_nodes());
  ASSERT_EQ(restored.num_fibers(), original.num_fibers());
  for (int v = 0; v < original.num_nodes(); ++v) {
    EXPECT_EQ(restored.node(v).role, original.node(v).role);
    EXPECT_EQ(restored.node(v).storage_capacity,
              original.node(v).storage_capacity);
  }
  for (int e = 0; e < original.num_fibers(); ++e) {
    EXPECT_EQ(restored.fiber(e).a, original.fiber(e).a);
    EXPECT_EQ(restored.fiber(e).b, original.fiber(e).b);
    EXPECT_DOUBLE_EQ(restored.fiber(e).fidelity,
                     original.fiber(e).fidelity);
    EXPECT_EQ(restored.fiber(e).entanglement_capacity,
              original.fiber(e).entanglement_capacity);
  }
}

TEST(TopologyIo, WriterIsDeterministic) {
  util::Rng rng(102);
  const auto topo = make_random_topology(TopologySpec{}, rng);
  EXPECT_EQ(topology_to_string(topo), topology_to_string(topo));
}

TEST(TopologyIo, RejectsMalformedInput) {
  EXPECT_THROW(topology_from_string("not a topology"),
               std::invalid_argument);
  EXPECT_THROW(topology_from_string("surfnet-topology v1\nnode 5 user 0\n"),
               std::invalid_argument);  // non-dense ids
  EXPECT_THROW(
      topology_from_string("surfnet-topology v1\nnode 0 wizard 0\n"),
      std::invalid_argument);  // unknown role
  EXPECT_THROW(
      topology_from_string("surfnet-topology v1\nfrobnicate 1 2\n"),
      std::invalid_argument);  // unknown record
}

TEST(ScheduleIo, RoundTripThroughRealRouter) {
  util::Rng rng(103);
  const auto topo = make_random_topology(TopologySpec{}, rng);
  const auto requests = random_requests(topo, 5, 3, rng);
  routing::RoutingParams params;
  params.core_noise_threshold = 0.5;
  params.total_noise_threshold = 0.6;
  const auto schedule =
      routing::route_lp(topo, requests, params, rng).schedule;

  const auto restored =
      schedule_from_string(schedule_to_string(schedule));
  EXPECT_EQ(restored.requested_codes, schedule.requested_codes);
  ASSERT_EQ(restored.scheduled.size(), schedule.scheduled.size());
  for (std::size_t i = 0; i < schedule.scheduled.size(); ++i) {
    const auto& a = schedule.scheduled[i];
    const auto& b = restored.scheduled[i];
    EXPECT_EQ(b.request_index, a.request_index);
    EXPECT_EQ(b.codes, a.codes);
    EXPECT_EQ(b.code_distance, a.code_distance);
    EXPECT_EQ(b.support_path, a.support_path);
    EXPECT_EQ(b.core_path, a.core_path);
    EXPECT_EQ(b.ec_servers, a.ec_servers);
  }
  EXPECT_DOUBLE_EQ(restored.throughput(), schedule.throughput());
}

TEST(ScheduleIo, EmptyScheduleRoundTrips) {
  Schedule empty;
  empty.requested_codes = 7;
  const auto restored = schedule_from_string(schedule_to_string(empty));
  EXPECT_EQ(restored.requested_codes, 7);
  EXPECT_TRUE(restored.scheduled.empty());
}

TEST(ScheduleIo, RejectsMalformedInput) {
  EXPECT_THROW(schedule_from_string("garbage"), std::invalid_argument);
  EXPECT_THROW(schedule_from_string(
                   "surfnet-schedule v1\nrequest 0 1 0 support 2 0\n"),
               std::invalid_argument);  // truncated node list
}

/// Malformed document + the substring its error message must carry; the
/// message also always names the offending line.
struct RejectCase {
  const char* name;
  const char* text;
  const char* message;
};

class TopologyIoReject : public ::testing::TestWithParam<RejectCase> {};

TEST_P(TopologyIoReject, FailsWithClearMessage) {
  const auto& c = GetParam();
  try {
    topology_from_string(c.text);
    FAIL() << "expected std::invalid_argument for " << c.name;
  } catch (const std::invalid_argument& err) {
    EXPECT_NE(std::string(err.what()).find(c.message), std::string::npos)
        << "message was: " << err.what();
    EXPECT_NE(std::string(err.what()).find("line "), std::string::npos)
        << "message lacks a line number: " << err.what();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Tables, TopologyIoReject,
    ::testing::Values(
        RejectCase{"duplicate_fiber",
                   "surfnet-topology v1\nnode 0 user 10\nnode 1 switch 10\n"
                   "fiber 0 1 0.9 5\nfiber 1 0 0.9 5\n",
                   "duplicate fiber"},
        RejectCase{"dangling_endpoint",
                   "surfnet-topology v1\nnode 0 user 10\nnode 1 switch 10\n"
                   "fiber 0 7 0.9 5\n",
                   "not a declared node"},
        RejectCase{"negative_endpoint",
                   "surfnet-topology v1\nnode 0 user 10\nnode 1 switch 10\n"
                   "fiber -1 1 0.9 5\n",
                   "not a declared node"},
        RejectCase{"self_loop",
                   "surfnet-topology v1\nnode 0 user 10\n"
                   "fiber 0 0 0.9 5\n",
                   "self-loop"},
        RejectCase{"negative_storage",
                   "surfnet-topology v1\nnode 0 user -3\n",
                   "negative storage capacity"},
        RejectCase{"negative_pair_capacity",
                   "surfnet-topology v1\nnode 0 user 10\nnode 1 switch 10\n"
                   "fiber 0 1 0.9 -5\n",
                   "negative entanglement capacity"},
        RejectCase{"fidelity_above_one",
                   "surfnet-topology v1\nnode 0 user 10\nnode 1 switch 10\n"
                   "fiber 0 1 1.5 5\n",
                   "fidelity outside [0, 1]"},
        RejectCase{"truncated_node",
                   "surfnet-topology v1\nnode 0 user\n",
                   "bad node record"},
        RejectCase{"truncated_fiber",
                   "surfnet-topology v1\nnode 0 user 10\nnode 1 switch 10\n"
                   "fiber 0 1 0.9\n",
                   "bad fiber record"},
        RejectCase{"trailing_garbage_node",
                   "surfnet-topology v1\nnode 0 user 10 oops\n",
                   "trailing garbage"},
        RejectCase{"node_after_fiber",
                   "surfnet-topology v1\nnode 0 user 10\nnode 1 switch 10\n"
                   "fiber 0 1 0.9 5\nnode 2 user 10\n",
                   "node record after fiber"}),
    [](const auto& info) { return info.param.name; });

class ScheduleIoReject : public ::testing::TestWithParam<RejectCase> {};

TEST_P(ScheduleIoReject, FailsWithClearMessage) {
  const auto& c = GetParam();
  try {
    schedule_from_string(c.text);
    FAIL() << "expected std::invalid_argument for " << c.name;
  } catch (const std::invalid_argument& err) {
    EXPECT_NE(std::string(err.what()).find(c.message), std::string::npos)
        << "message was: " << err.what();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Tables, ScheduleIoReject,
    ::testing::Values(
        RejectCase{"negative_requested",
                   "surfnet-schedule v1\nrequested -2\n",
                   "negative requested"},
        RejectCase{"duplicate_requested",
                   "surfnet-schedule v1\nrequested 2\nrequested 3\n",
                   "duplicate requested"},
        RejectCase{"negative_request_index",
                   "surfnet-schedule v1\n"
                   "request -1 1 0 support 2 0 1 core 0 ec 0\n",
                   "negative request index"},
        RejectCase{"negative_codes",
                   "surfnet-schedule v1\n"
                   "request 0 -1 0 support 2 0 1 core 0 ec 0\n",
                   "negative code count"},
        RejectCase{"negative_node_in_list",
                   "surfnet-schedule v1\n"
                   "request 0 1 0 support 2 0 -4 core 0 ec 0\n",
                   "negative node id"},
        RejectCase{"trailing_garbage_request",
                   "surfnet-schedule v1\n"
                   "request 0 1 0 support 2 0 1 core 0 ec 0 zzz\n",
                   "trailing garbage"}),
    [](const auto& info) { return info.param.name; });

}  // namespace
}  // namespace surfnet::netsim
