#include "netsim/entanglement.h"

#include <gtest/gtest.h>

#include "netsim/channel.h"
#include "util/rng.h"

namespace surfnet::netsim {
namespace {

TEST(Purify, PaperFormula) {
  // rho' = r1 r2 / (r1 r2 + (1 - r1)(1 - r2))
  EXPECT_NEAR(purify(0.9, 0.9), 0.81 / (0.81 + 0.01), 1e-12);
  EXPECT_NEAR(purify(0.5, 0.5), 0.5, 1e-12);
  EXPECT_NEAR(purify(1.0, 0.7), 1.0, 1e-12);
}

TEST(Purify, ImprovesAboveOneHalf) {
  for (double rho : {0.6, 0.75, 0.9, 0.99})
    EXPECT_GT(purify(rho, rho), rho);
}

TEST(Purify, DegradesBelowOneHalf) {
  // Below 1/2 the recurrence protocol makes pairs worse — the fixed points
  // are 0, 1/2 and 1.
  for (double rho : {0.2, 0.4, 0.49}) EXPECT_LT(purify(rho, rho), rho);
}

TEST(PurifiedFidelity, MonotoneInRounds) {
  double prev = 0.8;
  for (int n = 1; n <= 9; ++n) {
    const double cur = purified_fidelity(0.8, n);
    EXPECT_GT(cur, prev);
    prev = cur;
  }
  EXPECT_NEAR(purified_fidelity(0.8, 0), 0.8, 1e-12);
  // N = 9 on a decent pair approaches 1 (paper's Purification N=9).
  EXPECT_GT(purified_fidelity(0.8, 9), 0.999);
}

TEST(SwappedFidelity, ProductRule) {
  EXPECT_NEAR(swapped_fidelity({0.9, 0.8, 0.95}), 0.9 * 0.8 * 0.95, 1e-12);
  EXPECT_DOUBLE_EQ(swapped_fidelity({}), 1.0);
}

TEST(EntanglementPool, GenerationAndConsumption) {
  EntanglementPool pool(3, 1.0, 5);  // deterministic: one pair per tick
  util::Rng rng(3);
  EXPECT_EQ(pool.available(0), 0);
  for (int t = 0; t < 10; ++t) pool.tick(rng);
  EXPECT_EQ(pool.available(0), 5);  // capped at capacity
  EXPECT_TRUE(pool.consume(0, 3));
  EXPECT_EQ(pool.available(0), 2);
  EXPECT_FALSE(pool.consume(0, 3));  // insufficient: nothing consumed
  EXPECT_EQ(pool.available(0), 2);
  pool.fill();
  EXPECT_EQ(pool.available(1), 5);
}

TEST(EntanglementPool, RateZeroNeverGenerates) {
  EntanglementPool pool(2, 0.0, 5);
  util::Rng rng(4);
  for (int t = 0; t < 50; ++t) pool.tick(rng);
  EXPECT_EQ(pool.available(0), 0);
}

TEST(EntanglementPool, RejectsBadArguments) {
  EXPECT_THROW(EntanglementPool(2, -0.5, 5), std::invalid_argument);
  EXPECT_THROW(EntanglementPool(2, 1.5, 5), std::invalid_argument);
  EXPECT_THROW(EntanglementPool(2, 0.5, -1), std::invalid_argument);
}

TEST(Channel, NoiseFidelityRoundTrip) {
  for (double gamma : {0.5, 0.75, 0.9, 0.99}) {
    EXPECT_NEAR(fidelity_of_noise(noise_of_fidelity(gamma)), gamma, 1e-12);
  }
  EXPECT_DOUBLE_EQ(noise_of_fidelity(1.0), 0.0);
}

TEST(Channel, PathNoiseIsAdditive) {
  std::vector<Node> nodes(4);
  const Topology topo(std::move(nodes),
                      {{0, 1, 0.9, 1}, {1, 2, 0.8, 1}, {2, 3, 0.95, 1}});
  const double mu = path_noise(topo, {0, 1, 2, 3});
  EXPECT_NEAR(mu, noise_of_fidelity(0.9) + noise_of_fidelity(0.8) +
                      noise_of_fidelity(0.95),
              1e-12);
  EXPECT_NEAR(fidelity_of_noise(mu), 0.9 * 0.8 * 0.95, 1e-12);
  EXPECT_THROW(path_noise(topo, {0, 2}), std::invalid_argument);
}

TEST(Channel, ErasureRateCompounds) {
  EXPECT_DOUBLE_EQ(erasure_rate(0.1, 0), 0.0);
  EXPECT_NEAR(erasure_rate(0.1, 1), 0.1, 1e-12);
  EXPECT_NEAR(erasure_rate(0.1, 2), 0.19, 1e-12);
}

TEST(Channel, PauliRateOfNoise) {
  EXPECT_DOUBLE_EQ(pauli_rate_of_noise(0.0), 0.0);
  EXPECT_NEAR(pauli_rate_of_noise(noise_of_fidelity(0.9)), 0.1, 1e-12);
}

}  // namespace
}  // namespace surfnet::netsim
