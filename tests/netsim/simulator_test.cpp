#include "netsim/simulator.h"

#include <gtest/gtest.h>

#include "decoder/surfnet_decoder.h"
#include "netsim/schedule.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/rng.h"

namespace surfnet::netsim {
namespace {

/// Line network: user(0) - switch(1) - server(2) - switch(3) - user(4).
Topology line_topology(double fidelity, int pair_capacity = 50) {
  std::vector<Node> nodes(5);
  nodes[1] = {NodeRole::Switch, 1000};
  nodes[2] = {NodeRole::Server, 1000};
  nodes[3] = {NodeRole::Switch, 1000};
  std::vector<Fiber> fibers;
  for (int i = 0; i < 4; ++i)
    fibers.push_back({i, i + 1, fidelity, pair_capacity});
  return Topology(std::move(nodes), std::move(fibers));
}

Schedule line_schedule(int codes, bool dual, bool with_ec = true) {
  Schedule schedule;
  schedule.requested_codes = codes;
  ScheduledRequest s;
  s.request_index = 0;
  s.codes = codes;
  s.support_path = {0, 1, 2, 3, 4};
  if (dual) s.core_path = {0, 1, 2, 3, 4};
  if (with_ec) s.ec_servers = {2};
  schedule.scheduled.push_back(s);
  return schedule;
}

TEST(Simulator, EmptyScheduleIsNoop) {
  const auto topo = line_topology(0.95);
  const decoder::SurfNetDecoder dec;
  util::Rng rng(1);
  const auto result =
      simulate_surfnet(topo, Schedule{}, SimulationParams{}, dec, rng);
  EXPECT_EQ(result.codes_scheduled, 0);
  EXPECT_EQ(result.codes_delivered, 0);
  EXPECT_DOUBLE_EQ(result.fidelity(), 0.0);
}

TEST(Simulator, PerfectFibersGivePerfectFidelity) {
  const auto topo = line_topology(1.0);
  const decoder::SurfNetDecoder dec;
  util::Rng rng(2);
  SimulationParams params;
  params.loss_per_hop = 0.0;
  params.teleport_op_noise = 0.0;
  const auto result =
      simulate_surfnet(topo, line_schedule(8, true), params, dec, rng);
  EXPECT_EQ(result.codes_delivered, 8);
  EXPECT_DOUBLE_EQ(result.fidelity(), 1.0);
}

TEST(Simulator, AllCodesDeliveredAndLatencyPositive) {
  const auto topo = line_topology(0.95);
  const decoder::SurfNetDecoder dec;
  util::Rng rng(3);
  const auto result = simulate_surfnet(topo, line_schedule(5, true),
                                       SimulationParams{}, dec, rng);
  EXPECT_EQ(result.codes_scheduled, 5);
  EXPECT_EQ(result.codes_delivered, 5);
  // 4 hops at one per slot is the lower bound for the support part.
  EXPECT_GE(result.avg_latency(), 4.0);
}

TEST(Simulator, VeryNoisyFibersCorruptCodes) {
  const auto topo = line_topology(0.45);
  const decoder::SurfNetDecoder dec;
  util::Rng rng(4);
  SimulationParams params;
  params.noise_scale = 1.0;  // full infidelity as Pauli noise
  params.loss_per_hop = 0.3;
  const auto result =
      simulate_surfnet(topo, line_schedule(30, true), params, dec, rng);
  EXPECT_EQ(result.codes_delivered, 30);
  EXPECT_LT(result.fidelity(), 0.6);
}

TEST(Simulator, RawModeRunsWithoutEntanglement) {
  const auto topo = line_topology(0.95, /*pair_capacity=*/0);
  const decoder::SurfNetDecoder dec;
  util::Rng rng(5);
  SimulationParams params;
  params.entanglement_rate = 0.0;  // raw mode must not need pairs
  const auto result = simulate_surfnet(topo, line_schedule(4, false),
                                       params, dec, rng);
  EXPECT_EQ(result.codes_delivered, 4);
}

TEST(Simulator, DualChannelStarvesWithoutEntanglement) {
  const auto topo = line_topology(0.95, /*pair_capacity=*/0);
  const decoder::SurfNetDecoder dec;
  util::Rng rng(6);
  SimulationParams params;
  params.entanglement_rate = 0.0;
  params.max_slots = 300;
  const auto result = simulate_surfnet(topo, line_schedule(2, true),
                                       params, dec, rng);
  // The core part can never move: nothing is delivered before the cap.
  EXPECT_EQ(result.codes_delivered, 0);
}

TEST(Simulator, ErrorCorrectionAtServerImprovesFidelity) {
  // Same path, with and without the mid-path EC server: correcting at the
  // server splits the accumulated noise and must improve fidelity.
  const auto topo = line_topology(0.88);
  const decoder::SurfNetDecoder dec;
  SimulationParams params;
  params.noise_scale = 0.5;
  params.loss_per_hop = 0.05;
  util::Rng rng1(7), rng2(7);
  const auto with_ec = simulate_surfnet(topo, line_schedule(400, true, true),
                                        params, dec, rng1);
  const auto without_ec = simulate_surfnet(
      topo, line_schedule(400, true, false), params, dec, rng2);
  EXPECT_GT(with_ec.fidelity(), without_ec.fidelity() + 0.02);
}

TEST(Simulator, CoreHalvingBeatsRaw) {
  // Identical path and noise: the dual-channel design (purified Core,
  // loss-free teleportation) must outperform sending everything raw.
  const auto topo = line_topology(0.85);
  const decoder::SurfNetDecoder dec;
  SimulationParams params;
  params.noise_scale = 0.5;
  params.loss_per_hop = 0.08;
  params.teleport_op_noise = 0.005;
  util::Rng rng1(8), rng2(8);
  const auto dual = simulate_surfnet(topo, line_schedule(400, true), params,
                                     dec, rng1);
  const auto raw = simulate_surfnet(topo, line_schedule(400, false), params,
                                    dec, rng2);
  EXPECT_GT(dual.fidelity(), raw.fidelity() + 0.02);
}

TEST(Simulator, PurificationDeliversWithBudget) {
  const auto topo = line_topology(0.9);
  util::Rng rng(9);
  SimulationParams params;
  const auto result = simulate_purification(topo, line_schedule(5, true), 2,
                                            params, rng);
  EXPECT_EQ(result.codes_delivered, 5);
  EXPECT_GT(result.fidelity(), 0.5);
  EXPECT_GE(result.avg_latency(), 4.0);
}

TEST(Simulator, PurificationMoreRoundsHigherFidelity) {
  const auto topo = line_topology(0.8);
  SimulationParams params;
  params.teleport_op_noise = 0.0;
  double prev = 0.0;
  for (int n : {0, 2, 9}) {
    util::Rng rng(10);
    const auto result = simulate_purification(
        topo, line_schedule(2000, true), n, params, rng);
    EXPECT_GE(result.fidelity(), prev - 0.02) << "N=" << n;
    prev = result.fidelity();
  }
}

TEST(Simulator, LatencyGrowsWithScarcity) {
  // Fewer pairs per slot means the core waits longer.
  const auto topo = line_topology(0.95);
  const decoder::SurfNetDecoder dec;
  double fast_latency = 0.0, slow_latency = 0.0;
  {
    util::Rng rng(11);
    SimulationParams params;
    params.entanglement_rate = 8.0;
    fast_latency = simulate_surfnet(topo, line_schedule(20, true), params,
                                    dec, rng)
                       .avg_latency();
  }
  {
    util::Rng rng(11);
    SimulationParams params;
    params.entanglement_rate = 0.8;
    slow_latency = simulate_surfnet(topo, line_schedule(20, true), params,
                                    dec, rng)
                       .avg_latency();
  }
  EXPECT_GT(slow_latency, fast_latency);
}

TEST(Simulator, RejectsBrokenSchedules) {
  const auto topo = line_topology(0.95);
  const decoder::SurfNetDecoder dec;
  util::Rng rng(12);
  Schedule schedule;
  schedule.requested_codes = 1;
  ScheduledRequest s;
  s.request_index = 0;
  s.codes = 1;
  s.support_path = {0, 2, 4};  // non-adjacent hops
  schedule.scheduled.push_back(s);
  EXPECT_THROW(
      simulate_surfnet(topo, schedule, SimulationParams{}, dec, rng),
      std::invalid_argument);

  Schedule bad_ec = line_schedule(1, true);
  bad_ec.scheduled[0].ec_servers = {3};  // not a barrier on... node 3 is on
  bad_ec.scheduled[0].ec_servers = {1};  // switch 1 is on the path; allowed
  // EC server not on the path at all:
  bad_ec.scheduled[0].ec_servers = {42};
  EXPECT_THROW(
      simulate_surfnet(topo, bad_ec, SimulationParams{}, dec, rng),
      std::invalid_argument);
}

TEST(Simulator, PerCodeRecordsReconcileWithTotals) {
  const auto topo = line_topology(0.9);
  const decoder::SurfNetDecoder dec;
  util::Rng rng(21);
  SimulationParams params;
  params.noise_scale = 0.6;
  const auto result = simulate_surfnet(topo, line_schedule(40, true), params,
                                       dec, rng);
  int delivered = 0, succeeded = 0;
  double latency = 0.0;
  for (const auto& record : result.codes) {
    EXPECT_EQ(record.request, 0);
    EXPECT_GT(record.slots, 0);
    if (record.outcome != CodeOutcome::TimedOut) {
      ++delivered;
      latency += record.slots;
      EXPECT_GT(record.corrections, 0);  // at least the final readout
      if (record.outcome == CodeOutcome::Succeeded) ++succeeded;
    }
  }
  EXPECT_EQ(delivered, result.codes_delivered);
  EXPECT_EQ(succeeded, result.codes_succeeded);
  EXPECT_DOUBLE_EQ(latency, result.total_latency);
}

TEST(Simulator, PurificationRecordsReconcileWithTotals) {
  const auto topo = line_topology(0.85);
  util::Rng rng(22);
  SimulationParams params;
  const auto result = simulate_purification(topo, line_schedule(30, true), 1,
                                            params, rng);
  int delivered = 0, succeeded = 0;
  for (const auto& record : result.codes) {
    if (record.outcome != CodeOutcome::TimedOut) {
      ++delivered;
      if (record.outcome == CodeOutcome::Succeeded) ++succeeded;
    }
  }
  EXPECT_EQ(delivered, result.codes_delivered);
  EXPECT_EQ(succeeded, result.codes_succeeded);
}

TEST(Simulator, TimedOutCodesGetRecordsToo) {
  const auto topo = line_topology(0.95, /*pair_capacity=*/0);
  const decoder::SurfNetDecoder dec;
  util::Rng rng(23);
  SimulationParams params;
  params.entanglement_rate = 0.0;
  params.max_slots = 100;
  const auto result = simulate_surfnet(topo, line_schedule(2, true), params,
                                       dec, rng);
  EXPECT_EQ(result.codes_delivered, 0);
  ASSERT_FALSE(result.codes.empty());
  for (const auto& record : result.codes) {
    EXPECT_EQ(record.outcome, CodeOutcome::TimedOut);
    EXPECT_LE(record.slots, params.max_slots);
  }
}

TEST(Simulator, InterfaceSelectsModelByDesign) {
  const decoder::SurfNetDecoder dec;
  const auto surfnet = make_simulator(NetworkDesign::SurfNet, dec);
  const auto raw = make_simulator(NetworkDesign::Raw, dec);
  const auto p2 = make_simulator(NetworkDesign::Purification2, dec);
  EXPECT_EQ(surfnet->name(), "surfnet");
  EXPECT_EQ(raw->name(), "surfnet");  // Raw shares the surface-code model
  EXPECT_EQ(p2->name(), "purification");

  // Polymorphic run matches the free function it wraps.
  const auto topo = line_topology(0.95);
  SimulationParams params;
  util::Rng rng1(24), rng2(24);
  const auto via_iface =
      surfnet->run(topo, line_schedule(5, true), params, rng1);
  const auto direct =
      simulate_surfnet(topo, line_schedule(5, true), params, dec, rng2);
  EXPECT_EQ(via_iface.codes_delivered, direct.codes_delivered);
  EXPECT_DOUBLE_EQ(via_iface.total_latency, direct.total_latency);

  util::Rng rng3(25), rng4(25);
  const auto p2_iface = p2->run(topo, line_schedule(5, true), params, rng3);
  const auto p2_direct =
      simulate_purification(topo, line_schedule(5, true), 2, params, rng4);
  EXPECT_EQ(p2_iface.codes_delivered, p2_direct.codes_delivered);
  EXPECT_DOUBLE_EQ(p2_iface.total_latency, p2_direct.total_latency);
}

TEST(Simulator, DesignNamesAndPurificationRounds) {
  EXPECT_EQ(to_string(NetworkDesign::SurfNet), "SurfNet");
  EXPECT_EQ(purification_rounds(NetworkDesign::SurfNet), 0);
  EXPECT_EQ(purification_rounds(NetworkDesign::Purification1), 1);
  EXPECT_EQ(purification_rounds(NetworkDesign::Purification2), 2);
  EXPECT_EQ(purification_rounds(NetworkDesign::Purification9), 9);
}

TEST(Simulator, TraceEventsReconcileExactlyWithResult) {
  // Acceptance check: on the paper's d=4 code every decode, delivery, and
  // timeout in the event trace matches the SimulationResult exactly, and
  // attaching the sink does not change the simulation itself.
  const auto topo = line_topology(0.9);
  const decoder::SurfNetDecoder dec;
  SimulationParams params;
  params.code_distance = 4;
  params.noise_scale = 0.6;

  util::Rng bare_rng(26);
  const auto bare = simulate_surfnet(topo, line_schedule(60, true), params,
                                     dec, bare_rng);

  obs::TraceBuffer trace;
  obs::MetricsRegistry metrics;
  params.sink = {&metrics, &trace};
  util::Rng rng(26);
  const auto result = simulate_surfnet(topo, line_schedule(60, true), params,
                                       dec, rng);

  // Identical RNG consumption: the traced run reproduces the bare run.
  EXPECT_EQ(result.codes_delivered, bare.codes_delivered);
  EXPECT_EQ(result.codes_succeeded, bare.codes_succeeded);
  EXPECT_DOUBLE_EQ(result.total_latency, bare.total_latency);

  int decode_events = 0, decode_errors = 0;
  int delivered_events = 0, success_outcomes = 0, timeout_events = 0;
  int corrections_from_records = 0;
  for (const auto& event : trace.events()) {
    switch (event.kind) {
      case obs::EventKind::Decode:
        ++decode_events;
        if (event.flag) ++decode_errors;
        break;
      case obs::EventKind::Delivered:
        ++delivered_events;
        if (!event.flag) ++success_outcomes;
        break;
      case obs::EventKind::Timeout:
        ++timeout_events;
        break;
      default:
        break;
    }
  }
  for (const auto& record : result.codes)
    corrections_from_records += record.corrections;

  EXPECT_EQ(delivered_events, result.codes_delivered);
  EXPECT_EQ(success_outcomes, result.codes_succeeded);
  EXPECT_EQ(timeout_events,
            static_cast<int>(result.codes.size()) - result.codes_delivered);
  // Every correction is one decode event, and the metrics plane agrees.
  EXPECT_EQ(decode_events, corrections_from_records);
  EXPECT_EQ(decode_events, metrics.counter("sim.decodes"));
  EXPECT_EQ(decode_errors, metrics.counter("sim.decode_logical_errors"));
  EXPECT_EQ(metrics.counter("sim.delivered"), result.codes_delivered);
  EXPECT_EQ(metrics.counter("sim.succeeded"), result.codes_succeeded);
}

TEST(Schedule, ThroughputDefinition) {
  Schedule schedule;
  schedule.requested_codes = 10;
  ScheduledRequest s;
  s.codes = 4;
  schedule.scheduled.push_back(s);
  s.codes = 2;
  schedule.scheduled.push_back(s);
  EXPECT_EQ(schedule.scheduled_codes(), 6);
  EXPECT_DOUBLE_EQ(schedule.throughput(), 0.6);
}

TEST(Requests, RandomRequestsAreValid) {
  util::Rng rng(13);
  TopologySpec spec;
  const auto topo = make_random_topology(spec, rng);
  const auto requests = random_requests(topo, 50, 4, rng);
  ASSERT_EQ(requests.size(), 50u);
  for (const auto& r : requests) {
    EXPECT_TRUE(topo.is_user(r.src));
    EXPECT_TRUE(topo.is_user(r.dst));
    EXPECT_NE(r.src, r.dst);
    EXPECT_GE(r.codes, 1);
    EXPECT_LE(r.codes, 4);
  }
}

}  // namespace
}  // namespace surfnet::netsim
