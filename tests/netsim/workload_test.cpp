// Dynamic-traffic engine tests (netsim/workload.h).
//
// The determinism contract under test: a (seed, params) traffic stream
// replays bitwise on the slot and event engines, across 1 and 8 worker
// threads (through core::run_trials' trial-ordered merge), and against a
// committed golden trace. Admission-control semantics (load cap, headroom
// shedding, fidelity floor, deadline, warmup cutoff) are pinned with a
// scripted provider so they do not depend on the live router.
//
// Regenerate the golden trace after an intentional behavior change:
//   SURFNET_REGEN_GOLDEN=1 ctest -R GoldenTraffic

#include <cstdlib>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/surfnet.h"
#include "netsim/topology.h"
#include "netsim/workload.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "routing/incremental.h"
#include "util/rng.h"

namespace surfnet::netsim {
namespace {

/// Ring: user(0) - sw(1) - server(2) - sw(3) - user(4), plus bypass sw(5)
/// connecting 1 and 3 (same shape as golden_trace_test.cpp).
Topology ring_topology(double fidelity = 0.95) {
  std::vector<Node> nodes(6);
  nodes[1] = {NodeRole::Switch, 1000};
  nodes[2] = {NodeRole::Server, 1000};
  nodes[3] = {NodeRole::Switch, 1000};
  nodes[5] = {NodeRole::Switch, 1000};
  std::vector<Fiber> fibers{{0, 1, fidelity, 50}, {1, 2, fidelity, 50},
                            {2, 3, fidelity, 50}, {3, 4, fidelity, 50},
                            {1, 5, fidelity, 50}, {5, 3, fidelity, 50}};
  return Topology(std::move(nodes), std::move(fibers));
}

std::string jsonl_of(const obs::TraceBuffer& buffer) {
  std::string out;
  for (const auto& event : buffer.events()) out += obs::to_jsonl(event) + "\n";
  return out;
}

/// Metrics document with the wall-clock timer section blanked: counters,
/// gauges and histograms are deterministic, elapsed seconds are not.
std::string without_timers(const obs::MetricsRegistry& metrics) {
  std::string json = metrics.to_json();
  const auto start = json.find("\"timers\": {");
  if (start == std::string::npos) return json;
  const auto end = json.find('}', start);
  return json.substr(0, start) + json.substr(end + 1);
}

/// Field-by-field equality of two traffic results (gtest-friendly: the
/// failure names the diverging field).
void expect_results_equal(const TrafficResult& a, const TrafficResult& b) {
  EXPECT_EQ(a.arrivals, b.arrivals);
  EXPECT_EQ(a.admitted, b.admitted);
  EXPECT_EQ(a.blocked, b.blocked);
  EXPECT_EQ(a.departures, b.departures);
  EXPECT_EQ(a.last_slot, b.last_slot);
  EXPECT_EQ(a.measured_slots, b.measured_slots);
  EXPECT_EQ(a.measured_arrivals, b.measured_arrivals);
  EXPECT_EQ(a.measured_admitted, b.measured_admitted);
  EXPECT_EQ(a.measured_blocked, b.measured_blocked);
  EXPECT_EQ(a.measured_departures, b.measured_departures);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(a.blocked_by[i], b.blocked_by[i]);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(a.admitted_by[i], b.admitted_by[i]);
  EXPECT_EQ(a.latency_hist, b.latency_hist);
  EXPECT_EQ(a.latency_count, b.latency_count);
  EXPECT_EQ(a.latency_total, b.latency_total);
}

/// A busy-but-not-saturating stream over the ring with every knob that
/// draws randomness enabled.
WorkloadParams busy_params() {
  WorkloadParams params;
  params.arrival_rate = 0.5;
  params.horizon_slots = 600;
  params.warmup_slots = 50;
  params.reoptimize_every = 16;
  params.classes = {
      {2.0, 1, 0, 0.0, 0},    // bulk: one code, no constraints
      {1.0, 2, 1, 0.0, 40},   // priority: two codes, deadlined
      {0.5, 1, 0, 0.6, 0},    // picky: fidelity floor
  };
  return params;
}

routing::RoutingParams ring_routing() {
  routing::RoutingParams params;
  params.dual_channel = true;
  return params;
}

struct TrafficRun {
  TrafficResult result;
  std::string trace;
  std::string metrics;
  std::uint64_t next_draw = 0;  ///< post-run RNG probe
};

TrafficRun run_once(const WorkloadParams& base, std::uint64_t seed,
                    SimEngine engine) {
  const auto topology = ring_topology();
  obs::TraceBuffer trace;
  obs::MetricsRegistry metrics;
  WorkloadParams params = base;
  params.sink = obs::Sink{&metrics, &trace};

  routing::RoutingParams routing = ring_routing();
  routing.sink = params.sink;
  routing::IncrementalRouter provider(topology, routing);

  util::Rng rng(seed);
  TrafficRun run;
  run.result = run_traffic(topology, provider, params, rng, engine);
  run.trace = jsonl_of(trace);
  run.metrics = without_timers(metrics);
  run.next_draw = rng();
  return run;
}

TEST(Workload, SlotAndEventEnginesAreBitwiseIdentical) {
  const auto params = busy_params();
  const auto event = run_once(params, 2024, SimEngine::Event);
  const auto slot = run_once(params, 2024, SimEngine::Slot);

  expect_results_equal(event.result, slot.result);
  EXPECT_EQ(event.trace, slot.trace);
  EXPECT_EQ(event.metrics, slot.metrics);
  // The engines consumed the identical RNG stream: the next draw agrees.
  EXPECT_EQ(event.next_draw, slot.next_draw);
  // The run did something worth comparing.
  EXPECT_GT(event.result.arrivals, 100);
  EXPECT_GT(event.result.admitted, 0);
  EXPECT_GT(event.result.departures, 0);
}

TEST(Workload, ParetoStreamIsEngineInvariantToo) {
  auto params = busy_params();
  params.process = ArrivalProcess::Pareto;
  params.pareto_shape = 1.8;
  const auto event = run_once(params, 7, SimEngine::Event);
  const auto slot = run_once(params, 7, SimEngine::Slot);
  expect_results_equal(event.result, slot.result);
  EXPECT_EQ(event.trace, slot.trace);
  EXPECT_EQ(event.next_draw, slot.next_draw);
  EXPECT_GT(event.result.arrivals, 0);
}

TEST(Workload, MaxRequestsCapsTheStream) {
  auto params = busy_params();
  params.max_requests = 25;
  const auto run = run_once(params, 11, SimEngine::Event);
  EXPECT_LE(run.result.arrivals, 25);
  // Every admitted request eventually departs once arrivals stop.
  EXPECT_EQ(run.result.departures, run.result.admitted);
}

TEST(Workload, WarmupSlotsExcludeEarlyEventsFromMeasurement) {
  auto params = busy_params();
  params.warmup_slots = 300;  // half the horizon
  const auto run = run_once(params, 5, SimEngine::Event);
  EXPECT_LT(run.result.measured_arrivals, run.result.arrivals);
  EXPECT_EQ(run.result.measured_slots,
            run.result.last_slot - params.warmup_slots + 1);
  // Totals still count everything.
  EXPECT_EQ(run.result.arrivals,
            run.result.admitted + run.result.blocked);
}

// ---------------------------------------------------------------------------
// Admission-control semantics with a scripted provider.

/// Deterministic provider: admits everything with a fixed route, counting
/// admits and releases so tests can assert the release-on-block contract.
struct ScriptedProvider final : RouteProvider {
  std::vector<int> path{0, 1, 2, 3, 4};
  double noise = 0.1;
  bool refuse = false;
  int admits = 0;
  int releases = 0;
  int reoptimizes = 0;

  std::optional<AdmittedRoute> admit(int, int, int codes) override {
    if (refuse) return std::nullopt;
    ++admits;
    AdmittedRoute route;
    route.path = path;
    route.noise = noise;
    route.codes = codes;
    return route;
  }
  void release(const AdmittedRoute&) override { ++releases; }
  double reoptimize() override {
    ++reoptimizes;
    return 0.0;  // no headroom: triggers priority shedding when armed
  }
};

WorkloadParams scripted_params() {
  WorkloadParams params;
  params.arrival_rate = 1.0;
  params.horizon_slots = 200;
  return params;
}

TEST(Workload, LoadCapBlocksWithoutConsultingProvider) {
  ScriptedProvider provider;
  auto params = scripted_params();
  params.admission.max_active_codes = 1;
  params.service_base = 50;  // long service: the single slot stays busy
  params.service_per_hop = 0;
  params.service_jitter = 0;
  util::Rng rng(3);
  const auto result =
      run_traffic(ring_topology(), provider, params, rng, SimEngine::Event);
  EXPECT_GT(result.blocked_by[static_cast<int>(BlockReason::Load)], 0);
  // Load blocks never reached the provider: one admit per admitted
  // request, one release per departure, nothing else.
  EXPECT_EQ(provider.admits, result.admitted);
  EXPECT_EQ(provider.releases, result.departures);
}

TEST(Workload, FidelityFloorBlocksAndReleasesTheRoute) {
  ScriptedProvider provider;
  provider.noise = 0.5;  // route fidelity 0.5
  auto params = scripted_params();
  params.classes = {{1.0, 1, 0, /*fidelity_floor=*/0.9, 0}};
  util::Rng rng(3);
  const auto result =
      run_traffic(ring_topology(), provider, params, rng, SimEngine::Event);
  EXPECT_EQ(result.admitted, 0);
  EXPECT_EQ(result.blocked, result.arrivals);
  EXPECT_EQ(result.blocked_by[static_cast<int>(BlockReason::Fidelity)],
            result.measured_blocked);
  // Every blocked-after-admit route was handed back to the provider.
  EXPECT_EQ(provider.releases, provider.admits);
}

TEST(Workload, DeadlineBlocksSlowRoutes) {
  ScriptedProvider provider;  // 4 hops
  auto params = scripted_params();
  params.service_base = 4;
  params.service_per_hop = 2;  // estimate = 4 + 2*4 = 12
  params.classes = {{1.0, 1, 0, 0.0, /*deadline_slots=*/10}};
  util::Rng rng(3);
  const auto result =
      run_traffic(ring_topology(), provider, params, rng, SimEngine::Event);
  EXPECT_EQ(result.admitted, 0);
  EXPECT_EQ(result.blocked_by[static_cast<int>(BlockReason::Deadline)],
            result.measured_blocked);
  EXPECT_EQ(provider.releases, provider.admits);
}

TEST(Workload, ProviderRefusalBlocksAsCapacity) {
  ScriptedProvider provider;
  provider.refuse = true;
  auto params = scripted_params();
  util::Rng rng(3);
  const auto result =
      run_traffic(ring_topology(), provider, params, rng, SimEngine::Event);
  EXPECT_EQ(result.admitted, 0);
  EXPECT_EQ(result.blocked_by[static_cast<int>(BlockReason::Capacity)],
            result.measured_blocked);
}

TEST(Workload, HeadroomSheddingBlocksLowPriorityClasses) {
  ScriptedProvider provider;  // reoptimize() reports zero headroom
  auto params = scripted_params();
  params.reoptimize_every = 1;
  params.admission.shed_headroom = 1.0;
  params.admission.shed_below_priority = 1;
  params.classes = {{1.0, 1, /*priority=*/0, 0.0, 0}};
  util::Rng rng(3);
  const auto result =
      run_traffic(ring_topology(), provider, params, rng, SimEngine::Event);
  // The first admit reports zero headroom; everything after is shed.
  EXPECT_GT(result.blocked_by[static_cast<int>(BlockReason::Load)], 0);
  EXPECT_GT(provider.reoptimizes, 0);
}

TEST(Workload, ParameterValidation) {
  ScriptedProvider provider;
  const auto topology = ring_topology();
  util::Rng rng(1);

  WorkloadParams bad_rate;
  bad_rate.arrival_rate = 0.0;
  EXPECT_THROW(run_traffic(topology, provider, bad_rate, rng),
               std::invalid_argument);

  WorkloadParams bad_shape;
  bad_shape.process = ArrivalProcess::Pareto;
  bad_shape.pareto_shape = 1.0;
  EXPECT_THROW(run_traffic(topology, provider, bad_shape, rng),
               std::invalid_argument);

  WorkloadParams bad_class;
  bad_class.classes = {{0.0, 1, 0, 0.0, 0}};
  EXPECT_THROW(run_traffic(topology, provider, bad_class, rng),
               std::invalid_argument);

  // A topology with fewer than two users cannot host a stream.
  std::vector<Node> nodes(2);
  nodes[1] = {NodeRole::Switch, 10};
  Topology lonely(std::move(nodes), {{0, 1, 0.9, 10}});
  WorkloadParams ok;
  EXPECT_THROW(run_traffic(lonely, provider, ok, rng),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Thread-count invariance through the core traffic batch runner.

core::TrafficScenario small_scenario() {
  auto scenario = core::make_traffic_scenario(core::FacilityLevel::Sufficient,
                                              core::ConnectionQuality::Good);
  scenario.workload.horizon_slots = 300;
  scenario.workload.warmup_slots = 50;
  return scenario;
}

struct BatchRun {
  std::string trace;
  std::string metrics;
  double admitted_per_slot = 0.0;
  double blocking = 0.0;
};

BatchRun run_batch(int threads, SimEngine engine) {
  obs::TraceBuffer trace;
  obs::MetricsRegistry metrics;
  core::RunOptions options;
  options.threads = threads;
  options.engine = engine;
  options.sink = obs::Sink{&metrics, &trace};
  const auto aggregate = core::run_trials(small_scenario(), 6, options);
  BatchRun run;
  run.trace = jsonl_of(trace);
  run.metrics = without_timers(metrics);
  run.admitted_per_slot = aggregate.admitted_per_slot.mean();
  run.blocking = aggregate.blocking_probability.mean();
  return run;
}

TEST(Workload, TrafficTrialsAreThreadCountInvariant) {
  const auto one = run_batch(1, SimEngine::Event);
  const auto eight = run_batch(8, SimEngine::Event);
  EXPECT_EQ(one.trace, eight.trace);
  EXPECT_EQ(one.metrics, eight.metrics);
  EXPECT_EQ(one.admitted_per_slot, eight.admitted_per_slot);
  EXPECT_EQ(one.blocking, eight.blocking);
  EXPECT_FALSE(one.trace.empty());
}

TEST(Workload, TrafficTrialsAreEngineInvariant) {
  const auto event = run_batch(1, SimEngine::Event);
  const auto slot = run_batch(1, SimEngine::Slot);
  EXPECT_EQ(event.trace, slot.trace);
  EXPECT_EQ(event.metrics, slot.metrics);
}

// ---------------------------------------------------------------------------
// Golden steady-state trace.

std::string golden_path(const char* name) {
  return std::string(SURFNET_TEST_DATA_DIR) + "/netsim/golden/" + name;
}

TEST(Workload, GoldenTrafficTrace) {
  auto params = busy_params();
  params.horizon_slots = 200;
  params.warmup_slots = 20;
  const auto run = run_once(params, 20240607, SimEngine::Event);

  const auto path = golden_path("traffic_stream.jsonl");
  if (std::getenv("SURFNET_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << run.trace;
    return;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden trace " << path
                         << " — regenerate with SURFNET_REGEN_GOLDEN=1";
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(run.trace, buffer.str())
      << "traffic stream diverged from the committed golden trace";
}

// ---------------------------------------------------------------------------
// Adaptive code selection under a fidelity-degradation window.

/// Stream with a deterministic degradation window in the middle: fibers
/// measure as fidelity^2 while slots lie in [80, 160).
WorkloadParams adaptive_window_params() {
  WorkloadParams params;
  params.arrival_rate = 0.5;
  params.horizon_slots = 300;
  params.warmup_slots = 20;
  params.degrade_from_slot = 80;
  params.degrade_until_slot = 160;
  params.degrade_noise_scale = 2.0;
  return params;
}

/// Adaptive-distance stream over a clean ring: outside the window routes
/// carry compact distance-3 codes, inside it the doubled noise pushes the
/// planner into the distance-4 band.
TrafficRun run_adaptive_once(std::uint64_t seed, SimEngine engine) {
  const auto topology = ring_topology(0.97);
  obs::TraceBuffer trace;
  obs::MetricsRegistry metrics;
  WorkloadParams params = adaptive_window_params();
  params.sink = obs::Sink{&metrics, &trace};

  routing::RoutingParams routing = ring_routing();
  routing.adaptive_code_distance = true;
  routing.sink = params.sink;
  routing::IncrementalRouter provider(topology, routing);

  util::Rng rng(seed);
  TrafficRun run;
  run.result = run_traffic(topology, provider, params, rng, engine);
  run.trace = jsonl_of(trace);
  run.metrics = without_timers(metrics);
  run.next_draw = rng();
  return run;
}

/// Integer field value of one JSONL line ("key": must be present).
int jsonl_int_field(const std::string& line, const std::string& key) {
  const auto pos = line.find("\"" + key + "\":");
  EXPECT_NE(pos, std::string::npos) << line;
  return std::atoi(line.c_str() + pos + key.size() + 3);
}

struct AdmitRecord {
  int slot = 0;
  int distance = 0;
};

std::vector<AdmitRecord> admit_records(const std::string& trace) {
  std::vector<AdmitRecord> out;
  std::istringstream lines(trace);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.find("\"ev\":\"admit\"") == std::string::npos) continue;
    out.push_back({jsonl_int_field(line, "slot"),
                   jsonl_int_field(line, "distance")});
  }
  return out;
}

TEST(Workload, AdaptiveDistanceFollowsTheDegradationWindow) {
  const auto event = run_adaptive_once(20240607, SimEngine::Event);
  const auto records = admit_records(event.trace);
  ASSERT_FALSE(records.empty());

  int inside = 0;
  int compact_outside = 0;
  for (const auto& record : records) {
    const bool in_window = record.slot >= 80 && record.slot < 160;
    if (in_window) {
      ++inside;
      // Doubled noise leaves no distance-3 route: every admitted request
      // escalates to the distance-4 code.
      EXPECT_EQ(record.distance, 4) << "slot " << record.slot;
    } else if (record.distance == 3) {
      ++compact_outside;
    }
  }
  // The stream must actually demonstrate the escalation: admits inside
  // the window, and compact distance-3 codes outside it.
  EXPECT_GT(inside, 0);
  EXPECT_GT(compact_outside, 0);
  // The window opened and closed exactly once.
  EXPECT_NE(event.metrics.find("traffic.noise_scale_changes"),
            std::string::npos);

  // The adaptive stream replays bitwise on the slot engine.
  const auto slot = run_adaptive_once(20240607, SimEngine::Slot);
  EXPECT_EQ(event.trace, slot.trace);
  EXPECT_EQ(event.metrics, slot.metrics);
  EXPECT_EQ(event.next_draw, slot.next_draw);
}

TEST(Workload, GoldenAdaptiveTrafficTrace) {
  const auto run = run_adaptive_once(20240607, SimEngine::Event);

  const auto path = golden_path("traffic_adaptive.jsonl");
  if (std::getenv("SURFNET_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << run.trace;
    return;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden trace " << path
                         << " — regenerate with SURFNET_REGEN_GOLDEN=1";
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(run.trace, buffer.str())
      << "adaptive traffic stream diverged from the committed golden trace";
}

TEST(Workload, AdaptiveTrafficIsThreadCountInvariant) {
  // The degradation window is a pure function of the event slot, so the
  // adaptive stream stays bitwise identical across worker counts through
  // core::run_trials' trial-ordered merge.
  const auto run_adaptive_batch = [](int threads) {
    obs::TraceBuffer trace;
    obs::MetricsRegistry metrics;
    core::RunOptions options;
    options.threads = threads;
    options.engine = SimEngine::Event;
    options.sink = obs::Sink{&metrics, &trace};
    auto scenario = small_scenario();
    scenario.routing.adaptive_code_distance = true;
    scenario.workload.degrade_from_slot = 100;
    scenario.workload.degrade_until_slot = 200;
    scenario.workload.degrade_noise_scale = 1.5;
    core::run_trials(scenario, 6, options);
    BatchRun run;
    run.trace = jsonl_of(trace);
    run.metrics = without_timers(metrics);
    return run;
  };
  const auto one = run_adaptive_batch(1);
  const auto eight = run_adaptive_batch(8);
  EXPECT_EQ(one.trace, eight.trace);
  EXPECT_EQ(one.metrics, eight.metrics);
  EXPECT_FALSE(one.trace.empty());
}

}  // namespace
}  // namespace surfnet::netsim
