// Tests of the recovery layer (netsim/recovery.h): backoff arithmetic,
// local-reroute splicing and full-re-route escalation over live fibers,
// the structural reroute validator, and the simulator-level retry /
// escalation / per-code-budget semantics.

#include "netsim/recovery.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "decoder/surfnet_decoder.h"
#include "netsim/faults.h"
#include "netsim/simulator.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "routing/validate.h"
#include "util/contracts.h"
#include "util/rng.h"

namespace surfnet::netsim {
namespace {

/// Same ring as failure_test.cpp: user(0) - sw(1) - server(2) - sw(3) -
/// user(4), plus bypass sw(5) between 1 and 3. Fibers in declaration
/// order: 0={0,1} 1={1,2} 2={2,3} 3={3,4} 4={1,5} 5={5,3}.
Topology ring_topology(double fidelity = 0.95) {
  std::vector<Node> nodes(6);
  nodes[1] = {NodeRole::Switch, 1000};
  nodes[2] = {NodeRole::Server, 1000};
  nodes[3] = {NodeRole::Switch, 1000};
  nodes[5] = {NodeRole::Switch, 1000};
  std::vector<Fiber> fibers{{0, 1, fidelity, 50}, {1, 2, fidelity, 50},
                            {2, 3, fidelity, 50}, {3, 4, fidelity, 50},
                            {1, 5, fidelity, 50}, {5, 3, fidelity, 50}};
  return Topology(std::move(nodes), std::move(fibers));
}

Schedule one_request(int codes, bool dual) {
  Schedule schedule;
  schedule.requested_codes = codes;
  ScheduledRequest s;
  s.request_index = 0;
  s.codes = codes;
  s.support_path = {0, 1, 2, 3, 4};
  if (dual) s.core_path = {0, 1, 2, 3, 4};
  schedule.scheduled.push_back(s);
  return schedule;
}

/// Injector with the given fibers scripted down for the whole test window.
FaultInjector cut_injector(const Topology& topo, std::vector<int> fibers,
                           int duration = 1000) {
  FaultPlan plan;
  for (const int e : fibers)
    plan.scripted.push_back({FaultKind::FiberCut, 0, e, duration, 1.0});
  FaultInjector injector(topo, plan);
  util::Rng rng(1);
  injector.begin_slot(0, rng, obs::Sink{});
  return injector;
}

TEST(RecoveryPolicy, BackoffDoublesUpToTheCap) {
  RecoveryPolicy policy;  // base 1, cap 16
  const int expected[] = {1, 1, 2, 4, 8, 16, 16, 16};
  for (int attempt = 0; attempt < 8; ++attempt)
    EXPECT_EQ(policy.backoff_slots(attempt), expected[attempt])
        << "attempt " << attempt;

  RecoveryPolicy capped;
  capped.backoff_base_slots = 3;
  capped.backoff_cap_slots = 10;
  EXPECT_EQ(capped.backoff_slots(1), 3);
  EXPECT_EQ(capped.backoff_slots(2), 6);
  EXPECT_EQ(capped.backoff_slots(3), 10);  // 12 clamped
  EXPECT_EQ(capped.backoff_slots(50), 10);
}

TEST(RecoveryPolicy, FactoriesMatchTheirDocumentedPostures) {
  const auto off = RecoveryPolicy::disabled();
  EXPECT_FALSE(off.local_reroute);
  EXPECT_EQ(off.max_swap_retries, 0);
  EXPECT_EQ(off.escalate_after_reroutes, 0);
  EXPECT_EQ(off.code_timeout_slots, 0);

  const auto hot = RecoveryPolicy::aggressive();
  EXPECT_TRUE(hot.local_reroute);
  EXPECT_EQ(hot.max_swap_retries, 4);
  EXPECT_EQ(hot.backoff_base_slots, 2);
  EXPECT_EQ(hot.backoff_cap_slots, 16);
  EXPECT_EQ(hot.escalate_after_reroutes, 2);
  EXPECT_EQ(hot.code_timeout_slots, 1500);

  // The default policy reproduces the pre-plan simulator behavior.
  const RecoveryPolicy legacy;
  EXPECT_TRUE(legacy.local_reroute);
  EXPECT_EQ(legacy.max_swap_retries, 0);
  EXPECT_EQ(legacy.escalate_after_reroutes, 0);
  EXPECT_EQ(legacy.code_timeout_slots, 0);
}

TEST(LocalReroute, SplicesADetourAroundTheCut) {
  const auto topo = ring_topology();
  const auto injector = cut_injector(topo, {1});  // {1,2} down
  std::vector<int> path{0, 1, 2, 3, 4};
  ASSERT_TRUE(local_reroute(topo, injector, 0, path, 1, 2));
  // Detour 1 -> 5 -> 3 -> 2, then the untouched tail 3, 4.
  EXPECT_EQ(path, (std::vector<int>{0, 1, 5, 3, 2, 3, 4}));
}

TEST(LocalReroute, LeavesThePathUntouchedWhenIsolated) {
  const auto topo = ring_topology();
  // Node 1 keeps only its user-facing fiber: no live detour to 2 exists
  // (interior detour nodes must be switches/servers, not user 0).
  const auto injector = cut_injector(topo, {1, 4});
  std::vector<int> path{0, 1, 2, 3, 4};
  EXPECT_FALSE(local_reroute(topo, injector, 0, path, 1, 2));
  EXPECT_EQ(path, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ReplanRoute, RebuildsTheRouteThroughAllWaypoints) {
  const auto topo = ring_topology();
  const auto injector = cut_injector(topo, {1});
  std::vector<int> path{0, 1, 2, 3, 4};
  ASSERT_TRUE(replan_route(topo, injector, 0, path, 1, {2, 4}));
  EXPECT_EQ(path, (std::vector<int>{0, 1, 5, 3, 2, 3, 4}));
}

TEST(ReplanRoute, FailsWhenAnyLegIsUnroutable) {
  const auto topo = ring_topology();
  // Leg 1->2 survives (direct fiber), but node 3 loses all fibers so no
  // leg can reach destination 4.
  const auto injector = cut_injector(topo, {2, 3, 5});
  std::vector<int> path{0, 1, 2, 3, 4};
  EXPECT_FALSE(replan_route(topo, injector, 0, path, 1, {2, 4}));
  EXPECT_EQ(path, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_FALSE(replan_route(topo, injector, 0, path, 1, {}));
}

#if SURFNET_CHECKS

TEST(RerouteValidator, AcceptsSplicedRecoveryPaths) {
  const auto topo = ring_topology();
  const auto injector = cut_injector(topo, {1});
  std::vector<int> path{0, 1, 2, 3, 4};
  ASSERT_TRUE(local_reroute(topo, injector, 0, path, 1, 2));
  util::ScopedContractHandler scoped(util::throw_contract_violation);
  EXPECT_NO_THROW(
      routing::check_reroute_invariants(topo, path, 1, {2, 4}));
}

TEST(RerouteValidator, RejectsPathsMissingABarrier) {
  const auto topo = ring_topology();
  // Path that skips the scheduled EC server 2 entirely.
  const std::vector<int> path{0, 1, 5, 3, 4};
  util::ScopedContractHandler scoped(util::throw_contract_violation);
  EXPECT_THROW(routing::check_reroute_invariants(topo, path, 1, {2, 4}),
               util::ContractViolation);
}

TEST(RerouteValidator, RejectsUsersInsideTheRemainingStretch) {
  const auto topo = ring_topology();
  // User 0 sits strictly between pos and the destination.
  const std::vector<int> path{1, 0, 1, 2, 3, 4};
  util::ScopedContractHandler scoped(util::throw_contract_violation);
  EXPECT_THROW(routing::check_reroute_invariants(topo, path, 0, {2, 4}),
               util::ContractViolation);
}

#endif  // SURFNET_CHECKS

TEST(RecoverySimulation, DisabledPolicyMatchesRerouteSwitchBitwise) {
  const auto topo = ring_topology();
  const decoder::SurfNetDecoder dec;
  SimulationParams base;
  base.faults = FaultPlanBuilder().fiber_noise(0.04, 50).build();
  base.max_slots = 20000;

  SimulationParams legacy = base;
  legacy.recovery.local_reroute = false;
  SimulationParams policy = base;
  policy.recovery = RecoveryPolicy::disabled();

  util::Rng rng_a(22), rng_b(22);
  const auto a = simulate_surfnet(topo, one_request(30, true), legacy, dec,
                                  rng_a);
  const auto b = simulate_surfnet(topo, one_request(30, true), policy, dec,
                                  rng_b);
  EXPECT_EQ(a.codes_delivered, b.codes_delivered);
  EXPECT_EQ(a.codes_succeeded, b.codes_succeeded);
  EXPECT_DOUBLE_EQ(a.total_latency, b.total_latency);
  ASSERT_EQ(a.codes.size(), b.codes.size());
  for (std::size_t i = 0; i < a.codes.size(); ++i) {
    EXPECT_EQ(a.codes[i].slots, b.codes[i].slots);
    EXPECT_EQ(a.codes[i].outcome, b.codes[i].outcome);
  }
  EXPECT_EQ(rng_a(), rng_b());
}

TEST(RecoverySimulation, PermanentCutNeedsLocalRecovery) {
  const auto topo = ring_topology();
  const decoder::SurfNetDecoder dec;
  SimulationParams base;
  base.max_slots = 1500;
  base.faults.scripted.push_back({FaultKind::FiberCut, 0, 1, 5000, 1.0});

  SimulationParams healing = base;  // default policy: local reroutes on
  SimulationParams holding = base;
  holding.recovery = RecoveryPolicy::disabled();

  util::Rng rng_a(31), rng_b(31);
  const auto rerouted =
      simulate_surfnet(topo, one_request(3, true), healing, dec, rng_a);
  const auto stuck =
      simulate_surfnet(topo, one_request(3, true), holding, dec, rng_b);
  EXPECT_EQ(rerouted.codes_delivered, 3);
  EXPECT_EQ(stuck.codes_delivered, 0);
}

TEST(RecoverySimulation, SwapRetriesBackOffExponentially) {
  const auto topo = ring_topology();
  const decoder::SurfNetDecoder dec;
  SimulationParams params;
  params.swap_success = 0.5;
  params.max_slots = 20000;
  params.recovery = RecoveryPolicy::aggressive();
  obs::MetricsRegistry metrics;
  obs::TraceBuffer trace;
  params.sink = obs::Sink{&metrics, &trace};

  util::Rng rng(47);
  const auto result =
      simulate_surfnet(topo, one_request(10, true), params, dec, rng);
  EXPECT_EQ(result.codes_delivered, 10);
  EXPECT_GT(metrics.counter("sim.retries"), 0);

  std::int64_t retries = 0;
  for (const auto& event : trace.events()) {
    if (event.kind != obs::EventKind::Retry) continue;
    ++retries;
    EXPECT_GE(event.c, 1);  // attempt stays within the retry budget
    EXPECT_LE(event.c, params.recovery.max_swap_retries);
    EXPECT_EQ(event.d, params.recovery.backoff_slots(event.c));
  }
  EXPECT_EQ(retries, metrics.counter("sim.retries"));
}

TEST(RecoverySimulation, EscalationFiresAfterFailedLocalRecoveries) {
  // A pure line has no detour: every local recovery fails, so escalation
  // triggers and — with the whole remaining route equally dead — records
  // a "hold" (rerouted=false) decision until the fiber heals.
  std::vector<Node> nodes(3);
  nodes[1] = {NodeRole::Switch, 1000};
  Topology topo(std::move(nodes), {{0, 1, 0.95, 50}, {1, 2, 0.95, 50}});
  Schedule schedule;
  schedule.requested_codes = 1;
  ScheduledRequest s;
  s.request_index = 0;
  s.codes = 1;
  s.support_path = {0, 1, 2};
  schedule.scheduled.push_back(s);

  const decoder::SurfNetDecoder dec;
  SimulationParams params;
  params.max_slots = 500;
  params.faults.scripted.push_back({FaultKind::FiberCut, 0, 0, 60, 1.0});
  params.recovery.escalate_after_reroutes = 1;
  obs::MetricsRegistry metrics;
  obs::TraceBuffer trace;
  params.sink = obs::Sink{&metrics, &trace};

  util::Rng rng(53);
  const auto result = simulate_surfnet(topo, schedule, params, dec, rng);
  EXPECT_EQ(result.codes_delivered, 1);
  EXPECT_GT(metrics.counter("sim.escalations"), 0);
  bool saw_hold = false;
  for (const auto& event : trace.events())
    if (event.kind == obs::EventKind::Escalate && !event.flag)
      saw_hold = true;
  EXPECT_TRUE(saw_hold);
}

TEST(RecoverySimulation, PerCodeBudgetAbandonsStarvedCodes) {
  const auto topo = ring_topology();
  const decoder::SurfNetDecoder dec;
  SimulationParams params;
  params.swap_success = 0.0;  // the Core channel can never move
  params.max_slots = 1000;
  params.recovery.code_timeout_slots = 40;
  obs::MetricsRegistry metrics;
  params.sink.metrics = &metrics;

  util::Rng rng(61);
  const auto result =
      simulate_surfnet(topo, one_request(3, true), params, dec, rng);
  EXPECT_EQ(result.codes_delivered, 0);
  ASSERT_EQ(result.codes.size(), 3u);
  for (const auto& record : result.codes) {
    EXPECT_EQ(record.outcome, CodeOutcome::TimedOut);
    EXPECT_EQ(record.slots, 40);  // censored at the per-code budget
  }
  EXPECT_EQ(metrics.counter("sim.timeouts"), 3);
}

TEST(RecoverySimulation, BudgetAppliesToPurificationRuns) {
  const auto topo = ring_topology();
  SimulationParams params;
  params.entanglement_rate = 0.0;  // pairs never arrive
  params.max_slots = 1000;
  params.recovery.code_timeout_slots = 25;

  util::Rng rng(67);
  const auto result =
      simulate_purification(topo, one_request(2, true), 1, params, rng);
  EXPECT_EQ(result.codes_delivered, 0);
  ASSERT_EQ(result.codes.size(), 2u);
  for (const auto& record : result.codes) {
    EXPECT_EQ(record.outcome, CodeOutcome::TimedOut);
    EXPECT_EQ(record.slots, 25);
  }
}

}  // namespace
}  // namespace surfnet::netsim
