// Unit tests of the observability layer: metrics registry semantics
// (counters, gauges, histograms, timers, deterministic merges) and the
// golden JSONL schema of every trace event kind. The JSONL strings pinned
// here are the stable wire format bench_compare.py --validate checks; any
// intentional change must update both sides and bump the schema note in
// obs/trace.h.

#include "obs/metrics.h"
#include "obs/sink.h"
#include "obs/trace.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

namespace surfnet::obs {
namespace {

TEST(Metrics, CountersAccumulateAndDefaultToZero) {
  MetricsRegistry m;
  EXPECT_EQ(m.counter("missing"), 0);
  m.count("a");
  m.count("a", 4);
  m.count("b", -2);
  EXPECT_EQ(m.counter("a"), 5);
  EXPECT_EQ(m.counter("b"), -2);
  EXPECT_FALSE(m.empty());
}

TEST(Metrics, GaugesKeepLatestValue) {
  MetricsRegistry m;
  m.gauge("level", 3.0);
  m.gauge("level", 7.5);
  EXPECT_DOUBLE_EQ(m.gauge_value("level"), 7.5);
  EXPECT_DOUBLE_EQ(m.gauge_value("missing"), 0.0);
}

TEST(Metrics, HistogramBucketsIncludingOverflow) {
  MetricsRegistry m;
  const std::vector<double> bounds = {1.0, 10.0, 100.0};
  // Bounds are inclusive upper bounds; the 4th bucket is the overflow.
  for (const double v : {0.5, 1.0, 1.5, 10.0, 99.0, 100.5, 1e9})
    m.observe("h", v, bounds);
  const Histogram* h = m.histogram("h");
  ASSERT_NE(h, nullptr);
  ASSERT_EQ(h->counts.size(), 4u);
  EXPECT_EQ(h->counts[0], 2);  // 0.5, 1.0 (bounds are inclusive)
  EXPECT_EQ(h->counts[1], 2);  // 1.5, 10.0
  EXPECT_EQ(h->counts[2], 1);  // 99.0
  EXPECT_EQ(h->counts[3], 2);  // 100.5, 1e9 land in the overflow bucket
  EXPECT_EQ(h->total, 7);
  EXPECT_DOUBLE_EQ(h->sum, 0.5 + 1.0 + 1.5 + 10.0 + 99.0 + 100.5 + 1e9);
}

TEST(Metrics, HistogramBoundsFixedByFirstCall) {
  MetricsRegistry m;
  m.observe("h", 5.0, {10.0});
  m.observe("h", 50.0, {1.0, 2.0, 3.0});  // later bounds ignored
  const Histogram* h = m.histogram("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->bounds, std::vector<double>({10.0}));
  EXPECT_EQ(h->counts[0], 1);
  EXPECT_EQ(h->counts[1], 1);
}

TEST(Metrics, ScopedTimerAccumulatesAndNullIsNoop) {
  MetricsRegistry m;
  {
    ScopedTimer t(&m, "t.outer");
    ScopedTimer inner(&m, "t.inner");
  }
  { ScopedTimer t(&m, "t.outer"); }
  EXPECT_GT(m.timer_seconds("t.outer"), 0.0);
  EXPECT_GT(m.timer_seconds("t.inner"), 0.0);
  // Null registry: constructing and destroying must be a no-op.
  { ScopedTimer t(nullptr, "t.null"); }
  EXPECT_DOUBLE_EQ(m.timer_seconds("t.null"), 0.0);
}

TEST(Metrics, MergeAddsCountersHistogramsTimers) {
  MetricsRegistry a, b;
  a.count("c", 3);
  b.count("c", 4);
  b.count("only_b", 1);
  a.gauge("g", 1.0);
  b.gauge("g", 2.0);
  a.time("t", 0.5);
  b.time("t", 0.25);
  const std::vector<double> bounds = {10.0, 20.0};
  a.observe("h", 5.0, bounds);
  b.observe("h", 15.0, bounds);
  b.observe("h", 25.0, bounds);

  a.merge(b);
  EXPECT_EQ(a.counter("c"), 7);
  EXPECT_EQ(a.counter("only_b"), 1);
  EXPECT_DOUBLE_EQ(a.gauge_value("g"), 2.0);  // gauges take other's latest
  EXPECT_DOUBLE_EQ(a.timer_seconds("t"), 0.75);
  const Histogram* h = a.histogram("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->counts, (std::vector<std::int64_t>{1, 1, 1}));
  EXPECT_EQ(h->total, 3);
}

TEST(Metrics, MergeRejectsMismatchedBuckets) {
  MetricsRegistry a, b;
  a.observe("h", 1.0, {10.0});
  b.observe("h", 1.0, {10.0, 20.0});
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(Metrics, MergeOrderInvariantForIntegerAggregates) {
  // The thread-count-invariance contract: per-trial registries merged in
  // any grouping produce identical counters and histogram buckets.
  std::vector<MetricsRegistry> trials(6);
  for (int t = 0; t < 6; ++t) {
    trials[t].count("c", t + 1);
    trials[t].observe("h", 7.0 * t, {10.0, 30.0});
  }
  MetricsRegistry all_at_once;        // "1 thread": merge 0..5 in order
  for (const auto& r : trials) all_at_once.merge(r);
  MetricsRegistry grouped;            // "3 threads": pre-merge pairs
  for (int g = 0; g < 3; ++g) {
    MetricsRegistry pair;
    pair.merge(trials[2 * g]);
    pair.merge(trials[2 * g + 1]);
    grouped.merge(pair);
  }
  EXPECT_EQ(all_at_once.to_json(), grouped.to_json());
}

TEST(Metrics, JsonExportSchema) {
  MetricsRegistry m;
  m.count("z.count", 2);
  m.count("a.count", 1);
  m.gauge("g", 1.5);
  m.time("t", 0.5);
  m.observe("h", 5.0, {10.0});
  EXPECT_EQ(m.to_json(),
            "{\"schema_version\": 1, "
            "\"counters\": {\"a.count\": 1, \"z.count\": 2}, "
            "\"gauges\": {\"g\": 1.5}, "
            "\"timers\": {\"t\": 0.5}, "
            "\"histograms\": {\"h\": {\"bounds\": [10], "
            "\"counts\": [1, 0], \"total\": 1, \"sum\": 5}}}");
}

TEST(Metrics, EmptyRegistryExportsEmptySections) {
  MetricsRegistry m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.to_json(),
            "{\"schema_version\": 1, \"counters\": {}, \"gauges\": {}, "
            "\"timers\": {}, \"histograms\": {}}");
}

TEST(Sink, NullSinkIsDisabled) {
  Sink sink;
  EXPECT_FALSE(sink.enabled());
  EXPECT_FALSE(sink.tracing());
  MetricsRegistry m;
  sink.metrics = &m;
  EXPECT_TRUE(sink.enabled());
  EXPECT_FALSE(sink.tracing());
}

// --- Golden JSONL schema: the exact line for each event kind. ---

TEST(Trace, GoldenJsonlPool) {
  EXPECT_EQ(to_jsonl(Event::pool(3, 120, 4)),
            "{\"ev\":\"pool\",\"slot\":3,\"pairs_total\":120,"
            "\"pairs_min\":4}");
}

TEST(Trace, GoldenJsonlFiberDown) {
  EXPECT_EQ(to_jsonl(Event::fiber_down(7, 2, 27)),
            "{\"ev\":\"fiber_down\",\"slot\":7,\"fiber\":2,"
            "\"until_slot\":27}");
}

TEST(Trace, GoldenJsonlRecovery) {
  EXPECT_EQ(to_jsonl(Event::recovery(5, 1, /*core_channel=*/false)),
            "{\"ev\":\"recovery\",\"slot\":5,\"request\":1,"
            "\"channel\":\"support\"}");
  EXPECT_EQ(to_jsonl(Event::recovery(5, 1, /*core_channel=*/true)),
            "{\"ev\":\"recovery\",\"slot\":5,\"request\":1,"
            "\"channel\":\"core\"}");
}

TEST(Trace, GoldenJsonlSegmentJump) {
  EXPECT_EQ(to_jsonl(Event::segment_jump(9, 0, 4, 6, 2, true)),
            "{\"ev\":\"segment_jump\",\"slot\":9,\"request\":0,"
            "\"from_node\":4,\"to_node\":6,\"fibers\":2,\"success\":true}");
}

TEST(Trace, GoldenJsonlDecode) {
  EXPECT_EQ(to_jsonl(Event::decode(11, 2, 8, /*ec=*/true, 3, 5,
                                   /*logical_error=*/false)),
            "{\"ev\":\"decode\",\"slot\":11,\"request\":2,\"node\":8,"
            "\"ec\":true,\"erasures\":3,\"syndromes\":5,"
            "\"logical_error\":false}");
}

TEST(Trace, GoldenJsonlDelivered) {
  EXPECT_EQ(to_jsonl(Event::delivered(14, 2, 14, 3,
                                      /*logical_error=*/true)),
            "{\"ev\":\"delivered\",\"slot\":14,\"request\":2,\"slots\":14,"
            "\"corrections\":3,\"outcome\":\"logical_error\"}");
}

TEST(Trace, GoldenJsonlTimeout) {
  EXPECT_EQ(to_jsonl(Event::timeout(20000, 6, 19988)),
            "{\"ev\":\"timeout\",\"slot\":20000,\"request\":6,"
            "\"slots\":19988}");
}

TEST(Trace, GoldenJsonlNodeDown) {
  EXPECT_EQ(to_jsonl(Event::node_down(12, 5, 42)),
            "{\"ev\":\"node_down\",\"slot\":12,\"node\":5,"
            "\"until_slot\":42}");
}

TEST(Trace, GoldenJsonlDegraded) {
  EXPECT_EQ(to_jsonl(Event::degraded(8, 3, 48, 0.25)),
            "{\"ev\":\"degraded\",\"slot\":8,\"fiber\":3,"
            "\"until_slot\":48,\"factor\":0.25}");
}

TEST(Trace, GoldenJsonlDecodeStall) {
  EXPECT_EQ(to_jsonl(Event::decode_stall(30, 35)),
            "{\"ev\":\"decode_stall\",\"slot\":30,\"until_slot\":35}");
}

TEST(Trace, GoldenJsonlRetry) {
  EXPECT_EQ(to_jsonl(Event::retry(6, 2, /*core_channel=*/true, 3, 4)),
            "{\"ev\":\"retry\",\"slot\":6,\"request\":2,"
            "\"channel\":\"core\",\"attempt\":3,\"backoff\":4}");
}

TEST(Trace, GoldenJsonlEscalate) {
  EXPECT_EQ(to_jsonl(Event::escalate(10, 1, /*core_channel=*/false,
                                     /*rerouted=*/true)),
            "{\"ev\":\"escalate\",\"slot\":10,\"request\":1,"
            "\"channel\":\"support\",\"action\":\"reroute\"}");
  EXPECT_EQ(to_jsonl(Event::escalate(10, 1, /*core_channel=*/true,
                                     /*rerouted=*/false)),
            "{\"ev\":\"escalate\",\"slot\":10,\"request\":1,"
            "\"channel\":\"core\",\"action\":\"hold\"}");
}

TEST(Trace, GoldenJsonlLpSolve) {
  EXPECT_EQ(to_jsonl(Event::lp_solve(42, 3, /*warm=*/true, 0, 1.5)),
            "{\"ev\":\"lp_solve\",\"iterations\":42,"
            "\"refactorizations\":3,\"warm_start\":true,\"status\":0,"
            "\"objective\":1.5}");
}

TEST(Trace, GoldenJsonlArrival) {
  EXPECT_EQ(to_jsonl(Event::arrival(12, 7, 0, 4, 1)),
            "{\"ev\":\"arrival\",\"slot\":12,\"request\":7,"
            "\"src\":0,\"dst\":4,\"class\":1}");
}

TEST(Trace, GoldenJsonlAdmit) {
  EXPECT_EQ(to_jsonl(Event::admit(12, 7, 2, 4, 12, /*source=*/1,
                                  /*distance=*/0)),
            "{\"ev\":\"admit\",\"slot\":12,\"request\":7,\"codes\":2,"
            "\"hops\":4,\"est_slots\":12,\"source\":\"warm\","
            "\"distance\":0}");
  EXPECT_EQ(to_jsonl(Event::admit(0, 0, 1, 2, 8, /*source=*/0,
                                  /*distance=*/3)),
            "{\"ev\":\"admit\",\"slot\":0,\"request\":0,\"codes\":1,"
            "\"hops\":2,\"est_slots\":8,\"source\":\"greedy\","
            "\"distance\":3}");
  EXPECT_EQ(to_jsonl(Event::admit(3, 1, 1, 2, 8, /*source=*/2,
                                  /*distance=*/5)),
            "{\"ev\":\"admit\",\"slot\":3,\"request\":1,\"codes\":1,"
            "\"hops\":2,\"est_slots\":8,\"source\":\"cold\","
            "\"distance\":5}");
}

TEST(Trace, GoldenJsonlBlocked) {
  EXPECT_EQ(to_jsonl(Event::blocked(9, 5, /*reason=*/0)),
            "{\"ev\":\"blocked\",\"slot\":9,\"request\":5,"
            "\"reason\":\"load\"}");
  EXPECT_EQ(to_jsonl(Event::blocked(9, 5, /*reason=*/1)),
            "{\"ev\":\"blocked\",\"slot\":9,\"request\":5,"
            "\"reason\":\"capacity\"}");
  EXPECT_EQ(to_jsonl(Event::blocked(9, 5, /*reason=*/2)),
            "{\"ev\":\"blocked\",\"slot\":9,\"request\":5,"
            "\"reason\":\"fidelity\"}");
  EXPECT_EQ(to_jsonl(Event::blocked(9, 5, /*reason=*/3)),
            "{\"ev\":\"blocked\",\"slot\":9,\"request\":5,"
            "\"reason\":\"deadline\"}");
  // Out-of-range reasons clamp to "capacity" rather than indexing past
  // the reason table.
  EXPECT_EQ(to_jsonl(Event::blocked(9, 5, /*reason=*/99)),
            "{\"ev\":\"blocked\",\"slot\":9,\"request\":5,"
            "\"reason\":\"capacity\"}");
}

TEST(Trace, GoldenJsonlDepart) {
  EXPECT_EQ(to_jsonl(Event::depart(40, 7, 28)),
            "{\"ev\":\"depart\",\"slot\":40,\"request\":7,"
            "\"latency\":28}");
}

TEST(Trace, TrialStampAppearsAfterEv) {
  Event e = Event::pool(0, 1, 1);
  e.trial = 5;
  EXPECT_EQ(to_jsonl(e),
            "{\"ev\":\"pool\",\"trial\":5,\"slot\":0,\"pairs_total\":1,"
            "\"pairs_min\":1}");
}

TEST(Trace, FlushToStampsOnlyUnstampedEvents) {
  TraceBuffer buffer;
  buffer.record(Event::pool(0, 10, 2));
  Event prestamped = Event::pool(1, 20, 3);
  prestamped.trial = 9;
  buffer.record(prestamped);

  TraceBuffer out;
  buffer.flush_to(out, 4);
  ASSERT_EQ(out.events().size(), 2u);
  EXPECT_EQ(out.events()[0].trial, 4);
  EXPECT_EQ(out.events()[1].trial, 9);
  // The source buffer is unchanged (flush is const).
  EXPECT_EQ(buffer.events()[0].trial, -1);
}

TEST(Trace, EventKindNamesRoundTrip) {
  EXPECT_EQ(to_string(EventKind::PoolLevel), "pool");
  EXPECT_EQ(to_string(EventKind::FiberDown), "fiber_down");
  EXPECT_EQ(to_string(EventKind::Recovery), "recovery");
  EXPECT_EQ(to_string(EventKind::SegmentJump), "segment_jump");
  EXPECT_EQ(to_string(EventKind::Decode), "decode");
  EXPECT_EQ(to_string(EventKind::Delivered), "delivered");
  EXPECT_EQ(to_string(EventKind::Timeout), "timeout");
  EXPECT_EQ(to_string(EventKind::NodeDown), "node_down");
  EXPECT_EQ(to_string(EventKind::Degraded), "degraded");
  EXPECT_EQ(to_string(EventKind::DecodeStall), "decode_stall");
  EXPECT_EQ(to_string(EventKind::Retry), "retry");
  EXPECT_EQ(to_string(EventKind::Escalate), "escalate");
  EXPECT_EQ(to_string(EventKind::LpSolve), "lp_solve");
}

}  // namespace
}  // namespace surfnet::obs
