// Incremental router (routing/incremental.h) and unified route() facade
// (routing/router.h) tests.
//
// The incremental contract: admit() commits exactly what release()
// returns, the greedy fast path keeps the LP untouched while capacity
// lasts, warm-started assists need strictly fewer simplex iterations than
// the cold solves that precede them, and a saturated commodity is
// rejected without another solve until capacity comes back.
//
// The facade contract: RouteStrategy::Auto reproduces the historical
// route_lp-with-greedy-fallback seam bitwise, the forced arms match the
// underlying routers, and a warm_state handle fed back into a
// shape-stable repeat solve cuts its iteration count.

#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "netsim/schedule.h"
#include "netsim/topology.h"
#include "netsim/workload.h"
#include "obs/metrics.h"
#include "routing/greedy.h"
#include "routing/incremental.h"
#include "routing/lp_router.h"
#include "routing/router.h"
#include "util/rng.h"

namespace surfnet::routing {
namespace {

using netsim::Fiber;
using netsim::Node;
using netsim::NodeRole;
using netsim::Topology;

/// Ring: user(0) - sw(1) - server(2) - sw(3) - user(4), plus bypass sw(5)
/// connecting 1 and 3 (the golden_trace_test.cpp shape).
Topology ring_topology(double fidelity = 0.95) {
  std::vector<Node> nodes(6);
  nodes[1] = {NodeRole::Switch, 1000};
  nodes[2] = {NodeRole::Server, 1000};
  nodes[3] = {NodeRole::Switch, 1000};
  nodes[5] = {NodeRole::Switch, 1000};
  std::vector<Fiber> fibers{{0, 1, fidelity, 50}, {1, 2, fidelity, 50},
                            {2, 3, fidelity, 50}, {3, 4, fidelity, 50},
                            {1, 5, fidelity, 50}, {5, 3, fidelity, 50}};
  return Topology(std::move(nodes), std::move(fibers));
}

struct TrackerSnapshot {
  std::vector<double> nodes;
  std::vector<double> fibers;
};

TrackerSnapshot snapshot(const Topology& topology,
                         const CapacityTracker& tracker) {
  TrackerSnapshot snap;
  for (int v = 0; v < topology.num_nodes(); ++v)
    snap.nodes.push_back(tracker.node_remaining(v));
  for (int e = 0; e < topology.num_fibers(); ++e)
    snap.fibers.push_back(tracker.fiber_pairs_remaining(e));
  return snap;
}

TEST(IncrementalRouter, AdmitReleaseRoundtripRestoresTracker) {
  const auto topology = ring_topology();
  RoutingParams params;
  IncrementalRouter router(topology, params);
  const auto before = snapshot(topology, router.tracker());

  std::vector<netsim::AdmittedRoute> held;
  for (const auto& [src, dst, codes] :
       {std::tuple{0, 4, 1}, {4, 0, 2}, {0, 4, 1}}) {
    auto route = router.admit(src, dst, codes);
    ASSERT_TRUE(route.has_value());
    held.push_back(*route);
  }
  // Resources are actually held while the requests are live.
  const auto during = snapshot(topology, router.tracker());
  EXPECT_NE(before.nodes, during.nodes);

  // Release out of admission order: the tracker is a bag, not a stack.
  router.release(held[1]);
  router.release(held[0]);
  router.release(held[2]);
  const auto after = snapshot(topology, router.tracker());
  EXPECT_EQ(before.nodes, after.nodes);
  EXPECT_EQ(before.fibers, after.fibers);
}

TEST(IncrementalRouter, GreedyFastPathLeavesTheLpUntouched) {
  const auto topology = ring_topology();
  RoutingParams params;
  IncrementalRouter router(topology, params);
  for (int i = 0; i < 3; ++i) {
    const auto route = router.admit(0, 4, 1);
    ASSERT_TRUE(route.has_value());
    EXPECT_EQ(route->source, netsim::AdmitSource::Greedy);
    EXPECT_EQ(route->path.front(), 0);
    EXPECT_EQ(route->path.back(), 4);
  }
  EXPECT_EQ(router.stats().greedy_admits, 3);
  EXPECT_EQ(router.stats().cold_solves, 0);
  EXPECT_EQ(router.stats().warm_solves, 0);
}

/// Drive the ring to saturation on the (0, 4) commodity: every fiber of
/// both disjoint routes carries 50 pairs and a code costs core_qubits=7,
/// so after 14 admits nothing fits and the LP ladder engages.
TEST(IncrementalRouter, SaturationIsSkippedUntilCapacityReturns) {
  const auto topology = ring_topology();
  RoutingParams params;
  IncrementalRouter router(topology, params);

  std::vector<netsim::AdmittedRoute> held;
  while (true) {
    auto route = router.admit(0, 4, 1);
    if (!route) break;
    held.push_back(*route);
    ASSERT_LT(held.size(), 200u) << "the ring never saturated";
  }
  ASSERT_FALSE(held.empty());
  // The failed admit consulted the LP exactly once and marked the
  // commodity saturated.
  EXPECT_EQ(router.stats().lp_rejects, 1);
  const int solves_after_reject =
      router.stats().cold_solves + router.stats().warm_solves;
  EXPECT_GE(solves_after_reject, 1);

  // Further admits for the saturated commodity skip the LP entirely.
  EXPECT_FALSE(router.admit(0, 4, 1).has_value());
  EXPECT_FALSE(router.admit(0, 4, 1).has_value());
  EXPECT_EQ(router.stats().saturation_skips, 2);
  EXPECT_EQ(router.stats().cold_solves + router.stats().warm_solves,
            solves_after_reject);

  // A release clears the flag and the freed capacity admits again.
  router.release(held.back());
  held.pop_back();
  const auto again = router.admit(0, 4, 1);
  ASSERT_TRUE(again.has_value());
}

TEST(IncrementalRouter, WarmSolvesNeedFewerIterationsThanCold) {
  const auto topology = ring_topology();
  RoutingParams params;
  IncrementalRouter router(topology, params);

  // Saturate to force the first (cold) LP solve, then re-optimize twice
  // over the standing formulation: shape-stable solves warm-start from
  // the saved basis.
  std::vector<netsim::AdmittedRoute> held;
  while (auto route = router.admit(0, 4, 1)) held.push_back(*route);
  ASSERT_GE(router.stats().cold_solves, 1);
  const long cold_total = router.stats().cold_iterations;
  ASSERT_GT(cold_total, 0);

  router.reoptimize();
  router.reoptimize();
  ASSERT_GE(router.stats().warm_solves, 2);

  const double cold_per_solve =
      static_cast<double>(cold_total) / router.stats().cold_solves;
  const double warm_per_solve =
      static_cast<double>(router.stats().warm_iterations) /
      router.stats().warm_solves;
  EXPECT_LT(warm_per_solve, cold_per_solve)
      << "warm-started solves should re-use the basis, not re-derive it";
}

TEST(IncrementalRouter, ReoptimizeReportsUnboundedHeadroomWithNoHistory) {
  const auto topology = ring_topology();
  RoutingParams params;
  IncrementalRouter router(topology, params);
  // No commodity has ever needed the LP: the probe has nothing to solve
  // and reports effectively-infinite headroom.
  EXPECT_GE(router.reoptimize(), 1e3);
}

// ---------------------------------------------------------------------------
// Adaptive code selection and the noise-profile seam.

TEST(IncrementalRouter, AdaptiveAdmitCommitsDistanceScaledCapacity) {
  const auto topology = ring_topology(0.97);  // clean: residual under 0.10
  RoutingParams params;
  IncrementalRouter fixed(topology, params);
  params.adaptive_code_distance = true;
  IncrementalRouter adaptive(topology, params);
  const auto before = snapshot(topology, adaptive.tracker());

  const auto route = adaptive.admit(0, 4, 1);
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->distance, 3);
  const auto fixed_route = fixed.admit(0, 4, 1);
  ASSERT_TRUE(fixed_route.has_value());
  EXPECT_EQ(fixed_route->distance, 0);

  // The compact distance-3 code holds strictly less storage than the
  // configuration-default code the fixed router commits.
  double adaptive_held = 0.0;
  double fixed_held = 0.0;
  for (int v = 0; v < topology.num_nodes(); ++v) {
    adaptive_held += before.nodes[static_cast<std::size_t>(v)] -
                     adaptive.tracker().node_remaining(v);
    fixed_held += before.nodes[static_cast<std::size_t>(v)] -
                  fixed.tracker().node_remaining(v);
  }
  EXPECT_GT(adaptive_held, 0.0);
  EXPECT_LT(adaptive_held, fixed_held);

  // Release keyed by the recorded distance restores the tracker exactly.
  adaptive.release(*route);
  const auto after = snapshot(topology, adaptive.tracker());
  EXPECT_EQ(before.nodes, after.nodes);
  EXPECT_EQ(before.fibers, after.fibers);
}

TEST(IncrementalRouter, NoiseScaleEscalatesDistanceAndReleaseStaysExact) {
  const auto topology = ring_topology(0.97);
  RoutingParams params;
  params.adaptive_code_distance = true;
  IncrementalRouter router(topology, params);
  const auto before = snapshot(topology, router.tracker());

  const auto clean = router.admit(0, 4, 1);
  ASSERT_TRUE(clean.has_value());
  EXPECT_EQ(clean->distance, 3);

  // A degradation window opens: every fiber measures as fidelity^2, the
  // residual noise crosses the distance-4 band, and the route reports the
  // scaled noise.
  router.set_noise_scale(2.0);
  EXPECT_EQ(router.noise_scale(), 2.0);
  EXPECT_EQ(router.stats().profile_changes, 1);
  const auto degraded = router.admit(0, 4, 1);
  ASSERT_TRUE(degraded.has_value());
  EXPECT_EQ(degraded->distance, 4);
  EXPECT_GT(degraded->noise, clean->noise);

  // The window closes; releases still return exactly what each admit
  // committed, keyed by the distance recorded on the route — not by the
  // profile in force at release time.
  router.set_noise_scale(1.0);
  EXPECT_EQ(router.stats().profile_changes, 2);
  router.release(*degraded);
  router.release(*clean);
  const auto after = snapshot(topology, router.tracker());
  EXPECT_EQ(before.nodes, after.nodes);
  EXPECT_EQ(before.fibers, after.fibers);
}

TEST(IncrementalRouter, NoiseScaleRevalidatesInfeasibleCommodities) {
  const auto topology = ring_topology(0.97);
  RoutingParams params;
  params.adaptive_code_distance = true;
  IncrementalRouter router(topology, params);

  // Under a 4x noise profile no candidate path passes the Eq. (6)
  // thresholds at any distance: the commodity is marked infeasible and
  // further admits are O(1) skips.
  router.set_noise_scale(4.0);
  EXPECT_FALSE(router.admit(0, 4, 1).has_value());
  EXPECT_FALSE(router.admit(0, 4, 1).has_value());
  EXPECT_EQ(router.stats().infeasible_skips, 2);

  // "Infeasible, never cleared" is scoped to one profile: restoring the
  // clean measurement re-runs the check and the pair routes again.
  router.set_noise_scale(1.0);
  const auto route = router.admit(0, 4, 1);
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->distance, 3);
}

// ---------------------------------------------------------------------------
// route() facade.

void expect_schedules_equal(const netsim::Schedule& a,
                            const netsim::Schedule& b) {
  EXPECT_EQ(a.requested_codes, b.requested_codes);
  EXPECT_EQ(a.lp_objective, b.lp_objective);
  ASSERT_EQ(a.scheduled.size(), b.scheduled.size());
  for (std::size_t i = 0; i < a.scheduled.size(); ++i) {
    const auto& x = a.scheduled[i];
    const auto& y = b.scheduled[i];
    EXPECT_EQ(x.request_index, y.request_index);
    EXPECT_EQ(x.codes, y.codes);
    EXPECT_EQ(x.core_path, y.core_path);
    EXPECT_EQ(x.support_path, y.support_path);
    EXPECT_EQ(x.ec_servers, y.ec_servers);
    EXPECT_EQ(x.code_distance, y.code_distance);
  }
}

struct Instance {
  Topology topology;
  std::vector<netsim::Request> requests;
};

Instance random_instance(std::uint64_t seed) {
  util::Rng rng(seed);
  netsim::TopologySpec spec;  // paper-sized Barabasi-Albert defaults
  Instance instance{netsim::make_random_topology(spec, rng),
                    {}};
  instance.requests =
      netsim::random_requests(instance.topology, 6, 3, rng);
  return instance;
}

TEST(RouteFacade, AutoReproducesTheLpWithGreedyFallbackSeam) {
  for (const std::uint64_t seed : {1ULL, 7ULL, 42ULL, 99ULL}) {
    const auto instance = random_instance(seed);
    RoutingParams params;

    util::Rng rng_facade(seed * 31 + 1);
    util::Rng rng_manual(seed * 31 + 1);
    const auto facade =
        route(instance.topology, instance.requests, params, rng_facade);

    // The historical core-layer seam, spelled out by hand.
    auto manual =
        route_lp(instance.topology, instance.requests, params, rng_manual);
    netsim::Schedule expected = manual.status == LpStatus::Optimal
                                    ? std::move(manual.schedule)
                                    : route_greedy(instance.topology,
                                                   instance.requests, params,
                                                   rng_manual);

    EXPECT_EQ(facade.status, manual.status);
    EXPECT_EQ(facade.used_lp, manual.status == LpStatus::Optimal);
    EXPECT_EQ(facade.greedy_fallback, manual.status != LpStatus::Optimal);
    expect_schedules_equal(facade.schedule, expected);
    // Both consumed the identical RNG stream.
    EXPECT_EQ(rng_facade(), rng_manual());
  }
}

TEST(RouteFacade, GreedyStrategyMatchesRouteGreedy) {
  const auto instance = random_instance(5);
  RoutingParams params;
  util::Rng rng_facade(17);
  util::Rng rng_manual(17);
  const auto facade =
      route(instance.topology, instance.requests, params, rng_facade,
            RouteOptions{RouteStrategy::Greedy, nullptr});
  const auto manual =
      route_greedy(instance.topology, instance.requests, params, rng_manual);
  EXPECT_FALSE(facade.used_lp);
  expect_schedules_equal(facade.schedule, manual);
  EXPECT_EQ(rng_facade(), rng_manual());
}

TEST(RouteFacade, LpStrategyMatchesRouteLp) {
  const auto instance = random_instance(9);
  RoutingParams params;
  util::Rng rng_facade(23);
  util::Rng rng_manual(23);
  const auto facade =
      route(instance.topology, instance.requests, params, rng_facade,
            RouteOptions{RouteStrategy::Lp, nullptr});
  const auto manual =
      route_lp(instance.topology, instance.requests, params, rng_manual);
  EXPECT_EQ(facade.status, manual.status);
  EXPECT_EQ(facade.lp_objective, manual.lp_objective);
  expect_schedules_equal(facade.schedule, manual.schedule);
}

TEST(RouteFacade, WarmStateCutsRepeatSolveIterations) {
  const auto instance = random_instance(3);
  RoutingParams params;
  SimplexState state;
  RouteOptions options{RouteStrategy::Lp, &state};

  util::Rng rng_a(77);
  const auto cold =
      route(instance.topology, instance.requests, params, rng_a, options);
  ASSERT_EQ(cold.status, LpStatus::Optimal);
  ASSERT_GT(cold.cold_iterations, 0);
  ASSERT_TRUE(state.valid());

  // Same shape, warm basis: the repeat solve starts where the last one
  // ended and needs strictly fewer iterations.
  util::Rng rng_b(77);
  const auto warm =
      route(instance.topology, instance.requests, params, rng_b, options);
  EXPECT_EQ(warm.status, LpStatus::Optimal);
  EXPECT_LT(warm.cold_iterations, cold.cold_iterations);
  expect_schedules_equal(warm.schedule, cold.schedule);

  // The result also carries a copy of the final basis.
  EXPECT_TRUE(warm.state.valid());
  EXPECT_EQ(warm.state.basis, state.basis);
}

}  // namespace
}  // namespace surfnet::routing
