#include <gtest/gtest.h>

#include "netsim/schedule.h"
#include "netsim/topology.h"
#include "routing/dense_simplex.h"
#include "routing/formulation.h"
#include "routing/simplex.h"
#include "util/rng.h"

// The sparse revised simplex must be a drop-in replacement for the dense
// tableau it displaced: same LpStatus on every problem, objectives within
// 1e-6 whenever both report Optimal. The dense path carries a deterministic
// 1e-7 anti-degeneracy perturbation, so exact variable values may differ
// (alternate optima); only status and objective are contractual.

namespace surfnet::routing {
namespace {

void expect_equivalent(const LpProblem& lp, const std::string& label) {
  const LpSolution sparse = solve_lp(lp);
  const LpSolution dense = solve_lp_dense(lp);
  ASSERT_EQ(sparse.status, dense.status) << label;
  if (sparse.status != LpStatus::Optimal) return;
  EXPECT_NEAR(sparse.objective, dense.objective, 1e-6) << label;
  // The sparse point must itself be feasible.
  for (int r = 0; r < lp.num_rows(); ++r) {
    const auto cols = lp.row_cols(r);
    const auto coeffs = lp.row_coeffs(r);
    double lhs = 0.0;
    for (std::size_t t = 0; t < cols.size(); ++t)
      lhs += coeffs[t] * sparse.x[static_cast<std::size_t>(cols[t])];
    switch (lp.row_type(r)) {
      case ConstraintType::LessEqual:
        EXPECT_LE(lhs, lp.rhs(r) + 1e-5) << label << " row " << r;
        break;
      case ConstraintType::GreaterEqual:
        EXPECT_GE(lhs, lp.rhs(r) - 1e-5) << label << " row " << r;
        break;
      case ConstraintType::Equal:
        EXPECT_NEAR(lhs, lp.rhs(r), 1e-5) << label << " row " << r;
        break;
    }
  }
  for (int v = 0; v < lp.num_vars(); ++v) {
    EXPECT_GE(sparse.x[static_cast<std::size_t>(v)], -1e-6);
    EXPECT_LE(sparse.x[static_cast<std::size_t>(v)],
              lp.upper_bound(v) + 1e-5);
  }
}

TEST(SimplexEquivalence, RandomMixedConstraintProblems) {
  util::Rng rng(2024);
  for (int trial = 0; trial < 120; ++trial) {
    LpProblem lp;
    const int nv = 2 + static_cast<int>(rng.below(8));
    for (int v = 0; v < nv; ++v) {
      const double ub =
          rng.bernoulli(0.7) ? rng.uniform(0.5, 6.0) : LpProblem::kInfinity;
      lp.add_variable(rng.uniform(-1.0, 2.0), ub);
    }
    const int rows = 1 + static_cast<int>(rng.below(8));
    for (int r = 0; r < rows; ++r) {
      // Mostly <= capacities (keeps the origin feasible often enough that
      // both Optimal and Infeasible outcomes are exercised), with a mix of
      // >= floors and = couplings.
      ConstraintType type = ConstraintType::LessEqual;
      const double roll = rng.uniform(0.0, 1.0);
      if (roll > 0.85)
        type = ConstraintType::Equal;
      else if (roll > 0.7)
        type = ConstraintType::GreaterEqual;
      lp.begin_constraint(type, rng.uniform(0.5, 8.0));
      int terms = 0;
      for (int v = 0; v < nv; ++v)
        if (rng.bernoulli(0.6)) {
          lp.add_term(v, rng.uniform(0.1, 2.0));
          ++terms;
        }
      if (terms == 0) lp.add_term(0, 1.0);
    }
    expect_equivalent(lp, "trial " + std::to_string(trial));
  }
}

TEST(SimplexEquivalence, RandomProblemsWithNegativeCoefficients) {
  // Negative coefficients produce negative effective RHS after folding and
  // exercise the phase-1 repair path of the sparse solver.
  util::Rng rng(777);
  int optimal = 0;
  for (int trial = 0; trial < 80; ++trial) {
    LpProblem lp;
    const int nv = 2 + static_cast<int>(rng.below(5));
    for (int v = 0; v < nv; ++v)
      lp.add_variable(rng.uniform(-1.5, 1.5), rng.uniform(1.0, 4.0));
    const int rows = 1 + static_cast<int>(rng.below(5));
    for (int r = 0; r < rows; ++r) {
      const ConstraintType type = rng.bernoulli(0.5)
                                      ? ConstraintType::LessEqual
                                      : ConstraintType::GreaterEqual;
      lp.begin_constraint(type, rng.uniform(-3.0, 3.0));
      int terms = 0;
      for (int v = 0; v < nv; ++v)
        if (rng.bernoulli(0.6)) {
          lp.add_term(v, rng.uniform(-2.0, 2.0));
          ++terms;
        }
      if (terms == 0) lp.add_term(0, 1.0);
    }
    const LpSolution sparse = solve_lp(lp);
    if (sparse.status == LpStatus::Optimal) ++optimal;
    expect_equivalent(lp, "trial " + std::to_string(trial));
  }
  EXPECT_GT(optimal, 10);  // the suite must not be vacuously infeasible
}

TEST(SimplexEquivalence, RoutingFormulationsMatchDense) {
  // Seed-scale routing LPs: the exact problem family the solver exists
  // for, both the SurfNet dual-channel formulation and the Raw baseline.
  for (const std::uint64_t seed : {7ULL, 21ULL, 63ULL}) {
    netsim::TopologySpec spec;
    spec.num_nodes = 16;
    spec.num_servers = 2;
    spec.num_switches = 5;
    spec.storage_capacity = 100;
    spec.entanglement_capacity = 30;
    util::Rng rng(seed);
    const auto topo = netsim::make_random_topology(spec, rng);
    const auto requests = netsim::random_requests(topo, 4, 3, rng);

    for (const bool dual : {true, false}) {
      RoutingParams params;
      params.dual_channel = dual;
      const RoutingFormulation formulation(topo, requests, params);
      expect_equivalent(formulation.problem(),
                        "seed " + std::to_string(seed) +
                            (dual ? " dual" : " raw"));
    }
  }
}

}  // namespace
}  // namespace surfnet::routing
