// Corruption tests for the routing validators: produce a healthy schedule
// and a healthy simplex basis snapshot, break one invariant at a time, and
// confirm the matching check fires. Skipped when the build compiles
// contracts out.

#include "routing/validate.h"

#include <gtest/gtest.h>

#include <vector>

#include "netsim/schedule.h"
#include "netsim/topology.h"
#include "routing/formulation.h"
#include "routing/greedy.h"
#include "util/contracts.h"
#include "util/rng.h"

namespace surfnet::routing {
namespace {

using netsim::Request;
using netsim::Schedule;
using netsim::Topology;
using netsim::TopologySpec;
using util::ContractViolation;
using util::ScopedContractHandler;
using util::throw_contract_violation;

#if SURFNET_CHECKS

struct ScheduleFixture {
  ScheduleFixture() : rng(42) {
    TopologySpec spec;
    spec.num_nodes = 22;
    spec.num_servers = 3;
    spec.num_switches = 7;
    spec.storage_capacity = 100;
    spec.entanglement_capacity = 30;
    topology = netsim::make_random_topology(spec, rng);
    requests = netsim::random_requests(topology, 6, 3, rng);
    params.core_noise_threshold = 0.6;
    params.total_noise_threshold = 0.7;
    params.ec_reduction = 0.15;
    schedule = route_greedy(topology, requests, params, rng);
    // route_greedy already self-validates under SURFNET_CHECKS, so the
    // fixture's schedule is known-healthy and nonempty for these seeds.
  }

  util::Rng rng;
  Topology topology;
  std::vector<Request> requests;
  RoutingParams params;
  Schedule schedule;
};

TEST(ScheduleValidator, AcceptsHealthySchedule) {
  ScheduleFixture fix;
  ASSERT_FALSE(fix.schedule.scheduled.empty());
  ScopedContractHandler scoped(throw_contract_violation);
  EXPECT_NO_THROW(check_schedule_invariants(fix.topology, fix.requests,
                                            fix.params, fix.schedule));
}

TEST(ScheduleValidator, RejectsRequestIndexOutOfRange) {
  ScheduleFixture fix;
  ASSERT_FALSE(fix.schedule.scheduled.empty());
  fix.schedule.scheduled.front().request_index = 999;
  ScopedContractHandler scoped(throw_contract_violation);
  EXPECT_THROW(check_schedule_invariants(fix.topology, fix.requests,
                                         fix.params, fix.schedule),
               ContractViolation);
}

TEST(ScheduleValidator, RejectsOverschedulingARequest) {
  ScheduleFixture fix;
  ASSERT_FALSE(fix.schedule.scheduled.empty());
  auto& entry = fix.schedule.scheduled.front();
  const auto& req =
      fix.requests[static_cast<std::size_t>(entry.request_index)];
  entry.codes = req.codes + 1;  // more codes than the request asked for
  ScopedContractHandler scoped(throw_contract_violation);
  EXPECT_THROW(check_schedule_invariants(fix.topology, fix.requests,
                                         fix.params, fix.schedule),
               ContractViolation);
}

TEST(ScheduleValidator, RejectsBrokenSupportPath) {
  ScheduleFixture fix;
  ASSERT_FALSE(fix.schedule.scheduled.empty());
  auto& entry = fix.schedule.scheduled.front();
  entry.support_path.pop_back();  // no longer ends at the request's dst
  ScopedContractHandler scoped(throw_contract_violation);
  EXPECT_THROW(check_schedule_invariants(fix.topology, fix.requests,
                                         fix.params, fix.schedule),
               ContractViolation);
}

TEST(ScheduleValidator, RejectsNonServerEcNode) {
  ScheduleFixture fix;
  ASSERT_FALSE(fix.schedule.scheduled.empty());
  auto& entry = fix.schedule.scheduled.front();
  int non_server = -1;
  for (int v = 0; v < fix.topology.num_nodes(); ++v)
    if (!fix.topology.is_server(v)) non_server = v;
  ASSERT_GE(non_server, 0);
  entry.ec_servers.push_back(non_server);
  ScopedContractHandler scoped(throw_contract_violation);
  EXPECT_THROW(check_schedule_invariants(fix.topology, fix.requests,
                                         fix.params, fix.schedule),
               ContractViolation);
}

TEST(ScheduleValidator, RejectsCapacityOverflow) {
  ScheduleFixture fix;
  ASSERT_FALSE(fix.schedule.scheduled.empty());
  // Inflate both the request and the scheduled codes so the per-request
  // bound holds but the storage demand on interior nodes explodes.
  auto& entry = fix.schedule.scheduled.front();
  ASSERT_GE(entry.support_path.size(), 3u)
      << "fixture schedule has no interior node";
  auto& req = fix.requests[static_cast<std::size_t>(entry.request_index)];
  req.codes += 100000;
  fix.schedule.requested_codes += 100000;
  entry.codes += 100000;
  ScopedContractHandler scoped(throw_contract_violation);
  EXPECT_THROW(check_schedule_invariants(fix.topology, fix.requests,
                                         fix.params, fix.schedule),
               ContractViolation);
}

struct SimplexStateFixture {
  SimplexStateFixture() : fix(), formulation(fix.topology, fix.requests,
                                             fix.params) {
    solution = solve_lp(formulation.problem(), state);
  }

  ScheduleFixture fix;
  RoutingFormulation formulation;
  SimplexState state;
  LpSolution solution;
};

TEST(SimplexStateValidator, AcceptsHealthySnapshot) {
  SimplexStateFixture sf;
  ASSERT_TRUE(sf.state.valid());
  ScopedContractHandler scoped(throw_contract_violation);
  EXPECT_NO_THROW(
      check_simplex_state_invariants(sf.formulation.problem(), sf.state));
}

TEST(SimplexStateValidator, RejectsDuplicateBasicColumn) {
  SimplexStateFixture sf;
  ASSERT_TRUE(sf.state.valid());
  ASSERT_GE(sf.state.basis.size(), 2u);
  sf.state.basis[0] = sf.state.basis[1];
  ScopedContractHandler scoped(throw_contract_violation);
  EXPECT_THROW(
      check_simplex_state_invariants(sf.formulation.problem(), sf.state),
      ContractViolation);
}

TEST(SimplexStateValidator, RejectsBasicColumnFlaggedAtUpper) {
  SimplexStateFixture sf;
  ASSERT_TRUE(sf.state.valid());
  sf.state.at_upper[static_cast<std::size_t>(sf.state.basis[0])] = 1;
  ScopedContractHandler scoped(throw_contract_violation);
  EXPECT_THROW(
      check_simplex_state_invariants(sf.formulation.problem(), sf.state),
      ContractViolation);
}

TEST(SimplexStateValidator, RejectsShapeMismatch) {
  SimplexStateFixture sf;
  ASSERT_TRUE(sf.state.valid());
  sf.state.num_rows += 1;
  ScopedContractHandler scoped(throw_contract_violation);
  EXPECT_THROW(
      check_simplex_state_invariants(sf.formulation.problem(), sf.state),
      ContractViolation);
}

#else  // !SURFNET_CHECKS

TEST(ScheduleValidator, SkippedWithoutChecks) {
  GTEST_SKIP() << "SURFNET_CHECKS is off; validators compile to no-ops";
}

#endif  // SURFNET_CHECKS

}  // namespace
}  // namespace surfnet::routing
