// Tests for the routing formulation, the greedy scheduler, the LP router
// with rounding, and the purification router: schedules must be structurally
// valid (adjacent hops, user endpoints, EC servers on both paths in order)
// and respect every capacity and noise constraint.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "netsim/channel.h"
#include "routing/formulation.h"
#include "routing/greedy.h"
#include "routing/lp_router.h"
#include "routing/purification.h"
#include "util/rng.h"

namespace surfnet::routing {
namespace {

using netsim::Request;
using netsim::Schedule;
using netsim::Topology;
using netsim::TopologySpec;

TopologySpec spec_for_tests() {
  TopologySpec spec;
  spec.num_nodes = 22;
  spec.num_servers = 3;
  spec.num_switches = 7;
  spec.storage_capacity = 100;
  spec.entanglement_capacity = 30;
  return spec;
}

RoutingParams params_for_tests() {
  RoutingParams params;
  params.core_noise_threshold = 0.6;
  params.total_noise_threshold = 0.7;
  params.ec_reduction = 0.15;
  return params;
}

void check_schedule_valid(const Topology& topo,
                          const std::vector<Request>& requests,
                          const Schedule& schedule, bool dual) {
  int total_codes = 0;
  std::map<int, int> per_request;
  for (const auto& s : schedule.scheduled) {
    ASSERT_GE(s.request_index, 0);
    ASSERT_LT(s.request_index, static_cast<int>(requests.size()));
    const auto& req = requests[static_cast<std::size_t>(s.request_index)];
    total_codes += s.codes;
    per_request[s.request_index] += s.codes;

    // Support path: valid, endpoints match, hops adjacent, transit nodes
    // are switches/servers.
    ASSERT_GE(s.support_path.size(), 2u);
    EXPECT_EQ(s.support_path.front(), req.src);
    EXPECT_EQ(s.support_path.back(), req.dst);
    for (std::size_t i = 0; i + 1 < s.support_path.size(); ++i)
      EXPECT_GE(topo.fiber_between(s.support_path[i], s.support_path[i + 1]),
                0);
    for (std::size_t i = 1; i + 1 < s.support_path.size(); ++i)
      EXPECT_TRUE(topo.is_switch_or_server(s.support_path[i]));

    if (dual) {
      ASSERT_GE(s.core_path.size(), 2u);
      EXPECT_EQ(s.core_path.front(), req.src);
      EXPECT_EQ(s.core_path.back(), req.dst);
      for (std::size_t i = 0; i + 1 < s.core_path.size(); ++i)
        EXPECT_GE(topo.fiber_between(s.core_path[i], s.core_path[i + 1]), 0);
    } else {
      EXPECT_TRUE(s.core_path.empty());
    }

    // EC servers appear on both paths, in order.
    std::size_t sup_cursor = 0, core_cursor = 0;
    for (int server : s.ec_servers) {
      EXPECT_TRUE(topo.is_server(server));
      const auto sup_it =
          std::find(s.support_path.begin() +
                        static_cast<std::ptrdiff_t>(sup_cursor),
                    s.support_path.end(), server);
      ASSERT_NE(sup_it, s.support_path.end());
      sup_cursor =
          static_cast<std::size_t>(sup_it - s.support_path.begin()) + 1;
      if (dual) {
        const auto core_it =
            std::find(s.core_path.begin() +
                          static_cast<std::ptrdiff_t>(core_cursor),
                      s.core_path.end(), server);
        ASSERT_NE(core_it, s.core_path.end());
        core_cursor =
            static_cast<std::size_t>(core_it - s.core_path.begin()) + 1;
      }
    }
  }
  EXPECT_EQ(total_codes, schedule.scheduled_codes());
  for (const auto& [k, codes] : per_request)
    EXPECT_LE(codes, requests[static_cast<std::size_t>(k)].codes);
}

void check_capacities(const Topology& topo, const Schedule& schedule,
                      const RoutingParams& params) {
  std::map<int, double> node_usage;
  std::map<int, double> fiber_usage;
  for (const auto& s : schedule.scheduled) {
    const double support_demand =
        params.dual_channel ? params.support_qubits : params.total_qubits();
    for (std::size_t i = 1; i + 1 < s.support_path.size(); ++i)
      node_usage[s.support_path[i]] += support_demand * s.codes;
    for (std::size_t i = 1; i + 1 < s.core_path.size(); ++i)
      node_usage[s.core_path[i]] += params.core_qubits * s.codes;
    for (std::size_t i = 0; i + 1 < s.core_path.size(); ++i)
      fiber_usage[topo.fiber_between(s.core_path[i], s.core_path[i + 1])] +=
          params.core_qubits * s.codes;
  }
  const double bonus =
      params.dual_channel ? 1.0 : params.raw_capacity_bonus;
  for (const auto& [node, usage] : node_usage)
    EXPECT_LE(usage, bonus * topo.node(node).storage_capacity + 1e-6)
        << "node " << node;
  for (const auto& [fiber, usage] : fiber_usage)
    EXPECT_LE(usage, topo.fiber(fiber).entanglement_capacity + 1e-6)
        << "fiber " << fiber;
}

class RouterPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(RouterPropertyTest, GreedyScheduleIsValidAndWithinCapacity) {
  util::Rng rng(static_cast<unsigned>(GetParam()));
  const auto topo = netsim::make_random_topology(spec_for_tests(), rng);
  const auto requests = netsim::random_requests(topo, 6, 3, rng);
  const auto params = params_for_tests();
  const auto schedule = route_greedy(topo, requests, params, rng);
  check_schedule_valid(topo, requests, schedule, /*dual=*/true);
  check_capacities(topo, schedule, params);
}

TEST_P(RouterPropertyTest, LpScheduleIsValidAndWithinCapacity) {
  util::Rng rng(static_cast<unsigned>(GetParam()) + 1000);
  const auto topo = netsim::make_random_topology(spec_for_tests(), rng);
  const auto requests = netsim::random_requests(topo, 6, 3, rng);
  const auto params = params_for_tests();
  const auto result = route_lp(topo, requests, params, rng);
  check_schedule_valid(topo, requests, result.schedule, /*dual=*/true);
  check_capacities(topo, result.schedule, params);
  // Integral schedules cannot beat the LP relaxation.
  if (result.status == LpStatus::Optimal) {
    EXPECT_LE(result.schedule.scheduled_codes(), result.lp_objective + 1e-4);
  }
}

TEST_P(RouterPropertyTest, RawLpScheduleIsValid) {
  util::Rng rng(static_cast<unsigned>(GetParam()) + 2000);
  const auto topo = netsim::make_random_topology(spec_for_tests(), rng);
  const auto requests = netsim::random_requests(topo, 6, 3, rng);
  auto params = params_for_tests();
  params.dual_channel = false;
  const auto result = route_lp(topo, requests, params, rng);
  check_schedule_valid(topo, requests, result.schedule, /*dual=*/false);
  check_capacities(topo, result.schedule, params);
}

TEST_P(RouterPropertyTest, PurificationScheduleRespectsPairBudget) {
  util::Rng rng(static_cast<unsigned>(GetParam()) + 3000);
  const auto topo = netsim::make_random_topology(spec_for_tests(), rng);
  const auto requests = netsim::random_requests(topo, 8, 3, rng);
  PurificationParams params;
  params.extra_pairs = 2;
  const auto schedule = route_purification(topo, requests, params, rng);
  std::map<int, double> fiber_usage;
  for (const auto& s : schedule.scheduled) {
    ASSERT_GE(s.core_path.size(), 2u);
    const auto& req = requests[static_cast<std::size_t>(s.request_index)];
    EXPECT_EQ(s.core_path.front(), req.src);
    EXPECT_EQ(s.core_path.back(), req.dst);
    for (std::size_t i = 0; i + 1 < s.core_path.size(); ++i) {
      const int e = topo.fiber_between(s.core_path[i], s.core_path[i + 1]);
      ASSERT_GE(e, 0);
      fiber_usage[e] += (1 + params.extra_pairs) * s.codes;
    }
  }
  for (const auto& [fiber, usage] : fiber_usage)
    EXPECT_LE(usage, topo.fiber(fiber).entanglement_capacity + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RouterPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(LpRouter, WarmResolveStatsAreConsistent) {
  // The router re-solves the residual LP from the saved basis at most
  // twice; when it does, a warm re-solve must cost (on average) fewer
  // simplex iterations than the cold solve it descends from.
  int observed_resolves = 0;
  for (const unsigned seed : {11u, 12u, 13u, 14u, 15u, 16u}) {
    util::Rng rng(seed);
    const auto topo = netsim::make_random_topology(spec_for_tests(), rng);
    const auto requests = netsim::random_requests(topo, 8, 4, rng);
    const auto result = route_lp(topo, requests, params_for_tests(), rng);
    if (result.status != LpStatus::Optimal) continue;
    EXPECT_GT(result.cold_iterations, 0);
    EXPECT_LE(result.resolves, 2);
    if (result.resolves > 0) {
      ++observed_resolves;
      EXPECT_LT(result.warm_iterations / result.resolves,
                result.cold_iterations)
          << "seed " << seed;
    }
  }
  // The assertion above must not be vacuous across the seed set.
  EXPECT_GT(observed_resolves, 0);
}

TEST(Greedy, NoCapacityMeansNothingScheduled) {
  util::Rng rng(50);
  auto spec = spec_for_tests();
  spec.storage_capacity = 0;
  const auto topo = netsim::make_random_topology(spec, rng);
  const auto requests = netsim::random_requests(topo, 5, 2, rng);
  const auto schedule =
      route_greedy(topo, requests, params_for_tests(), rng);
  EXPECT_EQ(schedule.scheduled_codes(), 0);
  EXPECT_DOUBLE_EQ(schedule.throughput(), 0.0);
}

TEST(Greedy, TightThresholdBlocksLongRoutes) {
  util::Rng rng(51);
  const auto topo = netsim::make_random_topology(spec_for_tests(), rng);
  const auto requests = netsim::random_requests(topo, 5, 2, rng);
  auto params = params_for_tests();
  params.core_noise_threshold = 1e-6;
  params.total_noise_threshold = 1e-6;
  const auto schedule = route_greedy(topo, requests, params, rng);
  // Only zero-noise routes (if any perfect-fidelity path exists) pass.
  for (const auto& s : schedule.scheduled)
    EXPECT_LE(netsim::path_noise(topo, s.support_path), 1e-5);
}

TEST(Formulation, VariableCountsAndPruning) {
  util::Rng rng(52);
  const auto topo = netsim::make_random_topology(spec_for_tests(), rng);
  const auto requests = netsim::random_requests(topo, 3, 2, rng);
  const RoutingFormulation formulation(topo, requests,
                                       params_for_tests());
  EXPECT_EQ(formulation.num_requests(), 3);
  for (int k = 0; k < 3; ++k) {
    const auto& v = formulation.vars(k);
    EXPECT_GE(v.y, 0);
    EXPECT_EQ(v.x.size(), topo.servers().size());
    // Edges into the source and out of the destination are pruned.
    const auto& req = requests[static_cast<std::size_t>(k)];
    for (int de = 0; de < formulation.num_directed_edges(); ++de) {
      if (formulation.edge_head(de) == req.src) {
        EXPECT_EQ(v.a[static_cast<std::size_t>(de)], -1);
      }
      if (formulation.edge_tail(de) == req.dst) {
        EXPECT_EQ(v.b[static_cast<std::size_t>(de)], -1);
      }
    }
  }
}

TEST(Formulation, LpSolutionRespectsYBounds) {
  util::Rng rng(53);
  const auto topo = netsim::make_random_topology(spec_for_tests(), rng);
  const auto requests = netsim::random_requests(topo, 4, 3, rng);
  const RoutingFormulation formulation(topo, requests, params_for_tests());
  const auto sol = solve_lp(formulation.problem());
  ASSERT_EQ(sol.status, LpStatus::Optimal);
  for (int k = 0; k < formulation.num_requests(); ++k) {
    const double y =
        sol.x[static_cast<std::size_t>(formulation.vars(k).y)];
    EXPECT_GE(y, -1e-6);
    EXPECT_LE(y, requests[static_cast<std::size_t>(k)].codes + 1e-6);
  }
}

TEST(Formulation, RejectsNonUserEndpoints) {
  util::Rng rng(54);
  const auto topo = netsim::make_random_topology(spec_for_tests(), rng);
  const int server = topo.servers().front();
  const int user = topo.users().front();
  std::vector<Request> bad{{server, user, 1}};
  EXPECT_THROW(RoutingFormulation(topo, bad, params_for_tests()),
               std::invalid_argument);
}

TEST(CapacityTrackerTest, CommitDecrements) {
  util::Rng rng(55);
  const auto topo = netsim::make_random_topology(spec_for_tests(), rng);
  const auto params = params_for_tests();
  CapacityTracker tracker(topo, params);
  // Find any user-switch-...: use greedy plan for a request.
  const auto users = topo.users();
  const auto plan =
      plan_code(topo, tracker, params, users[0], users[1]);
  ASSERT_TRUE(plan.has_value());
  const double before = tracker.node_remaining(plan->path[1]);
  tracker.commit(plan->path);
  EXPECT_NEAR(tracker.node_remaining(plan->path[1]),
              before - params.total_qubits(), 1e-9);
}


TEST(AdaptiveDistance, BandsEscalateWithResidualNoise) {
  EXPECT_EQ(adaptive_distance(0.0), 3);
  EXPECT_EQ(adaptive_distance(0.10), 3);
  EXPECT_EQ(adaptive_distance(0.2), 4);
  EXPECT_EQ(adaptive_distance(0.30), 4);
  EXPECT_EQ(adaptive_distance(0.5), 5);
}

TEST(AdaptiveDistance, QubitCountFormulas) {
  EXPECT_EQ(RoutingParams::core_qubits_for(3), 5);
  EXPECT_EQ(RoutingParams::total_qubits_for(3), 13);
  EXPECT_EQ(RoutingParams::core_qubits_for(4), 7);
  EXPECT_EQ(RoutingParams::total_qubits_for(4), 25);
  EXPECT_EQ(RoutingParams::core_qubits_for(5), 9);
  EXPECT_EQ(RoutingParams::total_qubits_for(5), 41);
}

TEST(AdaptiveDistance, GreedySchedulerAssignsDistances) {
  util::Rng rng(60);
  const auto topo = netsim::make_random_topology(spec_for_tests(), rng);
  const auto requests = netsim::random_requests(topo, 8, 2, rng);
  auto params = params_for_tests();
  params.adaptive_code_distance = true;
  const auto schedule = route_greedy(topo, requests, params, rng);
  ASSERT_GT(schedule.scheduled_codes(), 0);
  for (const auto& s : schedule.scheduled) {
    EXPECT_GE(s.code_distance, 3);
    EXPECT_LE(s.code_distance, 5);
  }
}

TEST(AdaptiveDistance, AdaptiveExecutesAtLeastAsMuchAsFixed) {
  // Threshold scaling lets noisy routes run on bigger codes, so the
  // adaptive scheduler should never execute fewer codes.
  util::Rng rng(61);
  const auto topo = netsim::make_random_topology(spec_for_tests(), rng);
  const auto requests = netsim::random_requests(topo, 8, 2, rng);
  auto fixed = params_for_tests();
  fixed.core_noise_threshold = 0.25;
  fixed.total_noise_threshold = 0.3;
  auto adaptive = fixed;
  adaptive.adaptive_code_distance = true;
  util::Rng rng1(62), rng2(62);
  const auto fixed_schedule = route_greedy(topo, requests, fixed, rng1);
  const auto adaptive_schedule = route_greedy(topo, requests, adaptive, rng2);
  EXPECT_GE(adaptive_schedule.scheduled_codes(),
            fixed_schedule.scheduled_codes());
}


TEST(Formulation, LpFlowsSatisfyConservationAndCoupling) {
  // Property on the raw LP solution: Eq. (4) conservation at every
  // switch/server and the server EC coupling x_r = inflow/n hold within
  // solver tolerance, for both Core and Support flows.
  util::Rng rng(70);
  const auto topo = netsim::make_random_topology(spec_for_tests(), rng);
  const auto requests = netsim::random_requests(topo, 4, 3, rng);
  const auto params = params_for_tests();
  const RoutingFormulation formulation(topo, requests, params);
  const auto sol = solve_lp(formulation.problem());
  ASSERT_EQ(sol.status, LpStatus::Optimal);

  auto flow_sum = [&](const std::vector<int>& vars, auto keep) {
    double total = 0.0;
    for (int de = 0; de < formulation.num_directed_edges(); ++de) {
      const int var = vars[static_cast<std::size_t>(de)];
      if (var >= 0 && keep(de)) total += sol.x[static_cast<std::size_t>(var)];
    }
    return total;
  };

  for (int k = 0; k < formulation.num_requests(); ++k) {
    const auto& v = formulation.vars(k);
    for (int node : topo.switches_and_servers()) {
      const double a_in = flow_sum(
          v.a, [&](int de) { return formulation.edge_head(de) == node; });
      const double a_out = flow_sum(
          v.a, [&](int de) { return formulation.edge_tail(de) == node; });
      EXPECT_NEAR(a_in, a_out, 1e-5);
      const double b_in = flow_sum(
          v.b, [&](int de) { return formulation.edge_head(de) == node; });
      const double b_out = flow_sum(
          v.b, [&](int de) { return formulation.edge_tail(de) == node; });
      EXPECT_NEAR(b_in, b_out, 1e-5);
    }
    const auto& servers = formulation.servers();
    for (std::size_t r = 0; r < servers.size(); ++r) {
      const int node = servers[r];
      const double a_in = flow_sum(
          v.a, [&](int de) { return formulation.edge_head(de) == node; });
      const double x = sol.x[static_cast<std::size_t>(v.x[r])];
      EXPECT_NEAR(a_in, params.core_qubits * x, 1e-4);
    }
    // Eq. (3): source outflow equals n * Y.
    const auto& req = requests[static_cast<std::size_t>(k)];
    const double y = sol.x[static_cast<std::size_t>(v.y)];
    const double src_out = flow_sum(
        v.a, [&](int de) { return formulation.edge_tail(de) == req.src; });
    EXPECT_NEAR(src_out, params.core_qubits * y, 1e-4);
  }
}

}  // namespace
}  // namespace surfnet::routing
