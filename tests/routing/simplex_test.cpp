#include "routing/simplex.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace surfnet::routing {
namespace {

TEST(Simplex, SimpleTwoVariableMaximum) {
  // max 3x + 2y s.t. x + y <= 4, x + 3y <= 6 -> x=4, y=0, obj=12.
  LpProblem lp;
  const int x = lp.add_variable(3.0);
  const int y = lp.add_variable(2.0);
  lp.add_constraint({{{x, 1.0}, {y, 1.0}}, ConstraintType::LessEqual, 4.0});
  lp.add_constraint({{{x, 1.0}, {y, 3.0}}, ConstraintType::LessEqual, 6.0});
  const auto sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::Optimal);
  EXPECT_NEAR(sol.objective, 12.0, 1e-5);
  EXPECT_NEAR(sol.x[static_cast<std::size_t>(x)], 4.0, 1e-5);
  EXPECT_NEAR(sol.x[static_cast<std::size_t>(y)], 0.0, 1e-5);
}

TEST(Simplex, InteriorOptimum) {
  // max x + y s.t. 2x + y <= 4, x + 2y <= 4 -> x=y=4/3, obj=8/3.
  LpProblem lp;
  const int x = lp.add_variable(1.0);
  const int y = lp.add_variable(1.0);
  lp.add_constraint({{{x, 2.0}, {y, 1.0}}, ConstraintType::LessEqual, 4.0});
  lp.add_constraint({{{x, 1.0}, {y, 2.0}}, ConstraintType::LessEqual, 4.0});
  const auto sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::Optimal);
  EXPECT_NEAR(sol.objective, 8.0 / 3.0, 1e-5);
}

TEST(Simplex, EqualityConstraint) {
  // max x + 2y s.t. x + y = 3, y <= 2 -> x=1, y=2, obj=5.
  LpProblem lp;
  const int x = lp.add_variable(1.0);
  const int y = lp.add_variable(2.0, 2.0);
  lp.add_constraint({{{x, 1.0}, {y, 1.0}}, ConstraintType::Equal, 3.0});
  const auto sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::Optimal);
  EXPECT_NEAR(sol.objective, 5.0, 1e-5);
  EXPECT_NEAR(sol.x[static_cast<std::size_t>(x)], 1.0, 1e-5);
  EXPECT_NEAR(sol.x[static_cast<std::size_t>(y)], 2.0, 1e-5);
}

TEST(Simplex, GreaterEqualConstraint) {
  // max -x s.t. x >= 2  ->  x = 2 (minimize x with a floor).
  LpProblem lp;
  const int x = lp.add_variable(-1.0);
  lp.add_constraint({{{x, 1.0}}, ConstraintType::GreaterEqual, 2.0});
  const auto sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::Optimal);
  EXPECT_NEAR(sol.x[static_cast<std::size_t>(x)], 2.0, 1e-5);
}

TEST(Simplex, DetectsInfeasible) {
  LpProblem lp;
  const int x = lp.add_variable(1.0);
  lp.add_constraint({{{x, 1.0}}, ConstraintType::LessEqual, 1.0});
  lp.add_constraint({{{x, 1.0}}, ConstraintType::GreaterEqual, 2.0});
  EXPECT_EQ(solve_lp(lp).status, LpStatus::Infeasible);
}

TEST(Simplex, DetectsUnbounded) {
  LpProblem lp;
  const int x = lp.add_variable(1.0);
  lp.add_constraint({{{x, -1.0}}, ConstraintType::LessEqual, 1.0});
  EXPECT_EQ(solve_lp(lp).status, LpStatus::Unbounded);
}

TEST(Simplex, UpperBoundsAreRespected) {
  LpProblem lp;
  const int x = lp.add_variable(1.0, 2.5);
  const int y = lp.add_variable(1.0, 1.5);
  lp.add_constraint({{{x, 1.0}, {y, 1.0}}, ConstraintType::LessEqual, 10.0});
  const auto sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::Optimal);
  EXPECT_NEAR(sol.x[static_cast<std::size_t>(x)], 2.5, 1e-5);
  EXPECT_NEAR(sol.x[static_cast<std::size_t>(y)], 1.5, 1e-5);
}

TEST(Simplex, ZeroObjectiveIsFeasibilityCheck) {
  LpProblem lp;
  const int x = lp.add_variable(0.0);
  lp.add_constraint({{{x, 1.0}}, ConstraintType::Equal, 7.0});
  const auto sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::Optimal);
  EXPECT_NEAR(sol.x[static_cast<std::size_t>(x)], 7.0, 1e-5);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Many redundant constraints through the same vertex.
  LpProblem lp;
  const int x = lp.add_variable(1.0);
  const int y = lp.add_variable(1.0);
  for (int i = 0; i < 30; ++i)
    lp.add_constraint(
        {{{x, 1.0 + i * 0.0}, {y, 1.0}}, ConstraintType::LessEqual, 2.0});
  lp.add_constraint({{{x, 1.0}}, ConstraintType::LessEqual, 2.0});
  const auto sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::Optimal);
  EXPECT_NEAR(sol.objective, 2.0, 1e-4);
}

TEST(Simplex, RandomProblemsSatisfyConstraints) {
  // Property: on random bounded-feasible LPs the returned point satisfies
  // every constraint and achieves at least the objective of the origin.
  util::Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    LpProblem lp;
    const int nv = 2 + static_cast<int>(rng.below(6));
    for (int v = 0; v < nv; ++v)
      lp.add_variable(rng.uniform(-1.0, 2.0), rng.uniform(0.5, 5.0));
    const int rows = 1 + static_cast<int>(rng.below(6));
    for (int r = 0; r < rows; ++r) {
      Constraint c;
      for (int v = 0; v < nv; ++v)
        if (rng.bernoulli(0.7))
          c.terms.emplace_back(v, rng.uniform(0.1, 2.0));
      if (c.terms.empty()) c.terms.emplace_back(0, 1.0);
      c.type = ConstraintType::LessEqual;
      c.rhs = rng.uniform(1.0, 8.0);
      lp.add_constraint(std::move(c));
    }
    const auto sol = solve_lp(lp);
    ASSERT_EQ(sol.status, LpStatus::Optimal) << "trial " << trial;
    for (const auto& c : lp.constraints) {
      double lhs = 0.0;
      for (const auto& [v, coeff] : c.terms)
        lhs += coeff * sol.x[static_cast<std::size_t>(v)];
      EXPECT_LE(lhs, c.rhs + 1e-5) << "trial " << trial;
    }
    for (int v = 0; v < nv; ++v) {
      EXPECT_GE(sol.x[static_cast<std::size_t>(v)], -1e-6);
      EXPECT_LE(sol.x[static_cast<std::size_t>(v)],
                lp.upper_bound[static_cast<std::size_t>(v)] + 1e-5);
    }
    EXPECT_GE(sol.objective, -1e-6);  // origin is feasible with objective 0
  }
}

TEST(Simplex, RejectsMalformedProblems) {
  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {1.0};  // wrong size
  EXPECT_THROW(solve_lp(lp), std::invalid_argument);

  LpProblem lp2;
  const int x = lp2.add_variable(1.0);
  (void)x;
  lp2.add_constraint({{{5, 1.0}}, ConstraintType::LessEqual, 1.0});
  EXPECT_THROW(solve_lp(lp2), std::invalid_argument);
}

}  // namespace
}  // namespace surfnet::routing
