#include "routing/simplex.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace surfnet::routing {
namespace {

TEST(Simplex, SimpleTwoVariableMaximum) {
  // max 3x + 2y s.t. x + y <= 4, x + 3y <= 6 -> x=4, y=0, obj=12.
  LpProblem lp;
  const int x = lp.add_variable(3.0);
  const int y = lp.add_variable(2.0);
  lp.add_constraint({{{x, 1.0}, {y, 1.0}}, ConstraintType::LessEqual, 4.0});
  lp.add_constraint({{{x, 1.0}, {y, 3.0}}, ConstraintType::LessEqual, 6.0});
  const auto sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::Optimal);
  EXPECT_NEAR(sol.objective, 12.0, 1e-5);
  EXPECT_NEAR(sol.x[static_cast<std::size_t>(x)], 4.0, 1e-5);
  EXPECT_NEAR(sol.x[static_cast<std::size_t>(y)], 0.0, 1e-5);
}

TEST(Simplex, InteriorOptimum) {
  // max x + y s.t. 2x + y <= 4, x + 2y <= 4 -> x=y=4/3, obj=8/3.
  LpProblem lp;
  const int x = lp.add_variable(1.0);
  const int y = lp.add_variable(1.0);
  lp.add_constraint({{{x, 2.0}, {y, 1.0}}, ConstraintType::LessEqual, 4.0});
  lp.add_constraint({{{x, 1.0}, {y, 2.0}}, ConstraintType::LessEqual, 4.0});
  const auto sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::Optimal);
  EXPECT_NEAR(sol.objective, 8.0 / 3.0, 1e-5);
}

TEST(Simplex, EqualityConstraint) {
  // max x + 2y s.t. x + y = 3, y <= 2 -> x=1, y=2, obj=5.
  LpProblem lp;
  const int x = lp.add_variable(1.0);
  const int y = lp.add_variable(2.0, 2.0);
  lp.add_constraint({{{x, 1.0}, {y, 1.0}}, ConstraintType::Equal, 3.0});
  const auto sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::Optimal);
  EXPECT_NEAR(sol.objective, 5.0, 1e-5);
  EXPECT_NEAR(sol.x[static_cast<std::size_t>(x)], 1.0, 1e-5);
  EXPECT_NEAR(sol.x[static_cast<std::size_t>(y)], 2.0, 1e-5);
}

TEST(Simplex, GreaterEqualConstraint) {
  // max -x s.t. x >= 2  ->  x = 2 (minimize x with a floor).
  LpProblem lp;
  const int x = lp.add_variable(-1.0);
  lp.add_constraint({{{x, 1.0}}, ConstraintType::GreaterEqual, 2.0});
  const auto sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::Optimal);
  EXPECT_NEAR(sol.x[static_cast<std::size_t>(x)], 2.0, 1e-5);
}

TEST(Simplex, DetectsInfeasible) {
  LpProblem lp;
  const int x = lp.add_variable(1.0);
  lp.add_constraint({{{x, 1.0}}, ConstraintType::LessEqual, 1.0});
  lp.add_constraint({{{x, 1.0}}, ConstraintType::GreaterEqual, 2.0});
  EXPECT_EQ(solve_lp(lp).status, LpStatus::Infeasible);
}

TEST(Simplex, DetectsUnbounded) {
  LpProblem lp;
  const int x = lp.add_variable(1.0);
  lp.add_constraint({{{x, -1.0}}, ConstraintType::LessEqual, 1.0});
  EXPECT_EQ(solve_lp(lp).status, LpStatus::Unbounded);
}

TEST(Simplex, UpperBoundsAreRespected) {
  LpProblem lp;
  const int x = lp.add_variable(1.0, 2.5);
  const int y = lp.add_variable(1.0, 1.5);
  lp.add_constraint({{{x, 1.0}, {y, 1.0}}, ConstraintType::LessEqual, 10.0});
  const auto sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::Optimal);
  EXPECT_NEAR(sol.x[static_cast<std::size_t>(x)], 2.5, 1e-5);
  EXPECT_NEAR(sol.x[static_cast<std::size_t>(y)], 1.5, 1e-5);
}

TEST(Simplex, ZeroObjectiveIsFeasibilityCheck) {
  LpProblem lp;
  const int x = lp.add_variable(0.0);
  lp.add_constraint({{{x, 1.0}}, ConstraintType::Equal, 7.0});
  const auto sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::Optimal);
  EXPECT_NEAR(sol.x[static_cast<std::size_t>(x)], 7.0, 1e-5);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Many redundant constraints through the same vertex.
  LpProblem lp;
  const int x = lp.add_variable(1.0);
  const int y = lp.add_variable(1.0);
  for (int i = 0; i < 30; ++i)
    lp.add_constraint(
        {{{x, 1.0 + i * 0.0}, {y, 1.0}}, ConstraintType::LessEqual, 2.0});
  lp.add_constraint({{{x, 1.0}}, ConstraintType::LessEqual, 2.0});
  const auto sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::Optimal);
  EXPECT_NEAR(sol.objective, 2.0, 1e-4);
}

TEST(Simplex, RandomProblemsSatisfyConstraints) {
  // Property: on random bounded-feasible LPs the returned point satisfies
  // every constraint and achieves at least the objective of the origin.
  util::Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    LpProblem lp;
    const int nv = 2 + static_cast<int>(rng.below(6));
    for (int v = 0; v < nv; ++v)
      lp.add_variable(rng.uniform(-1.0, 2.0), rng.uniform(0.5, 5.0));
    const int rows = 1 + static_cast<int>(rng.below(6));
    for (int r = 0; r < rows; ++r) {
      Constraint c;
      for (int v = 0; v < nv; ++v)
        if (rng.bernoulli(0.7))
          c.terms.emplace_back(v, rng.uniform(0.1, 2.0));
      if (c.terms.empty()) c.terms.emplace_back(0, 1.0);
      c.type = ConstraintType::LessEqual;
      c.rhs = rng.uniform(1.0, 8.0);
      lp.add_constraint(std::move(c));
    }
    const auto sol = solve_lp(lp);
    ASSERT_EQ(sol.status, LpStatus::Optimal) << "trial " << trial;
    for (int r = 0; r < lp.num_rows(); ++r) {
      const auto cols = lp.row_cols(r);
      const auto coeffs = lp.row_coeffs(r);
      double lhs = 0.0;
      for (std::size_t t = 0; t < cols.size(); ++t)
        lhs += coeffs[t] * sol.x[static_cast<std::size_t>(cols[t])];
      EXPECT_LE(lhs, lp.rhs(r) + 1e-5) << "trial " << trial;
    }
    for (int v = 0; v < nv; ++v) {
      EXPECT_GE(sol.x[static_cast<std::size_t>(v)], -1e-6);
      EXPECT_LE(sol.x[static_cast<std::size_t>(v)], lp.upper_bound(v) + 1e-5);
    }
    EXPECT_GE(sol.objective, -1e-6);  // origin is feasible with objective 0
  }
}

TEST(Simplex, RejectsMalformedProblems) {
  LpProblem lp;
  lp.add_variable(1.0);
  // Terms may only be added to an open constraint...
  EXPECT_THROW(lp.add_term(0, 1.0), std::logic_error);
  // ...and must reference existing variables.
  lp.begin_constraint(ConstraintType::LessEqual, 1.0);
  EXPECT_THROW(lp.add_term(5, 1.0), std::invalid_argument);
  EXPECT_THROW(lp.add_term(-1, 1.0), std::invalid_argument);

  LpProblem lp2;
  const int x = lp2.add_variable(1.0);
  (void)x;
  EXPECT_THROW(
      lp2.add_constraint({{{5, 1.0}}, ConstraintType::LessEqual, 1.0}),
      std::invalid_argument);
}

TEST(Simplex, NoConstraintsUsesBoundsOnly) {
  // With no rows the optimum is read straight off the bounds.
  LpProblem lp;
  const int x = lp.add_variable(2.0, 3.0);
  const int y = lp.add_variable(-1.0, 5.0);
  const auto sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::Optimal);
  EXPECT_NEAR(sol.x[static_cast<std::size_t>(x)], 3.0, 1e-7);
  EXPECT_NEAR(sol.x[static_cast<std::size_t>(y)], 0.0, 1e-7);
  EXPECT_NEAR(sol.objective, 6.0, 1e-7);
}

TEST(Simplex, NoConstraintsUnboundedVariable) {
  LpProblem lp;
  lp.add_variable(1.0);  // no upper bound, no rows
  EXPECT_EQ(solve_lp(lp).status, LpStatus::Unbounded);
}

TEST(Simplex, FixedVariablesStayFixed) {
  // ub = 0 pins a variable at zero even with a positive objective.
  LpProblem lp;
  const int x = lp.add_variable(5.0, 0.0);
  const int y = lp.add_variable(1.0, 2.0);
  lp.begin_constraint(ConstraintType::LessEqual, 10.0);
  lp.add_term(x, 1.0);
  lp.add_term(y, 1.0);
  const auto sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::Optimal);
  EXPECT_NEAR(sol.x[static_cast<std::size_t>(x)], 0.0, 1e-9);
  EXPECT_NEAR(sol.x[static_cast<std::size_t>(y)], 2.0, 1e-7);
}

TEST(Simplex, NegativeUpperBoundIsInfeasible) {
  LpProblem lp;
  lp.add_variable(1.0, -1.0);
  EXPECT_EQ(solve_lp(lp).status, LpStatus::Infeasible);
}

TEST(Simplex, BealeCyclingExampleTerminates) {
  // Beale's classic cycling LP: Dantzig pricing with a naive ratio test
  // cycles forever on this problem; the Bland fallback must engage and
  // terminate at the optimum (0.05).
  LpProblem lp;
  const int x1 = lp.add_variable(0.75);
  const int x2 = lp.add_variable(-150.0);
  const int x3 = lp.add_variable(0.02);
  const int x4 = lp.add_variable(-6.0);
  lp.begin_constraint(ConstraintType::LessEqual, 0.0);
  lp.add_term(x1, 0.25);
  lp.add_term(x2, -60.0);
  lp.add_term(x3, -0.04);
  lp.add_term(x4, 9.0);
  lp.begin_constraint(ConstraintType::LessEqual, 0.0);
  lp.add_term(x1, 0.5);
  lp.add_term(x2, -90.0);
  lp.add_term(x3, -0.02);
  lp.add_term(x4, 3.0);
  lp.begin_constraint(ConstraintType::LessEqual, 1.0);
  lp.add_term(x3, 1.0);
  const auto sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::Optimal);
  EXPECT_NEAR(sol.objective, 0.05, 1e-6);
}

TEST(Simplex, DuplicateTermsAccumulate) {
  // The same variable twice in one row must behave as the summed coeff.
  LpProblem lp;
  const int x = lp.add_variable(1.0);
  lp.begin_constraint(ConstraintType::LessEqual, 6.0);
  lp.add_term(x, 1.0);
  lp.add_term(x, 2.0);
  const auto sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::Optimal);
  EXPECT_NEAR(sol.x[static_cast<std::size_t>(x)], 2.0, 1e-7);
}

TEST(Simplex, WarmRestartUsesFewerIterations) {
  // Re-solving after a small RHS change from the saved basis must cost
  // fewer iterations than the cold solve of the same problem.
  util::Rng rng(1234);
  LpProblem lp;
  const int nv = 12;
  for (int v = 0; v < nv; ++v)
    lp.add_variable(rng.uniform(0.5, 2.0), rng.uniform(2.0, 6.0));
  for (int r = 0; r < 10; ++r) {
    lp.begin_constraint(ConstraintType::LessEqual, rng.uniform(3.0, 9.0));
    for (int v = 0; v < nv; ++v)
      if (rng.bernoulli(0.5)) lp.add_term(v, rng.uniform(0.1, 1.5));
  }

  SimplexState state;
  const auto cold = solve_lp(lp, state);
  ASSERT_EQ(cold.status, LpStatus::Optimal);
  EXPECT_FALSE(cold.warm_started);
  ASSERT_TRUE(state.valid());

  for (int r = 0; r < lp.num_rows(); ++r)
    lp.set_rhs(r, lp.rhs(r) * 0.9);  // shrink every capacity by 10%
  const auto warm = solve_lp(lp, state);
  ASSERT_EQ(warm.status, LpStatus::Optimal);
  EXPECT_TRUE(warm.warm_started);
  EXPECT_LT(warm.iterations, cold.iterations);

  // The warm solution must match a cold re-solve of the modified problem.
  const auto cold2 = solve_lp(lp);
  ASSERT_EQ(cold2.status, LpStatus::Optimal);
  EXPECT_NEAR(warm.objective, cold2.objective, 1e-6);
}

TEST(Simplex, UnchangedProblemResolvesInstantly) {
  LpProblem lp;
  const int x = lp.add_variable(3.0);
  const int y = lp.add_variable(2.0);
  lp.add_constraint({{{x, 1.0}, {y, 1.0}}, ConstraintType::LessEqual, 4.0});
  lp.add_constraint({{{x, 1.0}, {y, 3.0}}, ConstraintType::LessEqual, 6.0});
  SimplexState state;
  const auto cold = solve_lp(lp, state);
  ASSERT_EQ(cold.status, LpStatus::Optimal);
  const auto warm = solve_lp(lp, state);
  ASSERT_EQ(warm.status, LpStatus::Optimal);
  EXPECT_TRUE(warm.warm_started);
  EXPECT_EQ(warm.iterations, 0);
  EXPECT_NEAR(warm.objective, cold.objective, 1e-9);
}

TEST(Simplex, MismatchedStateFallsBackToColdStart) {
  LpProblem small;
  const int x = small.add_variable(1.0, 1.0);
  (void)x;
  SimplexState state;
  ASSERT_EQ(solve_lp(small, state).status, LpStatus::Optimal);

  // Same state against a differently-shaped problem: must not warm-start,
  // must still solve correctly, and must overwrite the stale state.
  LpProblem big;
  const int a = big.add_variable(3.0);
  const int b = big.add_variable(2.0);
  big.add_constraint({{{a, 1.0}, {b, 1.0}}, ConstraintType::LessEqual, 4.0});
  const auto sol = solve_lp(big, state);
  ASSERT_EQ(sol.status, LpStatus::Optimal);
  EXPECT_FALSE(sol.warm_started);
  EXPECT_NEAR(sol.objective, 12.0, 1e-6);
  EXPECT_EQ(state.num_rows, big.num_rows());
}

}  // namespace
}  // namespace surfnet::routing
