#pragma once

// Minimal property-based testing harness on top of googletest.
//
// A property is a callable taking a seeded util::Rng and making gtest
// assertions about randomly generated inputs. surfnet_check_property runs
// it for a configurable number of iterations, deriving one independent
// case seed per iteration, and reports the *counterexample seed* of the
// first failing case so it can be replayed in isolation:
//
//   proptest::check("pool_never_negative", {}, [](util::Rng& rng) {
//     const int n = proptest::int_in(rng, 1, 50);
//     ...
//     EXPECT_GE(level, 0);
//   });
//
// Replay and scaling via environment variables:
//   SURFNET_PROP_SEED=<decimal seed>  run only that case seed, once;
//   SURFNET_PROP_ITERS=<n>            override the iteration count.
//
// The generator helpers below are thin combinators over util::Rng so every
// generated value is a pure function of the case seed.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "util/rng.h"

namespace surfnet::proptest {

struct Config {
  int iterations = 200;
  std::uint64_t seed = 0x5EEDF00DCAFEBABEULL;  ///< base seed of the run
};

/// Derive the case seed of one iteration from the base seed.
inline std::uint64_t case_seed(std::uint64_t base, int iteration) {
  std::uint64_t state = base ^ (0x9E3779B97F4A7C15ULL *
                                static_cast<std::uint64_t>(iteration + 1));
  return util::splitmix64(state);
}

/// Run `property(rng)` over `config.iterations` independently seeded cases.
/// Stops at the first failing case; the failure output names the case seed
/// to replay with SURFNET_PROP_SEED.
template <typename Property>
void check(const char* name, const Config& config, Property&& property) {
  if (const char* replay = std::getenv("SURFNET_PROP_SEED")) {
    const std::uint64_t seed = std::strtoull(replay, nullptr, 0);
    SCOPED_TRACE(std::string("property '") + name + "' replaying seed " +
                 std::to_string(seed));
    util::Rng rng(seed);
    property(rng);
    return;
  }
  int iterations = config.iterations;
  if (const char* env = std::getenv("SURFNET_PROP_ITERS"))
    iterations = std::atoi(env);
  for (int i = 0; i < iterations; ++i) {
    const std::uint64_t seed = case_seed(config.seed, i);
    SCOPED_TRACE(std::string("property '") + name + "' case " +
                 std::to_string(i) + ": replay with SURFNET_PROP_SEED=" +
                 std::to_string(seed));
    util::Rng rng(seed);
    property(rng);
    if (::testing::Test::HasFailure()) return;  // first counterexample only
  }
}

// ---------------------------------------------------------------------------
// Generator combinators. All draw only from the passed Rng.

/// Uniform integer in [lo, hi] (inclusive).
inline int int_in(util::Rng& rng, int lo, int hi) {
  return lo + static_cast<int>(
                  rng.below(static_cast<std::uint64_t>(hi - lo + 1)));
}

/// Uniform double in [lo, hi).
inline double real_in(util::Rng& rng, double lo, double hi) {
  return rng.uniform(lo, hi);
}

/// Biased coin.
inline bool chance(util::Rng& rng, double p) { return rng.bernoulli(p); }

/// Uniformly chosen element of a nonempty container.
template <typename Container>
const typename Container::value_type& pick(util::Rng& rng,
                                           const Container& values) {
  return values[static_cast<std::size_t>(rng.below(values.size()))];
}

/// Vector of `n` values drawn from `gen(rng)`.
template <typename Gen>
auto vector_of(util::Rng& rng, int n, Gen&& gen)
    -> std::vector<decltype(gen(rng))> {
  std::vector<decltype(gen(rng))> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) out.push_back(gen(rng));
  return out;
}

/// Independent subset of [0, n): each element kept with probability p.
inline std::vector<int> subset_of(util::Rng& rng, int n, double p) {
  std::vector<int> out;
  for (int i = 0; i < n; ++i)
    if (rng.bernoulli(p)) out.push_back(i);
  return out;
}

/// Fisher-Yates shuffle (in place), matching the simulator's idiom.
template <typename T>
void shuffle(util::Rng& rng, std::vector<T>& values) {
  for (std::size_t i = values.size(); i > 1; --i)
    std::swap(values[i - 1], values[rng.below(i)]);
}

}  // namespace surfnet::proptest
