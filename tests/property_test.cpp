// Property-based invariants over randomly generated inputs, built on
// tests/proptest.h. Every failing case prints a SURFNET_PROP_SEED that
// replays it in isolation. The campaigns are labeled `extended` in CTest.

#include "proptest.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "decoder/code_trial.h"
#include "decoder/mwpm.h"
#include "decoder/surfnet_decoder.h"
#include "decoder/union_find.h"
#include "netsim/faults.h"
#include "netsim/io.h"
#include "netsim/recovery.h"
#include "netsim/simulator.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "qec/error_model.h"
#include "routing/greedy.h"
#include "routing/lp_router.h"
#include "routing/validate.h"
#include "util/contracts.h"
#include "util/rng.h"

namespace surfnet {
namespace {

using netsim::FaultEvent;
using netsim::FaultInjector;
using netsim::FaultKind;
using netsim::FaultPlan;
using netsim::Topology;

/// Ring fixture shared with the netsim tests: user(0) - sw(1) - server(2)
/// - sw(3) - user(4), bypass sw(5) between 1 and 3.
Topology ring_topology() {
  std::vector<netsim::Node> nodes(6);
  nodes[1] = {netsim::NodeRole::Switch, 1000};
  nodes[2] = {netsim::NodeRole::Server, 1000};
  nodes[3] = {netsim::NodeRole::Switch, 1000};
  nodes[5] = {netsim::NodeRole::Switch, 1000};
  std::vector<netsim::Fiber> fibers{{0, 1, 0.95, 50}, {1, 2, 0.95, 50},
                                    {2, 3, 0.95, 50}, {3, 4, 0.95, 50},
                                    {1, 5, 0.95, 50}, {5, 3, 0.95, 50}};
  return Topology(std::move(nodes), std::move(fibers));
}

netsim::Schedule ring_request(util::Rng& rng) {
  netsim::Schedule schedule;
  netsim::ScheduledRequest s;
  s.request_index = 0;
  s.codes = proptest::int_in(rng, 1, 6);
  s.support_path = {0, 1, 2, 3, 4};
  if (proptest::chance(rng, 0.7)) s.core_path = {0, 1, 2, 3, 4};
  if (proptest::chance(rng, 0.5)) s.ec_servers = {2};
  schedule.requested_codes = s.codes;
  schedule.scheduled.push_back(s);
  return schedule;
}

/// Random fault plan over the ring: a handful of scripted events plus
/// moderate stochastic processes, all drawn from the case seed.
FaultPlan random_fault_plan(util::Rng& rng, const Topology& topo) {
  FaultPlan plan;
  const int scripted = proptest::int_in(rng, 0, 5);
  for (int i = 0; i < scripted; ++i) {
    FaultEvent event;
    event.kind = static_cast<FaultKind>(proptest::int_in(rng, 0, 3));
    event.slot = proptest::int_in(rng, 0, 120);
    event.duration = proptest::int_in(rng, 1, 40);
    switch (event.kind) {
      case FaultKind::FiberCut:
      case FaultKind::EntanglementDegradation:
        event.target = proptest::int_in(rng, 0, topo.num_fibers() - 1);
        break;
      case FaultKind::NodeOutage:
        event.target = proptest::int_in(rng, 1, topo.num_nodes() - 1);
        break;
      case FaultKind::DecodeStall:
        event.target = -1;
        break;
    }
    event.magnitude = event.kind == FaultKind::EntanglementDegradation
                          ? proptest::real_in(rng, 0.0, 1.0)
                          : 1.0;
    plan.scripted.push_back(event);
  }
  if (proptest::chance(rng, 0.6))
    plan.stochastic.fiber_cut_rate = proptest::real_in(rng, 0.0, 0.05);
  if (proptest::chance(rng, 0.3)) {
    plan.stochastic.correlated_cut_rate = proptest::real_in(rng, 0.0, 0.02);
    plan.stochastic.correlated_group_size = proptest::int_in(rng, 1, 4);
  }
  if (proptest::chance(rng, 0.3))
    plan.stochastic.node_outage_rate = proptest::real_in(rng, 0.0, 0.01);
  if (proptest::chance(rng, 0.3)) {
    plan.stochastic.degradation_rate = proptest::real_in(rng, 0.0, 0.05);
    plan.stochastic.degradation_factor = proptest::real_in(rng, 0.0, 1.0);
  }
  if (proptest::chance(rng, 0.3))
    plan.stochastic.decode_stall_rate = proptest::real_in(rng, 0.0, 0.02);
  return plan;
}

netsim::SimulationParams random_sim_params(util::Rng& rng,
                                           const Topology& topo) {
  netsim::SimulationParams params;
  params.max_slots = 2500;
  params.faults = random_fault_plan(rng, topo);
  if (proptest::chance(rng, 0.5)) {
    params.recovery.max_swap_retries = proptest::int_in(rng, 0, 4);
    params.recovery.escalate_after_reroutes = proptest::int_in(rng, 0, 3);
    params.recovery.code_timeout_slots =
        proptest::chance(rng, 0.3) ? proptest::int_in(rng, 100, 600) : 0;
  }
  if (proptest::chance(rng, 0.3))
    params.swap_success = proptest::real_in(rng, 0.5, 1.0);
  return params;
}

// P1: every decoder always emits a syndrome-reproducing correction, for
// random distances, noise mixes, and decoders.
TEST(Property, DecoderCorrectionsReproduceTheSyndrome) {
  const decoder::SurfNetDecoder surfnet;
  const decoder::UnionFindDecoder union_find;
  const decoder::MwpmDecoder mwpm;
  const std::vector<const decoder::Decoder*> decoders{&surfnet, &union_find,
                                                      &mwpm};
  proptest::Config config;
  config.iterations = 150;
  proptest::check("decoder_validity", config, [&](util::Rng& rng) {
    const int d = proptest::pick(rng, std::vector<int>{2, 3, 5});
    const qec::SurfaceCodeLattice lattice(d);
    const auto profile = qec::NoiseProfile::uniform(
        lattice.num_data_qubits(), proptest::real_in(rng, 0.0, 0.15),
        proptest::real_in(rng, 0.0, 0.30));
    const auto* dec = proptest::pick(rng, decoders);
    const auto result = decoder::run_code_trial(
        lattice, profile, qec::PauliChannel::IndependentXZ, *dec, rng);
    EXPECT_TRUE(result.z_graph.valid) << dec->name() << " d=" << d;
    EXPECT_TRUE(result.x_graph.valid) << dec->name() << " d=" << d;
  });
}

// P2: both routers only emit schedules satisfying the integer program's
// invariants (Eqs. (1)-(6)) on random topologies and request mixes.
TEST(Property, RoutedSchedulesSatisfyTheProgramInvariants) {
#if !SURFNET_CHECKS
  GTEST_SKIP() << "contracts compiled out";
#endif
  util::ScopedContractHandler scoped(util::throw_contract_violation);
  proptest::Config config;
  config.iterations = 60;
  proptest::check("schedule_invariants", config, [&](util::Rng& rng) {
    netsim::TopologySpec spec;
    spec.num_nodes = proptest::int_in(rng, 16, 28);
    spec.num_servers = proptest::int_in(rng, 2, 4);
    spec.num_switches = proptest::int_in(rng, 5, 9);
    const auto topo = netsim::make_random_topology(spec, rng);
    const auto requests = netsim::random_requests(
        topo, proptest::int_in(rng, 1, 6), proptest::int_in(rng, 1, 4), rng);
    routing::RoutingParams params;
    params.core_noise_threshold = proptest::real_in(rng, 0.3, 0.7);
    params.total_noise_threshold =
        params.core_noise_threshold + proptest::real_in(rng, 0.0, 0.3);

    const auto greedy = routing::route_greedy(topo, requests, params, rng);
    EXPECT_NO_THROW(routing::check_schedule_invariants(topo, requests,
                                                       params, greedy));
    const auto lp = routing::route_lp(topo, requests, params, rng);
    if (lp.status == routing::LpStatus::Optimal) {
      EXPECT_NO_THROW(routing::check_schedule_invariants(
          topo, requests, params, lp.schedule));
    }
  });
}

// P3: a (seed, FaultPlan) pair replays bitwise: identical results,
// identical traces, identical counters.
TEST(Property, FaultedSimulationsReplayBitwise) {
  const auto topo = ring_topology();
  const decoder::SurfNetDecoder dec;
  proptest::Config config;
  config.iterations = 40;
  proptest::check("sim_replay", config, [&](util::Rng& rng) {
    const auto schedule = ring_request(rng);
    const auto params_proto = random_sim_params(rng, topo);
    const std::uint64_t sim_seed = rng();

    auto run = [&](std::string& trace_out, obs::MetricsRegistry& metrics) {
      obs::TraceBuffer trace;
      auto params = params_proto;
      params.sink = obs::Sink{&metrics, &trace};
      util::Rng sim_rng(sim_seed);
      const auto result =
          simulate_surfnet(topo, schedule, params, dec, sim_rng);
      for (const auto& event : trace.events())
        trace_out += obs::to_jsonl(event) + "\n";
      return result;
    };
    std::string trace_a, trace_b;
    obs::MetricsRegistry metrics_a, metrics_b;
    const auto a = run(trace_a, metrics_a);
    const auto b = run(trace_b, metrics_b);
    EXPECT_EQ(a.codes_delivered, b.codes_delivered);
    EXPECT_EQ(a.codes_succeeded, b.codes_succeeded);
    EXPECT_DOUBLE_EQ(a.total_latency, b.total_latency);
    EXPECT_EQ(trace_a, trace_b);
    EXPECT_EQ(metrics_a.counter("sim.fiber_failures"),
              metrics_b.counter("sim.fiber_failures"));
  });
}

// P4: the simulation result is self-consistent and reconciles with the
// sim.* counters: per-code records tally exactly to the headline totals.
TEST(Property, SimulationTotalsReconcileWithRecords) {
  const auto topo = ring_topology();
  const decoder::SurfNetDecoder dec;
  proptest::Config config;
  config.iterations = 40;
  proptest::check("sim_reconciliation", config, [&](util::Rng& rng) {
    const auto schedule = ring_request(rng);
    auto params = random_sim_params(rng, topo);
    obs::MetricsRegistry metrics;
    params.sink.metrics = &metrics;
    util::Rng sim_rng(rng());
    const auto result = simulate_surfnet(topo, schedule, params, dec,
                                         sim_rng);

    EXPECT_EQ(result.codes_scheduled, schedule.scheduled_codes());
    int delivered = 0, succeeded = 0, timed_out = 0;
    double latency = 0.0;
    for (const auto& record : result.codes) {
      EXPECT_EQ(record.request, 0);
      EXPECT_GE(record.slots, 0);
      EXPECT_GE(record.corrections, 0);
      switch (record.outcome) {
        case netsim::CodeOutcome::Succeeded:
          ++delivered;
          ++succeeded;
          latency += record.slots;
          break;
        case netsim::CodeOutcome::LogicalError:
          ++delivered;
          latency += record.slots;
          break;
        case netsim::CodeOutcome::TimedOut:
          ++timed_out;
          break;
      }
    }
    EXPECT_EQ(delivered, result.codes_delivered);
    EXPECT_EQ(succeeded, result.codes_succeeded);
    EXPECT_DOUBLE_EQ(latency, result.total_latency);
    EXPECT_LE(delivered + timed_out, result.codes_scheduled);
    EXPECT_EQ(metrics.counter("sim.delivered"), result.codes_delivered);
    EXPECT_EQ(metrics.counter("sim.succeeded"), result.codes_succeeded);
    EXPECT_EQ(metrics.counter("sim.timeouts"), timed_out);
  });
}

// P5: the injector's scripted windows are exactly the half-open union of
// the event windows, for arbitrary overlapping scripted plans.
TEST(Property, ScriptedFaultWindowsAreExact) {
  const auto topo = ring_topology();
  proptest::Config config;
  config.iterations = 120;
  proptest::check("fault_windows", config, [&](util::Rng& rng) {
    FaultPlan plan;
    plan.scripted = random_fault_plan(rng, topo).scripted;
    const int horizon = 180;

    auto covered = [&](FaultKind kind, int target, int slot) {
      for (const auto& event : plan.scripted)
        if (event.kind == kind && event.target == target &&
            event.slot <= slot && slot < event.slot + event.duration)
          return true;
      return false;
    };

    FaultInjector injector(topo, plan);
    util::Rng sim_rng(1);
    for (int slot = 0; slot < horizon; ++slot) {
      injector.begin_slot(slot, sim_rng, obs::Sink{});
      for (int e = 0; e < topo.num_fibers(); ++e) {
        EXPECT_EQ(injector.fiber_down(e, slot),
                  covered(FaultKind::FiberCut, e, slot))
            << "fiber " << e << " slot " << slot;
        const bool degraded =
            covered(FaultKind::EntanglementDegradation, e, slot);
        EXPECT_EQ(injector.entanglement_factor(e, slot) < 1.0 || degraded,
                  degraded)
            << "fiber " << e << " slot " << slot;
      }
      for (int v = 0; v < topo.num_nodes(); ++v)
        EXPECT_EQ(injector.node_down(v, slot),
                  covered(FaultKind::NodeOutage, v, slot))
            << "node " << v << " slot " << slot;
      bool stall = false;
      for (const auto& event : plan.scripted)
        if (event.kind == FaultKind::DecodeStall && event.slot <= slot &&
            slot < event.slot + event.duration)
          stall = true;
      EXPECT_EQ(injector.decode_stalled(slot), stall) << "slot " << slot;
    }
  });
}

// P6: successful local reroutes and full re-plans always hand back a path
// satisfying the structural routing invariants (Eqs. (3)-(4)).
TEST(Property, ReroutesSatisfyTheStructuralInvariants) {
#if !SURFNET_CHECKS
  GTEST_SKIP() << "contracts compiled out";
#endif
  util::ScopedContractHandler scoped(util::throw_contract_violation);
  const auto topo = ring_topology();
  proptest::Config config;
  config.iterations = 200;
  proptest::check("reroute_invariants", config, [&](util::Rng& rng) {
    FaultPlan plan;
    for (const int e : proptest::subset_of(rng, topo.num_fibers(), 0.35))
      plan.scripted.push_back({FaultKind::FiberCut, 0, e, 100, 1.0});
    FaultInjector injector(topo, plan);
    util::Rng sim_rng(1);
    injector.begin_slot(0, sim_rng, obs::Sink{});

    const std::vector<int> barriers{2, 4};
    std::vector<int> path{0, 1, 2, 3, 4};
    const int pos = proptest::int_in(rng, 0, 2);
    if (proptest::chance(rng, 0.5)) {
      if (local_reroute(topo, injector, 0, path, pos, 2)) {
        EXPECT_NO_THROW(routing::check_reroute_invariants(topo, path, pos,
                                                          barriers));
      }
    } else {
      if (replan_route(topo, injector, 0, path, pos, barriers)) {
        EXPECT_NO_THROW(routing::check_reroute_invariants(topo, path, pos,
                                                          barriers));
      }
    }
  });
}

// P7: topology serialization round-trips exactly for arbitrary generated
// networks (writer -> reader -> writer is a fixed point).
TEST(Property, TopologyIoRoundTripsExactly) {
  proptest::Config config;
  config.iterations = 80;
  proptest::check("topology_io_roundtrip", config, [&](util::Rng& rng) {
    netsim::TopologySpec spec;
    spec.num_servers = proptest::int_in(rng, 1, 4);
    spec.num_switches = proptest::int_in(rng, 2, 8);
    // Leave room for at least a handful of user endpoints.
    spec.num_nodes = spec.num_servers + spec.num_switches +
                     proptest::int_in(rng, 4, 16);
    spec.storage_capacity = proptest::int_in(rng, 1, 100);
    spec.entanglement_capacity = proptest::int_in(rng, 1, 30);
    const auto topo = netsim::make_random_topology(spec, rng);
    const auto text = netsim::topology_to_string(topo);
    const auto restored = netsim::topology_from_string(text);
    EXPECT_EQ(netsim::topology_to_string(restored), text);
  });
}

}  // namespace
}  // namespace surfnet
