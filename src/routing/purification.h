#pragma once

// Router for the paper's "Purification N = 1, 2, 9" benchmark networks
// (Sec. VI-B): mainstream entanglement-based networks that teleport each
// message qubit hop by hop and spend N extra entangled pairs per fiber on
// recurrence purification. Scheduling greedily routes each message along
// the maximum-fidelity (minimum-noise) path while per-fiber pair budgets
// last; each message consumes (1 + N) pairs on every fiber it crosses.

#include "netsim/schedule.h"
#include "netsim/topology.h"
#include "util/rng.h"

namespace surfnet::routing {

struct PurificationParams {
  int extra_pairs = 1;  ///< the paper's N
  /// Multiplier on every fiber's pair budget. Fig. 7 configures all
  /// designs to similar throughput; scaling the budget by (1 + N)
  /// compensates purification's higher pair consumption.
  double budget_scale = 1.0;
};

netsim::Schedule route_purification(
    const netsim::Topology& topology,
    const std::vector<netsim::Request>& requests,
    const PurificationParams& params, util::Rng& rng);

}  // namespace surfnet::routing
