#include "routing/simplex.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "routing/validate.h"
#include "util/contracts.h"

namespace surfnet::routing {

void LpProblem::add_term(int var, double coeff) {
  if (var < 0 || var >= num_vars())
    throw std::invalid_argument("simplex: variable index out of range");
  if (row_start_.empty())
    throw std::logic_error("simplex: add_term before begin_constraint");
  cols_.push_back(var);
  coeffs_.push_back(coeff);
}

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kFeasTol = 1e-7;   ///< primal feasibility tolerance
constexpr double kOptTol = 1e-7;    ///< dual (reduced-cost) tolerance
constexpr double kPivotTol = 1e-8;  ///< smallest acceptable pivot element
constexpr double kDropTol = 1e-11;  ///< entries below this leave the eta file
constexpr double kRatioTol = 1e-9;  ///< column entries ignored by the ratio test
constexpr int kRefactorInterval = 64;  ///< pivots between refactorizations
constexpr int kBlandStreak = 256;   ///< degenerate pivots before Bland's rule

enum VarStatus : signed char { kAtLower = 0, kAtUpper = 1, kBasic = 2 };

/// Bounded-variable revised simplex over the equality form
///   maximize c^T x   s.t.   A x (+ slacks) = b,   0 <= x_j <= u_j.
/// Inequality rows fold into slack columns (so box constraints never become
/// rows); equality rows get an artificial column fixed at [0, 0]. The basis
/// inverse is kept as a product-form eta file, rebuilt from scratch every
/// kRefactorInterval pivots (Gauss-Jordan with partial pivoting over the
/// current basis columns). Infeasible starting bases — the cold slack basis
/// with negative right-hand sides as well as warm-started bases whose
/// bounds shifted — are repaired by a composite phase 1 that minimizes the
/// total bound violation of the basic variables, so cold and warm solves
/// share one iteration loop.
class RevisedSimplex {
 public:
  explicit RevisedSimplex(const LpProblem& problem);
  LpSolution solve(SimplexState& state);

 private:
  void load_column(int j, std::vector<double>& v) const {
    std::fill(v.begin(), v.end(), 0.0);
    for (int k = col_start_[static_cast<std::size_t>(j)];
         k < col_start_[static_cast<std::size_t>(j) + 1]; ++k)
      v[static_cast<std::size_t>(col_row_[static_cast<std::size_t>(k)])] +=
          col_val_[static_cast<std::size_t>(k)];
  }

  /// v <- B^{-1} v via the eta file, in application order.
  void ftran(std::vector<double>& v) const {
    const std::size_t etas = eta_pivot_row_.size();
    for (std::size_t e = 0; e < etas; ++e) {
      const auto r = static_cast<std::size_t>(eta_pivot_row_[e]);
      const double zr = v[r] / eta_pivot_val_[e];
      v[r] = zr;
      if (zr == 0.0) continue;
      for (int k = eta_start_[e]; k < eta_start_[e + 1]; ++k)
        v[static_cast<std::size_t>(eta_row_[static_cast<std::size_t>(k)])] -=
            eta_val_[static_cast<std::size_t>(k)] * zr;
    }
  }

  /// v <- B^{-T} v via the transposed eta file, in reverse order.
  void btran(std::vector<double>& v) const {
    for (std::size_t e = eta_pivot_row_.size(); e-- > 0;) {
      const auto r = static_cast<std::size_t>(eta_pivot_row_[e]);
      double s = v[r];
      for (int k = eta_start_[e]; k < eta_start_[e + 1]; ++k)
        s -= eta_val_[static_cast<std::size_t>(k)] *
             v[static_cast<std::size_t>(eta_row_[static_cast<std::size_t>(k)])];
      v[r] = s / eta_pivot_val_[e];
    }
  }

  void append_eta(const std::vector<double>& w, int pivot_row) {
    eta_pivot_row_.push_back(pivot_row);
    eta_pivot_val_.push_back(w[static_cast<std::size_t>(pivot_row)]);
    for (int i = 0; i < m_; ++i) {
      if (i == pivot_row) continue;
      const double wv = w[static_cast<std::size_t>(i)];
      if (std::abs(wv) > kDropTol) {
        eta_row_.push_back(i);
        eta_val_.push_back(wv);
      }
    }
    eta_start_.push_back(static_cast<int>(eta_row_.size()));
  }

  /// Rebuild the eta file for the current basis from scratch. A triangular
  /// ordering phase goes first: repeatedly take a row touched by exactly
  /// one remaining basis column and pivot that column there. Such a column
  /// provably has no entries in earlier pivot rows, so its eta is the raw
  /// column — zero fill, no FTRAN. Simplex bases of network-flow LPs are
  /// near-triangular (slacks and conservation structure), so this phase
  /// usually swallows almost everything; the small remaining "bump" falls
  /// back to Gauss-Jordan product form with partial pivoting. Basis columns
  /// may get reassigned to different rows; false = numerically singular.
  bool refactorize() {
    ++refactor_count_;
    eta_pivot_row_.clear();
    eta_pivot_val_.clear();
    eta_row_.clear();
    eta_val_.clear();
    eta_start_.assign(1, 0);

    // Aggregate each basis column's entries by row (duplicates summed).
    const auto sm = static_cast<std::size_t>(m_);
    fac_col_start_.assign(sm + 1, 0);
    fac_row_.clear();
    fac_val_.clear();
    fac_stamp_.assign(sm, -1);
    fac_slot_.resize(sm);
    for (int k = 0; k < m_; ++k) {
      const int j = basis_[static_cast<std::size_t>(k)];
      const auto base = fac_row_.size();
      for (int t = col_start_[static_cast<std::size_t>(j)];
           t < col_start_[static_cast<std::size_t>(j) + 1]; ++t) {
        const int r = col_row_[static_cast<std::size_t>(t)];
        const double v = col_val_[static_cast<std::size_t>(t)];
        if (fac_stamp_[static_cast<std::size_t>(r)] == k) {
          fac_val_[fac_slot_[static_cast<std::size_t>(r)]] += v;
        } else {
          fac_stamp_[static_cast<std::size_t>(r)] = k;
          fac_slot_[static_cast<std::size_t>(r)] = fac_row_.size();
          fac_row_.push_back(r);
          fac_val_.push_back(v);
        }
      }
      // Drop cancelled entries in place.
      std::size_t w = base;
      for (std::size_t t = base; t < fac_row_.size(); ++t)
        if (std::abs(fac_val_[t]) > kDropTol) {
          fac_row_[w] = fac_row_[t];
          fac_val_[w] = fac_val_[t];
          ++w;
        }
      fac_row_.resize(w);
      fac_val_.resize(w);
      fac_col_start_[static_cast<std::size_t>(k) + 1] =
          static_cast<int>(w);
    }

    // Row -> basis-position index for singleton detection.
    fac_rowpos_start_.assign(sm + 1, 0);
    for (const int r : fac_row_)
      ++fac_rowpos_start_[static_cast<std::size_t>(r) + 1];
    for (int r = 0; r < m_; ++r)
      fac_rowpos_start_[static_cast<std::size_t>(r) + 1] +=
          fac_rowpos_start_[static_cast<std::size_t>(r)];
    fac_rowpos_col_.resize(fac_row_.size());
    {
      fac_fill_.assign(fac_rowpos_start_.begin(), fac_rowpos_start_.end() - 1);
      for (int k = 0; k < m_; ++k)
        for (int t = fac_col_start_[static_cast<std::size_t>(k)];
             t < fac_col_start_[static_cast<std::size_t>(k) + 1]; ++t)
          fac_rowpos_col_[static_cast<std::size_t>(
              fac_fill_[static_cast<std::size_t>(
                  fac_row_[static_cast<std::size_t>(t)])]++)] = k;
    }

    fac_row_live_.assign(sm, 0);
    for (int r = 0; r < m_; ++r)
      fac_row_live_[static_cast<std::size_t>(r)] =
          fac_rowpos_start_[static_cast<std::size_t>(r) + 1] -
          fac_rowpos_start_[static_cast<std::size_t>(r)];
    fac_col_alive_.assign(sm, 1);
    std::vector<char> taken(sm, 0);
    std::vector<int> new_basis(sm, -1);

    // --- Triangular phase. ---
    fac_queue_.clear();
    for (int r = 0; r < m_; ++r)
      if (fac_row_live_[static_cast<std::size_t>(r)] == 1)
        fac_queue_.push_back(r);
    while (!fac_queue_.empty()) {
      const int r = fac_queue_.back();
      fac_queue_.pop_back();
      if (taken[static_cast<std::size_t>(r)] ||
          fac_row_live_[static_cast<std::size_t>(r)] != 1)
        continue;
      int k = -1;
      for (int t = fac_rowpos_start_[static_cast<std::size_t>(r)];
           t < fac_rowpos_start_[static_cast<std::size_t>(r) + 1]; ++t)
        if (fac_col_alive_[static_cast<std::size_t>(
                fac_rowpos_col_[static_cast<std::size_t>(t)])]) {
          k = fac_rowpos_col_[static_cast<std::size_t>(t)];
          break;
        }
      if (k < 0) continue;
      double pivot = 0.0;
      for (int t = fac_col_start_[static_cast<std::size_t>(k)];
           t < fac_col_start_[static_cast<std::size_t>(k) + 1]; ++t)
        if (fac_row_[static_cast<std::size_t>(t)] == r)
          pivot = fac_val_[static_cast<std::size_t>(t)];
      if (std::abs(pivot) <= 1e-10) continue;  // leave it for the bump

      eta_pivot_row_.push_back(r);
      eta_pivot_val_.push_back(pivot);
      for (int t = fac_col_start_[static_cast<std::size_t>(k)];
           t < fac_col_start_[static_cast<std::size_t>(k) + 1]; ++t) {
        const int r2 = fac_row_[static_cast<std::size_t>(t)];
        if (r2 == r) continue;
        eta_row_.push_back(r2);
        eta_val_.push_back(fac_val_[static_cast<std::size_t>(t)]);
        if (!taken[static_cast<std::size_t>(r2)] &&
            --fac_row_live_[static_cast<std::size_t>(r2)] == 1)
          fac_queue_.push_back(r2);
      }
      eta_start_.push_back(static_cast<int>(eta_row_.size()));
      fac_col_alive_[static_cast<std::size_t>(k)] = 0;
      taken[static_cast<std::size_t>(r)] = 1;
      new_basis[static_cast<std::size_t>(r)] = basis_[static_cast<std::size_t>(k)];
    }

    // --- Bump phase: Gauss-Jordan over whatever the ordering left. ---
    for (int k = 0; k < m_; ++k) {
      if (!fac_col_alive_[static_cast<std::size_t>(k)]) continue;
      const int j = basis_[static_cast<std::size_t>(k)];
      load_column(j, work_);
      ftran(work_);
      int pr = -1;
      double best = 1e-10;
      for (int i = 0; i < m_; ++i)
        if (!taken[static_cast<std::size_t>(i)] &&
            std::abs(work_[static_cast<std::size_t>(i)]) > best) {
          best = std::abs(work_[static_cast<std::size_t>(i)]);
          pr = i;
        }
      if (pr < 0) return false;
      append_eta(work_, pr);
      taken[static_cast<std::size_t>(pr)] = 1;
      new_basis[static_cast<std::size_t>(pr)] = j;
    }
    basis_.swap(new_basis);
    pivots_since_refactor_ = 0;
    return true;
  }

  /// x_B = B^{-1} (b - sum of nonbasic-at-upper columns at their bound).
  void compute_basic_values() {
    std::copy(b_.begin(), b_.end(), work_.begin());
    for (int j = 0; j < ncols_; ++j) {
      if (vstat_[static_cast<std::size_t>(j)] != kAtUpper) continue;
      const double u = upper_[static_cast<std::size_t>(j)];
      if (u == 0.0) continue;
      for (int k = col_start_[static_cast<std::size_t>(j)];
           k < col_start_[static_cast<std::size_t>(j) + 1]; ++k)
        work_[static_cast<std::size_t>(
            col_row_[static_cast<std::size_t>(k)])] -=
            col_val_[static_cast<std::size_t>(k)] * u;
    }
    ftran(work_);
    std::copy(work_.begin(), work_.end(), x_basic_.begin());
  }

  void cold_basis() {
    vstat_.assign(static_cast<std::size_t>(ncols_), kAtLower);
    basis_.resize(static_cast<std::size_t>(m_));
    for (int r = 0; r < m_; ++r) {
      basis_[static_cast<std::size_t>(r)] =
          row_aux_col_[static_cast<std::size_t>(r)];
      vstat_[static_cast<std::size_t>(
          row_aux_col_[static_cast<std::size_t>(r)])] = kBasic;
    }
  }

  bool install_state(const SimplexState& state) {
    if (!state.valid() || state.num_rows != m_ || state.num_cols != ncols_ ||
        static_cast<int>(state.basis.size()) != m_ ||
        static_cast<int>(state.at_upper.size()) != ncols_)
      return false;
    std::vector<char> seen(static_cast<std::size_t>(ncols_), 0);
    for (const std::int32_t j : state.basis) {
      if (j < 0 || j >= ncols_ || seen[static_cast<std::size_t>(j)])
        return false;
      seen[static_cast<std::size_t>(j)] = 1;
    }
    vstat_.assign(static_cast<std::size_t>(ncols_), kAtLower);
    for (int j = 0; j < ncols_; ++j)
      if (state.at_upper[static_cast<std::size_t>(j)] &&
          std::isfinite(upper_[static_cast<std::size_t>(j)]) &&
          upper_[static_cast<std::size_t>(j)] > 0.0)
        vstat_[static_cast<std::size_t>(j)] = kAtUpper;
    basis_.resize(static_cast<std::size_t>(m_));
    for (int r = 0; r < m_; ++r) {
      basis_[static_cast<std::size_t>(r)] =
          state.basis[static_cast<std::size_t>(r)];
      vstat_[static_cast<std::size_t>(basis_[static_cast<std::size_t>(r)])] =
          kBasic;
    }
    return refactorize();
  }

  /// Debug validator (SURFNET_CHECKS): structural sanity of the basis and
  /// the variable-status flags. Compiled to nothing when checks are off.
  void check_basis_invariants() const {
#if SURFNET_CHECKS
    std::vector<char> seen(static_cast<std::size_t>(ncols_), 0);
    for (int r = 0; r < m_; ++r) {
      const int j = basis_[static_cast<std::size_t>(r)];
      SURFNET_ASSERT(j >= 0 && j < ncols_, "row %d holds column %d of %d", r,
                     j, ncols_);
      SURFNET_ASSERT(!seen[static_cast<std::size_t>(j)],
                     "column %d basic in two rows", j);
      seen[static_cast<std::size_t>(j)] = 1;
      SURFNET_ASSERT(vstat_[static_cast<std::size_t>(j)] == kBasic,
                     "basic column %d has status %d", j,
                     vstat_[static_cast<std::size_t>(j)]);
    }
    int basic_count = 0;
    for (int j = 0; j < ncols_; ++j) {
      const auto status = vstat_[static_cast<std::size_t>(j)];
      if (status == kBasic) ++basic_count;
      if (status == kAtUpper)
        SURFNET_ASSERT(std::isfinite(upper_[static_cast<std::size_t>(j)]),
                       "column %d at-upper with infinite bound", j);
    }
    SURFNET_ASSERT(basic_count == m_, "%d basic flags for %d rows",
                   basic_count, m_);
#endif
  }

  /// Debug validator (SURFNET_CHECKS): eta-file refactorization residual.
  /// With x assembled from the basic values and the nonbasic-at-upper
  /// bounds, A x must reproduce b — a drifting eta file or a corrupt basis
  /// shows up here as a large residual.
  void check_primal_residual() {
#if SURFNET_CHECKS
    check_basis_invariants();
    std::vector<double> residual(b_.begin(), b_.end());
    double scale = 1.0;
    for (const double rhs : b_) scale = std::max(scale, std::abs(rhs));
    const auto apply_column = [&](int j, double x) {
      if (x == 0.0) return;
      for (int k = col_start_[static_cast<std::size_t>(j)];
           k < col_start_[static_cast<std::size_t>(j) + 1]; ++k)
        residual[static_cast<std::size_t>(
            col_row_[static_cast<std::size_t>(k)])] -=
            col_val_[static_cast<std::size_t>(k)] * x;
    };
    for (int j = 0; j < ncols_; ++j)
      if (vstat_[static_cast<std::size_t>(j)] == kAtUpper)
        apply_column(j, upper_[static_cast<std::size_t>(j)]);
    for (int r = 0; r < m_; ++r)
      apply_column(basis_[static_cast<std::size_t>(r)],
                   x_basic_[static_cast<std::size_t>(r)]);
    for (int r = 0; r < m_; ++r)
      SURFNET_ASSERT(std::abs(residual[static_cast<std::size_t>(r)]) <=
                         1e-5 * scale,
                     "row %d residual %g (scale %g)", r,
                     residual[static_cast<std::size_t>(r)], scale);
#endif
  }

  /// Debug validator (SURFNET_CHECKS): on phase-1 exit every basic value
  /// must sit inside its bounds — Optimal with a bound violation means the
  /// phase transition logic broke.
  void check_exit_feasibility() const {
#if SURFNET_CHECKS
    for (int r = 0; r < m_; ++r) {
      const double v = x_basic_[static_cast<std::size_t>(r)];
      const double u =
          upper_[static_cast<std::size_t>(basis_[static_cast<std::size_t>(r)])];
      SURFNET_ASSERT(v >= -1e-5 && v <= u + 1e-5,
                     "basic value %g outside [0, %g] in row %d", v, u, r);
    }
#endif
  }

  void save_state(SimplexState& state) const {
    state.basis.assign(basis_.begin(), basis_.end());
    state.at_upper.assign(static_cast<std::size_t>(ncols_), 0);
    for (int j = 0; j < ncols_; ++j)
      if (vstat_[static_cast<std::size_t>(j)] == kAtUpper)
        state.at_upper[static_cast<std::size_t>(j)] = 1;
    state.num_rows = m_;
    state.num_cols = ncols_;
  }

  const LpProblem* problem_;
  int m_ = 0;       ///< rows
  int nstruct_ = 0; ///< structural columns
  int ncols_ = 0;   ///< structural + slack + artificial

  // CSC over all internal columns.
  std::vector<int> col_start_;
  std::vector<int> col_row_;
  std::vector<double> col_val_;
  std::vector<double> cost_;
  std::vector<double> upper_;
  std::vector<double> b_;
  std::vector<int> row_aux_col_;  ///< cold-start basic column per row

  std::vector<int> basis_;
  std::vector<signed char> vstat_;
  std::vector<double> x_basic_;

  // Eta file: eta e pivots on row eta_pivot_row_[e] with value
  // eta_pivot_val_[e]; off-pivot entries live in [eta_start_[e],
  // eta_start_[e+1]) of eta_row_/eta_val_.
  std::vector<int> eta_pivot_row_;
  std::vector<double> eta_pivot_val_;
  std::vector<int> eta_start_;
  std::vector<int> eta_row_;
  std::vector<double> eta_val_;
  int pivots_since_refactor_ = 0;
  int refactor_count_ = 0;  ///< total basis rebuilds this solve

  std::vector<double> work_;  ///< dense row-sized scratch (FTRAN target)
  std::vector<double> y_;     ///< dense row-sized scratch (BTRAN target)
  std::vector<double> cb_;    ///< basic costs of the current phase

  // Refactorization scratch (rebuilt each refactorize; kept as members so
  // the buffers only grow).
  std::vector<int> fac_col_start_, fac_row_, fac_stamp_, fac_rowpos_start_,
      fac_rowpos_col_, fac_row_live_, fac_queue_, fac_fill_;
  std::vector<std::size_t> fac_slot_;
  std::vector<double> fac_val_;
  std::vector<char> fac_col_alive_;
};

RevisedSimplex::RevisedSimplex(const LpProblem& problem) : problem_(&problem) {
  m_ = problem.num_rows();
  nstruct_ = problem.num_vars();

  int num_slack = 0, num_artificial = 0;
  for (int r = 0; r < m_; ++r) {
    if (problem.row_type(r) == ConstraintType::Equal)
      ++num_artificial;
    else
      ++num_slack;
  }
  ncols_ = nstruct_ + num_slack + num_artificial;

  // Transpose the problem's CSR rows into CSC structural columns.
  const int nnz = problem.num_nonzeros();
  col_start_.assign(static_cast<std::size_t>(ncols_) + 1, 0);
  for (int r = 0; r < m_; ++r)
    for (const int c : problem.row_cols(r))
      ++col_start_[static_cast<std::size_t>(c) + 1];
  // Prefix-sum structural counts, then one slot per slack/artificial col.
  for (int j = 0; j < nstruct_; ++j)
    col_start_[static_cast<std::size_t>(j) + 1] +=
        col_start_[static_cast<std::size_t>(j)];
  for (int j = nstruct_; j < ncols_; ++j)
    col_start_[static_cast<std::size_t>(j) + 1] =
        col_start_[static_cast<std::size_t>(j)] + 1;

  col_row_.resize(static_cast<std::size_t>(nnz) + static_cast<std::size_t>(num_slack + num_artificial));
  col_val_.resize(col_row_.size());
  std::vector<int> fill(col_start_.begin(), col_start_.end() - 1);
  for (int r = 0; r < m_; ++r) {
    const auto cols = problem.row_cols(r);
    const auto coeffs = problem.row_coeffs(r);
    for (std::size_t t = 0; t < cols.size(); ++t) {
      const auto slot =
          static_cast<std::size_t>(fill[static_cast<std::size_t>(cols[t])]++);
      col_row_[slot] = r;
      col_val_[slot] = coeffs[t];
    }
  }

  cost_.assign(static_cast<std::size_t>(ncols_), 0.0);
  upper_.assign(static_cast<std::size_t>(ncols_), kInf);
  for (int j = 0; j < nstruct_; ++j) {
    cost_[static_cast<std::size_t>(j)] = problem.objective(j);
    upper_[static_cast<std::size_t>(j)] = problem.upper_bound(j);
  }

  b_.resize(static_cast<std::size_t>(m_));
  row_aux_col_.resize(static_cast<std::size_t>(m_));
  int slack_cursor = nstruct_;
  int art_cursor = nstruct_ + num_slack;
  for (int r = 0; r < m_; ++r) {
    b_[static_cast<std::size_t>(r)] = problem.rhs(r);
    int aux;
    double coeff;
    switch (problem.row_type(r)) {
      case ConstraintType::LessEqual:
        aux = slack_cursor++;
        coeff = 1.0;
        break;
      case ConstraintType::GreaterEqual:
        aux = slack_cursor++;
        coeff = -1.0;
        break;
      case ConstraintType::Equal:
      default:
        aux = art_cursor++;
        coeff = 1.0;
        upper_[static_cast<std::size_t>(aux)] = 0.0;  // fixed at zero
        break;
    }
    const auto slot =
        static_cast<std::size_t>(col_start_[static_cast<std::size_t>(aux)]);
    col_row_[slot] = r;
    col_val_[slot] = coeff;
    row_aux_col_[static_cast<std::size_t>(r)] = aux;
  }

  x_basic_.resize(static_cast<std::size_t>(m_));
  work_.resize(static_cast<std::size_t>(m_));
  y_.resize(static_cast<std::size_t>(m_));
  cb_.resize(static_cast<std::size_t>(m_));
  eta_start_.assign(1, 0);
}

LpSolution RevisedSimplex::solve(SimplexState& state) {
  LpSolution solution;
  for (int j = 0; j < nstruct_; ++j) {
    const double u = upper_[static_cast<std::size_t>(j)];
    if (std::isnan(u) || u < 0.0) {  // empty box — match the dense reference
      solution.status = LpStatus::Infeasible;
      state.clear();
      return solution;
    }
  }

  const bool warm = install_state(state);
  if (!warm) {
    cold_basis();
    refactorize();  // singleton basis columns: cannot fail
  }
  solution.warm_started = warm;
  compute_basic_values();
  check_primal_residual();

  const long max_iterations = 4096 + 32L * (m_ + nstruct_);
  long iterations = 0;
  int degenerate_streak = 0;
  bool bland = false;
  std::vector<char> banned(static_cast<std::size_t>(ncols_), 0);
  std::vector<int> banned_list;

  for (;;) {
    if (iterations >= max_iterations) {
      solution.status = LpStatus::IterationLimit;
      break;
    }

    // Phase detection: any basic variable outside its bounds puts the
    // iteration in phase 1, whose costs point each violator back inside.
    bool phase1 = false;
    for (int r = 0; r < m_; ++r) {
      const double v = x_basic_[static_cast<std::size_t>(r)];
      const double u =
          upper_[static_cast<std::size_t>(basis_[static_cast<std::size_t>(r)])];
      double c = 0.0;
      if (v < -kFeasTol) {
        c = 1.0;
        phase1 = true;
      } else if (v > u + kFeasTol) {
        c = -1.0;
        phase1 = true;
      }
      cb_[static_cast<std::size_t>(r)] = c;
    }
    if (!phase1)
      for (int r = 0; r < m_; ++r)
        cb_[static_cast<std::size_t>(r)] = cost_[static_cast<std::size_t>(
            basis_[static_cast<std::size_t>(r)])];

    std::copy(cb_.begin(), cb_.end(), y_.begin());
    btran(y_);

    // Pricing: Dantzig (largest reduced cost) normally, Bland (first
    // eligible index) while a degenerate streak threatens to cycle.
    int entering = -1;
    double best_score = 0.0;
    for (int j = 0; j < ncols_; ++j) {
      const auto sj = static_cast<std::size_t>(j);
      if (vstat_[sj] == kBasic || banned[sj]) continue;
      if (upper_[sj] <= 0.0) continue;  // fixed at zero: never moves
      double d = phase1 ? 0.0 : cost_[sj];
      for (int k = col_start_[sj]; k < col_start_[sj + 1]; ++k)
        d -= col_val_[static_cast<std::size_t>(k)] *
             y_[static_cast<std::size_t>(col_row_[static_cast<std::size_t>(k)])];
      const bool improving =
          vstat_[sj] == kAtLower ? (d > kOptTol) : (d < -kOptTol);
      if (!improving) continue;
      if (bland) {
        entering = j;
        break;
      }
      if (std::abs(d) > best_score) {
        best_score = std::abs(d);
        entering = j;
      }
    }

    if (entering < 0) {
      solution.status = phase1 ? LpStatus::Infeasible : LpStatus::Optimal;
      break;
    }

    const int dir = vstat_[static_cast<std::size_t>(entering)] == kAtLower
                        ? +1
                        : -1;
    load_column(entering, work_);
    ftran(work_);

    // Ratio test over the basic variables plus the entering variable's own
    // opposite bound (a bound flip). Basic variables already outside a
    // bound block at the bound they are returning to, which keeps phase-1
    // steps from overshooting feasibility.
    double best_t = upper_[static_cast<std::size_t>(entering)];  // flip
    int block_row = -1;
    bool leave_at_upper = false;
    for (int r = 0; r < m_; ++r) {
      const double wv = work_[static_cast<std::size_t>(r)];
      if (std::abs(wv) < kRatioTol) continue;
      const double delta = -dir * wv;  // d x_B[r] / dt
      const double v = x_basic_[static_cast<std::size_t>(r)];
      const double u =
          upper_[static_cast<std::size_t>(basis_[static_cast<std::size_t>(r)])];
      double target;
      if (delta > 0.0) {
        if (v > u + kFeasTol) continue;  // above and rising: no block here
        target = v < -kFeasTol ? 0.0 : u;
        if (!std::isfinite(target)) continue;
      } else {
        if (v < -kFeasTol) continue;  // below and falling: no block here
        target = v > u + kFeasTol ? u : 0.0;
      }
      double t = (target - v) / delta;
      if (t < 0.0) t = 0.0;
      bool take = false;
      if (t < best_t - kRatioTol) {
        take = true;
      } else if (t < best_t + kRatioTol && block_row >= 0) {
        take = bland
                   ? basis_[static_cast<std::size_t>(r)] <
                         basis_[static_cast<std::size_t>(block_row)]
                   : std::abs(wv) >
                         std::abs(work_[static_cast<std::size_t>(block_row)]);
      }
      if (take) {
        if (t < best_t) best_t = t;
        block_row = r;
        leave_at_upper = target == u && std::isfinite(u);
      }
    }

    if (!std::isfinite(best_t)) {
      // Phase 1 maximizes a function bounded by zero, so an unbounded ray
      // can only be numerical noise there; report it as the limit status.
      solution.status = phase1 ? LpStatus::IterationLimit : LpStatus::Unbounded;
      break;
    }

    if (block_row >= 0 &&
        std::abs(work_[static_cast<std::size_t>(block_row)]) < kPivotTol) {
      // Unstable pivot: retry against a fresh factorization, and if the
      // column stays unusable, bar it from this pricing round.
      if (pivots_since_refactor_ > 0) {
        if (!refactorize()) {
          solution.status = LpStatus::IterationLimit;
          break;
        }
        compute_basic_values();
        continue;
      }
      banned[static_cast<std::size_t>(entering)] = 1;
      banned_list.push_back(entering);
      continue;
    }

    ++iterations;
    if (best_t > 0.0)
      for (int r = 0; r < m_; ++r)
        x_basic_[static_cast<std::size_t>(r)] +=
            -dir * work_[static_cast<std::size_t>(r)] * best_t;

    if (block_row < 0) {
      // Bound flip: the entering variable crosses to its other bound
      // without any basis change.
      vstat_[static_cast<std::size_t>(entering)] =
          dir > 0 ? kAtUpper : kAtLower;
    } else {
      const int leaving = basis_[static_cast<std::size_t>(block_row)];
      vstat_[static_cast<std::size_t>(leaving)] =
          leave_at_upper ? kAtUpper : kAtLower;
      x_basic_[static_cast<std::size_t>(block_row)] =
          dir > 0 ? best_t
                  : upper_[static_cast<std::size_t>(entering)] - best_t;
      basis_[static_cast<std::size_t>(block_row)] = entering;
      vstat_[static_cast<std::size_t>(entering)] = kBasic;
      append_eta(work_, block_row);
      if (++pivots_since_refactor_ >= kRefactorInterval) {
        if (!refactorize()) {
          solution.status = LpStatus::IterationLimit;
          break;
        }
        compute_basic_values();
      }
    }

    for (const int j : banned_list) banned[static_cast<std::size_t>(j)] = 0;
    banned_list.clear();

    if (best_t > kRatioTol) {
      degenerate_streak = 0;
      bland = false;
    } else if (++degenerate_streak >= kBlandStreak) {
      bland = true;
    }
  }

  solution.iterations = static_cast<int>(iterations);
  solution.refactorizations = refactor_count_;
  save_state(state);
  if (solution.status != LpStatus::Optimal) return solution;

  // One fresh factorization before extraction scrubs the drift a long eta
  // file accumulates.
  if (pivots_since_refactor_ > 0 && refactorize()) compute_basic_values();
  check_primal_residual();
  check_exit_feasibility();
  solution.refactorizations = refactor_count_;
  save_state(state);

  solution.x.assign(static_cast<std::size_t>(nstruct_), 0.0);
  for (int j = 0; j < nstruct_; ++j)
    if (vstat_[static_cast<std::size_t>(j)] == kAtUpper)
      solution.x[static_cast<std::size_t>(j)] =
          upper_[static_cast<std::size_t>(j)];
  for (int r = 0; r < m_; ++r) {
    const int j = basis_[static_cast<std::size_t>(r)];
    if (j >= nstruct_) continue;
    const double u = upper_[static_cast<std::size_t>(j)];
    double v = x_basic_[static_cast<std::size_t>(r)];
    v = std::max(0.0, std::isfinite(u) ? std::min(v, u) : v);
    solution.x[static_cast<std::size_t>(j)] = v;
  }
  solution.objective = 0.0;
  for (int j = 0; j < nstruct_; ++j)
    solution.objective +=
        problem_->objective(j) * solution.x[static_cast<std::size_t>(j)];
  return solution;
}

}  // namespace

LpSolution solve_lp(const LpProblem& problem) {
  SimplexState state;
  return solve_lp(problem, state);
}

LpSolution solve_lp(const LpProblem& problem, SimplexState& state) {
  RevisedSimplex simplex(problem);
  const LpSolution solution = simplex.solve(state);
#if SURFNET_CHECKS
  // The snapshot handed back for warm starts must always be installable.
  if (state.valid()) check_simplex_state_invariants(problem, state);
#endif
  return solution;
}

LpSolution solve_lp(const LpProblem& problem, SimplexState& state,
                    const obs::Sink& sink) {
  obs::ScopedTimer timer(sink.metrics, "lp.solve_seconds");
  RevisedSimplex simplex(problem);
  const LpSolution solution = simplex.solve(state);
  if (sink.metrics) {
    sink.metrics->count("lp.solves");
    sink.metrics->count("lp.iterations", solution.iterations);
    sink.metrics->count("lp.refactorizations", solution.refactorizations);
    if (solution.warm_started) sink.metrics->count("lp.warm_starts");
  }
  if (sink.trace)
    sink.trace->record(obs::Event::lp_solve(
        solution.iterations, solution.refactorizations,
        solution.warm_started, static_cast<int>(solution.status),
        solution.objective));
  return solution;
}

}  // namespace surfnet::routing
