#include "routing/lp_router.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "netsim/channel.h"
#include "routing/flow.h"
#include "routing/greedy.h"
#include "routing/validate.h"
#include "util/contracts.h"

namespace surfnet::routing {

using netsim::Request;
using netsim::Schedule;
using netsim::ScheduledRequest;
using netsim::Topology;

namespace {

/// EC servers for one code: servers on the core (or support, when raw)
/// path that also lie on the other path, capped by the noise lower bound.
std::vector<int> choose_ec_servers(const Topology& topology,
                                   const RoutingParams& params,
                                   const std::vector<int>& core_path,
                                   const std::vector<int>& support_path) {
  const auto& primary = core_path.empty() ? support_path : core_path;
  std::vector<int> servers;
  // EC needs the complete code, so a chosen server must appear on both
  // paths, and in the same order on each (the simulator synchronizes the
  // two parts barrier by barrier).
  std::size_t support_cursor = 1;
  for (std::size_t i = 1; i + 1 < primary.size(); ++i) {
    const int node = primary[i];
    if (!topology.is_server(node)) continue;
    if (!core_path.empty()) {
      const auto it = std::find(support_path.begin() +
                                    static_cast<std::ptrdiff_t>(support_cursor),
                                support_path.end() - 1, node);
      if (it == support_path.end() - 1) continue;
      support_cursor =
          static_cast<std::size_t>(it - support_path.begin()) + 1;
    }
    servers.push_back(node);
  }
  const double mu = netsim::path_noise(topology, primary);
  const int max_ec =
      params.ec_reduction > 0.0
          ? static_cast<int>(std::floor(mu / params.ec_reduction))
          : 0;
  if (static_cast<int>(servers.size()) > max_ec)
    servers.resize(static_cast<std::size_t>(std::max(0, max_ec)));
  return servers;
}

}  // namespace

LpRouteResult route_lp(const Topology& topology,
                       const std::vector<Request>& requests,
                       const RoutingParams& params, util::Rng& rng) {
  SimplexState state;
  return route_lp(topology, requests, params, rng, state);
}

LpRouteResult route_lp(const Topology& topology,
                       const std::vector<Request>& requests,
                       const RoutingParams& params, util::Rng& rng,
                       SimplexState& state) {
  LpRouteResult result;
  for (const auto& r : requests) result.schedule.requested_codes += r.codes;

  RoutingFormulation formulation(topology, requests, params);
  const LpSolution lp = solve_lp(formulation.problem(), state, params.sink);
  result.status = lp.status;
  result.cold_iterations = lp.iterations;
  // Report the throughput part of the objective (sum of Y_k), not the
  // noise-regularized value: it is the meaningful upper bound on codes.
  const auto throughput = [&](const LpSolution& sol) {
    double total_y = 0.0;
    for (int k = 0; k < formulation.num_requests(); ++k)
      total_y += sol.x[static_cast<std::size_t>(formulation.vars(k).y)];
    return total_y;
  };
  if (lp.status == LpStatus::Optimal) result.lp_objective = throughput(lp);
  result.schedule.lp_objective = result.lp_objective;
  if (lp.status != LpStatus::Optimal) {
    // Fall back entirely to the greedy scheduler (which validates its own
    // schedule under SURFNET_CHECKS).
    result.schedule = route_greedy(topology, requests, params, rng);
    result.schedule.lp_objective = 0.0;
    return result;
  }

  CapacityTracker tracker(topology, params);
  const int de_count = formulation.num_directed_edges();

  std::vector<int> scheduled_codes(requests.size(), 0);
  std::vector<std::size_t> order(requests.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  for (std::size_t i = order.size(); i > 1; --i)
    std::swap(order[i - 1], order[rng.below(i)]);

  // Round one LP solution into committed codes; returns how many codes
  // this pass scheduled. Re-runs against the residual tracker state on
  // every warm re-solve.
  const auto round_solution = [&](const LpSolution& sol) {
    int committed = 0;
    for (std::size_t k : order) {
      const Request& req = requests[k];
      const auto& vars = formulation.vars(static_cast<int>(k));
      const double y = sol.x[static_cast<std::size_t>(vars.y)];
      const int target =
          std::min(static_cast<int>(std::floor(y + 1e-4)),
                   req.codes - scheduled_codes[k]);
      if (target <= 0) continue;

      const double n = params.core_qubits;
      const double support_unit =
          params.dual_channel ? params.support_qubits : params.total_qubits();

      std::vector<double> support_flow(static_cast<std::size_t>(de_count),
                                       0.0);
      std::vector<double> core_flow(static_cast<std::size_t>(de_count), 0.0);
      for (int de = 0; de < de_count; ++de) {
        const int vb = vars.b[static_cast<std::size_t>(de)];
        if (vb >= 0)
          support_flow[static_cast<std::size_t>(de)] =
              sol.x[static_cast<std::size_t>(vb)] / support_unit;
        if (params.dual_channel) {
          const int va = vars.a[static_cast<std::size_t>(de)];
          if (va >= 0)
            core_flow[static_cast<std::size_t>(de)] =
                sol.x[static_cast<std::size_t>(va)] / n;
        }
      }

      const auto support_paths = decompose_flow(
          formulation, topology.num_nodes(), support_flow, req.src, req.dst);
      const auto support_alloc = allocate_codes(support_paths, target);
      std::vector<std::vector<int>> support_per_code;
      for (std::size_t p = 0; p < support_paths.size(); ++p)
        for (int c = 0; c < support_alloc[p]; ++c)
          support_per_code.push_back(support_paths[p].nodes);

      std::vector<std::vector<int>> core_per_code;
      if (params.dual_channel) {
        const auto core_paths = decompose_flow(
            formulation, topology.num_nodes(), core_flow, req.src, req.dst);
        const auto core_alloc = allocate_codes(core_paths, target);
        for (std::size_t p = 0; p < core_paths.size(); ++p)
          for (int c = 0; c < core_alloc[p]; ++c)
            core_per_code.push_back(core_paths[p].nodes);
      }

      const std::size_t codes =
          params.dual_channel
              ? std::min(support_per_code.size(), core_per_code.size())
              : support_per_code.size();
      for (std::size_t c = 0; c < codes; ++c) {
        const std::vector<int>& support = support_per_code[c];
        static const std::vector<int> kEmpty;
        const std::vector<int>& core =
            params.dual_channel ? core_per_code[c] : kEmpty;
        if (!tracker.split_feasible(core, support)) continue;
        tracker.commit_split(core, support);
        ++scheduled_codes[k];
        ++committed;

        const auto ec = choose_ec_servers(topology, params, core, support);
        if (!result.schedule.scheduled.empty()) {
          auto& last = result.schedule.scheduled.back();
          if (last.request_index == static_cast<int>(k) &&
              last.support_path == support && last.core_path == core &&
              last.ec_servers == ec) {
            ++last.codes;
            continue;
          }
        }
        ScheduledRequest s;
        s.request_index = static_cast<int>(k);
        s.codes = 1;
        s.support_path = support;
        s.core_path = core;
        s.ec_servers = ec;
        result.schedule.scheduled.push_back(std::move(s));
      }
    }
    return committed;
  };

  round_solution(lp);

  // Warm re-solves: shrink the LP to the residual problem (codes still
  // unscheduled, capacity the committed codes left behind) and round
  // again, reusing the basis from the previous solve. Two rounds recover
  // most of what the first rounding dropped; after that the greedy top-up
  // is cheaper than another solve.
  constexpr int kMaxResolves = 2;
  for (int round = 0; round < kMaxResolves; ++round) {
    int remaining = 0;
    for (std::size_t k = 0; k < requests.size(); ++k)
      remaining += requests[k].codes - scheduled_codes[k];
    if (remaining <= 0) break;

    for (std::size_t k = 0; k < requests.size(); ++k)
      formulation.set_request_limit(
          static_cast<int>(k),
          static_cast<double>(requests[k].codes - scheduled_codes[k]));
    for (int v = 0; v < topology.num_nodes(); ++v)
      formulation.set_storage_capacity(
          v, std::max(0.0, tracker.node_remaining(v)));
    for (int e = 0; e < topology.num_fibers(); ++e)
      formulation.set_entanglement_capacity(
          e, std::max(0.0, tracker.fiber_pairs_remaining(e)));

    const LpSolution relp =
        solve_lp(formulation.problem(), state, params.sink);
    ++result.resolves;
    result.warm_iterations += relp.iterations;
    if (relp.status != LpStatus::Optimal) break;
    if (throughput(relp) < 0.5) break;  // no whole code left to gain
    if (round_solution(relp) == 0) break;
  }

  // Greedy top-up: reclaim codes the rounding dropped, while capacities and
  // noise thresholds still allow.
  for (std::size_t k : order) {
    const Request& req = requests[k];
    while (scheduled_codes[k] < req.codes) {
      const auto plan =
          plan_code(topology, tracker, params, req.src, req.dst);
      if (!plan || !tracker.path_feasible(plan->path)) break;
      tracker.commit(plan->path);
      ++scheduled_codes[k];
      ScheduledRequest s;
      s.request_index = static_cast<int>(k);
      s.codes = 1;
      s.support_path = plan->path;
      if (params.dual_channel) s.core_path = plan->path;
      s.ec_servers = plan->ec_servers;
      result.schedule.scheduled.push_back(std::move(s));
    }
  }

#if SURFNET_CHECKS
  // The rounded schedule must satisfy the integer program's constraints
  // (Eqs. (1)-(6)) no matter how the LP/rounding/top-up interplay went.
  check_schedule_invariants(topology, requests, params, result.schedule);
#endif
  return result;
}

}  // namespace surfnet::routing
