#include "routing/router.h"

#include <utility>

#include "obs/metrics.h"
#include "routing/greedy.h"

namespace surfnet::routing {

RouteResult route(const netsim::Topology& topology,
                  const std::vector<netsim::Request>& requests,
                  const RoutingParams& params, util::Rng& rng,
                  const RouteOptions& options) {
  RouteResult result;

  if (options.strategy == RouteStrategy::Greedy) {
    result.schedule = route_greedy(topology, requests, params, rng);
    return result;
  }

  SimplexState local_state;
  SimplexState& state =
      options.warm_state ? *options.warm_state : local_state;
  LpRouteResult lp = route_lp(topology, requests, params, rng, state);
  result.status = lp.status;
  result.lp_objective = lp.lp_objective;
  result.resolves = lp.resolves;
  result.cold_iterations = lp.cold_iterations;
  result.warm_iterations = lp.warm_iterations;
  result.state = state;

  if (lp.status == LpStatus::Optimal ||
      options.strategy == RouteStrategy::Lp) {
    // route_lp already degrades to a greedy schedule internally when the
    // LP cannot be solved, so the forced-Lp arm still returns a schedule.
    result.schedule = std::move(lp.schedule);
    result.used_lp = true;
    return result;
  }

  // Auto fallback — the historical core-layer seam, preserved bitwise:
  // count the fallback and route greedily with the same rng stream.
  if (params.sink.metrics)
    params.sink.metrics->count("route.greedy_fallbacks");
  result.greedy_fallback = true;
  result.schedule = route_greedy(topology, requests, params, rng);
  return result;
}

}  // namespace surfnet::routing
