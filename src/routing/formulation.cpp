#include "routing/formulation.h"

#include <cmath>
#include <stdexcept>

namespace surfnet::routing {

using netsim::Request;
using netsim::Topology;

RoutingFormulation::RoutingFormulation(const Topology& topology,
                                       const std::vector<Request>& requests,
                                       const RoutingParams& params)
    : topology_(&topology), params_(params), servers_(topology.servers()) {
  if (params_.core_qubits <= 0 || params_.support_qubits <= 0)
    throw std::invalid_argument("routing: code sizes must be positive");
  build(requests);
}

int RoutingFormulation::edge_tail(int de) const {
  const auto& f = topology_->fiber(edge_fiber(de));
  return (de % 2 == 0) ? f.a : f.b;
}

int RoutingFormulation::edge_head(int de) const {
  const auto& f = topology_->fiber(edge_fiber(de));
  return (de % 2 == 0) ? f.b : f.a;
}

void RoutingFormulation::set_storage_capacity(int node, double capacity) {
  const int row = storage_row(node);
  if (row >= 0) lp_.set_rhs(row, capacity);
}

void RoutingFormulation::set_entanglement_capacity(int fiber,
                                                   double capacity) {
  const int row = entanglement_row(fiber);
  if (row >= 0) lp_.set_rhs(row, capacity);
}

void RoutingFormulation::build(const std::vector<Request>& requests) {
  const Topology& topo = *topology_;
  const int de_count = num_directed_edges();
  const int n = params_.core_qubits;
  const int m = params_.support_qubits;
  const int total_qubits = params_.total_qubits();

  storage_row_.assign(static_cast<std::size_t>(topo.num_nodes()), -1);
  entanglement_row_.assign(static_cast<std::size_t>(topo.num_fibers()), -1);

  // --- Variables (Eq. 2 bounds become variable upper bounds). ---
  vars_.resize(requests.size());
  for (std::size_t k = 0; k < requests.size(); ++k) {
    const Request& req = requests[k];
    if (req.src == req.dst || !topo.is_user(req.src) || !topo.is_user(req.dst))
      throw std::invalid_argument("routing: request endpoints must be "
                                  "distinct users");
    VarIndex& v = vars_[k];
    v.y = lp_.add_variable(1.0, req.codes);  // objective: max sum Y_k
    v.a.assign(static_cast<std::size_t>(de_count), -1);
    v.b.assign(static_cast<std::size_t>(de_count), -1);
    for (int de = 0; de < de_count; ++de) {
      const int tail = edge_tail(de);
      const int head = edge_head(de);
      // Eq. 3 line 1: no flow out of the destination or into the source;
      // transit through third-party users is physically meaningless.
      const bool tail_ok = (tail == req.src) || topo.is_switch_or_server(tail);
      const bool head_ok = (head == req.dst) || topo.is_switch_or_server(head);
      if (!tail_ok || !head_ok) continue;
      // Small negative objective on every flow unit-noise product: among
      // maximum-throughput solutions the LP then picks minimum-noise
      // routes (and aligned Core/Support paths).
      const double penalty =
          -params_.noise_objective_weight * topo.fiber_noise(edge_fiber(de));
      if (params_.dual_channel)
        v.a[static_cast<std::size_t>(de)] = lp_.add_variable(penalty);
      v.b[static_cast<std::size_t>(de)] = lp_.add_variable(penalty);
    }
    v.x.assign(servers_.size(), -1);
    for (std::size_t r = 0; r < servers_.size(); ++r)
      v.x[r] = lp_.add_variable(0.0, req.codes);
  }

  auto in_edges = [&](int node) {
    std::vector<int> out;
    for (int e : topo.incident(node)) {
      const int de0 = 2 * e, de1 = 2 * e + 1;
      if (edge_head(de0) == node) out.push_back(de0);
      if (edge_head(de1) == node) out.push_back(de1);
    }
    return out;
  };
  auto out_edges = [&](int node) {
    std::vector<int> out;
    for (int e : topo.incident(node)) {
      const int de0 = 2 * e, de1 = 2 * e + 1;
      if (edge_tail(de0) == node) out.push_back(de0);
      if (edge_tail(de1) == node) out.push_back(de1);
    }
    return out;
  };

  // --- Per-request constraints: Eqs. (3), (4), (6). Rows stream straight
  // into the problem's compressed form; nothing is buffered per row. ---
  for (std::size_t k = 0; k < requests.size(); ++k) {
    const Request& req = requests[k];
    const VarIndex& v = vars_[k];

    auto add_flow_equation = [&](const std::vector<int>& edges,
                                 const std::vector<int>& var_of_edge,
                                 double y_coeff) {
      lp_.begin_constraint(ConstraintType::Equal, 0.0);
      for (int de : edges) {
        const int var = var_of_edge[static_cast<std::size_t>(de)];
        if (var >= 0) lp_.add_term(var, 1.0);
      }
      lp_.add_term(v.y, y_coeff);
    };

    // Eq. 3: inflow(dst) = outflow(src) = n*Y (Core) and m*Y (Support).
    if (params_.dual_channel) {
      add_flow_equation(in_edges(req.dst), v.a, -static_cast<double>(n));
      add_flow_equation(out_edges(req.src), v.a, -static_cast<double>(n));
      add_flow_equation(in_edges(req.dst), v.b, -static_cast<double>(m));
      add_flow_equation(out_edges(req.src), v.b, -static_cast<double>(m));
    } else {
      add_flow_equation(in_edges(req.dst), v.b,
                        -static_cast<double>(total_qubits));
      add_flow_equation(out_edges(req.src), v.b,
                        -static_cast<double>(total_qubits));
    }

    // Eq. 4: conservation at switches and servers; server EC coupling.
    for (int node : topo.switches_and_servers()) {
      const auto in = in_edges(node);
      const auto out = out_edges(node);
      auto add_conservation = [&](const std::vector<int>& var_of_edge) {
        bool any = false;
        for (int de : in)
          if (var_of_edge[static_cast<std::size_t>(de)] >= 0) any = true;
        for (int de : out)
          if (var_of_edge[static_cast<std::size_t>(de)] >= 0) any = true;
        if (!any) return;
        lp_.begin_constraint(ConstraintType::Equal, 0.0);
        for (int de : in) {
          const int var = var_of_edge[static_cast<std::size_t>(de)];
          if (var >= 0) lp_.add_term(var, 1.0);
        }
        for (int de : out) {
          const int var = var_of_edge[static_cast<std::size_t>(de)];
          if (var >= 0) lp_.add_term(var, -1.0);
        }
      };
      if (params_.dual_channel) add_conservation(v.a);
      add_conservation(v.b);
    }
    for (std::size_t r = 0; r < servers_.size(); ++r) {
      const int node = servers_[r];
      const auto in = in_edges(node);
      auto add_coupling = [&](const std::vector<int>& var_of_edge,
                              double qubits) {
        lp_.begin_constraint(ConstraintType::Equal, 0.0);
        for (int de : in) {
          const int var = var_of_edge[static_cast<std::size_t>(de)];
          if (var >= 0) lp_.add_term(var, 1.0);
        }
        lp_.add_term(v.x[r], -qubits);
      };
      if (params_.dual_channel) {
        add_coupling(v.a, static_cast<double>(n));
        add_coupling(v.b, static_cast<double>(m));
      } else {
        add_coupling(v.b, static_cast<double>(total_qubits));
      }
    }

    // Eq. 6: noise thresholds (normalized per code as in the paper's
    // worked example). Core: 0 <= (1/n) sum mu a - w sum x <= Wc * Y.
    // Whole code: (1/(n+m)) sum mu (a/2 + b) - w sum x <= W * Y.
    auto noise_terms = [&](const std::vector<int>& var_of_edge,
                           double scale) {
      for (int de = 0; de < de_count; ++de) {
        const int var = var_of_edge[static_cast<std::size_t>(de)];
        if (var < 0) continue;
        const double mu = topo.fiber_noise(edge_fiber(de));
        if (mu > 0.0) lp_.add_term(var, scale * mu);
      }
    };
    auto ec_terms = [&] {
      for (std::size_t r = 0; r < servers_.size(); ++r)
        lp_.add_term(v.x[r], -params_.ec_reduction);
    };
    if (params_.dual_channel) {
      lp_.begin_constraint(ConstraintType::GreaterEqual, 0.0);
      noise_terms(v.a, 1.0 / n);  // >= 0: discourages consecutive servers
      ec_terms();
      lp_.begin_constraint(ConstraintType::LessEqual, 0.0);
      noise_terms(v.a, 1.0 / n);
      ec_terms();
      lp_.add_term(v.y, -params_.core_noise_threshold);
    }
    {
      lp_.begin_constraint(ConstraintType::LessEqual, 0.0);
      if (params_.dual_channel) {
        noise_terms(v.a, 0.5 / total_qubits);
        noise_terms(v.b, 1.0 / total_qubits);
      } else {
        noise_terms(v.b, 1.0 / total_qubits);
      }
      ec_terms();
      lp_.add_term(v.y, -params_.total_noise_threshold);
    }
  }

  // --- Shared capacity constraints: Eq. (5). ---
  const double capacity_scale =
      params_.dual_channel ? 1.0 : params_.raw_capacity_bonus;
  for (int node : topo.switches_and_servers()) {
    const auto in = in_edges(node);
    bool any = false;
    for (int de : in) {
      for (const auto& v : vars_) {
        if (params_.dual_channel && v.a[static_cast<std::size_t>(de)] >= 0)
          any = true;
        if (v.b[static_cast<std::size_t>(de)] >= 0) any = true;
      }
    }
    if (!any) continue;
    storage_row_[static_cast<std::size_t>(node)] = lp_.num_rows();
    lp_.begin_constraint(ConstraintType::LessEqual,
                         capacity_scale * topo.node(node).storage_capacity);
    for (int de : in) {
      for (const auto& v : vars_) {
        if (params_.dual_channel) {
          const int va = v.a[static_cast<std::size_t>(de)];
          if (va >= 0) lp_.add_term(va, 1.0);
        }
        const int vb = v.b[static_cast<std::size_t>(de)];
        if (vb >= 0) lp_.add_term(vb, 1.0);
      }
    }
  }
  if (params_.dual_channel) {
    for (int e = 0; e < topo.num_fibers(); ++e) {
      bool any = false;
      for (const auto& v : vars_)
        for (int de : {2 * e, 2 * e + 1})
          if (v.a[static_cast<std::size_t>(de)] >= 0) any = true;
      if (!any) continue;
      entanglement_row_[static_cast<std::size_t>(e)] = lp_.num_rows();
      lp_.begin_constraint(ConstraintType::LessEqual,
                           topo.fiber(e).entanglement_capacity);
      for (const auto& v : vars_) {
        for (int de : {2 * e, 2 * e + 1}) {
          const int va = v.a[static_cast<std::size_t>(de)];
          if (va >= 0) lp_.add_term(va, 1.0);
        }
      }
    }
  }
}

}  // namespace surfnet::routing
