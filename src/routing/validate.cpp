#include "routing/validate.h"

#include <cmath>
#include <cstddef>

#include "netsim/channel.h"
#include "util/contracts.h"

namespace surfnet::routing {

namespace {

constexpr double kCapacityTol = 1e-6;

/// Walk validity: nonempty src..dst sequence over existing fibers.
void check_path(const netsim::Topology& topology, const std::vector<int>& path,
                int src, int dst, const char* which, int entry) {
  SURFNET_ASSERT(path.size() >= 2, "entry %d: %s path has %zu nodes", entry,
                 which, path.size());
  SURFNET_ASSERT(path.front() == src && path.back() == dst,
                 "entry %d: %s path runs %d..%d, request is %d..%d", entry,
                 which, path.front(), path.back(), src, dst);
  for (const int v : path)
    SURFNET_ASSERT(v >= 0 && v < topology.num_nodes(),
                   "entry %d: %s path node %d outside [0, %d)", entry, which,
                   v, topology.num_nodes());
  for (std::size_t i = 0; i + 1 < path.size(); ++i)
    SURFNET_ASSERT(topology.fiber_between(path[i], path[i + 1]) >= 0,
                   "entry %d: %s path hop %d-%d has no fiber", entry, which,
                   path[i], path[i + 1]);
}

/// EC servers must appear as interior nodes of `path`, in path order.
void check_ec_on_path(const netsim::Topology& topology,
                      const std::vector<int>& ec_servers,
                      const std::vector<int>& path, const char* which,
                      int entry) {
  std::size_t cursor = 1;
  for (const int server : ec_servers) {
    SURFNET_ASSERT(topology.is_server(server),
                   "entry %d: EC node %d is not a server", entry, server);
    bool found = false;
    while (cursor + 1 < path.size()) {
      if (path[cursor] == server) {
        found = true;
        ++cursor;
        break;
      }
      ++cursor;
    }
    SURFNET_ASSERT(found,
                   "entry %d: EC server %d not on the %s path (in order)",
                   entry, server, which);
  }
}

}  // namespace

void check_schedule_invariants(const netsim::Topology& topology,
                               const std::vector<netsim::Request>& requests,
                               const RoutingParams& params,
                               const netsim::Schedule& schedule) {
  int requested = 0;
  for (const auto& request : requests) requested += request.codes;
  SURFNET_ASSERT(schedule.requested_codes == requested,
                 "schedule says %d requested codes, requests sum to %d",
                 schedule.requested_codes, requested);

  std::vector<int> scheduled_per_request(requests.size(), 0);
  std::vector<double> node_demand(static_cast<std::size_t>(topology.num_nodes()),
                                  0.0);
  std::vector<double> pair_demand(static_cast<std::size_t>(topology.num_fibers()),
                                  0.0);

  int entry = 0;
  for (const auto& s : schedule.scheduled) {
    SURFNET_ASSERT(s.request_index >= 0 &&
                       s.request_index < static_cast<int>(requests.size()),
                   "entry %d: request index %d outside [0, %zu)", entry,
                   s.request_index, requests.size());
    SURFNET_ASSERT(s.codes >= 1, "entry %d: %d codes", entry, s.codes);
    scheduled_per_request[static_cast<std::size_t>(s.request_index)] += s.codes;

    const netsim::Request& request =
        requests[static_cast<std::size_t>(s.request_index)];
    check_path(topology, s.support_path, request.src, request.dst, "support",
               entry);
    const bool has_core = !s.core_path.empty();
    if (has_core)
      check_path(topology, s.core_path, request.src, request.dst, "core",
                 entry);

    // Server coupling (Eq. (4)): EC needs the complete code, so a chosen
    // server must lie on both paths in the same order; the EC count obeys
    // the Eq. (6) lower bound on the primary path's noise.
    check_ec_on_path(topology, s.ec_servers, s.support_path, "support", entry);
    if (has_core)
      check_ec_on_path(topology, s.ec_servers, s.core_path, "core", entry);
    if (params.ec_reduction > 0.0) {
      const double mu = netsim::path_noise(
          topology, has_core ? s.core_path : s.support_path);
      const int max_ec =
          static_cast<int>(std::floor(mu / params.ec_reduction + 1e-9));
      SURFNET_ASSERT(static_cast<int>(s.ec_servers.size()) <= max_ec,
                     "entry %d: %zu EC servers, noise %g allows %d", entry,
                     s.ec_servers.size(), mu, max_ec);
    }

    // Accumulate capacity demand (Eq. (5)), mirroring CapacityTracker:
    // Support qubits consume storage along the support path, Core qubits
    // storage along the core path and entangled pairs on its fibers; codes
    // of non-default distance scale both demands.
    double support_unit =
        params.dual_channel ? params.support_qubits : params.total_qubits();
    double core_unit = params.core_qubits;
    if (s.code_distance > 0) {
      core_unit = RoutingParams::core_qubits_for(s.code_distance);
      support_unit = RoutingParams::total_qubits_for(s.code_distance) -
                     (has_core ? core_unit : 0.0);
    }
    for (std::size_t i = 1; i + 1 < s.support_path.size(); ++i)
      node_demand[static_cast<std::size_t>(s.support_path[i])] +=
          support_unit * s.codes;
    if (has_core) {
      for (std::size_t i = 1; i + 1 < s.core_path.size(); ++i)
        node_demand[static_cast<std::size_t>(s.core_path[i])] +=
            core_unit * s.codes;
      if (params.dual_channel)
        for (std::size_t i = 0; i + 1 < s.core_path.size(); ++i)
          pair_demand[static_cast<std::size_t>(
              topology.fiber_between(s.core_path[i], s.core_path[i + 1]))] +=
              core_unit * s.codes;
    }
    ++entry;
  }

  for (std::size_t k = 0; k < requests.size(); ++k)
    SURFNET_ASSERT(scheduled_per_request[k] <= requests[k].codes,
                   "request %zu: %d codes scheduled of %d requested", k,
                   scheduled_per_request[k], requests[k].codes);

  const double bonus = params.dual_channel ? 1.0 : params.raw_capacity_bonus;
  for (int v = 0; v < topology.num_nodes(); ++v)
    SURFNET_ASSERT(node_demand[static_cast<std::size_t>(v)] <=
                       bonus * topology.node(v).storage_capacity + kCapacityTol,
                   "node %d stores %g of %g qubits", v,
                   node_demand[static_cast<std::size_t>(v)],
                   bonus * topology.node(v).storage_capacity);
  for (int e = 0; e < topology.num_fibers(); ++e)
    SURFNET_ASSERT(pair_demand[static_cast<std::size_t>(e)] <=
                       topology.fiber(e).entanglement_capacity + kCapacityTol,
                   "fiber %d carries %g of %d pairs", e,
                   pair_demand[static_cast<std::size_t>(e)],
                   topology.fiber(e).entanglement_capacity);
}

void check_reroute_invariants(const netsim::Topology& topology,
                              const std::vector<int>& path, int pos,
                              const std::vector<int>& barriers) {
  SURFNET_ASSERT(path.size() >= 2, "rerouted path has %zu nodes",
                 path.size());
  SURFNET_ASSERT(pos >= 0 && pos < static_cast<int>(path.size()),
                 "reroute position %d outside path of %zu nodes", pos,
                 path.size());
  SURFNET_ASSERT(!barriers.empty(), "rerouted code has no barriers left");
  for (const int v : path)
    SURFNET_ASSERT(v >= 0 && v < topology.num_nodes(),
                   "rerouted path node %d outside [0, %d)", v,
                   topology.num_nodes());
  for (std::size_t i = 0; i + 1 < path.size(); ++i)
    SURFNET_ASSERT(topology.fiber_between(path[i], path[i + 1]) >= 0,
                   "rerouted path hop %d-%d has no fiber", path[i],
                   path[i + 1]);
  // The stretch still ahead of the code uses forwarding hardware only; a
  // user endpoint may appear solely as the final barrier (Eq. (3)
  // termination).
  for (std::size_t i = static_cast<std::size_t>(pos) + 1;
       i + 1 < path.size(); ++i)
    SURFNET_ASSERT(topology.is_switch_or_server(path[i]),
                   "rerouted path routes through user %d", path[i]);
  // Remaining barriers (EC servers, then the destination) in path order
  // from the code's current position (Eq. (4) coupling).
  int cursor = pos;
  for (const int barrier : barriers) {
    bool found = false;
    for (std::size_t i = static_cast<std::size_t>(cursor); i < path.size();
         ++i)
      if (path[i] == barrier) {
        cursor = static_cast<int>(i) + 1;
        found = true;
        break;
      }
    SURFNET_ASSERT(found,
                   "barrier node %d missing from the rerouted path (in "
                   "order)",
                   barrier);
  }
  SURFNET_ASSERT(path.back() == barriers.back(),
                 "rerouted path ends at %d, destination barrier is %d",
                 path.back(), barriers.back());
}

void check_simplex_state_invariants(const LpProblem& problem,
                                    const SimplexState& state) {
  const int rows = problem.num_rows();
  int slack = 0, artificial = 0;
  for (int r = 0; r < rows; ++r) {
    if (problem.row_type(r) == ConstraintType::Equal)
      ++artificial;
    else
      ++slack;
  }
  const int cols = problem.num_vars() + slack + artificial;

  SURFNET_ASSERT(state.num_rows == rows && state.num_cols == cols,
                 "state shape %dx%d, problem needs %dx%d", state.num_rows,
                 state.num_cols, rows, cols);
  SURFNET_ASSERT(static_cast<int>(state.basis.size()) == rows,
                 "basis holds %zu columns for %d rows", state.basis.size(),
                 rows);
  SURFNET_ASSERT(static_cast<int>(state.at_upper.size()) == cols,
                 "at_upper covers %zu of %d columns", state.at_upper.size(),
                 cols);

  std::vector<char> basic(static_cast<std::size_t>(cols), 0);
  for (const std::int32_t j : state.basis) {
    SURFNET_ASSERT(j >= 0 && j < cols, "basic column %d outside [0, %d)", j,
                   cols);
    SURFNET_ASSERT(!basic[static_cast<std::size_t>(j)],
                   "column %d basic in two rows", j);
    basic[static_cast<std::size_t>(j)] = 1;
  }
  for (int j = 0; j < cols; ++j) {
    if (!state.at_upper[static_cast<std::size_t>(j)]) continue;
    SURFNET_ASSERT(!basic[static_cast<std::size_t>(j)],
                   "basic column %d flagged nonbasic-at-upper", j);
    // Structural columns at-upper need a finite positive bound to rest on.
    // Auxiliary columns may carry the flag too: an artificial fixed at zero
    // that leaves the basis at its (zero) upper bound is recorded at-upper,
    // and warm-start restore treats it as at-lower since both coincide.
    if (j < problem.num_vars()) {
      const double ub = problem.upper_bound(j);
      SURFNET_ASSERT(std::isfinite(ub) && ub > 0.0,
                     "column %d at-upper with bound %g", j, ub);
    }
  }
}

}  // namespace surfnet::routing
