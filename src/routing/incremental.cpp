#include "routing/incremental.h"

#include <algorithm>
#include <cmath>

#include "netsim/channel.h"
#include "obs/metrics.h"
#include "routing/flow.h"
#include "util/contracts.h"

namespace surfnet::routing {

using netsim::AdmitSource;
using netsim::AdmittedRoute;

namespace {
constexpr double kCodeEps = 1e-4;
/// Probe limit per commodity for reoptimize(): far above any realistic
/// single-network headroom, so the capacity rows bind, not the limits.
constexpr double kProbeLimit = 1e3;
}  // namespace

IncrementalRouter::IncrementalRouter(const netsim::Topology& topology,
                                     const RoutingParams& params)
    : topology_(&topology),
      params_(params),
      tracker_(topology, params),
      pristine_(topology, params) {}

int IncrementalRouter::commodity_index(int src, int dst) {
  for (std::size_t k = 0; k < commodities_.size(); ++k)
    if (commodities_[k].src == src && commodities_[k].dst == dst)
      return static_cast<int>(k);
  Commodity commodity;
  commodity.src = src;
  commodity.dst = dst;
  // One-time noise-feasibility check on the pristine full-capacity
  // network: a pair the planner cannot route with every resource free
  // fails on noise thresholds alone, and no release can change that
  // while the noise profile holds (set_noise_scale re-runs the check).
  commodity.infeasible =
      !plan_code(routing_topology(), pristine_, params_, src, dst)
           .has_value();
  commodities_.push_back(std::move(commodity));
  return static_cast<int>(commodities_.size()) - 1;
}

void IncrementalRouter::sync_capacities(RoutingFormulation& formulation) {
  for (int v = 0; v < topology_->num_nodes(); ++v)
    formulation.set_storage_capacity(
        v, std::max(0.0, tracker_.node_remaining(v)));
  for (int e = 0; e < topology_->num_fibers(); ++e)
    formulation.set_entanglement_capacity(
        e, std::max(0.0, tracker_.fiber_pairs_remaining(e)));
}

LpSolution IncrementalRouter::solve_commodity(Commodity& commodity,
                                              double limit) {
  if (!commodity.formulation.has_value()) {
    const std::vector<netsim::Request> requests{
        netsim::Request{commodity.src, commodity.dst, 1}};
    // Built from the measured topology so the Eq. (6) noise coefficients
    // reflect the live profile; set_noise_scale drops stale formulations.
    commodity.formulation.emplace(routing_topology(), requests, params_);
    commodity.state.clear();
  }
  // Limits and right-hand sides change between solves, the shape never
  // does: every solve after the commodity's first warm-starts from the
  // basis the previous one left behind.
  commodity.formulation->set_request_limit(0, limit);
  sync_capacities(*commodity.formulation);
  const LpSolution solution =
      solve_lp(commodity.formulation->problem(), commodity.state,
               params_.sink);
  if (solution.warm_started) {
    ++stats_.warm_solves;
    stats_.warm_iterations += solution.iterations;
  } else {
    ++stats_.cold_solves;
    stats_.cold_iterations += solution.iterations;
  }
  return solution;
}

std::optional<AdmittedRoute> IncrementalRouter::lp_admit(int commodity,
                                                         int codes) {
  SURFNET_EXPECTS(commodity >= 0 &&
                  static_cast<std::size_t>(commodity) < commodities_.size());
  Commodity& c = commodities_[static_cast<std::size_t>(commodity)];
  const LpSolution solution =
      solve_commodity(c, static_cast<double>(codes));
  if (solution.status != LpStatus::Optimal) return std::nullopt;

  const auto& vars = c.formulation->vars(0);
  const double y = solution.x[static_cast<std::size_t>(vars.y)];
  if (y < 1.0 - kCodeEps) return std::nullopt;

  // Decompose the commodity's support flow and vet the candidate paths:
  // the LP certifies aggregate feasibility, each path must still pass the
  // per-path Eq. (6) thresholds and the tracker's integral capacities.
  const double support_unit = params_.dual_channel
                                  ? params_.support_qubits
                                  : params_.total_qubits();
  const int de_count = c.formulation->num_directed_edges();
  std::vector<double> flow(static_cast<std::size_t>(de_count), 0.0);
  for (int de = 0; de < de_count; ++de) {
    const int vb = vars.b[static_cast<std::size_t>(de)];
    if (vb >= 0)
      flow[static_cast<std::size_t>(de)] =
          solution.x[static_cast<std::size_t>(vb)] / support_unit;
  }
  auto paths = decompose_flow(*c.formulation, topology_->num_nodes(),
                              std::move(flow), c.src, c.dst);
  std::stable_sort(paths.begin(), paths.end(),
                   [](const FlowPath& a, const FlowPath& b) {
                     return a.weight > b.weight;
                   });

  for (const auto& candidate : paths) {
    const auto plan = check_path(routing_topology(), params_,
                                 candidate.nodes);
    if (!plan) continue;
    const double node_demand = node_demand_for(plan->distance) * codes;
    const double pair_demand = pair_demand_for(plan->distance) * codes;
    if (!tracker_.path_feasible(candidate.nodes, node_demand, pair_demand))
      continue;
    tracker_.commit(candidate.nodes, node_demand, pair_demand);
    AdmittedRoute route;
    route.path = plan->path;
    route.ec_servers = plan->ec_servers;
    route.noise = netsim::path_noise(routing_topology(), plan->path);
    route.codes = codes;
    route.distance = plan->distance;
    route.source =
        solution.warm_started ? AdmitSource::Warm : AdmitSource::Cold;
    return route;
  }
  return std::nullopt;
}

std::optional<AdmittedRoute> IncrementalRouter::admit(int src, int dst,
                                                      int codes) {
  const obs::Sink& sink = params_.sink;

  // Greedy fast path: Dijkstra + thresholds over the live tracker, no LP.
  if (const auto plan =
          plan_code(routing_topology(), tracker_, params_, src, dst)) {
    const double node_demand = node_demand_for(plan->distance) * codes;
    const double pair_demand = pair_demand_for(plan->distance) * codes;
    if (tracker_.path_feasible(plan->path, node_demand, pair_demand)) {
      tracker_.commit(plan->path, node_demand, pair_demand);
      ++stats_.greedy_admits;
      if (sink.metrics) sink.metrics->count("route.incremental.greedy");
      AdmittedRoute route;
      route.path = plan->path;
      route.ec_servers = plan->ec_servers;
      route.noise = netsim::path_noise(routing_topology(), plan->path);
      route.codes = codes;
      route.distance = plan->distance;
      route.source = AdmitSource::Greedy;
      return route;
    }
  }

  // Warm LP assist. Pairs with no noise-feasible route are rejected in
  // O(1) forever; a commodity whose full ladder already failed stays
  // rejected without another solve until capacity comes back.
  const int k = commodity_index(src, dst);
  Commodity& commodity = commodities_[static_cast<std::size_t>(k)];
  if (commodity.infeasible) {
    ++stats_.infeasible_skips;
    if (sink.metrics) sink.metrics->count("route.incremental.infeasible");
    return std::nullopt;
  }
  if (commodity.saturated) {
    ++stats_.saturation_skips;
    if (sink.metrics) sink.metrics->count("route.incremental.saturated");
    return std::nullopt;
  }
  auto route = lp_admit(k, codes);
  if (!route) {
    commodity.saturated = true;
    ++stats_.lp_rejects;
    if (sink.metrics) sink.metrics->count("route.incremental.lp_reject");
    return std::nullopt;
  }
  if (route->source == AdmitSource::Warm) {
    ++stats_.warm_admits;
    if (sink.metrics) sink.metrics->count("route.incremental.warm");
  } else {
    ++stats_.cold_admits;
    if (sink.metrics) sink.metrics->count("route.incremental.cold");
  }
  return route;
}

void IncrementalRouter::release(const AdmittedRoute& route) {
  // Demands keyed by the distance recorded at admit time: the exact
  // inverse of the matching commit even when the adaptive planner chose a
  // non-default code size or the noise profile changed since.
  tracker_.release(route.path, node_demand_for(route.distance) * route.codes,
                   pair_demand_for(route.distance) * route.codes);
  // Returned capacity may unblock any saturated commodity.
  for (auto& c : commodities_) c.saturated = false;
}

void IncrementalRouter::set_noise_scale(double scale) {
  SURFNET_EXPECTS(scale > 0.0, "noise scale %f must be positive", scale);
  if (scale == noise_scale_) return;
  noise_scale_ = scale;
  ++stats_.profile_changes;
  if (scale != 1.0) {
    // Measured view: fidelity gamma degrades to gamma^scale, i.e. fiber
    // noise mu = ln(1/gamma) scales linearly. Structure and capacities
    // are untouched, so the trackers keep working on the real topology.
    scaled_ = *topology_;
    for (int e = 0; e < scaled_.num_fibers(); ++e)
      scaled_.fiber(e).fidelity =
          std::pow(topology_->fiber(e).fidelity, scale);
  }
  // Every standing formulation baked the previous profile's noise
  // coefficients into its Eq. (6) rows: drop them (the next assist
  // cold-solves once, then warm-starts again), clear the saturation
  // caches, and re-run the noise-feasibility check under the new profile.
  for (auto& c : commodities_) {
    c.formulation.reset();
    c.state.clear();
    c.saturated = false;
    c.infeasible =
        !plan_code(routing_topology(), pristine_, params_, c.src, c.dst)
             .has_value();
  }
  if (params_.sink.metrics)
    params_.sink.metrics->count("route.incremental.profile_change");
}

double IncrementalRouter::reoptimize() {
  // Probe every feasible commodity's standing formulation over the
  // residual network and sum the fractional codes it could still carry.
  bool probed = false;
  double headroom = 0.0;
  for (auto& c : commodities_) {
    if (c.infeasible) continue;
    const LpSolution solution = solve_commodity(c, kProbeLimit);
    probed = true;
    c.saturated = false;
    if (solution.status != LpStatus::Optimal) continue;
    headroom += solution.x[static_cast<std::size_t>(
        c.formulation->vars(0).y)];
  }
  // Nothing has ever needed the LP: the network is effectively
  // unconstrained from the stream's point of view.
  if (!probed) return kProbeLimit;
  return headroom;
}

}  // namespace surfnet::routing
