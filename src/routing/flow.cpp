#include "routing/flow.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "util/contracts.h"

namespace surfnet::routing {

namespace {
constexpr double kFlowEps = 1e-6;
}  // namespace

/// BFS-based path stripping: repeatedly find any src->dst path through
/// edges with positive residual flow, strip its bottleneck. BFS guarantees
/// termination even when the LP solution contains flow cycles (those are
/// simply never reached and ignored).
std::vector<FlowPath> decompose_flow(const RoutingFormulation& formulation,
                                     int num_nodes, std::vector<double> flow,
                                     int src, int dst) {
  SURFNET_EXPECTS(src >= 0 && src < num_nodes);
  SURFNET_EXPECTS(dst >= 0 && dst < num_nodes);
  const int de_count = formulation.num_directed_edges();
  std::vector<FlowPath> paths;
  for (int guard = 0; guard < 4 * de_count + 16; ++guard) {
    // BFS over positive-flow edges.
    std::vector<char> visited(static_cast<std::size_t>(num_nodes), 0);
    std::vector<int> via(static_cast<std::size_t>(num_nodes), -1);
    std::queue<int> queue;
    queue.push(src);
    visited[static_cast<std::size_t>(src)] = 1;
    bool reached = false;
    while (!queue.empty() && !reached) {
      const int u = queue.front();
      queue.pop();
      for (int de = 0; de < de_count; ++de) {
        if (flow[static_cast<std::size_t>(de)] <= kFlowEps) continue;
        if (formulation.edge_tail(de) != u) continue;
        const int v = formulation.edge_head(de);
        if (visited[static_cast<std::size_t>(v)]) continue;
        visited[static_cast<std::size_t>(v)] = 1;
        via[static_cast<std::size_t>(v)] = de;
        if (v == dst) {
          reached = true;
          break;
        }
        queue.push(v);
      }
    }
    if (!reached) break;

    // Walk back, collect the path and its bottleneck.
    std::vector<int> edges;
    for (int v = dst; v != src;) {
      const int de = via[static_cast<std::size_t>(v)];
      edges.push_back(de);
      v = formulation.edge_tail(de);
    }
    std::reverse(edges.begin(), edges.end());
    double bottleneck = std::numeric_limits<double>::infinity();
    for (int de : edges)
      bottleneck = std::min(bottleneck, flow[static_cast<std::size_t>(de)]);
    for (int de : edges) flow[static_cast<std::size_t>(de)] -= bottleneck;

    FlowPath path;
    path.weight = bottleneck;
    path.nodes.push_back(src);
    for (int de : edges) path.nodes.push_back(formulation.edge_head(de));
    paths.push_back(std::move(path));
  }
  return paths;
}

/// Largest-remainder allocation of `total` integral codes to paths
/// proportionally to their fractional weights.
std::vector<int> allocate_codes(const std::vector<FlowPath>& paths,
                                int total) {
  std::vector<int> alloc(paths.size(), 0);
  int assigned = 0;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    alloc[i] = static_cast<int>(std::floor(paths[i].weight + kFlowEps));
    assigned += alloc[i];
  }
  std::vector<std::size_t> by_remainder(paths.size());
  for (std::size_t i = 0; i < by_remainder.size(); ++i) by_remainder[i] = i;
  std::sort(by_remainder.begin(), by_remainder.end(),
            [&](std::size_t x, std::size_t y) {
              const double rx = paths[x].weight - std::floor(paths[x].weight);
              const double ry = paths[y].weight - std::floor(paths[y].weight);
              return rx > ry;
            });
  for (std::size_t i = 0; i < by_remainder.size() && assigned < total; ++i) {
    ++alloc[by_remainder[i]];
    ++assigned;
  }
  // Trim over-allocation (floor sums can exceed `total` only by LP noise).
  for (std::size_t i = paths.size(); i-- > 0 && assigned > total;) {
    const int cut = std::min(alloc[i], assigned - total);
    alloc[i] -= cut;
    assigned -= cut;
  }
  return alloc;
}

}  // namespace surfnet::routing
