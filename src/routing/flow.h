#pragma once

// Flow decomposition shared by the batch LP router (routing/lp_router.h)
// and the incremental router (routing/incremental.h): strip a relaxed
// per-edge flow vector into src->dst paths, then allocate an integral
// code count across them.

#include <vector>

#include "routing/formulation.h"

namespace surfnet::routing {

/// A flow-carrying path extracted from a relaxed LP solution.
struct FlowPath {
  std::vector<int> nodes;
  double weight = 0.0;  ///< codes carried (fractional)
};

/// BFS-based path stripping: repeatedly find any src->dst path through
/// edges with positive residual flow, strip its bottleneck. BFS guarantees
/// termination even when the LP solution contains flow cycles (those are
/// simply never reached and ignored). `flow` is indexed by the
/// formulation's directed-edge ids and consumed by value.
std::vector<FlowPath> decompose_flow(const RoutingFormulation& formulation,
                                     int num_nodes, std::vector<double> flow,
                                     int src, int dst);

/// Largest-remainder allocation of `total` integral codes to paths
/// proportionally to their fractional weights.
std::vector<int> allocate_codes(const std::vector<FlowPath>& paths,
                                int total);

}  // namespace surfnet::routing
