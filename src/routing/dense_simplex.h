#pragma once

// Dense two-phase tableau simplex — the original SurfNet LP core, kept as
// the reference implementation the sparse revised solver (routing/simplex)
// is validated against. The algorithm is unchanged: phase 1 drives
// artificial variables to zero, phase 2 optimizes the real objective with
// Dantzig pricing and a Bland's-rule fallback, upper bounds materialize as
// explicit rows, and inequality right-hand sides carry a tiny
// deterministic anti-degeneracy perturbation.
//
// The equivalence tests assert that both solvers agree on LpStatus and on
// the objective within 1e-6; bench_ablation_routing times the two against
// each other, so the dense path accepts a wall-clock budget — on the
// large sweep points it would otherwise run for hours.

#include "routing/simplex.h"

namespace surfnet::routing {

struct DenseSolveOptions {
  /// Wall-clock budget in milliseconds; 0 = unlimited. Exceeding it ends
  /// the solve with LpStatus::IterationLimit.
  double max_millis = 0.0;
};

LpSolution solve_lp_dense(const LpProblem& problem,
                          const DenseSolveOptions& options = {});

}  // namespace surfnet::routing
