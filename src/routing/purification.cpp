#include "routing/purification.h"

#include <algorithm>
#include <limits>
#include <optional>
#include <queue>

namespace surfnet::routing {

using netsim::Request;
using netsim::Schedule;
using netsim::ScheduledRequest;
using netsim::Topology;

namespace {

/// Minimum-noise path through switches/servers with pair budget remaining.
std::optional<std::vector<int>> budget_path(const Topology& topology,
                                            const std::vector<double>& budget,
                                            double demand, int src, int dst) {
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(static_cast<std::size_t>(topology.num_nodes()),
                           inf);
  std::vector<int> parent(static_cast<std::size_t>(topology.num_nodes()), -1);
  using Item = std::pair<double, int>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  dist[static_cast<std::size_t>(src)] = 0.0;
  heap.push({0.0, src});
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > dist[static_cast<std::size_t>(u)]) continue;
    for (int e : topology.incident(u)) {
      if (budget[static_cast<std::size_t>(e)] < demand) continue;
      const int v = topology.other_end(e, u);
      if (v != dst && !topology.is_switch_or_server(v)) continue;
      const double nd = d + topology.fiber_noise(e);
      if (nd < dist[static_cast<std::size_t>(v)]) {
        dist[static_cast<std::size_t>(v)] = nd;
        parent[static_cast<std::size_t>(v)] = u;
        heap.push({nd, v});
      }
    }
  }
  if (dist[static_cast<std::size_t>(dst)] == inf) return std::nullopt;
  std::vector<int> path;
  for (int v = dst; v != -1; v = parent[static_cast<std::size_t>(v)])
    path.push_back(v);
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace

Schedule route_purification(const Topology& topology,
                            const std::vector<Request>& requests,
                            const PurificationParams& params,
                            util::Rng& rng) {
  Schedule schedule;
  for (const auto& r : requests) schedule.requested_codes += r.codes;

  std::vector<double> budget(static_cast<std::size_t>(topology.num_fibers()));
  for (int e = 0; e < topology.num_fibers(); ++e)
    budget[static_cast<std::size_t>(e)] =
        params.budget_scale * topology.fiber(e).entanglement_capacity;
  const double demand = 1.0 + params.extra_pairs;

  std::vector<std::size_t> order(requests.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  for (std::size_t i = order.size(); i > 1; --i)
    std::swap(order[i - 1], order[rng.below(i)]);

  for (std::size_t k : order) {
    const Request& req = requests[k];
    for (int code = 0; code < req.codes; ++code) {
      const auto path =
          budget_path(topology, budget, demand, req.src, req.dst);
      if (!path) break;
      for (std::size_t i = 0; i + 1 < path->size(); ++i) {
        const int e = topology.fiber_between((*path)[i], (*path)[i + 1]);
        budget[static_cast<std::size_t>(e)] -= demand;
      }
      if (!schedule.scheduled.empty()) {
        auto& last = schedule.scheduled.back();
        if (last.request_index == static_cast<int>(k) &&
            last.core_path == *path) {
          ++last.codes;
          continue;
        }
      }
      ScheduledRequest s;
      s.request_index = static_cast<int>(k);
      s.codes = 1;
      s.core_path = *path;       // teleportation path
      s.support_path = *path;    // kept for plan validation symmetry
      schedule.scheduled.push_back(std::move(s));
    }
  }
  return schedule;
}

}  // namespace surfnet::routing
