#include "routing/dense_simplex.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <vector>

namespace surfnet::routing {

namespace {

constexpr double kEps = 1e-9;

/// One constraint row in the solver's working form.
struct DenseRow {
  std::vector<std::pair<int, double>> terms;
  ConstraintType type = ConstraintType::LessEqual;
  double rhs = 0.0;
};

/// Dense tableau with an explicit cost row. Columns: structural variables,
/// then slacks/surpluses, then artificials, then the RHS.
class Tableau {
 public:
  Tableau(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  double& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double at(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }
  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  /// Gaussian pivot on (pr, pc), also applied to the cost row `z`.
  void pivot(std::size_t pr, std::size_t pc, std::vector<double>& z) {
    const double pivot_value = at(pr, pc);
    double* prow = &data_[pr * cols_];
    const double inv = 1.0 / pivot_value;
    for (std::size_t c = 0; c < cols_; ++c) prow[c] *= inv;
    for (std::size_t r = 0; r < rows_; ++r) {
      if (r == pr) continue;
      double* row = &data_[r * cols_];
      const double factor = row[pc];
      if (std::abs(factor) < kEps) {
        row[pc] = 0.0;
        continue;
      }
      for (std::size_t c = 0; c < cols_; ++c) row[c] -= factor * prow[c];
      row[pc] = 0.0;
    }
    const double zfactor = z[pc];
    if (std::abs(zfactor) >= kEps) {
      for (std::size_t c = 0; c < cols_; ++c) z[c] -= zfactor * prow[c];
      z[pc] = 0.0;
    }
  }

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<double> data_;
};

}  // namespace

LpSolution solve_lp_dense(const LpProblem& problem,
                          const DenseSolveOptions& options) {
  using Clock = std::chrono::steady_clock;
  const auto start_time = Clock::now();
  const auto out_of_time = [&]() {
    if (options.max_millis <= 0.0) return false;
    const double elapsed =
        std::chrono::duration<double, std::milli>(Clock::now() - start_time)
            .count();
    return elapsed > options.max_millis;
  };

  LpSolution solution;
  const std::size_t n = static_cast<std::size_t>(problem.num_vars());

  // Materialize upper-bound rows, then normalize every row to rhs >= 0.
  std::vector<DenseRow> rows;
  rows.reserve(static_cast<std::size_t>(problem.num_rows()) + n);
  for (int r = 0; r < problem.num_rows(); ++r) {
    DenseRow row;
    const auto cols = problem.row_cols(r);
    const auto coeffs = problem.row_coeffs(r);
    row.terms.reserve(cols.size());
    for (std::size_t t = 0; t < cols.size(); ++t)
      row.terms.emplace_back(cols[t], coeffs[t]);
    row.type = problem.row_type(r);
    row.rhs = problem.rhs(r);
    rows.push_back(std::move(row));
  }
  for (std::size_t v = 0; v < n; ++v) {
    const double ub = problem.upper_bound(static_cast<int>(v));
    if (std::isfinite(ub)) {
      DenseRow row;
      row.terms.emplace_back(static_cast<int>(v), 1.0);
      row.type = ConstraintType::LessEqual;
      row.rhs = ub;
      rows.push_back(std::move(row));
    }
  }
  const std::size_t m = rows.size();

  // Anti-degeneracy: perturb the right-hand side of inequality rows by a
  // tiny deterministic amount. Network-flow LPs like the routing
  // formulation are massively degenerate (many zero-RHS rows) and stall
  // the plain simplex otherwise. Equality rows must stay exact.
  {
    std::uint64_t mix = 0x9E3779B97F4A7C15ULL;
    for (auto& row : rows) {
      if (row.type == ConstraintType::Equal) continue;
      mix ^= mix << 13;
      mix ^= mix >> 7;
      mix ^= mix << 17;
      const double jitter =
          1e-9 * (1.0 + static_cast<double>(mix % 1024) / 1024.0);
      row.rhs += (row.type == ConstraintType::LessEqual) ? jitter : -jitter;
    }
  }

  // Count auxiliary columns.
  std::size_t num_slack = 0, num_artificial = 0;
  for (auto& row : rows) {
    if (row.rhs < 0.0) {
      row.rhs = -row.rhs;
      for (auto& [var, coeff] : row.terms) coeff = -coeff;
      if (row.type == ConstraintType::LessEqual)
        row.type = ConstraintType::GreaterEqual;
      else if (row.type == ConstraintType::GreaterEqual)
        row.type = ConstraintType::LessEqual;
    }
    switch (row.type) {
      case ConstraintType::LessEqual:
        ++num_slack;
        break;
      case ConstraintType::GreaterEqual:
        ++num_slack;
        ++num_artificial;
        break;
      case ConstraintType::Equal:
        ++num_artificial;
        break;
    }
  }

  const std::size_t total = n + num_slack + num_artificial;
  const std::size_t rhs_col = total;
  Tableau tableau(m, total + 1);
  std::vector<int> basis(m, -1);
  const std::size_t art_begin = n + num_slack;

  std::size_t slack_cursor = n;
  std::size_t art_cursor = art_begin;
  for (std::size_t r = 0; r < m; ++r) {
    for (const auto& [var, coeff] : rows[r].terms)
      tableau.at(r, static_cast<std::size_t>(var)) += coeff;
    tableau.at(r, rhs_col) = rows[r].rhs;
    switch (rows[r].type) {
      case ConstraintType::LessEqual:
        tableau.at(r, slack_cursor) = 1.0;
        basis[r] = static_cast<int>(slack_cursor++);
        break;
      case ConstraintType::GreaterEqual:
        tableau.at(r, slack_cursor) = -1.0;
        ++slack_cursor;
        tableau.at(r, art_cursor) = 1.0;
        basis[r] = static_cast<int>(art_cursor++);
        break;
      case ConstraintType::Equal:
        tableau.at(r, art_cursor) = 1.0;
        basis[r] = static_cast<int>(art_cursor++);
        break;
    }
  }

  // Cost row for the current phase: z[j] is the reduced cost of column j.
  std::vector<double> z(total + 1, 0.0);
  auto rebuild_cost_row = [&](const std::vector<double>& cost) {
    std::fill(z.begin(), z.end(), 0.0);
    for (std::size_t j = 0; j < total; ++j) z[j] = cost[j];
    for (std::size_t r = 0; r < m; ++r) {
      const double cb = cost[static_cast<std::size_t>(basis[r])];
      if (cb == 0.0) continue;
      for (std::size_t c = 0; c <= total; ++c)
        z[c] -= cb * tableau.at(r, c);
    }
  };

  // Run simplex iterations with the current cost row. `allowed` masks
  // columns that may enter the basis.
  const long max_iterations =
      4096 + 8 * static_cast<long>(m) + 4 * static_cast<long>(total);
  long total_iterations = 0;
  auto iterate = [&](const std::vector<char>& allowed) -> LpStatus {
    long iterations = 0;
    const long bland_after = max_iterations / 2;
    while (true) {
      if (++iterations > max_iterations) return LpStatus::IterationLimit;
      ++total_iterations;
      if ((iterations & 63) == 0 && out_of_time())
        return LpStatus::IterationLimit;
      // Entering column: Dantzig first, Bland when degeneracy drags on.
      std::size_t entering = total;
      if (iterations < bland_after) {
        double best = kEps;
        for (std::size_t j = 0; j < total; ++j)
          if (allowed[j] && z[j] > best) {
            best = z[j];
            entering = j;
          }
      } else {
        for (std::size_t j = 0; j < total; ++j)
          if (allowed[j] && z[j] > kEps) {
            entering = j;
            break;
          }
      }
      if (entering == total) return LpStatus::Optimal;

      // Ratio test (Bland tie-break on the leaving basis variable).
      std::size_t leaving = m;
      double best_ratio = std::numeric_limits<double>::infinity();
      for (std::size_t r = 0; r < m; ++r) {
        const double a = tableau.at(r, entering);
        if (a > kEps) {
          const double ratio = tableau.at(r, rhs_col) / a;
          if (ratio < best_ratio - kEps ||
              (ratio < best_ratio + kEps && leaving < m &&
               basis[r] < basis[leaving])) {
            best_ratio = ratio;
            leaving = r;
          }
        }
      }
      if (leaving == m) return LpStatus::Unbounded;
      tableau.pivot(leaving, entering, z);
      basis[leaving] = static_cast<int>(entering);
    }
  };

  // --- Phase 1: drive artificials to zero. ---
  if (num_artificial > 0) {
    std::vector<double> phase1_cost(total, 0.0);
    for (std::size_t j = art_begin; j < total; ++j) phase1_cost[j] = -1.0;
    rebuild_cost_row(phase1_cost);
    std::vector<char> allowed(total, 1);
    const LpStatus status = iterate(allowed);
    if (status == LpStatus::IterationLimit) {
      solution.status = status;
      solution.iterations = static_cast<int>(total_iterations);
      return solution;
    }
    double infeasibility = 0.0;
    for (std::size_t r = 0; r < m; ++r)
      if (static_cast<std::size_t>(basis[r]) >= art_begin)
        infeasibility += tableau.at(r, rhs_col);
    if (infeasibility > 1e-6) {
      solution.status = LpStatus::Infeasible;
      solution.iterations = static_cast<int>(total_iterations);
      return solution;
    }
  }

  // --- Phase 2: optimize the real objective; artificials may not enter. ---
  std::vector<double> phase2_cost(total, 0.0);
  for (std::size_t j = 0; j < n; ++j)
    phase2_cost[j] = problem.objective(static_cast<int>(j));
  rebuild_cost_row(phase2_cost);
  std::vector<char> allowed(total, 1);
  for (std::size_t j = art_begin; j < total; ++j) allowed[j] = 0;
  const LpStatus status = iterate(allowed);
  solution.iterations = static_cast<int>(total_iterations);
  if (status != LpStatus::Optimal) {
    solution.status = status;
    return solution;
  }

  solution.status = LpStatus::Optimal;
  solution.x.assign(n, 0.0);
  for (std::size_t r = 0; r < m; ++r) {
    const auto b = static_cast<std::size_t>(basis[r]);
    if (b < n) solution.x[b] = tableau.at(r, rhs_col);
  }
  solution.objective = 0.0;
  for (std::size_t j = 0; j < n; ++j)
    solution.objective +=
        problem.objective(static_cast<int>(j)) * solution.x[j];
  return solution;
}

}  // namespace surfnet::routing
