#pragma once

// Debug invariant validators for the routing layer. route_lp and
// route_greedy validate their schedules against the integer program's
// constraints (paper Eqs. (1)-(6)) before returning when SURFNET_CHECKS is
// on; solve_lp validates the basis snapshot it hands back. Tests call the
// validators directly against deliberately corrupted schedules and bases
// to prove each check fires. A broken invariant reports through
// util/contracts.h (abort by default, ContractViolation under the test
// handler).

#include <vector>

#include "netsim/schedule.h"
#include "netsim/topology.h"
#include "routing/formulation.h"
#include "routing/simplex.h"

namespace surfnet::routing {

/// Validate a routing solution against the integer-program constraints:
///   * bookkeeping: request indices in range, positive code counts,
///     per-request scheduled codes <= requested codes (Eq. (2) bounds),
///     requested_codes matches the request list;
///   * initialization/termination (Eq. (3)): every Support (and, when
///     present, Core) path is a src..dst walk over existing fibers;
///   * server coupling (Eq. (4)): every EC server is a server node lying
///     on both paths, in path order, and the EC count respects the
///     Eq. (6) lower bound floor(path noise / omega);
///   * capacity (Eq. (5)): accumulated storage demand per node and
///     entangled-pair demand per fiber stay within the topology's
///     capacities (with the Raw bonus when single-channel).
void check_schedule_invariants(const netsim::Topology& topology,
                               const std::vector<netsim::Request>& requests,
                               const RoutingParams& params,
                               const netsim::Schedule& schedule);

/// Validate one channel path after an online re-route (local recovery or
/// full-re-route escalation, netsim/recovery.h) against the structural
/// routing constraints: the walk still runs over existing in-range fibers
/// from its original source (Eq. (3) structure) and visits the
/// not-yet-passed barrier nodes — remaining
/// EC servers in order, destination last — from position `pos` on
/// (Eqs. (4) coupling and (3) termination). Interior nodes past `pos`
/// must be switches or servers; only the final barrier may be a user.
void check_reroute_invariants(const netsim::Topology& topology,
                              const std::vector<int>& path, int pos,
                              const std::vector<int>& barriers);

/// Validate a simplex basis snapshot against its problem: the shape
/// matches the problem's internal column layout (structural + slack +
/// artificial), the basis holds one distinct in-range column per row, and
/// at-upper flags only sit on nonbasic columns (structural ones must have
/// a finite positive bound to rest on).
void check_simplex_state_invariants(const LpProblem& problem,
                                    const SimplexState& state);

}  // namespace surfnet::routing
