#pragma once

// Incremental warm-started routing for the dynamic-traffic engine.
//
// The offline LP router (routing/lp_router.h) answers "route this batch";
// the IncrementalRouter answers a stream of single-request deltas from
// netsim::run_traffic: admit one request now, release one later, with the
// network state carried across deltas instead of rebuilt per call.
//
// Per-delta cost ladder:
//   * greedy fast path — plan_code over the live CapacityTracker; no LP
//     is touched. Covers the overwhelming majority of admits.
//   * warm LP assist — when greedy fails, the router solves the
//     commodity's standing single-request formulation with the request
//     limit set to the requested codes and capacities set to the
//     tracker's residuals. Each (src, dst) commodity keeps its own
//     formulation and simplex basis: the shape never changes after the
//     commodity is first seen, so every re-solve after the first
//     warm-starts and needs a small fraction of the cold iteration
//     count. (A single standing multi-commodity formulation would grow
//     with every pair ever seen and cold-solve on each growth — O(users^2)
//     commodities make that quadratically more expensive per delta than
//     per-commodity problems of constant shape.)
//   * cold solve — only on a commodity's first assist (shape comes into
//     existence) — never again while the router lives.
//
// Commodities whose endpoints admit no noise-feasible route at all (the
// paper's Eq. (6) thresholds fail on every candidate path even on an
// empty network) are marked infeasible once and rejected in O(1)
// thereafter: their failures are load-independent *within one noise
// profile*, so no amount of released capacity can revive them. A feasible
// commodity that fails the full ladder is marked saturated; further
// greedy-failing admits for it are rejected without an LP solve until a
// release or reoptimize() restores capacity. Admit sources are counted as
// "route.incremental.{greedy,warm,cold}" and every LP solve flows through
// the usual solve_lp observability ("lp.*" counters, lp_solve events).
//
// Adaptive code selection. With RoutingParams::adaptive_code_distance the
// planner picks a distance (3/4/5) per route from its measured residual
// noise; the router then commits capacity for codes of exactly that
// distance — total_qubits_for(d) storage per transit node and
// core_qubits_for(d) pairs per fiber — and records the distance on the
// AdmittedRoute so release() returns exactly what admit() took even if
// the noise profile changed in between.
//
// Noise profile changes. set_noise_scale (the RouteProvider seam driven
// by the traffic engine's fidelity-degradation windows) re-measures every
// fiber as fidelity^scale. All routing decisions (greedy planning, LP
// noise coefficients, candidate vetting, reported route noise) read the
// scaled view; capacity bookkeeping is unaffected. A scale change
// invalidates every standing formulation (their Eq. (6) noise
// coefficients are stale), clears the saturated flags, and re-runs the
// per-commodity noise-feasibility check — so "infeasible, never cleared"
// is scoped to a fixed profile, and the cold-solve-once guarantee becomes
// once per (commodity, profile).

#include <optional>
#include <vector>

#include "netsim/workload.h"
#include "routing/formulation.h"
#include "routing/greedy.h"
#include "routing/simplex.h"

namespace surfnet::routing {

/// netsim::RouteProvider over a live CapacityTracker with warm-started
/// LP assists. Single-threaded; one instance per traffic stream.
class IncrementalRouter final : public netsim::RouteProvider {
 public:
  IncrementalRouter(const netsim::Topology& topology,
                    const RoutingParams& params);

  std::optional<netsim::AdmittedRoute> admit(int src, int dst,
                                             int codes) override;
  void release(const netsim::AdmittedRoute& route) override;
  double reoptimize() override;
  void set_noise_scale(double scale) override;

  const CapacityTracker& tracker() const { return tracker_; }
  double noise_scale() const { return noise_scale_; }

  /// Cumulative solve statistics for benchmarks and tests.
  struct Stats {
    long long greedy_admits = 0;
    long long warm_admits = 0;
    long long cold_admits = 0;
    long long lp_rejects = 0;    ///< LP consulted, no feasible route
    long long saturation_skips = 0;  ///< rejected without consulting the LP
    long long infeasible_skips = 0;  ///< no noise-feasible route exists
    int profile_changes = 0;     ///< set_noise_scale transitions seen
    int cold_solves = 0;
    int warm_solves = 0;
    long cold_iterations = 0;
    long warm_iterations = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  struct Commodity {
    int src = -1;
    int dst = -1;
    bool saturated = false;   ///< full ladder failed; cleared on release
    bool infeasible = false;  ///< no noise-feasible route; never cleared
    /// Standing single-request formulation + warm-start basis. Built on
    /// the commodity's first LP assist, shape-stable forever after.
    std::optional<RoutingFormulation> formulation;
    SimplexState state;
  };

  /// Index of the (src, dst) commodity, creating it (and running the
  /// one-time noise-feasibility check) on first sight.
  int commodity_index(int src, int dst);
  /// Point the formulation's capacities at the tracker's residuals.
  void sync_capacities(RoutingFormulation& formulation);
  /// Solve one commodity's standing formulation with the given request
  /// limit, updating the warm/cold statistics.
  LpSolution solve_commodity(Commodity& commodity, double limit);
  /// LP-assisted admit for one commodity; greedy has already failed.
  std::optional<netsim::AdmittedRoute> lp_admit(int commodity, int codes);
  /// The topology as currently measured: the scaled copy while a
  /// degradation window is open, the real one otherwise.
  const netsim::Topology& routing_topology() const {
    return noise_scale_ == 1.0 ? *topology_ : scaled_;
  }
  /// Per-code demands of a planned distance (0 = configuration default).
  double node_demand_for(int distance) const {
    return distance > 0 ? RoutingParams::total_qubits_for(distance)
                        : params_.total_qubits();
  }
  double pair_demand_for(int distance) const {
    return distance > 0 ? RoutingParams::core_qubits_for(distance)
                        : params_.core_qubits;
  }

  const netsim::Topology* topology_;
  RoutingParams params_;
  CapacityTracker tracker_;
  /// Untouched full-capacity tracker for the one-time per-commodity
  /// noise-feasibility check.
  CapacityTracker pristine_;
  /// Measured view under the current noise scale (valid when
  /// noise_scale_ != 1). Same structure and capacities as *topology_,
  /// only fiber fidelities differ — trackers stay valid across changes.
  netsim::Topology scaled_;
  double noise_scale_ = 1.0;
  std::vector<Commodity> commodities_;
  Stats stats_;
};

}  // namespace surfnet::routing
