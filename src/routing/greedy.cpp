#include "routing/greedy.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "netsim/channel.h"
#include "routing/validate.h"
#include "util/contracts.h"

namespace surfnet::routing {

using netsim::Request;
using netsim::Schedule;
using netsim::ScheduledRequest;
using netsim::Topology;

CapacityTracker::CapacityTracker(const Topology& topology,
                                 const RoutingParams& params)
    : topology_(&topology), params_(params) {
  const double bonus = params.dual_channel ? 1.0 : params.raw_capacity_bonus;
  node_capacity_.resize(static_cast<std::size_t>(topology.num_nodes()));
  for (int v = 0; v < topology.num_nodes(); ++v)
    node_capacity_[static_cast<std::size_t>(v)] =
        bonus * topology.node(v).storage_capacity;
  fiber_pairs_.resize(static_cast<std::size_t>(topology.num_fibers()));
  for (int e = 0; e < topology.num_fibers(); ++e)
    fiber_pairs_[static_cast<std::size_t>(e)] =
        topology.fiber(e).entanglement_capacity;
}

bool CapacityTracker::path_feasible(const std::vector<int>& path) const {
  return path_feasible(path, params_.total_qubits(), params_.core_qubits);
}

bool CapacityTracker::path_feasible(const std::vector<int>& path,
                                    double node_demand,
                                    double pair_demand) const {
  for (std::size_t i = 1; i + 1 < path.size(); ++i)
    if (node_remaining(path[i]) < node_demand) return false;
  if (params_.dual_channel) {
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      const int e = topology_->fiber_between(path[i], path[i + 1]);
      if (e < 0 || fiber_pairs_remaining(e) < pair_demand) return false;
    }
  }
  return true;
}

void CapacityTracker::commit(const std::vector<int>& path) {
  commit(path, params_.total_qubits(), params_.core_qubits);
}

void CapacityTracker::commit(const std::vector<int>& path, double node_demand,
                             double pair_demand) {
  for (std::size_t i = 1; i + 1 < path.size(); ++i)
    node_capacity_[static_cast<std::size_t>(path[i])] -= node_demand;
  if (params_.dual_channel) {
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      const int e = topology_->fiber_between(path[i], path[i + 1]);
      fiber_pairs_[static_cast<std::size_t>(e)] -= pair_demand;
    }
  }
}

void CapacityTracker::release(const std::vector<int>& path) {
  release(path, params_.total_qubits(), params_.core_qubits);
}

void CapacityTracker::release(const std::vector<int>& path,
                              double node_demand, double pair_demand) {
  for (std::size_t i = 1; i + 1 < path.size(); ++i)
    node_capacity_[static_cast<std::size_t>(path[i])] += node_demand;
  if (params_.dual_channel) {
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      const int e = topology_->fiber_between(path[i], path[i + 1]);
      fiber_pairs_[static_cast<std::size_t>(e)] += pair_demand;
    }
  }
}

void CapacityTracker::release_split(const std::vector<int>& core_path,
                                    const std::vector<int>& support_path) {
  const double support_demand =
      params_.dual_channel ? params_.support_qubits : params_.total_qubits();
  for (std::size_t i = 1; i + 1 < support_path.size(); ++i)
    node_capacity_[static_cast<std::size_t>(support_path[i])] +=
        support_demand;
  for (std::size_t i = 1; i + 1 < core_path.size(); ++i)
    node_capacity_[static_cast<std::size_t>(core_path[i])] +=
        params_.core_qubits;
  for (std::size_t i = 0; i + 1 < core_path.size(); ++i) {
    const int e = topology_->fiber_between(core_path[i], core_path[i + 1]);
    fiber_pairs_[static_cast<std::size_t>(e)] += params_.core_qubits;
  }
}

int adaptive_distance(double residual_noise) {
  if (residual_noise <= 0.10) return 3;
  if (residual_noise <= 0.30) return 4;
  return 5;
}

bool CapacityTracker::split_feasible(
    const std::vector<int>& core_path,
    const std::vector<int>& support_path) const {
  // Storage demand per node: Core and Support qubits are counted where
  // each part travels; a node on both paths stores both.
  const double support_demand =
      params_.dual_channel ? params_.support_qubits : params_.total_qubits();
  std::vector<std::pair<int, double>> demand;
  for (std::size_t i = 1; i + 1 < support_path.size(); ++i)
    demand.emplace_back(support_path[i], support_demand);
  for (std::size_t i = 1; i + 1 < core_path.size(); ++i)
    demand.emplace_back(core_path[i],
                        static_cast<double>(params_.core_qubits));
  std::vector<std::pair<int, double>> agg;
  for (const auto& [node, qubits] : demand) {
    bool found = false;
    for (auto& [n2, q2] : agg)
      if (n2 == node) {
        q2 += qubits;
        found = true;
      }
    if (!found) agg.emplace_back(node, qubits);
  }
  for (const auto& [node, qubits] : agg)
    if (node_remaining(node) < qubits) return false;
  for (std::size_t i = 0; i + 1 < core_path.size(); ++i) {
    const int e = topology_->fiber_between(core_path[i], core_path[i + 1]);
    if (e < 0 || fiber_pairs_remaining(e) < params_.core_qubits) return false;
  }
  return true;
}

void CapacityTracker::commit_split(const std::vector<int>& core_path,
                                   const std::vector<int>& support_path) {
  const double support_demand =
      params_.dual_channel ? params_.support_qubits : params_.total_qubits();
  for (std::size_t i = 1; i + 1 < support_path.size(); ++i)
    node_capacity_[static_cast<std::size_t>(support_path[i])] -=
        support_demand;
  for (std::size_t i = 1; i + 1 < core_path.size(); ++i)
    node_capacity_[static_cast<std::size_t>(core_path[i])] -=
        params_.core_qubits;
  for (std::size_t i = 0; i + 1 < core_path.size(); ++i) {
    const int e = topology_->fiber_between(core_path[i], core_path[i + 1]);
    fiber_pairs_[static_cast<std::size_t>(e)] -= params_.core_qubits;
  }
}

namespace {

/// Dijkstra over nodes with remaining capacity, minimizing accumulated
/// noise. Only the request's endpoints may be users.
std::optional<std::vector<int>> min_noise_path(const Topology& topology,
                                               const CapacityTracker& tracker,
                                               const RoutingParams& params,
                                               int src, int dst) {
  const double node_demand = params.total_qubits();
  const double pair_demand = params.core_qubits;
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(static_cast<std::size_t>(topology.num_nodes()),
                           inf);
  std::vector<int> parent(static_cast<std::size_t>(topology.num_nodes()), -1);
  using Item = std::pair<double, int>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  dist[static_cast<std::size_t>(src)] = 0.0;
  heap.push({0.0, src});
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > dist[static_cast<std::size_t>(u)]) continue;
    if (u == dst) break;
    for (int e : topology.incident(u)) {
      const int v = topology.other_end(e, u);
      // Only the destination user is enterable; transit nodes need storage.
      if (v != dst) {
        if (!topology.is_switch_or_server(v)) continue;
        if (tracker.node_remaining(v) < node_demand) continue;
      }
      if (params.dual_channel &&
          tracker.fiber_pairs_remaining(e) < pair_demand)
        continue;
      const double nd = d + topology.fiber_noise(e);
      if (nd < dist[static_cast<std::size_t>(v)]) {
        dist[static_cast<std::size_t>(v)] = nd;
        parent[static_cast<std::size_t>(v)] = u;
        heap.push({nd, v});
      }
    }
  }
  if (dist[static_cast<std::size_t>(dst)] == inf) return std::nullopt;
  std::vector<int> path;
  for (int v = dst; v != -1; v = parent[static_cast<std::size_t>(v)])
    path.push_back(v);
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace

std::optional<PlannedCode> plan_code(const Topology& topology,
                                     const CapacityTracker& tracker,
                                     const RoutingParams& params, int src,
                                     int dst) {
  const auto direct = min_noise_path(topology, tracker, params, src, dst);
  if (direct) {
    if (auto plan = check_path(topology, params, *direct)) return plan;
  }
  // The minimum-noise route may fail the thresholds simply because it
  // passes too few servers: detour through one server — or an ordered pair
  // of servers — (the hierarchical equivalent of the LP routing its flow
  // through EC sites) and keep the lowest-noise feasible composite.
  auto is_simple = [](const std::vector<int>& path) {
    for (std::size_t i = 0; i < path.size(); ++i)
      for (std::size_t j = i + 1; j < path.size(); ++j)
        if (path[i] == path[j]) return false;
    return true;
  };
  auto join = [&](const std::vector<int>& a,
                  const std::vector<int>& b) {
    std::vector<int> composite = a;
    composite.insert(composite.end(), b.begin() + 1, b.end());
    return composite;
  };

  std::optional<PlannedCode> best;
  double best_mu = std::numeric_limits<double>::infinity();
  auto consider = [&](const std::vector<int>& composite) {
    if (!is_simple(composite)) return;
    const double mu = netsim::path_noise(topology, composite);
    if (mu >= best_mu) return;
    if (auto plan = check_path(topology, params, composite)) {
      best = std::move(plan);
      best_mu = mu;
    }
  };

  const auto servers = topology.servers();
  for (const int server : servers) {
    if (server == src || server == dst) continue;
    const auto first = min_noise_path(topology, tracker, params, src, server);
    if (!first) continue;
    const auto second =
        min_noise_path(topology, tracker, params, server, dst);
    if (second) consider(join(*first, *second));
    for (const int other : servers) {
      if (other == server || other == src || other == dst) continue;
      const auto middle =
          min_noise_path(topology, tracker, params, server, other);
      if (!middle) continue;
      const auto last =
          min_noise_path(topology, tracker, params, other, dst);
      if (last) consider(join(join(*first, *middle), *last));
    }
  }
  return best;
}

std::optional<PlannedCode> check_path(const Topology& topology,
                                      const RoutingParams& params,
                                      const std::vector<int>& path_arg) {
  const auto* path = &path_arg;
  const double mu_total = netsim::path_noise(topology, *path);
  std::vector<int> servers_on_path;
  for (std::size_t i = 1; i + 1 < path->size(); ++i)
    if (topology.is_server((*path)[i])) servers_on_path.push_back((*path)[i]);

  // Schedule as many corrections as the lower noise bound allows
  // (Eq. 6: core noise after corrections must stay >= 0).
  const int max_ec = params.ec_reduction > 0.0
                         ? static_cast<int>(std::floor(
                               mu_total / params.ec_reduction))
                         : 0;
  const int ec_count =
      std::min<int>(static_cast<int>(servers_on_path.size()), max_ec);

  // Threshold checks, mirroring the normalized Eq. (6). With adaptive
  // code sizes, the thresholds scale with the code's error tolerance:
  // a larger code survives proportionally more residual noise.
  const double after_ec = params.ec_reduction * ec_count;
  const double core_residual = mu_total - after_ec;
  int distance = 0;
  double threshold_scale = 1.0;
  if (params.adaptive_code_distance) {
    distance = adaptive_distance(core_residual);
    threshold_scale = (distance - 2.0) / 2.0;  // d=3: 0.5, d=4: 1, d=5: 1.5
  }
  const int n = params.core_qubits;
  const int total = params.total_qubits();
  if (params.dual_channel) {
    if (core_residual > threshold_scale * params.core_noise_threshold)
      return std::nullopt;
    const double whole =
        (0.5 * n * mu_total + (total - n) * mu_total) / total - after_ec;
    if (whole > threshold_scale * params.total_noise_threshold)
      return std::nullopt;
  } else {
    const double whole = mu_total - after_ec;
    if (whole > threshold_scale * params.total_noise_threshold)
      return std::nullopt;
  }

  PlannedCode plan;
  plan.path = *path;
  plan.ec_servers.assign(servers_on_path.begin(),
                         servers_on_path.begin() + ec_count);
  plan.distance = distance;
  return plan;
}

Schedule route_greedy(const Topology& topology,
                      const std::vector<Request>& requests,
                      const RoutingParams& params, util::Rng& rng) {
  Schedule schedule;
  for (const auto& r : requests) schedule.requested_codes += r.codes;

  CapacityTracker tracker(topology, params);
  std::vector<std::size_t> order(requests.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  for (std::size_t i = order.size(); i > 1; --i)
    std::swap(order[i - 1], order[rng.below(i)]);

  for (std::size_t k : order) {
    const Request& req = requests[k];
    for (int code = 0; code < req.codes; ++code) {
      const auto plan = plan_code(topology, tracker, params, req.src,
                                  req.dst);
      if (!plan) break;
      const double node_demand =
          plan->distance > 0
              ? RoutingParams::total_qubits_for(plan->distance)
              : params.total_qubits();
      const double pair_demand =
          plan->distance > 0 ? RoutingParams::core_qubits_for(plan->distance)
                             : params.core_qubits;
      if (!tracker.path_feasible(plan->path, node_demand, pair_demand))
        break;
      tracker.commit(plan->path, node_demand, pair_demand);
      // Merge consecutive identical plans of the same request.
      if (!schedule.scheduled.empty()) {
        auto& last = schedule.scheduled.back();
        if (last.request_index == static_cast<int>(k) &&
            last.support_path == plan->path &&
            last.ec_servers == plan->ec_servers &&
            last.code_distance == plan->distance) {
          ++last.codes;
          continue;
        }
      }
      ScheduledRequest s;
      s.request_index = static_cast<int>(k);
      s.codes = 1;
      s.support_path = plan->path;
      if (params.dual_channel) s.core_path = plan->path;
      s.ec_servers = plan->ec_servers;
      s.code_distance = plan->distance;
      schedule.scheduled.push_back(std::move(s));
    }
  }

#if SURFNET_CHECKS
  check_schedule_invariants(topology, requests, params, schedule);
#endif
  return schedule;
}

}  // namespace surfnet::routing
