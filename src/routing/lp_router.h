#pragma once

// The centralized offline scheduler of SurfNet (paper Sec. V-A): build the
// LP relaxation of Eqs. (1)-(6), solve it with the simplex solver, round
// the fractional flows into integral per-code paths by flow decomposition,
// and greedily top the schedule up with any codes the rounding lost.

#include "netsim/schedule.h"
#include "netsim/topology.h"
#include "routing/formulation.h"
#include "util/rng.h"

namespace surfnet::routing {

struct LpRouteResult {
  netsim::Schedule schedule;
  LpStatus status = LpStatus::Infeasible;
  double lp_objective = 0.0;  ///< relaxed optimum (upper-bounds throughput)
};

/// Route with LP relaxation + rounding. `params.dual_channel` selects the
/// SurfNet formulation or the Raw baseline formulation.
LpRouteResult route_lp(const netsim::Topology& topology,
                       const std::vector<netsim::Request>& requests,
                       const RoutingParams& params, util::Rng& rng);

}  // namespace surfnet::routing
