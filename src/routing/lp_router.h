#pragma once

// The centralized offline scheduler of SurfNet (paper Sec. V-A): build the
// LP relaxation of Eqs. (1)-(6), solve it with the simplex solver, round
// the fractional flows into integral per-code paths by flow decomposition,
// and greedily top the schedule up with any codes the rounding lost.
//
// After the first (cold) solve and rounding pass, the router re-solves the
// LP on the residual problem — request limits tightened to the codes still
// unscheduled, capacity right-hand sides to what the committed codes left —
// and rounds again. The problem keeps its shape across these re-solves, so
// the SimplexState saved by the cold solve warm-starts each of them; a warm
// re-solve typically needs a small fraction of the cold iteration count.

#include "netsim/schedule.h"
#include "netsim/topology.h"
#include "routing/formulation.h"
#include "routing/simplex.h"
#include "util/rng.h"

namespace surfnet::routing {

struct LpRouteResult {
  netsim::Schedule schedule;
  LpStatus status = LpStatus::Infeasible;
  double lp_objective = 0.0;  ///< relaxed optimum (upper-bounds throughput)
  int resolves = 0;           ///< warm re-solves after the cold solve
  long cold_iterations = 0;   ///< simplex iterations of the first solve
  long warm_iterations = 0;   ///< total iterations across warm re-solves
};

/// Route with LP relaxation + rounding. `params.dual_channel` selects the
/// SurfNet formulation or the Raw baseline formulation.
LpRouteResult route_lp(const netsim::Topology& topology,
                       const std::vector<netsim::Request>& requests,
                       const RoutingParams& params, util::Rng& rng);

/// As above, but the simplex basis lives in the caller's `state`: a valid
/// state warm-starts the first solve (the dynamic-traffic path hands back
/// the basis of the previous solve over the same formulation shape), and
/// the state left behind warm-starts the caller's next solve. Pass a
/// default-constructed state for a cold solve.
LpRouteResult route_lp(const netsim::Topology& topology,
                       const std::vector<netsim::Request>& requests,
                       const RoutingParams& params, util::Rng& rng,
                       SimplexState& state);

}  // namespace surfnet::routing
