#pragma once

// Sparse revised primal simplex for the SurfNet routing protocol (paper
// Sec. V-A): the integer program of Eqs. (1)-(6) is solved as its LP
// relaxation and rounded, exactly as the paper's evaluation does.
//
// The solver maximizes c^T x subject to mixed <= / >= / = constraints and
// 0 <= x <= u. Unlike the original dense tableau (kept as a reference in
// routing/dense_simplex.h), the constraint matrix stays compressed-sparse
// end to end: rows are emitted in CSR form by the formulation, transposed
// once to CSC inside the solver, and the basis is maintained as a
// product-form (eta-file) factorization with periodic refactorization.
// Box constraints are handled as variable bounds — they never become
// explicit rows — and a Bland's-rule fallback guards against cycling on
// the massively degenerate network-flow LPs the scheduler produces.
//
// Warm starts: a SimplexState snapshots the basis between solves. Passing
// the state of a previous solve of a same-shaped problem (same rows and
// columns; bounds and right-hand sides may differ) restarts from that
// basis, which typically re-optimizes in a handful of pivots. lp_router
// threads one state through its rounding re-solves.

#include <cstdint>
#include <limits>
#include <span>
#include <utility>
#include <vector>

#include "obs/sink.h"
#include "util/contracts.h"

namespace surfnet::routing {

enum class ConstraintType { LessEqual, GreaterEqual, Equal };

/// Builder convenience for tests and hand-written problems; the
/// formulation streams rows directly via begin_constraint / add_term.
struct Constraint {
  std::vector<std::pair<int, double>> terms;  ///< (variable, coefficient)
  ConstraintType type = ConstraintType::LessEqual;
  double rhs = 0.0;
};

/// LP in compressed row form: maximize objective . x subject to the
/// emitted rows and 0 <= x <= upper_bound. Rows are appended term by term
/// with no per-row allocations and no dense materialization anywhere.
class LpProblem {
 public:
  static constexpr double kInfinity = std::numeric_limits<double>::infinity();

  int add_variable(double objective_coeff, double ub = kInfinity) {
    objective_.push_back(objective_coeff);
    upper_bound_.push_back(ub);
    return static_cast<int>(objective_.size()) - 1;
  }

  /// Open a new constraint row; subsequent add_term calls append to it.
  void begin_constraint(ConstraintType type, double rhs) {
    row_type_.push_back(type);
    rhs_.push_back(rhs);
    row_start_.push_back(static_cast<int>(cols_.size()));
  }
  void add_term(int var, double coeff);

  /// Convenience: emit a prebuilt row.
  void add_constraint(const Constraint& c) {
    begin_constraint(c.type, c.rhs);
    for (const auto& [var, coeff] : c.terms) add_term(var, coeff);
  }

  int num_vars() const { return static_cast<int>(objective_.size()); }
  int num_rows() const { return static_cast<int>(rhs_.size()); }
  int num_nonzeros() const { return static_cast<int>(cols_.size()); }

  double objective(int v) const {
    SURFNET_EXPECTS(v >= 0 && static_cast<std::size_t>(v) < objective_.size());
    return objective_[static_cast<std::size_t>(v)];
  }
  double upper_bound(int v) const {
    SURFNET_EXPECTS(v >= 0 &&
                    static_cast<std::size_t>(v) < upper_bound_.size());
    return upper_bound_[static_cast<std::size_t>(v)];
  }
  ConstraintType row_type(int r) const {
    SURFNET_EXPECTS(r >= 0 && static_cast<std::size_t>(r) < row_type_.size());
    return row_type_[static_cast<std::size_t>(r)];
  }
  double rhs(int r) const {
    SURFNET_EXPECTS(r >= 0 && static_cast<std::size_t>(r) < rhs_.size());
    return rhs_[static_cast<std::size_t>(r)];
  }
  std::span<const int> row_cols(int r) const {
    return {cols_.data() + row_begin(r), row_end(r) - row_begin(r)};
  }
  std::span<const double> row_coeffs(int r) const {
    return {coeffs_.data() + row_begin(r), row_end(r) - row_begin(r)};
  }

  /// Re-solve mutators: change bounds / right-hand sides while preserving
  /// the problem shape, so a SimplexState from a previous solve stays
  /// compatible.
  void set_upper_bound(int v, double ub) {
    SURFNET_EXPECTS(v >= 0 &&
                    static_cast<std::size_t>(v) < upper_bound_.size());
    upper_bound_[static_cast<std::size_t>(v)] = ub;
  }
  void set_rhs(int r, double rhs) {
    SURFNET_EXPECTS(r >= 0 && static_cast<std::size_t>(r) < rhs_.size());
    rhs_[static_cast<std::size_t>(r)] = rhs;
  }
  void set_objective(int v, double c) {
    SURFNET_EXPECTS(v >= 0 && static_cast<std::size_t>(v) < objective_.size());
    objective_[static_cast<std::size_t>(v)] = c;
  }

 private:
  std::size_t row_begin(int r) const {
    return static_cast<std::size_t>(row_start_[static_cast<std::size_t>(r)]);
  }
  std::size_t row_end(int r) const {
    const auto next = static_cast<std::size_t>(r) + 1;
    return next < row_start_.size()
               ? static_cast<std::size_t>(row_start_[next])
               : cols_.size();
  }

  std::vector<double> objective_;
  std::vector<double> upper_bound_;
  std::vector<ConstraintType> row_type_;
  std::vector<double> rhs_;
  std::vector<int> row_start_;  ///< first term of each row in cols_/coeffs_
  std::vector<int> cols_;
  std::vector<double> coeffs_;
};

enum class LpStatus { Optimal, Infeasible, Unbounded, IterationLimit };

struct LpSolution {
  LpStatus status = LpStatus::Infeasible;
  std::vector<double> x;
  double objective = 0.0;
  int iterations = 0;        ///< simplex pivots + bound flips, both phases
  int refactorizations = 0;  ///< basis rebuilds (periodic + recovery + final)
  bool warm_started = false; ///< a prior basis was installed successfully
};

/// Reusable basis snapshot for warm-started re-solves. Opaque to callers:
/// default-construct one, thread it through solve_lp calls on same-shaped
/// problems, and clear() it when the problem shape changes.
struct SimplexState {
  std::vector<std::int32_t> basis;     ///< basic column per row
  std::vector<std::uint8_t> at_upper;  ///< nonbasic-at-upper flag per column
  int num_rows = 0;
  int num_cols = 0;  ///< internal columns (structural + slack + artificial)

  bool valid() const { return !basis.empty(); }
  void clear() {
    basis.clear();
    at_upper.clear();
    num_rows = num_cols = 0;
  }
};

/// Solve from scratch (cold start).
LpSolution solve_lp(const LpProblem& problem);

/// Solve reusing `state` when it matches the problem's shape (warm start);
/// the final basis is stored back into `state` either way.
LpSolution solve_lp(const LpProblem& problem, SimplexState& state);

/// Observed solve: additionally times the solve into the sink's metrics
/// ("lp.solve_seconds", counters "lp.solves" / "lp.iterations" /
/// "lp.refactorizations" / "lp.warm_starts") and records one lp_solve
/// trace event. A null sink behaves exactly like the overload above.
LpSolution solve_lp(const LpProblem& problem, SimplexState& state,
                    const obs::Sink& sink);

}  // namespace surfnet::routing
