#pragma once

// Dense two-phase primal simplex solver, written from scratch for the
// SurfNet routing protocol (paper Sec. V-A): the integer program of
// Eqs. (1)-(6) is solved as its LP relaxation and rounded, exactly as the
// paper's evaluation does.
//
// The solver maximizes c^T x subject to mixed <= / >= / = constraints and
// x >= 0 (optional per-variable upper bounds become rows). Phase 1 drives
// artificial variables to zero; phase 2 optimizes the real objective with
// Dantzig pricing and a Bland's-rule fallback for anti-cycling.

#include <limits>
#include <utility>
#include <vector>

namespace surfnet::routing {

enum class ConstraintType { LessEqual, GreaterEqual, Equal };

struct Constraint {
  std::vector<std::pair<int, double>> terms;  ///< (variable, coefficient)
  ConstraintType type = ConstraintType::LessEqual;
  double rhs = 0.0;
};

struct LpProblem {
  int num_vars = 0;
  std::vector<double> objective;  ///< maximize objective . x
  std::vector<Constraint> constraints;
  /// Optional upper bounds (infinity = unbounded); lower bounds are 0.
  std::vector<double> upper_bound;

  int add_variable(double objective_coeff,
                   double ub = std::numeric_limits<double>::infinity()) {
    objective.push_back(objective_coeff);
    upper_bound.push_back(ub);
    return num_vars++;
  }
  void add_constraint(Constraint c) { constraints.push_back(std::move(c)); }
};

enum class LpStatus { Optimal, Infeasible, Unbounded, IterationLimit };

struct LpSolution {
  LpStatus status = LpStatus::Infeasible;
  std::vector<double> x;
  double objective = 0.0;
};

LpSolution solve_lp(const LpProblem& problem);

}  // namespace surfnet::routing
