#pragma once

// LP formulation of the SurfNet routing protocol (paper Sec. V-A,
// Eqs. (1)-(6)). Variables per request k:
//   Y_k      in [0, i_k] : surface codes scheduled,
//   a^k_e    >= 0        : Core qubits routed through directed edge e,
//   b^k_e    >= 0        : Support qubits routed through directed edge e,
//   x^k_r    in [0, i_k] : error corrections scheduled at server r;
// objective max sum_k Y_k; constraints: initialization/termination (3),
// conservation and server coupling (4), storage and entanglement capacity
// (5), and the normalized noise thresholds (6), where the Core noise is
// halved to account for purification and each correction subtracts omega.
//
// With dual_channel = false the same machinery produces the paper's "Raw"
// baseline: no Core variables, every qubit on the plain channel, EC still
// available in servers, and switches get a capacity bonus because they no
// longer prepare entanglement.

#include <vector>

#include "netsim/schedule.h"
#include "netsim/topology.h"
#include "obs/sink.h"
#include "routing/simplex.h"
#include "util/contracts.h"

namespace surfnet::routing {

struct RoutingParams {
  int core_qubits = 7;      ///< n (distance-4 code, paper example)
  int support_qubits = 18;  ///< m
  double ec_reduction = 0.12;         ///< omega
  double core_noise_threshold = 0.16; ///< W_c
  double total_noise_threshold = 0.22;  ///< W
  bool dual_channel = true;             ///< false = Raw baseline
  double raw_capacity_bonus = 1.2;      ///< Raw switches hold more qubits
  /// Secondary objective weight: the LP maximizes sum_k Y_k minus this
  /// weight times the total noise carried by all flows, so that among
  /// maximum-throughput schedules the minimum-noise routing is chosen.
  /// Must stay small enough never to sacrifice a whole code for noise.
  double noise_objective_weight = 0.02;
  /// Adaptive code sizes based on quality of service (paper Sec. VI-C
  /// future direction), supported by the greedy scheduler: clean routes
  /// use a compact distance-3 code, noisy routes escalate to distance 5,
  /// and the noise thresholds scale with the code's error tolerance.
  bool adaptive_code_distance = false;
  /// Observability handle: LP solves report iterations / refactorizations /
  /// warm-start hits into it. Null (the default) disables instrumentation.
  obs::Sink sink{};

  /// Core qubits of the distance-d cross: 2d - 1.
  static int core_qubits_for(int distance) { return 2 * distance - 1; }
  /// Data qubits of the distance-d planar code: d^2 + (d-1)^2.
  static int total_qubits_for(int distance) {
    return distance * distance + (distance - 1) * (distance - 1);
  }

  int total_qubits() const { return core_qubits + support_qubits; }
};

class RoutingFormulation {
 public:
  struct VarIndex {
    int y = -1;
    std::vector<int> a;  ///< per directed edge; -1 = pruned/absent
    std::vector<int> b;  ///< per directed edge; -1 = pruned
    std::vector<int> x;  ///< per server (order of Topology::servers())
  };

  RoutingFormulation(const netsim::Topology& topology,
                     const std::vector<netsim::Request>& requests,
                     const RoutingParams& params);

  const LpProblem& problem() const { return lp_; }
  const RoutingParams& params() const { return params_; }
  const std::vector<int>& servers() const { return servers_; }

  /// Warm re-solve support: tighten request k's schedulable codes or a
  /// shared capacity to its residual amount. Only bounds and right-hand
  /// sides change, so the problem keeps its shape and a SimplexState from
  /// the previous solve remains valid.
  void set_request_limit(int k, double codes) {
    SURFNET_EXPECTS(k >= 0 && static_cast<std::size_t>(k) < vars_.size());
    lp_.set_upper_bound(vars_[static_cast<std::size_t>(k)].y, codes);
  }
  void set_storage_capacity(int node, double capacity);
  void set_entanglement_capacity(int fiber, double capacity);

  /// Row of node's Eq. (5) storage constraint, or -1 when the node has
  /// no storage row (no routable in-edges).
  int storage_row(int node) const {
    SURFNET_EXPECTS(node >= 0 &&
                    static_cast<std::size_t>(node) < storage_row_.size());
    return storage_row_[static_cast<std::size_t>(node)];
  }
  /// Row of the fiber's entanglement-capacity constraint, or -1.
  int entanglement_row(int fiber) const {
    SURFNET_EXPECTS(fiber >= 0 && static_cast<std::size_t>(fiber) <
                                      entanglement_row_.size());
    return entanglement_row_[static_cast<std::size_t>(fiber)];
  }

  int num_requests() const { return static_cast<int>(vars_.size()); }
  const VarIndex& vars(int k) const {
    SURFNET_EXPECTS(k >= 0 && static_cast<std::size_t>(k) < vars_.size());
    return vars_[static_cast<std::size_t>(k)];
  }

  /// Directed edges: 2 per fiber; even ids run a->b, odd ids b->a.
  int num_directed_edges() const { return 2 * topology_->num_fibers(); }
  int edge_fiber(int de) const { return de / 2; }
  int edge_tail(int de) const;
  int edge_head(int de) const;

 private:
  const netsim::Topology* topology_;
  RoutingParams params_;
  std::vector<int> servers_;
  std::vector<VarIndex> vars_;
  std::vector<int> storage_row_;       ///< per node; -1 = no row
  std::vector<int> entanglement_row_;  ///< per fiber; -1 = no row
  LpProblem lp_;

  void build(const std::vector<netsim::Request>& requests);
};

}  // namespace surfnet::routing
