#pragma once

// Greedy, capacity-aware scheduling used three ways:
//   * as the rounding top-up after the LP relaxation (paper Sec. V-A uses
//     "a relaxed Linear Programming version with rounding"),
//   * as the standalone hierarchical scheduler (paper Sec. V-B notes
//     SurfNet can operate without the centralized protocol), and
//   * as the executor for the Raw baseline when configured single-channel.
//
// One code at a time, the scheduler finds the minimum-noise path between
// the request's users through switches/servers with remaining storage (and,
// on the dual channel, remaining entangled pairs), schedules error
// correction at as many on-path servers as the noise budget allows, checks
// the Eq. (6) thresholds, and commits the resources.

#include <optional>

#include "netsim/schedule.h"
#include "netsim/topology.h"
#include "routing/formulation.h"
#include "util/contracts.h"
#include "util/rng.h"

namespace surfnet::routing {

/// Mutable remaining-resource view of a topology.
class CapacityTracker {
 public:
  CapacityTracker(const netsim::Topology& topology,
                  const RoutingParams& params);

  double node_remaining(int node) const {
    SURFNET_EXPECTS(node >= 0 &&
                    static_cast<std::size_t>(node) < node_capacity_.size());
    return node_capacity_[static_cast<std::size_t>(node)];
  }
  double fiber_pairs_remaining(int fiber) const {
    SURFNET_EXPECTS(fiber >= 0 &&
                    static_cast<std::size_t>(fiber) < fiber_pairs_.size());
    return fiber_pairs_[static_cast<std::size_t>(fiber)];
  }

  /// Can one more code travel this path? (storage at every intermediate
  /// node, pairs on every fiber when dual-channel). The overloads with
  /// explicit demands serve codes of non-default distance.
  bool path_feasible(const std::vector<int>& path) const;
  bool path_feasible(const std::vector<int>& path, double node_demand,
                     double pair_demand) const;

  /// Commit one code's resources along the path.
  void commit(const std::vector<int>& path);
  void commit(const std::vector<int>& path, double node_demand,
              double pair_demand);

  /// Return one code's resources: the exact inverse of the matching
  /// commit. The dynamic-traffic path calls this when an admitted request
  /// departs; releasing a path that was never committed corrupts the
  /// tracker (capacities overflow their configured ceilings).
  void release(const std::vector<int>& path);
  void release(const std::vector<int>& path, double node_demand,
               double pair_demand);

  /// Variants for codes whose Core and Support parts take different routes
  /// (LP rounding): Core qubits consume storage and pairs along core_path,
  /// Support qubits consume storage along support_path. core_path may be
  /// empty (Raw).
  bool split_feasible(const std::vector<int>& core_path,
                      const std::vector<int>& support_path) const;
  void commit_split(const std::vector<int>& core_path,
                    const std::vector<int>& support_path);
  void release_split(const std::vector<int>& core_path,
                     const std::vector<int>& support_path);

 private:
  const netsim::Topology* topology_;
  RoutingParams params_;
  std::vector<double> node_capacity_;
  std::vector<double> fiber_pairs_;
};

/// Result of planning a single code.
struct PlannedCode {
  std::vector<int> path;        ///< node sequence src..dst
  std::vector<int> ec_servers;  ///< chosen EC servers, in path order
  /// Code distance chosen for this code (0 = the configuration default;
  /// set when RoutingParams::adaptive_code_distance is enabled).
  int distance = 0;
};

/// Distance selection for the adaptive-code-size extension: the residual
/// noise a route leaves after its corrections decides how much protection
/// the code needs.
int adaptive_distance(double residual_noise);

/// Threshold-check one concrete path against the normalized Eq. (6)
/// bounds: schedules as many EC stops as the noise budget allows and
/// returns the planned code, or nullopt when the residual noise exceeds
/// the thresholds. Capacity is NOT checked here — pair with
/// CapacityTracker::path_feasible. Used by plan_code internally and by
/// the incremental router to vet LP-decomposed candidate paths.
std::optional<PlannedCode> check_path(const netsim::Topology& topology,
                                      const RoutingParams& params,
                                      const std::vector<int>& path);

/// Find the minimum-noise feasible path for one code of (src, dst), or
/// nullopt when no path satisfies capacity and the noise thresholds.
std::optional<PlannedCode> plan_code(const netsim::Topology& topology,
                                     const CapacityTracker& tracker,
                                     const RoutingParams& params, int src,
                                     int dst);

/// Schedule every request greedily (requests visited in random order, codes
/// one by one). Both paths of a dual-channel request use the same route.
netsim::Schedule route_greedy(const netsim::Topology& topology,
                              const std::vector<netsim::Request>& requests,
                              const RoutingParams& params, util::Rng& rng);

}  // namespace surfnet::routing
