#pragma once

// Unified routing facade: one entry point over the LP relaxation router
// (routing/lp_router.h) and the greedy hierarchical scheduler
// (routing/greedy.h), returning one RouteResult that owns the simplex
// warm-start handle.
//
// route() with RouteStrategy::Auto reproduces the historical core-layer
// seam exactly: solve the LP relaxation; when it cannot be solved
// (infeasible, unbounded, or iteration-limited), count a
// "route.greedy_fallbacks" metric and fall back to the standalone greedy
// scheduler instead of executing nothing. Lp and Greedy force one arm.
//
// The returned RouteResult carries the SimplexState the LP solve left
// behind; passing the same result's state pointer back through
// RouteOptions::warm_state warm-starts the next route() over an
// unchanged formulation shape (same topology and request list lengths) —
// the batch-level analogue of the incremental router's standing basis.
//
// route_lp() and route_greedy() remain available as the underlying
// implementations for one more release; new call sites should prefer
// route().

#include "netsim/schedule.h"
#include "netsim/topology.h"
#include "routing/formulation.h"
#include "routing/lp_router.h"
#include "routing/simplex.h"
#include "util/rng.h"

namespace surfnet::routing {

enum class RouteStrategy : std::uint8_t {
  Auto,    ///< LP first, greedy fallback when the LP cannot be solved
  Lp,      ///< LP relaxation + rounding only
  Greedy,  ///< standalone greedy hierarchical scheduler only
};

struct RouteOptions {
  RouteStrategy strategy = RouteStrategy::Auto;
  /// Optional external warm-start basis: when non-null, the LP solve
  /// starts from it and leaves its final basis there (RouteResult::state
  /// then holds a copy). Null = self-contained cold solve.
  SimplexState* warm_state = nullptr;
};

struct RouteResult {
  netsim::Schedule schedule;
  LpStatus status = LpStatus::Infeasible;
  double lp_objective = 0.0;  ///< relaxed optimum (0 on the greedy arm)
  int resolves = 0;           ///< warm re-solves after the first solve
  long cold_iterations = 0;
  long warm_iterations = 0;
  bool used_lp = false;           ///< the schedule came from the LP arm
  bool greedy_fallback = false;   ///< Auto fell back to greedy
  /// Warm-start handle of the LP solve (invalid on the greedy arm); feed
  /// it back via RouteOptions::warm_state to warm-start the next call.
  SimplexState state;
};

/// Route `requests` over `topology` with the selected strategy.
RouteResult route(const netsim::Topology& topology,
                  const std::vector<netsim::Request>& requests,
                  const RoutingParams& params, util::Rng& rng,
                  const RouteOptions& options = {});

}  // namespace surfnet::routing
