#include "netsim/faults.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace surfnet::netsim {

std::string_view to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::FiberCut: return "fiber_cut";
    case FaultKind::NodeOutage: return "node_outage";
    case FaultKind::EntanglementDegradation: return "degradation";
    case FaultKind::DecodeStall: return "decode_stall";
  }
  return "?";
}

FaultPlan FaultPlan::fiber_noise(double rate, int duration) {
  FaultPlan plan;
  plan.stochastic.fiber_cut_rate = rate;
  plan.stochastic.fiber_cut_duration = duration;
  return plan;
}

namespace {

[[noreturn]] void bad_plan(const std::string& what) {
  throw std::invalid_argument("FaultPlan: " + what);
}

void validate_spec(const StochasticFaults& s) {
  for (const double rate :
       {s.fiber_cut_rate, s.correlated_cut_rate, s.node_outage_rate,
        s.degradation_rate, s.decode_stall_rate})
    if (rate < 0.0 || rate > 1.0) bad_plan("stochastic rate outside [0, 1]");
  for (const int d :
       {s.fiber_cut_duration, s.correlated_cut_duration,
        s.node_outage_duration, s.degradation_duration,
        s.decode_stall_duration})
    if (d <= 0) bad_plan("stochastic fault duration must be positive");
  if (s.correlated_group_size < 1)
    bad_plan("correlated group size must be >= 1");
  if (s.degradation_factor < 0.0 || s.degradation_factor > 1.0)
    bad_plan("degradation factor outside [0, 1]");
}

}  // namespace

FaultInjector::FaultInjector(const Topology& topology, const FaultPlan& plan)
    : topology_(&topology),
      plan_(plan),
      fiber_down_until_(static_cast<std::size_t>(topology.num_fibers()), 0),
      node_down_until_(static_cast<std::size_t>(topology.num_nodes()), 0),
      degrade_until_(static_cast<std::size_t>(topology.num_fibers()), 0),
      degrade_factor_(static_cast<std::size_t>(topology.num_fibers()), 1.0) {
  validate_spec(plan_.stochastic);
  for (const auto& event : plan_.scripted) {
    if (event.slot < 0) bad_plan("scripted event at negative slot");
    if (event.duration <= 0) bad_plan("scripted event duration must be >= 1");
    switch (event.kind) {
      case FaultKind::FiberCut:
      case FaultKind::EntanglementDegradation:
        if (event.target < 0 || event.target >= topology.num_fibers())
          bad_plan("scripted event targets fiber " +
                   std::to_string(event.target) + " outside [0, " +
                   std::to_string(topology.num_fibers()) + ")");
        break;
      case FaultKind::NodeOutage:
        if (event.target < 0 || event.target >= topology.num_nodes())
          bad_plan("scripted event targets node " +
                   std::to_string(event.target) + " outside [0, " +
                   std::to_string(topology.num_nodes()) + ")");
        break;
      case FaultKind::DecodeStall:
        break;
    }
    if (event.kind == FaultKind::EntanglementDegradation &&
        (event.magnitude < 0.0 || event.magnitude > 1.0))
      bad_plan("degradation magnitude outside [0, 1]");
  }
  std::stable_sort(
      plan_.scripted.begin(), plan_.scripted.end(),
      [](const FaultEvent& a, const FaultEvent& b) { return a.slot < b.slot; });
  inert_ = plan_.empty();
}

void FaultInjector::cut_fiber(int fiber, int slot, int duration,
                              const obs::Sink& sink) {
  auto& until = fiber_down_until_[static_cast<std::size_t>(fiber)];
  until = std::max(until, slot + duration);
  if (sink.metrics) sink.metrics->count("sim.fiber_failures");
  if (sink.trace)
    sink.trace->record(obs::Event::fiber_down(slot, fiber, until));
}

bool FaultInjector::degradations_possible() const {
  if (plan_.stochastic.degradation_rate > 0.0) return true;
  for (const auto& event : plan_.scripted)
    if (event.kind == FaultKind::EntanglementDegradation) return true;
  return false;
}

void FaultInjector::apply(const FaultEvent& event, int slot,
                          const obs::Sink& sink,
                          RateChangeListener* listener) {
  switch (event.kind) {
    case FaultKind::FiberCut:
      cut_fiber(event.target, slot, event.duration, sink);
      break;
    case FaultKind::NodeOutage: {
      auto& until = node_down_until_[static_cast<std::size_t>(event.target)];
      until = std::max(until, slot + event.duration);
      if (sink.metrics) sink.metrics->count("sim.node_outages");
      if (sink.trace)
        sink.trace->record(obs::Event::node_down(slot, event.target, until));
      break;
    }
    case FaultKind::EntanglementDegradation: {
      const auto e = static_cast<std::size_t>(event.target);
      if (listener) listener->before_rate_change(event.target, slot);
      degrade_until_[e] = std::max(degrade_until_[e], slot + event.duration);
      degrade_factor_[e] = event.magnitude;
      if (sink.metrics) sink.metrics->count("sim.degradations");
      if (sink.trace)
        sink.trace->record(obs::Event::degraded(slot, event.target,
                                                degrade_until_[e],
                                                event.magnitude));
      break;
    }
    case FaultKind::DecodeStall:
      stall_until_ = std::max(stall_until_, slot + event.duration);
      if (sink.metrics) sink.metrics->count("sim.decode_stalls");
      if (sink.trace)
        sink.trace->record(obs::Event::decode_stall(slot, stall_until_));
      break;
  }
}

void FaultInjector::begin_slot(int slot, util::Rng& rng,
                               const obs::Sink& sink,
                               RateChangeListener* listener) {
  if (inert_) return;

  // Scripted events first — they consume no random variates.
  while (next_scripted_ < plan_.scripted.size() &&
         plan_.scripted[next_scripted_].slot <= slot)
    apply(plan_.scripted[next_scripted_++], slot, sink, listener);

  const StochasticFaults& s = plan_.stochastic;

  // Independent per-fiber cuts. The loop shape (one Bernoulli draw per
  // *live* fiber) matches the legacy fiber_failure_rate path exactly, so
  // plans built by FaultPlan::fiber_noise replay pre-plan runs bitwise.
  if (s.fiber_cut_rate > 0.0) {
    for (int e = 0; e < topology_->num_fibers(); ++e)
      if (!fiber_down(e, slot) && rng.bernoulli(s.fiber_cut_rate))
        cut_fiber(e, slot, s.fiber_cut_duration, sink);
  }

  // Correlated multi-link failure: one seed fiber plus neighbors sharing
  // an endpoint, in deterministic incidence order.
  if (s.correlated_cut_rate > 0.0 && rng.bernoulli(s.correlated_cut_rate)) {
    const int seed = static_cast<int>(
        rng.below(static_cast<std::uint64_t>(topology_->num_fibers())));
    cut_fiber(seed, slot, s.correlated_cut_duration, sink);
    int cut = 1;
    const auto& f = topology_->fiber(seed);
    for (const int endpoint : {f.a, f.b}) {
      for (const int e : topology_->incident(endpoint)) {
        if (cut >= s.correlated_group_size) break;
        if (e == seed) continue;
        cut_fiber(e, slot, s.correlated_cut_duration, sink);
        ++cut;
      }
      if (cut >= s.correlated_group_size) break;
    }
  }

  // Switch/server outages (users never fail).
  if (s.node_outage_rate > 0.0) {
    for (int v = 0; v < topology_->num_nodes(); ++v) {
      if (topology_->is_user(v) || node_down(v, slot)) continue;
      if (!rng.bernoulli(s.node_outage_rate)) continue;
      auto& until = node_down_until_[static_cast<std::size_t>(v)];
      until = slot + s.node_outage_duration;
      if (sink.metrics) sink.metrics->count("sim.node_outages");
      if (sink.trace)
        sink.trace->record(obs::Event::node_down(slot, v, until));
    }
  }

  // Entanglement-source degradation on one random fiber.
  if (s.degradation_rate > 0.0 && rng.bernoulli(s.degradation_rate)) {
    const auto e = static_cast<std::size_t>(
        rng.below(static_cast<std::uint64_t>(topology_->num_fibers())));
    if (listener) listener->before_rate_change(static_cast<int>(e), slot);
    degrade_until_[e] =
        std::max(degrade_until_[e], slot + s.degradation_duration);
    degrade_factor_[e] = s.degradation_factor;
    if (sink.metrics) sink.metrics->count("sim.degradations");
    if (sink.trace)
      sink.trace->record(obs::Event::degraded(
          slot, static_cast<int>(e), degrade_until_[e],
          s.degradation_factor));
  }

  // Network-wide decode-latency spikes.
  if (s.decode_stall_rate > 0.0 && !decode_stalled(slot) &&
      rng.bernoulli(s.decode_stall_rate)) {
    stall_until_ = slot + s.decode_stall_duration;
    if (sink.metrics) sink.metrics->count("sim.decode_stalls");
    if (sink.trace)
      sink.trace->record(obs::Event::decode_stall(slot, stall_until_));
  }
}

}  // namespace surfnet::netsim
