#pragma once

// Internal machinery shared by the two surface-code simulation engines
// (the slot engine in simulator.cpp and the event engine in
// event_simulator.cpp). NOT part of the public netsim API — include only
// from netsim/*.cpp and tests that deliberately reach into engine
// internals.
//
// Everything here is engine-agnostic: static request validation, the
// in-flight code state, the decode/correction step, the recovery actions,
// and the entanglement-rate buckets. Both engines instantiate
// process_code() for their per-slot per-code work, so the scheduling
// layers can differ while the observable behavior of one processed code —
// including its RNG draw order and its sink events — cannot diverge.

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "decoder/code_trial.h"
#include "decoder/decoder.h"
#include "netsim/channel.h"
#include "netsim/faults.h"
#include "netsim/recovery.h"
#include "netsim/simulator.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "qec/core_support.h"
#include "qec/lattice.h"
#include "qec/syndrome.h"

namespace surfnet::netsim::detail {

/// Lattice + Core/Support partition for one code distance, shared across
/// all codes of that distance in a run.
struct CodeGeometry {
  qec::SurfaceCodeLattice lattice;
  qec::CoreSupportPartition partition;
  explicit CodeGeometry(int distance)
      : lattice(distance), partition(qec::make_core_support(lattice)) {}
};

/// Static, validated view of one scheduled request.
struct RequestPlan {
  const ScheduledRequest* sched = nullptr;
  bool raw = false;  ///< no Core path: everything rides the plain channel
  struct Barrier {
    int node = -1;
    bool is_ec = false;
  };
  std::vector<Barrier> barriers;  ///< EC servers in order, then destination
  const CodeGeometry* geometry = nullptr;
};

inline void validate_path(const Topology& topology,
                          const std::vector<int>& path) {
  for (std::size_t i = 0; i + 1 < path.size(); ++i)
    if (topology.fiber_between(path[i], path[i + 1]) < 0)
      throw std::invalid_argument("schedule path has non-adjacent nodes");
}

inline void require_in_order(const std::vector<int>& path,
                             const std::vector<int>& nodes) {
  std::size_t cursor = 0;
  for (int node : nodes) {
    while (cursor < path.size() && path[cursor] != node) ++cursor;
    if (cursor == path.size())
      throw std::invalid_argument("EC server not on scheduled path");
    ++cursor;
  }
}

inline RequestPlan make_plan(const Topology& topology,
                             const ScheduledRequest& s,
                             const CodeGeometry& geometry) {
  RequestPlan plan;
  plan.sched = &s;
  plan.raw = s.core_path.empty();
  plan.geometry = &geometry;
  if (s.support_path.size() < 2)
    throw std::invalid_argument("scheduled request without a support path");
  validate_path(topology, s.support_path);
  require_in_order(s.support_path, s.ec_servers);
  if (!plan.raw) {
    validate_path(topology, s.core_path);
    require_in_order(s.core_path, s.ec_servers);
    if (s.core_path.front() != s.support_path.front() ||
        s.core_path.back() != s.support_path.back())
      throw std::invalid_argument("core/support paths disagree on endpoints");
  }
  for (int server : s.ec_servers) plan.barriers.push_back({server, true});
  plan.barriers.push_back({s.support_path.back(), false});
  return plan;
}

/// One in-flight surface code. Paths are per-code copies so that online
/// recovery (paper Sec. V-B) can reroute around failed fibers.
struct ActiveCode {
  std::vector<int> s_path;
  std::vector<int> c_path;
  int s_pos = 0;
  int c_pos = 0;
  int s_target = -1;  ///< index of the current barrier node in s_path
  int c_target = -1;
  int barrier = 0;
  double acc_support_mu = 0.0;  ///< noise since the last correction
  double acc_core_mu = 0.0;
  int acc_support_hops = 0;
  int jumps_since_ec = 0;
  int start_slot = 0;
  int cooldown = 0;
  int corrections = 0;
  int swap_attempts = 0;    ///< consecutive failed segment-jump swaps
  int failed_reroutes = 0;  ///< consecutive failed local recoveries
  bool corrupted = false;
};

inline int find_on_path(const std::vector<int>& path, int node, int from) {
  for (std::size_t i = static_cast<std::size_t>(from); i < path.size(); ++i)
    if (path[i] == node) return static_cast<int>(i);
  return -1;
}

/// Bucket bounds for the per-slot pool-total histogram ("sim.pool_total").
inline const std::vector<double>& pool_bounds() {
  static const std::vector<double> bounds{0,  10,  25,  50,   100,
                                          250, 500, 1000, 2500, 5000};
  return bounds;
}

/// Bucket bounds for delivered-code latency ("sim.latency_slots").
inline const std::vector<double>& latency_bounds() {
  static const std::vector<double> bounds{5,   10,  20,  40,   80,
                                          160, 320, 640, 1280, 2560};
  return bounds;
}

/// Point the code's per-channel cursors at the current barrier node.
inline void retarget(const RequestPlan& plan, ActiveCode& code) {
  const int node = plan.barriers[static_cast<std::size_t>(code.barrier)].node;
  code.s_target = find_on_path(code.s_path, node, code.s_pos);
  if (code.s_target < 0)
    throw std::logic_error("barrier node lost from support path");
  if (!plan.raw) {
    code.c_target = find_on_path(code.c_path, node, code.c_pos);
    if (code.c_target < 0)
      throw std::logic_error("barrier node lost from core path");
  }
}

inline ActiveCode launch(const RequestPlan& plan, int slot) {
  ActiveCode code;
  code.s_path = plan.sched->support_path;
  code.c_path = plan.sched->core_path;
  code.start_slot = slot;
  retarget(plan, code);
  return code;
}

/// Escalation: replace the remainder of one channel's route with a fresh
/// plan through every remaining EC barrier to the destination
/// (netsim/recovery.h). Emits an escalate event whether or not a live
/// route exists; on success both channel targets are recomputed.
inline void escalate(const Topology& topology, const FaultInjector& injector,
                     const obs::Sink& sink, const RequestPlan& plan,
                     ActiveCode& code, bool core_channel, int slot) {
  std::vector<int> waypoints;
  for (std::size_t b = static_cast<std::size_t>(code.barrier);
       b < plan.barriers.size(); ++b)
    waypoints.push_back(plan.barriers[b].node);
  auto& path = core_channel ? code.c_path : code.s_path;
  const int pos = core_channel ? code.c_pos : code.s_pos;
  const bool ok = replan_route(topology, injector, slot, path, pos, waypoints);
  if (sink.metrics) sink.metrics->count("sim.escalations");
  if (sink.trace)
    sink.trace->record(obs::Event::escalate(slot, plan.sched->request_index,
                                            core_channel, ok));
  if (ok) retarget(plan, code);
}

/// A local recovery that found no live detour: escalate to a full
/// re-route after the policy's threshold of consecutive failures.
inline void reroute_failed(const Topology& topology,
                           const FaultInjector& injector,
                           const RecoveryPolicy& policy, const obs::Sink& sink,
                           const RequestPlan& plan, ActiveCode& code,
                           bool core_channel, int slot) {
  ++code.failed_reroutes;
  if (policy.escalate_after_reroutes > 0 &&
      code.failed_reroutes >= policy.escalate_after_reroutes) {
    escalate(topology, injector, sink, plan, code, core_channel, slot);
    code.failed_reroutes = 0;
  }
}

/// Decode over the noise accumulated since the last correction. The
/// tracing path samples and decodes explicitly so that it can report
/// erasure and syndrome counts; it draws the same random-variate sequence
/// as run_code_trial, so traced and untraced runs stay bitwise-identical.
inline void run_correction(const RequestPlan& plan, ActiveCode& code, int slot,
                           int node, bool is_ec,
                           const SimulationParams& params,
                           const decoder::Decoder& decoder, util::Rng& rng) {
  const obs::Sink& sink = params.sink;
  const auto& geometry = *plan.geometry;
  const double support_pauli =
      pauli_rate_of_noise(params.noise_scale * code.acc_support_mu);
  const double support_erasure =
      erasure_rate(params.loss_per_hop, code.acc_support_hops);
  // Purification across the entanglement-based channel suppresses the
  // Core noise (paper Sec. V-A); teleported qubits are never lost in
  // transit, but every teleportation event adds un-purifiable operation
  // noise that the surface code — unlike a bare qubit — can correct.
  const double op_mu =
      -std::log(1.0 - params.teleport_op_noise) * code.jumps_since_ec;
  const double core_pauli = pauli_rate_of_noise(
      params.purification_factor * params.noise_scale * code.acc_core_mu +
      op_mu);

  std::vector<qec::QubitNoise> rates(
      static_cast<std::size_t>(geometry.lattice.num_data_qubits()));
  for (int q = 0; q < geometry.lattice.num_data_qubits(); ++q) {
    const bool core =
        !plan.raw && geometry.partition.is_core[static_cast<std::size_t>(q)];
    rates[static_cast<std::size_t>(q)] =
        core ? qec::QubitNoise{core_pauli, 0.0}
             : qec::QubitNoise{support_pauli, support_erasure};
  }
  const qec::NoiseProfile profile{std::move(rates)};
  bool success;
  if (sink.trace) {
    const auto sample = qec::sample_errors(profile, params.channel, rng);
    const auto prior = profile.component_error_prob(params.channel);
    success = decoder::decode_sample(geometry.lattice, sample, prior, decoder)
                  .success();
    int erasures = 0;
    for (const char e : sample.erased) erasures += e ? 1 : 0;
    int syndromes = 0;
    for (const auto kind : {qec::GraphKind::Z, qec::GraphKind::X}) {
      const auto flips = qec::edge_flips(geometry.lattice, kind, sample.error);
      const auto bitmap =
          qec::syndrome_bitmap(geometry.lattice.graph(kind), flips);
      for (const char s : bitmap) syndromes += s ? 1 : 0;
    }
    sink.trace->record(obs::Event::decode(slot, plan.sched->request_index,
                                          node, is_ec, erasures, syndromes,
                                          !success));
  } else {
    success = decoder::run_code_trial(geometry.lattice, profile,
                                      params.channel, decoder, rng)
                  .success();
  }
  if (sink.metrics) {
    sink.metrics->count("sim.decodes");
    if (!success) sink.metrics->count("sim.decode_logical_errors");
  }
  if (!success) code.corrupted = true;
  ++code.corrections;
  code.acc_support_mu = 0.0;
  code.acc_core_mu = 0.0;
  code.acc_support_hops = 0;
  code.jumps_since_ec = 0;
}

/// Per-run fiber→rate buckets for the entanglement sources: capacities and
/// the whole/fractional split of the base rate are invariant across slots,
/// so they are derived once instead of per fiber per slot; only runs whose
/// fault plan can degrade a source re-derive the per-fiber rate each slot.
/// advance() draws the exact legacy random-variate sequence (one Bernoulli
/// per fiber with a fractional current rate, in fiber order).
class EntanglementRates {
 public:
  EntanglementRates(const Topology& topology, const SimulationParams& params,
                    const FaultInjector& injector)
      : base_rate_(params.entanglement_rate),
        base_whole_(static_cast<int>(params.entanglement_rate)),
        base_frac_(params.entanglement_rate - base_whole_),
        degradable_(injector.degradations_possible()) {
    caps_.reserve(static_cast<std::size_t>(topology.num_fibers()));
    for (int e = 0; e < topology.num_fibers(); ++e)
      caps_.push_back(topology.fiber(e).entanglement_capacity);
  }

  double base_rate() const { return base_rate_; }
  int base_whole() const { return base_whole_; }
  double base_frac() const { return base_frac_; }
  bool degradable() const { return degradable_; }
  int cap(int fiber) const {
    return caps_[static_cast<std::size_t>(fiber)];
  }

  /// Current rate of one fiber, split as whole + frac (frac in [0, 1)).
  double rate_at(int fiber, int slot, const FaultInjector& injector) const {
    return degradable_ ? base_rate_ * injector.entanglement_factor(fiber, slot)
                       : base_rate_;
  }

  /// Advance every pool by one slot of generation (the per-slot sweep of
  /// the slot engine). Bitwise-identical to the historical per-slot loop.
  void advance(std::vector<int>& pairs, const FaultInjector& injector,
               int slot, util::Rng& rng) const {
    if (!degradable_ && base_frac_ <= 0.0) {
      for (std::size_t e = 0; e < pairs.size(); ++e)
        pairs[e] = std::min(caps_[e], pairs[e] + base_whole_);
      return;
    }
    for (std::size_t e = 0; e < pairs.size(); ++e) {
      const double rate = rate_at(static_cast<int>(e), slot, injector);
      const int whole = static_cast<int>(rate);
      const double frac = rate - whole;
      const int gain = whole + ((frac > 0.0 && rng.bernoulli(frac)) ? 1 : 0);
      pairs[e] = std::min(caps_[e], pairs[e] + gain);
    }
  }

 private:
  double base_rate_;
  int base_whole_;
  double base_frac_;
  bool degradable_;
  std::vector<int> caps_;
};

/// Per-slot pool snapshot for the sink (totals histogram + pool event).
inline void emit_pool_snapshot(const std::vector<int>& pairs, int slot,
                               const obs::Sink& sink) {
  if (!sink.enabled() || pairs.empty()) return;
  int total = 0;
  int min_level = pairs[0];
  for (const int p : pairs) {
    total += p;
    min_level = std::min(min_level, p);
  }
  if (sink.metrics)
    sink.metrics->observe("sim.pool_total", total, pool_bounds());
  if (sink.trace) sink.trace->record(obs::Event::pool(slot, total, min_level));
}

/// What one process_code() invocation did to the code.
enum class CodeStep {
  InFlight,  ///< still active next slot
  Finished,  ///< delivered or timed out; a CodeRecord was appended
};

/// Side facts the event engine needs for its wake computation; the slot
/// engine passes nullptr. Recording these changes no behavior.
struct StepFlags {
  bool support_reroute_failed = false;  ///< blocked + local recovery failed
  bool core_reroute_failed = false;
};

/// One code's work in one slot: the exact per-code body of the slot
/// engine's service loop (timeout budget, cooldown, Support hop, Core
/// segment jump, barrier decode). `Pool` provides `int level(int fiber)`
/// and `void consume(int fiber, int n)` over the prepared-pair inventory;
/// both engines instantiate this template, so per-code behavior — RNG
/// draw order included — cannot diverge between them.
template <typename Pool>
CodeStep process_code(const Topology& topology, const FaultInjector& injector,
                      const RecoveryPolicy& policy,
                      const SimulationParams& params,
                      const decoder::Decoder& decoder, const RequestPlan& plan,
                      ActiveCode& code, int slot, Pool& pool,
                      SimulationResult& result, util::Rng& rng,
                      StepFlags* flags = nullptr) {
  const obs::Sink& sink = params.sink;
  // Per-code timeout budget: a starved code is abandoned individually
  // instead of pinning its request to the end of the run.
  if (policy.code_timeout_slots > 0 &&
      slot - code.start_slot >= policy.code_timeout_slots) {
    const int slots = slot - code.start_slot;
    result.codes.push_back({plan.sched->request_index, slots, code.corrections,
                            CodeOutcome::TimedOut});
    if (sink.metrics) sink.metrics->count("sim.timeouts");
    if (sink.trace)
      sink.trace->record(
          obs::Event::timeout(slot, plan.sched->request_index, slots));
    return CodeStep::Finished;
  }
  if (code.cooldown > 0) {
    --code.cooldown;
    return CodeStep::InFlight;
  }
  const auto& barrier = plan.barriers[static_cast<std::size_t>(code.barrier)];

  // Plain channel: the Support part advances one fiber per slot; a
  // failed fiber or dead next node triggers a local recovery path (or
  // the photons are held in error-mitigation circuits until the route
  // heals).
  if (code.s_pos < code.s_target) {
    const int next = code.s_path[static_cast<std::size_t>(code.s_pos) + 1];
    const int e = topology.fiber_between(
        code.s_path[static_cast<std::size_t>(code.s_pos)], next);
    if (!injector.fiber_down(e, slot) && !injector.node_down(next, slot)) {
      ++code.s_pos;
      code.acc_support_mu += topology.fiber_noise(e);
      ++code.acc_support_hops;
    } else if (policy.local_reroute) {
      if (local_reroute(topology, injector, slot, code.s_path, code.s_pos,
                        barrier.node)) {
        code.s_target = find_on_path(code.s_path, barrier.node, code.s_pos);
        code.failed_reroutes = 0;
        if (sink.metrics) sink.metrics->count("sim.recoveries");
        if (sink.trace)
          sink.trace->record(obs::Event::recovery(
              slot, plan.sched->request_index, /*core_channel=*/false));
      } else {
        reroute_failed(topology, injector, policy, sink, plan, code,
                       /*core_channel=*/false, slot);
        if (flags) flags->support_reroute_failed = true;
      }
    }
  }

  // Entanglement-based channel: opportunistic movement over up to
  // `opportunistic_segment` fibers once every fiber of the segment is
  // alive and holds enough prepared pairs.
  if (!plan.raw && code.c_pos < code.c_target) {
    const int n_core = plan.geometry->partition.num_core;
    const int remaining = code.c_target - code.c_pos;
    const int segment = std::min(params.opportunistic_segment, remaining);
    bool ready = true;
    bool broken = false;
    for (int h = 0; h < segment; ++h) {
      const int e = topology.fiber_between(
          code.c_path[static_cast<std::size_t>(code.c_pos + h)],
          code.c_path[static_cast<std::size_t>(code.c_pos + h + 1)]);
      if (injector.fiber_down(e, slot) ||
          injector.node_down(
              code.c_path[static_cast<std::size_t>(code.c_pos + h + 1)], slot))
        broken = true;
      if (pool.level(e) < n_core) ready = false;
    }
    if (broken) {
      if (policy.local_reroute) {
        if (local_reroute(topology, injector, slot, code.c_path, code.c_pos,
                          barrier.node)) {
          code.c_target = find_on_path(code.c_path, barrier.node, code.c_pos);
          code.failed_reroutes = 0;
          if (sink.metrics) sink.metrics->count("sim.recoveries");
          if (sink.trace)
            sink.trace->record(obs::Event::recovery(
                slot, plan.sched->request_index, /*core_channel=*/true));
        } else {
          reroute_failed(topology, injector, policy, sink, plan, code,
                         /*core_channel=*/true, slot);
          if (flags) flags->core_reroute_failed = true;
        }
      }
    } else if (ready) {
      double segment_mu = 0.0;
      for (int h = 0; h < segment; ++h) {
        const int e = topology.fiber_between(
            code.c_path[static_cast<std::size_t>(code.c_pos + h)],
            code.c_path[static_cast<std::size_t>(code.c_pos + h + 1)]);
        pool.consume(e, n_core);
        segment_mu += topology.fiber_noise(e);
      }
      // Entanglement swapping and teleportation are probabilistic; a
      // failed attempt wastes the consumed pairs.
      const bool success =
          params.swap_success >= 1.0 ||
          rng.bernoulli(std::pow(params.swap_success, segment));
      if (sink.metrics) {
        sink.metrics->count("sim.segment_jumps");
        if (!success) sink.metrics->count("sim.segment_jump_failures");
      }
      if (sink.trace)
        sink.trace->record(obs::Event::segment_jump(
            slot, plan.sched->request_index,
            code.c_path[static_cast<std::size_t>(code.c_pos)],
            code.c_path[static_cast<std::size_t>(code.c_pos + segment)],
            segment, success));
      if (success) {
        code.c_pos += segment;
        code.acc_core_mu += segment_mu;
        ++code.jumps_since_ec;
        code.swap_attempts = 0;
      } else if (policy.max_swap_retries > 0) {
        // Bounded retries: back off exponentially instead of hammering
        // the starved pools; past the budget, escalate to a full
        // re-route.
        ++code.swap_attempts;
        if (code.swap_attempts > policy.max_swap_retries) {
          escalate(topology, injector, sink, plan, code,
                   /*core_channel=*/true, slot);
          code.swap_attempts = 0;
        } else {
          const int backoff = policy.backoff_slots(code.swap_attempts);
          code.cooldown = backoff;
          if (sink.metrics) sink.metrics->count("sim.retries");
          if (sink.trace)
            sink.trace->record(obs::Event::retry(
                slot, plan.sched->request_index, /*core_channel=*/true,
                code.swap_attempts, backoff));
        }
      }
    }
  }

  // Barrier reached by both parts: correct (or finally read out).
  // Corrections wait while the barrier node is down or a decode-latency
  // spike stalls the network's decoders.
  const bool support_done = code.s_pos >= code.s_target;
  const bool core_done = plan.raw || code.c_pos >= code.c_target;
  if (support_done && core_done && !injector.node_down(barrier.node, slot) &&
      !injector.decode_stalled(slot)) {
    run_correction(plan, code, slot, barrier.node, barrier.is_ec, params,
                   decoder, rng);
    const bool final_barrier =
        code.barrier + 1 == static_cast<int>(plan.barriers.size());
    if (final_barrier) {
      ++result.codes_delivered;
      if (!code.corrupted) ++result.codes_succeeded;
      const int slots = slot - code.start_slot + 1;
      result.total_latency += slots;
      result.codes.push_back({plan.sched->request_index, slots,
                              code.corrections,
                              code.corrupted ? CodeOutcome::LogicalError
                                             : CodeOutcome::Succeeded});
      if (sink.metrics) {
        sink.metrics->count("sim.delivered");
        if (!code.corrupted) sink.metrics->count("sim.succeeded");
        sink.metrics->observe("sim.latency_slots", slots, latency_bounds());
      }
      if (sink.trace)
        sink.trace->record(obs::Event::delivered(
            slot, plan.sched->request_index, slots, code.corrections,
            code.corrupted));
      return CodeStep::Finished;
    }
    ++code.barrier;
    retarget(plan, code);
    code.cooldown = 1;  // the EC circuit occupies one slot
  }
  return CodeStep::InFlight;
}

/// Pool adapter over the slot engine's plain per-fiber vector.
struct VectorPool {
  std::vector<int>& pairs;
  int level(int fiber) const {
    return pairs[static_cast<std::size_t>(fiber)];
  }
  void consume(int fiber, int n) {
    pairs[static_cast<std::size_t>(fiber)] -= n;
  }
};

}  // namespace surfnet::netsim::detail
