#include "netsim/topology.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace surfnet::netsim {

Topology::Topology(std::vector<Node> nodes, std::vector<Fiber> fibers)
    : nodes_(std::move(nodes)), fibers_(std::move(fibers)) {
  for (const auto& f : fibers_) {
    if (f.a < 0 || f.b < 0 || f.a >= num_nodes() || f.b >= num_nodes())
      throw std::invalid_argument("fiber endpoint out of range");
    if (f.a == f.b) throw std::invalid_argument("self-loop fiber");
    if (f.fidelity < 0.0 || f.fidelity > 1.0)
      throw std::invalid_argument("fiber fidelity outside [0, 1]");
  }
  build_index();
}

void Topology::build_index() {
  offsets_.assign(nodes_.size() + 1, 0);
  for (const auto& f : fibers_) {
    ++offsets_[static_cast<std::size_t>(f.a) + 1];
    ++offsets_[static_cast<std::size_t>(f.b) + 1];
  }
  for (std::size_t i = 1; i < offsets_.size(); ++i)
    offsets_[i] += offsets_[i - 1];
  incidence_.resize(offsets_.back());
  std::vector<std::size_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (std::size_t e = 0; e < fibers_.size(); ++e) {
    incidence_[cursor[static_cast<std::size_t>(fibers_[e].a)]++] =
        static_cast<int>(e);
    incidence_[cursor[static_cast<std::size_t>(fibers_[e].b)]++] =
        static_cast<int>(e);
  }
}

int Topology::other_end(int fiber_id, int v) const {
  const auto& f = fiber(fiber_id);
  if (f.a == v) return f.b;
  if (f.b == v) return f.a;
  throw std::logic_error("other_end: node not on fiber");
}

int Topology::fiber_between(int u, int v) const {
  for (int e : incident(u))
    if (other_end(e, u) == v) return e;
  return -1;
}

double Topology::fiber_noise(int e) const {
  const double gamma = std::max(fiber(e).fidelity, 1e-9);
  return std::log(1.0 / gamma);
}

std::vector<int> Topology::users() const {
  std::vector<int> out;
  for (int v = 0; v < num_nodes(); ++v)
    if (is_user(v)) out.push_back(v);
  return out;
}

std::vector<int> Topology::servers() const {
  std::vector<int> out;
  for (int v = 0; v < num_nodes(); ++v)
    if (is_server(v)) out.push_back(v);
  return out;
}

std::vector<int> Topology::switches_and_servers() const {
  std::vector<int> out;
  for (int v = 0; v < num_nodes(); ++v)
    if (is_switch_or_server(v)) out.push_back(v);
  return out;
}

bool Topology::connected() const {
  if (num_nodes() == 0) return true;
  std::vector<char> seen(static_cast<std::size_t>(num_nodes()), 0);
  std::vector<int> stack{0};
  seen[0] = 1;
  int count = 1;
  while (!stack.empty()) {
    const int v = stack.back();
    stack.pop_back();
    for (int e : incident(v)) {
      const int u = other_end(e, v);
      if (!seen[static_cast<std::size_t>(u)]) {
        seen[static_cast<std::size_t>(u)] = 1;
        ++count;
        stack.push_back(u);
      }
    }
  }
  return count == num_nodes();
}

Topology make_random_topology(const TopologySpec& spec, util::Rng& rng) {
  if (spec.num_nodes < 3)
    throw std::invalid_argument("topology needs at least 3 nodes");
  const int m = std::max(1, spec.attach_edges);
  if (spec.num_servers + spec.num_switches >= spec.num_nodes)
    throw std::invalid_argument("not enough nodes left to be users");

  // Barabasi-Albert: start from a small clique of m+1 nodes, then attach
  // each new node to m distinct existing nodes chosen proportionally to
  // degree (implemented by sampling the endpoint multiset).
  const int seed_nodes = m + 1;
  std::vector<std::pair<int, int>> edges;
  std::vector<int> endpoint_pool;  // each edge contributes both endpoints
  for (int i = 0; i < seed_nodes; ++i)
    for (int j = i + 1; j < seed_nodes; ++j) {
      edges.emplace_back(i, j);
      endpoint_pool.push_back(i);
      endpoint_pool.push_back(j);
    }
  for (int v = seed_nodes; v < spec.num_nodes; ++v) {
    std::vector<int> targets;
    int guard = 0;
    while (static_cast<int>(targets.size()) < m) {
      if (++guard > 10000)
        throw std::logic_error("BA attachment failed to find targets");
      const int t =
          endpoint_pool[rng.below(endpoint_pool.size())];
      if (std::find(targets.begin(), targets.end(), t) == targets.end())
        targets.push_back(t);
    }
    for (int t : targets) {
      edges.emplace_back(v, t);
      endpoint_pool.push_back(v);
      endpoint_pool.push_back(t);
    }
  }

  // Role assignment by degree: top num_servers become servers, the next
  // num_switches become switches, the rest are users.
  std::vector<int> degree(static_cast<std::size_t>(spec.num_nodes), 0);
  for (const auto& [a, b] : edges) {
    ++degree[static_cast<std::size_t>(a)];
    ++degree[static_cast<std::size_t>(b)];
  }
  std::vector<int> order(static_cast<std::size_t>(spec.num_nodes));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int x, int y) {
    return degree[static_cast<std::size_t>(x)] >
           degree[static_cast<std::size_t>(y)];
  });

  std::vector<Node> nodes(static_cast<std::size_t>(spec.num_nodes));
  for (int rank = 0; rank < spec.num_nodes; ++rank) {
    Node& node = nodes[static_cast<std::size_t>(order[
        static_cast<std::size_t>(rank)])];
    if (rank < spec.num_servers) {
      node.role = NodeRole::Server;
      node.storage_capacity = spec.storage_capacity;
    } else if (rank < spec.num_servers + spec.num_switches) {
      node.role = NodeRole::Switch;
      node.storage_capacity = spec.storage_capacity;
    } else {
      node.role = NodeRole::User;
      node.storage_capacity = 0;
    }
  }

  std::vector<Fiber> fibers;
  fibers.reserve(edges.size());
  for (const auto& [a, b] : edges) {
    Fiber f;
    f.a = a;
    f.b = b;
    f.fidelity = rng.uniform(spec.fidelity_lo, spec.fidelity_hi);
    f.entanglement_capacity = spec.entanglement_capacity;
    fibers.push_back(f);
  }
  return Topology(std::move(nodes), std::move(fibers));
}

Topology make_grid_topology(const GridSpec& spec, util::Rng& rng) {
  if (spec.width < 3 || spec.height < 3)
    throw std::invalid_argument("grid topology: need width, height >= 3");
  if (spec.server_stride < 1)
    throw std::invalid_argument("grid topology: server_stride must be >= 1");

  const auto id = [&](int r, int c) { return r * spec.width + c; };
  std::vector<Node> nodes(
      static_cast<std::size_t>(spec.width * spec.height));
  int interior_rank = 0;
  for (int r = 0; r < spec.height; ++r) {
    for (int c = 0; c < spec.width; ++c) {
      Node& node = nodes[static_cast<std::size_t>(id(r, c))];
      const bool boundary =
          r == 0 || c == 0 || r == spec.height - 1 || c == spec.width - 1;
      if (boundary) {
        node.role = NodeRole::User;
        node.storage_capacity = 0;
        continue;
      }
      node.role = (interior_rank % spec.server_stride == 0)
                      ? NodeRole::Server
                      : NodeRole::Switch;
      node.storage_capacity = spec.storage_capacity;
      ++interior_rank;
    }
  }

  std::vector<Fiber> fibers;
  fibers.reserve(static_cast<std::size_t>(2 * spec.width * spec.height));
  const auto link = [&](int u, int v) {
    Fiber f;
    f.a = u;
    f.b = v;
    f.fidelity = rng.uniform(spec.fidelity_lo, spec.fidelity_hi);
    f.entanglement_capacity = spec.entanglement_capacity;
    fibers.push_back(f);
  };
  for (int r = 0; r < spec.height; ++r)
    for (int c = 0; c < spec.width; ++c) {
      if (c + 1 < spec.width) link(id(r, c), id(r, c + 1));
      if (r + 1 < spec.height) link(id(r, c), id(r + 1, c));
    }
  return Topology(std::move(nodes), std::move(fibers));
}

}  // namespace surfnet::netsim
