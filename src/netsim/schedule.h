#pragma once

// Communication requests and routing schedules — the interface between the
// routing protocol (offline scheduling, paper Sec. V-A) and the network
// simulator (online execution, Sec. V-B).

#include <vector>

#include "netsim/topology.h"
#include "util/rng.h"

namespace surfnet::netsim {

/// A communication request k = [(s_k, d_k), i_k].
struct Request {
  int src = -1;
  int dst = -1;
  int codes = 1;  ///< i_k: number of surface codes (messages) to transfer
};

/// Draw `count` requests between distinct random users, each with
/// 1..max_codes messages.
std::vector<Request> random_requests(const Topology& topology, int count,
                                     int max_codes, util::Rng& rng);

/// The routing protocol's decision for one request.
struct ScheduledRequest {
  int request_index = -1;
  int codes = 0;  ///< Y_k: scheduled surface codes (<= request.codes)
  /// Node sequences src..dst. The Core path is used by the
  /// entanglement-based channel, the Support path by the plain channel;
  /// they may differ, but every EC server must lie on both (in order).
  std::vector<int> core_path;
  std::vector<int> support_path;
  /// Servers where error correction is scheduled, in path order.
  std::vector<int> ec_servers;
  /// Surface-code distance for this request's codes; 0 uses the
  /// simulation default. Set by the adaptive-code-size router extension.
  int code_distance = 0;
};

struct Schedule {
  std::vector<ScheduledRequest> scheduled;
  int requested_codes = 0;  ///< sum over all requests of i_k
  double lp_objective = 0.0;  ///< relaxed optimum (0 for greedy schedulers)

  int scheduled_codes() const {
    int total = 0;
    for (const auto& s : scheduled) total += s.codes;
    return total;
  }
  /// Paper Sec. VI-C: executed / requested communications.
  double throughput() const {
    return requested_codes > 0
               ? static_cast<double>(scheduled_codes()) / requested_codes
               : 0.0;
  }
};

}  // namespace surfnet::netsim
