#include "netsim/entanglement.h"

#include <stdexcept>

namespace surfnet::netsim {

double purify(double rho1, double rho2) {
  const double num = rho1 * rho2;
  const double den = num + (1.0 - rho1) * (1.0 - rho2);
  if (den <= 0.0) throw std::invalid_argument("purify: degenerate fidelities");
  return num / den;
}

double purified_fidelity(double base, int extra_pairs) {
  double rho = base;
  for (int i = 0; i < extra_pairs; ++i) rho = purify(rho, base);
  return rho;
}

double swapped_fidelity(const std::vector<double>& link_fidelities) {
  double rho = 1.0;
  for (double f : link_fidelities) rho *= f;
  return rho;
}

EntanglementPool::EntanglementPool(int num_fibers, double generation_rate,
                                   int capacity)
    : pairs_(static_cast<std::size_t>(num_fibers), 0),
      rate_(generation_rate),
      capacity_(capacity) {
  if (num_fibers < 0) throw std::invalid_argument("negative fiber count");
  if (generation_rate < 0.0 || generation_rate > 1.0)
    throw std::invalid_argument("generation rate outside [0, 1]");
  if (capacity < 0) throw std::invalid_argument("negative capacity");
}

void EntanglementPool::tick(util::Rng& rng) {
  for (auto& count : pairs_)
    if (count < capacity_ && rng.bernoulli(rate_)) ++count;
}

bool EntanglementPool::consume(int fiber, int count) {
  auto& available = pairs_[static_cast<std::size_t>(fiber)];
  if (available < count) return false;
  available -= count;
  return true;
}

void EntanglementPool::fill() {
  for (auto& count : pairs_) count = capacity_;
}

}  // namespace surfnet::netsim
