#pragma once

// Open-loop dynamic-traffic engine: a stream of request arrivals and
// departures driving the routing layer incrementally, instead of the
// fixed batch of requests the offline scheduler routes once.
//
// Arrivals follow a configurable interarrival process (Poisson or
// heavy-tailed Pareto with matched mean); each arrival draws a
// source/destination user pair and a demand class (codes, priority,
// fidelity floor, deadline), passes admission control, and — when
// admitted — asks the RouteProvider for a route. Admitted requests hold
// their route's capacity until a scheduled departure releases it.
//
// Determinism contract. Arrivals and departures are first-class events on
// the deterministic pending-event heap (netsim/event_queue.h), ordered by
// (slot, EventClass, seq) exactly like the simulator's own wake-ups;
// EventClass::Departure outranks EventClass::Arrival so resources freed at
// a slot are visible to same-slot admission decisions. Every random
// variate is drawn at an event-processing point both engines visit in the
// same order — interarrival gaps by inverse transform when an arrival is
// processed, never per-slot Bernoulli draws — so a (seed, params) pair
// replays bitwise on the slot and the event engine alike, and the
// per-trial buffering of core::run_trials makes multi-trial traffic runs
// thread-count invariant.
//
// The routing side of the stream is abstract: netsim knows only the
// RouteProvider interface; routing::IncrementalRouter implements it with
// a greedy fast path, warm-started LP assists and exact capacity
// release (routing/incremental.h).

#include <cstdint>
#include <optional>
#include <vector>

#include "netsim/event_simulator.h"
#include "netsim/topology.h"
#include "obs/sink.h"
#include "util/rng.h"

namespace surfnet::netsim {

/// How an admitted request's route was found (trace "admit" source field).
enum class AdmitSource : std::uint8_t {
  Greedy = 0,  ///< greedy fast path (no LP solve)
  Warm = 1,    ///< warm-started incremental LP assist
  Cold = 2,    ///< shape-changing cold LP solve
};

/// Why admission control rejected a request (trace "blocked" reason field).
enum class BlockReason : std::uint8_t {
  Load = 0,      ///< admission cap or low-headroom priority shedding
  Capacity = 1,  ///< the provider found no feasible route
  Fidelity = 2,  ///< best route falls under the class fidelity floor
  Deadline = 3,  ///< estimated delivery later than the class deadline
};

/// A route granted by the provider, held until the request departs.
struct AdmittedRoute {
  std::vector<int> path;        ///< node sequence src..dst
  std::vector<int> ec_servers;  ///< EC servers, in path order
  double noise = 0.0;           ///< accumulated path noise (mu)
  int codes = 1;                ///< codes the request holds on the path
  /// Code distance the provider selected for this route from its measured
  /// noise profile (0 = the configuration default). release() must return
  /// the capacity of codes of exactly this distance.
  int distance = 0;
  AdmitSource source = AdmitSource::Greedy;
};

/// The routing layer as the traffic engine sees it. Implementations own
/// all resource bookkeeping: a successful admit() has already committed
/// the route's capacity; release() must return exactly what the matching
/// admit() took.
class RouteProvider {
 public:
  virtual ~RouteProvider() = default;
  virtual std::optional<AdmittedRoute> admit(int src, int dst, int codes) = 0;
  virtual void release(const AdmittedRoute& route) = 0;
  /// Re-optimize over the residual network and return its headroom: the
  /// fractional number of additional codes it could still carry. Called
  /// periodically by the engine (WorkloadParams::reoptimize_every); the
  /// result feeds priority shedding.
  virtual double reoptimize() = 0;
  /// The engine reports a change of the network-wide noise scale (a
  /// fidelity-degradation window opening or closing): every fiber's
  /// fidelity gamma measures as gamma^scale until the next change.
  /// Providers that route on measured noise react (the adaptive-distance
  /// router re-vets feasibility and escalates code distances); the
  /// default ignores it. Routes admitted before the change keep the
  /// capacity they committed.
  virtual void set_noise_scale(double scale) { (void)scale; }
};

enum class ArrivalProcess : std::uint8_t {
  Poisson,  ///< exponential interarrival gaps, mean 1/arrival_rate slots
  /// Pareto gaps with shape `pareto_shape` and the scale chosen so the
  /// mean matches 1/arrival_rate: heavy-tailed bursts at the same load.
  Pareto,
};

/// One class of user demand in the workload mix.
struct DemandClass {
  double weight = 1.0;      ///< selection weight within the mix
  int codes = 1;            ///< codes requested (capacity demand multiplier)
  int priority = 0;         ///< higher sheds later under low headroom
  double fidelity_floor = 0.0;  ///< minimum acceptable route fidelity
  int deadline_slots = 0;   ///< max acceptable delivery estimate (0 = none)
};

/// Admission-control policy applied before the provider is consulted.
struct AdmissionPolicy {
  /// Total codes concurrently admitted (0 = unlimited). The cheapest
  /// check, applied first.
  int max_active_codes = 0;
  /// When the provider's last reported headroom drops below this many
  /// codes, arrivals with priority < shed_below_priority are shed as
  /// BlockReason::Load without consulting the provider.
  double shed_headroom = 0.0;
  int shed_below_priority = 0;
};

struct WorkloadParams {
  ArrivalProcess process = ArrivalProcess::Poisson;
  double arrival_rate = 1.0;  ///< expected arrivals per slot (> 0)
  double pareto_shape = 2.5;  ///< Pareto only; must be > 1 (finite mean)
  /// Arrivals stop once their slot would exceed this horizon; pending
  /// departures still drain.
  int horizon_slots = 10000;
  /// Arrivals stop after this many requests even before the horizon
  /// (0 = horizon only).
  long long max_requests = 0;
  /// Steady-state cutoff: events before this slot are simulated but not
  /// measured.
  int warmup_slots = 0;
  std::vector<DemandClass> classes;  ///< empty = one default class
  AdmissionPolicy admission;
  /// Provider re-optimization cadence in admissions+releases (0 = never).
  int reoptimize_every = 0;
  /// Synthetic service model: an admitted request departs after
  /// service_base + service_per_hop * hops + jitter slots, jitter drawn
  /// uniformly from [0, service_jitter].
  int service_base = 4;
  int service_per_hop = 2;
  int service_jitter = 8;
  /// Deterministic fidelity-degradation window: while a processed event's
  /// slot lies in [degrade_from_slot, degrade_until_slot) the provider
  /// sees every fiber fidelity scaled to gamma^degrade_noise_scale.
  /// Boundary crossings are reported through
  /// RouteProvider::set_noise_scale at event-processing points — a pure
  /// function of the event slot, so replays stay bitwise identical across
  /// engines and thread counts. degrade_until_slot <= degrade_from_slot
  /// (the default) disables the window.
  int degrade_from_slot = 0;
  int degrade_until_slot = 0;
  double degrade_noise_scale = 1.0;
  /// Observability handle (trace: arrival/admit/blocked/depart events;
  /// metrics: "traffic.*" counters). Null = no instrumentation.
  obs::Sink sink{};
};

/// Steady-state traffic metrics. The totals count every event; the
/// measured_* tallies and the latency histogram only cover events at or
/// after warmup_slots.
struct TrafficResult {
  long long arrivals = 0;
  long long admitted = 0;
  long long blocked = 0;
  long long departures = 0;
  int last_slot = 0;       ///< slot of the last processed event
  int measured_slots = 0;  ///< post-warmup slots covered by the run

  long long measured_arrivals = 0;
  long long measured_admitted = 0;
  long long measured_blocked = 0;
  long long measured_departures = 0;
  long long blocked_by[4] = {0, 0, 0, 0};    ///< post-warmup, by BlockReason
  long long admitted_by[3] = {0, 0, 0};      ///< post-warmup, by AdmitSource

  /// Post-warmup delivery-latency histogram in slots; the last bucket
  /// collects overflows.
  std::vector<long long> latency_hist;
  long long latency_count = 0;
  double latency_total = 0.0;

  double blocking_probability() const {
    return measured_arrivals > 0
               ? static_cast<double>(measured_blocked) / measured_arrivals
               : 0.0;
  }
  double mean_latency() const {
    return latency_count > 0 ? latency_total / latency_count : 0.0;
  }
  /// Latency percentile (p in [0, 1]) from the histogram; the overflow
  /// bucket reports as its lower edge.
  double latency_percentile(double p) const;
  /// Sustained post-warmup admitted-requests-per-slot rate.
  double admitted_per_slot() const {
    return measured_slots > 0
               ? static_cast<double>(measured_admitted) / measured_slots
               : 0.0;
  }
};

/// Drive one open-loop traffic stream against `provider`. Both engines
/// produce bitwise-identical results and observability output for the
/// same (params, seed); the event engine skips empty slots.
TrafficResult run_traffic(const Topology& topology, RouteProvider& provider,
                          const WorkloadParams& params, util::Rng& rng,
                          SimEngine engine = SimEngine::Event);

}  // namespace surfnet::netsim
