#pragma once

// Event-driven simulation engine for surface-code transfers.
//
// simulate_surfnet_event() computes the same function as
// simulate_surfnet() — bitwise-identical SimulationResult, obs::Sink
// events, "sim.*" metrics, and RNG stream — but its cost is proportional
// to *activity* instead of `slots × topology`. The engine keeps a
// deterministic pending-event queue (netsim/event_queue.h) of slots at
// which something can happen: scripted fault onsets/expiries, request
// launches and timeouts, retry/backoff timers, entanglement-readiness
// thresholds, and generic code wake-ups. Slots with no pending event are
// skipped; skipped slots are provably draw-free and trace-free, and their
// entanglement gains are applied in closed form (see DESIGN.md §"Event
// engine"), so idle fibers and quiescent codes cost nothing.
//
// When a run cannot skip safely — an attached obs::Sink observes every
// slot, stochastic fault processes draw every slot, several requests
// contend through the per-slot service shuffle, or a fractional base rate
// draws one Bernoulli per fiber per slot — the engine degrades to visiting
// every slot. Visited slots execute the exact slot-engine phase sequence
// (shared code in netsim/sim_internal.h), so equivalence never depends on
// which mode a run lands in.

#include <memory>
#include <string_view>

#include "decoder/decoder.h"
#include "netsim/simulator.h"

namespace surfnet::netsim {

/// Which simulation engine executes a run. Both compute the identical
/// function; Event is asymptotically cheaper on sparse/idle workloads.
enum class SimEngine : std::uint8_t {
  Slot,   ///< dense per-slot sweep (the differential oracle)
  Event,  ///< deterministic event queue, activity-proportional
};

std::string_view to_string(SimEngine engine);

/// Event-driven equivalent of simulate_surfnet().
SimulationResult simulate_surfnet_event(const Topology& topology,
                                        const Schedule& schedule,
                                        const SimulationParams& params,
                                        const decoder::Decoder& decoder,
                                        util::Rng& rng);

/// Surface-code transfer on the event engine. Drop-in for
/// SurfNetSimulator; name() distinguishes the engines in reports.
class EventSurfNetSimulator final : public Simulator {
 public:
  explicit EventSurfNetSimulator(const decoder::Decoder& decoder)
      : decoder_(&decoder) {}
  SimulationResult run(const Topology& topology, const Schedule& schedule,
                       const SimulationParams& params,
                       util::Rng& rng) const override {
    return simulate_surfnet_event(topology, schedule, params, *decoder_, rng);
  }
  std::string_view name() const override { return "surfnet-event"; }

 private:
  const decoder::Decoder* decoder_;
};

/// Engine-selecting factory. Purification designs have no event engine
/// (their per-slot loop is already cheap and pair-pool-bound); they get
/// the slot-based PurificationSimulator under either engine choice.
std::unique_ptr<Simulator> make_simulator(NetworkDesign design,
                                          const decoder::Decoder& decoder,
                                          SimEngine engine);

}  // namespace surfnet::netsim
