#include "netsim/channel.h"

#include <stdexcept>

namespace surfnet::netsim {

double path_noise(const Topology& topology, const std::vector<int>& path) {
  double mu = 0.0;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const int e = topology.fiber_between(path[i], path[i + 1]);
    if (e < 0) throw std::invalid_argument("path_noise: non-adjacent nodes");
    mu += topology.fiber_noise(e);
  }
  return mu;
}

}  // namespace surfnet::netsim
