#include "netsim/event_simulator.h"

#include <algorithm>
#include <limits>
#include <map>
#include <stdexcept>
#include <vector>

#include "netsim/event_queue.h"
#include "netsim/sim_internal.h"

// Engine equivalence argument (details in DESIGN.md §"Event engine").
//
// A *visited* slot executes the exact slot-engine phase sequence —
// entanglement generation, FaultInjector::begin_slot, pool snapshot,
// service-order shuffle, per-code processing — through the shared code in
// netsim/sim_internal.h, so a visit can never diverge from the oracle.
// The queue only decides WHICH slots are visited. A slot may be skipped
// only when the slot engine provably (a) draws no random variate there,
// (b) emits no sink event there, and (c) changes state only in ways a
// closed form reproduces (deterministic pool gains, cooldown decrements,
// failed-reroute counters). Three run modes make that proof easy:
//
//   eager  — sink attached or fractional base rate: the gains sweep runs
//            verbatim every slot (it draws / must be observed per slot).
//   dense  — eager, or stochastic fault processes, or != 1 request:
//            every slot is visited; pools may still be lazy.
//   skip   — single request, scripted-only faults, integral base rate,
//            no sink: slots between queued wake-ups are skipped.
//
// In skip mode, fault state is piecewise-constant between scripted
// onset/expiry slots, and both of those are preloaded into the queue; so
// within a gap nothing can unblock, break, or expire, and the per-code
// wake computation (compute_wake) only has to evaluate the state at
// slot + 1 to know it for the whole gap. Wake-ups may be early — an
// extra visit is harmless by construction — but never late.

namespace surfnet::netsim {

std::string_view to_string(EventClass cls) {
  switch (cls) {
    case EventClass::FaultOnset: return "fault_onset";
    case EventClass::FaultExpiry: return "fault_expiry";
    case EventClass::Launch: return "launch";
    case EventClass::RequestTimeout: return "request_timeout";
    case EventClass::RetryTimer: return "retry_timer";
    case EventClass::EntanglementReady: return "entanglement_ready";
    case EventClass::CodeWake: return "code_wake";
    case EventClass::Departure: return "departure";
    case EventClass::Arrival: return "arrival";
  }
  return "?";
}

std::string_view to_string(SimEngine engine) {
  switch (engine) {
    case SimEngine::Slot: return "slot";
    case SimEngine::Event: return "event";
  }
  return "?";
}

namespace {

using namespace detail;

constexpr int kNever = std::numeric_limits<int>::max();

/// Per-fiber prepared-pair pools with lazily materialized gains.
///
/// The slot engine adds `min(cap, pairs + gain)` to every fiber every
/// slot. With an integral generation rate the gain is deterministic, so a
/// fiber's level after k untouched slots has the closed form
/// `min(cap, p0 + whole·k)` (saturation is absorbing because gains are
/// non-negative, so one clamp at the end equals a clamp per slot). Each
/// fiber carries a high-water slot (`as_of_`) and is materialized on
/// demand. Fractional rates draw one Bernoulli per slot per fiber — those
/// draws cannot be skipped without changing the RNG stream, so fibers
/// inside a fractional-rate degradation window live in `fractional_` and
/// are materialized (drawing, in ascending fiber order, exactly like the
/// slot engine's sweep) at every slot while the window lasts; the engine
/// visits every slot of such a window (fractional_until()).
///
/// Rate history per fiber is "current degradation window, then base":
/// the RateChangeListener hook materializes a fiber up to the mutation
/// slot *before* the injector rewrites its window (generation precedes
/// fault injection within a slot), so the mirror never needs more than
/// one window of history.
class LazyPools final : public RateChangeListener {
 public:
  LazyPools(const Topology& topology, const EntanglementRates& rates,
            const FaultInjector& injector, bool eager)
      : rates_(&rates),
        injector_(&injector),
        eager_(eager),
        pairs_(static_cast<std::size_t>(topology.num_fibers()), 0),
        as_of_(static_cast<std::size_t>(topology.num_fibers()), -1),
        win_until_(static_cast<std::size_t>(topology.num_fibers()), 0),
        win_factor_(static_cast<std::size_t>(topology.num_fibers()), 1.0) {}

  /// Phase 1 of a visited slot: entanglement generation. Eager mode runs
  /// the slot-engine sweep verbatim; lazy mode draws only for fibers
  /// inside a live fractional window (the only fibers the sweep draws
  /// for when the base rate is integral).
  void generate(int slot, util::Rng& rng) {
    if (eager_) {
      rates_->advance(pairs_, *injector_, slot, rng);
      return;
    }
    std::size_t keep = 0;
    for (std::size_t i = 0; i < fractional_.size(); ++i) {
      const int e = fractional_[i];
      materialize(e, slot, &rng);
      if (win_until_[static_cast<std::size_t>(e)] > slot)
        fractional_[keep++] = e;
    }
    fractional_.resize(keep);
  }

  /// RateChangeListener: the injector is about to rewrite this fiber's
  /// degradation window at `slot`. Gains through `slot` accrued under
  /// the outgoing rate, so they are banked before the mirror goes stale.
  void before_rate_change(int fiber, int slot) override {
    if (eager_) return;
    materialize(fiber, slot, nullptr);
    changed_.push_back(fiber);
  }

  /// Phase 2, after FaultInjector::begin_slot: refresh the window mirror
  /// of every fiber whose rate was rewritten this slot.
  void sync(int slot) {
    for (const int fiber : changed_) {
      const auto e = static_cast<std::size_t>(fiber);
      win_until_[e] = injector_->degrade_until(fiber);
      win_factor_[e] = injector_->degrade_factor(fiber);
      const double rate = rates_->base_rate() * win_factor_[e];
      const bool fractional =
          win_until_[e] > slot && rate - static_cast<int>(rate) > 0.0;
      const auto it =
          std::lower_bound(fractional_.begin(), fractional_.end(), fiber);
      const bool present = it != fractional_.end() && *it == fiber;
      if (fractional && !present) fractional_.insert(it, fiber);
      if (!fractional && present) fractional_.erase(it);
      if (fractional && win_until_[e] > fractional_until_)
        fractional_until_ = win_until_[e];
    }
    changed_.clear();
  }

  /// Every slot below this still carries per-slot Bernoulli draws from a
  /// fractional-rate window, so the engine must visit it.
  int fractional_until() const { return fractional_until_; }

  int level(int fiber, int slot) {
    if (!eager_) materialize(fiber, slot, nullptr);
    return pairs_[static_cast<std::size_t>(fiber)];
  }
  void consume(int fiber, int n) {
    pairs_[static_cast<std::size_t>(fiber)] -= n;
  }
  const std::vector<int>& raw() const { return pairs_; }

  /// Smallest slot t >= from with level(fiber, t) >= need assuming no
  /// consumption in between; kNever when unreachable, `from` when the
  /// crossing has no closed form (early wake-ups are harmless, late ones
  /// would skip a jump the oracle makes).
  int first_ready(int fiber, int need, int from) {
    if (eager_) return from;
    const auto e = static_cast<std::size_t>(fiber);
    if (need > rates_->cap(fiber)) return kNever;
    materialize(fiber, from - 1, nullptr);
    long long level = pairs_[e];
    if (level >= need) return from;
    // Crossing-slot arithmetic is exact while the level is below `need`
    // (<= cap), where the per-slot clamp never engages.
    int begin = from;
    if (begin < win_until_[e]) {
      const double rate = rates_->base_rate() * win_factor_[e];
      const int whole = static_cast<int>(rate);
      if (rate - whole > 0.0) return from;  // fractional: slot-by-slot
      const int end = win_until_[e] - 1;
      if (whole > 0) {
        const long long k = (need - level + whole - 1) / whole;
        if (begin + k - 1 <= end) return static_cast<int>(begin + k - 1);
      }
      level += static_cast<long long>(whole) * (end - begin + 1);
      begin = end + 1;
    }
    const int whole = rates_->base_whole();  // base frac is 0 in lazy mode
    if (whole <= 0) return kNever;
    const long long t = begin + (need - level + whole - 1) / whole - 1;
    return t >= kNever ? kNever : static_cast<int>(t);
  }

 private:
  /// Bring one fiber's level up to date through `slot`.
  void materialize(int fiber, int slot, util::Rng* rng) {
    const auto e = static_cast<std::size_t>(fiber);
    int& as_of = as_of_[e];
    if (slot <= as_of) return;
    long long level = pairs_[e];
    const int cap = rates_->cap(fiber);
    int begin = as_of + 1;
    if (begin < win_until_[e]) {
      const int end = std::min(slot, win_until_[e] - 1);
      level = gain_over(level, cap, rates_->base_rate() * win_factor_[e],
                        begin, end, rng);
      begin = end + 1;
    }
    if (begin <= slot)
      level = gain_over(level, cap, rates_->base_rate(), begin, slot, rng);
    pairs_[e] = static_cast<int>(level);
    as_of = slot;
  }

  static long long gain_over(long long level, int cap, double rate, int begin,
                             int end, util::Rng* rng) {
    const int whole = static_cast<int>(rate);
    const double frac = rate - whole;
    if (frac <= 0.0)
      return std::min<long long>(
          cap, level + static_cast<long long>(whole) * (end - begin + 1));
    // Fractional rates draw once per slot, and every slot of a live
    // fractional window is visited and materialized by generate() — a
    // fractional segment can never span more than the slot in hand.
    if (rng == nullptr || begin != end)
      throw std::logic_error(
          "event engine: fractional gain across skipped slots");
    const int gain = whole + (rng->bernoulli(frac) ? 1 : 0);
    return std::min<long long>(cap, level + gain);
  }

  const EntanglementRates* rates_;
  const FaultInjector* injector_;
  bool eager_;
  std::vector<int> pairs_;
  std::vector<int> as_of_;      ///< last slot whose gains are banked
  std::vector<int> win_until_;  ///< mirrored degradation window per fiber
  std::vector<double> win_factor_;
  std::vector<int> fractional_;  ///< fibers drawing per slot (ascending)
  std::vector<int> changed_;     ///< fibers mutated this slot (pre-sync)
  int fractional_until_ = 0;
};

/// Pool adapter handed to the shared process_code() template.
struct LazyPoolView {
  LazyPools* pools;
  int slot;
  int level(int fiber) const { return pools->level(fiber, slot); }
  void consume(int fiber, int n) { pools->consume(fiber, n); }
};

struct WakePlan {
  int slot = kNever;
  EventClass cls = EventClass::CodeWake;
};

/// Earliest future slot at which the (single, skip-mode) in-flight code
/// can possibly act, given that fault state is constant from slot + 1
/// until the next queued onset/expiry caps any gap. `flags` records
/// whether a local recovery failed at the visit just executed.
WakePlan compute_wake(const Topology& topology, const FaultInjector& injector,
                      const RecoveryPolicy& policy,
                      const SimulationParams& params, const RequestPlan& plan,
                      const ActiveCode& code, int slot, const StepFlags& flags,
                      LazyPools& pools) {
  const int q = slot + 1;
  WakePlan wake;
  auto consider = [&wake](int s, EventClass cls) {
    if (s < wake.slot) wake = {s, cls};
  };
  if (policy.code_timeout_slots > 0)
    consider(code.start_slot + policy.code_timeout_slots,
             EventClass::RequestTimeout);
  if (code.cooldown > 0) {
    // Nothing happens until the cooldown runs out (gaps decrement it in
    // closed form) — except the timeout budget, already considered.
    consider(slot + code.cooldown + 1, EventClass::RetryTimer);
    return wake;
  }
  const auto& barrier = plan.barriers[static_cast<std::size_t>(code.barrier)];
  bool support_failing = false;
  bool core_failing = false;

  if (code.s_pos < code.s_target) {
    const int next = code.s_path[static_cast<std::size_t>(code.s_pos) + 1];
    const int e = topology.fiber_between(
        code.s_path[static_cast<std::size_t>(code.s_pos)], next);
    if (!injector.fiber_down(e, q) && !injector.node_down(next, q)) {
      consider(q, EventClass::CodeWake);  // the hop goes through next slot
    } else if (policy.local_reroute) {
      if (flags.support_reroute_failed)
        support_failing = true;  // one failed reroute per gap slot
      else
        consider(q, EventClass::CodeWake);  // state changed this visit
    }
    // else: photons held until a queued window expiry frees the route.
  }

  if (!plan.raw && code.c_pos < code.c_target) {
    const int n_core = plan.geometry->partition.num_core;
    const int segment =
        std::min(params.opportunistic_segment, code.c_target - code.c_pos);
    bool broken = false;
    for (int h = 0; h < segment; ++h) {
      const int to = code.c_path[static_cast<std::size_t>(code.c_pos + h + 1)];
      const int e = topology.fiber_between(
          code.c_path[static_cast<std::size_t>(code.c_pos + h)], to);
      if (injector.fiber_down(e, q) || injector.node_down(to, q))
        broken = true;
    }
    if (broken) {
      if (policy.local_reroute) {
        if (flags.core_reroute_failed)
          core_failing = true;
        else
          consider(q, EventClass::CodeWake);
      }
      // else: held until a queued expiry heals the segment.
    } else {
      int ready = q;
      for (int h = 0; h < segment && ready < kNever; ++h) {
        const int e = topology.fiber_between(
            code.c_path[static_cast<std::size_t>(code.c_pos + h)],
            code.c_path[static_cast<std::size_t>(code.c_pos + h + 1)]);
        ready = std::max(ready, pools.first_ready(e, n_core, q));
      }
      if (ready < kNever) consider(ready, EventClass::EntanglementReady);
    }
  }

  if (support_failing && core_failing) {
    consider(q, EventClass::CodeWake);  // no closed form for two counters
  } else if ((support_failing || core_failing) &&
             policy.escalate_after_reroutes > 0) {
    // The blocked channel fails one local recovery per slot; the next
    // escalation fires after (threshold - failed_reroutes) more slots.
    // If its replan would find a live route under the gap's constant
    // fault state, that slot must be visited; otherwise escalations
    // inside the gap are no-ops and the counter advances in closed form.
    const int j = policy.escalate_after_reroutes - code.failed_reroutes;
    std::vector<int> waypoints;
    for (std::size_t b = static_cast<std::size_t>(code.barrier);
         b < plan.barriers.size(); ++b)
      waypoints.push_back(plan.barriers[b].node);
    std::vector<int> probe = core_failing ? code.c_path : code.s_path;
    const int pos = core_failing ? code.c_pos : code.s_pos;
    if (replan_route(topology, injector, q, probe, pos, waypoints))
      consider(slot + j, EventClass::CodeWake);
  }

  const bool support_done = code.s_pos >= code.s_target;
  const bool core_done = plan.raw || code.c_pos >= code.c_target;
  if (support_done && core_done && !injector.node_down(barrier.node, q) &&
      !injector.decode_stalled(q))
    consider(q, EventClass::CodeWake);  // the barrier decode can run
  return wake;
}

/// Replay the state drift of `gap` skipped slots on the in-flight code.
/// Only two quantities drift across draw-free slots: the cooldown counter
/// and, while a channel is stuck in failing local recoveries, the
/// failed-reroutes counter (escalations inside a gap are no-ops — a
/// succeeding one would have been scheduled as a visit by compute_wake).
void advance_gap(const RecoveryPolicy& policy, ActiveCode& code,
                 const StepFlags& flags, int gap) {
  if (code.cooldown > 0) {
    code.cooldown -= gap;  // wake <= slot + cooldown + 1 caps the gap
    return;
  }
  if (!flags.support_reroute_failed && !flags.core_reroute_failed) return;
  if (policy.escalate_after_reroutes > 0)
    code.failed_reroutes =
        (code.failed_reroutes + gap) % policy.escalate_after_reroutes;
  else
    code.failed_reroutes += gap;
}

}  // namespace

SimulationResult simulate_surfnet_event(const Topology& topology,
                                        const Schedule& schedule,
                                        const SimulationParams& params,
                                        const decoder::Decoder& decoder,
                                        util::Rng& rng) {
  using namespace detail;
  SimulationResult result;
  result.codes_scheduled = schedule.scheduled_codes();
  if (schedule.scheduled.empty()) return result;
  const obs::Sink& sink = params.sink;

  std::map<int, CodeGeometry> geometries;
  auto geometry_for = [&](int distance) -> const CodeGeometry& {
    auto it = geometries.find(distance);
    if (it == geometries.end())
      it = geometries.emplace(distance, CodeGeometry(distance)).first;
    return it->second;
  };

  std::vector<RequestPlan> plans;
  plans.reserve(schedule.scheduled.size());
  for (const auto& s : schedule.scheduled) {
    if (s.codes <= 0) continue;
    const int distance =
        s.code_distance > 0 ? s.code_distance : params.code_distance;
    plans.push_back(make_plan(topology, s, geometry_for(distance)));
  }

  FaultInjector injector(topology, params.faults);
  const RecoveryPolicy policy = params.recovery;
  const EntanglementRates rates(topology, params, injector);

  // Run-mode selection (header comment): eager replays the gains sweep
  // verbatim; dense visits every slot; otherwise slots are skipped.
  const bool eager = sink.enabled() || rates.base_frac() > 0.0;
  const bool dense =
      eager || injector.stochastic().any() || plans.size() != 1;
  LazyPools pools(topology, rates, injector, eager);

  std::vector<int> codes_remaining(plans.size());
  std::vector<ActiveCode> active(plans.size());
  std::vector<char> has_active(plans.size(), 0);
  for (std::size_t i = 0; i < plans.size(); ++i)
    codes_remaining[i] = plans[i].sched->codes;

  std::vector<std::size_t> order(plans.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  EventQueue queue;
  if (!dense) {
    for (const auto& ev : injector.scripted()) {
      if (ev.slot < params.max_slots)
        queue.push(ev.slot, EventClass::FaultOnset, ev.target);
      const long long until = static_cast<long long>(ev.slot) + ev.duration;
      if (until < params.max_slots)
        queue.push(static_cast<int>(until), EventClass::FaultExpiry,
                   ev.target);
    }
  }

  int in_flight_or_pending = result.codes_scheduled;
  int final_slot = 0;
  std::int64_t visited = 0;
  std::int64_t skipped_total = 0;
  int last_scheduled_wake = -1;

  int slot = 0;
  while (slot < params.max_slots && in_flight_or_pending > 0) {
    final_slot = slot;
    ++visited;

    // A visit is the exact slot-engine phase sequence.
    pools.generate(slot, rng);
    injector.begin_slot(slot, rng, sink, &pools);
    pools.sync(slot);
    // Snapshot no-ops unless the sink observes — which forces eager mode,
    // where raw() is fully materialized.
    emit_pool_snapshot(pools.raw(), slot, sink);

    for (std::size_t i = order.size(); i > 1; --i)
      std::swap(order[i - 1], order[rng.below(i)]);

    StepFlags flags;  // meaningful only in skip mode (exactly one plan)
    for (std::size_t idx : order) {
      const RequestPlan& plan = plans[idx];
      if (!has_active[idx]) {
        if (codes_remaining[idx] == 0) continue;
        --codes_remaining[idx];
        active[idx] = launch(plan, slot);
        has_active[idx] = 1;
      }
      LazyPoolView pool{&pools, slot};
      flags = StepFlags{};
      if (process_code(topology, injector, policy, params, decoder, plan,
                       active[idx], slot, pool, result, rng,
                       &flags) == CodeStep::Finished) {
        has_active[idx] = 0;
        --in_flight_or_pending;
      }
    }
    if (in_flight_or_pending <= 0) break;

    if (dense) {
      ++slot;
      continue;
    }

    // Skip mode: choose the next slot that must be visited.
    while (!queue.empty() && queue.top().slot <= slot) queue.pop();
    const WakePlan wake =
        has_active[0] ? compute_wake(topology, injector, policy, params,
                                     plans[0], active[0], slot, flags, pools)
                      : WakePlan{slot + 1, EventClass::Launch};
    if (wake.slot < kNever && wake.slot != last_scheduled_wake) {
      queue.push(wake.slot, wake.cls, 0);
      last_scheduled_wake = wake.slot;
    }
    int next = queue.empty() ? kNever : queue.top().slot;
    if (pools.fractional_until() > slot + 1) next = slot + 1;
    if (next == kNever) break;  // provably quiescent until the cap
    if (next > slot + 1) {
      if (has_active[0])
        advance_gap(policy, active[0], flags, next - slot - 1);
      skipped_total += next - slot - 1;
    }
    slot = next;
  }

  // The oracle sweeps every remaining slot (drawing nothing a skipped
  // slot would have drawn) and censors in-flight codes at the cap.
  if (in_flight_or_pending > 0 && params.max_slots > 0)
    final_slot = params.max_slots - 1;
  for (std::size_t idx = 0; idx < plans.size(); ++idx) {
    if (!has_active[idx]) continue;
    const ActiveCode& code = active[idx];
    const int slots = final_slot - code.start_slot + 1;
    result.codes.push_back({plans[idx].sched->request_index, slots,
                            code.corrections, CodeOutcome::TimedOut});
    if (sink.metrics) sink.metrics->count("sim.timeouts");
    if (sink.trace)
      sink.trace->record(obs::Event::timeout(
          final_slot, plans[idx].sched->request_index, slots));
  }

  // Engine-specific observability: the only sink keys the event engine
  // adds over the slot engine, all under "sim.event_*" so differential
  // comparisons can strip them.
  if (sink.metrics) {
    sink.metrics->gauge("sim.event_queue_peak",
                        static_cast<double>(queue.peak_size()));
    sink.metrics->count("sim.event_slots_visited", visited);
    sink.metrics->count("sim.event_slots_skipped", skipped_total);
  }
  return result;
}

std::unique_ptr<Simulator> make_simulator(NetworkDesign design,
                                          const decoder::Decoder& decoder,
                                          SimEngine engine) {
  switch (design) {
    case NetworkDesign::SurfNet:
    case NetworkDesign::Raw:
      if (engine == SimEngine::Event)
        return std::make_unique<EventSurfNetSimulator>(decoder);
      return std::make_unique<SurfNetSimulator>(decoder);
    case NetworkDesign::Purification1:
    case NetworkDesign::Purification2:
    case NetworkDesign::Purification9:
      // Purification has no event engine; the slot loop is already
      // pair-pool-bound and cheap.
      return std::make_unique<PurificationSimulator>(
          purification_rounds(design));
  }
  throw std::invalid_argument("unknown NetworkDesign");
}

}  // namespace surfnet::netsim
