#pragma once

// Recovery policy of the online execution (paper Sec. V-B, extended): what
// the control plane does when a route breaks or starves mid-run.
//
//   * Local recovery — replace the remainder of a route to the *next*
//     designated node with a detour over live fibers/nodes (the paper's
//     "recovery path leading to the next designated node").
//   * Escalation — after `escalate_after_reroutes` consecutive failed
//     local recoveries (or a retry budget exhausted), attempt a full
//     re-route: re-plan the whole remaining route through every remaining
//     EC barrier to the destination. The replanned route keeps the
//     scheduled EC servers, so it still satisfies the structural routing
//     constraints (Eqs. (3)-(4)); routing/validate's
//     check_reroute_invariants asserts this under SURFNET_CHECKS.
//   * Bounded retries with exponential backoff — a failed entanglement
//     swap on a segment jump backs the code off for
//     min(backoff_cap_slots, backoff_base_slots << (attempt - 1)) slots
//     instead of hammering the starved pools every slot.
//   * Per-code timeout budget — a code still in flight after
//     code_timeout_slots is abandoned as a timeout, freeing its request
//     slot for the next code instead of starving the whole run against
//     max_slots.
//
// The default-constructed policy reproduces the pre-plan simulator
// behavior exactly: local reroutes on, no backoff, no escalation, no
// per-code budget.

#include <vector>

#include "netsim/faults.h"
#include "netsim/topology.h"

namespace surfnet::netsim {

struct RecoveryPolicy {
  /// Replace a broken route with a local detour to the next designated
  /// node (false = hold the qubits in error-mitigation circuits until the
  /// route heals).
  bool local_reroute = true;
  /// Failed swap attempts on one segment before escalating to a full
  /// re-route; 0 disables retry accounting (legacy: retry every slot,
  /// no backoff).
  int max_swap_retries = 0;
  int backoff_base_slots = 1;  ///< first retry backoff (doubles per retry)
  int backoff_cap_slots = 16;
  /// Consecutive failed local reroutes before escalating to a full
  /// re-route; 0 = never escalate.
  int escalate_after_reroutes = 0;
  /// Slots one code may stay in flight before it is abandoned as a
  /// timeout; 0 = bounded only by the run-wide max_slots. A per-code
  /// budget subsumes max_slots for delivery accounting: a starved code
  /// times out individually instead of pinning its request to the end of
  /// the run.
  int code_timeout_slots = 0;

  /// Exponential backoff after the n-th consecutive failed attempt
  /// (1-based), clamped to the cap.
  int backoff_slots(int attempt) const;

  /// Everything off: broken routes hold in place (the paper's
  /// error-mitigation-circuit fallback).
  static RecoveryPolicy disabled();
  /// The chaos-bench posture: local reroutes, bounded retries with
  /// backoff, escalation after 2 failed local recoveries, and a per-code
  /// budget of 1500 slots.
  static RecoveryPolicy aggressive();
};

/// Local recovery (paper Sec. V-B): splice a detour over live fibers and
/// nodes into `path`, replacing the stretch from `pos` to `target_node`
/// (which must appear in path[pos..]). Interior detour nodes are
/// switches/servers; only the target may be a user. Returns false when no
/// live detour exists (path is left unchanged).
bool local_reroute(const Topology& topology, const FaultInjector& injector,
                   int slot, std::vector<int>& path, int pos,
                   int target_node);

/// Full re-route escalation: replace path[pos..] with a fresh route that
/// visits every waypoint in order (the remaining EC barrier nodes, ending
/// with the destination) over live fibers and nodes. Returns false when
/// any leg is unroutable (path is left unchanged).
bool replan_route(const Topology& topology, const FaultInjector& injector,
                  int slot, std::vector<int>& path, int pos,
                  const std::vector<int>& waypoints);

}  // namespace surfnet::netsim
