#pragma once

// Deterministic pending-event min-heap.
//
// A hand-rolled binary heap over PendingEvent with a strict total order:
// (slot, class priority, stable sequence id). The sequence id is assigned
// by push() in arrival order, so two events at the same slot with the
// same class pop in the order they were scheduled — unlike
// std::priority_queue, whose sift order leaves equal keys in an
// unspecified relative order. Pop order is therefore a pure function of
// the push sequence, which is what lets the event engine promise bitwise
// replay of the slot engine.

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "netsim/event.h"

namespace surfnet::netsim {

class EventQueue {
 public:
  void push(int slot, EventClass cls, int payload = -1) {
    heap_.push_back(PendingEvent{slot, cls, next_seq_++, payload});
    sift_up(heap_.size() - 1);
    if (heap_.size() > peak_) peak_ = heap_.size();
  }

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }
  const PendingEvent& top() const { return heap_.front(); }

  PendingEvent pop() {
    PendingEvent out = heap_.front();
    heap_.front() = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
    return out;
  }

  /// Largest number of simultaneously pending events so far (reported as
  /// the "sim.event_queue_peak" gauge).
  std::size_t peak_size() const { return peak_; }
  /// Total events ever pushed (sequence ids are dense from 0).
  std::uint64_t pushed() const { return next_seq_; }

 private:
  void sift_up(std::size_t i) {
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!(heap_[i] < heap_[parent])) break;
      std::swap(heap_[i], heap_[parent]);
      i = parent;
    }
  }

  void sift_down(std::size_t i) {
    for (;;) {
      const std::size_t left = 2 * i + 1;
      const std::size_t right = left + 1;
      std::size_t smallest = i;
      if (left < heap_.size() && heap_[left] < heap_[smallest])
        smallest = left;
      if (right < heap_.size() && heap_[right] < heap_[smallest])
        smallest = right;
      if (smallest == i) return;
      std::swap(heap_[i], heap_[smallest]);
      i = smallest;
    }
  }

  std::vector<PendingEvent> heap_;
  std::uint64_t next_seq_ = 0;
  std::size_t peak_ = 0;
};

}  // namespace surfnet::netsim
