#pragma once

// The pending-event record of the event-driven simulation engine.
//
// The engine advances time by popping the earliest pending event from a
// deterministic min-heap (netsim/event_queue.h) instead of sweeping every
// slot. An event names a *slot the engine must visit* — visiting a slot
// replays the exact per-slot semantics of the slot engine, so an event is
// a wake-up call, never a state mutation of its own. Pop order is a pure
// function of the push sequence: events order by slot, then by class
// priority (the enum value), then by a stable sequence id assigned at
// push time. No wall-clock time and no address-ordered or hash-ordered
// containers are involved anywhere, so a (seed, FaultPlan) pair replays
// bitwise on any machine and thread count.

#include <cstdint>
#include <string_view>

namespace surfnet::netsim {

/// Why the engine wants to visit a slot. The enum value is the tie-break
/// priority after the slot (lower fires first); the split exists for
/// observability and queue tests — visiting a slot is idempotent work, so
/// coalescing same-slot events of different classes is always safe.
enum class EventClass : std::uint8_t {
  FaultOnset = 0,    ///< a scripted FaultEvent fires at this slot
  FaultExpiry = 1,   ///< a down/degraded/stalled window can end here
  Launch = 2,        ///< a request has codes left to put in flight
  RequestTimeout = 3,///< an in-flight code exhausts its timeout budget
  RetryTimer = 4,    ///< a retry/EC cooldown expires (backoff timers)
  EntanglementReady, ///< a starved segment's pools reach the threshold
  CodeWake,          ///< generic re-evaluation (movement, escalation)
  // Workload-plane classes (netsim/workload.h). Departure outranks Arrival
  // so that resources released at a slot are visible to admission control
  // for arrivals of the same slot — the ordering half of the traffic
  // engine's determinism contract (DESIGN.md "Dynamic traffic").
  Departure,         ///< an admitted request finishes and frees its route
  Arrival,           ///< an open-loop workload request enters the system
};

std::string_view to_string(EventClass cls);

/// One pending wake-up in the event queue.
struct PendingEvent {
  int slot = 0;            ///< simulation slot to visit
  EventClass cls = EventClass::CodeWake;
  std::uint64_t seq = 0;   ///< assigned by the queue; stable tie-break
  int payload = -1;        ///< class-dependent id (fiber, node, plan); -1 none

  friend bool operator<(const PendingEvent& a, const PendingEvent& b) {
    if (a.slot != b.slot) return a.slot < b.slot;
    if (a.cls != b.cls)
      return static_cast<unsigned>(a.cls) < static_cast<unsigned>(b.cls);
    return a.seq < b.seq;
  }
};

}  // namespace surfnet::netsim
