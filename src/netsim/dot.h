#pragma once

// Graphviz export of network topologies and schedules, for inspecting the
// networks the benches generate: `dot -Tsvg network.dot -o network.svg`.

#include <string>

#include "netsim/schedule.h"
#include "netsim/topology.h"

namespace surfnet::netsim {

/// DOT graph of the topology: users (circles), switches (boxes), servers
/// (double boxes); fibers labelled with fidelity and pair capacity.
std::string to_dot(const Topology& topology);

/// DOT graph with a schedule's routes overlaid: Core paths in red,
/// Support paths in blue, EC servers filled.
std::string to_dot(const Topology& topology, const Schedule& schedule);

}  // namespace surfnet::netsim
