#include "netsim/workload.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "netsim/event_queue.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace surfnet::netsim {

namespace {

/// Post-warmup latency histogram resolution; the last bucket overflows.
constexpr int kLatencyBuckets = 2048;

/// One admitted request holding capacity until its departure fires.
struct ActiveRequest {
  AdmittedRoute route;
  int arrival_slot = 0;
  int request_id = -1;
  bool live = false;
};

/// Inverse-transform interarrival gap in whole slots. Drawing exactly one
/// uniform per gap — at the event-processing point, never per slot — is
/// what keeps the slot and event engines on the same RNG stream.
int draw_gap(const WorkloadParams& params, util::Rng& rng) {
  const double u = rng.uniform();
  double gap = 0.0;
  if (params.process == ArrivalProcess::Poisson) {
    gap = -std::log1p(-u) / params.arrival_rate;
  } else {
    // Scale chosen so the continuous mean matches 1/arrival_rate.
    const double alpha = params.pareto_shape;
    const double x_m = (alpha - 1.0) / (alpha * params.arrival_rate);
    gap = x_m * std::pow(1.0 - u, -1.0 / alpha);
  }
  const double capped = std::min(gap, 1e9);
  return static_cast<int>(capped);
}

/// Weighted demand-class selection by inverse transform over the running
/// weight sum (one uniform, any class count).
int draw_class(const std::vector<DemandClass>& classes, double total_weight,
               util::Rng& rng) {
  const double target = rng.uniform() * total_weight;
  double acc = 0.0;
  for (std::size_t i = 0; i < classes.size(); ++i) {
    acc += classes[i].weight;
    if (target < acc) return static_cast<int>(i);
  }
  return static_cast<int>(classes.size()) - 1;
}

}  // namespace

double TrafficResult::latency_percentile(double p) const {
  if (latency_count <= 0) return 0.0;
  const long long target = std::max<long long>(
      1, static_cast<long long>(std::ceil(p * latency_count)));
  long long seen = 0;
  for (std::size_t i = 0; i < latency_hist.size(); ++i) {
    seen += latency_hist[i];
    if (seen >= target) return static_cast<double>(i);
  }
  return static_cast<double>(latency_hist.empty() ? 0
                                                  : latency_hist.size() - 1);
}

TrafficResult run_traffic(const Topology& topology, RouteProvider& provider,
                          const WorkloadParams& params, util::Rng& rng,
                          SimEngine engine) {
  if (params.arrival_rate <= 0.0)
    throw std::invalid_argument("run_traffic: arrival_rate must be > 0");
  if (params.process == ArrivalProcess::Pareto && params.pareto_shape <= 1.0)
    throw std::invalid_argument(
        "run_traffic: pareto_shape must be > 1 for a finite mean");

  std::vector<int> users;
  for (int v = 0; v < topology.num_nodes(); ++v)
    if (topology.is_user(v)) users.push_back(v);
  if (users.size() < 2)
    throw std::invalid_argument("run_traffic: need at least two users");

  const std::vector<DemandClass> default_classes{DemandClass{}};
  const std::vector<DemandClass>& classes =
      params.classes.empty() ? default_classes : params.classes;
  double total_weight = 0.0;
  for (const auto& c : classes) {
    if (c.weight <= 0.0 || c.codes <= 0)
      throw std::invalid_argument(
          "run_traffic: demand classes need positive weight and codes");
    total_weight += c.weight;
  }

  const obs::Sink& sink = params.sink;
  TrafficResult result;
  result.latency_hist.assign(kLatencyBuckets + 1, 0);

  EventQueue queue;
  std::vector<ActiveRequest> active;
  std::vector<int> free_slots;  ///< recycled `active` indices (LIFO)
  long long scheduled_arrivals = 0;
  long long next_request_id = 0;
  int active_codes = 0;
  int ops_since_reopt = 0;
  double headroom = 0.0;
  bool headroom_known = false;

  const auto maybe_reoptimize = [&]() {
    if (params.reoptimize_every <= 0) return;
    if (++ops_since_reopt < params.reoptimize_every) return;
    ops_since_reopt = 0;
    headroom = provider.reoptimize();
    headroom_known = true;
    if (sink.metrics) {
      sink.metrics->count("traffic.reoptimizations");
      sink.metrics->gauge("traffic.headroom", headroom);
    }
  };

  const auto schedule_next_arrival = [&](int from_slot) {
    if (params.max_requests > 0 && scheduled_arrivals >= params.max_requests)
      return;
    const int gap = draw_gap(params, rng);
    if (from_slot > params.horizon_slots - gap) return;
    queue.push(from_slot + gap, EventClass::Arrival);
    ++scheduled_arrivals;
  };

  const auto process_arrival = [&](int slot) {
    const bool measured = slot >= params.warmup_slots;
    const long long request = next_request_id++;
    ++result.arrivals;
    if (measured) ++result.measured_arrivals;

    const int src_index = static_cast<int>(rng.below(users.size()));
    int dst_index = static_cast<int>(rng.below(users.size() - 1));
    if (dst_index >= src_index) ++dst_index;
    const int src = users[static_cast<std::size_t>(src_index)];
    const int dst = users[static_cast<std::size_t>(dst_index)];
    const int class_index = draw_class(classes, total_weight, rng);
    const DemandClass& cls = classes[static_cast<std::size_t>(class_index)];

    if (sink.trace)
      sink.trace->record(obs::Event::arrival(
          slot, static_cast<int>(request), src, dst, class_index));
    if (sink.metrics) sink.metrics->count("traffic.arrivals");

    const auto block = [&](BlockReason reason) {
      ++result.blocked;
      if (measured) {
        ++result.measured_blocked;
        ++result.blocked_by[static_cast<int>(reason)];
      }
      if (sink.trace)
        sink.trace->record(obs::Event::blocked(slot,
                                               static_cast<int>(request),
                                               static_cast<int>(reason)));
      if (sink.metrics) sink.metrics->count("traffic.blocked");
    };

    // Admission control, cheapest check first; the provider is consulted
    // only for requests that pass the load gates.
    if (params.admission.max_active_codes > 0 &&
        active_codes + cls.codes > params.admission.max_active_codes) {
      block(BlockReason::Load);
      return;
    }
    if (headroom_known && headroom < params.admission.shed_headroom &&
        cls.priority < params.admission.shed_below_priority) {
      block(BlockReason::Load);
      return;
    }

    auto route = provider.admit(src, dst, cls.codes);
    if (!route) {
      block(BlockReason::Capacity);
      maybe_reoptimize();
      return;
    }
    // Route fidelity estimate from accumulated path noise.
    const double fidelity = std::max(0.0, 1.0 - route->noise);
    if (fidelity < cls.fidelity_floor) {
      provider.release(*route);
      block(BlockReason::Fidelity);
      maybe_reoptimize();
      return;
    }
    const int hops = static_cast<int>(route->path.size()) - 1;
    const int est_slots = params.service_base + params.service_per_hop * hops;
    if (cls.deadline_slots > 0 && est_slots > cls.deadline_slots) {
      provider.release(*route);
      block(BlockReason::Deadline);
      maybe_reoptimize();
      return;
    }

    const int jitter =
        params.service_jitter > 0
            ? static_cast<int>(rng.below(
                  static_cast<std::size_t>(params.service_jitter) + 1))
            : 0;
    const int service = std::max(1, est_slots + jitter);

    int entry;
    if (!free_slots.empty()) {
      entry = free_slots.back();
      free_slots.pop_back();
    } else {
      entry = static_cast<int>(active.size());
      active.emplace_back();
    }
    auto& slot_entry = active[static_cast<std::size_t>(entry)];
    slot_entry.route = std::move(*route);
    slot_entry.arrival_slot = slot;
    slot_entry.request_id = static_cast<int>(request);
    slot_entry.live = true;
    active_codes += slot_entry.route.codes;
    queue.push(slot + service, EventClass::Departure, entry);

    ++result.admitted;
    if (measured) {
      ++result.measured_admitted;
      ++result.admitted_by[static_cast<int>(slot_entry.route.source)];
    }
    if (sink.trace)
      sink.trace->record(obs::Event::admit(
          slot, static_cast<int>(request), slot_entry.route.codes, hops,
          service, static_cast<int>(slot_entry.route.source),
          slot_entry.route.distance));
    if (sink.metrics) sink.metrics->count("traffic.admitted");
    maybe_reoptimize();
  };

  const auto process_departure = [&](int slot, int entry) {
    auto& request = active[static_cast<std::size_t>(entry)];
    provider.release(request.route);
    active_codes -= request.route.codes;
    request.live = false;
    free_slots.push_back(entry);

    const int latency = slot - request.arrival_slot;
    ++result.departures;
    if (slot >= params.warmup_slots) {
      ++result.measured_departures;
      const int bucket = std::min(latency, kLatencyBuckets);
      ++result.latency_hist[static_cast<std::size_t>(bucket)];
      ++result.latency_count;
      result.latency_total += latency;
    }
    if (sink.trace)
      sink.trace->record(
          obs::Event::depart(slot, request.request_id, latency));
    if (sink.metrics) sink.metrics->count("traffic.departures");
    maybe_reoptimize();
  };

  // Degradation-window plumbing: the scale is a pure function of the
  // event slot, and events are processed in nondecreasing slot order on
  // both engines, so the provider sees the same boundary crossings in the
  // same places on every replay.
  const bool window_active =
      params.degrade_until_slot > params.degrade_from_slot &&
      params.degrade_noise_scale != 1.0;
  double current_scale = 1.0;
  const auto sync_noise_scale = [&](int slot) {
    if (!window_active) return;
    const double scale = slot >= params.degrade_from_slot &&
                                 slot < params.degrade_until_slot
                             ? params.degrade_noise_scale
                             : 1.0;
    if (scale == current_scale) return;
    current_scale = scale;
    provider.set_noise_scale(scale);
    if (sink.metrics) {
      sink.metrics->count("traffic.noise_scale_changes");
      sink.metrics->gauge("traffic.noise_scale", scale);
    }
  };

  const auto process = [&](const PendingEvent& event) {
    result.last_slot = event.slot;
    sync_noise_scale(event.slot);
    if (event.cls == EventClass::Arrival) {
      process_arrival(event.slot);
      // The next arrival is seeded from the one being processed, so the
      // stream stays open-loop: admission decisions never shift it.
      schedule_next_arrival(event.slot);
    } else {
      process_departure(event.slot, event.payload);
    }
  };

  schedule_next_arrival(0);
  if (engine == SimEngine::Event) {
    // Jump from event to event; empty slots cost nothing.
    while (!queue.empty()) process(queue.pop());
  } else {
    // Slot sweep: visit every slot in order, draining the events due at
    // each. Pop order — and therefore the RNG stream and every result —
    // is identical to the event engine's.
    int slot = 0;
    while (!queue.empty()) {
      while (!queue.empty() && queue.top().slot == slot) process(queue.pop());
      ++slot;
    }
  }

  result.measured_slots =
      std::max(0, result.last_slot - params.warmup_slots + 1);
  if (sink.metrics) {
    sink.metrics->gauge("traffic.event_queue_peak",
                        static_cast<double>(queue.peak_size()));
    sink.metrics->count("traffic.admit_greedy", result.admitted_by[0]);
    sink.metrics->count("traffic.admit_warm", result.admitted_by[1]);
    sink.metrics->count("traffic.admit_cold", result.admitted_by[2]);
  }
  return result;
}

}  // namespace surfnet::netsim
