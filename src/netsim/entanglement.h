#pragma once

// Entanglement substrate (paper Sec. IV-B / V): probabilistic pair
// generation at switches, entanglement swapping along a path, and the
// recurrence purification protocol used to raise pair fidelity.

#include <vector>

#include "util/rng.h"

namespace surfnet::netsim {

/// One round of recurrence purification combining two pairs of fidelities
/// rho1 and rho2 (paper Sec. IV-C, ref. [11]):
///   rho' = rho1 rho2 / (rho1 rho2 + (1 - rho1)(1 - rho2)).
double purify(double rho1, double rho2);

/// Fidelity after consuming `extra_pairs` additional pairs of the same base
/// fidelity in successive purification rounds (the paper's Purification
/// N = 1, 2, 9 benchmarks use extra_pairs = N).
double purified_fidelity(double base, int extra_pairs);

/// Fidelity of the end-to-end pair obtained by swapping a chain of link
/// pairs: the no-error probabilities multiply.
double swapped_fidelity(const std::vector<double>& link_fidelities);

/// Per-fiber inventory of prepared entangled pairs. Switches run a routine
/// that generates pairs probabilistically each time slot; teleporting a
/// qubit across a fiber consumes one pair.
class EntanglementPool {
 public:
  /// `generation_rate` is the per-slot probability that a fiber's routine
  /// produces one new pair; `capacity` caps the stored pairs per fiber.
  EntanglementPool(int num_fibers, double generation_rate, int capacity);

  /// Advance one time slot: every fiber independently generates.
  void tick(util::Rng& rng);

  int available(int fiber) const {
    return pairs_[static_cast<std::size_t>(fiber)];
  }

  /// Consume `count` pairs on a fiber; returns false (and consumes nothing)
  /// when fewer are available.
  bool consume(int fiber, int count);

  /// Pre-fill every fiber to its capacity (offline-scheduling snapshots).
  void fill();

  double generation_rate() const { return rate_; }

 private:
  std::vector<int> pairs_;
  double rate_;
  int capacity_;
};

}  // namespace surfnet::netsim
