#pragma once

// Deterministic fault injection for the online-execution simulators.
//
// A FaultPlan describes *what can go wrong* during a run: a scripted list
// of events pinned to exact slots plus stochastic per-slot fault processes.
// A FaultInjector executes the plan against one simulation: it owns the
// down/degraded state of every fiber and node, draws stochastic faults from
// the simulation's RNG in a fixed order (so a (seed, plan) pair replays to
// a bitwise-identical run on any thread count), and reports every injected
// fault through the obs::Sink (fiber_down / node_down / degraded /
// decode_stall events and "sim.*" counters).
//
// Fault kinds (all windows are half-open [slot, until_slot)):
//   * FiberCut                  — the fiber carries no traffic; prepared
//                                 pairs keep accumulating (the sources sit
//                                 at the endpoints, the cut is the fiber);
//   * NodeOutage                — a switch/server drops out: nothing moves
//                                 through it and corrections at it wait;
//   * EntanglementDegradation   — the fiber's pair-generation rate is
//                                 multiplied by `magnitude` in [0, 1];
//   * DecodeStall               — a decode-latency spike: corrections
//                                 stall network-wide for the window.
//
// The stochastic processes reproduce — and extend — the paper's Sec. V-B
// failure model. With only `fiber_cut_rate` set, the injector draws the
// exact same random-variate sequence as the retired
// SimulationParams::fiber_failure_rate path, which is how
// FaultPlanBuilder::fiber_noise keeps pre-plan configurations
// bitwise-identical.

#include <cstdint>
#include <string_view>
#include <vector>

#include "netsim/topology.h"
#include "obs/sink.h"
#include "util/rng.h"

namespace surfnet::netsim {

enum class FaultKind : std::uint8_t {
  FiberCut,
  NodeOutage,
  EntanglementDegradation,
  DecodeStall,
};

std::string_view to_string(FaultKind kind);

/// One scripted fault, fired when the simulation reaches `slot`.
struct FaultEvent {
  FaultKind kind = FaultKind::FiberCut;
  int slot = 0;      ///< simulation slot the fault starts (0-based)
  int target = -1;   ///< fiber id (cut/degradation), node id (outage);
                     ///< ignored for DecodeStall
  int duration = 1;  ///< slots the condition lasts (>= 1)
  double magnitude = 1.0;  ///< degradation rate multiplier in [0, 1]
};

/// Per-slot stochastic fault processes. A rate of 0 disables a process
/// entirely — it then consumes no random variates, which preserves the
/// RNG sequence of runs that never used it.
struct StochasticFaults {
  /// Independent per-fiber cuts — the legacy Sec. V-B model: every live
  /// fiber crashes with this probability each slot.
  double fiber_cut_rate = 0.0;
  int fiber_cut_duration = 20;

  /// Correlated multi-link failures: with this per-slot probability, one
  /// uniformly chosen fiber goes down together with up to
  /// `correlated_group_size - 1` fibers sharing an endpoint with it
  /// (a conduit cut taking out a whole bundle).
  double correlated_cut_rate = 0.0;
  int correlated_group_size = 3;
  int correlated_cut_duration = 20;

  /// Switch/server outages: every live non-user node fails with this
  /// probability each slot. User endpoints never fail (a dead endpoint
  /// would make its requests permanently unroutable).
  double node_outage_rate = 0.0;
  int node_outage_duration = 20;

  /// Entanglement-source degradation: with this per-slot probability one
  /// uniformly chosen fiber generates pairs at `degradation_factor` times
  /// its configured rate for the window.
  double degradation_rate = 0.0;
  double degradation_factor = 0.25;
  int degradation_duration = 20;

  /// Decode-latency spikes: with this per-slot probability every
  /// correction in the network stalls for the window.
  double decode_stall_rate = 0.0;
  int decode_stall_duration = 5;

  bool any() const {
    return fiber_cut_rate > 0.0 || correlated_cut_rate > 0.0 ||
           node_outage_rate > 0.0 || degradation_rate > 0.0 ||
           decode_stall_rate > 0.0;
  }
};

/// A complete fault schedule: scripted events plus stochastic processes.
struct FaultPlan {
  std::vector<FaultEvent> scripted;
  StochasticFaults stochastic;

  bool empty() const { return scripted.empty() && !stochastic.any(); }

  /// The legacy SimulationParams failure model as a plan: independent
  /// per-fiber cuts at `rate` lasting `duration` slots.
  static FaultPlan fiber_noise(double rate, int duration);
};

/// Fluent builder assembling the one canonical FaultPlan a simulation
/// carries. This is the single entry point for fault configuration since
/// the retirement of the SimulationParams fiber_failure_rate/_duration
/// knobs: `FaultPlanBuilder().fiber_noise(rate, duration).build()` maps an
/// old configuration onto a plan whose injector draws the exact
/// random-variate sequence of the pre-plan simulator, so historical runs
/// replay bitwise through the builder (pinned by faults_test's golden
/// equivalence test).
class FaultPlanBuilder {
 public:
  /// Pin one scripted fault to an exact slot.
  FaultPlanBuilder& scripted(const FaultEvent& event) {
    plan_.scripted.push_back(event);
    return *this;
  }
  /// Independent per-fiber cuts — the legacy Sec. V-B model and the
  /// bitwise image of the retired fiber_failure_rate/_duration knobs.
  FaultPlanBuilder& fiber_noise(double rate, int duration) {
    plan_.stochastic.fiber_cut_rate = rate;
    plan_.stochastic.fiber_cut_duration = duration;
    return *this;
  }
  /// Correlated multi-link failures (conduit cuts).
  FaultPlanBuilder& correlated_cuts(double rate, int group_size,
                                    int duration) {
    plan_.stochastic.correlated_cut_rate = rate;
    plan_.stochastic.correlated_group_size = group_size;
    plan_.stochastic.correlated_cut_duration = duration;
    return *this;
  }
  /// Switch/server outages.
  FaultPlanBuilder& node_outages(double rate, int duration) {
    plan_.stochastic.node_outage_rate = rate;
    plan_.stochastic.node_outage_duration = duration;
    return *this;
  }
  /// Entanglement-source degradation windows.
  FaultPlanBuilder& degradation(double rate, double factor, int duration) {
    plan_.stochastic.degradation_rate = rate;
    plan_.stochastic.degradation_factor = factor;
    plan_.stochastic.degradation_duration = duration;
    return *this;
  }
  /// Network-wide decode-latency spikes.
  FaultPlanBuilder& decode_stalls(double rate, int duration) {
    plan_.stochastic.decode_stall_rate = rate;
    plan_.stochastic.decode_stall_duration = duration;
    return *this;
  }

  FaultPlan build() const { return plan_; }

 private:
  FaultPlan plan_;
};

/// Observer of entanglement-rate mutations, for engines that account pool
/// gains lazily: before_rate_change fires immediately *before* the
/// injector rewrites a fiber's degradation window, so the observer can
/// materialize gains accrued under the outgoing rate first.
class RateChangeListener {
 public:
  virtual ~RateChangeListener() = default;
  virtual void before_rate_change(int fiber, int slot) = 0;
};

/// Executes one FaultPlan against one simulation run. All mutation happens
/// in begin_slot (called once per slot, before any code moves); the query
/// methods are pure reads, so the simulator may interleave them freely.
class FaultInjector {
 public:
  /// Validates the plan (targets in range, positive durations, magnitudes
  /// in [0, 1]); throws std::invalid_argument on a malformed plan.
  FaultInjector(const Topology& topology, const FaultPlan& plan);

  /// Apply scripted events scheduled for `slot` and sample the stochastic
  /// processes. Slots must be visited in increasing order from 0. The
  /// event engine may skip slots at which the injector provably does
  /// nothing (no scripted event due, no stochastic process armed). A
  /// non-null `listener` observes rate mutations; passing nullptr changes
  /// nothing.
  void begin_slot(int slot, util::Rng& rng, const obs::Sink& sink,
                  RateChangeListener* listener = nullptr);

  bool fiber_down(int fiber, int slot) const {
    return slot < fiber_down_until_[static_cast<std::size_t>(fiber)];
  }
  bool node_down(int node, int slot) const {
    return slot < node_down_until_[static_cast<std::size_t>(node)];
  }
  /// Pair-generation rate multiplier for a fiber (1.0 when healthy).
  double entanglement_factor(int fiber, int slot) const {
    return slot < degrade_until_[static_cast<std::size_t>(fiber)]
               ? degrade_factor_[static_cast<std::size_t>(fiber)]
               : 1.0;
  }
  /// True while a decode-latency spike stalls all corrections.
  bool decode_stalled(int slot) const { return slot < stall_until_; }

  // Window-boundary reads for the event engine's wake computation. Each
  // returns the first slot at which the named condition no longer holds
  // (0 when it never held); the corresponding *_down/ factor query flips
  // exactly there.
  int fiber_down_until(int fiber) const {
    return fiber_down_until_[static_cast<std::size_t>(fiber)];
  }
  int node_down_until(int node) const {
    return node_down_until_[static_cast<std::size_t>(node)];
  }
  int degrade_until(int fiber) const {
    return degrade_until_[static_cast<std::size_t>(fiber)];
  }
  /// Rate multiplier while slot < degrade_until(fiber) (stale otherwise).
  double degrade_factor(int fiber) const {
    return degrade_factor_[static_cast<std::size_t>(fiber)];
  }
  int stall_until() const { return stall_until_; }

  /// True when the plan can never take anything down (lets the simulator
  /// skip per-slot injector work on fault-free runs).
  bool inert() const { return inert_; }

  /// True when the plan can change an entanglement-generation rate at some
  /// point of the run (scripted degradation or stochastic degradation
  /// process). False lets engines freeze the fiber→rate buckets per run.
  bool degradations_possible() const;

  /// The scripted plan, stable-sorted by slot (the event engine schedules
  /// onset and expiry wake-ups from it).
  const std::vector<FaultEvent>& scripted() const { return plan_.scripted; }

  const StochasticFaults& stochastic() const { return plan_.stochastic; }

 private:
  void apply(const FaultEvent& event, int slot, const obs::Sink& sink,
             RateChangeListener* listener);
  void cut_fiber(int fiber, int slot, int duration, const obs::Sink& sink);

  const Topology* topology_;
  FaultPlan plan_;            ///< scripted sorted by slot (stable)
  std::size_t next_scripted_ = 0;
  std::vector<int> fiber_down_until_;
  std::vector<int> node_down_until_;
  std::vector<int> degrade_until_;
  std::vector<double> degrade_factor_;
  int stall_until_ = 0;
  bool inert_ = false;
};

}  // namespace surfnet::netsim
