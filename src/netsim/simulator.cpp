#include "netsim/simulator.h"

#include <map>
#include <stdexcept>

#include "netsim/event_simulator.h"
#include "netsim/sim_internal.h"

namespace surfnet::netsim {

std::string_view to_string(NetworkDesign design) {
  switch (design) {
    case NetworkDesign::SurfNet: return "SurfNet";
    case NetworkDesign::Raw: return "Raw";
    case NetworkDesign::Purification1: return "Purification N=1";
    case NetworkDesign::Purification2: return "Purification N=2";
    case NetworkDesign::Purification9: return "Purification N=9";
  }
  return "?";
}

int purification_rounds(NetworkDesign design) {
  switch (design) {
    case NetworkDesign::Purification1: return 1;
    case NetworkDesign::Purification2: return 2;
    case NetworkDesign::Purification9: return 9;
    default: return 0;
  }
}

std::string_view to_string(CodeOutcome outcome) {
  switch (outcome) {
    case CodeOutcome::Succeeded: return "success";
    case CodeOutcome::LogicalError: return "logical_error";
    case CodeOutcome::TimedOut: return "timeout";
  }
  return "?";
}

std::unique_ptr<Simulator> make_simulator(NetworkDesign design,
                                          const decoder::Decoder& decoder) {
  return make_simulator(design, decoder, SimEngine::Slot);
}

SimulationResult simulate_surfnet(const Topology& topology,
                                  const Schedule& schedule,
                                  const SimulationParams& params,
                                  const decoder::Decoder& decoder,
                                  util::Rng& rng) {
  using namespace detail;
  SimulationResult result;
  result.codes_scheduled = schedule.scheduled_codes();
  if (schedule.scheduled.empty()) return result;
  const obs::Sink& sink = params.sink;

  std::map<int, CodeGeometry> geometries;
  auto geometry_for = [&](int distance) -> const CodeGeometry& {
    auto it = geometries.find(distance);
    if (it == geometries.end())
      it = geometries.emplace(distance, CodeGeometry(distance)).first;
    return it->second;
  };

  std::vector<RequestPlan> plans;
  plans.reserve(schedule.scheduled.size());
  for (const auto& s : schedule.scheduled) {
    if (s.codes <= 0) continue;
    const int distance =
        s.code_distance > 0 ? s.code_distance : params.code_distance;
    plans.push_back(make_plan(topology, s, geometry_for(distance)));
  }

  // Per-fiber prepared-pair inventory; fault state lives in the injector.
  std::vector<int> pairs(static_cast<std::size_t>(topology.num_fibers()), 0);
  FaultInjector injector(topology, params.faults);
  const RecoveryPolicy policy = params.recovery;
  const EntanglementRates rates(topology, params, injector);
  VectorPool pool{pairs};

  std::vector<int> codes_remaining(plans.size());
  std::vector<ActiveCode> active(plans.size());
  std::vector<char> has_active(plans.size(), 0);
  for (std::size_t i = 0; i < plans.size(); ++i)
    codes_remaining[i] = plans[i].sched->codes;

  std::vector<std::size_t> order(plans.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  int in_flight_or_pending = result.codes_scheduled;
  int final_slot = 0;
  for (int slot = 0; slot < params.max_slots && in_flight_or_pending > 0;
       ++slot) {
    final_slot = slot;
    // Entanglement generation routine at every switch. Gains draw before
    // fault injection (the legacy variate order), so a degradation window
    // injected at slot s scales gains from slot s+1 on.
    rates.advance(pairs, injector, slot, rng);
    injector.begin_slot(slot, rng, sink);
    emit_pool_snapshot(pairs, slot, sink);

    // Randomize service order so no request systematically wins contention.
    for (std::size_t i = order.size(); i > 1; --i)
      std::swap(order[i - 1], order[rng.below(i)]);

    for (std::size_t idx : order) {
      const RequestPlan& plan = plans[idx];
      if (!has_active[idx]) {
        if (codes_remaining[idx] == 0) continue;
        --codes_remaining[idx];
        active[idx] = launch(plan, slot);
        has_active[idx] = 1;
      }
      if (process_code(topology, injector, policy, params, decoder, plan,
                       active[idx], slot, pool, result,
                       rng) == CodeStep::Finished) {
        has_active[idx] = 0;
        --in_flight_or_pending;
      }
    }
  }

  // Codes still in flight when the run ended are timeouts; their slot
  // counts are censored at the last simulated slot.
  for (std::size_t idx = 0; idx < plans.size(); ++idx) {
    if (!has_active[idx]) continue;
    const ActiveCode& code = active[idx];
    const int slots = final_slot - code.start_slot + 1;
    result.codes.push_back({plans[idx].sched->request_index, slots,
                            code.corrections, CodeOutcome::TimedOut});
    if (sink.metrics) sink.metrics->count("sim.timeouts");
    if (sink.trace)
      sink.trace->record(obs::Event::timeout(
          final_slot, plans[idx].sched->request_index, slots));
  }
  return result;
}

SimulationResult simulate_purification(const Topology& topology,
                                       const Schedule& schedule,
                                       int extra_pairs,
                                       const SimulationParams& params,
                                       util::Rng& rng) {
  using detail::EntanglementRates;
  SimulationResult result;
  result.codes_scheduled = schedule.scheduled_codes();
  if (schedule.scheduled.empty()) return result;
  const obs::Sink& sink = params.sink;

  struct Plan {
    const ScheduledRequest* sched;
    double success_prob;
  };
  std::vector<Plan> plans;
  for (const auto& s : schedule.scheduled) {
    if (s.codes <= 0) continue;
    const auto& path = s.core_path.empty() ? s.support_path : s.core_path;
    if (path.size() < 2)
      throw std::invalid_argument("purification schedule without a path");
    double prob = 1.0;
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      const int e = topology.fiber_between(path[i], path[i + 1]);
      if (e < 0)
        throw std::invalid_argument("schedule path has non-adjacent nodes");
      // Purification raises pair fidelity, but the bare message qubit also
      // survives the teleportation operations of each hop unprotected.
      prob *= purified_fidelity(topology.fiber(e).fidelity, extra_pairs) *
              (1.0 - params.teleport_op_noise);
    }
    plans.push_back({&s, prob});
  }

  std::vector<int> pairs(static_cast<std::size_t>(topology.num_fibers()), 0);
  FaultInjector injector(topology, params.faults);
  const RecoveryPolicy policy = params.recovery;
  const EntanglementRates rates(topology, params, injector);
  const int per_hop = 1 + extra_pairs;

  struct State {
    int pos = 0;
    int start = 0;
  };
  std::vector<int> codes_remaining(plans.size());
  std::vector<State> active(plans.size());
  std::vector<char> has_active(plans.size(), 0);
  for (std::size_t i = 0; i < plans.size(); ++i)
    codes_remaining[i] = plans[i].sched->codes;

  std::vector<std::size_t> order(plans.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  int pending = result.codes_scheduled;
  int final_slot = 0;
  for (int slot = 0; slot < params.max_slots && pending > 0; ++slot) {
    final_slot = slot;
    rates.advance(pairs, injector, slot, rng);
    injector.begin_slot(slot, rng, sink);
    detail::emit_pool_snapshot(pairs, slot, sink);
    for (std::size_t i = order.size(); i > 1; --i)
      std::swap(order[i - 1], order[rng.below(i)]);

    for (std::size_t idx : order) {
      const Plan& plan = plans[idx];
      const auto& path = plan.sched->core_path.empty()
                             ? plan.sched->support_path
                             : plan.sched->core_path;
      if (!has_active[idx]) {
        if (codes_remaining[idx] == 0) continue;
        --codes_remaining[idx];
        active[idx] = State{0, slot};
        has_active[idx] = 1;
      }
      State& state = active[idx];
      // Per-code timeout budget (shared with the surface-code simulator).
      if (policy.code_timeout_slots > 0 &&
          slot - state.start >= policy.code_timeout_slots) {
        const int slots = slot - state.start;
        result.codes.push_back({plan.sched->request_index, slots, 0,
                                CodeOutcome::TimedOut});
        if (sink.metrics) sink.metrics->count("sim.timeouts");
        if (sink.trace)
          sink.trace->record(obs::Event::timeout(
              slot, plan.sched->request_index, slots));
        has_active[idx] = 0;
        --pending;
        continue;
      }
      if (state.pos + 1 < static_cast<int>(path.size())) {
        const int next = path[static_cast<std::size_t>(state.pos) + 1];
        const int e = topology.fiber_between(
            path[static_cast<std::size_t>(state.pos)], next);
        if (!injector.fiber_down(e, slot) &&
            !injector.node_down(next, slot) &&
            pairs[static_cast<std::size_t>(e)] >= per_hop) {
          pairs[static_cast<std::size_t>(e)] -= per_hop;
          ++state.pos;
        }
      }
      if (state.pos + 1 == static_cast<int>(path.size())) {
        ++result.codes_delivered;
        const bool ok = rng.bernoulli(plan.success_prob);
        if (ok) ++result.codes_succeeded;
        const int slots = slot - state.start + 1;
        result.total_latency += slots;
        result.codes.push_back(
            {plan.sched->request_index, slots, 0,
             ok ? CodeOutcome::Succeeded : CodeOutcome::LogicalError});
        if (sink.metrics) {
          sink.metrics->count("sim.delivered");
          if (ok) sink.metrics->count("sim.succeeded");
          sink.metrics->observe("sim.latency_slots", slots,
                                detail::latency_bounds());
        }
        if (sink.trace)
          sink.trace->record(obs::Event::delivered(
              slot, plan.sched->request_index, slots, 0, !ok));
        has_active[idx] = 0;
        --pending;
      }
    }
  }

  for (std::size_t idx = 0; idx < plans.size(); ++idx) {
    if (!has_active[idx]) continue;
    const int slots = final_slot - active[idx].start + 1;
    result.codes.push_back({plans[idx].sched->request_index, slots, 0,
                            CodeOutcome::TimedOut});
    if (sink.metrics) sink.metrics->count("sim.timeouts");
    if (sink.trace)
      sink.trace->record(obs::Event::timeout(
          final_slot, plans[idx].sched->request_index, slots));
  }
  return result;
}

}  // namespace surfnet::netsim
