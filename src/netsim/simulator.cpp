#include "netsim/simulator.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

#include "decoder/code_trial.h"
#include "netsim/channel.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "qec/core_support.h"
#include "qec/lattice.h"
#include "qec/syndrome.h"

namespace surfnet::netsim {

std::string_view to_string(NetworkDesign design) {
  switch (design) {
    case NetworkDesign::SurfNet: return "SurfNet";
    case NetworkDesign::Raw: return "Raw";
    case NetworkDesign::Purification1: return "Purification N=1";
    case NetworkDesign::Purification2: return "Purification N=2";
    case NetworkDesign::Purification9: return "Purification N=9";
  }
  return "?";
}

int purification_rounds(NetworkDesign design) {
  switch (design) {
    case NetworkDesign::Purification1: return 1;
    case NetworkDesign::Purification2: return 2;
    case NetworkDesign::Purification9: return 9;
    default: return 0;
  }
}

std::string_view to_string(CodeOutcome outcome) {
  switch (outcome) {
    case CodeOutcome::Succeeded: return "success";
    case CodeOutcome::LogicalError: return "logical_error";
    case CodeOutcome::TimedOut: return "timeout";
  }
  return "?";
}

std::unique_ptr<Simulator> make_simulator(NetworkDesign design,
                                          const decoder::Decoder& decoder) {
  switch (design) {
    case NetworkDesign::SurfNet:
    case NetworkDesign::Raw:
      return std::make_unique<SurfNetSimulator>(decoder);
    case NetworkDesign::Purification1:
    case NetworkDesign::Purification2:
    case NetworkDesign::Purification9:
      return std::make_unique<PurificationSimulator>(
          purification_rounds(design));
  }
  throw std::invalid_argument("unknown network design");
}

FaultPlan effective_fault_plan(const SimulationParams& params) {
  FaultPlan plan = params.faults;
  // Legacy shim: fold fiber_failure_rate into the plan unless the plan
  // already runs a fiber-cut process of its own. The resulting process
  // draws the exact random-variate sequence of the pre-plan simulator.
  if (params.fiber_failure_rate > 0.0 &&
      plan.stochastic.fiber_cut_rate == 0.0) {
    plan.stochastic.fiber_cut_rate = params.fiber_failure_rate;
    plan.stochastic.fiber_cut_duration = params.fiber_failure_duration;
  }
  return plan;
}

RecoveryPolicy effective_recovery(const SimulationParams& params) {
  RecoveryPolicy policy = params.recovery;
  policy.local_reroute = policy.local_reroute && params.enable_recovery;
  return policy;
}

namespace {

/// Lattice + Core/Support partition for one code distance, shared across
/// all codes of that distance in a run.
struct CodeGeometry {
  qec::SurfaceCodeLattice lattice;
  qec::CoreSupportPartition partition;
  explicit CodeGeometry(int distance)
      : lattice(distance), partition(qec::make_core_support(lattice)) {}
};

/// Static, validated view of one scheduled request.
struct RequestPlan {
  const ScheduledRequest* sched = nullptr;
  bool raw = false;  ///< no Core path: everything rides the plain channel
  struct Barrier {
    int node = -1;
    bool is_ec = false;
  };
  std::vector<Barrier> barriers;  ///< EC servers in order, then destination
  const CodeGeometry* geometry = nullptr;
};

void validate_path(const Topology& topology, const std::vector<int>& path) {
  for (std::size_t i = 0; i + 1 < path.size(); ++i)
    if (topology.fiber_between(path[i], path[i + 1]) < 0)
      throw std::invalid_argument("schedule path has non-adjacent nodes");
}

void require_in_order(const std::vector<int>& path,
                      const std::vector<int>& nodes) {
  std::size_t cursor = 0;
  for (int node : nodes) {
    while (cursor < path.size() && path[cursor] != node) ++cursor;
    if (cursor == path.size())
      throw std::invalid_argument("EC server not on scheduled path");
    ++cursor;
  }
}

RequestPlan make_plan(const Topology& topology, const ScheduledRequest& s,
                      const CodeGeometry& geometry) {
  RequestPlan plan;
  plan.sched = &s;
  plan.raw = s.core_path.empty();
  plan.geometry = &geometry;
  if (s.support_path.size() < 2)
    throw std::invalid_argument("scheduled request without a support path");
  validate_path(topology, s.support_path);
  require_in_order(s.support_path, s.ec_servers);
  if (!plan.raw) {
    validate_path(topology, s.core_path);
    require_in_order(s.core_path, s.ec_servers);
    if (s.core_path.front() != s.support_path.front() ||
        s.core_path.back() != s.support_path.back())
      throw std::invalid_argument("core/support paths disagree on endpoints");
  }
  for (int server : s.ec_servers) plan.barriers.push_back({server, true});
  plan.barriers.push_back({s.support_path.back(), false});
  return plan;
}

/// One in-flight surface code. Paths are per-code copies so that online
/// recovery (paper Sec. V-B) can reroute around failed fibers.
struct ActiveCode {
  std::vector<int> s_path;
  std::vector<int> c_path;
  int s_pos = 0;
  int c_pos = 0;
  int s_target = -1;  ///< index of the current barrier node in s_path
  int c_target = -1;
  int barrier = 0;
  double acc_support_mu = 0.0;  ///< noise since the last correction
  double acc_core_mu = 0.0;
  int acc_support_hops = 0;
  int jumps_since_ec = 0;
  int start_slot = 0;
  int cooldown = 0;
  int corrections = 0;
  int swap_attempts = 0;    ///< consecutive failed segment-jump swaps
  int failed_reroutes = 0;  ///< consecutive failed local recoveries
  bool corrupted = false;
};

int find_on_path(const std::vector<int>& path, int node, int from) {
  for (std::size_t i = static_cast<std::size_t>(from); i < path.size(); ++i)
    if (path[i] == node) return static_cast<int>(i);
  return -1;
}

/// Bucket bounds for the per-slot pool-total histogram ("sim.pool_total").
const std::vector<double>& pool_bounds() {
  static const std::vector<double> bounds{0,  10,  25,  50,   100,
                                          250, 500, 1000, 2500, 5000};
  return bounds;
}

/// Bucket bounds for delivered-code latency ("sim.latency_slots").
const std::vector<double>& latency_bounds() {
  static const std::vector<double> bounds{5,   10,  20,  40,   80,
                                          160, 320, 640, 1280, 2560};
  return bounds;
}

}  // namespace

SimulationResult simulate_surfnet(const Topology& topology,
                                  const Schedule& schedule,
                                  const SimulationParams& params,
                                  const decoder::Decoder& decoder,
                                  util::Rng& rng) {
  SimulationResult result;
  result.codes_scheduled = schedule.scheduled_codes();
  if (schedule.scheduled.empty()) return result;
  const obs::Sink& sink = params.sink;

  std::map<int, CodeGeometry> geometries;
  auto geometry_for = [&](int distance) -> const CodeGeometry& {
    auto it = geometries.find(distance);
    if (it == geometries.end())
      it = geometries.emplace(distance, CodeGeometry(distance)).first;
    return it->second;
  };

  std::vector<RequestPlan> plans;
  plans.reserve(schedule.scheduled.size());
  for (const auto& s : schedule.scheduled) {
    if (s.codes <= 0) continue;
    const int distance =
        s.code_distance > 0 ? s.code_distance : params.code_distance;
    plans.push_back(make_plan(topology, s, geometry_for(distance)));
  }

  // Per-fiber prepared-pair inventory; fault state lives in the injector.
  std::vector<int> pairs(static_cast<std::size_t>(topology.num_fibers()), 0);
  FaultInjector injector(topology, effective_fault_plan(params));
  const RecoveryPolicy policy = effective_recovery(params);

  std::vector<int> codes_remaining(plans.size());
  std::vector<ActiveCode> active(plans.size());
  std::vector<char> has_active(plans.size(), 0);
  for (std::size_t i = 0; i < plans.size(); ++i)
    codes_remaining[i] = plans[i].sched->codes;

  auto retarget = [&](const RequestPlan& plan, ActiveCode& code) {
    const int node =
        plan.barriers[static_cast<std::size_t>(code.barrier)].node;
    code.s_target = find_on_path(code.s_path, node, code.s_pos);
    if (code.s_target < 0)
      throw std::logic_error("barrier node lost from support path");
    if (!plan.raw) {
      code.c_target = find_on_path(code.c_path, node, code.c_pos);
      if (code.c_target < 0)
        throw std::logic_error("barrier node lost from core path");
    }
  };

  auto launch = [&](const RequestPlan& plan, int slot) {
    ActiveCode code;
    code.s_path = plan.sched->support_path;
    code.c_path = plan.sched->core_path;
    code.start_slot = slot;
    retarget(plan, code);
    return code;
  };

  // Escalation: replace the remainder of one channel's route with a fresh
  // plan through every remaining EC barrier to the destination
  // (netsim/recovery.h). Emits an escalate event whether or not a live
  // route exists; on success both channel targets are recomputed.
  auto escalate = [&](const RequestPlan& plan, ActiveCode& code,
                      bool core_channel, int slot) {
    std::vector<int> waypoints;
    for (std::size_t b = static_cast<std::size_t>(code.barrier);
         b < plan.barriers.size(); ++b)
      waypoints.push_back(plan.barriers[b].node);
    auto& path = core_channel ? code.c_path : code.s_path;
    const int pos = core_channel ? code.c_pos : code.s_pos;
    const bool ok =
        replan_route(topology, injector, slot, path, pos, waypoints);
    if (sink.metrics) sink.metrics->count("sim.escalations");
    if (sink.trace)
      sink.trace->record(obs::Event::escalate(
          slot, plan.sched->request_index, core_channel, ok));
    if (ok) retarget(plan, code);
  };

  // A local recovery that found no live detour: escalate to a full
  // re-route after the policy's threshold of consecutive failures.
  auto reroute_failed = [&](const RequestPlan& plan, ActiveCode& code,
                            bool core_channel, int slot) {
    ++code.failed_reroutes;
    if (policy.escalate_after_reroutes > 0 &&
        code.failed_reroutes >= policy.escalate_after_reroutes) {
      escalate(plan, code, core_channel, slot);
      code.failed_reroutes = 0;
    }
  };

  // Decode over the noise accumulated since the last correction. The
  // tracing path samples and decodes explicitly so that it can report
  // erasure and syndrome counts; it draws the same random-variate sequence
  // as run_code_trial, so traced and untraced runs stay bitwise-identical.
  auto run_correction = [&](const RequestPlan& plan, ActiveCode& code,
                            int slot, int node, bool is_ec) {
    const auto& geometry = *plan.geometry;
    const double support_pauli =
        pauli_rate_of_noise(params.noise_scale * code.acc_support_mu);
    const double support_erasure =
        erasure_rate(params.loss_per_hop, code.acc_support_hops);
    // Purification across the entanglement-based channel suppresses the
    // Core noise (paper Sec. V-A); teleported qubits are never lost in
    // transit, but every teleportation event adds un-purifiable operation
    // noise that the surface code — unlike a bare qubit — can correct.
    const double op_mu =
        -std::log(1.0 - params.teleport_op_noise) * code.jumps_since_ec;
    const double core_pauli = pauli_rate_of_noise(
        params.purification_factor * params.noise_scale * code.acc_core_mu +
        op_mu);

    std::vector<qec::QubitNoise> rates(
        static_cast<std::size_t>(geometry.lattice.num_data_qubits()));
    for (int q = 0; q < geometry.lattice.num_data_qubits(); ++q) {
      const bool core =
          !plan.raw && geometry.partition.is_core[static_cast<std::size_t>(q)];
      rates[static_cast<std::size_t>(q)] =
          core ? qec::QubitNoise{core_pauli, 0.0}
               : qec::QubitNoise{support_pauli, support_erasure};
    }
    const qec::NoiseProfile profile{std::move(rates)};
    bool success;
    if (sink.trace) {
      const auto sample = qec::sample_errors(profile, params.channel, rng);
      const auto prior = profile.component_error_prob(params.channel);
      success =
          decoder::decode_sample(geometry.lattice, sample, prior, decoder)
              .success();
      int erasures = 0;
      for (const char e : sample.erased) erasures += e ? 1 : 0;
      int syndromes = 0;
      for (const auto kind : {qec::GraphKind::Z, qec::GraphKind::X}) {
        const auto flips = qec::edge_flips(geometry.lattice, kind,
                                           sample.error);
        const auto bitmap =
            qec::syndrome_bitmap(geometry.lattice.graph(kind), flips);
        for (const char s : bitmap) syndromes += s ? 1 : 0;
      }
      sink.trace->record(obs::Event::decode(slot, plan.sched->request_index,
                                            node, is_ec, erasures, syndromes,
                                            !success));
    } else {
      success = decoder::run_code_trial(geometry.lattice, profile,
                                        params.channel, decoder, rng)
                    .success();
    }
    if (sink.metrics) {
      sink.metrics->count("sim.decodes");
      if (!success) sink.metrics->count("sim.decode_logical_errors");
    }
    if (!success) code.corrupted = true;
    ++code.corrections;
    code.acc_support_mu = 0.0;
    code.acc_core_mu = 0.0;
    code.acc_support_hops = 0;
    code.jumps_since_ec = 0;
  };

  std::vector<std::size_t> order(plans.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  int in_flight_or_pending = result.codes_scheduled;
  int final_slot = 0;
  for (int slot = 0; slot < params.max_slots && in_flight_or_pending > 0;
       ++slot) {
    final_slot = slot;
    // Entanglement generation routine at every switch. Gains draw before
    // fault injection (the legacy variate order), so a degradation window
    // injected at slot s scales gains from slot s+1 on.
    for (std::size_t e = 0; e < pairs.size(); ++e) {
      const int cap =
          topology.fiber(static_cast<int>(e)).entanglement_capacity;
      const double rate =
          params.entanglement_rate *
          injector.entanglement_factor(static_cast<int>(e), slot);
      const int whole = static_cast<int>(rate);
      const double frac = rate - whole;
      const int gain = whole + ((frac > 0.0 && rng.bernoulli(frac)) ? 1 : 0);
      pairs[e] = std::min(cap, pairs[e] + gain);
    }
    injector.begin_slot(slot, rng, sink);
    if (sink.enabled() && !pairs.empty()) {
      int total = 0;
      int min_level = pairs[0];
      for (const int p : pairs) {
        total += p;
        min_level = std::min(min_level, p);
      }
      if (sink.metrics)
        sink.metrics->observe("sim.pool_total", total, pool_bounds());
      if (sink.trace)
        sink.trace->record(obs::Event::pool(slot, total, min_level));
    }

    // Randomize service order so no request systematically wins contention.
    for (std::size_t i = order.size(); i > 1; --i)
      std::swap(order[i - 1], order[rng.below(i)]);

    for (std::size_t idx : order) {
      const RequestPlan& plan = plans[idx];
      if (!has_active[idx]) {
        if (codes_remaining[idx] == 0) continue;
        --codes_remaining[idx];
        active[idx] = launch(plan, slot);
        has_active[idx] = 1;
      }
      ActiveCode& code = active[idx];
      // Per-code timeout budget: a starved code is abandoned individually
      // instead of pinning its request to the end of the run.
      if (policy.code_timeout_slots > 0 &&
          slot - code.start_slot >= policy.code_timeout_slots) {
        const int slots = slot - code.start_slot;
        result.codes.push_back({plan.sched->request_index, slots,
                                code.corrections, CodeOutcome::TimedOut});
        if (sink.metrics) sink.metrics->count("sim.timeouts");
        if (sink.trace)
          sink.trace->record(obs::Event::timeout(
              slot, plan.sched->request_index, slots));
        has_active[idx] = 0;
        --in_flight_or_pending;
        continue;
      }
      if (code.cooldown > 0) {
        --code.cooldown;
        continue;
      }
      const auto& barrier =
          plan.barriers[static_cast<std::size_t>(code.barrier)];

      // Plain channel: the Support part advances one fiber per slot; a
      // failed fiber or dead next node triggers a local recovery path (or
      // the photons are held in error-mitigation circuits until the route
      // heals).
      if (code.s_pos < code.s_target) {
        const int next =
            code.s_path[static_cast<std::size_t>(code.s_pos) + 1];
        const int e = topology.fiber_between(
            code.s_path[static_cast<std::size_t>(code.s_pos)], next);
        if (!injector.fiber_down(e, slot) &&
            !injector.node_down(next, slot)) {
          ++code.s_pos;
          code.acc_support_mu += topology.fiber_noise(e);
          ++code.acc_support_hops;
        } else if (policy.local_reroute) {
          if (local_reroute(topology, injector, slot, code.s_path,
                            code.s_pos, barrier.node)) {
            code.s_target = find_on_path(code.s_path, barrier.node,
                                         code.s_pos);
            code.failed_reroutes = 0;
            if (sink.metrics) sink.metrics->count("sim.recoveries");
            if (sink.trace)
              sink.trace->record(obs::Event::recovery(
                  slot, plan.sched->request_index, /*core_channel=*/false));
          } else {
            reroute_failed(plan, code, /*core_channel=*/false, slot);
          }
        }
      }

      // Entanglement-based channel: opportunistic movement over up to
      // `opportunistic_segment` fibers once every fiber of the segment is
      // alive and holds enough prepared pairs.
      if (!plan.raw && code.c_pos < code.c_target) {
        const int n_core = plan.geometry->partition.num_core;
        const int remaining = code.c_target - code.c_pos;
        const int segment = std::min(params.opportunistic_segment, remaining);
        bool ready = true;
        bool broken = false;
        for (int h = 0; h < segment; ++h) {
          const int e = topology.fiber_between(
              code.c_path[static_cast<std::size_t>(code.c_pos + h)],
              code.c_path[static_cast<std::size_t>(code.c_pos + h + 1)]);
          if (injector.fiber_down(e, slot) ||
              injector.node_down(
                  code.c_path[static_cast<std::size_t>(code.c_pos + h + 1)],
                  slot))
            broken = true;
          if (pairs[static_cast<std::size_t>(e)] < n_core) ready = false;
        }
        if (broken) {
          if (policy.local_reroute) {
            if (local_reroute(topology, injector, slot, code.c_path,
                              code.c_pos, barrier.node)) {
              code.c_target = find_on_path(code.c_path, barrier.node,
                                           code.c_pos);
              code.failed_reroutes = 0;
              if (sink.metrics) sink.metrics->count("sim.recoveries");
              if (sink.trace)
                sink.trace->record(obs::Event::recovery(
                    slot, plan.sched->request_index, /*core_channel=*/true));
            } else {
              reroute_failed(plan, code, /*core_channel=*/true, slot);
            }
          }
        } else if (ready) {
          double segment_mu = 0.0;
          for (int h = 0; h < segment; ++h) {
            const int e = topology.fiber_between(
                code.c_path[static_cast<std::size_t>(code.c_pos + h)],
                code.c_path[static_cast<std::size_t>(code.c_pos + h + 1)]);
            pairs[static_cast<std::size_t>(e)] -= n_core;
            segment_mu += topology.fiber_noise(e);
          }
          // Entanglement swapping and teleportation are probabilistic; a
          // failed attempt wastes the consumed pairs.
          const bool success =
              params.swap_success >= 1.0 ||
              rng.bernoulli(std::pow(params.swap_success, segment));
          if (sink.metrics) {
            sink.metrics->count("sim.segment_jumps");
            if (!success) sink.metrics->count("sim.segment_jump_failures");
          }
          if (sink.trace)
            sink.trace->record(obs::Event::segment_jump(
                slot, plan.sched->request_index,
                code.c_path[static_cast<std::size_t>(code.c_pos)],
                code.c_path[static_cast<std::size_t>(code.c_pos + segment)],
                segment, success));
          if (success) {
            code.c_pos += segment;
            code.acc_core_mu += segment_mu;
            ++code.jumps_since_ec;
            code.swap_attempts = 0;
          } else if (policy.max_swap_retries > 0) {
            // Bounded retries: back off exponentially instead of hammering
            // the starved pools; past the budget, escalate to a full
            // re-route.
            ++code.swap_attempts;
            if (code.swap_attempts > policy.max_swap_retries) {
              escalate(plan, code, /*core_channel=*/true, slot);
              code.swap_attempts = 0;
            } else {
              const int backoff = policy.backoff_slots(code.swap_attempts);
              code.cooldown = backoff;
              if (sink.metrics) sink.metrics->count("sim.retries");
              if (sink.trace)
                sink.trace->record(obs::Event::retry(
                    slot, plan.sched->request_index, /*core_channel=*/true,
                    code.swap_attempts, backoff));
            }
          }
        }
      }

      // Barrier reached by both parts: correct (or finally read out).
      // Corrections wait while the barrier node is down or a decode-latency
      // spike stalls the network's decoders.
      const bool support_done = code.s_pos >= code.s_target;
      const bool core_done = plan.raw || code.c_pos >= code.c_target;
      if (support_done && core_done &&
          !injector.node_down(barrier.node, slot) &&
          !injector.decode_stalled(slot)) {
        run_correction(plan, code, slot, barrier.node, barrier.is_ec);
        const bool final_barrier =
            code.barrier + 1 == static_cast<int>(plan.barriers.size());
        if (final_barrier) {
          ++result.codes_delivered;
          if (!code.corrupted) ++result.codes_succeeded;
          const int slots = slot - code.start_slot + 1;
          result.total_latency += slots;
          result.codes.push_back(
              {plan.sched->request_index, slots, code.corrections,
               code.corrupted ? CodeOutcome::LogicalError
                              : CodeOutcome::Succeeded});
          if (sink.metrics) {
            sink.metrics->count("sim.delivered");
            if (!code.corrupted) sink.metrics->count("sim.succeeded");
            sink.metrics->observe("sim.latency_slots", slots,
                                  latency_bounds());
          }
          if (sink.trace)
            sink.trace->record(obs::Event::delivered(
                slot, plan.sched->request_index, slots, code.corrections,
                code.corrupted));
          has_active[idx] = 0;
          --in_flight_or_pending;
        } else {
          ++code.barrier;
          retarget(plan, code);
          code.cooldown = 1;  // the EC circuit occupies one slot
        }
      }
    }
  }

  // Codes still in flight when the run ended are timeouts; their slot
  // counts are censored at the last simulated slot.
  for (std::size_t idx = 0; idx < plans.size(); ++idx) {
    if (!has_active[idx]) continue;
    const ActiveCode& code = active[idx];
    const int slots = final_slot - code.start_slot + 1;
    result.codes.push_back({plans[idx].sched->request_index, slots,
                            code.corrections, CodeOutcome::TimedOut});
    if (sink.metrics) sink.metrics->count("sim.timeouts");
    if (sink.trace)
      sink.trace->record(obs::Event::timeout(
          final_slot, plans[idx].sched->request_index, slots));
  }
  return result;
}

SimulationResult simulate_purification(const Topology& topology,
                                       const Schedule& schedule,
                                       int extra_pairs,
                                       const SimulationParams& params,
                                       util::Rng& rng) {
  SimulationResult result;
  result.codes_scheduled = schedule.scheduled_codes();
  if (schedule.scheduled.empty()) return result;
  const obs::Sink& sink = params.sink;

  struct Plan {
    const ScheduledRequest* sched;
    double success_prob;
  };
  std::vector<Plan> plans;
  for (const auto& s : schedule.scheduled) {
    if (s.codes <= 0) continue;
    const auto& path = s.core_path.empty() ? s.support_path : s.core_path;
    if (path.size() < 2)
      throw std::invalid_argument("purification schedule without a path");
    double prob = 1.0;
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      const int e = topology.fiber_between(path[i], path[i + 1]);
      if (e < 0)
        throw std::invalid_argument("schedule path has non-adjacent nodes");
      // Purification raises pair fidelity, but the bare message qubit also
      // survives the teleportation operations of each hop unprotected.
      prob *= purified_fidelity(topology.fiber(e).fidelity, extra_pairs) *
              (1.0 - params.teleport_op_noise);
    }
    plans.push_back({&s, prob});
  }

  std::vector<int> pairs(static_cast<std::size_t>(topology.num_fibers()), 0);
  FaultInjector injector(topology, effective_fault_plan(params));
  const RecoveryPolicy policy = effective_recovery(params);
  const int per_hop = 1 + extra_pairs;

  struct State {
    int pos = 0;
    int start = 0;
  };
  std::vector<int> codes_remaining(plans.size());
  std::vector<State> active(plans.size());
  std::vector<char> has_active(plans.size(), 0);
  for (std::size_t i = 0; i < plans.size(); ++i)
    codes_remaining[i] = plans[i].sched->codes;

  std::vector<std::size_t> order(plans.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  int pending = result.codes_scheduled;
  int final_slot = 0;
  for (int slot = 0; slot < params.max_slots && pending > 0; ++slot) {
    final_slot = slot;
    for (std::size_t e = 0; e < pairs.size(); ++e) {
      const int cap =
          topology.fiber(static_cast<int>(e)).entanglement_capacity;
      const double rate =
          params.entanglement_rate *
          injector.entanglement_factor(static_cast<int>(e), slot);
      const int whole = static_cast<int>(rate);
      const double frac = rate - whole;
      const int gain = whole + ((frac > 0.0 && rng.bernoulli(frac)) ? 1 : 0);
      pairs[e] = std::min(cap, pairs[e] + gain);
    }
    injector.begin_slot(slot, rng, sink);
    if (sink.enabled() && !pairs.empty()) {
      int total = 0;
      int min_level = pairs[0];
      for (const int p : pairs) {
        total += p;
        min_level = std::min(min_level, p);
      }
      if (sink.metrics)
        sink.metrics->observe("sim.pool_total", total, pool_bounds());
      if (sink.trace)
        sink.trace->record(obs::Event::pool(slot, total, min_level));
    }
    for (std::size_t i = order.size(); i > 1; --i)
      std::swap(order[i - 1], order[rng.below(i)]);

    for (std::size_t idx : order) {
      const Plan& plan = plans[idx];
      const auto& path = plan.sched->core_path.empty()
                             ? plan.sched->support_path
                             : plan.sched->core_path;
      if (!has_active[idx]) {
        if (codes_remaining[idx] == 0) continue;
        --codes_remaining[idx];
        active[idx] = State{0, slot};
        has_active[idx] = 1;
      }
      State& state = active[idx];
      // Per-code timeout budget (shared with the surface-code simulator).
      if (policy.code_timeout_slots > 0 &&
          slot - state.start >= policy.code_timeout_slots) {
        const int slots = slot - state.start;
        result.codes.push_back({plan.sched->request_index, slots, 0,
                                CodeOutcome::TimedOut});
        if (sink.metrics) sink.metrics->count("sim.timeouts");
        if (sink.trace)
          sink.trace->record(obs::Event::timeout(
              slot, plan.sched->request_index, slots));
        has_active[idx] = 0;
        --pending;
        continue;
      }
      if (state.pos + 1 < static_cast<int>(path.size())) {
        const int next = path[static_cast<std::size_t>(state.pos) + 1];
        const int e = topology.fiber_between(
            path[static_cast<std::size_t>(state.pos)], next);
        if (!injector.fiber_down(e, slot) &&
            !injector.node_down(next, slot) &&
            pairs[static_cast<std::size_t>(e)] >= per_hop) {
          pairs[static_cast<std::size_t>(e)] -= per_hop;
          ++state.pos;
        }
      }
      if (state.pos + 1 == static_cast<int>(path.size())) {
        ++result.codes_delivered;
        const bool ok = rng.bernoulli(plan.success_prob);
        if (ok) ++result.codes_succeeded;
        const int slots = slot - state.start + 1;
        result.total_latency += slots;
        result.codes.push_back(
            {plan.sched->request_index, slots, 0,
             ok ? CodeOutcome::Succeeded : CodeOutcome::LogicalError});
        if (sink.metrics) {
          sink.metrics->count("sim.delivered");
          if (ok) sink.metrics->count("sim.succeeded");
          sink.metrics->observe("sim.latency_slots", slots,
                                latency_bounds());
        }
        if (sink.trace)
          sink.trace->record(obs::Event::delivered(
              slot, plan.sched->request_index, slots, 0, !ok));
        has_active[idx] = 0;
        --pending;
      }
    }
  }

  for (std::size_t idx = 0; idx < plans.size(); ++idx) {
    if (!has_active[idx]) continue;
    const int slots = final_slot - active[idx].start + 1;
    result.codes.push_back({plans[idx].sched->request_index, slots, 0,
                            CodeOutcome::TimedOut});
    if (sink.metrics) sink.metrics->count("sim.timeouts");
    if (sink.trace)
      sink.trace->record(obs::Event::timeout(
          final_slot, plans[idx].sched->request_index, slots));
  }
  return result;
}

}  // namespace surfnet::netsim
