#include "netsim/dot.h"

#include <set>
#include <sstream>

namespace surfnet::netsim {

namespace {

void emit_nodes(const Topology& topology, const std::set<int>& ec_servers,
                std::ostringstream& os) {
  for (int v = 0; v < topology.num_nodes(); ++v) {
    os << "  n" << v << " [label=\"" << v << "\"";
    switch (topology.node(v).role) {
      case NodeRole::User:
        os << ", shape=circle";
        break;
      case NodeRole::Switch:
        os << ", shape=box";
        break;
      case NodeRole::Server:
        os << ", shape=box, peripheries=2";
        break;
    }
    if (ec_servers.count(v)) os << ", style=filled, fillcolor=lightgrey";
    os << "];\n";
  }
}

}  // namespace

std::string to_dot(const Topology& topology) {
  return to_dot(topology, Schedule{});
}

std::string to_dot(const Topology& topology, const Schedule& schedule) {
  // Classify fibers by the channels routed over them.
  std::set<std::pair<int, int>> core_hops, support_hops;
  std::set<int> ec_servers;
  auto canon = [](int a, int b) {
    return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  };
  for (const auto& s : schedule.scheduled) {
    for (std::size_t i = 0; i + 1 < s.core_path.size(); ++i)
      core_hops.insert(canon(s.core_path[i], s.core_path[i + 1]));
    for (std::size_t i = 0; i + 1 < s.support_path.size(); ++i)
      support_hops.insert(canon(s.support_path[i], s.support_path[i + 1]));
    for (int server : s.ec_servers) ec_servers.insert(server);
  }

  std::ostringstream os;
  os << "graph surfnet {\n  layout=neato;\n  overlap=false;\n";
  emit_nodes(topology, ec_servers, os);
  os.setf(std::ios::fixed);
  os.precision(2);
  for (int e = 0; e < topology.num_fibers(); ++e) {
    const auto& f = topology.fiber(e);
    os << "  n" << f.a << " -- n" << f.b << " [label=\"" << f.fidelity
       << "/" << f.entanglement_capacity << "\"";
    const auto key = canon(f.a, f.b);
    const bool core = core_hops.count(key);
    const bool support = support_hops.count(key);
    if (core && support) os << ", color=\"red:blue\", penwidth=2";
    else if (core) os << ", color=red, penwidth=2";
    else if (support) os << ", color=blue, penwidth=2";
    os << "];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace surfnet::netsim
