#include "netsim/schedule.h"

#include <stdexcept>

namespace surfnet::netsim {

std::vector<Request> random_requests(const Topology& topology, int count,
                                     int max_codes, util::Rng& rng) {
  const auto users = topology.users();
  if (users.size() < 2)
    throw std::invalid_argument("random_requests: need at least two users");
  if (max_codes < 1)
    throw std::invalid_argument("random_requests: max_codes must be >= 1");
  std::vector<Request> requests;
  requests.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    Request r;
    r.src = users[rng.below(users.size())];
    do {
      r.dst = users[rng.below(users.size())];
    } while (r.dst == r.src);
    r.codes = static_cast<int>(rng.between(1, max_codes));
    requests.push_back(r);
  }
  return requests;
}

}  // namespace surfnet::netsim
