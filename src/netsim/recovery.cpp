#include "netsim/recovery.h"

#include <algorithm>
#include <queue>

namespace surfnet::netsim {

int RecoveryPolicy::backoff_slots(int attempt) const {
  if (attempt < 1) attempt = 1;
  long long slots = backoff_base_slots;
  for (int i = 1; i < attempt && slots < backoff_cap_slots; ++i) slots <<= 1;
  return static_cast<int>(
      std::min<long long>(slots, backoff_cap_slots));
}

RecoveryPolicy RecoveryPolicy::disabled() {
  RecoveryPolicy policy;
  policy.local_reroute = false;
  return policy;
}

RecoveryPolicy RecoveryPolicy::aggressive() {
  RecoveryPolicy policy;
  policy.local_reroute = true;
  policy.max_swap_retries = 4;
  policy.backoff_base_slots = 2;
  policy.backoff_cap_slots = 16;
  policy.escalate_after_reroutes = 2;
  policy.code_timeout_slots = 1500;
  return policy;
}

namespace {

int find_on_path(const std::vector<int>& path, int node, int from) {
  for (std::size_t i = static_cast<std::size_t>(from); i < path.size(); ++i)
    if (path[i] == node) return static_cast<int>(i);
  return -1;
}

/// BFS from `start` to `target` over live fibers, visiting only live
/// switches/servers (the target itself may additionally be a user).
/// Returns the node sequence start..target, or empty when unreachable.
std::vector<int> live_bfs(const Topology& topology,
                          const FaultInjector& injector, int slot, int start,
                          int target) {
  std::vector<int> parent(static_cast<std::size_t>(topology.num_nodes()), -2);
  std::queue<int> queue;
  queue.push(start);
  parent[static_cast<std::size_t>(start)] = -1;
  while (!queue.empty()) {
    const int u = queue.front();
    queue.pop();
    if (u == target) break;
    for (int e : topology.incident(u)) {
      if (injector.fiber_down(e, slot)) continue;
      const int v = topology.other_end(e, u);
      if (parent[static_cast<std::size_t>(v)] != -2) continue;
      // Only the target node may be a user, and dead nodes don't forward.
      if (v != target && !topology.is_switch_or_server(v)) continue;
      if (injector.node_down(v, slot)) continue;
      parent[static_cast<std::size_t>(v)] = u;
      queue.push(v);
    }
  }
  std::vector<int> route;
  if (parent[static_cast<std::size_t>(target)] == -2) return route;
  for (int v = target; v != -1; v = parent[static_cast<std::size_t>(v)])
    route.push_back(v);
  std::reverse(route.begin(), route.end());
  return route;
}

}  // namespace

bool local_reroute(const Topology& topology, const FaultInjector& injector,
                   int slot, std::vector<int>& path, int pos,
                   int target_node) {
  const int start = path[static_cast<std::size_t>(pos)];
  const auto detour = live_bfs(topology, injector, slot, start, target_node);
  if (detour.empty()) return false;
  // Splice: keep the prefix up to the current position and the tail
  // beyond the recovery target (later barriers and the destination).
  const int target_idx = find_on_path(path, target_node, pos);
  if (target_idx < 0) return false;
  std::vector<int> tail(path.begin() + target_idx + 1, path.end());
  path.resize(static_cast<std::size_t>(pos));
  path.insert(path.end(), detour.begin(), detour.end());
  path.insert(path.end(), tail.begin(), tail.end());
  return true;
}

bool replan_route(const Topology& topology, const FaultInjector& injector,
                  int slot, std::vector<int>& path, int pos,
                  const std::vector<int>& waypoints) {
  if (waypoints.empty()) return false;
  std::vector<int> fresh;
  int at = path[static_cast<std::size_t>(pos)];
  fresh.push_back(at);
  for (const int waypoint : waypoints) {
    if (waypoint == at) continue;
    const auto leg = live_bfs(topology, injector, slot, at, waypoint);
    if (leg.empty()) return false;
    fresh.insert(fresh.end(), leg.begin() + 1, leg.end());
    at = waypoint;
  }
  path.resize(static_cast<std::size_t>(pos));
  path.insert(path.end(), fresh.begin(), fresh.end());
  return true;
}

}  // namespace surfnet::netsim
