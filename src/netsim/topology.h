#pragma once

// Quantum network topology (paper Sec. IV-A / VI-B): users, switches and
// servers interconnected by optical fibers, generated with the
// Barabasi-Albert preferential-attachment model (> 20 nodes); the most
// connected nodes become servers and switches. Every fiber carries the two
// SurfNet channels and is labelled with a fidelity gamma in [0, 1].

#include <cstdint>
#include <span>
#include <vector>

#include "util/rng.h"

namespace surfnet::netsim {

enum class NodeRole { User, Switch, Server };

struct Node {
  NodeRole role = NodeRole::User;
  int storage_capacity = 0;  ///< eta_r: qubits a switch/server can hold
};

struct Fiber {
  int a = -1;
  int b = -1;
  double fidelity = 1.0;          ///< gamma in [0, 1]
  int entanglement_capacity = 0;  ///< eta_e: prepared pairs per round
};

class Topology {
 public:
  Topology() = default;
  Topology(std::vector<Node> nodes, std::vector<Fiber> fibers);

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  int num_fibers() const { return static_cast<int>(fibers_.size()); }

  const Node& node(int v) const { return nodes_[static_cast<std::size_t>(v)]; }
  Node& node(int v) { return nodes_[static_cast<std::size_t>(v)]; }
  const Fiber& fiber(int e) const {
    return fibers_[static_cast<std::size_t>(e)];
  }
  Fiber& fiber(int e) { return fibers_[static_cast<std::size_t>(e)]; }

  bool is_user(int v) const { return node(v).role == NodeRole::User; }
  bool is_switch_or_server(int v) const { return !is_user(v); }
  bool is_server(int v) const { return node(v).role == NodeRole::Server; }

  /// Fiber ids incident to node v.
  std::span<const int> incident(int v) const {
    return {incidence_.data() + offsets_[static_cast<std::size_t>(v)],
            offsets_[static_cast<std::size_t>(v) + 1] -
                offsets_[static_cast<std::size_t>(v)]};
  }

  int other_end(int fiber_id, int v) const;

  /// Fiber between u and v, or -1.
  int fiber_between(int u, int v) const;

  /// Noise of a fiber: mu = ln(1 / gamma) (paper Sec. V-A).
  double fiber_noise(int e) const;

  std::vector<int> users() const;
  std::vector<int> servers() const;
  std::vector<int> switches_and_servers() const;

  /// True when every node can reach every other node.
  bool connected() const;

 private:
  std::vector<Node> nodes_;
  std::vector<Fiber> fibers_;
  std::vector<std::size_t> offsets_;
  std::vector<int> incidence_;

  void build_index();
};

/// Parameters for random scenario generation (paper Sec. VI-A/B).
struct TopologySpec {
  int num_nodes = 24;        ///< > 20 per the paper
  int attach_edges = 2;      ///< Barabasi-Albert m
  int num_servers = 3;       ///< most connected nodes
  int num_switches = 8;      ///< next most connected
  int storage_capacity = 40; ///< eta_r for switches/servers
  int entanglement_capacity = 8;  ///< eta_e per fiber
  double fidelity_lo = 0.75; ///< good connections: [0.75, 1]
  double fidelity_hi = 1.0;  ///< poor connections use lo = 0.5
};

/// Generate a random connected Barabasi-Albert topology with roles assigned
/// by degree (servers = highest degree) and i.i.d. fiber fidelities.
Topology make_random_topology(const TopologySpec& spec, util::Rng& rng);

/// Parameters for the regular width x height grid used by the scaling
/// benchmarks: boundary nodes are users, interior nodes switches, and every
/// `server_stride`-th interior node is promoted to a server. Fibers connect
/// 4-neighbors with i.i.d. fidelities in [fidelity_lo, fidelity_hi].
struct GridSpec {
  int width = 4;              ///< >= 3 (need at least one interior node)
  int height = 4;             ///< >= 3
  int server_stride = 3;      ///< promote every k-th interior node
  int storage_capacity = 60;  ///< eta_r for switches/servers
  int entanglement_capacity = 16;  ///< eta_e per fiber
  double fidelity_lo = 0.85;
  double fidelity_hi = 1.0;
};

/// Deterministic-shape grid topology; only fidelities draw from `rng`.
Topology make_grid_topology(const GridSpec& spec, util::Rng& rng);

}  // namespace surfnet::netsim
