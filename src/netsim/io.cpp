#include "netsim/io.h"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace surfnet::netsim {

namespace {

[[noreturn]] void fail(int line, const std::string& what) {
  throw std::invalid_argument("line " + std::to_string(line) + ": " + what);
}

std::string role_name(NodeRole role) {
  switch (role) {
    case NodeRole::User: return "user";
    case NodeRole::Switch: return "switch";
    case NodeRole::Server: return "server";
  }
  return "?";
}

NodeRole role_of(const std::string& name, int line) {
  if (name == "user") return NodeRole::User;
  if (name == "switch") return NodeRole::Switch;
  if (name == "server") return NodeRole::Server;
  fail(line, "unknown node role '" + name + "'");
}

std::vector<int> read_node_list(std::istringstream& ss, int line) {
  int count = 0;
  if (!(ss >> count) || count < 0) fail(line, "bad node-list count");
  std::vector<int> nodes(static_cast<std::size_t>(count));
  for (int& v : nodes)
    if (!(ss >> v)) fail(line, "truncated node list");
  return nodes;
}

void write_node_list(std::ostream& os, const std::vector<int>& nodes) {
  os << ' ' << nodes.size();
  for (int v : nodes) os << ' ' << v;
}

}  // namespace

void write_topology(std::ostream& os, const Topology& topology) {
  os << "surfnet-topology v1\n";
  for (int v = 0; v < topology.num_nodes(); ++v) {
    const auto& node = topology.node(v);
    os << "node " << v << ' ' << role_name(node.role) << ' '
       << node.storage_capacity << '\n';
  }
  os.precision(17);
  for (int e = 0; e < topology.num_fibers(); ++e) {
    const auto& f = topology.fiber(e);
    os << "fiber " << f.a << ' ' << f.b << ' ' << f.fidelity << ' '
       << f.entanglement_capacity << '\n';
  }
}

Topology read_topology(std::istream& is) {
  std::string line;
  int line_no = 1;
  if (!std::getline(is, line) || line != "surfnet-topology v1")
    fail(line_no, "expected header 'surfnet-topology v1'");
  std::vector<Node> nodes;
  std::vector<Fiber> fibers;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::istringstream ss(line);
    std::string tag;
    ss >> tag;
    if (tag == "node") {
      int id = -1, capacity = 0;
      std::string role;
      if (!(ss >> id >> role >> capacity)) fail(line_no, "bad node record");
      if (id != static_cast<int>(nodes.size()))
        fail(line_no, "node ids must be dense and ordered");
      Node node;
      node.role = role_of(role, line_no);
      node.storage_capacity = capacity;
      nodes.push_back(node);
    } else if (tag == "fiber") {
      Fiber f;
      if (!(ss >> f.a >> f.b >> f.fidelity >> f.entanglement_capacity))
        fail(line_no, "bad fiber record");
      fibers.push_back(f);
    } else {
      fail(line_no, "unknown record '" + tag + "'");
    }
  }
  return Topology(std::move(nodes), std::move(fibers));
}

void write_schedule(std::ostream& os, const Schedule& schedule) {
  os << "surfnet-schedule v1\n";
  os << "requested " << schedule.requested_codes << '\n';
  for (const auto& s : schedule.scheduled) {
    os << "request " << s.request_index << ' ' << s.codes << ' '
       << s.code_distance << " support";
    write_node_list(os, s.support_path);
    os << " core";
    write_node_list(os, s.core_path);
    os << " ec";
    write_node_list(os, s.ec_servers);
    os << '\n';
  }
}

Schedule read_schedule(std::istream& is) {
  std::string line;
  int line_no = 1;
  if (!std::getline(is, line) || line != "surfnet-schedule v1")
    fail(line_no, "expected header 'surfnet-schedule v1'");
  Schedule schedule;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::istringstream ss(line);
    std::string tag;
    ss >> tag;
    if (tag == "requested") {
      if (!(ss >> schedule.requested_codes))
        fail(line_no, "bad requested record");
    } else if (tag == "request") {
      ScheduledRequest s;
      std::string keyword;
      if (!(ss >> s.request_index >> s.codes >> s.code_distance >> keyword) ||
          keyword != "support")
        fail(line_no, "bad request record");
      s.support_path = read_node_list(ss, line_no);
      if (!(ss >> keyword) || keyword != "core")
        fail(line_no, "expected 'core'");
      s.core_path = read_node_list(ss, line_no);
      if (!(ss >> keyword) || keyword != "ec")
        fail(line_no, "expected 'ec'");
      s.ec_servers = read_node_list(ss, line_no);
      schedule.scheduled.push_back(std::move(s));
    } else {
      fail(line_no, "unknown record '" + tag + "'");
    }
  }
  return schedule;
}

std::string topology_to_string(const Topology& topology) {
  std::ostringstream os;
  write_topology(os, topology);
  return os.str();
}

Topology topology_from_string(const std::string& text) {
  std::istringstream is(text);
  return read_topology(is);
}

std::string schedule_to_string(const Schedule& schedule) {
  std::ostringstream os;
  write_schedule(os, schedule);
  return os.str();
}

Schedule schedule_from_string(const std::string& text) {
  std::istringstream is(text);
  return read_schedule(is);
}

}  // namespace surfnet::netsim
